// bench_gate — the perf-trust tool behind `scripts/verify.sh bench-gate`
// (EXPERIMENTS.md "Methodology: variability and regression gating").
// Compares a fresh multi-seed bench snapshot against the committed
// BENCH_<pr>.json baseline and fails when any gated metric regresses
// beyond its recorded noise band; also validates report files, bundles
// per-bench reports into a snapshot array, smoke-runs bench binaries,
// and self-tests its own gate logic with an injected regression.
//
// Modes (exactly one):
//   bench_gate --baseline=FILE --candidate=FILE [--floor=PCT]
//              [--allow-missing] [--verbose]
//       Gate candidate vs baseline. Exit 0 = within noise, 1 = regression.
//   bench_gate --self-test [--baseline=FILE] [--floor=PCT]
//       Prove the gate trips: an identical candidate must pass and a
//       synthetic 20% regression must fail. Uses a built-in fixture when
//       no --baseline is given. Exit 0 = gate works.
//   bench_gate --check=FILE
//       Parse + schema-validate a report (schema-1 or -2 object, or a
//       snapshot array of schema-2 objects). Exit 0 = valid.
//   bench_gate --bundle=OUT IN1 IN2 ...
//       Concatenate schema-2 reports into one snapshot array at OUT.
//   bench_gate --run-smoke=JSON BIN [ARG...]
//       Exec BIN with ARGs (which must include --json=JSON), require
//       exit 0, then --check the JSON it wrote. Used by the bench-smoke
//       ctest label to keep every e1-e15 binary runnable.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_stats.h"

using namespace dyconits::bench;

namespace {

bool read_file(const std::string& path, std::string* out, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *err = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Validates one report object; schema-2 objects are also rehydrated into
/// `reports` so the gate modes share this loader.
bool load_report_object(const JsonValue& v, const std::string& where,
                        std::vector<MultiRunReport>* reports, std::string* err) {
  const JsonValue* schema = v.find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::Num) {
    *err = where + ": missing numeric \"schema\"";
    return false;
  }
  if (schema->num == 1) {
    // Single-run report: structural check only (never gated — one sample
    // has no noise band).
    const JsonValue* bench = v.find("bench");
    const JsonValue* metrics = v.find("metrics");
    if (bench == nullptr || bench->kind != JsonValue::Kind::Str) {
      *err = where + ": missing \"bench\"";
      return false;
    }
    if (metrics == nullptr || metrics->kind != JsonValue::Kind::Obj) {
      *err = where + ": missing \"metrics\" object";
      return false;
    }
    for (const auto& [name, m] : metrics->obj) {
      if (m.kind != JsonValue::Kind::Num) {
        *err = where + ": metric " + name + " is not a number";
        return false;
      }
    }
    return true;
  }
  if (schema->num == 2) {
    std::string perr;
    auto r = multi_run_from_json(v, &perr);
    if (!r) {
      *err = where + ": " + perr;
      return false;
    }
    if (reports != nullptr) reports->push_back(std::move(*r));
    return true;
  }
  *err = where + ": unsupported schema " + json_num(schema->num);
  return false;
}

/// Loads a report file: a snapshot array of schema-2 objects, or a single
/// schema-1/2 object.
bool load_report_file(const std::string& path, std::vector<MultiRunReport>* reports,
                      std::string* err) {
  std::string text;
  if (!read_file(path, &text, err)) return false;
  std::string perr;
  const auto doc = json_parse(text, &perr);
  if (!doc) {
    *err = path + ": " + perr;
    return false;
  }
  if (doc->kind == JsonValue::Kind::Arr) {
    if (doc->arr.empty()) {
      *err = path + ": empty snapshot array";
      return false;
    }
    for (std::size_t i = 0; i < doc->arr.size(); ++i) {
      if (!load_report_object(doc->arr[i], path + "[" + std::to_string(i) + "]",
                              reports, err)) {
        return false;
      }
    }
    return true;
  }
  if (doc->kind == JsonValue::Kind::Obj) {
    return load_report_object(*doc, path, reports, err);
  }
  *err = path + ": top level must be an object or array";
  return false;
}

void print_findings(const std::vector<GateFinding>& findings, bool verbose) {
  std::printf("%-14s %-34s %-13s %12s %12s %9s %9s  %s\n", "bench", "metric",
              "class", "baseline", "candidate", "change%", "thresh%", "status");
  for (const auto& f : findings) {
    const bool interesting = f.failed || !f.note.empty();
    if (!verbose && !interesting) continue;
    std::printf("%-14s %-34s %-13s %12.4g %12.4g %+9.2f %9.2f  %s%s%s\n",
                f.bench.c_str(), f.metric.c_str(), metric_class_name(f.cls),
                f.baseline_mean, f.candidate_mean, f.change_pct, f.threshold_pct,
                f.failed ? "FAIL" : (f.gated ? "ok" : "info"),
                f.note.empty() ? "" : " — ", f.note.c_str());
  }
}

int mode_compare(const std::string& baseline_path, const std::string& candidate_path,
                 const GateOptions& opts, bool verbose) {
  std::vector<MultiRunReport> baseline, candidate;
  std::string err;
  if (!load_report_file(baseline_path, &baseline, &err) ||
      !load_report_file(candidate_path, &candidate, &err)) {
    std::fprintf(stderr, "bench_gate: %s\n", err.c_str());
    return 2;
  }
  std::vector<GateFinding> findings;
  const bool ok = gate_reports(baseline, candidate, opts, findings);
  print_findings(findings, verbose);
  std::size_t gated = 0, failed = 0;
  for (const auto& f : findings) {
    gated += f.gated ? 1 : 0;
    failed += f.failed ? 1 : 0;
  }
  std::printf("bench-gate: %zu gated metrics, %zu regression%s (floor %.1f%%, "
              "band safety x%.1f)\n",
              gated, failed, failed == 1 ? "" : "s", opts.floor_pct,
              kNoiseBandSafety);
  if (!ok) {
    std::printf("bench-gate: FAIL — metrics regressed beyond their noise band.\n"
                "  If the change is intended, rebaseline: scripts/rebaseline.sh --bench\n");
  } else {
    std::printf("bench-gate: PASS — all gated metrics within noise of %s\n",
                baseline_path.c_str());
  }
  return ok ? 0 : 1;
}

int mode_self_test(const std::string& baseline_path, const GateOptions& opts) {
  std::vector<MultiRunReport> baseline;
  if (baseline_path.empty()) {
    baseline = synthetic_baseline();
    std::printf("self-test baseline: built-in fixture (%s)\n",
                baseline.front().bench.c_str());
  } else {
    std::string err;
    if (!load_report_file(baseline_path, &baseline, &err)) {
      std::fprintf(stderr, "bench_gate: %s\n", err.c_str());
      return 2;
    }
    std::printf("self-test baseline: %s (%zu bench entries)\n", baseline_path.c_str(),
                baseline.size());
  }
  std::string log;
  const bool ok = gate_self_test(baseline, opts, &log);
  std::fputs(log.c_str(), stdout);
  std::printf("bench-gate self-test: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

int mode_check(const std::string& path) {
  std::vector<MultiRunReport> reports;
  std::string err;
  if (!load_report_file(path, &reports, &err)) {
    std::fprintf(stderr, "bench_gate: invalid report: %s\n", err.c_str());
    return 1;
  }
  std::printf("%s: valid (%zu multi-run entr%s)\n", path.c_str(), reports.size(),
              reports.size() == 1 ? "y" : "ies");
  return 0;
}

int mode_bundle(const std::string& out_path, const std::vector<std::string>& inputs) {
  if (inputs.empty()) {
    std::fprintf(stderr, "bench_gate: --bundle needs at least one input file\n");
    return 2;
  }
  std::vector<MultiRunReport> reports;
  for (const auto& in : inputs) {
    std::string err;
    if (!load_report_file(in, &reports, &err)) {
      std::fprintf(stderr, "bench_gate: %s\n", err.c_str());
      return 2;
    }
  }
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_gate: cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fputs("[\n", f);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (i) std::fputs(",\n", f);
    write_multi_run_json(f, reports[i]);
  }
  std::fputs("]\n", f);
  std::fclose(f);
  std::printf("wrote %s (%zu bench entries)\n", out_path.c_str(), reports.size());
  return 0;
}

int mode_run_smoke(const std::string& json_path, char** child_argv) {
  std::remove(json_path.c_str());
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("bench_gate: fork");
    return 2;
  }
  if (pid == 0) {
    execv(child_argv[0], child_argv);
    std::perror("bench_gate: execv");
    _exit(127);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) < 0) {
    std::perror("bench_gate: waitpid");
    return 2;
  }
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "bench_gate: %s exited with %s %d\n", child_argv[0],
                 WIFSIGNALED(status) ? "signal" : "status",
                 WIFSIGNALED(status) ? WTERMSIG(status) : WEXITSTATUS(status));
    return 1;
  }
  return mode_check(json_path);
}

void usage(std::FILE* f) {
  std::fprintf(f,
               "usage:\n"
               "  bench_gate --baseline=FILE --candidate=FILE [--floor=PCT]\n"
               "             [--allow-missing] [--verbose]\n"
               "  bench_gate --self-test [--baseline=FILE] [--floor=PCT]\n"
               "  bench_gate --check=FILE\n"
               "  bench_gate --bundle=OUT IN1 [IN2 ...]\n"
               "  bench_gate --run-smoke=JSON BIN [ARG ...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline, candidate, check, bundle, run_smoke;
  GateOptions opts;
  bool self_test = false, verbose = false;
  std::vector<std::string> positionals;
  int smoke_argv_start = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto val = [&](const char* prefix) -> std::string {
      return arg.substr(std::strlen(prefix));
    };
    if (arg.rfind("--run-smoke=", 0) == 0) {
      run_smoke = val("--run-smoke=");
      smoke_argv_start = i + 1;
      break;  // everything after is the child command line, verbatim
    }
    if (arg.rfind("--baseline=", 0) == 0) baseline = val("--baseline=");
    else if (arg.rfind("--candidate=", 0) == 0) candidate = val("--candidate=");
    else if (arg.rfind("--check=", 0) == 0) check = val("--check=");
    else if (arg.rfind("--bundle=", 0) == 0) bundle = val("--bundle=");
    else if (arg.rfind("--floor=", 0) == 0) opts.floor_pct = std::atof(val("--floor=").c_str());
    else if (arg == "--allow-missing") opts.allow_missing = true;
    else if (arg == "--verbose") verbose = true;
    else if (arg == "--self-test") self_test = true;
    else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench_gate: unknown flag %s\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      positionals.push_back(arg);
    }
  }

  if (!run_smoke.empty()) {
    if (smoke_argv_start >= argc) {
      std::fprintf(stderr, "bench_gate: --run-smoke needs a binary to run\n");
      return 2;
    }
    return mode_run_smoke(run_smoke, argv + smoke_argv_start);
  }
  if (self_test) return mode_self_test(baseline, opts);
  if (!check.empty()) return mode_check(check);
  if (!bundle.empty()) return mode_bundle(bundle, positionals);
  if (!baseline.empty() && !candidate.empty()) {
    return mode_compare(baseline, candidate, opts, verbose);
  }
  usage(stderr);
  return 2;
}
