// Statistics + machine-readable report layer for the experiment binaries
// (Meterstick-style variability discipline, PAPERS.md): every reported
// number carries its cross-seed spread, snapshots are versioned JSON
// (BENCH_<pr>.json), and scripts/verify.sh's bench-gate stage diffs fresh
// runs against the committed snapshot with a per-metric noise band.
//
// This header is deliberately self-contained (stdlib only) so
// tests/bench_stats_test.cpp and tests/bench_json_test.cpp can exercise
// the stats, schema, and gate logic without pulling in the simulator.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace dyconits::bench {

// ------------------------------------------------------ scalar statistics

inline double vec_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 values.
inline double vec_stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = vec_mean(xs);
  double m2 = 0.0;
  for (const double x : xs) m2 += (x - m) * (x - m);
  return std::sqrt(m2 / static_cast<double>(xs.size() - 1));
}

/// Coefficient of variation as a percentage: 100 * stddev / |mean|.
/// 0 for fewer than 2 values or a zero mean (CoV is undefined there).
inline double vec_cov_pct(const std::vector<double>& xs) {
  const double m = vec_mean(xs);
  if (xs.size() < 2 || m == 0.0) return 0.0;
  return 100.0 * vec_stddev(xs) / std::fabs(m);
}

/// Nearest-rank percentile, same convention as Samples::percentile so a
/// per-run p95 and a cross-run p95 read the same way.
inline double vec_percentile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1) + 0.5);
  return xs[std::min(idx, xs.size() - 1)];
}

/// Safety factor applied to the measured cross-seed spread when recording a
/// metric's noise band. The band protects the regression gate against
/// run-to-run (same-seed) noise that the seed sweep cannot observe; 2x the
/// observed half-range is the documented margin (EXPERIMENTS.md).
inline constexpr double kNoiseBandSafety = 2.0;

/// Noise band as a percentage of the mean: the largest relative deviation
/// of any run from the cross-run mean, times kNoiseBandSafety. 0 when the
/// mean is 0 (the gate falls back to absolute comparison) or under 2 runs.
inline double noise_band_pct(const std::vector<double>& xs) {
  const double m = vec_mean(xs);
  if (xs.size() < 2 || m == 0.0) return 0.0;
  double worst = 0.0;
  for (const double x : xs) worst = std::max(worst, std::fabs(x - m) / std::fabs(m));
  return 100.0 * worst * kNoiseBandSafety;
}

// ------------------------------------------------------ JSON value output

inline std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

/// Renders a double as a JSON number. JSON has no NaN/Inf; a metric that
/// arrives non-finite is clamped (NaN -> 0, +/-Inf -> +/-1e308) so a
/// requested report can never be unparseable. Benches are expected to feed
/// finite values; the clamp is a last line of defense for committed
/// baselines, not a license to emit garbage.
inline std::string json_num(double v) {
  if (std::isnan(v)) v = 0.0;
  if (std::isinf(v)) v = v > 0 ? 1e308 : -1e308;
  char buf[32];
  // 10 significant digits: enough for a written snapshot to rehydrate with
  // sub-1e-6-relative error (the round-trip test pins this), still compact.
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

// ------------------------------------------------------------ run reports

/// One run's report: config, a flat metric map, and per-phase timing
/// percentiles. Every bench that takes --json=FILE fills one of these per
/// seed; run_seeded() (bench_util.h) aggregates them across seeds.
struct JsonReport {
  std::string bench;
  /// Config as (key, already-rendered JSON value) — use json_str/json_num.
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<std::pair<std::string, double>> metrics;
  struct Phase {
    std::string name;
    double mean_ms = 0, p50_ms = 0, p95_ms = 0, p99_ms = 0;
    /// Simulation phase timings are streaming (RunningStats) — mean only;
    /// percentile keys are emitted only where a retained distribution
    /// backs them.
    bool has_percentiles = true;
  };
  std::vector<Phase> phases;
  /// Pass/fail of the run's internal invariants (e.g. e12 byte-identity).
  /// Not serialized; run_seeded() turns it into the process exit code.
  bool ok = true;
};

inline void write_json_report(std::FILE* f, const JsonReport& r) {
  std::fprintf(f, "{\n  \"schema\": 1,\n  \"bench\": %s,\n  \"config\": {",
               json_str(r.bench).c_str());
  for (std::size_t i = 0; i < r.config.size(); ++i) {
    std::fprintf(f, "%s%s: %s", i ? ", " : "", json_str(r.config[i].first).c_str(),
                 r.config[i].second.c_str());
  }
  std::fprintf(f, "},\n  \"metrics\": {");
  for (std::size_t i = 0; i < r.metrics.size(); ++i) {
    std::fprintf(f, "%s%s: %s", i ? ", " : "", json_str(r.metrics[i].first).c_str(),
                 json_num(r.metrics[i].second).c_str());
  }
  std::fprintf(f, "},\n  \"phases\": [");
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    const JsonReport::Phase& p = r.phases[i];
    std::fprintf(f, "%s\n    {\"name\": %s, \"mean_ms\": %s", i ? "," : "",
                 json_str(p.name).c_str(), json_num(p.mean_ms).c_str());
    if (p.has_percentiles) {
      std::fprintf(f, ", \"p50_ms\": %s, \"p95_ms\": %s, \"p99_ms\": %s",
                   json_num(p.p50_ms).c_str(), json_num(p.p95_ms).c_str(),
                   json_num(p.p99_ms).c_str());
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
}

/// Cross-seed summary of one metric. `values` keeps the per-run numbers so
/// a snapshot diff shows *which* seed moved, not just that the mean did.
struct MetricSummary {
  double mean = 0, cov_pct = 0, min = 0, max = 0, band_pct = 0;
  std::vector<double> values;
};

inline MetricSummary summarize(const std::vector<double>& values) {
  MetricSummary s;
  s.values = values;
  s.mean = vec_mean(values);
  s.cov_pct = vec_cov_pct(values);
  s.min = values.empty() ? 0.0 : *std::min_element(values.begin(), values.end());
  s.max = values.empty() ? 0.0 : *std::max_element(values.begin(), values.end());
  s.band_pct = noise_band_pct(values);
  return s;
}

/// A bench configuration measured across >=2 seeds: schema version 2 of the
/// --json output, and the element type of a BENCH_<pr>.json snapshot.
struct MultiRunReport {
  std::string bench;
  std::vector<std::uint64_t> seeds;
  /// Shared config (seed removed — it varies by design).
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<std::pair<std::string, MetricSummary>> metrics;
  struct Phase {
    std::string name;
    MetricSummary mean_ms;
    MetricSummary p95_ms;
    bool has_percentiles = true;
  };
  std::vector<Phase> phases;

  const MetricSummary* find_metric(const std::string& name) const {
    for (const auto& [k, v] : metrics) {
      if (k == name) return &v;
    }
    return nullptr;
  }
};

/// Folds per-seed reports into the cross-seed summary form. Metric and
/// phase order follows the first run; a metric absent from some run simply
/// has fewer values (its summary says so via values.size()).
inline MultiRunReport aggregate_runs(const std::vector<JsonReport>& runs,
                                     const std::vector<std::uint64_t>& seeds) {
  MultiRunReport out;
  if (runs.empty()) return out;
  out.bench = runs.front().bench;
  out.seeds = seeds;
  for (const auto& [k, v] : runs.front().config) {
    if (k != "seed") out.config.emplace_back(k, v);
  }
  std::vector<std::string> metric_order;
  std::map<std::string, std::vector<double>> by_name;
  for (const auto& run : runs) {
    for (const auto& [k, v] : run.metrics) {
      if (by_name.find(k) == by_name.end()) metric_order.push_back(k);
      by_name[k].push_back(v);
    }
  }
  for (const auto& name : metric_order) {
    out.metrics.emplace_back(name, summarize(by_name[name]));
  }
  for (std::size_t pi = 0; pi < runs.front().phases.size(); ++pi) {
    MultiRunReport::Phase ph;
    ph.name = runs.front().phases[pi].name;
    ph.has_percentiles = runs.front().phases[pi].has_percentiles;
    std::vector<double> means, p95s;
    for (const auto& run : runs) {
      for (const auto& p : run.phases) {
        if (p.name != ph.name) continue;
        means.push_back(p.mean_ms);
        if (p.has_percentiles) p95s.push_back(p.p95_ms);
        break;
      }
    }
    ph.mean_ms = summarize(means);
    ph.p95_ms = summarize(p95s);
    out.phases.push_back(std::move(ph));
  }
  return out;
}

inline void write_summary_json(std::FILE* f, const MetricSummary& s) {
  std::fprintf(f, "{\"mean\": %s, \"cov_pct\": %s, \"min\": %s, \"max\": %s, "
               "\"band_pct\": %s, \"values\": [",
               json_num(s.mean).c_str(), json_num(s.cov_pct).c_str(),
               json_num(s.min).c_str(), json_num(s.max).c_str(),
               json_num(s.band_pct).c_str());
  for (std::size_t i = 0; i < s.values.size(); ++i) {
    std::fprintf(f, "%s%s", i ? ", " : "", json_num(s.values[i]).c_str());
  }
  std::fprintf(f, "]}");
}

inline void write_multi_run_json(std::FILE* f, const MultiRunReport& r) {
  std::fprintf(f, "{\n  \"schema\": 2,\n  \"bench\": %s,\n  \"runs\": %zu,\n"
               "  \"seeds\": [",
               json_str(r.bench).c_str(), r.seeds.size());
  for (std::size_t i = 0; i < r.seeds.size(); ++i) {
    std::fprintf(f, "%s%llu", i ? ", " : "",
                 static_cast<unsigned long long>(r.seeds[i]));
  }
  std::fprintf(f, "],\n  \"config\": {");
  for (std::size_t i = 0; i < r.config.size(); ++i) {
    std::fprintf(f, "%s%s: %s", i ? ", " : "", json_str(r.config[i].first).c_str(),
                 r.config[i].second.c_str());
  }
  std::fprintf(f, "},\n  \"metrics\": {");
  for (std::size_t i = 0; i < r.metrics.size(); ++i) {
    std::fprintf(f, "%s\n    %s: ", i ? "," : "",
                 json_str(r.metrics[i].first).c_str());
    write_summary_json(f, r.metrics[i].second);
  }
  std::fprintf(f, "\n  },\n  \"phases\": [");
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    const auto& p = r.phases[i];
    std::fprintf(f, "%s\n    {\"name\": %s, \"mean_ms\": ", i ? "," : "",
                 json_str(p.name).c_str());
    write_summary_json(f, p.mean_ms);
    if (p.has_percentiles) {
      std::fprintf(f, ", \"p95_ms\": ");
      write_summary_json(f, p.p95_ms);
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
}

// ------------------------------------------------------ minimal JSON parse
//
// Strict recursive-descent parser for the report/snapshot schema (objects,
// arrays, strings, finite numbers, true/false/null). Rejects NaN/Inf
// tokens and trailing garbage — exactly the properties the smoke tests and
// the gate need to trust a committed baseline.

struct JsonValue {
  enum class Kind { Null, Bool, Num, Str, Arr, Obj };
  Kind kind = Kind::Null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  /// Insertion-ordered object members (duplicate keys rejected at parse).
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace detail {

struct JsonParser {
  const char* p;
  const char* end;
  std::string err;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }
  bool fail(const std::string& m) {
    if (err.empty()) err = m;
    return false;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    switch (*p) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = JsonValue::Kind::Str; return parse_string(out.str);
      case 't':
        if (end - p >= 4 && std::strncmp(p, "true", 4) == 0) {
          out.kind = JsonValue::Kind::Bool;
          out.b = true;
          p += 4;
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (end - p >= 5 && std::strncmp(p, "false", 5) == 0) {
          out.kind = JsonValue::Kind::Bool;
          out.b = false;
          p += 5;
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (end - p >= 4 && std::strncmp(p, "null", 4) == 0) {
          out.kind = JsonValue::Kind::Null;
          p += 4;
          return true;
        }
        return fail("bad literal (nan is not JSON)");
      default: return parse_number(out);
    }
  }

  bool parse_number(JsonValue& out) {
    // JSON number grammar only: an explicit check so strtod's acceptance of
    // "nan"/"inf"/hex can never leak a non-finite value into a report.
    const char* s = p;
    if (p < end && *p == '-') ++p;
    const char* digits0 = p;
    while (p < end && *p >= '0' && *p <= '9') ++p;
    if (p == digits0) return fail("bad number");
    if (p < end && *p == '.') {
      ++p;
      const char* frac0 = p;
      while (p < end && *p >= '0' && *p <= '9') ++p;
      if (p == frac0) return fail("bad number (empty fraction)");
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      const char* exp0 = p;
      while (p < end && *p >= '0' && *p <= '9') ++p;
      if (p == exp0) return fail("bad number (empty exponent)");
    }
    const std::string tok(s, p);
    const double v = std::strtod(tok.c_str(), nullptr);
    if (!std::isfinite(v)) return fail("non-finite number: " + tok);
    out.kind = JsonValue::Kind::Num;
    out.num = v;
    return true;
  }

  bool parse_string(std::string& out) {
    ++p;  // opening quote
    out.clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\') {
        if (p >= end) return fail("unterminated escape");
        const char e = *p++;
        switch (e) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (end - p < 4) return fail("bad \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = *p++;
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            c = v < 128 ? static_cast<char>(v) : '?';  // reports are ASCII
            break;
          }
          default: return fail("unknown escape");
        }
      }
      out += c;
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::Arr;
    ++p;  // [
    skip_ws();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!parse_value(v)) return false;
      out.arr.push_back(std::move(v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::Obj;
    ++p;  // {
    skip_ws();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      skip_ws();
      if (p >= end || *p != '"') return fail("expected object key");
      std::string key;
      if (!parse_string(key)) return false;
      if (out.find(key) != nullptr) return fail("duplicate key: " + key);
      skip_ws();
      if (p >= end || *p != ':') return fail("expected ':'");
      ++p;
      JsonValue v;
      if (!parse_value(v)) return false;
      out.obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }
};

}  // namespace detail

/// Parses a complete JSON document; trailing non-whitespace is an error.
inline std::optional<JsonValue> json_parse(const std::string& text, std::string* error) {
  detail::JsonParser ps{text.data(), text.data() + text.size(), {}};
  JsonValue v;
  if (!ps.parse_value(v)) {
    if (error) *error = ps.err;
    return std::nullopt;
  }
  ps.skip_ws();
  if (ps.p != ps.end) {
    if (error) *error = "trailing garbage after document";
    return std::nullopt;
  }
  return v;
}

/// Rehydrates a schema-2 object (one element of BENCH_<pr>.json). Returns
/// nullopt with *error set on any missing/mistyped field.
inline std::optional<MultiRunReport> multi_run_from_json(const JsonValue& v,
                                                         std::string* error) {
  const auto bad = [&](const std::string& m) {
    if (error) *error = m;
    return std::nullopt;
  };
  if (v.kind != JsonValue::Kind::Obj) return bad("report is not an object");
  const JsonValue* schema = v.find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::Num || schema->num != 2) {
    return bad("missing or unsupported \"schema\" (want 2)");
  }
  const JsonValue* bench = v.find("bench");
  const JsonValue* seeds = v.find("seeds");
  const JsonValue* config = v.find("config");
  const JsonValue* metrics = v.find("metrics");
  if (bench == nullptr || bench->kind != JsonValue::Kind::Str) return bad("missing bench");
  if (seeds == nullptr || seeds->kind != JsonValue::Kind::Arr) return bad("missing seeds");
  if (config == nullptr || config->kind != JsonValue::Kind::Obj) return bad("missing config");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::Obj) {
    return bad("missing metrics");
  }
  MultiRunReport out;
  out.bench = bench->str;
  for (const auto& s : seeds->arr) {
    if (s.kind != JsonValue::Kind::Num) return bad("non-numeric seed");
    out.seeds.push_back(static_cast<std::uint64_t>(s.num));
  }
  for (const auto& [k, val] : config->obj) {
    out.config.emplace_back(
        k, val.kind == JsonValue::Kind::Str ? json_str(val.str) : json_num(val.num));
  }
  for (const auto& [name, m] : metrics->obj) {
    if (m.kind != JsonValue::Kind::Obj) return bad("metric " + name + " not an object");
    MetricSummary s;
    const JsonValue* mean = m.find("mean");
    const JsonValue* band = m.find("band_pct");
    const JsonValue* cov = m.find("cov_pct");
    if (mean == nullptr || mean->kind != JsonValue::Kind::Num ||
        band == nullptr || band->kind != JsonValue::Kind::Num ||
        cov == nullptr || cov->kind != JsonValue::Kind::Num) {
      return bad("metric " + name + " missing mean/cov_pct/band_pct");
    }
    s.mean = mean->num;
    s.cov_pct = cov->num;
    s.band_pct = band->num;
    if (const JsonValue* mn = m.find("min"); mn && mn->kind == JsonValue::Kind::Num) {
      s.min = mn->num;
    }
    if (const JsonValue* mx = m.find("max"); mx && mx->kind == JsonValue::Kind::Num) {
      s.max = mx->num;
    }
    if (const JsonValue* vals = m.find("values");
        vals && vals->kind == JsonValue::Kind::Arr) {
      for (const auto& x : vals->arr) {
        if (x.kind != JsonValue::Kind::Num) return bad("non-numeric value in " + name);
        s.values.push_back(x.num);
      }
    }
    out.metrics.emplace_back(name, std::move(s));
  }
  return out;
}

// -------------------------------------------------------- regression gate

/// How the gate reads a metric's direction of "worse".
enum class MetricClass {
  LowerBetter,   ///< timings, misses, violations: growth is a regression
  HigherBetter,  ///< throughput, capacity, pass-flags: shrinkage is one
  TwoSided,      ///< deterministic sim outputs: any drift beyond the band
                 ///< is an unexplained behavior change
  Informational  ///< reported, never gated (e.g. real-socket RTT)
};

inline const char* metric_class_name(MetricClass c) {
  switch (c) {
    case MetricClass::LowerBetter: return "lower-better";
    case MetricClass::HigherBetter: return "higher-better";
    case MetricClass::TwoSided: return "two-sided";
    case MetricClass::Informational: return "informational";
  }
  return "?";
}

/// Name-pattern classification, first match wins. Kept as one table so the
/// gate, its tests, and the docs agree on what is gated and which way.
inline MetricClass classify_metric(const std::string& bench, const std::string& name) {
  const auto contains = [&](const char* pat) {
    return name.find(pat) != std::string::npos;
  };
  // Real-socket measurements depend on kernel scheduling and host load;
  // they are recorded for trend-reading, never gated.
  if (bench == "e15_transport" && name.rfind("udp_", 0) == 0) {
    return MetricClass::Informational;
  }
  if (contains("wire_match") || contains("replay_ok")) return MetricClass::HigherBetter;
  if (contains("capacity") || contains("speedup") || contains("mb_per_s") ||
      contains("pool_hits")) {
    return MetricClass::HigherBetter;
  }
  if (contains("cap_violations") || contains("violations") || contains("misses") ||
      contains("dropped") || contains("_ms")) {
    return MetricClass::LowerBetter;
  }
  // Deterministic simulation outputs: byte/frame rates, counters, sheds.
  if (contains("bytes_per_sec") || contains("frames_per_sec") || contains("kbps") ||
      contains("frames_per_s") || contains("pool_high_water") || contains("shed") ||
      contains("deferred") || contains("coalesced") || contains("gaps") ||
      contains("resyncs") || contains("pos_err") || contains("staleness") ||
      contains("queue_kb") || contains("rung") || contains("transitions")) {
    return MetricClass::TwoSided;
  }
  return MetricClass::Informational;
}

struct GateOptions {
  /// Minimum relative threshold: a metric must move more than
  /// max(band_pct, floor_pct) in the bad direction to trip the gate.
  double floor_pct = 5.0;
  /// Absolute tolerance when the baseline mean is 0 (relative change is
  /// undefined): the candidate mean may differ by at most this much.
  double zero_abs_tol = 0.01;
  /// Baseline metrics missing from the candidate are failures (lost
  /// coverage) unless set.
  bool allow_missing = false;
};

struct GateFinding {
  std::string bench;
  std::string metric;
  MetricClass cls = MetricClass::Informational;
  double baseline_mean = 0;
  double candidate_mean = 0;
  double change_pct = 0;     ///< signed relative change vs baseline
  double threshold_pct = 0;  ///< max(bands, floor) actually applied
  bool gated = false;        ///< false: informational, never fails
  bool failed = false;
  std::string note;
};

/// The core comparison rule, unit-tested in tests/bench_stats_test.cpp:
/// relative change in the metric's bad direction must stay within
/// max(baseline band, candidate band, floor).
inline GateFinding gate_metric(const std::string& bench, const std::string& name,
                               const MetricSummary& base, const MetricSummary& cand,
                               const GateOptions& opts) {
  GateFinding f;
  f.bench = bench;
  f.metric = name;
  f.cls = classify_metric(bench, name);
  f.baseline_mean = base.mean;
  f.candidate_mean = cand.mean;
  f.threshold_pct = std::max({base.band_pct, cand.band_pct, opts.floor_pct});
  if (f.cls == MetricClass::Informational) {
    f.note = "informational";
    return f;
  }
  f.gated = true;
  if (base.mean == 0.0) {
    const double drift = std::fabs(cand.mean - base.mean);
    if (drift > opts.zero_abs_tol &&
        (f.cls == MetricClass::TwoSided ||
         (f.cls == MetricClass::LowerBetter && cand.mean > base.mean) ||
         (f.cls == MetricClass::HigherBetter && cand.mean < base.mean))) {
      f.failed = true;
      f.note = "baseline 0, candidate " + json_num(cand.mean) + " (abs tol " +
               json_num(opts.zero_abs_tol) + ")";
    }
    return f;
  }
  f.change_pct = 100.0 * (cand.mean - base.mean) / std::fabs(base.mean);
  double bad_pct = 0.0;
  switch (f.cls) {
    case MetricClass::LowerBetter: bad_pct = std::max(0.0, f.change_pct); break;
    case MetricClass::HigherBetter: bad_pct = std::max(0.0, -f.change_pct); break;
    case MetricClass::TwoSided: bad_pct = std::fabs(f.change_pct); break;
    case MetricClass::Informational: break;
  }
  f.failed = bad_pct > f.threshold_pct;
  return f;
}

/// Gates every metric of `candidate` against the matching `baseline` bench
/// entry. Baseline metrics absent from the candidate fail (unless
/// opts.allow_missing); candidate metrics with no baseline are noted as
/// new, never failed. Returns true when nothing failed.
inline bool gate_reports(const std::vector<MultiRunReport>& baseline,
                         const std::vector<MultiRunReport>& candidate,
                         const GateOptions& opts, std::vector<GateFinding>& findings) {
  bool ok = true;
  for (const auto& cand : candidate) {
    const MultiRunReport* base = nullptr;
    for (const auto& b : baseline) {
      if (b.bench == cand.bench) base = &b;
    }
    if (base == nullptr) {
      GateFinding f;
      f.bench = cand.bench;
      f.metric = "*";
      f.note = "no baseline entry for this bench (new bench?)";
      findings.push_back(std::move(f));
      continue;
    }
    for (const auto& [name, bsum] : base->metrics) {
      const MetricSummary* csum = cand.find_metric(name);
      if (csum == nullptr) {
        GateFinding f;
        f.bench = cand.bench;
        f.metric = name;
        f.cls = classify_metric(cand.bench, name);
        f.gated = f.cls != MetricClass::Informational;
        f.failed = f.gated && !opts.allow_missing;
        f.note = "metric missing from candidate run";
        ok = ok && !f.failed;
        findings.push_back(std::move(f));
        continue;
      }
      GateFinding f = gate_metric(cand.bench, name, bsum, *csum, opts);
      ok = ok && !f.failed;
      findings.push_back(std::move(f));
    }
    for (const auto& [name, csum] : cand.metrics) {
      if (base->find_metric(name) == nullptr) {
        GateFinding f;
        f.bench = cand.bench;
        f.metric = name;
        f.candidate_mean = csum.mean;
        f.note = "new metric (not in baseline)";
        findings.push_back(std::move(f));
      }
    }
  }
  return ok;
}

/// Applies a synthetic regression of `pct` percent in the bad direction to
/// every gated metric of a snapshot — the --self-test fixture.
inline std::vector<MultiRunReport> inject_regression(std::vector<MultiRunReport> reports,
                                                     double pct) {
  for (auto& r : reports) {
    for (auto& [name, s] : r.metrics) {
      const MetricClass cls = classify_metric(r.bench, name);
      if (cls == MetricClass::Informational) continue;
      const double factor =
          cls == MetricClass::HigherBetter ? 1.0 - pct / 100.0 : 1.0 + pct / 100.0;
      s.mean *= factor;
      if (s.mean == 0.0) s.mean = pct;  // zero-baseline metrics drift absolutely
      s.min *= factor;
      s.max *= factor;
      for (double& v : s.values) v *= factor;
    }
  }
  return reports;
}

/// Self-test of the gate machinery against a snapshot (real or synthetic):
/// an identical candidate must pass, a 20% injected regression must trip.
/// Appends a human-readable transcript to *log.
inline bool gate_self_test(const std::vector<MultiRunReport>& baseline,
                           const GateOptions& opts, std::string* log) {
  const auto append = [&](const std::string& s) {
    if (log) *log += s + "\n";
  };
  std::size_t gated = 0;
  for (const auto& r : baseline) {
    for (const auto& [name, s] : r.metrics) {
      (void)s;
      if (classify_metric(r.bench, name) != MetricClass::Informational) ++gated;
    }
  }
  if (gated == 0) {
    append("self-test: FAIL — baseline has no gated metrics");
    return false;
  }
  std::vector<GateFinding> clean_findings;
  const bool clean_ok = gate_reports(baseline, baseline, opts, clean_findings);
  append("self-test: identical candidate -> " +
         std::string(clean_ok ? "pass (expected)" : "FAIL (gate trips on itself)"));
  std::vector<GateFinding> bad_findings;
  const auto injected = inject_regression(baseline, 20.0);
  const bool bad_ok = gate_reports(baseline, injected, opts, bad_findings);
  std::size_t tripped = 0;
  for (const auto& f : bad_findings) {
    if (f.failed) ++tripped;
  }
  append("self-test: injected 20% regression -> " +
         std::string(!bad_ok ? "tripped" : "MISSED") + " (" + std::to_string(tripped) +
         " of " + std::to_string(gated) + " gated metrics)");
  return clean_ok && !bad_ok;
}

/// Built-in fixture so --self-test works with no snapshot on disk.
inline std::vector<MultiRunReport> synthetic_baseline() {
  const auto mk = [](std::vector<double> values) { return summarize(values); };
  MultiRunReport r;
  r.bench = "e14_egress";
  r.seeds = {42, 43, 44, 45, 46};
  r.config = {{"players", json_num(100)}, {"policy", json_str("director")}};
  r.metrics = {
      {"tick_mean_ms", mk({10.0, 10.4, 9.8, 10.1, 10.2})},
      {"egress_bytes_per_sec", mk({1.20e6, 1.22e6, 1.19e6, 1.21e6, 1.20e6})},
      {"egress_frames_per_sec", mk({15000, 15200, 14900, 15100, 15050})},
      {"pool_misses_per_tick", mk({0, 0, 0, 0, 0})},
  };
  return {r};
}

}  // namespace dyconits::bench
