// Shared helpers for the experiment binaries (bench/e*.cpp). Each binary
// reproduces one table/figure of the paper's evaluation (see DESIGN.md §4
// and EXPERIMENTS.md) and prints a paper-style table on stdout. Progress
// goes to stderr so stdout stays machine-readable.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bots/faults.h"
#include "bots/overload_schedule.h"
#include "bots/simulation.h"
#include "trace/trace_flags.h"
#include "util/flags.h"

namespace dyconits::bench {

/// Flags every bench binary accepts (base_config + tracing + help). Pass
/// binary-specific extras to check_flags.
inline std::vector<std::string> common_flag_names() {
  return {"players",          "duration",
          "warmup",           "seed",
          "view",             "workload",
          "faults",           "fault-seed",
          "overload",         "threads",
          trace::kTraceFlag,  trace::kTraceBufferFlag,
          "help"};
}

/// Rejects misspelled flags (--player=100 used to be silently ignored) and
/// arms --trace recording. Call once, right after parsing.
inline void check_flags(const Flags& flags,
                        const std::vector<std::string>& extra = {}) {
  std::vector<std::string> allowed = common_flag_names();
  allowed.insert(allowed.end(), extra.begin(), extra.end());
  flags.assert_known(allowed);
  trace::configure_from_flags(flags);
}

/// Dumps the recorded trace (if --trace was given); call before exiting.
inline void finish_trace(const Flags& flags) {
  trace::write_trace_from_flags(flags, std::cerr);
}

/// Prints the measured per-phase tick breakdown of one run.
inline void print_phase_breakdown(const bots::SimulationResult& r) {
  std::printf("\n-- phase breakdown: policy=%s players=%zu --\n", r.policy.c_str(),
              r.players);
  trace::print_phase_table(std::cout, r.phases);
}

/// Baseline experiment configuration, overridable from the command line:
///   --players=N --duration=SECONDS --warmup=SECONDS --seed=N
///   --workload=walk|village|build|mixed --view=N
/// plus fault injection: --faults=FILE [--fault-seed=N] (see bots/faults.h
/// for the schedule format) and tracing: --trace=FILE [--trace-buffer=N].
inline bots::SimulationConfig base_config(const Flags& flags) {
  bots::SimulationConfig cfg;
  cfg.players = static_cast<std::size_t>(flags.get_int("players", 50));
  cfg.duration = SimDuration::seconds(flags.get_int("duration", 45));
  cfg.warmup = SimDuration::seconds(flags.get_int("warmup", 15));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  cfg.view_distance = static_cast<int>(flags.get_int("view", 8));
  cfg.workload.kind = bots::parse_workload(flags.get_string("workload", "village"));
  cfg.joins_per_tick = 4;
  const std::string fault_file = flags.get_string("faults", "");
  if (!fault_file.empty()) {
    std::string error;
    if (!bots::load_fault_schedule(fault_file, &cfg.faults, &error)) {
      std::fprintf(stderr, "--faults: %s\n", error.c_str());
      std::exit(2);
    }
  }
  cfg.fault_seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 0));
  // --overload=FILE schedules stalled clients / flash crowds / spam bursts
  // (see bots/overload_schedule.h for the format).
  const std::string overload_file = flags.get_string("overload", "");
  if (!overload_file.empty()) {
    std::string error;
    if (!bots::load_overload_schedule(overload_file, &cfg.overload_schedule, &error)) {
      std::fprintf(stderr, "--overload: %s\n", error.c_str());
      std::exit(2);
    }
  }
  // --threads=1 (default) is the serial oracle; >1 shards flush/serialize
  // work across a pool with byte-identical wire output (DESIGN.md §9).
  cfg.flush_threads = static_cast<std::size_t>(flags.get_int("threads", 1));
  return cfg;
}

/// Runs one simulation, narrating to stderr.
inline bots::SimulationResult run(bots::SimulationConfig cfg) {
  std::fprintf(stderr, "  running policy=%-14s players=%-4zu workload=%s ...",
               cfg.policy.c_str(), cfg.players, bots::workload_name(cfg.workload.kind));
  std::fflush(stderr);
  bots::Simulation sim(cfg);
  auto result = sim.run();
  std::fprintf(stderr, " done (%.0f KB/s, tick p95 %.2f ms)\n",
               result.egress_bytes_per_sec / 1000.0, result.tick_ms.percentile(0.95));
  return result;
}

/// Sum of egress bytes over the high-rate update message families — the
/// traffic dyconits manage (chunk streaming/keep-alives are out of scope).
inline std::uint64_t update_bytes(const bots::SimulationResult& r) {
  std::uint64_t b = 0;
  for (const auto type :
       {protocol::MessageType::EntityMove, protocol::MessageType::EntityMoveBatch,
        protocol::MessageType::BlockChange, protocol::MessageType::MultiBlockChange}) {
    const auto it = r.egress_bytes_by_type.find(type);
    if (it != r.egress_bytes_by_type.end()) b += it->second;
  }
  return b;
}

inline void print_title(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline double pct_change(double baseline, double value) {
  return baseline > 0 ? 100.0 * (value - baseline) / baseline : 0.0;
}

}  // namespace dyconits::bench
