// Shared helpers for the experiment binaries (bench/e*.cpp). Each binary
// reproduces one table/figure of the paper's evaluation (see DESIGN.md §4
// and EXPERIMENTS.md) and prints a paper-style table on stdout. Progress
// goes to stderr so stdout stays machine-readable.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_stats.h"
#include "bots/faults.h"
#include "bots/overload_schedule.h"
#include "bots/simulation.h"
#include "trace/trace_flags.h"
#include "util/flags.h"

namespace dyconits::bench {

/// Flags every bench binary accepts (base_config + tracing + help). Pass
/// binary-specific extras to check_flags.
inline std::vector<std::string> common_flag_names() {
  return {"players",          "duration",
          "warmup",           "seed",
          "seeds",            "runs",
          "json",             "view",
          "workload",         "faults",
          "fault-seed",       "overload",
          "threads",          trace::kTraceFlag,
          trace::kTraceBufferFlag,
          "help"};
}

/// Rejects misspelled flags (--player=100 used to be silently ignored) and
/// arms --trace recording. Call once, right after parsing.
inline void check_flags(const Flags& flags,
                        const std::vector<std::string>& extra = {}) {
  std::vector<std::string> allowed = common_flag_names();
  allowed.insert(allowed.end(), extra.begin(), extra.end());
  flags.assert_known(allowed);
  trace::configure_from_flags(flags);
}

/// Dumps the recorded trace (if --trace was given); call before exiting.
inline void finish_trace(const Flags& flags) {
  trace::write_trace_from_flags(flags, std::cerr);
}

/// Prints the measured per-phase tick breakdown of one run.
inline void print_phase_breakdown(const bots::SimulationResult& r) {
  std::printf("\n-- phase breakdown: policy=%s players=%zu --\n", r.policy.c_str(),
              r.players);
  trace::print_phase_table(std::cout, r.phases);
}

/// Baseline experiment configuration, overridable from the command line:
///   --players=N --duration=SECONDS --warmup=SECONDS --seed=N
///   --workload=walk|village|build|mixed --view=N
/// plus fault injection: --faults=FILE [--fault-seed=N] (see bots/faults.h
/// for the schedule format) and tracing: --trace=FILE [--trace-buffer=N].
inline bots::SimulationConfig base_config(const Flags& flags) {
  bots::SimulationConfig cfg;
  cfg.players = static_cast<std::size_t>(flags.get_int("players", 50));
  cfg.duration = SimDuration::seconds(flags.get_int("duration", 45));
  cfg.warmup = SimDuration::seconds(flags.get_int("warmup", 15));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  cfg.view_distance = static_cast<int>(flags.get_int("view", 8));
  cfg.workload.kind = bots::parse_workload(flags.get_string("workload", "village"));
  cfg.joins_per_tick = 4;
  const std::string fault_file = flags.get_string("faults", "");
  if (!fault_file.empty()) {
    std::string error;
    if (!bots::load_fault_schedule(fault_file, &cfg.faults, &error)) {
      std::fprintf(stderr, "--faults: %s\n", error.c_str());
      std::exit(2);
    }
  }
  cfg.fault_seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 0));
  // --overload=FILE schedules stalled clients / flash crowds / spam bursts
  // (see bots/overload_schedule.h for the format).
  const std::string overload_file = flags.get_string("overload", "");
  if (!overload_file.empty()) {
    std::string error;
    if (!bots::load_overload_schedule(overload_file, &cfg.overload_schedule, &error)) {
      std::fprintf(stderr, "--overload: %s\n", error.c_str());
      std::exit(2);
    }
  }
  // --threads=1 (default) is the serial oracle; >1 shards flush/serialize
  // work across a pool with byte-identical wire output (DESIGN.md §9).
  cfg.flush_threads = static_cast<std::size_t>(flags.get_int("threads", 1));
  return cfg;
}

/// Runs one simulation, narrating to stderr.
inline bots::SimulationResult run(bots::SimulationConfig cfg) {
  std::fprintf(stderr, "  running policy=%-14s players=%-4zu workload=%s ...",
               cfg.policy.c_str(), cfg.players, bots::workload_name(cfg.workload.kind));
  std::fflush(stderr);
  bots::Simulation sim(cfg);
  auto result = sim.run();
  std::fprintf(stderr, " done (%.0f KB/s, tick p95 %.2f ms)\n",
               result.egress_bytes_per_sec / 1000.0, result.tick_ms.percentile(0.95));
  return result;
}

/// Sum of egress bytes over the high-rate update message families — the
/// traffic dyconits manage (chunk streaming/keep-alives are out of scope).
inline std::uint64_t update_bytes(const bots::SimulationResult& r) {
  std::uint64_t b = 0;
  for (const auto type :
       {protocol::MessageType::EntityMove, protocol::MessageType::EntityMoveBatch,
        protocol::MessageType::BlockChange, protocol::MessageType::MultiBlockChange}) {
    const auto it = r.egress_bytes_by_type.find(type);
    if (it != r.egress_bytes_by_type.end()) b += it->second;
  }
  return b;
}

// ------------------------------------------- --json=FILE / --seeds / --runs
//
// Machine-readable run reports (schema in bench_stats.h), so experiment
// results can be committed and diffed (BENCH_*.json) instead of scraped
// out of stdout tables. With more than one seed the written report is the
// schema-2 cross-seed form: per-metric mean, CoV, and noise band.

/// Seeds for this invocation: --seeds=a,b,c wins; else --runs=N expands to
/// seed, seed+1, ..., seed+N-1 (base from --seed, default 42); else the
/// single --seed. Meterstick (PAPERS.md): report across >=5 seeds.
inline std::vector<std::uint64_t> seed_list(const Flags& flags) {
  std::vector<std::uint64_t> seeds;
  const std::string listed = flags.get_string("seeds", "");
  if (!listed.empty()) {
    std::stringstream ss(listed);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      seeds.push_back(static_cast<std::uint64_t>(std::stoull(tok)));
    }
    return seeds;
  }
  const auto base = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto runs = static_cast<std::uint64_t>(flags.get_int("runs", 1));
  for (std::uint64_t i = 0; i < std::max<std::uint64_t>(runs, 1); ++i) {
    seeds.push_back(base + i);
  }
  return seeds;
}

/// Honors --json=FILE for a set of per-seed reports: one seed writes the
/// schema-1 single-run report, several write the schema-2 cross-seed
/// summary. Exits(2) if the file cannot be created — a requested report
/// that silently vanishes poisons committed baselines.
inline bool maybe_write_json(const Flags& flags, const std::vector<JsonReport>& runs,
                             const std::vector<std::uint64_t>& seeds) {
  const std::string path = flags.get_string("json", "");
  if (path.empty() || runs.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: --json=%s: cannot open for writing\n", path.c_str());
    std::exit(2);
  }
  if (runs.size() == 1) {
    write_json_report(f, runs.front());
  } else {
    write_multi_run_json(f, aggregate_runs(runs, seeds));
  }
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

/// Single-report convenience overload (benches that drive their own seeds).
inline bool maybe_write_json(const Flags& flags, const JsonReport& r) {
  return maybe_write_json(flags, std::vector<JsonReport>{r}, seed_list(flags));
}

/// Multi-seed driver: runs `one_run(seed)` once per seed (announcing
/// repeats on stdout so tables stay attributable), aggregates the per-seed
/// JsonReports, and honors --json. Returns the process exit code: 1 if any
/// run cleared JsonReport::ok, else 0.
inline int run_seeded(const Flags& flags,
                      const std::function<JsonReport(std::uint64_t seed)>& one_run) {
  const auto seeds = seed_list(flags);
  std::vector<JsonReport> runs;
  bool ok = true;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    if (seeds.size() > 1) {
      std::printf("\n##### run %zu/%zu (seed %llu) #####\n", i + 1, seeds.size(),
                  static_cast<unsigned long long>(seeds[i]));
      std::fprintf(stderr, "-- run %zu/%zu (seed %llu)\n", i + 1, seeds.size(),
                   static_cast<unsigned long long>(seeds[i]));
    }
    runs.push_back(one_run(seeds[i]));
    ok = ok && runs.back().ok;
  }
  maybe_write_json(flags, runs, seeds);
  return ok ? 0 : 1;
}

/// Fills the shared parts of a simulation-backed report: config (players,
/// seed, policy, workload, threads, duration), core egress/tick metrics,
/// and the per-phase breakdown with mean/p50/p95/p99.
inline JsonReport simulation_report(const std::string& bench,
                                    const bots::SimulationConfig& cfg,
                                    const bots::SimulationResult& r) {
  JsonReport out;
  out.bench = bench;
  out.config = {
      {"players", json_num(static_cast<double>(cfg.players))},
      {"seed", json_num(static_cast<double>(cfg.seed))},
      {"policy", json_str(cfg.policy)},
      {"workload", json_str(bots::workload_name(cfg.workload.kind))},
      {"view_distance", json_num(cfg.view_distance)},
      {"duration_s", json_num(cfg.duration.as_seconds())},
      {"flush_threads", json_num(static_cast<double>(cfg.flush_threads))},
  };
  out.metrics = {
      {"egress_bytes_per_sec", r.egress_bytes_per_sec},
      {"egress_frames_per_sec", r.egress_frames_per_sec},
      {"tick_mean_ms", r.tick_ms.mean()},
      {"tick_p50_ms", r.tick_ms.percentile(0.5)},
      {"tick_p95_ms", r.tick_ms.percentile(0.95)},
      {"tick_p99_ms", r.tick_ms.percentile(0.99)},
  };
  for (const auto& p : r.phases.phases) {
    out.phases.push_back({p.name, p.ms.mean(), 0, 0, 0, /*has_percentiles=*/false});
  }
  return out;
}

inline void print_title(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline double pct_change(double baseline, double value) {
  return baseline > 0 ? 100.0 * (value - baseline) / baseline : 0.0;
}

}  // namespace dyconits::bench
