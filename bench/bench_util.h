// Shared helpers for the experiment binaries (bench/e*.cpp). Each binary
// reproduces one table/figure of the paper's evaluation (see DESIGN.md §4
// and EXPERIMENTS.md) and prints a paper-style table on stdout. Progress
// goes to stderr so stdout stays machine-readable.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bots/faults.h"
#include "bots/overload_schedule.h"
#include "bots/simulation.h"
#include "trace/trace_flags.h"
#include "util/flags.h"

namespace dyconits::bench {

/// Flags every bench binary accepts (base_config + tracing + help). Pass
/// binary-specific extras to check_flags.
inline std::vector<std::string> common_flag_names() {
  return {"players",          "duration",
          "warmup",           "seed",
          "view",             "workload",
          "faults",           "fault-seed",
          "overload",         "threads",
          trace::kTraceFlag,  trace::kTraceBufferFlag,
          "help"};
}

/// Rejects misspelled flags (--player=100 used to be silently ignored) and
/// arms --trace recording. Call once, right after parsing.
inline void check_flags(const Flags& flags,
                        const std::vector<std::string>& extra = {}) {
  std::vector<std::string> allowed = common_flag_names();
  allowed.insert(allowed.end(), extra.begin(), extra.end());
  flags.assert_known(allowed);
  trace::configure_from_flags(flags);
}

/// Dumps the recorded trace (if --trace was given); call before exiting.
inline void finish_trace(const Flags& flags) {
  trace::write_trace_from_flags(flags, std::cerr);
}

/// Prints the measured per-phase tick breakdown of one run.
inline void print_phase_breakdown(const bots::SimulationResult& r) {
  std::printf("\n-- phase breakdown: policy=%s players=%zu --\n", r.policy.c_str(),
              r.players);
  trace::print_phase_table(std::cout, r.phases);
}

/// Baseline experiment configuration, overridable from the command line:
///   --players=N --duration=SECONDS --warmup=SECONDS --seed=N
///   --workload=walk|village|build|mixed --view=N
/// plus fault injection: --faults=FILE [--fault-seed=N] (see bots/faults.h
/// for the schedule format) and tracing: --trace=FILE [--trace-buffer=N].
inline bots::SimulationConfig base_config(const Flags& flags) {
  bots::SimulationConfig cfg;
  cfg.players = static_cast<std::size_t>(flags.get_int("players", 50));
  cfg.duration = SimDuration::seconds(flags.get_int("duration", 45));
  cfg.warmup = SimDuration::seconds(flags.get_int("warmup", 15));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  cfg.view_distance = static_cast<int>(flags.get_int("view", 8));
  cfg.workload.kind = bots::parse_workload(flags.get_string("workload", "village"));
  cfg.joins_per_tick = 4;
  const std::string fault_file = flags.get_string("faults", "");
  if (!fault_file.empty()) {
    std::string error;
    if (!bots::load_fault_schedule(fault_file, &cfg.faults, &error)) {
      std::fprintf(stderr, "--faults: %s\n", error.c_str());
      std::exit(2);
    }
  }
  cfg.fault_seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 0));
  // --overload=FILE schedules stalled clients / flash crowds / spam bursts
  // (see bots/overload_schedule.h for the format).
  const std::string overload_file = flags.get_string("overload", "");
  if (!overload_file.empty()) {
    std::string error;
    if (!bots::load_overload_schedule(overload_file, &cfg.overload_schedule, &error)) {
      std::fprintf(stderr, "--overload: %s\n", error.c_str());
      std::exit(2);
    }
  }
  // --threads=1 (default) is the serial oracle; >1 shards flush/serialize
  // work across a pool with byte-identical wire output (DESIGN.md §9).
  cfg.flush_threads = static_cast<std::size_t>(flags.get_int("threads", 1));
  return cfg;
}

/// Runs one simulation, narrating to stderr.
inline bots::SimulationResult run(bots::SimulationConfig cfg) {
  std::fprintf(stderr, "  running policy=%-14s players=%-4zu workload=%s ...",
               cfg.policy.c_str(), cfg.players, bots::workload_name(cfg.workload.kind));
  std::fflush(stderr);
  bots::Simulation sim(cfg);
  auto result = sim.run();
  std::fprintf(stderr, " done (%.0f KB/s, tick p95 %.2f ms)\n",
               result.egress_bytes_per_sec / 1000.0, result.tick_ms.percentile(0.95));
  return result;
}

/// Sum of egress bytes over the high-rate update message families — the
/// traffic dyconits manage (chunk streaming/keep-alives are out of scope).
inline std::uint64_t update_bytes(const bots::SimulationResult& r) {
  std::uint64_t b = 0;
  for (const auto type :
       {protocol::MessageType::EntityMove, protocol::MessageType::EntityMoveBatch,
        protocol::MessageType::BlockChange, protocol::MessageType::MultiBlockChange}) {
    const auto it = r.egress_bytes_by_type.find(type);
    if (it != r.egress_bytes_by_type.end()) b += it->second;
  }
  return b;
}

// ------------------------------------------------------------- --json=FILE
//
// Machine-readable run reports, so experiment results can be committed and
// diffed (BENCH_*.json) instead of scraped out of stdout tables.

/// One report: run config, a flat metric map, and per-phase timing
/// percentiles. Every bench that takes --json=FILE fills one of these.
struct JsonReport {
  std::string bench;
  /// Config as (key, already-rendered JSON value) — use json_str/json_num.
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<std::pair<std::string, double>> metrics;
  struct Phase {
    std::string name;
    double mean_ms = 0, p50_ms = 0, p95_ms = 0, p99_ms = 0;
    /// Simulation phase timings are streaming (RunningStats) — mean only;
    /// percentile keys are emitted only where a retained distribution
    /// backs them.
    bool has_percentiles = true;
  };
  std::vector<Phase> phases;
};

inline std::string json_str(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

inline std::string json_num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

inline void write_json_report(std::FILE* f, const JsonReport& r) {
  std::fprintf(f, "{\n  \"bench\": %s,\n  \"config\": {", json_str(r.bench).c_str());
  for (std::size_t i = 0; i < r.config.size(); ++i) {
    std::fprintf(f, "%s%s: %s", i ? ", " : "", json_str(r.config[i].first).c_str(),
                 r.config[i].second.c_str());
  }
  std::fprintf(f, "},\n  \"metrics\": {");
  for (std::size_t i = 0; i < r.metrics.size(); ++i) {
    std::fprintf(f, "%s%s: %s", i ? ", " : "", json_str(r.metrics[i].first).c_str(),
                 json_num(r.metrics[i].second).c_str());
  }
  std::fprintf(f, "},\n  \"phases\": [");
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    const JsonReport::Phase& p = r.phases[i];
    std::fprintf(f, "%s\n    {\"name\": %s, \"mean_ms\": %s", i ? "," : "",
                 json_str(p.name).c_str(), json_num(p.mean_ms).c_str());
    if (p.has_percentiles) {
      std::fprintf(f, ", \"p50_ms\": %s, \"p95_ms\": %s, \"p99_ms\": %s",
                   json_num(p.p50_ms).c_str(), json_num(p.p95_ms).c_str(),
                   json_num(p.p99_ms).c_str());
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
}

/// Honors --json=FILE: writes the report and returns true, or does nothing
/// when the flag is absent. Exits(2) if the file cannot be created — a
/// requested report that silently vanishes poisons committed baselines.
inline bool maybe_write_json(const Flags& flags, const JsonReport& r) {
  const std::string path = flags.get_string("json", "");
  if (path.empty()) return false;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: --json=%s: cannot open for writing\n", path.c_str());
    std::exit(2);
  }
  write_json_report(f, r);
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

/// Fills the shared parts of a simulation-backed report: config (players,
/// seed, policy, workload, threads, duration), core egress/tick metrics,
/// and the per-phase breakdown with mean/p50/p95/p99.
inline JsonReport simulation_report(const std::string& bench,
                                    const bots::SimulationConfig& cfg,
                                    const bots::SimulationResult& r) {
  JsonReport out;
  out.bench = bench;
  out.config = {
      {"players", json_num(static_cast<double>(cfg.players))},
      {"seed", json_num(static_cast<double>(cfg.seed))},
      {"policy", json_str(cfg.policy)},
      {"workload", json_str(bots::workload_name(cfg.workload.kind))},
      {"view_distance", json_num(cfg.view_distance)},
      {"duration_s", json_num(cfg.duration.as_seconds())},
      {"flush_threads", json_num(static_cast<double>(cfg.flush_threads))},
  };
  out.metrics = {
      {"egress_bytes_per_sec", r.egress_bytes_per_sec},
      {"egress_frames_per_sec", r.egress_frames_per_sec},
      {"tick_mean_ms", r.tick_ms.mean()},
      {"tick_p50_ms", r.tick_ms.percentile(0.5)},
      {"tick_p95_ms", r.tick_ms.percentile(0.95)},
      {"tick_p99_ms", r.tick_ms.percentile(0.99)},
  };
  for (const auto& p : r.phases.phases) {
    out.phases.push_back({p.name, p.ms.mean(), 0, 0, 0, /*has_percentiles=*/false});
  }
  return out;
}

inline void print_title(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline double pct_change(double baseline, double value) {
  return baseline > 0 ? 100.0 * (value - baseline) / baseline : 0.0;
}

}  // namespace dyconits::bench
