// E10 — The consistency/capacity trade-off frontier: static conit bounds
// swept over (staleness θ, numerical δ). Each point trades observed
// staleness for bandwidth — the curve the dynamic policy navigates at
// runtime.
//
//   e10_bounds_sweep [--players=60] [--thetas=0,100,250,500,1000,2500]
//                    [--deltas_x10=5,40,320] [--duration=35]
//                    [--runs=N | --seeds=a,b,c] [--json=FILE]
#include "bench_util.h"

using namespace dyconits;
using namespace dyconits::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags, {"thetas", "deltas_x10"});
  const auto thetas = flags.get_int_list("thetas", {0, 100, 250, 500, 1000, 2500});
  const auto deltas_x10 = flags.get_int_list("deltas_x10", {5, 40, 320});

  print_title("E10: static bounds sweep (θ staleness ms x δ numerical weight)");
  std::printf("%-8s %-8s %12s %12s %12s %12s %12s\n", "θ ms", "δ", "update KB/s",
              "stale p99", "coalesced %", "tick p95 ms", "pos err");
  print_rule();

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
  JsonReport report;
  report.bench = "e10_bounds_sweep";
  report.config = {
      {"players", json_num(static_cast<double>(flags.get_int("players", 60)))},
      {"seed", json_num(static_cast<double>(seed))},
  };
  double baseline_rate = 0.0;
  for (const auto theta : thetas) {
    for (const auto dx10 : deltas_x10) {
      const double delta = static_cast<double>(dx10) / 10.0;
      auto cfg = base_config(flags);
      cfg.seed = seed;
      cfg.players = static_cast<std::size_t>(flags.get_int("players", 60));
      cfg.duration = SimDuration::seconds(flags.get_int("duration", 35));
      cfg.policy =
          "static:" + std::to_string(theta) + ":" + std::to_string(delta);
      cfg.record_staleness = true;
      const auto r = run(cfg);
      const double rate = static_cast<double>(update_bytes(r)) / r.measured_seconds;
      if (theta == thetas.front() && dx10 == deltas_x10.front()) baseline_rate = rate;
      report.metrics.push_back({"update_kbps.t" + std::to_string(theta) + ".d" +
                                    std::to_string(dx10),
                                rate / 1000.0});
      report.metrics.push_back({"staleness_p99_ms.t" + std::to_string(theta) + ".d" +
                                    std::to_string(dx10),
                                r.staleness_ms.percentile(0.99)});
      const auto& s = r.dyconit_stats;
      const double coalesce_pct =
          s.enqueued > 0 ? 100.0 * static_cast<double>(s.coalesced) /
                               static_cast<double>(s.enqueued)
                         : 0.0;
      std::printf("%-8lld %-8.1f %12.1f %12.0f %11.1f%% %12.2f %12.3f\n",
                  static_cast<long long>(theta), delta, rate / 1000.0,
                  r.staleness_ms.percentile(0.99), coalesce_pct,
                  r.tick_ms.percentile(0.95), r.pos_error_mean.mean());
    }
    print_rule();
  }
  std::printf("(first row is the tightest configuration: %0.1f KB/s of update traffic)\n",
              baseline_rate / 1000.0);
  return report;
  });
  finish_trace(flags);
  return rc;
}
