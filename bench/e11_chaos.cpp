// E11 — Chaos: graceful degradation under injected network faults
// (DESIGN.md §18, EXPERIMENTS.md E11). Sweeps per-frame loss rates while a
// fixed partition-and-heal plus one subscriber crash-and-restart run in the
// background, and reports what the paper's middleware must guarantee even
// then: bounded inconsistency (zero post-recovery bound violations),
// recovery latency after the last heal, and byte-identical replay from the
// same seed + fault plan.
//
//   e11_chaos [--players=24] [--duration=45] [--loss=0,2,5,10,20]
//             [--faults=FILE] [--fault-seed=N]
//             [--runs=N | --seeds=a,b,c] [--json=FILE]
#include <cstring>
#include <sstream>

#include "bench_util.h"

using namespace dyconits;
using namespace dyconits::bench;

namespace {

struct ChaosOutcome {
  bots::SimulationResult result;
  std::uint64_t bound_violations = 0;  // post-heal queues left over their bounds
  double recovery_s = -1.0;            // heal -> pos error back near baseline
  std::uint64_t fingerprint = 0;       // replay check: final world + wire state
};

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ull;
}

/// One chaos run: `loss` on every link, a partition of a quarter of the
/// fleet at warmup+10s for 3s, and bot 0 crashing at warmup+17s for 3s.
ChaosOutcome run_chaos(const Flags& flags, std::uint64_t seed, double loss) {
  auto cfg = base_config(flags);
  cfg.seed = seed;
  cfg.players = static_cast<std::size_t>(flags.get_int("players", 24));
  // The replay check demands byte-identical reruns; the policy's load
  // signal must therefore come from the modeled cost, not host wall clock.
  cfg.deterministic_load = true;
  cfg.record_timelines = true;
  cfg.faults.link.loss = loss;
  const double part0 = cfg.warmup.as_seconds() + 10.0;
  const double crash0 = part0 + 7.0;
  cfg.faults.events.push_back(
      {bots::ScheduledFault::Kind::Partition, part0, part0 + 3.0, 0, 0.25});
  cfg.faults.events.push_back(
      {bots::ScheduledFault::Kind::Crash, crash0, crash0 + 3.0, 0, 0.0});
  const SimTime heal = SimTime::zero() + SimDuration::micros(
                                             static_cast<std::int64_t>((crash0 + 3.0) * 1e6));

  ChaosOutcome out;
  bots::Simulation sim(cfg);
  // Invariant check: after every post-heal tick (the policy has flushed),
  // no subscriber queue may still violate its bounds. Transient violations
  // *during* the fault window are expected — that is the degradation the
  // middleware is absorbing; leftover ones after recovery are bugs.
  sim.set_tick_hook([&](bots::Simulation& s, SimTime now) {
    if (now <= heal + SimDuration::seconds(1)) return;
    s.server().dyconits().for_each([&](dyconit::Dyconit& d) {
      d.for_each_subscriber([&](dyconit::SubscriberId, dyconit::Bounds& b,
                                const dyconit::SubscriberQueue& q) {
        if (q.violates(b, now)) ++out.bound_violations;
      });
    });
  });
  const auto ticks =
      static_cast<std::uint64_t>(cfg.duration.count_micros() /
                                 sim.server().config().tick_interval.count_micros());
  for (std::uint64_t i = 0; i < ticks; ++i) sim.step_tick();

  // Replay fingerprint before finalize: ground truth + exact wire totals.
  std::uint64_t fp = 1469598103934665603ull;
  sim.server().entities().for_each([&](const entity::Entity& e) {
    fp = fnv(fp, e.id);
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(e.pos.x));
    std::memcpy(&bits, &e.pos.x, sizeof(bits));
    fp = fnv(fp, bits);
    std::memcpy(&bits, &e.pos.z, sizeof(bits));
    fp = fnv(fp, bits);
  });
  fp = fnv(fp, sim.network().total_bytes());
  fp = fnv(fp, sim.network().total_frames());
  fp = fnv(fp, sim.network().total_dropped_frames());
  out.fingerprint = fp;

  sim.finalize();
  out.result = std::move(sim.result());

  // Recovery latency: first post-heal second where the mean positional
  // error is back within 1.5x of the pre-fault baseline (+0.25 blocks of
  // noise floor).
  const auto& series = out.result.registry.series("pos_error_mean");
  double baseline = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : series.points()) {
    const double ts = t.as_seconds();
    if (ts >= cfg.warmup.as_seconds() && ts < part0) {
      baseline += v;
      ++n;
    }
  }
  if (n > 0) baseline /= static_cast<double>(n);
  for (const auto& [t, v] : series.points()) {
    if (t <= heal) continue;
    if (v <= baseline * 1.5 + 0.25) {
      out.recovery_s = (t - heal).as_seconds();
      break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags, {"loss"});

  std::vector<double> losses;
  {
    std::stringstream ss(flags.get_string("loss", "0,2,5,10,20"));
    std::string tok;
    while (std::getline(ss, tok, ',')) losses.push_back(std::stod(tok) / 100.0);
  }

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
  JsonReport report;
  report.bench = "e11_chaos";
  report.config = {
      {"players", json_num(static_cast<double>(flags.get_int("players", 24)))},
      {"seed", json_num(static_cast<double>(seed))},
      {"losses", json_str(flags.get_string("loss", "0,2,5,10,20"))},
  };
  bool all_replay_ok = true;
  print_title("E11: graceful degradation vs per-frame loss rate");
  std::printf("(fixed schedule per run: 25%% partition for 3 s, then bot 0 "
              "crash/restart for 3 s)\n");
  std::printf("%6s %8s %8s %8s %8s %8s %8s %10s %10s %8s\n", "loss%", "dropped",
              "gaps", "resyncs", "served", "reconn", "pruned", "violate", "recover_s",
              "replay");
  print_rule(100);
  for (const double loss : losses) {
    auto out = run_chaos(flags, seed, loss);
    // Replay check: the identical config must reproduce the identical final
    // world and wire history, faults and all.
    const auto again = run_chaos(flags, seed, loss);
    const bool replay_ok = again.fingerprint == out.fingerprint;
    all_replay_ok = all_replay_ok && replay_ok;
    const auto& r = out.result;
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".loss%g", loss * 100.0);
    report.metrics.push_back({std::string("gaps") + suffix,
                              static_cast<double>(r.gaps_detected)});
    report.metrics.push_back({std::string("resyncs_served") + suffix,
                              static_cast<double>(r.resyncs_served)});
    report.metrics.push_back({std::string("bound_violations") + suffix,
                              static_cast<double>(out.bound_violations)});
    std::printf("%6.1f %8llu %8llu %8llu %8llu %8llu %8llu %10llu %10.1f %8s\n",
                loss * 100.0, static_cast<unsigned long long>(r.frames_dropped),
                static_cast<unsigned long long>(r.gaps_detected),
                static_cast<unsigned long long>(r.resyncs_requested),
                static_cast<unsigned long long>(r.resyncs_served),
                static_cast<unsigned long long>(r.reconnects),
                static_cast<unsigned long long>(r.replica_pruned),
                static_cast<unsigned long long>(out.bound_violations), out.recovery_s,
                replay_ok ? "ok" : "MISMATCH");
  }
  std::printf(
      "(violate: post-recovery subscriber queues still over their bounds after the\n"
      " policy flushed — must be 0; recover_s: seconds from last heal until client\n"
      " positional error returned to its pre-fault baseline)\n");
  report.metrics.push_back({"replay_ok", all_replay_ok ? 1.0 : 0.0});
  report.ok = all_replay_ok;
  return report;
  });
  finish_trace(flags);
  return rc;
}
