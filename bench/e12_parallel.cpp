// E12 — Parallel flush/serialize pipeline (DESIGN.md §9): tick CPU vs
// --threads, with the byte-identity check against the single-threaded
// oracle run inline (every row's wire hash must equal the threads=1 row's).
//
// The flush pipeline shards per-subscriber flush work (take + pack +
// serialize) across a thread pool and merges in canonical order, so the
// tick thread's flush phase shrinks toward the merge cost while the wire
// stream stays byte-identical. Speedup requires real cores: on a
// single-core host (common in CI containers) the sweep degenerates into a
// determinism check plus a measurement of the sharding overhead.
//
//   e12_parallel [--threads-list=1,2,4,8] [--players=500] [--duration=45]
//                [--runs=N | --seeds=a,b,c] [--json=FILE]
#include <sstream>
#include <vector>

#include "bench_util.h"

using namespace dyconits;
using namespace dyconits::bench;

namespace {

double phase_mean(const trace::TickProfiler::Report& r, const std::string& name) {
  for (const auto& p : r.phases) {
    if (p.name == name) return p.ms.mean();
  }
  return 0.0;
}

struct Row {
  std::size_t threads = 0;
  bots::SimulationResult result;
  std::uint64_t wire_hash = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags, {"threads-list"});

  std::vector<std::size_t> thread_counts;
  {
    std::stringstream ss(flags.get_string("threads-list", "1,2,4,8"));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      thread_counts.push_back(static_cast<std::size_t>(std::stoul(tok)));
    }
  }

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
  std::vector<Row> rows;
  for (const std::size_t threads : thread_counts) {
    auto cfg = base_config(flags);
    cfg.seed = seed;
    cfg.players = static_cast<std::size_t>(flags.get_int("players", 500));
    cfg.policy = "director";
    cfg.mobs = 50;
    cfg.env_ticks = 4;
    cfg.profile_phases = true;
    cfg.flush_threads = threads;
    // Keep the byte-identity column meaningful on any host: the director
    // adapts on the modeled (deterministic) load signal, while the CPU
    // columns still report real measured time.
    cfg.deterministic_load = true;
    std::fprintf(stderr, "  running threads=%zu players=%zu ...", threads,
                 cfg.players);
    std::fflush(stderr);
    Row row;
    row.threads = threads;
    // Simulation (not bench::run) so the network's wire hash is readable
    // after the run for the byte-identity column.
    bots::Simulation sim(cfg);
    row.result = sim.run();
    row.wire_hash = sim.network().wire_hash();
    std::fprintf(stderr, " done (tick p99 %.2f ms)\n",
                 row.result.tick_ms.percentile(0.99));
    rows.push_back(std::move(row));
  }

  print_title("E12: parallel flush pipeline vs serial oracle");
  std::printf("host hardware concurrency: %u (speedup needs real cores; "
              "byte-identity holds regardless)\n\n",
              std::thread::hardware_concurrency());
  std::printf("%8s %10s %10s %10s %10s %10s %10s %8s %18s %5s\n", "threads",
              "tick mean", "tick p99", "dispatch", "flush", "workers", "merge",
              "speedup", "wire hash", "match");
  print_rule(108);

  // Speedup of the work the pipeline parallelizes: dispatch (enqueue) +
  // the tick thread's flush phase (serial: take+account+pack+send; parallel:
  // shard wait + merge+send).
  double base_ms = 0.0;
  std::uint64_t oracle_hash = 0;
  bool all_match = true;
  JsonReport report;
  report.bench = "e12_parallel";
  report.config = {
      {"players", json_num(static_cast<double>(flags.get_int("players", 500)))},
      {"seed", json_num(static_cast<double>(seed))},
      {"duration_s", json_num(static_cast<double>(flags.get_int("duration", 45)))},
      {"threads_list", json_str(flags.get_string("threads-list", "1,2,4,8"))},
  };
  for (const Row& row : rows) {
    const auto& ph = row.result.phases;
    const double dispatch = phase_mean(ph, "server.dispatch");
    const double flush = phase_mean(ph, "server.dyconit_flush");
    const double work = dispatch + flush;
    if (row.threads == thread_counts.front()) {
      base_ms = work;
      oracle_hash = row.wire_hash;
    }
    const bool match = row.wire_hash == oracle_hash;
    all_match = all_match && match;
    const std::string t = ".t" + std::to_string(row.threads);
    report.metrics.push_back({"tick_mean_ms" + t, row.result.tick_ms.mean()});
    report.metrics.push_back({"flush_ms" + t, flush});
    report.metrics.push_back({"dispatch_ms" + t, dispatch});
    report.metrics.push_back({"speedup" + t, work > 0 ? base_ms / work : 0.0});
    std::printf("%8zu %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f %7.2fx   %016llx %5s\n",
                row.threads, row.result.tick_ms.mean(),
                row.result.tick_ms.percentile(0.99), dispatch, flush,
                phase_mean(ph, "dyconit.flush_workers"),
                phase_mean(ph, "dyconit.flush_merge"),
                work > 0 ? base_ms / work : 0.0,
                (unsigned long long)row.wire_hash, match ? "OK" : "DIFF");
  }
  print_rule(108);
  std::printf("wire streams %s across thread counts\n",
              all_match ? "byte-identical" : "DIVERGED — determinism bug");
  report.metrics.push_back({"wire_match", all_match ? 1.0 : 0.0});
  report.ok = all_match;
  return report;
  });

  finish_trace(flags);
  return rc;
}
