// E13 — Overload control: the degradation curve under offered load
// (DESIGN.md §10, EXPERIMENTS.md E13). Sweeps an offered-load multiplier
// over a fixed overload scenario — one stalled (frozen) client, a spam
// burst, and a flash crowd arriving mid-run — and reports, with and without
// the overload subsystem, how the server degrades: tick cost, update
// latency, and (with it on) where the degradation ladder settled and what
// each rung shed. Per-subscriber egress queues must stay under the cap at
// every load point.
//
//   e13_overload [--players=30] [--duration=45] [--load=1,2,4,8]
//                [--runs=N | --seeds=a,b,c] [--json=FILE]
//                [--overload=FILE]   # replaces the built-in scenario
#include <algorithm>
#include <sstream>

#include "bench_util.h"

using namespace dyconits;
using namespace dyconits::bench;

namespace {

struct OverloadOutcome {
  bots::SimulationResult result;
  std::uint64_t max_queue_bytes = 0;  // max per-subscriber egress queue seen
  std::uint64_t cap_violations = 0;   // ticks where any queue exceeded the cap
};

OverloadOutcome run_overload(const Flags& flags, std::uint64_t seed, double load,
                             bool enabled) {
  auto cfg = base_config(flags);
  cfg.seed = seed;
  cfg.players = static_cast<std::size_t>(flags.get_int("players", 30));
  cfg.deterministic_load = true;
  cfg.record_timelines = true;
  cfg.server_egress_rate = 256 * 1024;  // constrained uplink: backlog is possible
  cfg.overload.enabled = enabled;
  // Self-calibrating ladder: engage when the modeled send cost outruns what
  // the 256 KB/s uplink can drain (~13 KB/tick ~= 0.33 ms of the 50 ms
  // budget), not when the CPU budget itself is gone — the uplink saturates
  // first here. The thresholds are derived from this capacity at server
  // construction (derive_budget_from_uplink) instead of hand-keyed.
  cfg.overload.uplink_bytes_per_second = 256 * 1024;

  if (cfg.overload_schedule.events.empty()) {
    // Built-in scenario: bot 0 freezes for the back half, everyone spams
    // `load`x from warmup+5s, and a flash crowd of 25% arrives at +10s.
    const double w = cfg.warmup.as_seconds();
    const double end = cfg.duration.as_seconds();
    cfg.overload_schedule.events.push_back(
        {bots::ScheduledOverload::Kind::Stall, w, end, 0, 0, 1.0});
    if (load > 1.0) {
      cfg.overload_schedule.events.push_back(
          {bots::ScheduledOverload::Kind::Spam, w + 5.0, end, 0, 0, load});
    }
    cfg.overload_schedule.events.push_back(
        {bots::ScheduledOverload::Kind::Flash, w + 10.0, 0, 0,
         std::max<std::size_t>(1, cfg.players / 4), 1.0});
  }

  OverloadOutcome out;
  bots::Simulation sim(cfg);
  const std::uint64_t cap = cfg.overload.queue_cap_bytes;
  sim.set_tick_hook([&](bots::Simulation& s, SimTime) {
    bool over = false;
    for (const auto& bot : s.bots()) {
      if (!bot->joined()) continue;
      // Subscriber id == client endpoint id (see GameServer::handle_join).
      const std::uint64_t q = s.server().egress_queue_bytes(bot->endpoint());
      out.max_queue_bytes = std::max(out.max_queue_bytes, q);
      if (enabled && q > cap) over = true;
    }
    if (over) ++out.cap_violations;
  });
  const auto ticks =
      static_cast<std::uint64_t>(cfg.duration.count_micros() /
                                 sim.server().config().tick_interval.count_micros());
  for (std::uint64_t i = 0; i < ticks; ++i) sim.step_tick();
  sim.finalize();
  out.result = std::move(sim.result());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags, {"load"});

  std::vector<double> loads;
  {
    std::stringstream ss(flags.get_string("load", "1,2,4,8"));
    std::string tok;
    while (std::getline(ss, tok, ',')) loads.push_back(std::stod(tok));
  }

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
  JsonReport report;
  report.bench = "e13_overload";
  report.config = {
      {"players", json_num(static_cast<double>(flags.get_int("players", 30)))},
      {"seed", json_num(static_cast<double>(seed))},
      {"duration_s", json_num(static_cast<double>(flags.get_int("duration", 45)))},
      {"loads", json_str(flags.get_string("load", "1,2,4,8"))},
  };
  print_title("E13: degradation ladder vs offered load");
  std::printf("(scenario per run: one frozen client, spam burst at LOADx, flash crowd\n"
              " of 25%% mid-run; constrained 256 KB/s uplink; off = overload control\n"
              " disabled at the same load)\n");
  std::printf("%5s %9s %9s %4s %6s %9s %9s %8s %8s %7s %7s %8s %9s\n", "load",
              "tick_off", "tick_on", "rung", "trans", "coalesce", "shed", "defer",
              "refuse", "kick", "capXs", "peakQ_KB", "lat_p95");
  print_rule(112);
  for (const double load : loads) {
    const auto off = run_overload(flags, seed, load, false);
    const auto on = run_overload(flags, seed, load, true);
    const auto& r = on.result;
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), ".x%g", load);
    report.metrics.push_back({std::string("tick_off_p95_ms") + suffix,
                              off.result.tick_ms.percentile(0.95)});
    report.metrics.push_back({std::string("tick_on_p95_ms") + suffix,
                              r.tick_ms.percentile(0.95)});
    report.metrics.push_back({std::string("egress_shed") + suffix,
                              static_cast<double>(r.egress_shed)});
    report.metrics.push_back({std::string("chunks_deferred") + suffix,
                              static_cast<double>(r.chunks_deferred)});
    report.metrics.push_back({std::string("cap_violations") + suffix,
                              static_cast<double>(on.cap_violations)});
    report.metrics.push_back({std::string("peak_queue_kb") + suffix,
                              static_cast<double>(on.max_queue_bytes) / 1024.0});
    report.metrics.push_back({std::string("update_lat_p95_ms") + suffix,
                              r.update_latency_ms.percentile(0.95)});
    std::printf("%5.1f %9.2f %9.2f %4d %6llu %9llu %9llu %8llu %8llu %7llu %7llu %8.1f %9.1f\n",
                load, off.result.tick_ms.percentile(0.95), r.tick_ms.percentile(0.95),
                r.final_rung, static_cast<unsigned long long>(r.ladder_transitions),
                static_cast<unsigned long long>(r.egress_coalesced),
                static_cast<unsigned long long>(r.egress_shed),
                static_cast<unsigned long long>(r.chunks_deferred),
                static_cast<unsigned long long>(r.joins_refused),
                static_cast<unsigned long long>(r.overload_disconnects),
                static_cast<unsigned long long>(on.cap_violations),
                static_cast<double>(on.max_queue_bytes) / 1024.0,
                r.update_latency_ms.percentile(0.95));
  }
  std::printf(
      "(tick_*: p95 modeled+measured tick cost ms; rung: final ladder rung;\n"
      " shed: moves evicted/dropped at the queue cap; capXs: ticks with any\n"
      " per-subscriber queue over the cap — must be 0; peakQ_KB: largest\n"
      " per-subscriber egress queue observed)\n");
  return report;
  });
  finish_trace(flags);
  return rc;
}
