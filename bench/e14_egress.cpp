// E14 — Zero-allocation egress (DESIGN.md §11). Measures what the pooled
// frame buffers, encode-once broadcast frames, chunk RLE cache, and the
// exact sizing visitor buy on the hot egress path: steady-state frame-buffer
// allocations per tick (pool misses — must amortize to zero), flush-phase
// mean time, and wire throughput.
//
//   e14_egress [--players=200] [--duration=45] [--threads=1]
//              [--runs=N | --seeds=a,b,c] [--json=FILE]
//              [--assert-alloc-ceiling=X]   fail (exit 1) if steady-state
//                                           pool misses/tick exceed X
#include <cstring>

#include "bench_util.h"
#include "net/buffer_pool.h"

using namespace dyconits;
using namespace dyconits::bench;

namespace {

double phase_mean(const bots::SimulationResult& r, const char* name) {
  for (const auto& p : r.phases.phases) {
    if (p.name == name) return p.ms.mean();
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags, {"policy", "assert-alloc-ceiling"});

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
    auto cfg = base_config(flags);
    cfg.seed = seed;
    cfg.players = static_cast<std::size_t>(flags.get_int("players", 200));
    cfg.policy = flags.get_string("policy", "director");
    cfg.profile_phases = true;

    const auto r = run(cfg);

    print_title("E14: zero-allocation egress");
  std::printf("%-34s %14s\n", "metric", "value");
  print_rule(50);
  std::printf("%-34s %14.1f\n", "egress KB/s", r.egress_bytes_per_sec / 1000.0);
  std::printf("%-34s %14.0f\n", "egress frames/s", r.egress_frames_per_sec);
  std::printf("%-34s %14.3f\n", "tick mean (ms)", r.tick_ms.mean());
  std::printf("%-34s %14.3f\n", "tick p95 (ms)", r.tick_ms.percentile(0.95));
  std::printf("%-34s %14.3f\n", "flush phase mean (ms)",
              phase_mean(r, "server.dyconit_flush"));
  std::printf("%-34s %14.3f\n", "serialize_send mean (ms)",
              phase_mean(r, "server.serialize_send"));
  std::printf("%-34s %14llu\n", "pool hits (window)",
              static_cast<unsigned long long>(r.pool_hits));
  std::printf("%-34s %14llu\n", "pool misses (window)",
              static_cast<unsigned long long>(r.pool_misses));
  std::printf("%-34s %14.4f\n", "allocations/tick (pool misses)",
              r.pool_misses_per_tick);
  std::printf("%-34s %14zu\n", "pool high water (buffers)", r.pool_high_water);

    print_title("E14b: measured tick-phase breakdown (ms per tick)");
    print_phase_breakdown(r);

    JsonReport report = simulation_report("e14_egress", cfg, r);
    report.metrics.push_back({"pool_hits", static_cast<double>(r.pool_hits)});
    report.metrics.push_back({"pool_misses", static_cast<double>(r.pool_misses)});
    report.metrics.push_back({"pool_misses_per_tick", r.pool_misses_per_tick});
    report.metrics.push_back({"pool_high_water", static_cast<double>(r.pool_high_water)});

    // Perf-smoke gate for scripts/verify.sh: steady-state frame-buffer heap
    // allocations must stay under the pinned ceiling (0 once capacity warms).
    const std::string ceiling_s = flags.get_string("assert-alloc-ceiling", "");
    if (!ceiling_s.empty()) {
      const double ceiling = std::atof(ceiling_s.c_str());
      if (r.pool_misses_per_tick > ceiling) {
        std::fprintf(stderr,
                     "FAIL: steady-state allocations/tick %.4f exceeds ceiling %.4f\n",
                     r.pool_misses_per_tick, ceiling);
        report.ok = false;
      } else {
        std::fprintf(stderr, "alloc ceiling ok: %.4f <= %.4f\n",
                     r.pool_misses_per_tick, ceiling);
      }
    }
    return report;
  });
  finish_trace(flags);
  return rc;
}
