// E15 — Transport layer (DESIGN.md §12). Micro-benchmarks the UDP wire
// path added with net::UdpTransport: datagram framing (encode/parse),
// fragmentation + reassembly of over-MTU frames, and — where sockets are
// available — real UDP loopback throughput and round-trip latency between
// two transports in one process. All timings are wall-clock (this layer is
// real I/O, not simulation).
//
//   e15_transport [--iters=N] [--batch=FRAMES] [--payload=BYTES]
//                 [--runs=N | --seeds=a,b,c] [--json=FILE]
//
// Timings are wall-clock, so the seeds only label the repeats: --runs=N
// measures the same configuration N times and the schema-2 JSON records
// the run-to-run spread (the honest noise band for this real-I/O bench).
#include <chrono>
#include <cstring>

#include "bench_util.h"
#include "net/buffer_pool.h"
#include "net/udp_framing.h"
#include "net/udp_transport.h"

using namespace dyconits;
using namespace dyconits::bench;

namespace {

double now_ms() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count()) /
         1e6;
}

net::Frame make_frame(std::uint8_t tag, std::uint32_t seq, std::size_t payload_len) {
  net::Frame f;
  f.tag = tag;
  f.seq = seq;
  f.payload.resize(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    f.payload[i] = static_cast<std::uint8_t>((i * 131 + tag) & 0xFF);
  }
  return f;
}

JsonReport::Phase phase_of(const std::string& name, const Samples& s) {
  return {name, s.mean(), s.percentile(0.5), s.percentile(0.95), s.percentile(0.99)};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  flags.assert_known({"iters", "batch", "payload", "json", "seed", "seeds", "runs",
                      "help"});
  if (flags.has("help")) {
    std::printf("usage: e15_transport [--iters=N] [--batch=FRAMES] [--payload=BYTES] "
                "[--runs=N | --seeds=a,b,c] [--json=FILE]\n");
    return 0;
  }
  const auto iters = static_cast<std::size_t>(flags.get_int("iters", 200));
  const auto batch = static_cast<std::size_t>(flags.get_int("batch", 256));
  const auto payload = static_cast<std::size_t>(flags.get_int("payload", 96));

  return run_seeded(flags, [&](std::uint64_t) {
  JsonReport report;
  report.bench = "e15_transport";
  report.config = {{"iters", json_num(static_cast<double>(iters))},
                   {"batch", json_num(static_cast<double>(batch))},
                   {"payload", json_num(static_cast<double>(payload))},
                   {"mtu", json_num(static_cast<double>(net::udpwire::kDefaultMtu))}};

  // -- framing: encode + parse a batch of typical update-sized frames --
  Samples encode_ms, parse_ms;
  std::uint64_t framed_bytes = 0;
  for (std::size_t it = 0; it < iters; ++it) {
    std::vector<net::Frame> in;
    in.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
      in.push_back(make_frame(static_cast<std::uint8_t>(1 + i % 20),
                              static_cast<std::uint32_t>(i + 1), payload));
    }
    std::vector<std::uint8_t> body;
    const double t0 = now_ms();
    for (const auto& f : in) net::udpwire::append_frame(body, f);
    const double t1 = now_ms();
    std::vector<net::Frame> out;
    if (!net::udpwire::parse_frames(body.data(), body.size(), out) || out.size() != batch) {
      std::fprintf(stderr, "FAIL: framing round-trip broken\n");
      std::exit(1);
    }
    const double t2 = now_ms();
    encode_ms.add(t1 - t0);
    parse_ms.add(t2 - t1);
    framed_bytes += body.size();
    for (auto& f : out) net::BufferPool::instance().release(std::move(f.payload));
  }

  // -- fragmentation: split + reassemble one 64 KiB frame per iteration --
  Samples frag_ms;
  for (std::size_t it = 0; it < iters; ++it) {
    const net::Frame big = make_frame(11, static_cast<std::uint32_t>(it + 1), 64 * 1024);
    const double t0 = now_ms();
    const auto datagrams =
        net::udpwire::fragment_frame(big, net::udpwire::kDefaultMtu, static_cast<std::uint32_t>(it));
    net::udpwire::Reassembler reasm;
    std::optional<net::Frame> got;
    for (const auto& d : datagrams) {
      got = reasm.feed(d.data() + 1, d.size() - 1, SimTime::zero());
    }
    const double t1 = now_ms();
    if (!got || got->payload != big.payload) {
      std::fprintf(stderr, "FAIL: fragment round-trip broken\n");
      std::exit(1);
    }
    frag_ms.add(t1 - t0);
    net::BufferPool::instance().release(std::move(got->payload));
  }

  report.phases.push_back(phase_of("framing.encode_batch", encode_ms));
  report.phases.push_back(phase_of("framing.parse_batch", parse_ms));
  report.phases.push_back(phase_of("framing.fragment_roundtrip_64k", frag_ms));
  const double framing_mb_per_s =
      encode_ms.mean() + parse_ms.mean() > 0
          ? (static_cast<double>(framed_bytes) / static_cast<double>(iters)) / 1e6 /
                ((encode_ms.mean() + parse_ms.mean()) / 1e3)
          : 0.0;
  report.metrics.push_back({"framing_mb_per_s", framing_mb_per_s});

  // -- real sockets: loopback one-way batches and single-frame RTT --
  SimClock clock;
  net::UdpConfig ucfg;
  net::UdpTransport rx(clock, ucfg), tx(clock, ucfg);
  Samples batch_ms, rtt_ms;
  if (rx.valid() && tx.valid()) {
    const net::EndpointId rx_local = rx.create_endpoint("rx");
    const net::EndpointId tx_local = tx.create_endpoint("tx");
    const net::EndpointId to_rx = tx.add_peer("127.0.0.1", rx.local_port(), "rx");
    net::EndpointId to_tx = net::kInvalidEndpoint;  // learned from first datagram

    for (std::size_t it = 0; it < iters; ++it) {
      const double t0 = now_ms();
      for (std::size_t i = 0; i < batch; ++i) {
        tx.send(tx_local, to_rx,
                make_frame(static_cast<std::uint8_t>(1 + i % 20),
                           static_cast<std::uint32_t>(it * batch + i + 1), payload));
      }
      tx.flush_egress();
      std::size_t seen = 0;
      const double deadline = t0 + 2000.0;
      while (seen < batch && now_ms() < deadline) {
        rx.pump(1);
        for (auto& d : rx.poll(rx_local)) {
          to_tx = d.from;
          ++seen;
          net::BufferPool::instance().release(std::move(d.frame.payload));
        }
      }
      if (seen != batch) {
        std::fprintf(stderr, "note: loopback batch lost %zu/%zu frames\n", batch - seen,
                     batch);
        break;
      }
      batch_ms.add(now_ms() - t0);
    }

    for (std::size_t it = 0; it < iters && to_tx != net::kInvalidEndpoint; ++it) {
      const double t0 = now_ms();
      tx.send(tx_local, to_rx, make_frame(5, static_cast<std::uint32_t>(1e6 + it), 16));
      tx.flush_egress();
      bool ponged = false;
      const double deadline = t0 + 2000.0;
      while (!ponged && now_ms() < deadline) {
        rx.pump(1);
        for (auto& d : rx.poll(rx_local)) {
          net::BufferPool::instance().release(std::move(d.frame.payload));
          rx.send(rx_local, to_tx, make_frame(6, static_cast<std::uint32_t>(2e6 + it), 16));
          rx.flush_egress();
        }
        tx.pump(0);
        for (auto& d : tx.poll(tx_local)) {
          net::BufferPool::instance().release(std::move(d.frame.payload));
          ponged = true;
        }
      }
      if (!ponged) break;
      rtt_ms.add(now_ms() - t0);
    }

    report.phases.push_back(phase_of("udp.loopback_batch", batch_ms));
    report.phases.push_back(phase_of("udp.rtt", rtt_ms));
    if (batch_ms.count() > 0 && batch_ms.mean() > 0) {
      report.metrics.push_back(
          {"udp_loopback_frames_per_s",
           static_cast<double>(batch) / (batch_ms.mean() / 1e3)});
    }
    report.metrics.push_back({"udp_rtt_p50_ms", rtt_ms.percentile(0.5)});
  } else {
    std::fprintf(stderr, "note: sockets unavailable (%s); framing-only run\n",
                 rx.error().c_str());
  }

  print_title("E15: transport layer");
  std::printf("%-34s %14s %10s %10s\n", "phase (ms)", "mean", "p95", "p99");
  print_rule(72);
  for (const auto& p : report.phases) {
    std::printf("%-34s %14.4f %10.4f %10.4f\n", p.name.c_str(), p.mean_ms, p.p95_ms,
                p.p99_ms);
  }
  std::printf("\n%-34s %14s\n", "metric", "value");
  print_rule(50);
  for (const auto& [k, v] : report.metrics) std::printf("%-34s %14.2f\n", k.c_str(), v);

  return report;
  });
}
