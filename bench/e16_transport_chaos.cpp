// E16 — Chaos over real transports (DESIGN.md §13, EXPERIMENTS.md E16).
// Three claims about net::FaultInjectingTransport, the decorator that
// extends the sim's seeded fault grammar to real sockets:
//
//  1. Determinism (--replay-check): the per-frame fault decisions are a
//     pure function of (plan seed, frame offer order). Two same-seed
//     wrappers offered the same synthetic frame schedule must produce
//     identical decision hashes, injection ledgers, and delivered sets —
//     and a different seed must diverge. This is the property the
//     e2e-chaos-udp verify stage leans on.
//  2. Loss tolerance: a GameServer and its bots, each on their own real
//     UDP socket in one process, survive seeded egress loss — joins
//     retry through lost acks, gap tracking converts loss into resyncs,
//     and every bot ends the run joined.
//  3. Congestion feedback: injected sender-edge send failures (modeled
//     EAGAIN) flow through send_pressure() into the degradation ladder.
//     The fault run must show rung transitions; the identically loaded
//     control run must show none — proving the ladder engaged on real
//     socket backpressure, not modeled backlog.
//
//   e16_transport_chaos [--replay-check] [--ticks=N] [--bots=N] [--mobs=N]
//                       [--loss=0,10] [--sendfail=P]
//                       [--runs=N | --seeds=a,b,c] [--json=FILE]
#include <memory>
#include <sstream>

#include "bench_util.h"
#include "bots/bot.h"
#include "dyconit/policies/factory.h"
#include "net/buffer_pool.h"
#include "net/fault_transport.h"
#include "net/sim_network.h"
#include "net/udp_transport.h"
#include "server/game_server.h"
#include "util/rng.h"
#include "world/terrain.h"
#include "world/world.h"

using namespace dyconits;
using namespace dyconits::bench;

namespace {

net::Frame make_frame(std::uint8_t tag, std::uint32_t seq, std::size_t payload_len) {
  net::Frame f;
  f.tag = tag;
  f.seq = seq;
  f.payload = net::BufferPool::instance().acquire();
  f.payload.resize(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    f.payload[i] = static_cast<std::uint8_t>((i * 131 + tag) & 0xFF);
  }
  return f;
}

// ------------------------------------------------------------ replay check

struct ReplayOutcome {
  std::uint64_t decision_hash = 0;
  std::uint64_t decisions = 0;
  std::uint64_t delivered = 0;
  net::FaultStats injected;
};

/// Pushes a fixed synthetic frame schedule (seeded independently of the
/// plan) through a FaultInjectingTransport over a no-fault SimNetwork and
/// digests every fault decision. Everything observable must be a pure
/// function of plan_seed.
ReplayOutcome replay_run(std::uint64_t plan_seed, std::size_t frames) {
  SimClock clock;
  net::SimNetwork inner(clock);
  net::FaultInjectingTransport faultnet(inner, clock);
  const net::EndpointId a = faultnet.create_endpoint("a");
  const net::EndpointId b = faultnet.create_endpoint("b");
  inner.connect(a, b, {});

  net::FaultPlan plan;
  plan.seed = plan_seed;
  plan.all_links.loss = 0.10;
  plan.all_links.duplicate = 0.05;
  plan.all_links.corrupt = 0.05;
  plan.all_links.reorder = 0.10;
  plan.all_links.send_fail = 0.05;
  // Scheduled windows exercise the refusal path too: one link flap and one
  // remote-crash window mid-schedule.
  plan.events.push_back({SimTime::zero() + SimDuration::millis(40),
                         net::FaultEvent::Kind::LinkDown, a, b});
  plan.events.push_back({SimTime::zero() + SimDuration::millis(80),
                         net::FaultEvent::Kind::LinkUp, a, b});
  plan.events.push_back({SimTime::zero() + SimDuration::millis(120),
                         net::FaultEvent::Kind::Crash, b, net::kInvalidEndpoint});
  plan.events.push_back({SimTime::zero() + SimDuration::millis(160),
                         net::FaultEvent::Kind::Restart, b, net::kInvalidEndpoint});
  faultnet.set_fault_plan(plan);

  ReplayOutcome out;
  Rng sched(0xE16E16ull);  // the frame schedule itself: same for every seed
  for (std::size_t i = 0; i < frames; ++i) {
    const auto tag = static_cast<std::uint8_t>(1 + sched.next_below(20));
    const auto len = static_cast<std::size_t>(8 + sched.next_below(120));
    faultnet.send(a, b, make_frame(tag, static_cast<std::uint32_t>(i + 1), len));
    if ((i + 1) % 16 == 0) {
      faultnet.flush_egress();
      clock.advance(SimDuration::millis(5));
      for (auto& d : faultnet.poll(b)) {
        ++out.delivered;
        net::BufferPool::instance().release(std::move(d.frame.payload));
      }
    }
  }
  // Let every reorder holdback come due, then drain the tail.
  clock.advance(SimDuration::seconds(1));
  faultnet.flush_egress();
  clock.advance(SimDuration::millis(5));
  for (auto& d : faultnet.poll(b)) {
    ++out.delivered;
    net::BufferPool::instance().release(std::move(d.frame.payload));
  }
  out.decision_hash = faultnet.decision_hash();
  out.decisions = faultnet.frames_offered();
  out.injected = faultnet.injected_totals();
  return out;
}

/// Returns true (and prints the evidence) iff same-seed runs replay
/// byte-identically and a different seed diverges.
bool replay_check(std::size_t frames) {
  const ReplayOutcome r1 = replay_run(/*plan_seed=*/7, frames);
  const ReplayOutcome r2 = replay_run(/*plan_seed=*/7, frames);
  const ReplayOutcome r3 = replay_run(/*plan_seed=*/8, frames);
  const bool identical = r1.decision_hash == r2.decision_hash &&
                         r1.decisions == r2.decisions && r1.delivered == r2.delivered &&
                         r1.injected.dropped.frames == r2.injected.dropped.frames &&
                         r1.injected.duplicated == r2.injected.duplicated &&
                         r1.injected.corrupted == r2.injected.corrupted &&
                         r1.injected.reordered == r2.injected.reordered &&
                         r1.injected.refused == r2.injected.refused;
  const bool diverges = r1.decision_hash != r3.decision_hash;
  std::printf(
      "replay_check=%s decisions=%llu delivered=%llu drops=%llu dups=%llu "
      "corrupt=%llu reorder=%llu refused=%llu decision_hash=%016llx "
      "seed_divergence=%s\n",
      identical ? "ok" : "FAIL", static_cast<unsigned long long>(r1.decisions),
      static_cast<unsigned long long>(r1.delivered),
      static_cast<unsigned long long>(r1.injected.dropped.frames),
      static_cast<unsigned long long>(r1.injected.duplicated),
      static_cast<unsigned long long>(r1.injected.corrupted),
      static_cast<unsigned long long>(r1.injected.reordered),
      static_cast<unsigned long long>(r1.injected.refused),
      static_cast<unsigned long long>(r1.decision_hash), diverges ? "ok" : "FAIL");
  return identical && diverges;
}

// ------------------------------------------- real-socket chaos tick loop

struct SocketChaosConfig {
  std::uint64_t ticks = 240;
  std::size_t bots = 3;
  std::size_t mobs = 64;
  std::uint64_t seed = 42;
  /// Per-frame loss on the server's egress, active the whole run.
  double loss = 0.0;
  /// Sender-edge send-failure probability, active only inside
  /// [fault_on_tick, fault_off_tick) — a congestion window.
  double send_fail = 0.0;
  std::uint64_t fault_on_tick = 0;
  std::uint64_t fault_off_tick = 0;
  bool overload = false;
  /// Ladder budget (see derive_budget_from_uplink). The congestion section
  /// calibrates this from a probe run instead of trusting a fixed number.
  std::uint64_t uplink_bytes_per_second = 256 * 1024;
};

struct SocketOutcome {
  bool sockets_ok = false;
  std::size_t joined = 0;
  std::size_t sessions = 0;
  std::uint64_t gaps = 0, resyncs_requested = 0, resyncs_served = 0, dup_or_old = 0;
  std::uint64_t liveness_resets = 0;
  net::FaultStats injected;
  std::uint64_t send_failures = 0;
  std::uint64_t congested_peak = 0;
  std::uint64_t ladder_transitions = 0;
  int max_rung = 0, final_rung = 0;
  double egress_kb_per_tick = 0.0;
  /// Highest per-tick cost the ladder saw (modeled CPU + net, µs).
  double peak_tick_cost_us = 0.0;
  /// Highest cost the steady workload SUSTAINS for engage_ticks(8)
  /// consecutive ticks — max over t of min(cost[t..t+7]). This is the exact
  /// statistic the ladder's engage counter tests, so the calibration probe's
  /// value bounds what a fault-free run can ever trip.
  double sustained_cost_us = 0.0;
  /// Ladder-cost range inside the fault window (diagnostic: the min is what
  /// must clear the engage threshold for engage_ticks consecutive ticks).
  double window_cost_min_us = 0.0, window_cost_max_us = 0.0;
};

/// One GameServer and `bots` BotClients, each on their OWN UdpTransport
/// (real loopback sockets, separate ports), fast-ticked: sim time advances
/// 50 ms per iteration but nothing waits on the wall clock beyond the pump.
SocketOutcome run_socket_chaos(const SocketChaosConfig& c) {
  SocketOutcome out;
  SimClock clock;
  // The bot treats a join sent at exactly t=0 as "never sent" — start one
  // tick in so retries stay armed.
  clock.advance(SimDuration::millis(50));
  world::World world(std::make_unique<world::TerrainGenerator>(42));

  net::UdpConfig ucfg;
  ucfg.idle_timeout = SimDuration(0);
  net::UdpTransport sudp(clock, ucfg);
  if (!sudp.valid()) return out;
  net::FaultInjectingTransport snet(sudp, clock);

  net::FaultPlan loss_plan;
  loss_plan.seed = c.seed ^ 0xE16ull;
  loss_plan.all_links.loss = c.loss;
  net::FaultPlan window_plan = loss_plan;
  window_plan.all_links.send_fail = c.send_fail;
  snet.set_fault_plan(loss_plan);

  server::ServerConfig scfg;
  scfg.keepalive_interval_ticks = 10;
  // Small interest sets: the join-time chunk burst ends within a few ticks,
  // so steady-state egress (mob moves packed inside everyone's view) is what
  // the ladder sees — not a chunk-streaming tail that would blur the
  // faulted/control comparison.
  scfg.view_distance = 2;
  scfg.mob_count = c.mobs;
  scfg.mob_spawn_radius = 24.0;
  scfg.mob_seed = c.seed;
  scfg.deterministic_load = true;
  scfg.overload.enabled = c.overload;
  scfg.overload.uplink_bytes_per_second = c.uplink_bytes_per_second;
  // The join-time chunk burst costs several ms/tick for a few ticks —
  // legitimate, brief, and present in faulted and control runs alike.
  // Requiring 8 consecutive over-budget ticks lets that burst pass while
  // the 30-tick send-failure window still engages with margin.
  scfg.overload.engage_ticks = 8;
  server::GameServer server(clock, snet, world, dyconit::make_policy("zero"), scfg);

  struct BotLane {
    std::unique_ptr<net::UdpTransport> udp;
    std::unique_ptr<bots::BotClient> bot;
  };
  std::vector<BotLane> lanes;
  for (std::size_t i = 0; i < c.bots; ++i) {
    BotLane lane;
    lane.udp = std::make_unique<net::UdpTransport>(clock, ucfg);
    if (!lane.udp->valid()) return out;
    const net::EndpointId server_ep =
        lane.udp->add_peer("127.0.0.1", sudp.local_port(), "server");
    bots::BotConfig bc;
    bc.join_retry = SimDuration::millis(250);
    bc.join_retry_backoff = 2.0;
    bc.join_retry_max = SimDuration::seconds(2);
    // Liveness only matters when loss can eat acks; the congestion window
    // deliberately starves clients, and churned sessions would blur the
    // ladder evidence.
    bc.liveness_timeout = c.loss > 0.0 ? SimDuration::seconds(2) : SimDuration(0);
    char name[16];
    std::snprintf(name, sizeof(name), "bot%03zu", i);
    lane.bot = std::make_unique<bots::BotClient>(clock, *lane.udp, world, server_ep,
                                                 name, c.seed * 1000 + i, bc);
    lanes.push_back(std::move(lane));
  }
  out.sockets_ok = true;

  std::uint64_t egress_before = 0;
  std::vector<double> steady_costs;
  for (std::uint64_t tick = 0; tick < c.ticks; ++tick) {
    if (c.send_fail > 0.0 && tick == c.fault_on_tick) snet.set_fault_plan(window_plan);
    if (c.send_fail > 0.0 && tick == c.fault_off_tick) snet.set_fault_plan(loss_plan);
    sudp.pump(0);
    for (auto& lane : lanes) lane.udp->pump(0);
    for (auto& lane : lanes) {
      if (tick == 0) lane.bot->connect();
      lane.bot->tick();
      lane.udp->flush_egress();
    }
    if (tick == c.fault_on_tick) egress_before = sudp.stats().datagrams_sent;
    server.tick();
    snet.flush_egress();
    const net::SendPressure sp = snet.send_pressure(net::kInvalidEndpoint);
    out.congested_peak = std::max(out.congested_peak, sp.congested_bytes);
    out.max_rung = std::max(out.max_rung, server.overload_rung());
    // Steady state only: the first ~3 s are join handshakes + chunk
    // streaming, which the engage_ticks guard above already filters.
    if (tick >= 60) {
      const double cost_us = static_cast<double>(server.last_tick_cpu().count_micros());
      out.peak_tick_cost_us = std::max(out.peak_tick_cost_us, cost_us);
      steady_costs.push_back(cost_us);
    }
    if (c.send_fail > 0.0 && tick >= c.fault_on_tick + 8 && tick < c.fault_off_tick) {
      const double cost_us =
          static_cast<double>(server.last_tick_cpu().count_micros()) +
          static_cast<double>(sp.congested_bytes) * 25.0 / 1000.0 +
          static_cast<double>(sp.congested_frames) * 8.0;
      out.window_cost_max_us = std::max(out.window_cost_max_us, cost_us);
      out.window_cost_min_us = out.window_cost_min_us == 0.0
                                   ? cost_us
                                   : std::min(out.window_cost_min_us, cost_us);
    }
    clock.advance(SimDuration::millis(50));
    // Give loopback datagrams a moment to land every few iterations so the
    // fast-ticked loop doesn't outrun the kernel queue.
    if (tick % 4 == 3) sudp.pump(1);
  }
  (void)egress_before;

  for (auto& lane : lanes) {
    lane.udp->pump(1);
    lane.bot->poll_inbound();
    if (lane.bot->joined()) ++out.joined;
    out.gaps += lane.bot->gaps_detected();
    out.resyncs_requested += lane.bot->resyncs_requested();
    out.dup_or_old += lane.bot->dup_or_old_frames();
    out.liveness_resets += lane.bot->liveness_resets();
  }
  out.sessions = server.session_stream_hashes().size();
  out.resyncs_served = server.resyncs_served();
  out.injected = snet.injected_totals();
  out.send_failures = snet.send_pressure(net::kInvalidEndpoint).send_failures;
  out.ladder_transitions = server.overload_stats().ladder_transitions;
  out.final_rung = server.overload_rung();
  out.egress_kb_per_tick = static_cast<double>(sudp.stats().datagram_bytes_sent) /
                           1024.0 / static_cast<double>(c.ticks);
  const std::size_t kWindow = 8;  // == overload.engage_ticks above
  for (std::size_t i = 0; i + kWindow <= steady_costs.size(); ++i) {
    double lo = steady_costs[i];
    for (std::size_t j = 1; j < kWindow; ++j) lo = std::min(lo, steady_costs[i + j]);
    out.sustained_cost_us = std::max(out.sustained_cost_us, lo);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  flags.assert_known({"replay-check", "ticks", "bots", "mobs", "loss", "sendfail",
                      "json", "seed", "seeds", "runs", "help"});
  if (flags.has("help")) {
    std::printf(
        "usage: e16_transport_chaos [--replay-check] [--ticks=N] [--bots=N]\n"
        "                           [--mobs=N] [--loss=0,10] [--sendfail=P]\n"
        "                           [--runs=N | --seeds=a,b,c] [--json=FILE]\n");
    return 0;
  }

  const auto ticks = static_cast<std::uint64_t>(flags.get_int("ticks", 240));
  const auto bots = static_cast<std::size_t>(flags.get_int("bots", 3));
  const auto mobs = static_cast<std::size_t>(flags.get_int("mobs", 128));
  const double send_fail = std::stod(flags.get_string("sendfail", "1.0"));

  if (flags.get_bool("replay-check", false)) {
    // Standalone mode for scripts/verify.sh e2e-chaos-udp: the determinism
    // acceptance check, sockets not required.
    return replay_check(/*frames=*/2000) ? 0 : 1;
  }

  std::vector<double> losses;
  {
    std::stringstream ss(flags.get_string("loss", "0,10"));
    std::string tok;
    while (std::getline(ss, tok, ',')) losses.push_back(std::stod(tok) / 100.0);
  }

  return run_seeded(flags, [&](std::uint64_t seed) {
    JsonReport report;
    report.bench = "e16_transport_chaos";
    report.config = {
        {"ticks", json_num(static_cast<double>(ticks))},
        {"bots", json_num(static_cast<double>(bots))},
        {"mobs", json_num(static_cast<double>(mobs))},
        {"seed", json_num(static_cast<double>(seed))},
        {"losses", json_str(flags.get_string("loss", "0,10"))},
        {"sendfail", json_num(send_fail)},
    };

    print_title("E16: chaos over real transports");

    // -- 1. decision-stream determinism (no sockets needed) --
    const bool replay_ok = replay_check(/*frames=*/2000);
    report.metrics.push_back({"replay_identical", replay_ok ? 1.0 : 0.0});
    report.ok = report.ok && replay_ok;

    // -- 2. seeded loss over real loopback sockets --
    std::printf("\n%7s %7s %9s %6s %8s %8s %8s %8s %9s\n", "loss%", "joined",
                "sessions", "gaps", "resync_c", "resync_s", "dup_old", "drops",
                "kb/tick");
    print_rule(80);
    bool sockets_seen = true;
    for (const double loss : losses) {
      SocketChaosConfig c;
      c.ticks = ticks;
      c.bots = bots;
      c.mobs = mobs / 4;  // light traffic: this section is about recovery
      c.seed = seed;
      c.loss = loss;
      const SocketOutcome r = run_socket_chaos(c);
      if (!r.sockets_ok) {
        std::fprintf(stderr, "note: sockets unavailable; skipping socket sections\n");
        sockets_seen = false;
        break;
      }
      std::printf("%7.1f %4zu/%zu %9zu %6llu %8llu %8llu %8llu %8llu %9.2f\n",
                  loss * 100.0, r.joined, bots, r.sessions,
                  static_cast<unsigned long long>(r.gaps),
                  static_cast<unsigned long long>(r.resyncs_requested),
                  static_cast<unsigned long long>(r.resyncs_served),
                  static_cast<unsigned long long>(r.dup_or_old),
                  static_cast<unsigned long long>(r.injected.dropped.frames),
                  r.egress_kb_per_tick);
      char suffix[24];
      std::snprintf(suffix, sizeof(suffix), ".loss%g", loss * 100.0);
      report.metrics.push_back({std::string("joined") + suffix,
                                static_cast<double>(r.joined)});
      report.metrics.push_back({std::string("injected_drops") + suffix,
                                static_cast<double>(r.injected.dropped.frames)});
      report.metrics.push_back({std::string("resyncs_served") + suffix,
                                static_cast<double>(r.resyncs_served)});
      // Every bot must end the run joined — loss may delay joins and force
      // retries/resyncs, but never permanently evict anyone.
      report.ok = report.ok && r.joined == bots;
    }

    // -- 3. congestion feedback: send failures must drive the ladder --
    if (sockets_seen) {
      SocketChaosConfig c;
      c.ticks = ticks;
      c.bots = bots;
      c.mobs = mobs;
      c.seed = seed;
      c.overload = true;
      c.send_fail = send_fail;
      c.fault_on_tick = ticks / 3;
      // Liveness is disabled at loss=0 (see run_socket_chaos), so the
      // window can comfortably exceed engage_ticks plus signal ramp-up.
      c.fault_off_tick = ticks / 3 + 40;

      // Calibrate the ladder threshold to THIS fleet. Engaging requires the
      // cost to stay over budget for engage_ticks(8) CONSECUTIVE ticks, so
      // the statistic that matters is not the peak but the highest cost the
      // workload sustains across any 8-tick stretch. A probe run with the
      // ladder off measures that; the gated runs get an uplink budget whose
      // engage threshold sits 1.3x above it. The control run then cannot
      // engage by construction (every 8-tick stretch dips to or below the
      // sustained level), while the send-failure window's congested
      // frame+byte estimate — a smoothed ~3-4x of the per-tick refused
      // work, riding on TOP of the base cost for the whole 40-tick window —
      // clears the bar with a wide margin. A rung transition in the faulted
      // run is therefore evidence of real socket backpressure, not of a
      // lucky fixed constant (DESIGN.md §13).
      SocketChaosConfig probe = c;
      probe.overload = false;
      probe.send_fail = 0.0;
      const SocketOutcome cal = run_socket_chaos(probe);
      if (cal.sockets_ok) {
        const double engage_us = std::max(50.0, cal.sustained_cost_us * 1.3);
        // Invert derive_budget_from_uplink: engage_us = bytes_per_tick *
        // net_cost_per_byte_ns/1000 * engage_margin(1.5), 20 ticks/s.
        const double bytes_per_tick = engage_us * 1000.0 / (25.0 * 1.5);
        c.uplink_bytes_per_second =
            static_cast<std::uint64_t>(bytes_per_tick * 20.0);
        std::printf("\ncalibration: probe sustained/peak tick cost %.0f/%.0f us "
                    "-> engage at %.0f us (uplink %.0f KB/s)\n",
                    cal.sustained_cost_us, cal.peak_tick_cost_us, engage_us,
                    static_cast<double>(c.uplink_bytes_per_second) / 1024.0);
      }
      const SocketOutcome faulted = run_socket_chaos(c);
      std::printf("window ladder cost: %.0f..%.0f us\n",
                  faulted.window_cost_min_us, faulted.window_cost_max_us);
      SocketChaosConfig ctrl = c;
      ctrl.send_fail = 0.0;  // identical load, no injected pressure
      const SocketOutcome control = run_socket_chaos(ctrl);
      if (faulted.sockets_ok && control.sockets_ok) {
        std::printf("\n%-10s %9s %9s %8s %9s %10s %9s\n", "run", "sendfail",
                    "failures", "trans", "max_rung", "congest_KB", "kb/tick");
        print_rule(72);
        std::printf("%-10s %9.2f %9llu %8llu %9d %10.1f %9.2f\n", "faulted",
                    send_fail, static_cast<unsigned long long>(faulted.send_failures),
                    static_cast<unsigned long long>(faulted.ladder_transitions),
                    faulted.max_rung,
                    static_cast<double>(faulted.congested_peak) / 1024.0,
                    faulted.egress_kb_per_tick);
        std::printf("%-10s %9.2f %9llu %8llu %9d %10.1f %9.2f\n", "control", 0.0,
                    static_cast<unsigned long long>(control.send_failures),
                    static_cast<unsigned long long>(control.ladder_transitions),
                    control.max_rung,
                    static_cast<double>(control.congested_peak) / 1024.0,
                    control.egress_kb_per_tick);
        std::printf(
            "(trans/max_rung: degradation-ladder activity. The runs carry the\n"
            " same modeled load; only the faulted one injects send failures, so\n"
            " its transitions are driven by send_pressure(), not modeled backlog.)\n");
        report.metrics.push_back(
            {"ladder_transitions_faulted",
             static_cast<double>(faulted.ladder_transitions)});
        report.metrics.push_back(
            {"ladder_transitions_control",
             static_cast<double>(control.ladder_transitions)});
        report.metrics.push_back(
            {"send_failures_faulted", static_cast<double>(faulted.send_failures)});
        report.metrics.push_back(
            {"max_rung_faulted", static_cast<double>(faulted.max_rung)});
        report.ok = report.ok && faulted.ladder_transitions > 0 &&
                    faulted.max_rung > 0 && control.ladder_transitions == 0;
      }
    }

    if (!report.ok) std::printf("\nE16: FAIL (see metrics above)\n");
    return report;
  });
}
