// E1 — Server egress bandwidth vs. concurrent players, per policy.
// Reproduces the paper's bandwidth figure; the abstract claims dyconits
// reduce network bandwidth by up to 85%. We report both total egress and
// update-only egress (the traffic the middleware manages; chunk streaming
// is identical across policies).
//
// The "director!B" pseudo-spec runs the director with a B Mbit/s bandwidth
// budget — the configuration that exercises the paper's "up to 85%" point:
// under budget pressure the Director trades bounded peripheral consistency
// for however much bandwidth the operator asked to save.
//
//   e1_bandwidth [--players=25,50,100,150] [--policies=vanilla,zero,...]
//                [--duration=45] [--workload=village]
//                [--runs=N | --seeds=a,b,c] [--json=FILE]
#include <cstdlib>
#include <sstream>

#include "bench_util.h"

using namespace dyconits;
using namespace dyconits::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags, {"policies"});
  const auto player_counts = flags.get_int_list("players", {25, 50, 100, 150});
  std::vector<std::string> policies;
  {
    std::stringstream ss(flags.get_string(
        "policies", "vanilla,zero,static:250:4,aoi,director,director!2,infinite"));
    std::string tok;
    while (std::getline(ss, tok, ',')) policies.push_back(tok);
  }

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
    JsonReport report;
    report.bench = "e1_bandwidth";
    report.config = {
        {"players_max", json_num(static_cast<double>(player_counts.back()))},
        {"seed", json_num(static_cast<double>(seed))},
        {"workload", json_str(flags.get_string("workload", "village"))},
        {"policies", json_str(flags.get_string(
            "policies", "vanilla,zero,static:250:4,aoi,director,director!2,infinite"))},
    };
    print_title("E1: server egress bandwidth vs players (workload: " +
                std::string(bots::workload_name(
                    bots::parse_workload(flags.get_string("workload", "village")))) +
                ")");
    std::printf("%-16s %8s %14s %14s %12s %12s\n", "policy", "players", "total KB/s",
                "update KB/s", "vs vanilla", "frames/s");
    print_rule();

    for (const auto players : player_counts) {
      double vanilla_update_rate = 0.0;
      for (const auto& policy : policies) {
        auto cfg = base_config(flags);
        cfg.seed = seed;
        cfg.players = static_cast<std::size_t>(players);
        cfg.policy = policy;
        // "name!B": run `name` with a B Mbit/s bandwidth budget.
        if (const auto bang = policy.find('!'); bang != std::string::npos) {
          cfg.policy = policy.substr(0, bang);
          cfg.bandwidth_budget_bps = std::atof(policy.c_str() + bang + 1) * 1e6;
        }
        const auto r = run(cfg);
        const double update_rate =
            static_cast<double>(update_bytes(r)) / r.measured_seconds;
        if (policy == "vanilla") vanilla_update_rate = update_rate;
        // Headline JSON metrics come from the largest player count, where
        // the paper's bandwidth claim is made.
        if (players == player_counts.back()) {
          report.metrics.push_back({"update_kbps." + policy, update_rate / 1000.0});
          report.metrics.push_back(
              {"total_kbps." + policy, r.egress_bytes_per_sec / 1000.0});
          report.metrics.push_back(
              {"frames_per_sec." + policy, r.egress_frames_per_sec});
        }
        std::printf("%-16s %8zu %14.1f %14.1f %11.1f%% %12.0f\n", policy.c_str(),
                    r.players, r.egress_bytes_per_sec / 1000.0, update_rate / 1000.0,
                    pct_change(vanilla_update_rate, update_rate),
                    r.egress_frames_per_sec);
      }
      print_rule();
    }
    std::printf("(update KB/s = entity-move + block-change families; 'vs vanilla' is the\n"
                " update-traffic change relative to the unmodified direct-send server)\n");
    return report;
  });
  finish_trace(flags);
  return rc;
}
