// E2 — Tick duration vs. concurrent players, and the maximum player count
// each configuration supports within the tick SLO. Reproduces the paper's
// scalability result: the abstract claims up to 40% more concurrent
// players. The SLO defaults to half the 50 ms tick budget at p95 (a common
// operator threshold; Minecraft degrades visibly once ticks overrun).
//
//   e2_scalability [--players=50,75,100,125,150,175,200] [--policies=vanilla,director]
//                  [--slo_ms=25] [--duration=40]
//                  [--runs=N | --seeds=a,b,c] [--json=FILE]
#include <map>
#include <sstream>

#include "bench_util.h"

using namespace dyconits;
using namespace dyconits::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags, {"policies", "slo_ms"});
  const auto player_counts = flags.get_int_list("players", {50, 75, 100, 125, 150, 175, 200});
  const double slo_ms = flags.get_double("slo_ms", 25.0);
  std::vector<std::string> policies;
  {
    std::stringstream ss(flags.get_string("policies", "vanilla,aoi,director"));
    std::string tok;
    while (std::getline(ss, tok, ',')) policies.push_back(tok);
  }

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
  JsonReport report;
  report.bench = "e2_scalability";
  report.config = {
      {"players_max", json_num(static_cast<double>(player_counts.back()))},
      {"seed", json_num(static_cast<double>(seed))},
      {"slo_ms", json_num(slo_ms)},
      {"policies", json_str(flags.get_string("policies", "vanilla,aoi,director"))},
  };
  print_title("E2: server tick duration vs players");
  std::printf("%-12s %8s %12s %12s %12s %10s\n", "policy", "players", "tick mean ms",
              "tick p95 ms", "tick p99 ms", "SLO ok");
  print_rule();

  // policy -> largest player count whose p95 met the SLO.
  std::map<std::string, std::int64_t> capacity;
  for (const auto& policy : policies) {
    for (const auto players : player_counts) {
      auto cfg = base_config(flags);
      cfg.seed = seed;
      cfg.duration = SimDuration::seconds(flags.get_int("duration", 40));
      cfg.players = static_cast<std::size_t>(players);
      cfg.policy = policy;
      const auto r = run(cfg);
      const double p95 = r.tick_ms.percentile(0.95);
      const bool ok = p95 <= slo_ms;
      if (ok && players > capacity[policy]) capacity[policy] = players;
      if (players == player_counts.back()) {
        report.metrics.push_back({"tick_p95_ms." + policy, p95});
      }
      std::printf("%-12s %8zu %12.2f %12.2f %12.2f %10s\n", policy.c_str(), r.players,
                  r.tick_ms.mean(), p95, r.tick_ms.percentile(0.99), ok ? "yes" : "NO");
    }
    print_rule();
  }
  for (const auto& [policy, cap] : capacity) {
    report.metrics.push_back({"capacity_players." + policy,
                              static_cast<double>(cap)});
  }

  print_title("E2 summary: capacity at tick p95 <= " + std::to_string(slo_ms) + " ms");
  const std::int64_t vanilla_cap = capacity.count("vanilla") ? capacity["vanilla"] : 0;
  for (const auto& [policy, cap] : capacity) {
    std::printf("%-12s supports %4lld players", policy.c_str(),
                static_cast<long long>(cap));
    if (policy != "vanilla" && vanilla_cap > 0) {
      std::printf("  (%+.0f%% vs vanilla)",
                  pct_change(static_cast<double>(vanilla_cap), static_cast<double>(cap)));
    }
    std::printf("\n");
  }
  std::printf("(capacities are resolved at the sweep's granularity; pass a denser\n"
              " --players list for a finer crossover)\n");
  return report;
  });
  finish_trace(flags);
  return rc;
}
