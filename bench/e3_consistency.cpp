// E3 — Observed inconsistency per policy: staleness of updates at flush
// (middleware-side, exact) and client-observed positional error of entity
// replicas vs ground truth. Reproduces the paper's point that dyconits
// introduce *bounded* (not unbounded) inconsistency.
//
//   e3_consistency [--players=50] [--duration=45]
//                  [--runs=N | --seeds=a,b,c] [--json=FILE]
#include <sstream>

#include "bench_util.h"

using namespace dyconits;
using namespace dyconits::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags, {"policies"});
  std::vector<std::string> policies;
  {
    std::stringstream ss(
        flags.get_string("policies", "zero,static:250:4,aoi,director,infinite"));
    std::string tok;
    while (std::getline(ss, tok, ',')) policies.push_back(tok);
  }

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
  JsonReport report;
  report.bench = "e3_consistency";
  report.config = {
      {"players", json_num(static_cast<double>(flags.get_int("players", 50)))},
      {"seed", json_num(static_cast<double>(seed))},
      {"policies", json_str(flags.get_string(
          "policies", "zero,static:250:4,aoi,director,infinite"))},
  };
  print_title("E3a: update staleness at flush (ms)");
  std::printf("%-16s %10s %8s %8s %8s %8s %8s\n", "policy", "updates", "p50", "p90",
              "p95", "p99", "max");
  print_rule();
  std::vector<bots::SimulationResult> results;
  for (const auto& policy : policies) {
    auto cfg = base_config(flags);
    cfg.seed = seed;
    cfg.policy = policy;
    cfg.record_staleness = true;
    results.push_back(run(cfg));
    const auto& st = results.back().staleness_ms;
    report.metrics.push_back({"staleness_p99_ms." + policy, st.percentile(0.99)});
    report.metrics.push_back(
        {"pos_err_mean." + policy, results.back().pos_error_mean.mean()});
    std::printf("%-16s %10zu %8.0f %8.0f %8.0f %8.0f %8.0f\n", policy.c_str(),
                st.count(), st.percentile(0.5), st.percentile(0.9), st.percentile(0.95),
                st.percentile(0.99), st.max());
  }

  print_title("E3b: client-observed positional error of entity replicas (blocks)");
  std::printf("%-16s %14s %14s %14s\n", "policy", "mean", "p95 of means", "worst");
  print_rule();
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& r = results[i];
    std::printf("%-16s %14.3f %14.3f %14.3f\n", policies[i].c_str(),
                r.pos_error_mean.mean(), r.pos_error_mean.percentile(0.95),
                r.pos_error_max.max());
  }

  print_title("E3c: middleware accounting");
  std::printf("%-16s %12s %12s %12s %10s %10s %10s\n", "policy", "enqueued",
              "coalesced", "delivered", "fl.stale", "fl.numer", "fl.forced");
  print_rule();
  for (std::size_t i = 0; i < policies.size(); ++i) {
    const auto& s = results[i].dyconit_stats;
    std::printf("%-16s %12llu %12llu %12llu %10llu %10llu %10llu\n",
                policies[i].c_str(), static_cast<unsigned long long>(s.enqueued),
                static_cast<unsigned long long>(s.coalesced),
                static_cast<unsigned long long>(s.delivered),
                static_cast<unsigned long long>(s.flushes_staleness),
                static_cast<unsigned long long>(s.flushes_numerical),
                static_cast<unsigned long long>(s.flushes_forced));
  }
  std::printf("(zero bounds: everything flushes on its creation tick — staleness 0;\n"
              " infinite bounds: unbounded drift — the failure mode dyconits prevent)\n");
  return report;
  });
  finish_trace(flags);
  return rc;
}
