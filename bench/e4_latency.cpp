// E4 — Update delivery latency. Reproduces the paper's claim that dyconits
// scale "without increasing game latency": latency of *nearby* updates
// (what a player perceives) stays at vanilla levels, because near units
// keep zero bounds. With a constrained server uplink, vanilla's extra
// bytes turn into queueing delay — bandwidth savings become latency
// savings.
//
//   e4_latency [--players=75] [--uplink_mbps=8] [--duration=45]
//              [--runs=N | --seeds=a,b,c] [--json=FILE]
#include <sstream>

#include "bench_util.h"

using namespace dyconits;
using namespace dyconits::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags, {"policies", "uplink_mbps"});
  const double uplink_mbps = flags.get_double("uplink_mbps", 8.0);
  std::vector<std::string> policies;
  {
    std::stringstream ss(flags.get_string("policies", "vanilla,aoi,director"));
    std::string tok;
    while (std::getline(ss, tok, ',')) policies.push_back(tok);
  }

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
  JsonReport report;
  report.bench = "e4_latency";
  report.config = {
      {"players", json_num(static_cast<double>(flags.get_int("players", 75)))},
      {"seed", json_num(static_cast<double>(seed))},
      {"uplink_mbps", json_num(uplink_mbps)},
      {"policies", json_str(flags.get_string("policies", "vanilla,aoi,director"))},
  };
  const auto run_with_uplink = [&](const std::string& policy, bool constrained) {
    auto cfg = base_config(flags);
    cfg.seed = seed;
    cfg.players = static_cast<std::size_t>(flags.get_int("players", 75));
    cfg.policy = policy;
    if (constrained) {
      cfg.server_egress_rate = static_cast<std::uint64_t>(uplink_mbps * 1e6 / 8.0);
    }
    return run(cfg);
  };

  for (const bool constrained : {false, true}) {
    print_title(constrained
                    ? "E4b: update latency with a " + std::to_string(uplink_mbps) +
                          " Mbit/s server uplink (queueing visible)"
                    : "E4a: update latency, unconstrained uplink (25 ms link)");
    std::printf("%-12s | %28s | %28s\n", "", "nearby updates (ms)", "all updates (ms)");
    std::printf("%-12s %8s %8s %10s %8s %8s %10s\n", "policy", "p50", "p95", "p99",
                "p50", "p95", "p99");
    print_rule();
    for (const auto& policy : policies) {
      const auto r = run_with_uplink(policy, constrained);
      const auto& near = r.near_update_latency_ms;
      const auto& all = r.update_latency_ms;
      const std::string key = constrained ? "near_p99_constrained_ms." : "near_p99_ms.";
      report.metrics.push_back({key + policy, near.percentile(0.99)});
      std::printf("%-12s %8.1f %8.1f %10.1f %8.1f %8.1f %10.1f\n", policy.c_str(),
                  near.percentile(0.5), near.percentile(0.95), near.percentile(0.99),
                  all.percentile(0.5), all.percentile(0.95), all.percentile(0.99));
    }
  }
  std::printf("\n(nearby = updates within 32 blocks of the observing player; far updates\n"
              " are deliberately delayed within bounds — that is the mechanism, not a\n"
              " regression. The claim under test: nearby latency matches vanilla.)\n");
  return report;
  });
  finish_trace(flags);
  return rc;
}
