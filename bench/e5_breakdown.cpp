// E5 — Egress bandwidth breakdown by message family, per policy. Shows
// where the savings come from: high-rate EntityMove traffic collapses into
// fewer, batched frames; chunk streaming and session chatter are untouched.
//
//   e5_breakdown [--players=100] [--duration=45]
//                [--runs=N | --seeds=a,b,c] [--json=FILE]
#include <map>
#include <sstream>

#include "bench_util.h"

using namespace dyconits;
using namespace dyconits::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags, {"policies"});
  std::vector<std::string> policies;
  {
    std::stringstream ss(flags.get_string("policies", "vanilla,director"));
    std::string tok;
    while (std::getline(ss, tok, ',')) policies.push_back(tok);
  }

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
  JsonReport report;
  report.bench = "e5_breakdown";
  report.config = {
      {"players", json_num(static_cast<double>(flags.get_int("players", 100)))},
      {"seed", json_num(static_cast<double>(seed))},
      {"policies", json_str(flags.get_string("policies", "vanilla,director"))},
  };
  std::vector<bots::SimulationResult> results;
  for (const auto& policy : policies) {
    auto cfg = base_config(flags);
    cfg.seed = seed;
    cfg.players = static_cast<std::size_t>(flags.get_int("players", 100));
    cfg.policy = policy;
    cfg.profile_phases = true;  // E5b prints the per-phase breakdown
    results.push_back(run(cfg));
    report.metrics.push_back(
        {"total_kbps." + policy, results.back().egress_bytes_per_sec / 1000.0});
    report.metrics.push_back(
        {"frames_per_sec." + policy, results.back().egress_frames_per_sec});
  }

  print_title("E5: egress KB/s by message family");
  std::printf("%-18s", "family");
  for (const auto& p : policies) std::printf(" %14s", p.c_str());
  std::printf("\n");
  print_rule();

  // Collect the union of families seen.
  std::map<protocol::MessageType, int> families;
  for (const auto& r : results) {
    for (const auto& [type, bytes] : r.egress_bytes_by_type) families[type];
  }
  for (const auto& [type, _] : families) {
    std::printf("%-18s", protocol::message_type_name(type));
    for (const auto& r : results) {
      const auto it = r.egress_bytes_by_type.find(type);
      const double rate =
          it == r.egress_bytes_by_type.end()
              ? 0.0
              : static_cast<double>(it->second) / r.measured_seconds / 1000.0;
      std::printf(" %14.2f", rate);
    }
    std::printf("\n");
  }
  print_rule();
  std::printf("%-18s", "TOTAL");
  for (const auto& r : results) std::printf(" %14.2f", r.egress_bytes_per_sec / 1000.0);
  std::printf("\n%-18s", "frames/s");
  for (const auto& r : results) std::printf(" %14.0f", r.egress_frames_per_sec);
  std::printf("\n");

  // Where the CPU (not just the bandwidth) goes: measured per-phase tick
  // breakdown for each policy, from the tick profiler.
  print_title("E5b: measured tick-phase breakdown (ms per tick)");
  for (const auto& r : results) print_phase_breakdown(r);
  return report;
  });
  finish_trace(flags);
  return rc;
}
