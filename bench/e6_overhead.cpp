// E6 — Middleware overhead microbenchmarks (google-benchmark), plus a
// measured end-to-end check. The microbenchmarks support the paper's
// "thin middleware" claim with numbers: cost of enqueue, coalesce, flush,
// subscription churn, and policy bound computation — compared against the
// vanilla serialize-and-send unit of work it replaces. The `--measured`
// section then runs short vanilla and director simulations and prints the
// tick-phase profiler's breakdown, so the per-operation costs above can be
// reconciled with where a real tick actually spends its time.
//
//   e6_overhead [--benchmark_filter=...] [--measured] [--players=60]
//               [--duration=20] [--trace=FILE]
//               [--runs=N | --seeds=a,b,c] [--json=FILE]
// The JSON report covers the --measured simulations (the microbenchmark
// numbers already have google-benchmark's own --benchmark_format=json).
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "dyconit/policies/director.h"
#include "dyconit/policies/factory.h"
#include "dyconit/system.h"
#include "protocol/codec.h"

namespace {

using namespace dyconits;
using dyconit::Bounds;
using dyconit::DyconitId;
using dyconit::DyconitSystem;
using dyconit::Update;

struct NullSink : dyconit::FlushSink {
  void deliver(dyconit::SubscriberId, const std::vector<FlushedUpdate>& updates) override {
    benchmark::DoNotOptimize(updates.data());
  }
};

Update make_update(std::uint32_t entity, SimTime now) {
  Update u;
  u.msg = protocol::EntityMove{entity, {1.0, 2.0, 3.0}, 90.0f, 0.0f};
  u.weight = 0.2;
  u.created = now;
  u.coalesce_key = dyconit::coalesce_key_entity(entity);
  return u;
}

/// Cost of one update() fan-out to N subscribers with fresh coalesce keys.
void BM_EnqueueFanout(benchmark::State& state) {
  const auto subs = static_cast<std::size_t>(state.range(0));
  SimClock clock;
  DyconitSystem sys(clock);
  NullSink sink;
  const auto unit = DyconitId::chunk_entities({0, 0});
  for (std::size_t s = 1; s <= subs; ++s) {
    sys.subscribe(unit, static_cast<dyconit::SubscriberId>(s), Bounds::infinite());
  }
  std::uint32_t entity = 1;
  std::size_t since_flush = 0;
  for (auto _ : state) {
    sys.update(unit, make_update(entity++ % 512 + 1, clock.now()));
    if (++since_flush >= 4096) {  // keep queues bounded without timing flush
      state.PauseTiming();
      sys.flush_all(sink);
      since_flush = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(subs));
}
BENCHMARK(BM_EnqueueFanout)->Arg(1)->Arg(8)->Arg(64)->Arg(256);

/// Cost of an enqueue that coalesces into an existing entry (steady state
/// of a high-rate mover).
void BM_EnqueueCoalesce(benchmark::State& state) {
  SimClock clock;
  DyconitSystem sys(clock);
  const auto unit = DyconitId::chunk_entities({0, 0});
  sys.subscribe(unit, 1, Bounds::infinite());
  sys.update(unit, make_update(7, clock.now()));  // seed the entry
  for (auto _ : state) {
    sys.update(unit, make_update(7, clock.now()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnqueueCoalesce);

/// Full middleware cycle: enqueue a batch, tick-flush it through the sink.
void BM_FlushCycle(benchmark::State& state) {
  const auto batch = static_cast<std::uint32_t>(state.range(0));
  SimClock clock;
  DyconitSystem sys(clock);
  NullSink sink;
  const auto unit = DyconitId::chunk_entities({0, 0});
  sys.subscribe(unit, 1, Bounds::zero());
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < batch; ++i) {
      sys.update(unit, make_update(i + 1, clock.now()));
    }
    sys.tick(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_FlushCycle)->Arg(1)->Arg(16)->Arg(128);

/// The vanilla unit of work one enqueue replaces: serialize the message
/// into a frame. (Compare items/s with BM_EnqueueFanout/1.)
void BM_VanillaSerialize(benchmark::State& state) {
  const protocol::AnyMessage msg = protocol::EntityMove{7, {1.0, 2.0, 3.0}, 90.0f, 0.0f};
  for (auto _ : state) {
    net::Frame f = protocol::encode(msg);
    benchmark::DoNotOptimize(f.payload.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VanillaSerialize);

/// Subscription churn: a player crossing a chunk border re-subscribes a
/// ring of units.
void BM_SubscribeUnsubscribe(benchmark::State& state) {
  SimClock clock;
  DyconitSystem sys(clock);
  const auto unit = DyconitId::chunk_entities({0, 0});
  for (auto _ : state) {
    sys.subscribe(unit, 1, Bounds::zero());
    sys.unsubscribe(unit, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SubscribeUnsubscribe);

/// Policy bound computation (called per subscription on chunk-cross).
void BM_BoundsFor(benchmark::State& state) {
  const auto policy = dyconit::make_policy("director");
  const auto unit = DyconitId::chunk_entities({6, 3});
  const world::Vec3 pos{8, 20, 8};
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->bounds_for(unit, pos));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundsFor);

/// The Director's full retune pass over S subscriptions (its worst-case
/// adaptation step; runs at most once per adjust interval).
void BM_RetuneAllBounds(benchmark::State& state) {
  const auto subs = static_cast<std::size_t>(state.range(0));
  SimClock clock;
  DyconitSystem sys(clock);
  dyconit::DirectorPolicy policy;
  std::vector<dyconit::PlayerView> players;
  for (std::size_t s = 1; s <= 16; ++s) {
    players.push_back({static_cast<dyconit::SubscriberId>(s), 1,
                       {static_cast<double>(s) * 10, 0, 0}});
  }
  std::size_t n = 0;
  while (n < subs) {
    for (const auto& p : players) {
      const auto unit = DyconitId::chunk_entities(
          {static_cast<std::int32_t>(n % 32), static_cast<std::int32_t>(n / 32)});
      sys.subscribe(unit, p.sub, Bounds::zero());
      if (++n >= subs) break;
    }
  }
  dyconit::LoadSample load;
  load.now = clock.now();
  for (auto _ : state) {
    dyconit::PolicyContext ctx(sys, players, load);
    dyconit::retune_all_bounds(policy, ctx);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(subs));
}
BENCHMARK(BM_RetuneAllBounds)->Arg(1000)->Arg(10000)->Arg(100000);

/// Approximate memory cost of an idle dyconit plus one subscription.
void BM_MemoryFootprint(benchmark::State& state) {
  for (auto _ : state) {
    SimClock clock;
    DyconitSystem sys(clock);
    for (int i = 0; i < 1000; ++i) {
      sys.subscribe(DyconitId::chunk_entities({i, 0}), 1, Bounds::zero());
    }
    benchmark::DoNotOptimize(sys.dyconit_count());
  }
  state.counters["sizeof_dyconit_B"] =
      static_cast<double>(sizeof(dyconit::Dyconit));
  state.counters["sizeof_update_B"] = static_cast<double>(sizeof(Update));
}
BENCHMARK(BM_MemoryFootprint);

}  // namespace

int main(int argc, char** argv) {
  using namespace dyconits::bench;
  benchmark::Initialize(&argc, argv);  // consumes --benchmark_* flags
  dyconits::Flags flags(argc, argv);
  check_flags(flags, {"benchmark_*", "measured"});
  benchmark::RunSpecifiedBenchmarks();

  // End-to-end: measured per-phase cost of a real tick, for the vanilla
  // baseline and the director. This is the denominator the microbenchmark
  // numbers should be read against.
  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
    JsonReport report;
    report.bench = "e6_overhead";
    report.config = {
        {"players", json_num(static_cast<double>(flags.get_int("players", 60)))},
        {"seed", json_num(static_cast<double>(seed))},
        {"measured", json_num(flags.get_bool("measured", false) ? 1.0 : 0.0)},
    };
    if (flags.get_bool("measured", false)) {
      print_title("E6b: measured tick-phase breakdown (ms per tick)");
      for (const std::string policy : {"vanilla", "director"}) {
        auto cfg = base_config(flags);
        cfg.seed = seed;
        cfg.players = static_cast<std::size_t>(flags.get_int("players", 60));
        cfg.duration = dyconits::SimDuration::seconds(flags.get_int("duration", 20));
        cfg.warmup = dyconits::SimDuration::seconds(flags.get_int("warmup", 8));
        cfg.policy = policy;
        cfg.profile_phases = true;
        const auto r = run(cfg);
        report.metrics.push_back({"tick_mean_ms." + policy, r.tick_ms.mean()});
        report.metrics.push_back(
            {"total_kbps." + policy, r.egress_bytes_per_sec / 1000.0});
        print_phase_breakdown(r);
      }
    }
    return report;
  });
  finish_trace(flags);
  benchmark::Shutdown();
  return rc;
}
