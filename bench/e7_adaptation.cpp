// E7 — Dynamic vs. static ablation: the paper's headline "dynamically
// managed" claim. Mid-run, every walker converges on one village hotspot
// (a player-driven flash crowd). A static distance policy (aoi) keeps its
// bounds and lets tick time/bandwidth spike with density; the Director
// detects the pressure, loosens peripheral bounds, and re-tightens when
// given headroom. Prints per-5s timelines.
//
// The Director's pressure signal here is a bandwidth budget (Mbit/s); the
// flash crowd's traffic exceeds it, the dispersed population does not.
// Bots walk to the hotspot at game speed, so the crowd builds over ~40 s.
//
//   e7_adaptation [--players=120] [--spike_at=40] [--relax_at=120]
//                 [--duration=180] [--budget_mbps=4]
//                 [--runs=N | --seeds=a,b,c] [--json=FILE]
#include <sstream>

#include "bench_util.h"

using namespace dyconits;
using namespace dyconits::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags, {"policies", "spike_at", "relax_at", "budget_mbps"});
  const std::int64_t spike_at = flags.get_int("spike_at", 40);
  const std::int64_t relax_at = flags.get_int("relax_at", 120);

  std::vector<std::string> policies;
  {
    std::stringstream ss(flags.get_string("policies", "aoi,director"));
    std::string tok;
    while (std::getline(ss, tok, ',')) policies.push_back(tok);
  }

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
  JsonReport report;
  report.bench = "e7_adaptation";
  report.config = {
      {"players", json_num(static_cast<double>(flags.get_int("players", 120)))},
      {"seed", json_num(static_cast<double>(seed))},
      {"spike_at", json_num(static_cast<double>(spike_at))},
      {"relax_at", json_num(static_cast<double>(relax_at))},
      {"budget_mbps", json_num(flags.get_double("budget_mbps", 4.0))},
      {"policies", json_str(flags.get_string("policies", "aoi,director"))},
  };
  for (const auto& policy : policies) {
    auto cfg = base_config(flags);
    cfg.seed = seed;
    cfg.players = static_cast<std::size_t>(flags.get_int("players", 120));
    cfg.duration = SimDuration::seconds(flags.get_int("duration", 180));
    cfg.warmup = SimDuration::seconds(10);
    cfg.policy = policy;
    cfg.workload.kind = bots::WorkloadKind::Walk;  // start spread out
    cfg.workload.spread_radius = 220.0;
    cfg.record_timelines = true;
    cfg.bandwidth_budget_bps = flags.get_double("budget_mbps", 4.0) * 1e6;

    std::fprintf(stderr, "  running policy=%s with flash crowd at t=%llds...\n",
                 policy.c_str(), static_cast<long long>(spike_at));

    bots::Simulation sim(cfg);
    bool spiked = false, relaxed = false;
    sim.set_tick_hook([&](bots::Simulation& s, SimTime now) {
      if (!spiked && now >= SimTime::zero() + SimDuration::seconds(spike_at)) {
        spiked = true;
        for (auto& bot : s.bots()) bot->set_home({0, 0, 0}, 14.0);  // flash crowd
      }
      if (!relaxed && now >= SimTime::zero() + SimDuration::seconds(relax_at)) {
        relaxed = true;
        // Crowd disperses again: bots fan back out to distinct homes.
        double angle = 0.0;
        for (auto& bot : s.bots()) {
          angle += 2.399963;  // golden angle: even fan-out
          bot->set_home({220.0 * std::cos(angle), 0, 220.0 * std::sin(angle)}, 40.0);
        }
      }
    });
    const auto r = sim.run();

    print_title("E7 timeline: policy=" + policy + "  (flash crowd at t=" +
                std::to_string(spike_at) + "s, disperses at t=" +
                std::to_string(relax_at) + "s)");
    std::printf("%8s %12s %12s %14s %14s\n", "t (s)", "tick ms", "egress KB/s",
                "queued upd.", "director scale");
    print_rule(70);
    const auto& reg = r.registry;
    const auto& tick = reg.all_series().at("tick_ms").points();
    const auto& egress = reg.all_series().at("egress_kbps").points();
    const auto& queued = reg.all_series().at("queued_updates").points();
    const auto* scale = reg.all_series().count("director_scale")
                            ? &reg.all_series().at("director_scale").points()
                            : nullptr;
    for (std::size_t i = 0; i < tick.size(); i += 5) {
      std::printf("%8.0f %12.2f %12.1f %14.0f", tick[i].first.as_seconds(),
                  tick[i].second, i < egress.size() ? egress[i].second : 0.0,
                  i < queued.size() ? queued[i].second : 0.0);
      if (scale != nullptr && i < scale->size()) {
        std::printf(" %14.2f", (*scale)[i].second);
      } else {
        std::printf(" %14s", "-");
      }
      std::printf("\n");
    }
    std::printf("post-warmup tick p95: %.2f ms | egress mean: %.1f KB/s\n",
                r.tick_ms.percentile(0.95), r.egress_bytes_per_sec / 1000.0);
    report.metrics.push_back({"tick_p95_ms." + policy, r.tick_ms.percentile(0.95)});
    report.metrics.push_back(
        {"egress_kbps." + policy, r.egress_bytes_per_sec / 1000.0});
  }
  return report;
  });
  finish_trace(flags);
  return rc;
}
