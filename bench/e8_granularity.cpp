// E8 — Dyconit granularity ablation: the same distance policy applied at
// per-chunk, per-region (4x4 chunks), and global unit granularity. Coarser
// units mean fewer queues and more batching, but bounds must be shared by
// everything in the unit — near players can no longer be given zero bounds
// on the exact chunk they look at, so inconsistency rises.
//
//   e8_granularity [--players=80] [--duration=45]
//                  [--runs=N | --seeds=a,b,c] [--json=FILE]
#include "bench_util.h"

using namespace dyconits;
using namespace dyconits::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags);
  const std::vector<std::string> policies = {"director@chunk", "director@region",
                                             "director@global", "adaptive", "zero"};

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
  JsonReport report;
  report.bench = "e8_granularity";
  report.config = {
      {"players", json_num(static_cast<double>(flags.get_int("players", 80)))},
      {"seed", json_num(static_cast<double>(seed))},
  };
  print_title("E8: unit granularity ablation (director policy)");
  std::printf("%-18s %12s %12s %12s %12s %14s\n", "granularity", "total KB/s",
              "update KB/s", "tick p95 ms", "coalesced %", "pos err mean");
  print_rule();
  for (const auto& policy : policies) {
    auto cfg = base_config(flags);
    cfg.seed = seed;
    cfg.players = static_cast<std::size_t>(flags.get_int("players", 80));
    cfg.policy = policy;
    const auto r = run(cfg);
    report.metrics.push_back(
        {"update_kbps." + policy,
         static_cast<double>(update_bytes(r)) / r.measured_seconds / 1000.0});
    report.metrics.push_back({"pos_err_mean." + policy, r.pos_error_mean.mean()});
    const auto& s = r.dyconit_stats;
    const double coalesce_pct =
        s.enqueued > 0
            ? 100.0 * static_cast<double>(s.coalesced) / static_cast<double>(s.enqueued)
            : 0.0;
    std::printf("%-18s %12.1f %12.1f %12.2f %11.1f%% %14.3f\n", policy.c_str(),
                r.egress_bytes_per_sec / 1000.0,
                static_cast<double>(update_bytes(r)) / r.measured_seconds / 1000.0,
                r.tick_ms.percentile(0.95), coalesce_pct, r.pos_error_mean.mean());
  }
  std::printf("(zero = per-chunk units with zero bounds, the consistency reference;\n"
              " adaptive = director that re-partitions chunk<->region at runtime)\n");
  return report;
  });
  finish_trace(flags);
  return rc;
}
