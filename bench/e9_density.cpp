// E9 — Player density sweep: the paper's motivating case. High-density
// areas (village centers) are where plain interest management stops
// helping: everyone legitimately subscribes to everyone. We shrink the
// village radius (packing the same players tighter) and watch vanilla's
// update traffic and tick time blow up quadratically while the Director
// holds them down by spending peripheral consistency.
//
// The director rows run with a bandwidth budget (--budget_mbps, default 4):
// density is exactly the case where distance shaping alone has no slack, so
// the savings must come from the Director's pressure-driven stages
// (multiplier + capped near bounds).
//
//   e9_density [--players=100] [--radii=120,60,30,15] [--duration=40]
//              [--budget_mbps=4] [--runs=N | --seeds=a,b,c] [--json=FILE]
#include "bench_util.h"

using namespace dyconits;
using namespace dyconits::bench;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  check_flags(flags, {"radii", "budget_mbps"});
  const auto radii = flags.get_int_list("radii", {120, 60, 30, 15});

  const int rc = run_seeded(flags, [&](std::uint64_t seed) {
  JsonReport report;
  report.bench = "e9_density";
  report.config = {
      {"players", json_num(static_cast<double>(flags.get_int("players", 100)))},
      {"seed", json_num(static_cast<double>(seed))},
      {"budget_mbps", json_num(flags.get_double("budget_mbps", 4.0))},
  };
  print_title("E9: density sweep (fixed players, shrinking village radius)");
  std::printf("%-10s %-12s %12s %12s %12s %12s\n", "radius", "policy", "update KB/s",
              "tick p95 ms", "frames/s", "pos err");
  print_rule();
  for (const auto radius : radii) {
    double vanilla_rate = 0.0;
    for (const std::string policy : {"vanilla", "director"}) {
      auto cfg = base_config(flags);
      cfg.seed = seed;
      cfg.players = static_cast<std::size_t>(flags.get_int("players", 100));
      cfg.duration = SimDuration::seconds(flags.get_int("duration", 40));
      cfg.policy = policy;
      if (policy == "director") {
        cfg.bandwidth_budget_bps = flags.get_double("budget_mbps", 4.0) * 1e6;
      }
      cfg.workload.kind = bots::WorkloadKind::Village;
      cfg.workload.hotspots = 1;
      cfg.workload.village_radius = static_cast<double>(radius);
      const auto r = run(cfg);
      const double rate = static_cast<double>(update_bytes(r)) / r.measured_seconds;
      if (policy == "vanilla") vanilla_rate = rate;
      report.metrics.push_back({"update_kbps." + policy + ".r" + std::to_string(radius),
                                rate / 1000.0});
      std::printf("%-10lld %-12s %12.1f %12.2f %12.0f %12.3f",
                  static_cast<long long>(radius), policy.c_str(), rate / 1000.0,
                  r.tick_ms.percentile(0.95), r.egress_frames_per_sec,
                  r.pos_error_mean.mean());
      if (policy != "vanilla" && vanilla_rate > 0) {
        std::printf("   (%+.0f%% update traffic)", pct_change(vanilla_rate, rate));
      }
      std::printf("\n");
    }
    print_rule();
  }
  return report;
  });
  finish_trace(flags);
  return rc;
}
