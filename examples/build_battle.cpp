// Build battle: two teams of builders race to modify the world in adjacent
// plots — a block-update-heavy workload (the "Modifiable" in MVE). Shows
// MultiBlockChange batching and verifies at the end that every spectator's
// replica converged to the server's world despite the bounded delays.
//
//   ./build_battle [--team_size=15] [--duration=30] [--policy=director]
#include <cstdio>
#include <iostream>

#include "bots/simulation.h"
#include "dyconit/policies/factory.h"
#include "trace/trace_flags.h"
#include "util/flags.h"
#include "world/ascii_map.h"

using namespace dyconits;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.has("help")) {
    std::puts("usage: build_battle [--team_size=N] [--duration=S] [--policy=SPEC]");
    return 0;
  }
  flags.assert_known({"help", "team_size", "duration", "policy", trace::kTraceFlag, trace::kTraceBufferFlag});
  trace::configure_from_flags(flags);
  const auto team_size = static_cast<std::size_t>(flags.get_int("team_size", 15));
  const auto duration = SimDuration::seconds(flags.get_int("duration", 30));
  const std::string policy_spec = flags.get_string("policy", "director");

  SimClock clock;
  net::SimNetwork net(clock, 5);
  world::World world(std::make_unique<world::TerrainGenerator>(77));

  server::ServerConfig scfg;
  scfg.view_distance = 6;
  scfg.use_dyconits = policy_spec != "vanilla";
  std::unique_ptr<dyconit::Policy> policy;
  if (scfg.use_dyconits) policy = dyconit::make_policy(policy_spec);
  const world::Vec3 red_plot{-24, 0, 0};
  const world::Vec3 blue_plot{24, 0, 0};
  scfg.spawn_provider = [&](const std::string& name) {
    const world::Vec3 plot = name[0] == 'r' ? red_plot : blue_plot;
    return world.spawn_position(static_cast<std::int32_t>(plot.x),
                                static_cast<std::int32_t>(plot.z));
  };
  server::GameServer server(clock, net, world, std::move(policy), scfg);

  std::vector<std::unique_ptr<bots::BotClient>> everyone;
  Rng seeds(42);
  const auto add_bot = [&](const std::string& name, const world::Vec3& home,
                           bots::BehaviorKind kind) {
    bots::BotConfig bc;
    bc.kind = kind;
    bc.home = home;
    bc.wander_radius = 10.0;
    bc.action_interval = SimDuration::millis(250);
    bc.place_prob = 0.8;  // builders build more than they dig
    auto bot = std::make_unique<bots::BotClient>(clock, net, world, server.endpoint(),
                                                 name, seeds.next_u64(), bc);
    net.connect(bot->endpoint(), server.endpoint(), {SimDuration::millis(25), 0.05});
    bot->connect();
    everyone.push_back(std::move(bot));
  };
  for (std::size_t i = 0; i < team_size; ++i) {
    add_bot("red-" + std::to_string(i), red_plot, bots::BehaviorKind::Build);
    add_bot("blue-" + std::to_string(i), blue_plot, bots::BehaviorKind::Build);
  }
  // A spectator with a full chunk replica stands between the plots.
  {
    bots::BotConfig bc;
    bc.kind = bots::BehaviorKind::Idle;
    bc.keep_chunk_replica = true;
    auto bot = std::make_unique<bots::BotClient>(clock, net, world, server.endpoint(),
                                                 "spectator", 9, bc);
    net.connect(bot->endpoint(), server.endpoint(), {SimDuration::millis(25), 0.05});
    bot->connect();
    everyone.push_back(std::move(bot));
  }

  std::uint64_t placed = 0, dug = 0;
  world.add_block_observer([&](const world::BlockChange& c) {
    (c.new_block == world::Block::Air ? dug : placed)++;
  });

  const std::int64_t ticks = duration.count_micros() / 50000;
  for (std::int64_t t = 0; t < ticks; ++t) {
    clock.advance(SimDuration::millis(50));
    for (auto& b : everyone) b->tick();
    server.tick();
  }
  // Quiesce and check the spectator's replica.
  for (auto& b : everyone) b->set_paused(true);
  for (int i = 0; i < 5; ++i) {
    clock.advance(SimDuration::millis(50));
    for (auto& b : everyone) b->tick();
    server.tick();
  }
  server.dyconits().flush_all(server);
  for (int i = 0; i < 5; ++i) {
    clock.advance(SimDuration::millis(50));
    for (auto& b : everyone) b->tick();
    server.tick();
  }

  const bots::BotClient& spectator = *everyone.back();
  std::size_t mismatches = 0, compared = 0;
  const world::World* replica = spectator.replica_world();
  for (std::int32_t x = -40; x <= 40; ++x) {
    for (std::int32_t z = -16; z <= 16; ++z) {
      for (std::int32_t y = 1; y < 48; ++y) {
        const world::ChunkPos cp = world::ChunkPos::of_block({x, y, z});
        if (replica->find_chunk(cp) == nullptr) continue;
        ++compared;
        if (replica->block_if_loaded({x, y, z}) != world.block_if_loaded({x, y, z})) {
          ++mismatches;
        }
      }
    }
  }

  std::printf("build battle: %zu builders/team, %llds, policy=%s\n", team_size,
              static_cast<long long>(ticks / 20), policy_spec.c_str());
  std::printf("  blocks placed: %llu, dug: %llu\n",
              static_cast<unsigned long long>(placed),
              static_cast<unsigned long long>(dug));
  std::printf("  block-change egress: single %.1f KB, batched %.1f KB\n",
              static_cast<double>(net.egress_bytes_by_tag(
                  server.endpoint(),
                  static_cast<std::uint8_t>(protocol::MessageType::BlockChange))) /
                  1000.0,
              static_cast<double>(net.egress_bytes_by_tag(
                  server.endpoint(),
                  static_cast<std::uint8_t>(protocol::MessageType::MultiBlockChange))) /
                  1000.0);
  std::printf("  spectator replica: %zu blocks compared, %zu mismatches (expect 0)\n",
              compared, mismatches);

  std::printf("\nthe battlefield (red plot left, blue plot right; @ = players):\n%s",
              world::render_ascii_map(world, {0, 0, 0}, 36,
                                      world::entity_overlays(server.entities()))
                  .c_str());
  trace::write_trace_from_flags(flags, std::cerr);
  return mismatches == 0 ? 0 : 1;
}
