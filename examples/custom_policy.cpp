// Writing your own policy — the integration surface the paper gives game
// developers. This example defines BuilderFirstPolicy: block edits are
// treated as sacred (zero bounds everywhere: every player sees every
// placed block immediately, however far away), while entity movement uses
// distance-scaled bounds with a load-adaptive multiplier. A building-focused
// game might prefer exactly this trade.
//
//   ./custom_policy [--players=40] [--duration=30]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bots/simulation.h"
#include "dyconit/policies/aoi.h"
#include "trace/trace_flags.h"
#include "util/flags.h"

using namespace dyconits;

namespace {

/// Blocks always consistent; entity movement bounded by distance and scaled
/// up under load. Note how little code a policy is: one bounds function and
/// an optional adaptation hook.
class BuilderFirstPolicy final : public dyconit::AoiPolicy {
 public:
  std::string name() const override { return "builder-first"; }

  dyconit::Bounds bounds_for(const dyconit::DyconitId& unit,
                             const world::Vec3& subscriber_pos) const override {
    if (!unit.is_entity_domain()) return dyconit::Bounds::zero();  // blocks: exact
    return scaled_bounds(unit, subscriber_pos, scale_);
  }

  void on_tick(dyconit::PolicyContext& ctx) override {
    // Simple additive adaptation on tick pressure, twice a second.
    const auto& load = ctx.load();
    if ((load.now - last_).count_millis() < 500) return;
    last_ = load.now;
    const double pressure = static_cast<double>(load.tick_duration.count_micros()) /
                            static_cast<double>(load.tick_budget.count_micros());
    const double before = scale_;
    if (pressure > 0.6) scale_ = std::min(scale_ + 1.0, 12.0);
    if (pressure < 0.3) scale_ = std::max(scale_ - 0.5, 1.0);
    if (scale_ != before) dyconit::retune_all_bounds(*this, ctx);
  }

  double scale() const { return scale_; }

 private:
  double scale_ = 1.0;
  SimTime last_;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.has("help")) {
    std::puts("usage: custom_policy [--players=N] [--duration=S]");
    return 0;
  }
  flags.assert_known({"help", "players", "duration", trace::kTraceFlag, trace::kTraceBufferFlag});
  trace::configure_from_flags(flags);

  bots::SimulationConfig cfg;
  cfg.players = static_cast<std::size_t>(flags.get_int("players", 40));
  cfg.duration = SimDuration::seconds(flags.get_int("duration", 30));
  cfg.workload.kind = bots::WorkloadKind::Village;

  // The Simulation harness builds policies from spec strings; a custom
  // policy is wired by assembling the stack directly — the same few lines
  // a real integration needs.
  SimClock clock;
  net::SimNetwork net(clock, 99);
  world::World world(std::make_unique<world::TerrainGenerator>(1234));

  const auto plans =
      bots::plan_bots(cfg.workload, cfg.players, /*seed=*/cfg.seed);

  server::ServerConfig scfg;
  scfg.view_distance = 8;
  scfg.spawn_provider = [&plans, &world](const std::string& name) {
    for (const auto& p : plans) {
      if (p.name == name) {
        return world.spawn_position(static_cast<std::int32_t>(p.home.x),
                                    static_cast<std::int32_t>(p.home.z));
      }
    }
    return world.spawn_position(0, 0);
  };
  auto policy = std::make_unique<BuilderFirstPolicy>();
  BuilderFirstPolicy* policy_view = policy.get();
  server::GameServer server(clock, net, world, std::move(policy), scfg);
  std::vector<std::unique_ptr<bots::BotClient>> bot_list;
  Rng seeds(cfg.seed);
  for (const auto& p : plans) {
    auto bot = std::make_unique<bots::BotClient>(clock, net, world, server.endpoint(),
                                                 p.name, seeds.next_u64(), p.config);
    net.connect(bot->endpoint(), server.endpoint(), {SimDuration::millis(25), 0.1});
    bot->connect();
    bot_list.push_back(std::move(bot));
  }

  const auto ticks = cfg.duration.count_micros() / 50000;
  for (std::int64_t t = 0; t < ticks; ++t) {
    clock.advance(SimDuration::millis(50));
    for (auto& b : bot_list) b->tick();
    server.tick();
  }

  const auto& stats = server.dyconit_stats();
  std::printf("builder-first policy: %zu players, %llds\n", cfg.players,
              static_cast<long long>(cfg.duration.count_micros() / 1000000));
  std::printf("  final adaptation scale: %.1f\n", policy_view->scale());
  std::printf("  updates enqueued %llu, coalesced %llu, delivered %llu\n",
              static_cast<unsigned long long>(stats.enqueued),
              static_cast<unsigned long long>(stats.coalesced),
              static_cast<unsigned long long>(stats.delivered));

  // The policy's promise: block updates were never delayed. Every staleness
  // flush beyond one tick must come from the entity domain.
  std::uint64_t block_queued = 0;
  server.dyconits().for_each([&](dyconit::Dyconit& d) {
    if (!d.id().is_entity_domain()) block_queued += d.total_queued();
  });
  std::printf("  block updates still queued at shutdown: %llu (expect 0)\n",
              static_cast<unsigned long long>(block_queued));
  std::printf("  server egress: %.1f KB/s\n",
              static_cast<double>(net.egress_bytes(server.endpoint())) /
                  (static_cast<double>(ticks) * 0.05) / 1000.0);
  trace::write_trace_from_flags(flags, std::cerr);
  return block_queued == 0 ? 0 : 1;
}
