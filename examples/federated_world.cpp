// Federated world: two server instances host one world, split at x=0, and
// keep each other's boundary consistent through a server-to-server dyconit
// layer — the paper's "isolated instances" gap, closed with its own
// mechanism. Players on both sides gather at the border and see each other
// across it.
//
//   ./federated_world [--per_side=8] [--duration=30] [--peer_staleness_ms=100]
#include <cstdio>
#include <iostream>

#include "bots/bot.h"
#include "dyconit/policies/factory.h"
#include "federation/federation.h"
#include "trace/trace_flags.h"
#include "util/flags.h"
#include "world/ascii_map.h"
#include "world/terrain.h"

using namespace dyconits;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.has("help")) {
    std::puts("usage: federated_world [--per_side=N] [--duration=S]"
              " [--peer_staleness_ms=MS]");
    return 0;
  }
  flags.assert_known({"help", "per_side", "duration", "peer_staleness_ms", trace::kTraceFlag, trace::kTraceBufferFlag});
  trace::configure_from_flags(flags);
  const auto per_side = static_cast<std::size_t>(flags.get_int("per_side", 8));
  const auto ticks = flags.get_int("duration", 30) * 20;

  SimClock clock;
  net::SimNetwork net(clock, 11);
  const std::uint64_t terrain_seed = 99;
  world::World left_world(std::make_unique<world::TerrainGenerator>(terrain_seed));
  world::World right_world(std::make_unique<world::TerrainGenerator>(terrain_seed));

  std::unordered_map<std::string, world::Vec3> spawns;
  const auto make_server = [&](bool is_left, world::World& w) {
    server::ServerConfig cfg;
    cfg.view_distance = 4;
    cfg.owns_chunk = [is_left](world::ChunkPos c) {
      return is_left ? federation::Federation::left_owns(c)
                     : !federation::Federation::left_owns(c);
    };
    cfg.spawn_provider = [&spawns, &w](const std::string& name) {
      const auto home = spawns.at(name);
      return w.spawn_position(static_cast<std::int32_t>(home.x),
                              static_cast<std::int32_t>(home.z));
    };
    return std::make_unique<server::GameServer>(clock, net, w,
                                                dyconit::make_policy("director"), cfg);
  };
  auto left = make_server(true, left_world);
  auto right = make_server(false, right_world);

  federation::FederationConfig fcfg;
  fcfg.peer_bounds = dyconit::Bounds{
      SimDuration::millis(flags.get_int("peer_staleness_ms", 100)), 4.0};
  federation::Federation fed(clock, net, *left, *right, fcfg);

  std::vector<std::unique_ptr<bots::BotClient>> everyone;
  Rng rng(3);
  const auto add = [&](bool on_left, std::size_t i) {
    const std::string name = (on_left ? "L-" : "R-") + std::to_string(i);
    const double x = (on_left ? -1.0 : 1.0) * rng.next_double_in(6.0, 30.0);
    spawns[name] = {x, 0, rng.next_double_in(-20.0, 20.0)};
    bots::BotConfig bc;
    bc.kind = bots::BehaviorKind::Walk;
    bc.home = {(on_left ? -12.0 : 12.0), 0, 0};  // gather near the border
    bc.wander_radius = 10.0;
    auto& srv = on_left ? *left : *right;
    auto& w = on_left ? left_world : right_world;
    auto bot = std::make_unique<bots::BotClient>(clock, net, w, srv.endpoint(), name,
                                                 rng.next_u64(), bc);
    net.connect(bot->endpoint(), srv.endpoint(), {SimDuration::millis(25), 0.05});
    bot->connect();
    everyone.push_back(std::move(bot));
  };
  for (std::size_t i = 0; i < per_side; ++i) {
    add(true, i);
    add(false, i);
  }

  for (std::int64_t t = 0; t < ticks; ++t) {
    clock.advance(SimDuration::millis(50));
    for (auto& b : everyone) b->tick();
    left->tick();
    right->tick();
    fed.tick();
  }

  std::printf("federated world: %zu players per instance, %llds at the border\n",
              per_side, static_cast<long long>(ticks / 20));
  std::printf("  mirrors: %zu remote players visible on the left instance, %zu on the"
              " right\n",
              fed.mirrors_on(*left), fed.mirrors_on(*right));
  std::printf("  peer traffic: %llu updates enqueued, %llu coalesced away, %llu frames"
              " (%.1f KB)\n",
              static_cast<unsigned long long>(fed.peer_updates_enqueued()),
              static_cast<unsigned long long>(fed.peer_updates_coalesced()),
              static_cast<unsigned long long>(fed.peer_frames_sent()),
              static_cast<double>(fed.peer_bytes_sent()) / 1000.0);

  // How many cross-instance players does a client actually see?
  std::size_t cross_sightings = 0;
  for (const auto& b : everyone) {
    for (const auto& [id, rep] : b->replica_entities()) {
      if (rep.name.rfind("remote:", 0) == 0) ++cross_sightings;
    }
  }
  std::printf("  cross-instance sightings in client replicas: %zu\n", cross_sightings);

  std::printf("\nleft instance's view of the border (remote mirrors included):\n%s",
              world::render_ascii_map(left_world, {0, 0, 0}, 24,
                                      world::entity_overlays(left->entities()))
                  .c_str());
  trace::write_trace_from_flags(flags, std::cerr);
  return cross_sightings > 0 ? 0 : 1;
}
