// Persistent world: run a building session, save the world to region files,
// "restart" the server on the restored world, and verify a rejoining player
// sees everything that was built. Demonstrates world/storage.h.
//
//   ./persistent_world [--players=10] [--duration=20] [--dir=/tmp/dyco_world]
#include <cstdio>
#include <iostream>
#include <filesystem>

#include "bots/simulation.h"
#include "world/storage.h"
#include "trace/trace_flags.h"
#include "util/flags.h"

using namespace dyconits;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.has("help")) {
    std::puts("usage: persistent_world [--players=N] [--duration=S] [--dir=PATH]");
    return 0;
  }
  flags.assert_known({"help", "players", "duration", "dir", trace::kTraceFlag, trace::kTraceBufferFlag});
  trace::configure_from_flags(flags);
  const std::string dir = flags.get_string(
      "dir", (std::filesystem::temp_directory_path() / "dyco_world").string());
  std::filesystem::remove_all(dir);

  // Session 1: builders modify the world.
  bots::SimulationConfig cfg;
  cfg.players = static_cast<std::size_t>(flags.get_int("players", 10));
  cfg.duration = SimDuration::seconds(flags.get_int("duration", 20));
  cfg.warmup = SimDuration::seconds(5);
  cfg.policy = "director";
  cfg.workload.kind = bots::WorkloadKind::Build;
  cfg.workload.spread_radius = 40.0;
  std::uint64_t edits = 0;
  std::vector<world::BlockChange> sample_edits;

  std::printf("session 1: %zu builders for %llds...\n", cfg.players,
              static_cast<long long>(cfg.duration.count_micros() / 1000000));
  bots::Simulation session1(cfg);
  session1.world().add_block_observer([&](const world::BlockChange& c) {
    ++edits;
    if (sample_edits.size() < 5 && world::is_solid(c.new_block)) {
      sample_edits.push_back(c);
    }
  });
  session1.run();
  std::printf("  %llu block edits made\n", static_cast<unsigned long long>(edits));

  world::WorldStorage storage(dir);
  std::size_t written = 0;
  if (!storage.save(session1.world(), &written)) {
    std::puts("  SAVE FAILED");
    return 1;
  }
  std::printf("  saved %zu chunks to %s\n", written, dir.c_str());

  // Session 2: a fresh server process restores the world from disk. The
  // world has no terrain generator: everything must come from storage.
  std::printf("session 2: restart on the restored world...\n");
  SimClock clock;
  net::SimNetwork net(clock, 2);
  world::World restored;
  std::size_t loaded = 0;
  if (!storage.load(restored, &loaded)) {
    std::puts("  LOAD FAILED");
    return 1;
  }
  std::printf("  restored %zu chunks\n", loaded);

  std::size_t verified = 0;
  for (const auto& c : sample_edits) {
    if (restored.block_at(c.pos) == c.new_block) ++verified;
  }
  std::printf("  sampled edits surviving the restart: %zu/%zu (expect all)\n",
              verified, sample_edits.size());

  std::filesystem::remove_all(dir);
  trace::write_trace_from_flags(flags, std::cerr);
  return verified == sample_edits.size() ? 0 : 1;
}
