// Quickstart: run a small Minecraft-like world with dyconit-managed
// replication and print what the middleware did.
//
//   ./quickstart [--players=20] [--policy=director] [--duration=30]
//                [--workload=village]
//
// Policies: vanilla (no middleware), zero, infinite, static:<ms>:<w>,
// aoi, director — optionally suffixed @chunk/@region/@global.
#include <cstdio>
#include <iostream>

#include "bots/simulation.h"
#include "trace/trace_flags.h"
#include "util/flags.h"
#include "util/log.h"
#include "world/ascii_map.h"

using namespace dyconits;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.has("help")) {
    std::puts("usage: quickstart [--players=N] [--policy=SPEC] [--duration=SECONDS]"
              " [--workload=walk|village|build|mixed] [--seed=N]");
    return 0;
  }
  flags.assert_known({"help", "players", "policy", "duration", "seed", "workload", "map", trace::kTraceFlag, trace::kTraceBufferFlag});
  trace::configure_from_flags(flags);
  Log::set_level(LogLevel::Warn);

  bots::SimulationConfig cfg;
  cfg.players = static_cast<std::size_t>(flags.get_int("players", 20));
  cfg.policy = flags.get_string("policy", "director");
  cfg.duration = SimDuration::seconds(flags.get_int("duration", 30));
  cfg.warmup = SimDuration::seconds(std::min<std::int64_t>(10, flags.get_int("duration", 30) / 3));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  cfg.workload.kind = bots::parse_workload(flags.get_string("workload", "village"));
  cfg.record_staleness = true;

  std::printf("dyconits quickstart: %zu players, policy=%s, workload=%s, %llds sim\n",
              cfg.players, cfg.policy.c_str(),
              bots::workload_name(cfg.workload.kind),
              static_cast<long long>(cfg.duration.count_micros() / 1000000));

  bots::Simulation sim(cfg);
  bots::SimulationResult r;
  {
    const auto ticks = cfg.duration.count_micros() / 50000;
    for (std::int64_t t = 0; t < ticks; ++t) sim.step_tick();
    sim.finalize();
    r = std::move(sim.result());
  }

  if (flags.get_bool("map", true)) {
    std::printf("\nthe world right now (@ = players):\n%s",
                world::render_ascii_map(sim.world(), {0, 0, 0}, 30,
                                        world::entity_overlays(sim.server().entities()))
                    .c_str());
  }

  std::printf("\n-- steady state (%.0fs measured) --\n", r.measured_seconds);
  std::printf("server egress:        %8.1f KB/s  (%.0f frames/s)\n",
              r.egress_bytes_per_sec / 1000.0, r.egress_frames_per_sec);
  std::printf("server tick CPU:      mean %.3f ms, p95 %.3f ms (budget 50 ms)\n",
              r.tick_ms.mean(), r.tick_ms.percentile(0.95));
  std::printf("update latency:       p50 %.1f ms, p95 %.1f ms, p99 %.1f ms\n",
              r.update_latency_ms.percentile(0.50), r.update_latency_ms.percentile(0.95),
              r.update_latency_ms.percentile(0.99));
  if (r.pos_error_mean.count() > 0) {
    std::printf("replica pos error:    mean %.2f blocks, worst %.2f blocks\n",
                r.pos_error_mean.mean(), r.pos_error_max.max());
  }

  const auto& s = r.dyconit_stats;
  if (r.policy != "vanilla") {
    std::printf("\n-- middleware --\n");
    std::printf("updates enqueued:     %llu\n", static_cast<unsigned long long>(s.enqueued));
    std::printf("coalesced (saved):    %llu (%.1f%%)\n",
                static_cast<unsigned long long>(s.coalesced),
                s.enqueued > 0 ? 100.0 * static_cast<double>(s.coalesced) /
                                     static_cast<double>(s.enqueued)
                               : 0.0);
    std::printf("delivered:            %llu\n",
                static_cast<unsigned long long>(s.delivered));
    std::printf("flushes:              %llu staleness, %llu numerical, %llu forced\n",
                static_cast<unsigned long long>(s.flushes_staleness),
                static_cast<unsigned long long>(s.flushes_numerical),
                static_cast<unsigned long long>(s.flushes_forced));
    if (r.staleness_ms.count() > 0) {
      std::printf("staleness at flush:   p50 %.0f ms, p99 %.0f ms\n",
                  r.staleness_ms.percentile(0.5), r.staleness_ms.percentile(0.99));
    }
  }

  std::printf("\n-- egress by message type --\n");
  for (const auto& [type, bytes] : r.egress_bytes_by_type) {
    std::printf("  %-18s %10.1f KB\n", protocol::message_type_name(type),
                static_cast<double>(bytes) / 1000.0);
  }
  trace::write_trace_from_flags(flags, std::cerr);
  return 0;
}
