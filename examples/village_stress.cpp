// Village stress: the paper's motivating scenario. A crowd of players packs
// into one village center — the high-density, frequently-modified area where
// plain interest management stops helping (everyone legitimately sees
// everyone). Runs the same crowd under the unmodified server and under the
// Director policy and prints the head-to-head.
//
// The dyconits run gets a bandwidth budget (--budget_mbps, default 4) so
// the Director actually has something to adapt to — without pressure it
// deliberately spends no consistency at all.
//
//   ./village_stress [--players=80] [--radius=15] [--duration=40]
//                    [--budget_mbps=4]
#include <cstdio>
#include <iostream>

#include "bots/simulation.h"
#include "trace/trace_flags.h"
#include "util/flags.h"

using namespace dyconits;

namespace {

bots::SimulationResult run_once(const Flags& flags, const std::string& policy) {
  bots::SimulationConfig cfg;
  cfg.players = static_cast<std::size_t>(flags.get_int("players", 80));
  cfg.duration = SimDuration::seconds(flags.get_int("duration", 40));
  cfg.warmup = SimDuration::seconds(12);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  cfg.policy = policy;
  if (policy != "vanilla") {
    cfg.bandwidth_budget_bps = flags.get_double("budget_mbps", 4.0) * 1e6;
  }
  cfg.workload.kind = bots::WorkloadKind::Village;
  cfg.workload.hotspots = 1;
  cfg.workload.village_radius = flags.get_double("radius", 15.0);
  cfg.joins_per_tick = 4;
  std::fprintf(stderr, "running %s...\n", policy.c_str());
  bots::Simulation sim(cfg);
  return sim.run();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.has("help")) {
    std::puts("usage: village_stress [--players=N] [--radius=BLOCKS] [--duration=S]");
    return 0;
  }
  flags.assert_known({"help", "players", "radius", "duration", "budget_mbps", "seed", trace::kTraceFlag, trace::kTraceBufferFlag});
  trace::configure_from_flags(flags);

  const auto vanilla = run_once(flags, "vanilla");
  const auto director = run_once(flags, "director");

  std::printf("\nvillage stress: %zu players packed into a %.0f-block radius\n",
              vanilla.players, flags.get_double("radius", 15.0));
  std::printf("%-28s %14s %14s\n", "", "vanilla", "dyconits");
  std::printf("%-28s %14.1f %14.1f\n", "server egress (KB/s)",
              vanilla.egress_bytes_per_sec / 1000.0,
              director.egress_bytes_per_sec / 1000.0);
  std::printf("%-28s %14.0f %14.0f\n", "frames sent (/s)",
              vanilla.egress_frames_per_sec, director.egress_frames_per_sec);
  std::printf("%-28s %14.2f %14.2f\n", "tick CPU p95 (ms, 50 budget)",
              vanilla.tick_ms.percentile(0.95), director.tick_ms.percentile(0.95));
  std::printf("%-28s %14.1f %14.1f\n", "near update latency p99 (ms)",
              vanilla.near_update_latency_ms.percentile(0.99),
              director.near_update_latency_ms.percentile(0.99));
  std::printf("%-28s %14.3f %14.3f\n", "replica pos error mean (blk)",
              vanilla.pos_error_mean.mean(), director.pos_error_mean.mean());

  const double saved = 100.0 * (1.0 - director.egress_bytes_per_sec /
                                          vanilla.egress_bytes_per_sec);
  const double cpu_saved =
      100.0 * (1.0 - director.tick_ms.mean() / vanilla.tick_ms.mean());
  const double near_p99 = director.near_update_latency_ms.percentile(0.99);
  const double vanilla_near_p99 = vanilla.near_update_latency_ms.percentile(0.99);
  std::printf("\ndyconits spent bounded inconsistency to save %.0f%% of the bandwidth\n"
              "and %.0f%% of the tick CPU. ",
              saved, cpu_saved);
  if (near_p99 <= vanilla_near_p99 + 55.0) {
    std::printf("Nearby update latency is unchanged.\n");
  } else {
    std::printf("Under this budget the Director's second\n"
                "stage engaged: nearby updates are delayed too, but bounded (p99 %.0f ms\n"
                "vs vanilla's %.0f ms) — raise --budget_mbps to buy the latency back.\n",
                near_p99, vanilla_near_p99);
  }
  trace::write_trace_from_flags(flags, std::cerr);
  return 0;
}
