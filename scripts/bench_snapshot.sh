#!/usr/bin/env bash
# Runs the canonical perf tier (e11-e15) across DYCONITS_BENCH_RUNS seeds
# (default 5; Meterstick asks for >=5) and bundles the five schema-2
# cross-seed reports into one snapshot array. This script is the single
# source of truth for the tier's configurations: scripts/rebaseline.sh
# --bench uses it to regenerate the committed BENCH_<pr>.json baseline, and
# scripts/verify.sh bench-gate uses it to produce the candidate that is
# diffed against that baseline — both sides must measure the same thing or
# the gate compares noise.
#
#   scripts/bench_snapshot.sh [build-dir] [out.json]
#
# Configurations are sized so the full tier stays a few minutes: long
# enough past warmup for steady-state rates, small enough for CI. Seeds are
# 42..42+N-1 on every bench, so deterministic metrics (wire bytes, shed
# counters) reproduce exactly when baseline and candidate use the same N.
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
out="${2:-BENCH_candidate.json}"
runs="${DYCONITS_BENCH_RUNS:-5}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$build" -j "$jobs" \
  --target bench_gate e11_chaos e12_parallel e13_overload e14_egress \
  e15_transport >/dev/null

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "-- e11_chaos: $runs seeds (degradation + recovery under loss)"
"$build/bench/e11_chaos" --players=12 --duration=30 --warmup=8 --loss=0,10 \
  --runs="$runs" --json="$tmp/e11.json" >"$tmp/e11.out"

echo "-- e12_parallel: $runs seeds (parallel flush vs serial oracle)"
"$build/bench/e12_parallel" --players=80 --duration=10 --warmup=3 \
  --threads-list=1,4 --runs="$runs" --json="$tmp/e12.json" >"$tmp/e12.out"

echo "-- e13_overload: $runs seeds (overload-control ladder)"
"$build/bench/e13_overload" --players=16 --duration=25 --warmup=5 --load=1,4 \
  --runs="$runs" --json="$tmp/e13.json" >"$tmp/e13.out"

echo "-- e14_egress: $runs seeds (zero-allocation egress)"
"$build/bench/e14_egress" --players=60 --duration=20 --warmup=5 \
  --runs="$runs" --json="$tmp/e14.json" >"$tmp/e14.out"

echo "-- e15_transport: $runs repeats (UDP framing vs sim, wall-clock)"
"$build/bench/e15_transport" --iters=60 --batch=64 --payload=96 \
  --runs="$runs" --json="$tmp/e15.json" >"$tmp/e15.out"

"$build/bench/bench_gate" --bundle="$out" \
  "$tmp/e11.json" "$tmp/e12.json" "$tmp/e13.json" "$tmp/e14.json" \
  "$tmp/e15.json"
"$build/bench/bench_gate" --check="$out"
