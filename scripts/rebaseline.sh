#!/usr/bin/env bash
# Regenerates the golden serial wire baseline (tests/golden/serial_wire.txt)
# from the single-threaded oracle. Run this after any *intended* change to
# the update/wire path, and commit the new baseline together with the change
# so the diff is reviewable (see GoldenRun.SerialWireBaselineUnchanged in
# tests/determinism_test.cpp).
#
#   scripts/rebaseline.sh [build-dir]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

build="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B "$build" -S .
cmake --build "$build" -j "$jobs" --target determinism_test

DYCONITS_REBASELINE=1 "$build/tests/determinism_test" --gtest_filter='GoldenRun.*'

echo "rebaseline: wrote tests/golden/serial_wire.txt"
git --no-pager diff --stat -- tests/golden/serial_wire.txt || true
