#!/usr/bin/env bash
# Regenerates committed baselines after an *intended* change, so the diff is
# reviewable alongside the code that caused it.
#
#   scripts/rebaseline.sh [build-dir]           # golden serial wire baseline
#   scripts/rebaseline.sh --bench [build-dir]   # multi-seed perf snapshot
#
# Default mode rewrites tests/golden/serial_wire.txt from the
# single-threaded oracle (see GoldenRun.SerialWireBaselineUnchanged in
# tests/determinism_test.cpp). --bench re-runs the canonical perf tier
# (scripts/bench_snapshot.sh, DYCONITS_BENCH_RUNS seeds, default 5) and
# rewrites the latest BENCH_<pr>.json — the baseline `scripts/verify.sh
# bench-gate` diffs against.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--bench" ]; then
  shift
  build="${1:-build}"
  # Overwrite the newest committed snapshot; first-ever use starts BENCH_7.
  out="$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)"
  [ -n "$out" ] || out="BENCH_7.json"
  scripts/bench_snapshot.sh "$build" "$out"
  echo "rebaseline: wrote $out"
  git --no-pager diff --stat -- "$out" || true
  exit 0
fi

build="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake -B "$build" -S .
cmake --build "$build" -j "$jobs" --target determinism_test

DYCONITS_REBASELINE=1 "$build/tests/determinism_test" --gtest_filter='GoldenRun.*'

echo "rebaseline: wrote tests/golden/serial_wire.txt"
git --no-pager diff --stat -- tests/golden/serial_wire.txt || true
