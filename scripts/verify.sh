#!/usr/bin/env bash
# Full verification: tier-1 build + tests, then the chaos suite across a
# fault-seed matrix, then the unit-test suite again under AddressSanitizer +
# UBSan (DYCONITS_SANITIZE) including a 100k-iteration protocol fuzz pass,
# then the determinism + chaos suites under ThreadSanitizer with the
# parallel flush pipeline on (--threads=4; DESIGN.md §9), then a check that
# the compile-out switch (DYCONITS_TRACING=OFF) still builds, then the
# end-to-end UDP run: server + bot clients as separate OS processes over
# loopback must produce the exact wire hashes the in-process sim oracle
# predicts (DESIGN.md §12), including a clean-shutdown pass under ASan.
#
#   scripts/verify.sh [build-dir-prefix] [stage ...] [--self-test]
#
# Stages: tier1 perf-smoke chaos asan tsan notrace e2e-udp e2e-chaos-udp
# bench-gate
# (default: all, in that order). Named stages assume their build tree exists
# when they reuse one from an earlier stage (e2e-udp and bench-gate
# configure/build what they need). The bench-gate stage re-runs the
# canonical perf tier across DYCONITS_BENCH_RUNS seeds (default 5) and
# fails if any gated metric regresses beyond its recorded noise band;
# `bench-gate --self-test` instead proves the gate trips on a synthetic 20%
# regression without re-running the benches.
set -euo pipefail
cd "$(dirname "$0")/.."

all_stages="tier1 perf-smoke chaos asan tsan notrace e2e-udp e2e-chaos-udp bench-gate"

usage() {
  echo "usage: scripts/verify.sh [build-dir-prefix] [stage ...] [--self-test]"
  echo "stages: $all_stages (default: all, in that order)"
  echo "knobs:  DYCONITS_BENCH_RUNS=N   seeds per bench in the bench-gate stage (default 5)"
}

self_test=0
args=()
for a in "$@"; do
  case "$a" in
    --self-test) self_test=1 ;;
    --help|-h) usage; exit 0 ;;
    *) args+=("$a") ;;
  esac
done
set -- ${args[@]+"${args[@]}"}

prefix="build"
if [ "$#" -gt 0 ]; then
  case " $all_stages " in
    *" $1 "*) ;;                    # first arg is a stage name, keep default prefix
    *) prefix="$1"; shift ;;
  esac
fi
stages="${*:-$all_stages}"
for s in $stages; do
  case " $all_stages " in
    *" $s "*) ;;
    *) echo "unknown stage '$s'" >&2; usage >&2; exit 2 ;;
  esac
done
jobs="$(nproc 2>/dev/null || echo 4)"

want() { case " $stages " in *" $1 "*) return 0 ;; *) return 1 ;; esac; }

# One scripted run (DESIGN.md §12): server + $2 clients over UDP loopback
# from the $1 build tree, hash lines collected into $3. Exit codes of every
# process are checked (set -e + wait), so sanitizer reports fail the stage.
e2e_udp_run() {
  local bdir="$1" clients="$2" out="$3" ticks="$4"
  local tmp spid port idx
  tmp="$(mktemp -d)"
  "$bdir/src/apps/dyconits_server" --transport=udp --ticks="$ticks" \
    --clients="$clients" --port-file="$tmp/port" >"$tmp/server.out" &
  spid=$!
  for _ in $(seq 1 200); do [ -s "$tmp/port" ] && break; sleep 0.05; done
  if [ ! -s "$tmp/port" ]; then
    echo "e2e-udp: server never wrote its port file" >&2
    kill "$spid" 2>/dev/null || true
    return 1
  fi
  port="$(cat "$tmp/port")"
  local cpids=()
  for idx in $(seq 0 $((clients - 1))); do
    "$bdir/src/apps/dyconits_client" --connect="127.0.0.1:$port" \
      --index="$idx" --ticks="$ticks" >"$tmp/client$idx.out" &
    cpids+=("$!")
  done
  for p in "${cpids[@]}"; do wait "$p"; done
  wait "$spid"
  cat "$tmp/server.out" "$tmp"/client*.out | grep '^wire_hash' | sort >"$out"
  rm -rf "$tmp"
}

# One chaos run (DESIGN.md §13): a free-running server plus $2 free-running
# clients as separate OS processes over UDP loopback from the $1 build tree,
# all injecting 10% seeded frame loss through FaultInjectingTransport, with
# a mid-run server crash + same-port restart. Asserts from the
# chaos_summary lines: exactly one crash, every pre-crash session resumed,
# zero post-recovery bound violations, and every client (re)joined.
e2e_chaos_run() {
  local bdir="$1" clients="$2" ticks="$3"
  local tmp spid port idx line val
  tmp="$(mktemp -d)"
  printf 'loss 0.10\n' >"$tmp/faults.txt"
  "$bdir/src/apps/dyconits_server" --free-run --faults="$tmp/faults.txt" \
    --fault-seed=7 --clients="$clients" --ticks="$ticks" \
    --crash-at-tick=$((ticks / 3)) --restart --restart-delay=1s \
    --state-file="$tmp/state.txt" --port-file="$tmp/port" >"$tmp/server.out" &
  spid=$!
  for _ in $(seq 1 200); do [ -s "$tmp/port" ] && break; sleep 0.05; done
  if [ ! -s "$tmp/port" ]; then
    echo "e2e-chaos-udp: server never wrote its port file" >&2
    kill "$spid" 2>/dev/null || true
    return 1
  fi
  port="$(cat "$tmp/port")"
  local cpids=()
  for idx in $(seq 0 $((clients - 1))); do
    "$bdir/src/apps/dyconits_client" --free-run --faults="$tmp/faults.txt" \
      --fault-seed=7 --connect="127.0.0.1:$port" --index="$idx" \
      --ticks="$ticks" >"$tmp/client$idx.out" &
    cpids+=("$!")
  done
  for p in "${cpids[@]}"; do wait "$p"; done
  wait "$spid"
  line="$(grep -m1 '^chaos_summary role=server' "$tmp/server.out" || true)"
  if [ -z "$line" ]; then
    echo "e2e-chaos-udp: server printed no chaos_summary" >&2
    cat "$tmp/server.out" >&2
    return 1
  fi
  echo "-- $line"
  for want_field in "crashes=1" "pre_crash_sessions=$clients" "bound_violations=0"; do
    case " $line " in
      *" $want_field "*) ;;
      *) echo "e2e-chaos-udp: expected '$want_field' in: $line" >&2; return 1 ;;
    esac
  done
  val="$(sed -n 's/.* resumed=\([0-9]*\).*/\1/p' <<<"$line")"
  if [ "$val" != "$clients" ]; then
    echo "e2e-chaos-udp: only $val of $clients sessions resumed: $line" >&2
    return 1
  fi
  for idx in $(seq 0 $((clients - 1))); do
    if ! grep -q '^chaos_summary role=client.* joined=1 ' "$tmp/client$idx.out"; then
      echo "e2e-chaos-udp: client $idx never (re)joined" >&2
      cat "$tmp/client$idx.out" >&2
      return 1
    fi
  done
  rm -rf "$tmp"
}

if want tier1; then
  echo "== tier-1: release build + ctest =="
  cmake -B "$prefix" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$prefix" -j "$jobs"
  ctest --test-dir "$prefix" --output-on-failure
fi

if want perf-smoke; then
  echo "== e14 perf smoke: zero-allocation egress =="
  # Steady-state frame-buffer allocations per tick (BufferPool misses over the
  # measurement window) must hold at the pinned ceiling of zero once buffer
  # capacity warms (DESIGN.md §11). The property is fleet-size independent, so
  # a small fast run gates it; bench/e14_egress at full scale is the
  # measurement, this is the regression tripwire. The golden-wire determinism
  # suite in the tier-1 ctest pass above already re-proves byte-identity with
  # pooling on across --threads={1,2,4,8}, and the ASan pass below runs
  # egress_test over the pool/shared-frame lifecycle.
  "$prefix/bench/e14_egress" --players=60 --duration=30 --assert-alloc-ceiling=0
fi

if want chaos; then
  echo "== chaos: deterministic fault-schedule suite, seed matrix =="
  # The tier-1 pass above already ran chaos_test at the default seed (42);
  # re-run it across the matrix so recovery is validated on more than one
  # fault history (DESIGN.md §8).
  for seed in 1 7 1337; do
    echo "-- chaos seed $seed"
    DYCONITS_CHAOS_SEED="$seed" \
      ctest --test-dir "$prefix" --output-on-failure -L chaos
  done
fi

if want asan; then
  echo "== sanitizers: ASan+UBSan build + ctest (+100k protocol fuzz) =="
  cmake -B "$prefix-sanitize" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDYCONITS_SANITIZE="address;undefined"
  cmake --build "$prefix-sanitize" -j "$jobs"
  ctest --test-dir "$prefix-sanitize" --output-on-failure
  # Acceptance floor for the decoder: 100k seeded mutations, zero crashes,
  # zero sanitizer reports (the default iteration count is much smaller).
  DYCONITS_FUZZ_ITERS=100000 \
    ctest --test-dir "$prefix-sanitize" --output-on-failure -R protocol_fuzz_test
  # Acceptance floor for overload control (DESIGN.md §10): the full 10k-tick
  # saturating-load run — queue caps, sustained tick cost, and the
  # threads-{1,2,4} byte-identity check — must also hold with ASan+UBSan
  # watching the egress-queue memory churn.
  DYCONITS_OVERLOAD_TICKS=10000 \
    ctest --test-dir "$prefix-sanitize" --output-on-failure -L overload
fi

if want tsan; then
  echo "== tsan: determinism + chaos + overload suites, parallel flush pipeline =="
  # TSan and ASan cannot share a build; a dedicated tree runs the suites
  # that exercise the sharded flush path. Threads forced to 4 so worker code
  # actually runs concurrently; ticks/seeds trimmed — TSan is ~10x slower and
  # the full matrix already ran in the tier-1 pass. The determinism label now
  # includes the overload-ladder scenario (rung transitions byte-identical at
  # --threads=4), and the overload acceptance run re-checks the egress-queue
  # path under concurrent flush workers.
  cmake -B "$prefix-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDYCONITS_SANITIZE=thread
  cmake --build "$prefix-tsan" -j "$jobs"
  DYCONITS_CHAOS_THREADS=4 DYCONITS_DET_TICKS=300 DYCONITS_DET_SEEDS=2 \
    DYCONITS_OVERLOAD_TICKS=2000 \
    ctest --test-dir "$prefix-tsan" --output-on-failure -L "determinism|chaos|overload"
fi

if want notrace; then
  echo "== tracing compiled out: build + ctest =="
  cmake -B "$prefix-notrace" -S . -DCMAKE_BUILD_TYPE=Release -DDYCONITS_TRACING=OFF
  cmake --build "$prefix-notrace" -j "$jobs"
  ctest --test-dir "$prefix-notrace" --output-on-failure -E trace_test
fi

if want e2e-udp; then
  echo "== e2e-udp: separate-process UDP run vs in-process sim oracle =="
  # The headline transport claim (DESIGN.md §12): server and bots running as
  # separate OS processes over real UDP sockets deliver byte streams whose
  # per-session wire hashes match the SimNetwork oracle bit-for-bit. The
  # hashes are computed above the transport, so fragmentation, coalescing,
  # and datagram framing are all on trial.
  e2e_ticks=40
  e2e_clients=2
  cmake -B "$prefix" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$prefix" -j "$jobs" --target dyconits_server dyconits_client
  e2e_dir="$(mktemp -d)"
  "$prefix/src/apps/dyconits_server" --transport=sim --ticks="$e2e_ticks" \
    --clients="$e2e_clients" | grep '^wire_hash' | sort >"$e2e_dir/oracle.txt"
  e2e_udp_run "$prefix" "$e2e_clients" "$e2e_dir/udp.txt" "$e2e_ticks"
  if ! diff -u "$e2e_dir/oracle.txt" "$e2e_dir/udp.txt"; then
    echo "FAIL: UDP wire hashes diverge from the sim oracle" >&2
    exit 1
  fi
  echo "-- wire hashes match the sim oracle ($(wc -l <"$e2e_dir/oracle.txt") sessions)"
  # Same run under ASan+UBSan: every process must exit 0 with no leak or
  # sanitizer report (sockets, epoll registration, pooled payloads,
  # reassembly buffers all torn down cleanly), and the hashes must still
  # match the (sanitizer-build) oracle.
  cmake -B "$prefix-sanitize" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDYCONITS_SANITIZE="address;undefined" >/dev/null
  cmake --build "$prefix-sanitize" -j "$jobs" --target dyconits_server dyconits_client
  "$prefix-sanitize/src/apps/dyconits_server" --transport=sim --ticks="$e2e_ticks" \
    --clients="$e2e_clients" | grep '^wire_hash' | sort >"$e2e_dir/oracle-asan.txt"
  diff -u "$e2e_dir/oracle.txt" "$e2e_dir/oracle-asan.txt"
  e2e_udp_run "$prefix-sanitize" "$e2e_clients" "$e2e_dir/udp-asan.txt" "$e2e_ticks"
  diff -u "$e2e_dir/oracle.txt" "$e2e_dir/udp-asan.txt"
  echo "-- ASan run: clean shutdown, hashes still match"
  rm -rf "$e2e_dir"
fi

if want e2e-chaos-udp; then
  echo "== e2e-chaos-udp: fault injection + crash-restart over real sockets =="
  # DESIGN.md §13, three gates. (1) Determinism: the fault layer's decision
  # stream replays byte-identically from its seed — e16 --replay-check runs
  # the same offered-frame schedule twice and compares decision hashes,
  # then proves a different seed diverges. (2) The transport-chaos unit
  # suite (FaultInjectingTransport ledgers + real-socket keepalive /
  # reassembly under chaos). (3) The headline scenario: a free-running
  # server over loopback UDP at 10% seeded loss crashes mid-run, restarts
  # on the same port, and every client detects the outage and resumes its
  # session with zero post-recovery bound violations — in the release tree
  # and again under ASan+UBSan.
  cmake -B "$prefix" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$prefix" -j "$jobs" \
    --target dyconits_server dyconits_client e16_transport_chaos transport_test
  "$prefix/bench/e16_transport_chaos" --replay-check
  ctest --test-dir "$prefix" --output-on-failure -L transport-chaos
  e2e_chaos_run "$prefix" 3 240
  echo "-- release chaos run: crash recovered, all sessions resumed"
  cmake -B "$prefix-sanitize" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DDYCONITS_SANITIZE="address;undefined" >/dev/null
  cmake --build "$prefix-sanitize" -j "$jobs" \
    --target dyconits_server dyconits_client
  e2e_chaos_run "$prefix-sanitize" 3 240
  echo "-- ASan chaos run: clean shutdown, recovery invariants hold"
fi

if want bench-gate; then
  echo "== bench-gate: multi-seed perf tier vs committed snapshot =="
  # Meterstick discipline (PAPERS.md): performance claims are only trusted
  # across seeds with their variability reported, and only defended by a
  # committed baseline. The canonical tier (scripts/bench_snapshot.sh:
  # e12-e15) re-runs across DYCONITS_BENCH_RUNS seeds; bench_gate fails the
  # stage when a gated metric moves beyond max(recorded noise band, 5%) in
  # its bad direction. Intended perf changes rebaseline with
  # `scripts/rebaseline.sh --bench` and commit the new BENCH_<pr>.json.
  baseline="$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)"
  if [ -z "$baseline" ]; then
    echo "bench-gate: no committed BENCH_*.json baseline found." >&2
    echo "  Generate one: scripts/rebaseline.sh --bench" >&2
    exit 1
  fi
  cmake -B "$prefix" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$prefix" -j "$jobs" --target bench_gate >/dev/null
  if [ "$self_test" = 1 ]; then
    # Prove the gate can fail before trusting that it passed: an identical
    # candidate must pass and a synthetic 20% regression must trip.
    "$prefix/bench/bench_gate" --self-test --baseline="$baseline"
  else
    bench_tmp="$(mktemp -d)"
    scripts/bench_snapshot.sh "$prefix" "$bench_tmp/candidate.json"
    "$prefix/bench/bench_gate" --baseline="$baseline" \
      --candidate="$bench_tmp/candidate.json"
    rm -rf "$bench_tmp"
  fi
fi

echo "verify: selected stages passed ($stages)"
