#!/usr/bin/env bash
# Full verification: tier-1 build + tests, then the chaos suite across a
# fault-seed matrix, then the unit-test suite again under AddressSanitizer +
# UBSan (DYCONITS_SANITIZE) including a 100k-iteration protocol fuzz pass,
# then the determinism + chaos suites under ThreadSanitizer with the
# parallel flush pipeline on (--threads=4; DESIGN.md §9), then a check that
# the compile-out switch (DYCONITS_TRACING=OFF) still builds.
#
#   scripts/verify.sh [build-dir-prefix]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

prefix="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: release build + ctest =="
cmake -B "$prefix" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$prefix" -j "$jobs"
ctest --test-dir "$prefix" --output-on-failure

echo "== e14 perf smoke: zero-allocation egress =="
# Steady-state frame-buffer allocations per tick (BufferPool misses over the
# measurement window) must hold at the pinned ceiling of zero once buffer
# capacity warms (DESIGN.md §11). The property is fleet-size independent, so
# a small fast run gates it; bench/e14_egress at full scale is the
# measurement, this is the regression tripwire. The golden-wire determinism
# suite in the tier-1 ctest pass above already re-proves byte-identity with
# pooling on across --threads={1,2,4,8}, and the ASan pass below runs
# egress_test over the pool/shared-frame lifecycle.
"$prefix/bench/e14_egress" --players=60 --duration=30 --assert-alloc-ceiling=0

echo "== chaos: deterministic fault-schedule suite, seed matrix =="
# The tier-1 pass above already ran chaos_test at the default seed (42);
# re-run it across the matrix so recovery is validated on more than one
# fault history (DESIGN.md §8).
for seed in 1 7 1337; do
  echo "-- chaos seed $seed"
  DYCONITS_CHAOS_SEED="$seed" \
    ctest --test-dir "$prefix" --output-on-failure -L chaos
done

echo "== sanitizers: ASan+UBSan build + ctest (+100k protocol fuzz) =="
cmake -B "$prefix-sanitize" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDYCONITS_SANITIZE="address;undefined"
cmake --build "$prefix-sanitize" -j "$jobs"
ctest --test-dir "$prefix-sanitize" --output-on-failure
# Acceptance floor for the decoder: 100k seeded mutations, zero crashes,
# zero sanitizer reports (the default iteration count is much smaller).
DYCONITS_FUZZ_ITERS=100000 \
  ctest --test-dir "$prefix-sanitize" --output-on-failure -R protocol_fuzz_test
# Acceptance floor for overload control (DESIGN.md §10): the full 10k-tick
# saturating-load run — queue caps, sustained tick cost, and the
# threads-{1,2,4} byte-identity check — must also hold with ASan+UBSan
# watching the egress-queue memory churn.
DYCONITS_OVERLOAD_TICKS=10000 \
  ctest --test-dir "$prefix-sanitize" --output-on-failure -L overload

echo "== tsan: determinism + chaos + overload suites, parallel flush pipeline =="
# TSan and ASan cannot share a build; a dedicated tree runs the suites
# that exercise the sharded flush path. Threads forced to 4 so worker code
# actually runs concurrently; ticks/seeds trimmed — TSan is ~10x slower and
# the full matrix already ran in the tier-1 pass. The determinism label now
# includes the overload-ladder scenario (rung transitions byte-identical at
# --threads=4), and the overload acceptance run re-checks the egress-queue
# path under concurrent flush workers.
cmake -B "$prefix-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDYCONITS_SANITIZE=thread
cmake --build "$prefix-tsan" -j "$jobs"
DYCONITS_CHAOS_THREADS=4 DYCONITS_DET_TICKS=300 DYCONITS_DET_SEEDS=2 \
  DYCONITS_OVERLOAD_TICKS=2000 \
  ctest --test-dir "$prefix-tsan" --output-on-failure -L "determinism|chaos|overload"

echo "== tracing compiled out: build + ctest =="
cmake -B "$prefix-notrace" -S . -DCMAKE_BUILD_TYPE=Release -DDYCONITS_TRACING=OFF
cmake --build "$prefix-notrace" -j "$jobs"
ctest --test-dir "$prefix-notrace" --output-on-failure -E trace_test

echo "verify: all suites passed"
