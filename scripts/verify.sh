#!/usr/bin/env bash
# Full verification: tier-1 build + tests, then the unit-test suite again
# under AddressSanitizer + UBSan (DYCONITS_SANITIZE), then a check that the
# compile-out switch (DYCONITS_TRACING=OFF) still builds.
#
#   scripts/verify.sh [build-dir-prefix]   # default: build
set -euo pipefail
cd "$(dirname "$0")/.."

prefix="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== tier-1: release build + ctest =="
cmake -B "$prefix" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$prefix" -j "$jobs"
ctest --test-dir "$prefix" --output-on-failure

echo "== sanitizers: ASan+UBSan build + ctest =="
cmake -B "$prefix-sanitize" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DDYCONITS_SANITIZE="address;undefined"
cmake --build "$prefix-sanitize" -j "$jobs"
ctest --test-dir "$prefix-sanitize" --output-on-failure

echo "== tracing compiled out: build + ctest =="
cmake -B "$prefix-notrace" -S . -DCMAKE_BUILD_TYPE=Release -DDYCONITS_TRACING=OFF
cmake --build "$prefix-notrace" -j "$jobs"
ctest --test-dir "$prefix-notrace" --output-on-failure -E trace_test

echo "verify: all suites passed"
