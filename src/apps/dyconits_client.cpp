// Standalone bot-client binary (DESIGN.md §12): one scripted lockstep bot
// talking to a dyconits_server over UDP.
//
//   dyconits_client --connect=127.0.0.1:4600 --index=0 --ticks=120
//
// The (seed, index) pair must match the server's schedule; on completion
// the bot prints its `wire_hash role=client ...` line.
#include <cstdio>

#include "apps/scripted_run.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dyconits;

  Flags flags(argc, argv);
  flags.assert_known({"connect", "index", "ticks", "seed", "terrain-seed", "mobs",
                      "net-timeout", "free-run", "faults", "fault-seed", "help"});
  if (flags.has("help")) {
    std::printf(
        "usage: dyconits_client --connect=host:port [--index=N] [--ticks=N]\n"
        "                       [--seed=N] [--terrain-seed=N] [--mobs=N]\n"
        "                       [--net-timeout=DUR]\n"
        "                       [--free-run] [--faults=FILE] [--fault-seed=N]\n"
        "free-run mode drops the lockstep barriers: wall-paced ticks, seeded\n"
        "fault injection on the bot's own sends, liveness-driven reconnect\n"
        "(prints a chaos_summary line instead of a comparable wire hash).\n");
    return 0;
  }

  apps::ScriptedConfig cfg;
  cfg.ticks = static_cast<std::uint64_t>(flags.get_int("ticks", 120));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.terrain_seed = static_cast<std::uint64_t>(flags.get_int("terrain-seed", 42));
  cfg.mobs = static_cast<std::uint32_t>(flags.get_int("mobs", 4));
  cfg.net_timeout = flags.get_duration("net-timeout", SimDuration::seconds(10));

  if (!flags.has("connect")) {
    std::fprintf(stderr, "error: --connect=host:port is required\n");
    return 2;
  }
  const Endpoint server = flags.get_endpoint("connect", {});
  const auto index = static_cast<std::uint32_t>(flags.get_int("index", 0));

  apps::ChaosConfig chaos;
  chaos.free_run = flags.get_bool("free-run", false);
  chaos.fault_seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 0));
  if (flags.has("faults")) {
    if (!chaos.free_run) {
      std::fprintf(stderr, "error: --faults requires --free-run\n");
      return 2;
    }
    std::string err;
    if (!bots::load_fault_schedule(flags.get_string("faults", ""), &chaos.faults, &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 2;
    }
  }
  if (chaos.free_run) {
    return apps::run_udp_client_free(cfg, chaos, server.host, server.port, index);
  }
  return apps::run_udp_client(cfg, server.host, server.port, index);
}
