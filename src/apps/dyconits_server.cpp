// Standalone server binary (DESIGN.md §12).
//
//   dyconits_server --transport=udp --listen=127.0.0.1:0 --clients=3
//       --ticks=120 --port-file=/tmp/port
//
// runs the scripted lockstep schedule over real UDP sockets and prints one
// `wire_hash role=server ...` line per session. With --transport=sim the
// whole schedule (server AND clients) runs in-process on SimNetwork and
// both roles' lines are printed — the oracle prediction the UDP runs are
// diffed against (scripts/verify.sh e2e-udp).
#include <cstdio>

#include "apps/scripted_run.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dyconits;

  Flags flags(argc, argv);
  flags.assert_known({"transport", "listen", "ticks", "clients", "seed", "terrain-seed",
                      "mobs", "net-timeout", "port-file", "free-run", "faults",
                      "fault-seed", "crash-at-tick", "restart", "restart-delay",
                      "state-file", "help"});
  if (flags.has("help")) {
    std::printf(
        "usage: dyconits_server [--transport=sim|udp] [--listen=host:port]\n"
        "                       [--ticks=N] [--clients=N] [--seed=N]\n"
        "                       [--terrain-seed=N] [--mobs=N]\n"
        "                       [--net-timeout=DUR] [--port-file=PATH]\n"
        "                       [--free-run] [--faults=FILE] [--fault-seed=N]\n"
        "                       [--crash-at-tick=N] [--restart]\n"
        "                       [--restart-delay=DUR] [--state-file=PATH]\n"
        "free-run mode drops the lockstep gate: wall-paced ticks, seeded\n"
        "fault injection on real frames, optional mid-run crash-restart\n"
        "(prints a chaos_summary line instead of comparable wire hashes).\n");
    return 0;
  }

  apps::ScriptedConfig cfg;
  cfg.ticks = static_cast<std::uint64_t>(flags.get_int("ticks", 120));
  cfg.clients = static_cast<std::uint32_t>(flags.get_int("clients", 3));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.terrain_seed = static_cast<std::uint64_t>(flags.get_int("terrain-seed", 42));
  cfg.mobs = static_cast<std::uint32_t>(flags.get_int("mobs", 4));
  cfg.net_timeout = flags.get_duration("net-timeout", SimDuration::seconds(10));

  apps::ChaosConfig chaos;
  chaos.free_run = flags.get_bool("free-run", false);
  chaos.fault_seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 0));
  chaos.crash_at_tick = static_cast<std::uint64_t>(flags.get_int("crash-at-tick", 0));
  chaos.restart = flags.get_bool("restart", false);
  chaos.restart_delay = flags.get_duration("restart-delay", SimDuration::millis(1000));
  chaos.state_file = flags.get_string("state-file", "");
  if (flags.has("faults")) {
    // Faults break lockstep by design (lost barriers would deadlock the
    // gate); require the mode that can absorb them.
    if (!chaos.free_run) {
      std::fprintf(stderr, "error: --faults requires --free-run\n");
      return 2;
    }
    std::string err;
    if (!bots::load_fault_schedule(flags.get_string("faults", ""), &chaos.faults, &err)) {
      std::fprintf(stderr, "error: %s\n", err.c_str());
      return 2;
    }
  }
  if ((chaos.crash_at_tick > 0 || chaos.restart) && !chaos.free_run) {
    std::fprintf(stderr, "error: --crash-at-tick/--restart require --free-run\n");
    return 2;
  }

  const std::string transport = flags.get_string("transport", "udp");
  if (chaos.free_run && transport != "udp") {
    std::fprintf(stderr, "error: --free-run requires --transport=udp\n");
    return 2;
  }
  if (transport == "sim") {
    for (const auto& line : apps::run_sim_oracle(cfg)) {
      std::printf("%s\n", apps::format_hash_line(line).c_str());
    }
    return 0;
  }
  if (transport != "udp") {
    std::fprintf(stderr, "error: --transport=%s: expected sim or udp\n", transport.c_str());
    return 2;
  }

  // Omitting --listen binds an ephemeral port; pair with --port-file so the
  // launcher can discover it.
  const Endpoint listen = flags.get_endpoint("listen", {"127.0.0.1", 0});
  const std::string port_file = flags.get_string("port-file", "");
  if (chaos.free_run) {
    return apps::run_udp_server_free(cfg, chaos, listen.host, listen.port, port_file);
  }
  return apps::run_udp_server(cfg, listen.host, listen.port, port_file);
}
