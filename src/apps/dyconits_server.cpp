// Standalone server binary (DESIGN.md §12).
//
//   dyconits_server --transport=udp --listen=127.0.0.1:0 --clients=3
//       --ticks=120 --port-file=/tmp/port
//
// runs the scripted lockstep schedule over real UDP sockets and prints one
// `wire_hash role=server ...` line per session. With --transport=sim the
// whole schedule (server AND clients) runs in-process on SimNetwork and
// both roles' lines are printed — the oracle prediction the UDP runs are
// diffed against (scripts/verify.sh e2e-udp).
#include <cstdio>

#include "apps/scripted_run.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace dyconits;

  Flags flags(argc, argv);
  flags.assert_known({"transport", "listen", "ticks", "clients", "seed", "terrain-seed",
                      "mobs", "net-timeout", "port-file", "help"});
  if (flags.has("help")) {
    std::printf(
        "usage: dyconits_server [--transport=sim|udp] [--listen=host:port]\n"
        "                       [--ticks=N] [--clients=N] [--seed=N]\n"
        "                       [--terrain-seed=N] [--mobs=N]\n"
        "                       [--net-timeout=DUR] [--port-file=PATH]\n");
    return 0;
  }

  apps::ScriptedConfig cfg;
  cfg.ticks = static_cast<std::uint64_t>(flags.get_int("ticks", 120));
  cfg.clients = static_cast<std::uint32_t>(flags.get_int("clients", 3));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  cfg.terrain_seed = static_cast<std::uint64_t>(flags.get_int("terrain-seed", 42));
  cfg.mobs = static_cast<std::uint32_t>(flags.get_int("mobs", 4));
  cfg.net_timeout = flags.get_duration("net-timeout", SimDuration::seconds(10));

  const std::string transport = flags.get_string("transport", "udp");
  if (transport == "sim") {
    for (const auto& line : apps::run_sim_oracle(cfg)) {
      std::printf("%s\n", apps::format_hash_line(line).c_str());
    }
    return 0;
  }
  if (transport != "udp") {
    std::fprintf(stderr, "error: --transport=%s: expected sim or udp\n", transport.c_str());
    return 2;
  }

  // Omitting --listen binds an ephemeral port; pair with --port-file so the
  // launcher can discover it.
  const Endpoint listen = flags.get_endpoint("listen", {"127.0.0.1", 0});
  return apps::run_udp_server(cfg, listen.host, listen.port,
                              flags.get_string("port-file", ""));
}
