#include "apps/scripted_run.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "dyconit/policies/factory.h"
#include "net/fault_transport.h"
#include "net/sim_network.h"
#include "net/udp_transport.h"
#include "protocol/codec.h"
#include "server/game_server.h"
#include "util/rng.h"
#include "world/terrain.h"

namespace dyconits::apps {

namespace {

constexpr std::uint8_t kBarrierTag = static_cast<std::uint8_t>(protocol::MessageType::TickBarrier);

std::int64_t wall_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Transport wrapper that re-imposes the sim's deterministic inbound order
/// on UDP: frames from each client are buffered until that client's
/// TickBarrier arrives, and poll() releases exactly one barrier-terminated
/// segment per client, clients in bot-name order. This makes the server's
/// processing order — and therefore its egress byte stream — independent of
/// datagram interleaving on the socket.
class LockstepGate final : public net::Transport {
 public:
  explicit LockstepGate(net::UdpTransport& inner) : inner_(inner) {}

  /// Drains the inner transport's inbox into per-peer buffers. A peer's
  /// bot name is learned from its first frame (always the JoinRequest in
  /// scripted runs); transport-level names are address strings over UDP.
  void collect() {
    for (auto& d : inner_.poll(local_)) {
      PeerBuf& b = bufs_[d.from];
      if (b.name.empty()) {
        if (const auto msg = protocol::decode(d.frame)) {
          if (const auto* jr = std::get_if<protocol::JoinRequest>(&*msg)) b.name = jr->name;
        }
        if (b.name.empty()) b.name = inner_.endpoint_name(d.from);
      }
      if (d.frame.tag == kBarrierTag) ++b.barriers;
      b.q.push_back(std::move(d));
    }
  }

  /// True once `expected` distinct peers each hold a pending barrier.
  bool round_ready(std::size_t expected) const {
    std::size_t ready = 0;
    for (const auto& [id, b] : bufs_) {
      if (b.barriers > 0) ++ready;
    }
    return ready >= expected;
  }

  // -- Transport --
  net::EndpointId create_endpoint(std::string name) override {
    local_ = inner_.create_endpoint(std::move(name));
    return local_;
  }
  const std::string& endpoint_name(net::EndpointId id) const override {
    return inner_.endpoint_name(id);
  }
  bool send(net::EndpointId from, net::EndpointId to, net::Frame frame) override {
    return inner_.send(from, to, std::move(frame));
  }
  std::vector<net::Delivery> poll(net::EndpointId to) override {
    collect();
    if (to != local_) return {};
    std::vector<std::pair<std::string, net::EndpointId>> order;
    for (const auto& [id, b] : bufs_) {
      if (b.barriers > 0) order.emplace_back(b.name, id);
    }
    std::sort(order.begin(), order.end());
    std::vector<net::Delivery> out;
    for (const auto& [name, id] : order) {
      PeerBuf& b = bufs_[id];
      while (!b.q.empty()) {
        net::Delivery d = std::move(b.q.front());
        b.q.pop_front();
        const bool barrier = d.frame.tag == kBarrierTag;
        out.push_back(std::move(d));
        if (barrier) {
          --b.barriers;
          break;
        }
      }
    }
    return out;
  }
  void disconnect(net::EndpointId a, net::EndpointId b) override { inner_.disconnect(a, b); }
  bool connected(net::EndpointId a, net::EndpointId b) const override {
    return inner_.connected(a, b);
  }
  std::uint64_t egress_bytes(net::EndpointId id) const override {
    return inner_.egress_bytes(id);
  }
  std::uint64_t ingress_bytes(net::EndpointId id) const override {
    return inner_.ingress_bytes(id);
  }
  std::uint64_t egress_frames(net::EndpointId id) const override {
    return inner_.egress_frames(id);
  }
  std::uint64_t ingress_frames(net::EndpointId id) const override {
    return inner_.ingress_frames(id);
  }
  void flush_egress() override { inner_.flush_egress(); }

 private:
  struct PeerBuf {
    std::string name;
    std::deque<net::Delivery> q;
    int barriers = 0;
  };

  net::UdpTransport& inner_;
  net::EndpointId local_ = net::kInvalidEndpoint;
  std::map<net::EndpointId, PeerBuf> bufs_;
};

std::vector<HashLine> server_lines(const server::GameServer& server) {
  std::vector<HashLine> out;
  for (const auto& h : server.session_stream_hashes()) {
    out.push_back({"server", h.name, h.egress_hash, h.egress_frames, h.ingress_hash,
                   h.ingress_frames});
  }
  return out;
}

HashLine client_line(const bots::BotClient& bot) {
  return {"client",
          bot.name(),
          bot.egress_hash().value(),
          bot.egress_hash().frames(),
          bot.ingress_hash().value(),
          bot.ingress_hash().frames()};
}

}  // namespace

std::string format_hash_line(const HashLine& line) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "wire_hash role=%s name=%s egress=%016llx egress_frames=%llu "
                "ingress=%016llx ingress_frames=%llu",
                line.role.c_str(), line.name.c_str(),
                static_cast<unsigned long long>(line.egress),
                static_cast<unsigned long long>(line.egress_frames),
                static_cast<unsigned long long>(line.ingress),
                static_cast<unsigned long long>(line.ingress_frames));
  return buf;
}

std::string scripted_bot_name(std::uint32_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "bot%03u", index);
  return buf;
}

world::Vec3 scripted_home(std::uint32_t index) {
  // Integer-derived doubles: exact in every process, no libm involved.
  return {static_cast<double>((index % 8) * 24), 0.0, static_cast<double>((index / 8) * 24)};
}

std::uint64_t scripted_bot_seed(std::uint64_t master_seed, std::uint32_t index) {
  Rng seeds(master_seed ^ 0xB075EEDull);
  std::uint64_t s = 0;
  for (std::uint32_t i = 0; i <= index; ++i) s = seeds.next_u64();
  return s;
}

server::ServerConfig scripted_server_config(const ScriptedConfig& cfg) {
  server::ServerConfig scfg;
  scfg.view_distance = 4;
  scfg.use_dyconits = true;
  scfg.flush_threads = 1;
  scfg.env_ticks_per_tick = 0;
  scfg.mob_count = cfg.mobs;
  scfg.mob_seed = cfg.seed ^ 0x30B5ull;
  scfg.deterministic_load = true;  // wire bytes must not depend on host speed
  scfg.hash_streams = true;
  scfg.spawn_provider = [](const std::string& name) {
    // Spawn exactly at the scripted home column; each server recomputes
    // the same y from its own (identically seeded) terrain.
    std::uint32_t index = 0;
    std::sscanf(name.c_str(), "bot%u", &index);
    return scripted_home(index);
  };
  return scfg;
}

bots::BotConfig scripted_bot_config(const ScriptedConfig& cfg, std::uint32_t index) {
  (void)cfg;
  bots::BotConfig bc;
  bc.kind = bots::BehaviorKind::Walk;
  bc.home = scripted_home(index);
  bc.chat_prob = 0.0;
  // Walk-only bots never mutate blocks, so the client's private terrain
  // copy stays equal to the server's — required for identical kinematics.
  bc.join_retry = SimDuration(0);        // lockstep: nothing is ever lost silently
  bc.liveness_timeout = SimDuration(0);  // waits can exceed any fixed sim window
  bc.hash_streams = true;
  return bc;
}

std::vector<HashLine> run_sim_oracle(const ScriptedConfig& cfg) {
  SimClock clock;
  net::SimNetwork net(clock, cfg.seed ^ 0x5E7ull);
  world::World world(std::make_unique<world::TerrainGenerator>(cfg.terrain_seed));
  server::GameServer server(clock, net, world, dyconit::make_policy("zero"),
                            scripted_server_config(cfg));

  std::vector<std::unique_ptr<bots::BotClient>> bots;
  for (std::uint32_t i = 0; i < cfg.clients; ++i) {
    auto bot = std::make_unique<bots::BotClient>(clock, net, world, server.endpoint(),
                                                 scripted_bot_name(i),
                                                 scripted_bot_seed(cfg.seed, i),
                                                 scripted_bot_config(cfg, i));
    net.connect(bot->endpoint(), server.endpoint(),
                {SimDuration(0), /*jitter=*/0.0, /*fifo=*/true});
    bots.push_back(std::move(bot));
  }

  for (std::uint64_t k = 0; k < cfg.ticks; ++k) {
    for (std::uint32_t i = 0; i < cfg.clients; ++i) {
      if (k == 0) bots[i]->connect();
      bots[i]->tick();
      bots[i]->send_barrier(static_cast<std::uint32_t>(k));
    }
    server.tick();
    clock.advance(server.config().tick_interval);
  }
  // The UDP clients drain the server's final tick (they wait for its ack);
  // give the sim bots the same final inbound pass.
  for (auto& bot : bots) bot->poll_inbound();

  std::vector<HashLine> lines = server_lines(server);
  for (const auto& bot : bots) lines.push_back(client_line(*bot));
  return lines;
}

int run_udp_server(const ScriptedConfig& cfg, const std::string& host, std::uint16_t port,
                   const std::string& port_file) {
  SimClock clock;
  net::UdpConfig ucfg;
  ucfg.bind_host = host;
  ucfg.bind_port = port;
  // Lockstep waits outlast any fixed idle window; liveness is the
  // script's wall deadline, not the transport's.
  ucfg.idle_timeout = SimDuration(0);
  net::UdpTransport udp(clock, ucfg);
  if (!udp.valid()) {
    std::fprintf(stderr, "udp server: %s\n", udp.error().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "udp server: cannot write port file %s\n", port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%u\n", udp.local_port());
    std::fclose(f);
  }
  std::fprintf(stderr, "udp server: listening on %s:%u, waiting for %u clients\n",
               host.c_str(), udp.local_port(), cfg.clients);

  LockstepGate gate(udp);
  world::World world(std::make_unique<world::TerrainGenerator>(cfg.terrain_seed));
  server::GameServer server(clock, gate, world, dyconit::make_policy("zero"),
                            scripted_server_config(cfg));

  for (std::uint64_t k = 0; k < cfg.ticks; ++k) {
    const std::int64_t deadline = wall_micros() + cfg.net_timeout.count_micros();
    for (;;) {
      udp.pump(/*timeout_ms=*/1);
      gate.collect();
      if (gate.round_ready(cfg.clients)) break;
      if (wall_micros() > deadline) {
        std::fprintf(stderr, "udp server: timed out waiting for client barriers at tick %llu\n",
                     static_cast<unsigned long long>(k));
        return 1;
      }
    }
    server.tick();
    gate.flush_egress();
    clock.advance(server.config().tick_interval);
  }

  for (const auto& line : server_lines(server)) {
    std::printf("%s\n", format_hash_line(line).c_str());
  }
  const net::UdpStats& st = udp.stats();
  std::fprintf(stderr,
               "udp server: datagrams tx=%llu rx=%llu fragments tx=%llu reassembled=%llu "
               "send_failures=%llu\n",
               static_cast<unsigned long long>(st.datagrams_sent),
               static_cast<unsigned long long>(st.datagrams_received),
               static_cast<unsigned long long>(st.fragments_sent),
               static_cast<unsigned long long>(st.frames_reassembled),
               static_cast<unsigned long long>(st.send_failures));
  return 0;
}

int run_udp_client(const ScriptedConfig& cfg, const std::string& host, std::uint16_t port,
                   std::uint32_t index) {
  SimClock clock;
  net::UdpConfig ucfg;
  ucfg.bind_host = "127.0.0.1";
  ucfg.bind_port = 0;
  ucfg.idle_timeout = SimDuration(0);
  net::UdpTransport udp(clock, ucfg);
  if (!udp.valid()) {
    std::fprintf(stderr, "udp client: %s\n", udp.error().c_str());
    return 1;
  }
  const net::EndpointId server_ep = udp.add_peer(host, port, "server");
  if (server_ep == net::kInvalidEndpoint) {
    std::fprintf(stderr, "udp client: bad server address %s:%u\n", host.c_str(), port);
    return 1;
  }

  world::World world(std::make_unique<world::TerrainGenerator>(cfg.terrain_seed));
  bots::BotClient bot(clock, udp, world, server_ep, scripted_bot_name(index),
                      scripted_bot_seed(cfg.seed, index), scripted_bot_config(cfg, index));

  // Waits until the server's tick `upto` is fully received (its
  // TickBarrierAck is the last frame of the tick). Returns false on wall
  // timeout.
  const auto wait_for_ack = [&](std::uint32_t upto) {
    const std::int64_t deadline = wall_micros() + cfg.net_timeout.count_micros();
    while (bot.barrier_acks_seen() == 0 || bot.last_barrier_ack() < upto) {
      udp.pump(/*timeout_ms=*/1);
      bot.poll_inbound();
      if (wall_micros() > deadline) {
        std::fprintf(stderr, "udp client %s: timed out waiting for ack %u\n",
                     bot.name().c_str(), upto);
        return false;
      }
    }
    return true;
  };

  for (std::uint64_t k = 0; k < cfg.ticks; ++k) {
    if (k > 0 && !wait_for_ack(static_cast<std::uint32_t>(k - 1))) return 1;
    if (k == 0) bot.connect();
    bot.tick();
    bot.send_barrier(static_cast<std::uint32_t>(k));
    udp.flush_egress();
    clock.advance(SimDuration::millis(50));
  }
  if (!wait_for_ack(static_cast<std::uint32_t>(cfg.ticks - 1))) return 1;

  std::printf("%s\n", format_hash_line(client_line(bot)).c_str());
  return 0;
}

// ------------------------------------------- free-run chaos (DESIGN.md §13)

namespace {

net::FaultPlan chaos_fault_plan(const ScriptedConfig& cfg, const ChaosConfig& chaos) {
  net::FaultPlan plan;
  plan.seed = chaos.fault_seed != 0 ? chaos.fault_seed : (cfg.seed ^ 0xC4A05ull);
  plan.all_links = chaos.faults.link;
  // Scheduled events are deliberately not translated: they name endpoint
  // ids, which are process-local over UDP (see ChaosConfig::faults).
  return plan;
}

/// Minimal session state that survives a server crash: the tick counter and
/// the joined player names. Deliberately a plain text file — the point is
/// the round trip, not the format.
struct CrashState {
  std::uint64_t tick = 0;
  std::vector<std::string> players;
};

bool write_crash_state(const std::string& path, const CrashState& st) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "tick " << st.tick << "\n";
  for (const auto& p : st.players) out << "player " << p << "\n";
  return static_cast<bool>(out);
}

bool read_crash_state(const std::string& path, CrashState* st) {
  std::ifstream in(path);
  if (!in) return false;
  CrashState got;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::string key;
    if (!(tokens >> key)) continue;
    if (key == "tick") {
      if (!(tokens >> got.tick)) return false;
    } else if (key == "player") {
      std::string name;
      if (!(tokens >> name)) return false;
      got.players.push_back(std::move(name));
    }
  }
  *st = std::move(got);
  return true;
}

void sleep_wall(SimDuration d) {
  std::this_thread::sleep_for(std::chrono::microseconds(d.count_micros()));
}

}  // namespace

int run_udp_server_free(const ScriptedConfig& cfg, const ChaosConfig& chaos,
                        const std::string& host, std::uint16_t port,
                        const std::string& port_file) {
  SimClock clock;
  // The world is the "disk save": it survives a crash. Everything else —
  // transport, sessions, dyconit state — dies with the incarnation.
  world::World world(std::make_unique<world::TerrainGenerator>(cfg.terrain_seed));

  server::ServerConfig scfg = scripted_server_config(cfg);
  // Free-run liveness is real: tighten the keepalive cadence to 500 ms so
  // idle links still carry evidence of life at outage-detection timescales.
  scfg.keepalive_interval_ticks = 10;

  const std::int64_t tick_us = scfg.tick_interval.count_micros();
  const net::FaultPlan plan = chaos_fault_plan(cfg, chaos);

  std::uint64_t tick = 0;
  std::uint16_t bound_port = port;
  bool crashed_once = false;
  CrashState saved;
  std::uint64_t crashes = 0;
  std::uint64_t post_recovery_violations = 0;
  std::uint64_t send_failures = 0, resyncs_served = 0, revivals = 0;
  net::FaultStats injected;
  std::uint64_t decision_hash = 0, decisions = 0;
  std::size_t sessions_at_end = 0, resumed = 0;
  // Post-recovery means: the restarted incarnation is up AND clients had
  // time to notice the outage and replay the resync handshake. Grace =
  // client liveness window (2 s) + one backoff round, in ticks.
  const std::uint64_t recovery_grace_ticks = 60;

  for (;;) {  // one iteration per server incarnation
    net::UdpConfig ucfg;
    ucfg.bind_host = host;
    ucfg.bind_port = bound_port;
    ucfg.idle_timeout = SimDuration(0);  // bot-level liveness owns teardown
    net::UdpTransport udp(clock, ucfg);
    if (!udp.valid()) {
      std::fprintf(stderr, "chaos server: %s\n", udp.error().c_str());
      return 1;
    }
    bound_port = udp.local_port();  // restart rebinds the same port
    if (!crashed_once && !port_file.empty()) {
      std::FILE* f = std::fopen(port_file.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "chaos server: cannot write port file %s\n", port_file.c_str());
        return 1;
      }
      std::fprintf(f, "%u\n", udp.local_port());
      std::fclose(f);
    }
    net::FaultInjectingTransport faultnet(udp, clock);
    faultnet.set_fault_plan(plan);
    server::GameServer server(clock, faultnet, world, dyconit::make_policy("zero"), scfg);
    std::fprintf(stderr, "chaos server: incarnation %llu up on %s:%u at tick %llu\n",
                 static_cast<unsigned long long>(crashes),
                 host.c_str(), bound_port, static_cast<unsigned long long>(tick));

    const std::int64_t t0 = wall_micros();
    std::uint64_t local_tick = 0;
    bool crash_now = false;
    while (tick < cfg.ticks) {
      const std::int64_t deadline = t0 + static_cast<std::int64_t>(local_tick + 1) * tick_us;
      while (wall_micros() < deadline) udp.pump(/*timeout_ms=*/1);
      server.tick();
      faultnet.flush_egress();
      clock.advance(scfg.tick_interval);
      ++tick;
      ++local_tick;
      if (crashed_once && tick > saved.tick + recovery_grace_ticks) {
        // The recovered regime must hold the paper's invariant: with the
        // zero policy every queue flushes every tick, so nothing may still
        // violate its bounds after the tick ran.
        const SimTime now = clock.now();
        server.dyconits().for_each([&](dyconit::Dyconit& d) {
          d.for_each_subscriber([&](dyconit::SubscriberId, dyconit::Bounds& b,
                                    const dyconit::SubscriberQueue& q) {
            if (q.violates(b, now)) ++post_recovery_violations;
          });
        });
      }
      if (!crashed_once && chaos.crash_at_tick > 0 && tick >= chaos.crash_at_tick) {
        crash_now = true;
        break;
      }
    }

    // Roll this incarnation's ledgers up before it dies.
    send_failures += udp.stats().send_failures;
    revivals += udp.stats().peer_revivals;
    resyncs_served += server.resyncs_served();
    {
      const net::FaultStats fs = faultnet.injected_totals();
      injected.dropped.frames += fs.dropped.frames;
      injected.corrupted += fs.corrupted;
      injected.duplicated += fs.duplicated;
      injected.reordered += fs.reordered;
      injected.refused += fs.refused;
    }
    decision_hash = faultnet.decision_hash();
    decisions += faultnet.frames_offered();

    if (crash_now) {
      ++crashes;
      saved.tick = tick;
      saved.players.clear();
      for (const auto& h : server.session_stream_hashes()) saved.players.push_back(h.name);
      if (!chaos.state_file.empty() && !write_crash_state(chaos.state_file, saved)) {
        std::fprintf(stderr, "chaos server: cannot write state file %s\n",
                     chaos.state_file.c_str());
        return 1;
      }
      udp.close_abruptly();  // no Byes, no flush: a SIGKILL's wire signature
      crashed_once = true;
      std::fprintf(stderr,
                   "chaos server: crashed at tick %llu with %zu sessions%s\n",
                   static_cast<unsigned long long>(tick), saved.players.size(),
                   chaos.restart ? ", restarting" : "");
      if (!chaos.restart) break;
      sleep_wall(chaos.restart_delay);
      if (!chaos.state_file.empty()) {
        CrashState reloaded;
        if (!read_crash_state(chaos.state_file, &reloaded)) {
          std::fprintf(stderr, "chaos server: cannot reload state file %s\n",
                       chaos.state_file.c_str());
          return 1;
        }
        tick = reloaded.tick;  // resume the schedule where the crash cut it
        saved = std::move(reloaded);
      }
      continue;
    }

    sessions_at_end = server.session_stream_hashes().size();
    {
      std::set<std::string> now_joined;
      for (const auto& h : server.session_stream_hashes()) now_joined.insert(h.name);
      for (const auto& p : saved.players) resumed += now_joined.count(p);
    }
    break;
  }

  std::printf(
      "chaos_summary role=server ticks=%llu crashes=%llu sessions=%zu "
      "pre_crash_sessions=%zu resumed=%zu bound_violations=%llu "
      "send_failures=%llu resyncs_served=%llu peer_revivals=%llu "
      "injected_drops=%llu injected_dups=%llu injected_corrupt=%llu "
      "injected_reorder=%llu decisions=%llu decision_hash=%016llx\n",
      static_cast<unsigned long long>(tick), static_cast<unsigned long long>(crashes),
      sessions_at_end, saved.players.size(), resumed,
      static_cast<unsigned long long>(post_recovery_violations),
      static_cast<unsigned long long>(send_failures),
      static_cast<unsigned long long>(resyncs_served),
      static_cast<unsigned long long>(revivals),
      static_cast<unsigned long long>(injected.dropped.frames),
      static_cast<unsigned long long>(injected.duplicated),
      static_cast<unsigned long long>(injected.corrupted),
      static_cast<unsigned long long>(injected.reordered),
      static_cast<unsigned long long>(decisions),
      static_cast<unsigned long long>(decision_hash));
  std::fflush(stdout);
  return 0;
}

int run_udp_client_free(const ScriptedConfig& cfg, const ChaosConfig& chaos,
                        const std::string& host, std::uint16_t port, std::uint32_t index) {
  SimClock clock;
  // Start one tick in: the bot treats join_sent_at_ == SimTime::zero() as
  // "never sent", so a connect() at exactly t=0 would disable join retries.
  clock.advance(SimDuration::millis(50));
  net::UdpConfig ucfg;
  ucfg.bind_host = "127.0.0.1";
  ucfg.bind_port = 0;
  ucfg.idle_timeout = SimDuration(0);
  net::UdpTransport udp(clock, ucfg);
  if (!udp.valid()) {
    std::fprintf(stderr, "chaos client: %s\n", udp.error().c_str());
    return 1;
  }
  net::FaultInjectingTransport faultnet(udp, clock);
  {
    net::FaultPlan plan = chaos_fault_plan(cfg, chaos);
    plan.seed ^= 0xC11E57ull + index;  // per-process decision stream
    faultnet.set_fault_plan(plan);
  }
  const net::EndpointId server_ep = udp.add_peer(host, port, "server");
  if (server_ep == net::kInvalidEndpoint) {
    std::fprintf(stderr, "chaos client: bad server address %s:%u\n", host.c_str(), port);
    return 1;
  }

  world::World world(std::make_unique<world::TerrainGenerator>(cfg.terrain_seed));
  bots::BotConfig bc = scripted_bot_config(cfg, index);
  // Free-run recovery knobs: detect a gone-silent server fast, retry joins
  // with jittered exponential backoff so a reconnecting fleet spreads out.
  bc.join_retry = SimDuration::millis(500);
  bc.join_retry_backoff = 2.0;
  bc.join_retry_max = SimDuration::seconds(3);
  bc.liveness_timeout = SimDuration::seconds(2);
  bots::BotClient bot(clock, faultnet, world, server_ep, scripted_bot_name(index),
                      scripted_bot_seed(cfg.seed, index), bc);

  const std::int64_t tick_us = SimDuration::millis(50).count_micros();
  const std::int64_t t0 = wall_micros();
  // Outage evidence: the longest wall-clock stretch without a single frame
  // from the server. In a healthy run frames arrive every tick; across a
  // crash this is (restart delay + detection + rejoin) — the blackout the
  // acceptance bound is about.
  std::int64_t last_rx_wall = t0;
  std::int64_t max_rx_gap_us = 0;
  std::uint64_t frames_seen = 0;

  for (std::uint64_t k = 0; k < cfg.ticks; ++k) {
    const std::int64_t deadline = t0 + static_cast<std::int64_t>(k + 1) * tick_us;
    for (;;) {
      const std::int64_t now = wall_micros();
      if (now >= deadline) break;
      udp.pump(/*timeout_ms=*/1);
      bot.poll_inbound();
      const std::uint64_t frames = bot.ingress_hash().frames();
      if (frames != frames_seen) {
        frames_seen = frames;
        last_rx_wall = now;
      } else {
        max_rx_gap_us = std::max(max_rx_gap_us, now - last_rx_wall);
      }
    }
    if (k == 0) bot.connect();
    bot.tick();
    faultnet.flush_egress();
    clock.advance(SimDuration::millis(50));
  }

  std::printf(
      "chaos_summary role=client name=%s joined=%d liveness_resets=%llu "
      "gaps=%llu resyncs=%llu dup_or_old=%llu max_rx_gap_ms=%lld "
      "decisions=%llu decision_hash=%016llx\n",
      bot.name().c_str(), bot.joined() ? 1 : 0,
      static_cast<unsigned long long>(bot.liveness_resets()),
      static_cast<unsigned long long>(bot.gaps_detected()),
      static_cast<unsigned long long>(bot.resyncs_requested()),
      static_cast<unsigned long long>(bot.dup_or_old_frames()),
      static_cast<long long>(max_rx_gap_us / 1000),
      static_cast<unsigned long long>(faultnet.frames_offered()),
      static_cast<unsigned long long>(faultnet.decision_hash()));
  std::fflush(stdout);
  return bot.joined() ? 0 : 1;
}

}  // namespace dyconits::apps
