// The scripted lockstep run behind the UDP/sim wire-equivalence check
// (DESIGN.md §12, scripts/verify.sh e2e-udp).
//
// One schedule, three executions:
//   - sim oracle: server and N bots in one process on SimNetwork
//     (latency-0 FIFO links), bots ticked in name order before the server.
//   - udp server: GameServer alone, on UdpTransport behind a LockstepGate
//     that holds inbound frames until every client's TickBarrier for the
//     round has arrived, then releases them in bot-name order — exactly the
//     arrival order the sim produces.
//   - udp client: one bot per process; each tick it drains the server's
//     previous tick (complete once TickBarrierAck(k-1) arrives, since the
//     ack is the last frame of a tick), runs its behavior, sends
//     TickBarrier(k), and flushes.
//
// Everything the schedule derives from — bot names, homes, seeds, server
// config — is a pure function of (ScriptedConfig, index), computed
// identically in every process. The runs then print per-session
// application-stream digests as `wire_hash ...` lines; equal schedules must
// produce byte-identical application streams, so the sorted line sets must
// match exactly across backends.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bots/bot.h"
#include "bots/faults.h"
#include "server/config.h"
#include "util/flags.h"
#include "util/sim_time.h"
#include "world/geometry.h"

namespace dyconits::apps {

struct ScriptedConfig {
  std::uint64_t ticks = 120;
  std::uint32_t clients = 3;
  std::uint64_t seed = 1;
  std::uint64_t terrain_seed = 42;
  std::uint32_t mobs = 4;
  /// Wall-clock limit on any single lockstep wait (a peer's barrier or
  /// ack). Expired waits abort the run with a nonzero exit: a lost process
  /// must fail the check, not hang it.
  SimDuration net_timeout = SimDuration::seconds(10);
};

/// One per-session digest line. role is "server" (the server's view of that
/// session) or "client" (the bot's own view); egress/ingress are FNV-1a
/// over the application-level frame stream (net::WireHasher).
struct HashLine {
  std::string role;
  std::string name;
  std::uint64_t egress = 0;
  std::uint64_t egress_frames = 0;
  std::uint64_t ingress = 0;
  std::uint64_t ingress_frames = 0;
};

/// "wire_hash role=<r> name=<n> egress=<hex> egress_frames=<n> ..."
std::string format_hash_line(const HashLine& line);

// -- the shared schedule, pure functions of (config, index) --
std::string scripted_bot_name(std::uint32_t index);
world::Vec3 scripted_home(std::uint32_t index);
std::uint64_t scripted_bot_seed(std::uint64_t master_seed, std::uint32_t index);
server::ServerConfig scripted_server_config(const ScriptedConfig& cfg);
bots::BotConfig scripted_bot_config(const ScriptedConfig& cfg, std::uint32_t index);

/// Runs the whole schedule in-process on SimNetwork and returns both the
/// server-role and client-role hash lines — the oracle prediction.
std::vector<HashLine> run_sim_oracle(const ScriptedConfig& cfg);

/// Server process: binds UDP on host:port (0 = ephemeral; the bound port is
/// written to `port_file` if non-empty), runs the schedule against
/// cfg.clients remote bots, prints server-role hash lines to stdout.
/// Returns a process exit code (0 = completed, 1 = timeout/socket error).
int run_udp_server(const ScriptedConfig& cfg, const std::string& host, std::uint16_t port,
                   const std::string& port_file);

/// Client process: runs bot `index` against a server at host:port and
/// prints its client-role hash line to stdout. Exit code as above.
int run_udp_client(const ScriptedConfig& cfg, const std::string& host, std::uint16_t port,
                   std::uint32_t index);

// -- free-running chaos mode (DESIGN.md §13, scripts/verify.sh e2e-chaos-udp) --

/// Free-run configuration: drops the lockstep gate, paces ticks on the wall
/// clock, wraps the socket in a FaultInjectingTransport, and optionally
/// kills the server mid-run. Under faults the streams legitimately diverge,
/// so free runs print `chaos_summary` lines (recovery evidence) instead of
/// comparable wire hashes.
struct ChaosConfig {
  bool free_run = false;
  /// Probabilistic link faults (loss/duplicate/corrupt/reorder/sendfail)
  /// injected on this process's own sends. Scheduled flap/partition/crash
  /// directives are ignored in free-run — endpoint ids aren't knowable
  /// across processes; a real crash is process-level via crash_at_tick.
  bots::FaultScheduleConfig faults;
  /// Seed for the fault-decision RNG; 0 derives one from ScriptedConfig::seed.
  std::uint64_t fault_seed = 0;
  /// Server only: die abruptly (no Byes, no flush) after this many ticks.
  /// 0 = never.
  std::uint64_t crash_at_tick = 0;
  /// Server only: come back restart_delay after the crash, rebind the same
  /// port, reload session state from state_file, and finish the run.
  bool restart = false;
  SimDuration restart_delay = SimDuration::millis(1000);
  /// Minimal session state persisted across the crash (tick number +
  /// joined player names); the restarted incarnation reports how many of
  /// those players resumed.
  std::string state_file;
};

/// Free-running server: no barriers, wall-paced ticks, faults injected on
/// its sends, optional mid-run crash-restart. Prints a `chaos_summary`
/// line; exit 0 iff the run completed (post-recovery bound violations are
/// reported in the summary, judged by the caller).
int run_udp_server_free(const ScriptedConfig& cfg, const ChaosConfig& chaos,
                        const std::string& host, std::uint16_t port,
                        const std::string& port_file);

/// Free-running client: walks its schedule against the wall clock, detects
/// a server outage via gone-silent liveness and rejoins with jittered
/// exponential backoff. Prints a `chaos_summary` line; exit 0 iff joined at
/// the end of the run.
int run_udp_client_free(const ScriptedConfig& cfg, const ChaosConfig& chaos,
                        const std::string& host, std::uint16_t port, std::uint32_t index);

}  // namespace dyconits::apps
