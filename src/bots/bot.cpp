#include "bots/bot.h"

#include <algorithm>
#include <cmath>

#include "entity/movement.h"
#include "net/buffer_pool.h"
#include "util/log.h"

namespace dyconits::bots {

using protocol::AnyMessage;
using world::BlockPos;
using world::ChunkPos;
using world::Vec3;

const char* behavior_name(BehaviorKind k) {
  switch (k) {
    case BehaviorKind::Idle: return "idle";
    case BehaviorKind::Walk: return "walk";
    case BehaviorKind::Build: return "build";
    case BehaviorKind::Mine: return "mine";
  }
  return "unknown";
}

BotClient::BotClient(SimClock& clock, net::Transport& net, world::World& truth,
                     net::EndpointId server, std::string name, std::uint64_t seed,
                     BotConfig cfg)
    : clock_(clock),
      net_(net),
      truth_(truth),
      server_(server),
      endpoint_(net.create_endpoint(name)),
      name_(std::move(name)),
      rng_(seed),
      cfg_(cfg) {
  current_join_retry_ = cfg_.join_retry;
  if (cfg_.keep_chunk_replica) replica_world_ = std::make_unique<world::World>();
}

void BotClient::connect() {
  join_sent_at_ = clock_.now();
  send(protocol::JoinRequest{name_});
}

void BotClient::reset_session() {
  // Drain anything still in flight for the old session.
  for (net::Delivery& d : net_.poll(endpoint_)) {
    net::BufferPool::instance().release(std::move(d.frame.payload));
  }
  joined_ = false;
  self_ = entity::kInvalidEntity;
  newest_frame_sent_ = SimTime::zero();
  rx_seq_ = 0;
  missing_.clear();
  pending_resync_ = false;
  next_resync_ok_ = SimTime::zero();
  join_sent_at_ = SimTime::zero();
  current_join_retry_ = cfg_.join_retry;
  last_rx_ = SimTime::zero();
  replica_entities_.clear();
  inventory_.clear();
  block_deltas_.clear();
  loaded_chunks_.clear();
  if (replica_world_ != nullptr) replica_world_ = std::make_unique<world::World>();
}

void BotClient::send(const AnyMessage& msg) {
  net::Frame frame = protocol::encode(msg);
  if (cfg_.hash_streams) egress_hash_.mix(frame);  // pre-seq: backend-neutral
  frame.seq = ++tx_seq_;  // transport sequence; the server counts gaps
  frame.trace_origin = clock_.now();
  net_.send(endpoint_, server_, std::move(frame));
}

void BotClient::send_barrier(std::uint32_t tick) {
  if (stalled_) return;
  send(protocol::TickBarrier{tick});
}

void BotClient::track_seq(std::uint32_t seq, SimTime now) {
  if (seq == 0) return;  // unsequenced frame
  if (rx_seq_ == 0) {
    rx_seq_ = seq;  // first contact; nothing to compare against
  } else if (seq > rx_seq_) {
    const std::uint32_t gap = seq - rx_seq_ - 1;
    if (gap > 0) {
      gaps_detected_ += gap;
      if (gap > kMaxTrackedGap || missing_.size() + gap > kMaxTrackedGap) {
        // Bulk loss (partition heal, crash recovery): no point waiting for
        // holes to fill — ask for a resync outright.
        missing_.clear();
        pending_resync_ = true;
      } else {
        for (std::uint32_t q = rx_seq_ + 1; q < seq; ++q) missing_.emplace(q, now);
      }
    }
    rx_seq_ = seq;
  } else if (missing_.erase(seq) > 0) {
    // A late arrival filled a hole: that was reorder, not loss.
  } else {
    ++dup_or_old_frames_;
  }
}

void BotClient::tick() {
  if (stalled_) return;  // frozen client: nothing polled, nothing sent
  poll_inbound();

  if (!joined_ || paused_) return;
  walk();
  if (clock_.now() >= next_action_) {
    act();
    next_action_ = clock_.now() +
                   SimDuration::micros(static_cast<std::int64_t>(
                       static_cast<double>(cfg_.action_interval.count_micros()) /
                       action_scale_));
  }
}

void BotClient::poll_inbound() {
  if (stalled_) return;
  const SimTime now = clock_.now();
  for (net::Delivery& d : net_.poll(endpoint_)) {
    ++frames_received_;
    if (cfg_.hash_streams) ingress_hash_.mix(d.frame);
    last_rx_ = now;
    track_seq(d.frame.seq, now);
    const auto msg = protocol::decode(d.frame);
    if (msg.has_value()) apply(*msg, d);
    // Consumed either way: recycle the payload buffer for the next encode.
    net::BufferPool::instance().release(std::move(d.frame.payload));
    if (!msg.has_value()) {
      ++decode_failures_;
      // A sequenced frame whose content is gone is a loss even though the
      // sequence advanced: recover its state via resync.
      if (d.frame.seq != 0) pending_resync_ = true;
    }
  }

  // Holes that outlived the grace window are real loss, not reorder.
  for (auto it = missing_.begin(); it != missing_.end();) {
    if (now - it->second > kGapGrace) {
      pending_resync_ = true;
      it = missing_.erase(it);
    } else {
      ++it;
    }
  }
  if (joined_ && pending_resync_ && now >= next_resync_ok_) {
    send(protocol::ResyncRequest{rx_seq_});
    ++resyncs_requested_;
    pending_resync_ = false;
    missing_.clear();  // the resync replaces whatever the holes carried
    next_resync_ok_ = now + kResyncInterval;
  }
  if (!joined_ && join_sent_at_ != SimTime::zero() &&
      cfg_.join_retry.count_micros() > 0 && now - join_sent_at_ >= current_join_retry_ &&
      now >= join_backoff_until_) {
    if (cfg_.join_retry_backoff > 1.0) {
      // Jittered exponential backoff for the NEXT retry: grow by the
      // factor, cap, then spread ±10% from the bot's own seeded stream so
      // a fleet reconnecting to a restarted server doesn't self-synchronize.
      double next = static_cast<double>(current_join_retry_.count_micros()) *
                    cfg_.join_retry_backoff;
      next = std::min(next, static_cast<double>(cfg_.join_retry_max.count_micros()));
      next *= 0.9 + 0.2 * rng_.next_double();
      current_join_retry_ = SimDuration::micros(static_cast<std::int64_t>(next));
    }
    connect();  // the JoinRequest or its ack was lost (or refused; backoff over)
  }
  if (joined_ && cfg_.liveness_timeout.count_micros() > 0 &&
      last_rx_ != SimTime::zero() && now - last_rx_ > cfg_.liveness_timeout) {
    // Dead silence long past the keep-alive cadence: the session is gone
    // (server timed us out, or we crashed past recovery). Rejoin fresh.
    ++liveness_resets_;
    reset_session();
    connect();
  }
}

// ------------------------------------------------------------------ replica

void BotClient::apply(const AnyMessage& msg, const net::Delivery& d) {
  if (d.sent < newest_frame_sent_) ++out_of_order_frames_;
  if (d.sent > newest_frame_sent_) newest_frame_sent_ = d.sent;
  // Closest distance from this bot to anything the frame updates; used to
  // classify the frame as "nearby" (perceptually relevant) or peripheral.
  double update_dist = -1.0;
  const auto consider = [&](const world::Vec3& p) {
    const double dd = world::distance(p, pos_);
    if (update_dist < 0.0 || dd < update_dist) update_dist = dd;
  };
  if (const auto* mv = std::get_if<protocol::EntityMove>(&msg)) {
    consider(mv->pos);
  } else if (const auto* batch = std::get_if<protocol::EntityMoveBatch>(&msg)) {
    for (const auto& m : batch->moves) consider(m.pos);
  } else if (const auto* bc = std::get_if<protocol::BlockChange>(&msg)) {
    consider(bc->pos.center());
  } else if (const auto* mbc = std::get_if<protocol::MultiBlockChange>(&msg)) {
    for (const auto& e : mbc->entries) {
      consider(world::BlockPos{mbc->chunk.x * world::kChunkSize + e.x, e.y,
                               mbc->chunk.z * world::kChunkSize + e.z}
                   .center());
    }
  }
  if (update_dist >= 0.0 && d.frame.trace_origin != SimTime::zero()) {
    const double ms =
        static_cast<double>((d.arrival - d.frame.trace_origin).count_micros()) / 1000.0;
    update_latency_ms_.add(ms);
    if (update_dist <= kNearDistance) near_update_latency_ms_.add(ms);
  }

  if (const auto* ack = std::get_if<protocol::JoinAck>(&msg)) {
    joined_ = true;
    self_ = ack->self_id;
    pos_ = ack->spawn;
    current_join_retry_ = cfg_.join_retry;  // backoff ends with the outage
    // A (re)join starts a fresh server-side sequence: rebase the gap
    // detector so old-session numbering doesn't read as loss.
    rx_seq_ = d.frame.seq;
    missing_.clear();
    pending_resync_ = false;
    if (cfg_.home == Vec3{}) cfg_.home = pos_;
    pick_waypoint();
    next_action_ = clock_.now() + SimDuration::micros(static_cast<std::int64_t>(
                                      rng_.next_double() *
                                      static_cast<double>(cfg_.action_interval.count_micros())));
  } else if (const auto* ref = std::get_if<protocol::JoinRefused>(&msg)) {
    // Admission control turned us away (DESIGN.md §10): honor the server's
    // suggested backoff before the join-retry loop tries again.
    ++join_refusals_;
    const SimDuration wait = SimDuration::millis(
        ref->retry_after_ms > 0 ? static_cast<std::int64_t>(ref->retry_after_ms) : 1000);
    join_backoff_until_ = d.arrival + wait;
  } else if (const auto* cd = std::get_if<protocol::ChunkData>(&msg)) {
    loaded_chunks_.insert(cd->pos);
    // Always exercise the decode path; keep the result only when replicating.
    if (replica_world_ != nullptr) {
      if (!replica_world_->chunk_at(cd->pos).decode_rle(cd->rle.data(), cd->rle.size())) {
        ++decode_failures_;
      }
    } else {
      world::Chunk scratch(cd->pos);
      if (!scratch.decode_rle(cd->rle.data(), cd->rle.size())) ++decode_failures_;
    }
    // A fresh snapshot obsoletes any deltas we were tracking in the chunk.
    for (auto it = block_deltas_.begin(); it != block_deltas_.end();) {
      it = ChunkPos::of_block(it->first) == cd->pos ? block_deltas_.erase(it) : ++it;
    }
  } else if (const auto* uc = std::get_if<protocol::UnloadChunk>(&msg)) {
    loaded_chunks_.erase(uc->pos);
    if (replica_world_ != nullptr) replica_world_->unload_chunk(uc->pos);
    for (auto it = block_deltas_.begin(); it != block_deltas_.end();) {
      it = ChunkPos::of_block(it->first) == uc->pos ? block_deltas_.erase(it) : ++it;
    }
  } else if (const auto* bc = std::get_if<protocol::BlockChange>(&msg)) {
    apply_block(bc->pos, bc->block);
  } else if (const auto* mbc = std::get_if<protocol::MultiBlockChange>(&msg)) {
    for (const auto& e : mbc->entries) {
      apply_block({mbc->chunk.x * world::kChunkSize + e.x, e.y,
                   mbc->chunk.z * world::kChunkSize + e.z},
                  e.block);
    }
  } else if (const auto* sp = std::get_if<protocol::EntitySpawn>(&msg)) {
    if (sp->id != self_) {
      const auto it = replica_entities_.find(sp->id);
      if (it != replica_entities_.end() && d.sent < it->second.last_update_sent) {
        // A reordered transport delivered an old spawn after a newer move.
        ++stale_moves_rejected_;
      } else {
        replica_entities_[sp->id] = {sp->kind,  sp->pos,  sp->yaw, sp->pitch,
                                     sp->name,  sp->data, d.sent};
      }
    }
  } else if (const auto* inv = std::get_if<protocol::InventoryUpdate>(&msg)) {
    inventory_[inv->item] = inv->count;
  } else if (const auto* dsp = std::get_if<protocol::EntityDespawn>(&msg)) {
    replica_entities_.erase(dsp->id);
  } else if (const auto* mv = std::get_if<protocol::EntityMove>(&msg)) {
    apply_entity_move(*mv, d.sent);
  } else if (const auto* batch = std::get_if<protocol::EntityMoveBatch>(&msg)) {
    for (const auto& m : batch->moves) apply_entity_move(m, d.sent);
  } else if (const auto* ka = std::get_if<protocol::KeepAlive>(&msg)) {
    send(protocol::KeepAliveReply{ka->nonce});
  } else if (std::get_if<protocol::ChatBroadcast>(&msg) != nullptr) {
    ++chats_seen_;
  } else if (const auto* back = std::get_if<protocol::TickBarrierAck>(&msg)) {
    ++barrier_acks_;
    last_barrier_ack_ = back->tick;
  } else if (std::get_if<protocol::ResyncAck>(&msg) != nullptr) {
    ++resync_acks_;
    // The ack closes the server's refresh: everything it still counts as
    // known was just re-sent with this frame's send time. Replica entities
    // strictly older were never confirmed — despawns lost on the wire;
    // drop the ghosts.
    for (auto it = replica_entities_.begin(); it != replica_entities_.end();) {
      if (it->second.last_update_sent < d.sent) {
        ++replica_pruned_;
        it = replica_entities_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void BotClient::apply_entity_move(const protocol::EntityMove& m, SimTime sent) {
  if (m.id == self_) return;  // server echo of ourselves (shouldn't happen)
  const auto it = replica_entities_.find(m.id);
  if (it == replica_entities_.end()) {
    // A queued move can legitimately arrive after the despawn that removed
    // the entity from our replica; ignore it.
    ++unknown_entity_updates_;
    return;
  }
  if (sent < it->second.last_update_sent) {
    // Reordered transport delivered an older position after a newer one;
    // applying it would rubber-band the entity backwards.
    ++stale_moves_rejected_;
    return;
  }
  it->second.last_update_sent = sent;
  it->second.pos = m.pos;
  it->second.yaw = m.yaw;
  it->second.pitch = m.pitch;
  ++updates_applied_;
}

void BotClient::apply_block(const BlockPos& pos, world::Block b) {
  block_deltas_[pos] = b;
  if (replica_world_ != nullptr && loaded_chunks_.count(ChunkPos::of_block(pos)) > 0) {
    replica_world_->set_block(pos, b);
  }
  ++updates_applied_;
}

std::optional<world::Block> BotClient::replica_block(const BlockPos& pos) const {
  if (replica_world_ != nullptr && loaded_chunks_.count(ChunkPos::of_block(pos)) > 0) {
    return replica_world_->block_if_loaded(pos);
  }
  const auto it = block_deltas_.find(pos);
  if (it != block_deltas_.end()) return it->second;
  return std::nullopt;
}

// ----------------------------------------------------------------- behavior

std::uint32_t BotClient::inventory_total() const {
  std::uint32_t n = 0;
  for (const auto& [item, count] : inventory_) n += count;
  return n;
}

void BotClient::set_home(const Vec3& home, double radius) {
  cfg_.home = home;
  cfg_.wander_radius = radius;
  if (joined_) pick_waypoint();
}

void BotClient::pick_waypoint() {
  const double r = cfg_.wander_radius * std::sqrt(rng_.next_double());
  const double a = rng_.next_double() * 2.0 * 3.14159265358979323846;
  waypoint_ = {cfg_.home.x + r * std::cos(a), 0.0, cfg_.home.z + r * std::sin(a)};
  blocked_ticks_ = 0;
}

void BotClient::walk() {
  if (cfg_.kind == BehaviorKind::Idle) return;
  Vec3 next;
  const auto res = entity::step_toward(truth_, pos_, waypoint_, cfg_.speed, 0.05, next);
  if (res.blocked) {
    if (++blocked_ticks_ >= 8) pick_waypoint();
  }
  if (res.moved) {
    const Vec3 d = next - pos_;
    const float yaw =
        static_cast<float>(std::atan2(-d.x, d.z) * 180.0 / 3.14159265358979323846);
    pos_ = next;
    send(protocol::PlayerMove{pos_, yaw < 0 ? yaw + 360.0f : yaw, 0.0f});
  }
  if (world::horizontal_distance(pos_, waypoint_) < 1.5) pick_waypoint();
}

void BotClient::act() {
  if (rng_.chance(cfg_.chat_prob)) {
    send(protocol::ChatSend{"o/ from " + name_});
  }
  switch (cfg_.kind) {
    case BehaviorKind::Idle:
    case BehaviorKind::Walk:
      break;
    case BehaviorKind::Build: {
      // Modify the column a couple of blocks away in the walking direction.
      const std::int32_t dx = static_cast<std::int32_t>(rng_.next_in(-3, 3));
      const std::int32_t dz = static_cast<std::int32_t>(rng_.next_in(-3, 3));
      const std::int32_t x = static_cast<std::int32_t>(std::floor(pos_.x)) + dx;
      const std::int32_t z = static_cast<std::int32_t>(std::floor(pos_.z)) + dz;
      const int ground = truth_.surface_height(x, z);

      if (cfg_.survival) {
        // Survival loop: place what we hold, otherwise go get materials —
        // walk to a visible dropped item, or dig for more.
        world::Block held = world::Block::Air;
        for (const auto& [item, count] : inventory_) {
          if (count > 0) {
            held = item;
            break;
          }
        }
        if (held != world::Block::Air) {
          if (ground + 1 < world::kWorldHeight - 1) {
            send(protocol::PlayerPlace{{x, ground + 1, z}, held});
          }
        } else {
          for (const auto& [id, rep] : replica_entities_) {
            if (rep.kind == entity::EntityKind::Item &&
                world::distance(rep.pos, pos_) < 24.0) {
              waypoint_ = rep.pos;  // go collect it
              break;
            }
          }
          if (ground >= 1) send(protocol::PlayerDig{{x, ground, z}});
        }
        break;
      }

      if (rng_.chance(cfg_.place_prob)) {
        if (ground + 1 < world::kWorldHeight - 1) {
          send(protocol::PlayerPlace{{x, ground + 1, z},
                                     rng_.chance(0.5) ? world::Block::Planks
                                                      : world::Block::Cobblestone});
        }
      } else if (ground >= 1) {  // y=0 is bedrock: never diggable
        send(protocol::PlayerDig{{x, ground, z}});
      }
      break;
    }
    case BehaviorKind::Mine: {
      // Dig a staircase: the surface block one step ahead toward the waypoint.
      const Vec3 dir = (waypoint_ - pos_).normalized();
      const std::int32_t x = static_cast<std::int32_t>(std::floor(pos_.x + dir.x * 2.0));
      const std::int32_t z = static_cast<std::int32_t>(std::floor(pos_.z + dir.z * 2.0));
      const int ground = truth_.surface_height(x, z);
      if (ground >= 1) send(protocol::PlayerDig{{x, ground, z}});
      break;
    }
  }
}

}  // namespace dyconits::bots
