// A Yardstick-style bot client: speaks the full protocol, maintains a local
// replica of the world it has been sent (entities always; chunk blocks
// optionally), and drives a behavior (walking, building, mining) that
// generates the update workload. Bots run in-process but communicate with
// the server exclusively through the simulated network, so every byte they
// cause or consume is on the measured wire.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "entity/entity.h"
#include "net/transport.h"
#include "protocol/codec.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/stats.h"
#include "world/world.h"

namespace dyconits::bots {

enum class BehaviorKind : std::uint8_t { Idle = 0, Walk = 1, Build = 2, Mine = 3 };

const char* behavior_name(BehaviorKind k);

struct BotConfig {
  BehaviorKind kind = BehaviorKind::Walk;
  /// Walking speed in blocks/second (Minecraft sprint ~5.6, walk ~4.3).
  double speed = 4.3;
  /// Interval between behavior decisions (digs/places/chats).
  SimDuration action_interval = SimDuration::millis(400);
  /// Waypoints are drawn from a disc of this radius around `home`.
  double wander_radius = 80.0;
  world::Vec3 home{};
  /// Build behavior: probability a build action places (vs digs).
  double place_prob = 0.55;
  /// Probability of sending a chat line per action.
  double chat_prob = 0.005;
  /// Keep a full block replica (memory-heavy; tests and small runs only).
  bool keep_chunk_replica = false;
  /// Survival economy: builders place only what their inventory holds and
  /// dig otherwise; they also walk to visible dropped items to collect
  /// them. Set when the server runs survival_mode.
  bool survival = false;

  // -- fault recovery (DESIGN.md §18) --
  /// Re-send JoinRequest if no JoinAck arrived within this window (the
  /// request or its ack was lost). Zero disables retries.
  SimDuration join_retry = SimDuration::seconds(2);
  /// Reconnect backoff: every unanswered JoinRequest multiplies the retry
  /// interval by this factor with ±10% jitter from the bot's seeded RNG,
  /// capped at join_retry_max — a restarting server isn't met by N clients
  /// hammering in lockstep. Exactly 1.0 keeps the legacy fixed interval
  /// and draws NOTHING from the RNG, so deterministic suites replay
  /// unchanged. Reset on JoinAck and reset_session().
  double join_retry_backoff = 1.0;
  SimDuration join_retry_max = SimDuration::seconds(8);
  /// Dead-server detector: if a joined bot hears nothing at all for this
  /// long (keep-alives come every ~5 s), assume the session is gone and
  /// rejoin from scratch. Zero disables.
  SimDuration liveness_timeout = SimDuration::seconds(30);

  /// Digest the application-level byte stream this bot sends and receives
  /// (tag + payload, above the transport) — the client half of the UDP/sim
  /// wire-equivalence check (DESIGN.md §12).
  bool hash_streams = false;
};

struct ReplicaEntity {
  entity::EntityKind kind = entity::EntityKind::Player;
  world::Vec3 pos;
  float yaw = 0, pitch = 0;
  std::string name;
  std::uint16_t data = 0;  // item entities: dropped Block id
  /// Server send time of the newest applied move; guards against applying
  /// stale positions when the transport reorders (order-error protection).
  SimTime last_update_sent;
};

class BotClient {
 public:
  /// `truth` is the server world, used only for walking kinematics (ground
  /// height); all state the bot *reacts to* comes from its replica. `net`
  /// is any Transport backend (the sim in-process, UDP across processes).
  BotClient(SimClock& clock, net::Transport& net, world::World& truth,
            net::EndpointId server, std::string name, std::uint64_t seed, BotConfig cfg);

  /// Sends the JoinRequest. The network link must already exist.
  void connect();

  /// Forgets the session and replica (used after a server-side disconnect);
  /// call connect() again to rejoin as a fresh session.
  void reset_session();

  /// One client tick: drain inbound, update replica, walk, act.
  void tick();

  /// The inbound half of tick() alone: drain deliveries, update the
  /// replica, run gap/resync/liveness bookkeeping — no walking or actions.
  /// The lockstep scripted driver calls this while blocked waiting for a
  /// TickBarrierAck, where behavior must not run (DESIGN.md §12).
  void poll_inbound();

  // -- lockstep scripted runs (DESIGN.md §12) --
  /// Sends TickBarrier{tick}; the server replies TickBarrierAck as the last
  /// frame of the tick that consumed it.
  void send_barrier(std::uint32_t tick);
  std::uint64_t barrier_acks_seen() const { return barrier_acks_; }
  std::uint32_t last_barrier_ack() const { return last_barrier_ack_; }

  /// Application-stream digests (BotConfig::hash_streams): everything this
  /// bot sent / received, hashed above the transport.
  const net::WireHasher& egress_hash() const { return egress_hash_; }
  const net::WireHasher& ingress_hash() const { return ingress_hash_; }

  bool joined() const { return joined_; }
  const std::string& name() const { return name_; }
  net::EndpointId endpoint() const { return endpoint_; }
  entity::EntityId self() const { return self_; }
  world::Vec3 pos() const { return pos_; }

  /// Redirects the bot mid-run (the E7 load-spike scenario: everyone
  /// converges on the village).
  void set_home(const world::Vec3& home, double radius);

  /// Paused bots stop walking/acting but keep polling and replying to
  /// keep-alives — used to quiesce a simulation before convergence checks.
  void set_paused(bool paused) { paused_ = paused; }
  bool paused() const { return paused_; }
  /// Stalled bots stop entirely — no polling, no sends — modeling a frozen
  /// client or saturated last-mile link. The server-side inbox grows until
  /// overload control isolates the subscriber (DESIGN.md §10).
  void set_stalled(bool stalled) { stalled_ = stalled; }
  bool stalled() const { return stalled_; }
  /// Behavior-rate multiplier: actions fire every action_interval / scale.
  /// The overload schedule's `spam` directive multiplies offered load with
  /// this mid-run; 1.0 restores the configured cadence.
  void set_action_scale(double scale) { action_scale_ = scale > 0.0 ? scale : 1.0; }
  double action_scale() const { return action_scale_; }
  const BotConfig& config() const { return cfg_; }

  /// Asks for a server resync on the next tick (tests force a final
  /// catch-up this way; gap detection sets the same flag internally).
  void request_resync() { pending_resync_ = true; }

  // -- replica --
  const std::unordered_map<entity::EntityId, ReplicaEntity>& replica_entities() const {
    return replica_entities_;
  }
  /// Block as this client believes it to be: from the full chunk replica if
  /// kept, else from the delta map; nullopt if never told.
  std::optional<world::Block> replica_block(const world::BlockPos& pos) const;
  const world::World* replica_world() const { return replica_world_.get(); }
  std::size_t loaded_chunk_count() const { return loaded_chunks_.size(); }

  /// Inventory as last told by the server (survival mode).
  const std::unordered_map<world::Block, std::uint32_t>& inventory() const {
    return inventory_;
  }
  std::uint32_t inventory_total() const;

  // -- measurements --
  /// End-to-end latency (ms) of entity-move and block-change updates, from
  /// server-side event creation to client arrival (via frame trace origin).
  Samples& update_latency_ms() { return update_latency_ms_; }
  const Samples& update_latency_ms() const { return update_latency_ms_; }

  /// Same, restricted to *nearby* updates (within kNearDistance blocks of
  /// this bot) — the updates a player actually perceives, and the paper's
  /// "without increasing game latency" claim.
  Samples& near_update_latency_ms() { return near_update_latency_ms_; }
  const Samples& near_update_latency_ms() const { return near_update_latency_ms_; }
  static constexpr double kNearDistance = 32.0;  // 2 chunks

  std::uint64_t frames_received() const { return frames_received_; }
  std::uint64_t updates_applied() const { return updates_applied_; }
  std::uint64_t unknown_entity_updates() const { return unknown_entity_updates_; }
  std::uint64_t decode_failures() const { return decode_failures_; }
  std::uint64_t chats_seen() const { return chats_seen_; }
  /// Order error observed on the wire (frames arriving behind a newer one)
  /// and the stale entity moves the replica refused to apply because of it.
  /// Both are zero on FIFO (TCP-like) links.
  std::uint64_t out_of_order_frames() const { return out_of_order_frames_; }
  std::uint64_t stale_moves_rejected() const { return stale_moves_rejected_; }

  // -- fault recovery counters (DESIGN.md §18) --
  /// Transport sequence gaps observed (missing server frames, including
  /// transient reorder holes that later filled).
  std::uint64_t gaps_detected() const { return gaps_detected_; }
  std::uint64_t resyncs_requested() const { return resyncs_requested_; }
  std::uint64_t resync_acks_seen() const { return resync_acks_; }
  /// Duplicate or already-superseded frames (loss-free runs: zero on FIFO).
  std::uint64_t dup_or_old_frames() const { return dup_or_old_frames_; }
  /// Ghost replica entities removed at resync (despawns lost on the wire).
  std::uint64_t replica_pruned() const { return replica_pruned_; }
  std::uint64_t liveness_resets() const { return liveness_resets_; }
  /// JoinRequests the server refused under overload (DESIGN.md §10). The
  /// bot backs off for the server-suggested interval before retrying.
  std::uint64_t join_refusals() const { return join_refusals_; }
  /// The retry interval the next unanswered JoinRequest waits for (grows
  /// under join_retry_backoff; tests watch it escalate and reset).
  SimDuration current_join_retry() const { return current_join_retry_; }

 private:
  void apply(const protocol::AnyMessage& msg, const net::Delivery& d);
  void apply_entity_move(const protocol::EntityMove& m, SimTime sent);
  /// Gap detection on inbound server frames (see bot.cpp for the scheme).
  void track_seq(std::uint32_t seq, SimTime now);
  void apply_block(const world::BlockPos& pos, world::Block b);
  void walk();
  void act();
  void pick_waypoint();
  void send(const protocol::AnyMessage& msg);

  SimClock& clock_;
  net::Transport& net_;
  world::World& truth_;
  net::EndpointId server_;
  net::EndpointId endpoint_;
  std::string name_;
  Rng rng_;
  BotConfig cfg_;

  bool joined_ = false;
  bool paused_ = false;
  bool stalled_ = false;
  double action_scale_ = 1.0;
  entity::EntityId self_ = entity::kInvalidEntity;
  world::Vec3 pos_;
  world::Vec3 waypoint_;
  int blocked_ticks_ = 0;
  SimTime next_action_;

  std::unordered_map<entity::EntityId, ReplicaEntity> replica_entities_;
  std::unordered_map<world::Block, std::uint32_t> inventory_;
  std::unordered_map<world::BlockPos, world::Block> block_deltas_;
  std::unordered_set<world::ChunkPos> loaded_chunks_;
  std::unique_ptr<world::World> replica_world_;  // only if keep_chunk_replica

  Samples update_latency_ms_;
  Samples near_update_latency_ms_;
  std::uint64_t frames_received_ = 0;
  std::uint64_t updates_applied_ = 0;
  std::uint64_t unknown_entity_updates_ = 0;
  std::uint64_t decode_failures_ = 0;
  std::uint64_t chats_seen_ = 0;
  std::uint64_t out_of_order_frames_ = 0;
  std::uint64_t stale_moves_rejected_ = 0;
  SimTime newest_frame_sent_;

  // -- transport sequencing / recovery state (DESIGN.md §18) --
  /// A seq hole is only loss once it stayed unfilled this long (a non-FIFO
  /// link reorders frames; transient holes fill themselves).
  static constexpr SimDuration kGapGrace = SimDuration::millis(500);
  /// At most one ResyncRequest per interval, however many gaps appear.
  static constexpr SimDuration kResyncInterval = SimDuration::millis(500);
  /// Holes wider than this skip tracking and resync outright.
  static constexpr std::size_t kMaxTrackedGap = 64;

  std::uint32_t tx_seq_ = 0;  ///< stamped on every frame we send
  std::uint32_t rx_seq_ = 0;  ///< highest server seq seen (0 = none yet)
  std::unordered_map<std::uint32_t, SimTime> missing_;  ///< open holes -> first seen
  bool pending_resync_ = false;
  SimTime next_resync_ok_;
  SimTime join_sent_at_;
  SimTime join_backoff_until_;  ///< no JoinRequest before this (JoinRefused)
  /// Current retry interval under join_retry_backoff (== cfg_.join_retry
  /// while backoff is 1.0 or after a successful join).
  SimDuration current_join_retry_;
  SimTime last_rx_;
  std::uint64_t gaps_detected_ = 0;
  std::uint64_t resyncs_requested_ = 0;
  std::uint64_t resync_acks_ = 0;
  std::uint64_t dup_or_old_frames_ = 0;
  std::uint64_t replica_pruned_ = 0;
  std::uint64_t liveness_resets_ = 0;
  std::uint64_t join_refusals_ = 0;

  // -- lockstep / wire-equivalence instrumentation (DESIGN.md §12) --
  std::uint64_t barrier_acks_ = 0;
  std::uint32_t last_barrier_ack_ = 0;
  net::WireHasher egress_hash_;
  net::WireHasher ingress_hash_;
};

}  // namespace dyconits::bots
