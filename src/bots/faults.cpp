#include "bots/faults.h"

#include <fstream>
#include <sstream>

namespace dyconits::bots {
namespace {

bool fail(std::string* error, int line, const std::string& what) {
  if (error != nullptr) {
    *error = "fault schedule line " + std::to_string(line) + ": " + what;
  }
  return false;
}

bool parse_prob(const std::string& tok, double* out) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size() || v < 0.0 || v > 1.0) return false;
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_nonneg(const std::string& tok, double* out) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size() || v < 0.0) return false;
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_index(const std::string& tok, std::size_t* out) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(tok, &used);
    if (used != tok.size()) return false;
    *out = static_cast<std::size_t>(v);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

bool parse_fault_schedule(const std::string& text, FaultScheduleConfig* out,
                          std::string* error) {
  FaultScheduleConfig cfg;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string cmd;
    if (!(tokens >> cmd)) continue;  // blank / comment-only line

    std::vector<std::string> args;
    for (std::string tok; tokens >> tok;) args.push_back(tok);

    if (cmd == "loss" || cmd == "duplicate" || cmd == "corrupt" || cmd == "sendfail") {
      double p = 0.0;
      if (args.size() != 1 || !parse_prob(args[0], &p)) {
        return fail(error, line_no, cmd + " expects one probability in [0,1]");
      }
      if (cmd == "loss") cfg.link.loss = p;
      else if (cmd == "duplicate") cfg.link.duplicate = p;
      else if (cmd == "sendfail") cfg.link.send_fail = p;
      else cfg.link.corrupt = p;
    } else if (cmd == "reorder") {
      double p = 0.0, extra_ms = 0.0;
      if (args.empty() || args.size() > 2 || !parse_prob(args[0], &p) ||
          (args.size() == 2 && !parse_nonneg(args[1], &extra_ms))) {
        return fail(error, line_no, "reorder expects: P [extra-ms]");
      }
      cfg.link.reorder = p;
      if (args.size() == 2) {
        cfg.link.reorder_extra =
            SimDuration::micros(static_cast<std::int64_t>(extra_ms * 1000.0));
      }
    } else if (cmd == "flap" || cmd == "crash") {
      ScheduledFault ev;
      ev.kind = cmd == "flap" ? ScheduledFault::Kind::Flap : ScheduledFault::Kind::Crash;
      if (args.size() != 3 || !parse_nonneg(args[0], &ev.start_s) ||
          !parse_nonneg(args[1], &ev.end_s) || !parse_index(args[2], &ev.bot) ||
          ev.end_s <= ev.start_s) {
        return fail(error, line_no, cmd + " expects: T0 T1 BOT (with T1 > T0)");
      }
      cfg.events.push_back(ev);
    } else if (cmd == "partition") {
      ScheduledFault ev;
      ev.kind = ScheduledFault::Kind::Partition;
      if (args.size() != 3 || !parse_nonneg(args[0], &ev.start_s) ||
          !parse_nonneg(args[1], &ev.end_s) || !parse_prob(args[2], &ev.fraction) ||
          ev.end_s <= ev.start_s || ev.fraction <= 0.0) {
        return fail(error, line_no, "partition expects: T0 T1 FRACTION (0 < F <= 1)");
      }
      cfg.events.push_back(ev);
    } else {
      return fail(error, line_no, "unknown directive '" + cmd + "'");
    }
  }
  *out = std::move(cfg);
  return true;
}

bool load_fault_schedule(const std::string& path, FaultScheduleConfig* out,
                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open fault schedule file: " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_fault_schedule(text.str(), out, error);
}

}  // namespace dyconits::bots
