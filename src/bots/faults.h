// Bot-level fault schedules: what an experiment means by "10% loss plus a
// partition at t=20s and a crash at t=30s", expressed against bot indices
// and seconds instead of endpoint ids and SimTimes. The Simulation
// translates this into a net::FaultPlan (and drives the client-side half of
// crash/restart: reset_session + reconnect). Loadable from a text file so
// bench binaries take --faults=FILE.
//
// File format — one directive per line, '#' starts a comment:
//
//   loss P            # per-frame loss probability, all links
//   duplicate P       # per-frame duplication probability
//   corrupt P         # per-frame payload-corruption probability
//   reorder P [MS]    # reorder probability [+ extra delay ceiling, ms]
//   sendfail P        # sender-edge send-failure probability (a modeled
//                     # EAGAIN; only FaultInjectingTransport draws it)
//   flap T0 T1 BOT    # link of bot BOT down from T0 to T1 (seconds)
//   partition T0 T1 F # leading fraction F of bots cut off from T0 to T1
//   crash T0 T1 BOT   # bot BOT crashes at T0, restarts+rejoins at T1
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/faults.h"

namespace dyconits::bots {

struct ScheduledFault {
  enum class Kind : std::uint8_t { Flap, Partition, Crash };

  Kind kind = Kind::Flap;
  double start_s = 0.0;
  double end_s = 0.0;
  /// Flap/Crash: which bot (index into the simulation's bot list).
  std::size_t bot = 0;
  /// Partition: the leading fraction of bots cut off, in (0, 1].
  double fraction = 0.0;
};

struct FaultScheduleConfig {
  /// Probabilistic per-frame faults applied to every bot<->server link.
  net::LinkFaults link;
  std::vector<ScheduledFault> events;

  bool any() const { return link.any() || link.send_fail > 0.0 || !events.empty(); }
};

/// Parses the directive text format above. Returns false and sets *error
/// (with a line number) on malformed input; *out is untouched on failure.
bool parse_fault_schedule(const std::string& text, FaultScheduleConfig* out,
                          std::string* error);

/// Reads and parses a fault schedule file (the --faults=FILE flag).
bool load_fault_schedule(const std::string& path, FaultScheduleConfig* out,
                         std::string* error);

}  // namespace dyconits::bots
