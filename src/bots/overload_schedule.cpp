#include "bots/overload_schedule.h"

#include <fstream>
#include <sstream>

namespace dyconits::bots {
namespace {

bool fail(std::string* error, int line, const std::string& what) {
  if (error != nullptr) {
    *error = "overload schedule line " + std::to_string(line) + ": " + what;
  }
  return false;
}

bool parse_nonneg(const std::string& tok, double* out) {
  try {
    std::size_t used = 0;
    const double v = std::stod(tok, &used);
    if (used != tok.size() || v < 0.0) return false;
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_count(const std::string& tok, std::size_t* out) {
  try {
    std::size_t used = 0;
    const unsigned long long v = std::stoull(tok, &used);
    if (used != tok.size()) return false;
    *out = static_cast<std::size_t>(v);
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

bool parse_overload_schedule(const std::string& text, OverloadScheduleConfig* out,
                             std::string* error) {
  OverloadScheduleConfig cfg;
  std::istringstream stream(text);
  std::string line;
  int line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string cmd;
    if (!(tokens >> cmd)) continue;  // blank / comment-only line

    std::vector<std::string> args;
    for (std::string tok; tokens >> tok;) args.push_back(tok);

    if (cmd == "stall") {
      ScheduledOverload ev;
      ev.kind = ScheduledOverload::Kind::Stall;
      if (args.size() != 3 || !parse_nonneg(args[0], &ev.start_s) ||
          !parse_nonneg(args[1], &ev.end_s) || !parse_count(args[2], &ev.bot) ||
          ev.end_s <= ev.start_s) {
        return fail(error, line_no, "stall expects: T0 T1 BOT (with T1 > T0)");
      }
      cfg.events.push_back(ev);
    } else if (cmd == "flash") {
      ScheduledOverload ev;
      ev.kind = ScheduledOverload::Kind::Flash;
      if (args.size() != 2 || !parse_nonneg(args[0], &ev.start_s) ||
          !parse_count(args[1], &ev.count) || ev.count == 0) {
        return fail(error, line_no, "flash expects: T COUNT (COUNT > 0)");
      }
      cfg.events.push_back(ev);
    } else if (cmd == "spam") {
      ScheduledOverload ev;
      ev.kind = ScheduledOverload::Kind::Spam;
      if (args.size() != 3 || !parse_nonneg(args[0], &ev.start_s) ||
          !parse_nonneg(args[1], &ev.end_s) || !parse_nonneg(args[2], &ev.factor) ||
          ev.end_s <= ev.start_s || ev.factor <= 0.0) {
        return fail(error, line_no, "spam expects: T0 T1 FACTOR (T1 > T0, FACTOR > 0)");
      }
      cfg.events.push_back(ev);
    } else {
      return fail(error, line_no, "unknown directive '" + cmd + "'");
    }
  }
  *out = std::move(cfg);
  return true;
}

bool load_overload_schedule(const std::string& path, OverloadScheduleConfig* out,
                            std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open overload schedule file: " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_overload_schedule(text.str(), out, error);
}

}  // namespace dyconits::bots
