// Overload scenarios expressed as a schedule, the way faults.h expresses
// fault scenarios: what an experiment means by "bot 3 freezes for 20 s, a
// flash crowd of 40 arrives at t=30s, and everyone spams 4x from t=40s".
// The Simulation translates bot indices and seconds into stall windows,
// held-back join cohorts, and action-rate multipliers. Loadable from a text
// file so bench binaries take --overload=FILE.
//
// File format — one directive per line, '#' starts a comment:
//
//   stall T0 T1 BOT   # bot BOT freezes (no poll, no send) from T0 to T1 (s)
//   flash T COUNT     # COUNT bots held out of the join ramp all join at T
//   spam T0 T1 FACTOR # every bot acts FACTOR x faster from T0 to T1
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dyconits::bots {

struct ScheduledOverload {
  enum class Kind : std::uint8_t { Stall, Flash, Spam };

  Kind kind = Kind::Stall;
  double start_s = 0.0;
  double end_s = 0.0;  ///< unused for Flash
  /// Stall: which bot (index into the simulation's bot list).
  std::size_t bot = 0;
  /// Flash: how many held-back bots join at start_s.
  std::size_t count = 0;
  /// Spam: action-rate multiplier (> 0).
  double factor = 1.0;
};

struct OverloadScheduleConfig {
  std::vector<ScheduledOverload> events;

  bool any() const { return !events.empty(); }
};

/// Parses the directive text format above. Returns false and sets *error
/// (with a line number) on malformed input; *out is untouched on failure.
bool parse_overload_schedule(const std::string& text, OverloadScheduleConfig* out,
                             std::string* error);

/// Reads and parses an overload schedule file (the --overload=FILE flag).
bool load_overload_schedule(const std::string& path, OverloadScheduleConfig* out,
                            std::string* error);

}  // namespace dyconits::bots
