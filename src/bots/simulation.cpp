#include "bots/simulation.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "dyconit/policies/director.h"
#include "dyconit/policies/factory.h"
#include "trace/trace.h"
#include "util/log.h"
#include "world/terrain.h"

namespace dyconits::bots {

using server::GameServer;
using server::ServerConfig;

Simulation::Simulation(SimulationConfig cfg)
    : cfg_(cfg),
      world_(std::make_unique<world::World>(
          std::make_unique<world::TerrainGenerator>(cfg.terrain_seed))),
      net_(clock_, cfg.seed ^ 0x5E7ull) {
  const bool vanilla = cfg_.policy == "vanilla";
  std::unique_ptr<dyconit::Policy> policy;
  if (!vanilla) {
    policy = dyconit::make_policy(cfg_.policy);
    if (policy == nullptr) {
      Log::error("unknown policy spec '%s', falling back to zero", cfg_.policy.c_str());
      policy = dyconit::make_policy("zero");
    }
  }

  // Bots spawn at their workload-assigned home.
  const auto plans = plan_bots(cfg_.workload, cfg_.players, cfg_.seed);
  auto homes = std::make_shared<std::unordered_map<std::string, world::Vec3>>();
  for (const auto& p : plans) (*homes)[p.name] = p.home;

  ServerConfig scfg;
  scfg.view_distance = cfg_.view_distance;
  scfg.use_dyconits = !vanilla;
  scfg.bandwidth_budget_bps = cfg_.bandwidth_budget_bps;
  scfg.mob_count = cfg_.mobs;
  scfg.env_ticks_per_tick = cfg_.env_ticks;
  scfg.survival_mode = cfg_.survival;
  scfg.mob_seed = cfg_.seed ^ 0x30B5ull;
  scfg.profile_ticks = cfg_.profile_phases;
  scfg.flush_threads = cfg_.flush_threads;
  scfg.deterministic_load = cfg_.deterministic_load;
  scfg.overload = cfg_.overload;
  scfg.mob_spawn_radius =
      std::max(cfg_.workload.spread_radius, cfg_.workload.village_radius * 3.0);
  scfg.spawn_provider = [homes, world = world_.get()](const std::string& name) {
    const auto it = homes->find(name);
    const world::Vec3 home = it != homes->end() ? it->second : world::Vec3{};
    return world->spawn_position(static_cast<std::int32_t>(home.x),
                                 static_cast<std::int32_t>(home.z));
  };

  if (cfg_.tweak_server) cfg_.tweak_server(scfg);
  server_ = std::make_unique<GameServer>(clock_, net_, *world_, std::move(policy), scfg);
  server_->dyconits().set_record_staleness(cfg_.record_staleness);

  Rng bot_seeds(cfg_.seed ^ 0xB075EEDull);
  bots_.reserve(plans.size());
  for (const auto& p : plans) {
    BotConfig bc = p.config;
    bc.keep_chunk_replica = cfg_.keep_chunk_replica;
    bc.survival = cfg_.survival;
    if (cfg_.tweak_bot) cfg_.tweak_bot(bc);
    auto bot = std::make_unique<BotClient>(clock_, net_, *world_, server_->endpoint(),
                                           p.name, bot_seeds.next_u64(), bc);
    net_.connect(bot->endpoint(), server_->endpoint(),
                 {cfg_.link_latency, cfg_.link_jitter, cfg_.fifo_links});
    bots_.push_back(std::move(bot));
  }

  result_.policy = cfg_.policy;
  result_.players = cfg_.players;
  churn_rng_ = Rng(cfg_.seed ^ 0xC1124Eull);
  next_second_ = clock_.now() + SimDuration::seconds(1);

  if (cfg_.faults.any()) install_fault_plan();
  if (cfg_.overload_schedule.any()) install_overload_schedule();

  // Stamp trace records with this run's simulated time.
  trace::Tracer::instance().set_sim_clock(&clock_);
}

Simulation::~Simulation() {
  // Don't leave the tracer pointing at a destroyed clock (bench binaries
  // run several simulations back to back).
  if (trace::Tracer::instance().sim_clock() == &clock_) {
    trace::Tracer::instance().set_sim_clock(nullptr);
  }
}

void Simulation::install_fault_plan() {
  net::FaultPlan plan;
  plan.seed = cfg_.fault_seed != 0 ? cfg_.fault_seed : (cfg_.seed ^ 0xFA17ull);
  plan.all_links = cfg_.faults.link;

  const auto at_secs = [](double s) {
    return SimTime::zero() + SimDuration::micros(static_cast<std::int64_t>(s * 1e6));
  };
  const net::EndpointId srv = server_->endpoint();
  for (const auto& ev : cfg_.faults.events) {
    const SimTime t0 = at_secs(ev.start_s);
    const SimTime t1 = at_secs(ev.end_s);
    switch (ev.kind) {
      case ScheduledFault::Kind::Flap: {
        if (ev.bot >= bots_.size()) continue;
        const net::EndpointId ep = bots_[ev.bot]->endpoint();
        plan.events.push_back({t0, net::FaultEvent::Kind::LinkDown, ep, srv});
        plan.events.push_back({t1, net::FaultEvent::Kind::LinkUp, ep, srv});
        break;
      }
      case ScheduledFault::Kind::Partition: {
        // The leading fraction of the fleet loses the server, then heals.
        const auto cut = std::max<std::size_t>(
            1, static_cast<std::size_t>(ev.fraction * static_cast<double>(bots_.size())));
        for (std::size_t i = 0; i < cut && i < bots_.size(); ++i) {
          const net::EndpointId ep = bots_[i]->endpoint();
          plan.events.push_back({t0, net::FaultEvent::Kind::LinkDown, ep, srv});
          plan.events.push_back({t1, net::FaultEvent::Kind::LinkUp, ep, srv});
        }
        break;
      }
      case ScheduledFault::Kind::Crash: {
        if (ev.bot >= bots_.size()) continue;
        const net::EndpointId ep = bots_[ev.bot]->endpoint();
        plan.events.push_back({t0, net::FaultEvent::Kind::Crash, ep, net::kInvalidEndpoint});
        plan.events.push_back({t1, net::FaultEvent::Kind::Restart, ep, net::kInvalidEndpoint});
        // Client half: the process forgets its session, then rejoins.
        bot_fault_queue_.push_back({t0, ev.bot, false});
        bot_fault_queue_.push_back({t1, ev.bot, true});
        break;
      }
    }
  }
  std::stable_sort(bot_fault_queue_.begin(), bot_fault_queue_.end(),
                   [](const BotFaultEvent& a, const BotFaultEvent& b) { return a.at < b.at; });
  net_.set_fault_plan(std::move(plan));
}

void Simulation::apply_bot_faults() {
  const SimTime now = clock_.now();
  while (next_bot_fault_ < bot_fault_queue_.size() &&
         bot_fault_queue_[next_bot_fault_].at <= now) {
    const BotFaultEvent& ev = bot_fault_queue_[next_bot_fault_++];
    if (ev.bot >= bots_.size()) continue;
    if (ev.restart) {
      bots_[ev.bot]->connect();
    } else {
      bots_[ev.bot]->reset_session();
    }
  }
}

void Simulation::maybe_churn() {
  if (cfg_.churn_per_second <= 0.0 || !measuring_ || bots_.empty()) return;
  const SimTime now = clock_.now();
  for (auto it = rejoin_queue_.begin(); it != rejoin_queue_.end();) {
    if (now >= it->second) {
      bots_[it->first]->connect();
      ++result_.churn_rejoins;
      it = rejoin_queue_.erase(it);
    } else {
      ++it;
    }
  }
  // Bernoulli per tick: expected churn_per_second leaves per second.
  if (churn_rng_.chance(cfg_.churn_per_second *
                        server_->config().tick_interval.as_seconds())) {
    for (int attempt = 0; attempt < 10; ++attempt) {
      const std::size_t i =
          static_cast<std::size_t>(churn_rng_.next_below(bots_.size()));
      if (!bots_[i]->joined()) continue;
      server_->disconnect(bots_[i]->endpoint());
      bots_[i]->reset_session();
      rejoin_queue_.emplace_back(i, now + cfg_.churn_rejoin_delay);
      ++result_.churn_leaves;
      break;
    }
  }
}

void Simulation::install_overload_schedule() {
  const auto at_secs = [](double s) {
    return SimTime::zero() + SimDuration::micros(static_cast<std::int64_t>(s * 1e6));
  };
  // Flash cohorts are carved off the tail of the fleet, latest event
  // first-come: they skip the normal join ramp and arrive together.
  std::size_t hold_cursor = bots_.size();
  for (const auto& ev : cfg_.overload_schedule.events) {
    switch (ev.kind) {
      case ScheduledOverload::Kind::Stall: {
        if (ev.bot >= bots_.size()) continue;
        OverloadStep on{at_secs(ev.start_s), ev.kind, true, ev.bot, 1.0, {}};
        OverloadStep off{at_secs(ev.end_s), ev.kind, false, ev.bot, 1.0, {}};
        overload_queue_.push_back(std::move(on));
        overload_queue_.push_back(std::move(off));
        break;
      }
      case ScheduledOverload::Kind::Flash: {
        OverloadStep step{at_secs(ev.start_s), ev.kind, true, 0, 1.0, {}};
        for (std::size_t i = 0; i < ev.count && hold_cursor > 0; ++i) {
          --hold_cursor;
          if (held_back_.insert(hold_cursor).second) step.cohort.push_back(hold_cursor);
        }
        if (!step.cohort.empty()) overload_queue_.push_back(std::move(step));
        break;
      }
      case ScheduledOverload::Kind::Spam: {
        OverloadStep on{at_secs(ev.start_s), ev.kind, true, 0, ev.factor, {}};
        OverloadStep off{at_secs(ev.end_s), ev.kind, false, 0, 1.0, {}};
        overload_queue_.push_back(std::move(on));
        overload_queue_.push_back(std::move(off));
        break;
      }
    }
  }
  std::stable_sort(overload_queue_.begin(), overload_queue_.end(),
                   [](const OverloadStep& a, const OverloadStep& b) { return a.at < b.at; });
}

void Simulation::apply_overload_schedule() {
  const SimTime now = clock_.now();
  while (next_overload_ < overload_queue_.size() &&
         overload_queue_[next_overload_].at <= now) {
    const OverloadStep& ev = overload_queue_[next_overload_++];
    switch (ev.kind) {
      case ScheduledOverload::Kind::Stall:
        if (ev.bot < bots_.size()) bots_[ev.bot]->set_stalled(ev.begin);
        break;
      case ScheduledOverload::Kind::Flash:
        for (const std::size_t i : ev.cohort) {
          if (i < bots_.size()) bots_[i]->connect();
        }
        break;
      case ScheduledOverload::Kind::Spam:
        for (auto& bot : bots_) bot->set_action_scale(ev.begin ? ev.factor : 1.0);
        break;
    }
  }
}

void Simulation::maybe_join_next() {
  std::size_t started = 0;
  while (started < cfg_.joins_per_tick && next_join_ < bots_.size()) {
    if (held_back_.count(next_join_) > 0) {
      ++next_join_;  // flash-cohort member: joins at its scheduled time
      continue;
    }
    bots_[next_join_++]->connect();
    ++started;
  }
}

void Simulation::step_tick() {
  TRACE_SCOPE("sim.tick");
  clock_.advance(server_->config().tick_interval);
  net_.advance_faults();  // fire scheduled flaps/partitions/crashes on time
  apply_bot_faults();
  apply_overload_schedule();
  maybe_join_next();
  maybe_churn();
  {
    TRACE_SCOPE("sim.bots");
    for (auto& bot : bots_) bot->tick();
  }
  server_->tick();

  if (!measuring_ && clock_.now() >= SimTime::zero() + cfg_.warmup) begin_measurement();
  if (clock_.now() >= next_second_) {
    on_second();
    next_second_ += SimDuration::seconds(1);
  }
  if (hook_) hook_(*this, clock_.now());
}

void Simulation::begin_measurement() {
  measuring_ = true;
  measure_start_ = clock_.now();
  // A constrained uplink models steady-state capacity; applying it from
  // warmup keeps the one-off join burst (chunk streaming) from poisoning
  // the steady-state queueing measurement.
  if (cfg_.server_egress_rate > 0) {
    net_.set_egress_rate(server_->endpoint(), cfg_.server_egress_rate);
  }
  base_bytes_ = net_.egress_bytes(server_->endpoint());
  base_frames_ = net_.egress_frames(server_->endpoint());
  for (int t = 1; t < static_cast<int>(net::kMaxTags); ++t) {
    base_by_type_[static_cast<protocol::MessageType>(t)] =
        net_.egress_bytes_by_tag(server_->endpoint(), static_cast<std::uint8_t>(t));
  }
  base_stats_ = server_->dyconit_stats();
  server_->dyconits().stats().staleness_ms.clear();
  for (auto& bot : bots_) {
    bot->update_latency_ms().clear();
    bot->near_update_latency_ms().clear();
  }
  tick_sample_index_ = server_->tick_cpu_ms().count();
  base_pool_ = net::BufferPool::instance().stats();
  // Scope the per-phase breakdown to the measurement window.
  server_->profiler().reset();
}

void Simulation::on_second() {
  // Client-observed positional inconsistency: replica vs ground truth.
  if (measuring_) {
    double sum = 0.0, mx = 0.0;
    std::size_t n = 0;
    for (const auto& bot : bots_) {
      if (!bot->joined()) continue;
      for (const auto& [id, rep] : bot->replica_entities()) {
        const entity::Entity* truth = server_->entities().find(id);
        if (truth == nullptr) continue;
        const double err = world::distance(rep.pos, truth->pos);
        sum += err;
        if (err > mx) mx = err;
        ++n;
      }
    }
    if (n > 0) {
      result_.pos_error_mean.add(sum / static_cast<double>(n));
      result_.pos_error_max.add(mx);
    }
  }

  if (cfg_.record_timelines) {
    const SimTime now = clock_.now();
    auto& reg = result_.registry;
    const double kbps =
        egress_rate_.sample(net_.egress_bytes(server_->endpoint()), 1.0) / 1000.0;
    reg.series("egress_kbps").add(now, kbps);
    reg.series("players").add(now, static_cast<double>(server_->player_count()));
    reg.series("queued_updates").add(now,
                                     static_cast<double>(server_->dyconits().total_queued()));
    // Mean tick CPU over the last second.
    const auto& ticks = server_->tick_cpu_ms().values();
    static_cast<void>(ticks);
    double tick_sum = 0.0;
    std::size_t tick_n = 0;
    for (std::size_t i = server_->tick_cpu_ms().count() >= 20
                             ? server_->tick_cpu_ms().count() - 20
                             : 0;
         i < server_->tick_cpu_ms().count(); ++i) {
      tick_sum += server_->tick_cpu_ms().values()[i];
      ++tick_n;
    }
    if (tick_n > 0) reg.series("tick_ms").add(now, tick_sum / static_cast<double>(tick_n));
    if (const auto* director =
            dynamic_cast<const dyconit::DirectorPolicy*>(server_->policy())) {
      reg.series("director_scale").add(now, director->scale());
    }
    if (!result_.pos_error_mean.values().empty()) {
      reg.series("pos_error_mean").add(now, result_.pos_error_mean.values().back());
    }
    if (server_->config().overload.enabled) {
      reg.series("overload_rung").add(now, static_cast<double>(server_->overload_rung()));
    }
  }
}

SimulationResult Simulation::run() {
  const auto ticks = static_cast<std::uint64_t>(cfg_.duration.count_micros() /
                                                server_->config().tick_interval.count_micros());
  for (std::uint64_t i = 0; i < ticks; ++i) step_tick();
  finalize();
  return std::move(result_);
}

void Simulation::finalize() {
  if (!measuring_) begin_measurement();
  const double secs = (clock_.now() - measure_start_).as_seconds();
  result_.measured_seconds = secs;
  if (secs > 0) {
    result_.egress_bytes_per_sec =
        static_cast<double>(net_.egress_bytes(server_->endpoint()) - base_bytes_) / secs;
    result_.egress_frames_per_sec =
        static_cast<double>(net_.egress_frames(server_->endpoint()) - base_frames_) / secs;
  }
  for (int t = 1; t < static_cast<int>(net::kMaxTags); ++t) {
    const auto type = static_cast<protocol::MessageType>(t);
    const std::uint64_t now =
        net_.egress_bytes_by_tag(server_->endpoint(), static_cast<std::uint8_t>(t));
    const std::uint64_t delta = now - base_by_type_[type];
    if (delta > 0) result_.egress_bytes_by_type[type] = delta;
  }

  // Tick CPU after warmup.
  const auto& tick_values = server_->tick_cpu_ms().values();
  for (std::size_t i = tick_sample_index_; i < tick_values.size(); ++i) {
    result_.tick_ms.add(tick_values[i]);
  }

  // Middleware stats over the window.
  const dyconit::Stats& s = server_->dyconit_stats();
  dyconit::Stats d;
  d.enqueued = s.enqueued - base_stats_.enqueued;
  d.coalesced = s.coalesced - base_stats_.coalesced;
  d.delivered = s.delivered - base_stats_.delivered;
  d.dropped_no_subscriber = s.dropped_no_subscriber - base_stats_.dropped_no_subscriber;
  d.dropped_unsubscribe = s.dropped_unsubscribe - base_stats_.dropped_unsubscribe;
  d.flushes_staleness = s.flushes_staleness - base_stats_.flushes_staleness;
  d.flushes_numerical = s.flushes_numerical - base_stats_.flushes_numerical;
  d.flushes_forced = s.flushes_forced - base_stats_.flushes_forced;
  d.weight_delivered = s.weight_delivered - base_stats_.weight_delivered;
  result_.dyconit_stats = d;
  for (const double v : s.staleness_ms) result_.staleness_ms.add(v);

  for (const auto& bot : bots_) {
    for (const double v : bot->update_latency_ms().values()) {
      result_.update_latency_ms.add(v);
    }
    for (const double v : bot->near_update_latency_ms().values()) {
      result_.near_update_latency_ms.add(v);
    }
    result_.updates_applied += bot->updates_applied();
    result_.unknown_entity_updates += bot->unknown_entity_updates();
    result_.decode_failures += bot->decode_failures();
    result_.out_of_order_frames += bot->out_of_order_frames();
    result_.stale_moves_rejected += bot->stale_moves_rejected();
    result_.gaps_detected += bot->gaps_detected();
    result_.resyncs_requested += bot->resyncs_requested();
    result_.resync_acks_seen += bot->resync_acks_seen();
    result_.dup_or_old_frames += bot->dup_or_old_frames();
    result_.replica_pruned += bot->replica_pruned();
    result_.liveness_resets += bot->liveness_resets();
    result_.join_refusals += bot->join_refusals();
    const net::FaultStats& fs = net_.fault_stats(bot->endpoint());
    result_.frames_corrupted += fs.corrupted;
    result_.frames_duplicated += fs.duplicated;
  }
  result_.resyncs_served = server_->resyncs_served();
  result_.reconnects = server_->reconnects();
  result_.malformed_frames = server_->malformed_frames();
  {
    const server::OverloadStats& os = server_->overload_stats();
    result_.joins_refused = os.joins_refused;
    result_.egress_coalesced = os.egress_coalesced;
    result_.egress_shed =
        os.egress_evicted_moves + os.egress_dropped_moves + os.egress_dropped_ordered;
    result_.chunks_deferred = os.chunks_deferred;
    result_.overload_disconnects = os.overload_disconnects;
    result_.ladder_transitions = os.ladder_transitions;
    result_.peak_queue_bytes = os.peak_queue_bytes;
    result_.final_rung = server_->overload_rung();
  }
  result_.frames_dropped = net_.total_dropped_frames();
  {
    const net::FaultStats& fs = net_.fault_stats(server_->endpoint());
    result_.frames_corrupted += fs.corrupted;
    result_.frames_duplicated += fs.duplicated;
  }
  {
    // Send-pressure ledger as the server's transport saw it (all-zero on
    // the sim wire; real counters over UDP or a send-fault plan).
    const net::SendPressure sp = server_->transport_pressure();
    result_.send_failures = sp.send_failures;
    result_.send_retries = sp.send_retries;
    result_.send_drops = sp.dropped_datagrams;
    result_.congested_bytes = sp.congested_bytes;
  }

  {
    // Frame-buffer pool deltas over the window (process-wide pool: covers
    // encode, staging, SimNetwork drops, and bot decode alike).
    const net::BufferPool::Stats ps = net::BufferPool::instance().stats();
    result_.pool_hits = ps.hits - base_pool_.hits;
    result_.pool_misses = ps.misses - base_pool_.misses;
    result_.pool_high_water = ps.high_water;
    const std::size_t measured_ticks = tick_values.size() - tick_sample_index_;
    if (measured_ticks > 0) {
      result_.pool_misses_per_tick = static_cast<double>(result_.pool_misses) /
                                     static_cast<double>(measured_ticks);
    }
    auto& reg = result_.registry;
    reg.counter("pool_hits") = result_.pool_hits;
    reg.counter("pool_misses") = result_.pool_misses;
    reg.counter("pool_high_water") = result_.pool_high_water;
  }

  result_.phases = server_->profiler().report();
}

}  // namespace dyconits::bots
