// The experiment harness: builds a server + bot fleet on a simulated
// network, runs a fixed amount of simulated time, and collects the
// quantities the paper's evaluation reports (egress bandwidth, tick
// duration, client-observed inconsistency, update latency, middleware
// stats). Every bench binary and example is a thin wrapper around this.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "bots/bot.h"
#include "bots/faults.h"
#include "bots/overload_schedule.h"
#include "bots/workload.h"
#include "metrics/metrics.h"
#include "net/buffer_pool.h"
#include "server/game_server.h"
#include "trace/tick_profiler.h"

namespace dyconits::bots {

struct SimulationConfig {
  std::size_t players = 50;
  SimDuration duration = SimDuration::seconds(60);
  /// Measurements start after warmup (joins + chunk streaming settle).
  SimDuration warmup = SimDuration::seconds(15);

  /// Policy spec (see dyconit::make_policy), or "vanilla" for the
  /// unmodified direct-send baseline (no middleware at all).
  std::string policy = "director";

  std::uint64_t seed = 42;
  std::uint64_t terrain_seed = 1234;
  int view_distance = 8;

  SimDuration link_latency = SimDuration::millis(25);
  double link_jitter = 0.1;
  /// false models a UDP-like transport: jitter may reorder frames; clients
  /// report order error and reject stale moves.
  bool fifo_links = true;
  /// Server uplink capacity in bytes/second (0 = unlimited). Applied at
  /// warmup end so the join burst doesn't poison steady state; saturation
  /// then shows up as queueing delay in update latency.
  std::uint64_t server_egress_rate = 0;
  /// Bandwidth budget handed to adaptive policies, bits/second (0 = none).
  double bandwidth_budget_bps = 0.0;

  WorkloadConfig workload;
  std::size_t joins_per_tick = 2;
  /// Server-driven NPC wanderers (see ServerConfig::mob_count).
  std::size_t mobs = 0;
  /// Environmental block ticks per game tick (see ServerConfig).
  std::size_t env_ticks = 0;
  /// Survival economy: digs drop items, placement consumes inventory; bots
  /// run their gather-then-build loop.
  bool survival = false;

  /// Player churn: expected session leaves per simulated second (after
  /// warmup). A leaver disconnects server-side and rejoins fresh after
  /// churn_rejoin_delay — a Minecraft-realistic stressor for session
  /// teardown, chunk re-streaming, and dyconit (un)subscription.
  double churn_per_second = 0.0;
  SimDuration churn_rejoin_delay = SimDuration::seconds(3);

  /// Fault schedule (probabilistic link faults + scheduled flaps /
  /// partitions / crashes), translated into a net::FaultPlan at
  /// construction. See bots/faults.h for the --faults=FILE format.
  FaultScheduleConfig faults;
  /// Seed for the dedicated fault RNG stream; 0 derives one from `seed`.
  /// Same seed + same schedule replays the run byte-identically.
  std::uint64_t fault_seed = 0;

  /// Server-side overload control knobs (DESIGN.md §10), passed through to
  /// ServerConfig::overload. Disabled by default.
  server::OverloadConfig overload;
  /// Overload scenario schedule (stalled clients, flash crowds, spam
  /// bursts). See bots/overload_schedule.h for the --overload=FILE format.
  /// Flash cohorts are held out of the normal join ramp and all join at
  /// their scheduled time.
  OverloadScheduleConfig overload_schedule;

  bool record_staleness = false;
  bool keep_chunk_replica = false;
  /// Record per-second timeline series into the registry (E7/E9).
  bool record_timelines = false;
  /// Aggregate tick spans into SimulationResult::phases (E5/E6). Costs
  /// span timestamps on the send path, so off unless the run prints it.
  bool profile_phases = false;

  /// Flush/serialize executors (see ServerConfig::flush_threads). 1 = the
  /// serial oracle; >1 shards flush work across a thread pool with wire
  /// bytes byte-identical to the oracle for the same seed (DESIGN.md §9).
  std::size_t flush_threads = 1;

  /// Pin adaptive policies to the modeled (deterministic) tick-cost signal
  /// instead of measured wall-clock CPU — required for byte-exact replay
  /// across hosts and thread counts (see ServerConfig::deterministic_load).
  bool deterministic_load = false;

  /// Test hook: last-chance edit of the derived ServerConfig before the
  /// server is constructed (e.g. disabling keep-alive teardown so a test
  /// isolates what bounds memory for a stalled client).
  std::function<void(server::ServerConfig&)> tweak_server;

  /// Test hook: last-chance edit of each bot's derived BotConfig before the
  /// bot is constructed (e.g. arming liveness detection and jittered join
  /// backoff for a server-outage scenario). Applied after workload defaults.
  std::function<void(BotConfig&)> tweak_bot;
};

struct SimulationResult {
  std::string policy;
  std::size_t players = 0;
  double measured_seconds = 0.0;

  // Steady-state (post-warmup) server egress.
  double egress_bytes_per_sec = 0.0;
  double egress_frames_per_sec = 0.0;
  std::map<protocol::MessageType, std::uint64_t> egress_bytes_by_type;

  // Server CPU per tick (ms), post-warmup.
  Samples tick_ms;

  // Client-observed inconsistency: per-second mean and max positional error
  // (blocks) between bot replicas and server ground truth.
  Samples pos_error_mean;
  Samples pos_error_max;

  // End-to-end update latency (ms), merged over bots, post-warmup.
  Samples update_latency_ms;
  // Latency of nearby updates only (what a player perceives).
  Samples near_update_latency_ms;

  // Middleware counters over the measurement window.
  dyconit::Stats dyconit_stats;
  /// Staleness (ms) of updates at flush, if record_staleness was set.
  Samples staleness_ms;

  std::uint64_t updates_applied = 0;
  std::uint64_t unknown_entity_updates = 0;
  std::uint64_t decode_failures = 0;
  std::uint64_t churn_leaves = 0;
  std::uint64_t churn_rejoins = 0;
  std::uint64_t out_of_order_frames = 0;
  std::uint64_t stale_moves_rejected = 0;

  // Fault / recovery counters (whole run, not just the measurement window —
  // chaos experiments schedule faults before warmup ends too). Client side
  // summed over bots; server and wire counters read at finalize.
  std::uint64_t gaps_detected = 0;
  std::uint64_t resyncs_requested = 0;
  std::uint64_t resync_acks_seen = 0;
  std::uint64_t dup_or_old_frames = 0;
  std::uint64_t replica_pruned = 0;
  std::uint64_t liveness_resets = 0;
  std::uint64_t resyncs_served = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t malformed_frames = 0;

  // Overload control (DESIGN.md §10): whole-run server counters plus the
  // client-side refusal count, read at finalize.
  std::uint64_t join_refusals = 0;        ///< summed over bots
  std::uint64_t joins_refused = 0;        ///< server-side refusals sent
  std::uint64_t egress_coalesced = 0;     ///< queued updates superseded in place
  std::uint64_t egress_shed = 0;          ///< moves evicted or dropped at the cap
  std::uint64_t chunks_deferred = 0;      ///< chunk sends pushed to later ticks
  std::uint64_t overload_disconnects = 0; ///< rung-4 worst-offender disconnects
  std::uint64_t ladder_transitions = 0;
  std::uint64_t peak_queue_bytes = 0;     ///< largest per-subscriber egress queue
  int final_rung = 0;                     ///< ladder rung when the run ended
  std::uint64_t frames_dropped = 0;  ///< on-wire frames never delivered
  std::uint64_t frames_corrupted = 0;
  std::uint64_t frames_duplicated = 0;

  // Server-side transport send pressure (DESIGN.md §13): datagram-level
  // failures, in-call retries, and the decaying congested-byte estimate at
  // finalize. All zero on the sim wire, which never refuses a send; over
  // UDP (or a send-fault plan) these are the counters the overload ladder
  // listens to.
  std::uint64_t send_failures = 0;
  std::uint64_t send_retries = 0;
  std::uint64_t send_drops = 0;        ///< datagrams given up on after retries
  std::uint64_t congested_bytes = 0;   ///< estimate still pending at finalize

  // Frame-buffer pool (net::BufferPool, DESIGN.md §11) over the measurement
  // window. Misses are exactly the frame-buffer heap allocations the egress
  // pipeline performed; in steady state they amortize to zero per tick.
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::size_t pool_high_water = 0;  ///< whole-run freelist peak
  double pool_misses_per_tick = 0.0;

  /// Timeline series when record_timelines: "egress_kbps", "tick_ms",
  /// "director_scale", "players", "queued_updates", "pos_error_mean".
  metrics::MetricRegistry registry;

  /// Measured per-phase tick cost over the measurement window (see
  /// src/trace): where each tick's CPU went, phase by phase. Populated
  /// when SimulationConfig::profile_phases is set; print with
  /// trace::print_phase_table.
  trace::TickProfiler::Report phases;
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig cfg);
  ~Simulation();

  /// Runs the configured duration and finalizes the result.
  SimulationResult run();

  /// Step API for tests, examples, and scripted scenarios.
  void step_tick();
  void finalize();  // computes result aggregates; run() calls it
  SimulationResult& result() { return result_; }

  SimClock& clock() { return clock_; }
  server::GameServer& server() { return *server_; }
  net::SimNetwork& network() { return net_; }
  world::World& world() { return *world_; }
  std::vector<std::unique_ptr<BotClient>>& bots() { return bots_; }
  const SimulationConfig& config() const { return cfg_; }

  /// Called after every tick with the current sim time; lets scenarios
  /// script mid-run events (the E7 convergence spike).
  using TickHook = std::function<void(Simulation&, SimTime)>;
  void set_tick_hook(TickHook hook) { hook_ = std::move(hook); }

 private:
  void maybe_join_next();
  void maybe_churn();
  void install_fault_plan();
  void apply_bot_faults();
  void install_overload_schedule();
  void apply_overload_schedule();
  void on_second();
  void begin_measurement();

  SimulationConfig cfg_;
  SimClock clock_;
  std::unique_ptr<world::World> world_;
  net::SimNetwork net_;
  std::unique_ptr<server::GameServer> server_;
  std::vector<std::unique_ptr<BotClient>> bots_;
  std::size_t next_join_ = 0;
  TickHook hook_;
  Rng churn_rng_{0};
  std::vector<std::pair<std::size_t, SimTime>> rejoin_queue_;  // bot index, when

  /// Client-side half of scheduled crashes: at `at`, either kill the bot's
  /// session state (restart=false) or bring it back and rejoin (true). The
  /// network-side half (inbox wipe, refused traffic) lives in the FaultPlan.
  struct BotFaultEvent {
    SimTime at;
    std::size_t bot = 0;
    bool restart = false;
  };
  std::vector<BotFaultEvent> bot_fault_queue_;  // sorted by `at`
  std::size_t next_bot_fault_ = 0;

  /// Scheduled overload steps (stall on/off, spam on/off, flash-cohort
  /// joins), expanded from cfg_.overload_schedule at construction.
  struct OverloadStep {
    SimTime at;
    ScheduledOverload::Kind kind = ScheduledOverload::Kind::Stall;
    bool begin = false;               // stall/spam: window start vs end
    std::size_t bot = 0;              // stall
    double factor = 1.0;              // spam
    std::vector<std::size_t> cohort;  // flash: bot indices joining at `at`
  };
  std::vector<OverloadStep> overload_queue_;  // sorted by `at`
  std::size_t next_overload_ = 0;
  /// Flash-cohort members: excluded from the normal join ramp.
  std::unordered_set<std::size_t> held_back_;

  SimulationResult result_;
  bool measuring_ = false;
  // Baselines captured at warmup end.
  std::uint64_t base_bytes_ = 0;
  std::uint64_t base_frames_ = 0;
  std::map<protocol::MessageType, std::uint64_t> base_by_type_;
  dyconit::Stats base_stats_;
  net::BufferPool::Stats base_pool_;
  std::size_t tick_sample_index_ = 0;
  SimTime measure_start_;
  SimTime next_second_;
  metrics::RateSampler egress_rate_;
};

}  // namespace dyconits::bots
