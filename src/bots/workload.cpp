#include "bots/workload.h"

#include <cmath>

namespace dyconits::bots {

const char* workload_name(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::Walk: return "walk";
    case WorkloadKind::Village: return "village";
    case WorkloadKind::Build: return "build";
    case WorkloadKind::Mixed: return "mixed";
  }
  return "unknown";
}

WorkloadKind parse_workload(const std::string& s) {
  if (s == "village") return WorkloadKind::Village;
  if (s == "build") return WorkloadKind::Build;
  if (s == "mixed") return WorkloadKind::Mixed;
  return WorkloadKind::Walk;
}

namespace {

world::Vec3 disc_point(Rng& rng, double radius) {
  const double r = radius * std::sqrt(rng.next_double());
  const double a = rng.next_double() * 2.0 * 3.14159265358979323846;
  return {r * std::cos(a), 0.0, r * std::sin(a)};
}

world::Vec3 hotspot_center(const WorkloadConfig& cfg, int index) {
  // Hotspots on a diagonal line so they land in distinct chunk regions.
  const double off = (index - (cfg.hotspots - 1) / 2.0) * cfg.hotspot_spacing;
  return {off, 0.0, off * 0.5};
}

BotPlan plan_walker(const WorkloadConfig& cfg, std::size_t i, Rng& rng) {
  BotPlan plan;
  plan.name = "walker-" + std::to_string(i);
  plan.home = disc_point(rng, cfg.spread_radius);
  plan.config.kind = BehaviorKind::Walk;
  plan.config.wander_radius = 40.0 + rng.next_double() * 40.0;
  plan.config.home = plan.home;
  return plan;
}

BotPlan plan_builder(const WorkloadConfig& cfg, std::size_t i, Rng& rng) {
  BotPlan plan;
  plan.name = "builder-" + std::to_string(i);
  plan.home = disc_point(rng, cfg.spread_radius);
  plan.config.kind = BehaviorKind::Build;
  plan.config.wander_radius = 20.0;
  plan.config.action_interval = SimDuration::millis(300);
  plan.config.home = plan.home;
  return plan;
}

BotPlan plan_villager(const WorkloadConfig& cfg, std::size_t i, Rng& rng) {
  BotPlan plan;
  plan.name = "villager-" + std::to_string(i);
  const auto spot = static_cast<int>(
      rng.next_zipf(static_cast<std::uint64_t>(cfg.hotspots), cfg.zipf_s));
  const world::Vec3 center = hotspot_center(cfg, spot);
  plan.home = center + disc_point(rng, cfg.village_radius * 0.5);
  plan.config.kind = rng.chance(cfg.village_build_fraction) ? BehaviorKind::Build
                                                            : BehaviorKind::Walk;
  plan.config.wander_radius = cfg.village_radius;
  plan.config.action_interval = SimDuration::millis(350);
  plan.config.home = plan.home;
  return plan;
}

}  // namespace

std::vector<BotPlan> plan_bots(const WorkloadConfig& cfg, std::size_t count,
                               std::uint64_t seed) {
  Rng rng(seed ^ 0xB07B07B07ull);
  std::vector<BotPlan> plans;
  plans.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    switch (cfg.kind) {
      case WorkloadKind::Walk:
        plans.push_back(plan_walker(cfg, i, rng));
        break;
      case WorkloadKind::Build:
        plans.push_back(plan_builder(cfg, i, rng));
        break;
      case WorkloadKind::Village:
        plans.push_back(plan_villager(cfg, i, rng));
        break;
      case WorkloadKind::Mixed:
        plans.push_back(i % 2 == 0 ? plan_walker(cfg, i, rng)
                                   : plan_villager(cfg, i, rng));
        break;
    }
  }
  return plans;
}

}  // namespace dyconits::bots
