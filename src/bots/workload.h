// Workload shapes, after the paper's Yardstick-style experiments: how many
// bots, what they do, and — critically for an MVE — how densely they pack.
//
//   Walk    — random-waypoint walkers spread over a disc: the classic case
//             interest management already handles well.
//   Village — players Zipf-clustered on a few hotspots with small wander
//             radii and frequent block edits: the high-density, frequently
//             modified area the paper says breaks existing techniques.
//   Build   — spread-out builders; block-update heavy, low overlap.
//   Mixed   — half walkers, half villagers.
#pragma once

#include <string>
#include <vector>

#include "bots/bot.h"
#include "util/rng.h"

namespace dyconits::bots {

enum class WorkloadKind : std::uint8_t { Walk = 0, Village = 1, Build = 2, Mixed = 3 };

const char* workload_name(WorkloadKind k);
/// Parses "walk" | "village" | "build" | "mixed"; defaults to Walk.
WorkloadKind parse_workload(const std::string& s);

struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::Walk;
  /// Walk/Build: homes drawn uniformly from a disc of this radius.
  double spread_radius = 150.0;
  /// Village: number of hotspots and the Zipf exponent of their popularity.
  int hotspots = 4;
  double zipf_s = 1.1;
  /// Distance between adjacent hotspots (on a line through the origin).
  double hotspot_spacing = 96.0;
  /// Wander radius for villagers (small = packed crowd).
  double village_radius = 14.0;
  /// Fraction of villagers that build (the rest walk).
  double village_build_fraction = 0.5;
};

/// Everything needed to instantiate one bot.
struct BotPlan {
  std::string name;
  world::Vec3 home;
  BotConfig config;
};

/// Deterministically plans `count` bots for the workload. The same (config,
/// seed) yields the same plan, so policy comparisons are paired.
std::vector<BotPlan> plan_bots(const WorkloadConfig& cfg, std::size_t count,
                               std::uint64_t seed);

}  // namespace dyconits::bots
