// Inconsistency bounds — the conit model (Yu & Vahdat, TACT) specialized
// for MVEs as the Dyconits paper does:
//
//  * staleness  — the maximum simulated time an update may sit unsent in a
//                 subscriber's queue before a flush is forced;
//  * numerical  — the maximum accumulated update weight (e.g. blocks of
//                 positional drift, count of unseen block edits) a
//                 subscriber may be behind by.
//
// TACT's third dimension, order error, is identically zero here: the server
// is the single writer and per-pair delivery is FIFO, so clients always
// apply updates in server order. This matches the paper's single-server
// prototype.
#pragma once

#include "util/sim_time.h"

namespace dyconits::dyconit {

struct Bounds {
  SimDuration staleness = SimDuration::millis(0);
  double numerical = 0.0;

  /// Immediate flush: vanilla-equivalent delivery.
  static constexpr Bounds zero() { return {SimDuration::millis(0), 0.0}; }

  /// Never flush on its own (only forced flushes deliver).
  static Bounds infinite() { return {SimDuration::infinite(), 1e18}; }

  bool is_zero() const { return staleness.count_micros() <= 0 || numerical <= 0.0; }

  bool operator==(const Bounds&) const = default;
};

}  // namespace dyconits::dyconit
