#include "dyconit/dyconit.h"

#include <algorithm>

namespace dyconits::dyconit {

void account_flush(const PendingFlush& p, SimTime now, Stats& stats) {
  switch (p.reason) {
    case FlushReason::Staleness: ++stats.flushes_staleness; break;
    case FlushReason::Numerical: ++stats.flushes_numerical; break;
    case FlushReason::Forced: ++stats.flushes_forced; break;
  }
  for (const Update& u : p.updates) {
    ++stats.delivered;
    stats.weight_delivered += u.weight;
    if (stats.record_staleness) {
      stats.staleness_ms.push_back(
          static_cast<double>((now - u.created).count_micros()) / 1000.0);
    }
  }
}

bool SubscriberQueue::enqueue(const Update& u) {
  total_weight_ += u.weight;
  if (u.coalesce_key != 0) {
    const auto it = by_key_.find(u.coalesce_key);
    if (it != by_key_.end()) {
      // Last write wins: replace the payload in place, keep the original
      // position and creation time, accumulate the weight.
      Update& slot = updates_[it->second];
      slot.msg = u.msg;
      slot.weight += u.weight;
      return true;
    }
    by_key_.emplace(u.coalesce_key, updates_.size());
  }
  updates_.push_back(u);
  return false;
}

std::vector<Update> SubscriberQueue::take_all() {
  std::vector<Update> out = std::move(updates_);
  updates_.clear();
  by_key_.clear();
  total_weight_ = 0.0;
  return out;
}

void SubscriberQueue::take_into(std::vector<Update>& out) {
  out.clear();
  out.swap(updates_);  // queue inherits out's old capacity; contents unchanged
  by_key_.clear();
  total_weight_ = 0.0;
}

void SubscriberQueue::drop_all() {
  updates_.clear();
  by_key_.clear();
  total_weight_ = 0.0;
}

std::size_t SubscriberQueue::shed_entity_moves(double* weight) {
  if (updates_.empty()) return 0;
  std::size_t removed = 0;
  double removed_weight = 0.0;
  std::vector<Update> kept;
  kept.reserve(updates_.size());
  for (Update& u : updates_) {
    if ((u.coalesce_key >> 56) == 1) {
      ++removed;
      removed_weight += u.weight;
    } else {
      kept.push_back(std::move(u));
    }
  }
  if (removed == 0) return 0;
  updates_ = std::move(kept);
  by_key_.clear();
  for (std::size_t i = 0; i < updates_.size(); ++i) {
    if (updates_[i].coalesce_key != 0) by_key_.emplace(updates_[i].coalesce_key, i);
  }
  total_weight_ -= removed_weight;
  if (weight != nullptr) *weight += removed_weight;
  return removed;
}

Dyconit::Dyconit(DyconitId id, Bounds default_bounds)
    : id_(id), default_bounds_(default_bounds) {}

void Dyconit::subscribe(SubscriberId sub, Bounds b) {
  subs_[sub].bounds = b;  // creates if absent, keeps existing queue if present
  subs_dirty_ = true;
}

void Dyconit::unsubscribe(SubscriberId sub, Stats& stats) {
  const auto it = subs_.find(sub);
  if (it == subs_.end()) return;
  stats.dropped_unsubscribe += it->second.queue.size();
  subs_.erase(it);
  subs_dirty_ = true;
}

void Dyconit::rebuild_sorted() const {
  sorted_slots_.clear();
  sorted_slots_.reserve(subs_.size());
  for (auto& [sub, s] : const_cast<std::unordered_map<SubscriberId, Sub>&>(subs_)) {
    sorted_slots_.push_back({sub, &s});
  }
  std::sort(sorted_slots_.begin(), sorted_slots_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  sorted_subs_.clear();
  sorted_subs_.reserve(sorted_slots_.size());
  for (const auto& [sub, s] : sorted_slots_) sorted_subs_.push_back(sub);
  subs_dirty_ = false;
}

const std::vector<SubscriberId>& Dyconit::sorted_subscribers() const {
  if (subs_dirty_) rebuild_sorted();
  return sorted_subs_;
}

const std::vector<std::pair<SubscriberId, Dyconit::Sub*>>& Dyconit::sorted_slots()
    const {
  if (subs_dirty_) rebuild_sorted();
  return sorted_slots_;
}

void Dyconit::set_bounds(SubscriberId sub, Bounds b) {
  const auto it = subs_.find(sub);
  if (it != subs_.end()) it->second.bounds = b;
}

Bounds Dyconit::bounds_of(SubscriberId sub) const {
  const auto it = subs_.find(sub);
  return it == subs_.end() ? default_bounds_ : it->second.bounds;
}

void Dyconit::enqueue(const Update& u, SubscriberId exclude, Stats& stats) {
  if (subs_.empty() || (subs_.size() == 1 && subs_.count(exclude) > 0)) {
    ++stats.dropped_no_subscriber;
    return;
  }
  for (auto& [sub, s] : subs_) {
    if (sub == exclude) continue;
    ++stats.enqueued;
    if (s.queue.enqueue(u)) ++stats.coalesced;
  }
}

PendingFlush Dyconit::take_due(SubscriberId sub, SimTime now,
                               std::size_t snapshot_threshold,
                               const ShedDirective& shed) {
  PendingFlush p;
  take_due_into(sub, now, snapshot_threshold, shed, p);
  return p;
}

void Dyconit::take_due_into(SubscriberId sub, SimTime now,
                            std::size_t snapshot_threshold,
                            const ShedDirective& shed, PendingFlush& p) {
  p.reset();
  const auto it = subs_.find(sub);
  if (it == subs_.end()) return;
  take_due_core(it->second, now, snapshot_threshold, shed, p);
}

void Dyconit::take_due_core(Sub& s, SimTime now, std::size_t snapshot_threshold,
                            const ShedDirective& shed, PendingFlush& p) {
  if (shed.shed_entity_moves && !s.queue.empty()) {
    p.shed = s.queue.shed_entity_moves(&p.shed_weight);
  }
  if (shed.snapshot_threshold_override > 0 &&
      (snapshot_threshold == 0 || shed.snapshot_threshold_override < snapshot_threshold)) {
    snapshot_threshold = shed.snapshot_threshold_override;
  }
  if (snapshot_threshold > 0 && s.queue.size() > snapshot_threshold) {
    // Too far behind: a fresh snapshot is cheaper than the delta flood.
    p.kind = PendingFlush::Kind::Snapshot;
    p.dropped = s.queue.size();
    s.queue.drop_all();
    return;
  }
  if (s.queue.violates(s.bounds, now)) {
    p.kind = PendingFlush::Kind::Flush;
    p.reason = s.queue.violation_reason(s.bounds, now);
    s.queue.take_into(p.updates);
  }
}

void Dyconit::settle(SubscriberId sub, PendingFlush&& p, SimTime now, FlushSink& sink,
                     Stats& stats) {
  if (p.shed > 0) {
    stats.shed_updates += p.shed;
    stats.shed_weight += p.shed_weight;
  }
  if (p.kind == PendingFlush::Kind::Snapshot) {
    stats.dropped_snapshot += p.dropped;
    ++stats.snapshots_requested;
    sink.request_snapshot(sub, id_);
    return;
  }
  if (p.kind != PendingFlush::Kind::Flush || p.updates.empty()) return;
  account_flush(p, now, stats);
  // Reused scratch (tick thread only); settle never moves from p, so a
  // caller may pass the same PendingFlush again after this returns.
  std::vector<FlushSink::FlushedUpdate>& flushed = views_scratch_;
  flushed.clear();
  flushed.reserve(p.updates.size());
  for (const Update& u : p.updates) flushed.push_back({&u.msg, u.created, u.weight});
  sink.deliver(sub, flushed);
}

void Dyconit::flush_due(SimTime now, FlushSink& sink, Stats& stats,
                        std::size_t snapshot_threshold, const ShedDirectiveMap* shed) {
  // Canonical order: the serial oracle settles subscribers in the same
  // ascending order the parallel merge phase uses (DESIGN.md §9). Sink
  // callbacks must not touch this dyconit's subscription set.
  static const ShedDirective kNoShed;
  for (const auto& [sub, slot] : sorted_slots()) {
    const ShedDirective* d = &kNoShed;
    if (shed != nullptr) {
      const auto it = shed->find(sub);
      if (it != shed->end()) d = &it->second;
    }
    // take_scratch_ is reused across pairs (and ticks): settle does not
    // move from it, and take_into swaps its capacity back into the queue,
    // so the steady-state loop performs no vector allocations.
    PendingFlush& p = take_scratch_;
    p.reset();
    take_due_core(*slot, now, snapshot_threshold, *d, p);
    if (p.kind != PendingFlush::Kind::None || p.shed > 0) {
      settle(sub, std::move(p), now, sink, stats);
    }
  }
}

void Dyconit::flush_subscriber(SubscriberId sub, SimTime now, FlushSink& sink,
                               Stats& stats, FlushReason reason) {
  const auto it = subs_.find(sub);
  if (it == subs_.end() || it->second.queue.empty()) return;
  PendingFlush p;
  p.kind = PendingFlush::Kind::Flush;
  p.reason = reason;
  p.updates = it->second.queue.take_all();
  settle(sub, std::move(p), now, sink, stats);
}

void Dyconit::flush_all(SimTime now, FlushSink& sink, Stats& stats) {
  for (const SubscriberId sub : sorted_subscribers()) {
    flush_subscriber(sub, now, sink, stats, FlushReason::Forced);
  }
}

void Dyconit::for_each_subscriber(
    const std::function<void(SubscriberId, Bounds&, const SubscriberQueue&)>& fn) {
  for (auto& [sub, s] : subs_) fn(sub, s.bounds, s.queue);
}

std::size_t Dyconit::total_queued() const {
  std::size_t n = 0;
  for (const auto& [sub, s] : subs_) n += s.queue.size();
  return n;
}

}  // namespace dyconits::dyconit
