#include "dyconit/dyconit.h"

namespace dyconits::dyconit {

bool SubscriberQueue::enqueue(const Update& u) {
  total_weight_ += u.weight;
  if (u.coalesce_key != 0) {
    const auto it = by_key_.find(u.coalesce_key);
    if (it != by_key_.end()) {
      // Last write wins: replace the payload in place, keep the original
      // position and creation time, accumulate the weight.
      Update& slot = updates_[it->second];
      slot.msg = u.msg;
      slot.weight += u.weight;
      return true;
    }
    by_key_.emplace(u.coalesce_key, updates_.size());
  }
  updates_.push_back(u);
  return false;
}

std::vector<Update> SubscriberQueue::take_all() {
  std::vector<Update> out = std::move(updates_);
  updates_.clear();
  by_key_.clear();
  total_weight_ = 0.0;
  return out;
}

Dyconit::Dyconit(DyconitId id, Bounds default_bounds)
    : id_(id), default_bounds_(default_bounds) {}

void Dyconit::subscribe(SubscriberId sub, Bounds b) {
  subs_[sub].bounds = b;  // creates if absent, keeps existing queue if present
}

void Dyconit::unsubscribe(SubscriberId sub, Stats& stats) {
  const auto it = subs_.find(sub);
  if (it == subs_.end()) return;
  stats.dropped_unsubscribe += it->second.queue.size();
  subs_.erase(it);
}

void Dyconit::set_bounds(SubscriberId sub, Bounds b) {
  const auto it = subs_.find(sub);
  if (it != subs_.end()) it->second.bounds = b;
}

Bounds Dyconit::bounds_of(SubscriberId sub) const {
  const auto it = subs_.find(sub);
  return it == subs_.end() ? default_bounds_ : it->second.bounds;
}

void Dyconit::enqueue(const Update& u, SubscriberId exclude, Stats& stats) {
  if (subs_.empty() || (subs_.size() == 1 && subs_.count(exclude) > 0)) {
    ++stats.dropped_no_subscriber;
    return;
  }
  for (auto& [sub, s] : subs_) {
    if (sub == exclude) continue;
    ++stats.enqueued;
    if (s.queue.enqueue(u)) ++stats.coalesced;
  }
}

void Dyconit::do_flush(SubscriberId sub, Sub& s, SimTime now, FlushSink& sink,
                       Stats& stats, FlushReason reason) {
  if (s.queue.empty()) return;
  switch (reason) {
    case FlushReason::Staleness: ++stats.flushes_staleness; break;
    case FlushReason::Numerical: ++stats.flushes_numerical; break;
    case FlushReason::Forced: ++stats.flushes_forced; break;
  }
  const std::vector<Update> updates = s.queue.take_all();
  std::vector<FlushSink::FlushedUpdate> flushed;
  flushed.reserve(updates.size());
  for (const Update& u : updates) {
    flushed.push_back({&u.msg, u.created, u.weight});
    ++stats.delivered;
    stats.weight_delivered += u.weight;
    if (stats.record_staleness) {
      stats.staleness_ms.push_back(static_cast<double>((now - u.created).count_micros()) /
                                   1000.0);
    }
  }
  sink.deliver(sub, flushed);
}

void Dyconit::flush_due(SimTime now, FlushSink& sink, Stats& stats,
                        std::size_t snapshot_threshold) {
  for (auto& [sub, s] : subs_) {
    if (snapshot_threshold > 0 && s.queue.size() > snapshot_threshold) {
      // Too far behind: a fresh snapshot is cheaper than the delta flood.
      stats.dropped_snapshot += s.queue.size();
      ++stats.snapshots_requested;
      s.queue.take_all();
      sink.request_snapshot(sub, id_);
      continue;
    }
    if (s.queue.violates(s.bounds, now)) {
      do_flush(sub, s, now, sink, stats, s.queue.violation_reason(s.bounds, now));
    }
  }
}

void Dyconit::flush_subscriber(SubscriberId sub, SimTime now, FlushSink& sink,
                               Stats& stats, FlushReason reason) {
  const auto it = subs_.find(sub);
  if (it == subs_.end()) return;
  do_flush(sub, it->second, now, sink, stats, reason);
}

void Dyconit::flush_all(SimTime now, FlushSink& sink, Stats& stats) {
  for (auto& [sub, s] : subs_) do_flush(sub, s, now, sink, stats, FlushReason::Forced);
}

void Dyconit::for_each_subscriber(
    const std::function<void(SubscriberId, Bounds&, const SubscriberQueue&)>& fn) {
  for (auto& [sub, s] : subs_) fn(sub, s.bounds, s.queue);
}

std::size_t Dyconit::total_queued() const {
  std::size_t n = 0;
  for (const auto& [sub, s] : subs_) n += s.queue.size();
  return n;
}

}  // namespace dyconits::dyconit
