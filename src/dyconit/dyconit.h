// A single dyconit: one consistency unit with a set of subscribers, each
// holding an outgoing update queue and its own inconsistency bounds.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "dyconit/bounds.h"
#include "dyconit/id.h"
#include "dyconit/update.h"

namespace dyconits::dyconit {

enum class FlushReason : std::uint8_t {
  Staleness = 0,  // oldest queued update reached the staleness bound
  Numerical = 1,  // accumulated weight exceeded the numerical bound
  Forced = 2,     // explicit flush (snapshot, shutdown, test)
};

/// Aggregate middleware counters; owned by DyconitSystem, updated by every
/// dyconit operation. `delivered` counts updates handed to the sink;
/// `coalesced` counts updates absorbed into a queued predecessor — each one
/// is a message the network never carries.
struct Stats {
  std::uint64_t enqueued = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_subscriber = 0;
  std::uint64_t dropped_unsubscribe = 0;
  std::uint64_t flushes_staleness = 0;
  std::uint64_t flushes_numerical = 0;
  std::uint64_t flushes_forced = 0;
  double weight_delivered = 0.0;
  /// Snapshot catch-up: queues dropped for being too far behind, and the
  /// updates discarded with them (replaced by fresh state from the game).
  std::uint64_t snapshots_requested = 0;
  std::uint64_t dropped_snapshot = 0;
  /// Recovery handshakes served (DyconitSystem::resync_subscriber calls).
  std::uint64_t resyncs = 0;
  /// Overload shedding (DESIGN.md §10): updates dropped from queues by a
  /// ShedDirective instead of being delivered, and their total weight.
  /// Shed entity moves are absolute state superseded by the next move;
  /// shed block backlog is converted into a snapshot request.
  std::uint64_t shed_updates = 0;
  double shed_weight = 0.0;

  /// When enabled (see DyconitSystem::set_record_staleness), per-update
  /// queueing delay in ms at flush time.
  bool record_staleness = false;
  std::vector<double> staleness_ms;

  std::uint64_t flushes() const {
    return flushes_staleness + flushes_numerical + flushes_forced;
  }
};

/// Overload-shedding directive for one subscriber (DESIGN.md §10). The
/// host's overload controller installs these before a flush round; they
/// are consulted inside take_due on both the serial and the sharded path,
/// so shed work is a pure function of the queue contents and identical
/// for any thread count.
struct ShedDirective {
  /// Drop queued entity-move updates (coalesce-key namespace 1). Safe to
  /// shed: moves carry absolute positions, so the next enqueued move for
  /// the same entity supersedes anything dropped.
  bool shed_entity_moves = false;
  /// Snapshot-threshold override (tighter wins over the global threshold):
  /// converts a deep backlog into a snapshot request — the game resends
  /// fresh state, repairing consistency instead of replaying the flood.
  std::size_t snapshot_threshold_override = 0;

  bool any() const { return shed_entity_moves || snapshot_threshold_override > 0; }
};

/// Per-subscriber shed directives, keyed by subscriber id. Read-only
/// during a flush round (workers look directives up concurrently).
using ShedDirectiveMap = std::unordered_map<SubscriberId, ShedDirective>;

/// Flush work taken from one (dyconit, subscriber) queue but not yet
/// accounted or delivered. The flush path is split in two so it can run
/// sharded (DESIGN.md §9): Dyconit::take_due produces a PendingFlush on a
/// worker thread (touching only that subscriber's queue), and the tick
/// thread settles it — stats, sink — in canonical order, so counters and
/// wire bytes match the serial oracle exactly.
struct PendingFlush {
  enum class Kind : std::uint8_t {
    None = 0,      ///< nothing due
    Flush = 1,     ///< `updates` must be delivered
    Snapshot = 2,  ///< queue was dropped; ask the sink for a snapshot
  };
  Kind kind = Kind::None;
  FlushReason reason = FlushReason::Forced;
  std::vector<Update> updates;  ///< Flush: queue contents in enqueue order
  std::size_t dropped = 0;      ///< Snapshot: updates discarded with the queue
  /// Updates (and weight) removed by a ShedDirective in this take. Carried
  /// here — not accounted on the worker — so shed counters fold into Stats
  /// on the tick thread in canonical order like everything else.
  std::size_t shed = 0;
  double shed_weight = 0.0;

  /// Back to the default state, keeping the updates vector's capacity so a
  /// reused PendingFlush recycles storage instead of reallocating.
  void reset() {
    kind = Kind::None;
    reason = FlushReason::Forced;
    updates.clear();
    dropped = 0;
    shed = 0;
    shed_weight = 0.0;
  }
};

/// Folds one pending flush into the aggregate counters. Must run on the
/// tick thread in canonical settle order: weight_delivered is a floating-
/// point sum, so the summation order has to match the serial oracle
/// exactly (FP addition is not associative).
void account_flush(const PendingFlush& p, SimTime now, Stats& stats);

/// Insertion-ordered outgoing queue with in-place coalescing.
class SubscriberQueue {
 public:
  /// Returns true if the update was coalesced into an existing entry.
  bool enqueue(const Update& u);

  bool empty() const { return updates_.empty(); }
  std::size_t size() const { return updates_.size(); }
  double total_weight() const { return total_weight_; }

  /// Age-of-oldest entry; only meaningful when !empty(). Entries keep their
  /// first-enqueue timestamp across coalescing, and enqueue times are
  /// monotone, so the front entry is the oldest.
  SimTime oldest_created() const { return updates_.front().created; }

  bool violates(const Bounds& b, SimTime now) const {
    if (empty()) return false;
    return (now - oldest_created()) >= b.staleness || total_weight_ > b.numerical;
  }

  /// Which bound tripped (call only when violates() is true).
  FlushReason violation_reason(const Bounds& b, SimTime now) const {
    return (now - oldest_created()) >= b.staleness ? FlushReason::Staleness
                                                   : FlushReason::Numerical;
  }

  /// Moves out all queued updates in enqueue order and resets the queue.
  std::vector<Update> take_all();

  /// take_all without the allocation: swaps the queue's storage into `out`
  /// (cleared first, capacity kept), so in steady state a flush round
  /// recycles vector capacity between the queue and the caller's scratch
  /// instead of allocating per flush. Contents and order are identical to
  /// take_all.
  void take_into(std::vector<Update>& out);

  /// Discards everything queued (snapshot catch-up) without surrendering
  /// the queue's storage.
  void drop_all();

  /// Overload shedding: removes every queued entity-move update (coalesce
  /// key namespace 1), preserving the order of survivors. Returns how many
  /// were removed and adds their total weight to *weight.
  std::size_t shed_entity_moves(double* weight);

  const std::vector<Update>& peek() const { return updates_; }

 private:
  std::vector<Update> updates_;
  std::unordered_map<std::uint64_t, std::size_t> by_key_;  // coalesce_key -> index
  double total_weight_ = 0.0;
};

class Dyconit {
 public:
  Dyconit(DyconitId id, Bounds default_bounds);

  DyconitId id() const { return id_; }

  /// Bounds applied to subscribers that don't specify their own.
  Bounds default_bounds() const { return default_bounds_; }
  void set_default_bounds(Bounds b) { default_bounds_ = b; }

  /// Subscribing twice updates the bounds and keeps the queue.
  void subscribe(SubscriberId sub, Bounds b);
  void subscribe(SubscriberId sub) { subscribe(sub, default_bounds_); }

  /// Unsubscribes and drops any queued updates (counted in stats).
  void unsubscribe(SubscriberId sub, Stats& stats);

  bool subscribed(SubscriberId sub) const { return subs_.count(sub) > 0; }
  std::size_t subscriber_count() const { return subs_.size(); }

  void set_bounds(SubscriberId sub, Bounds b);
  /// Bounds of a subscriber; default bounds if not subscribed.
  Bounds bounds_of(SubscriberId sub) const;

  /// Queues `u` toward every subscriber except `exclude` (the originator,
  /// which already knows its own action).
  void enqueue(const Update& u, SubscriberId exclude, Stats& stats);

  /// Flushes every subscriber queue that violates its bounds at `now`, in
  /// canonical (ascending subscriber id) order. If `snapshot_threshold` > 0,
  /// a queue holding more updates than that is dropped and the sink is
  /// asked for a snapshot instead. `shed` (optional) applies per-subscriber
  /// overload directives before the due check.
  void flush_due(SimTime now, FlushSink& sink, Stats& stats,
                 std::size_t snapshot_threshold = 0,
                 const ShedDirectiveMap* shed = nullptr);

  /// Phase 1 of a sharded flush (safe off the tick thread): applies `shed`,
  /// then decides whether `sub`'s queue is due at `now` and, if so, takes
  /// its contents. Touches only this subscriber's queue slot — no stats, no
  /// sink, no shared state — so distinct subscribers may be taken
  /// concurrently.
  PendingFlush take_due(SubscriberId sub, SimTime now, std::size_t snapshot_threshold,
                        const ShedDirective& shed = {});

  /// take_due into caller-owned storage: `p` is reset (its updates vector
  /// cleared, capacity kept) and filled in place. The capacity swap in
  /// SubscriberQueue::take_into means a caller that reuses one PendingFlush
  /// per shard — or per serial round — makes the flush hot path
  /// allocation-free once capacities warm. Results are identical to
  /// take_due.
  void take_due_into(SubscriberId sub, SimTime now, std::size_t snapshot_threshold,
                     const ShedDirective& shed, PendingFlush& p);

  /// Phase 2 (tick thread, canonical order): accounts `p` and hands it to
  /// the sink (deliver or request_snapshot). No-op for Kind::None.
  void settle(SubscriberId sub, PendingFlush&& p, SimTime now, FlushSink& sink,
              Stats& stats);

  /// Subscriber ids in canonical (ascending) order — the order flush work
  /// is settled in on both the serial and the parallel path. Lazily rebuilt
  /// after subscribe/unsubscribe; the reference is invalidated by either.
  const std::vector<SubscriberId>& sorted_subscribers() const;

  /// Unconditionally flushes one subscriber (no-op if queue empty).
  void flush_subscriber(SubscriberId sub, SimTime now, FlushSink& sink, Stats& stats,
                        FlushReason reason = FlushReason::Forced);

  void flush_all(SimTime now, FlushSink& sink, Stats& stats);

  /// Visits (subscriber, mutable bounds, queue) — used by adaptive policies
  /// to retune bounds in place.
  void for_each_subscriber(
      const std::function<void(SubscriberId, Bounds&, const SubscriberQueue&)>& fn);

  std::size_t total_queued() const;
  bool idle() const { return subs_.empty(); }

 private:
  struct Sub {
    Bounds bounds;
    SubscriberQueue queue;
  };

  /// Shared core of take_due / take_due_into once the Sub slot is resolved.
  void take_due_core(Sub& s, SimTime now, std::size_t snapshot_threshold,
                     const ShedDirective& shed, PendingFlush& p);

  /// Canonical-order (id, slot) pairs so the serial flush loop skips the
  /// per-pair hash lookup take_due would repeat. Slot pointers are stable
  /// (unordered_map nodes); the cache is rebuilt with sorted_subs_ after
  /// any subscribe/unsubscribe.
  const std::vector<std::pair<SubscriberId, Sub*>>& sorted_slots() const;
  void rebuild_sorted() const;

  DyconitId id_;
  Bounds default_bounds_;
  std::unordered_map<SubscriberId, Sub> subs_;
  mutable std::vector<SubscriberId> sorted_subs_;
  mutable std::vector<std::pair<SubscriberId, Sub*>> sorted_slots_;
  mutable bool subs_dirty_ = true;

  // Flush-round scratch (tick thread only), reused so the serial path stays
  // allocation-free in steady state: take_scratch_ circulates update-vector
  // capacity with the queues, views_scratch_ backs settle's borrowed views.
  PendingFlush take_scratch_;
  std::vector<FlushSink::FlushedUpdate> views_scratch_;
};

}  // namespace dyconits::dyconit
