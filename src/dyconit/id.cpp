#include "dyconit/id.h"

#include <cstdio>

namespace dyconits::dyconit {

std::optional<world::Vec3> DyconitId::center() const {
  switch (domain) {
    case Domain::ChunkBlocks:
    case Domain::ChunkEntities:
      return world::ChunkPos{x, z}.center();
    case Domain::RegionBlocks:
    case Domain::RegionEntities: {
      const double blocks_per_region = static_cast<double>(kRegionSize) * world::kChunkSize;
      return world::Vec3{(x + 0.5) * blocks_per_region, 0.0, (z + 0.5) * blocks_per_region};
    }
    default:
      return std::nullopt;
  }
}

std::string DyconitId::to_string() const {
  const char* names[] = {"invalid",       "chunk-blocks",  "chunk-entities",
                         "region-blocks", "region-entities", "global-blocks",
                         "global-entities", "custom"};
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s(%d,%d)",
                names[static_cast<std::uint8_t>(domain)], x, z);
  return buf;
}

}  // namespace dyconits::dyconit
