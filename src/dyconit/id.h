// Dyconit identity. The game world is partitioned into consistency units;
// an id names one unit: the block state or the entity state of a chunk, a
// region (kRegionSize^2 chunks), or the whole world. The granularity a
// server uses is chosen by its policy (see Policy::block_unit_for /
// entity_unit_for) and is the subject of the E8 ablation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "world/geometry.h"

namespace dyconits::dyconit {

/// Chunks per region edge for region-granularity dyconits.
inline constexpr int kRegionSize = 4;

enum class Domain : std::uint8_t {
  Invalid = 0,
  ChunkBlocks = 1,
  ChunkEntities = 2,
  RegionBlocks = 3,
  RegionEntities = 4,
  GlobalBlocks = 5,
  GlobalEntities = 6,
  Custom = 7,
};

struct DyconitId {
  Domain domain = Domain::Invalid;
  std::int32_t x = 0;  // chunk or region coordinate; 0 for global/custom
  std::int32_t z = 0;  // likewise; for Custom, (x,z) is a free 64-bit tag

  constexpr bool operator==(const DyconitId&) const = default;

  /// Canonical order (domain, x, z): the order flush work is settled in,
  /// for both the serial oracle and the parallel merge phase (DESIGN.md §9).
  constexpr bool operator<(const DyconitId& o) const {
    if (domain != o.domain) return domain < o.domain;
    if (x != o.x) return x < o.x;
    return z < o.z;
  }

  bool valid() const { return domain != Domain::Invalid; }

  /// The world-space center this unit covers, for distance-based policies.
  /// nullopt for global/custom units (no meaningful location).
  std::optional<world::Vec3> center() const;

  /// True if this unit carries entity-movement updates.
  bool is_entity_domain() const {
    return domain == Domain::ChunkEntities || domain == Domain::RegionEntities ||
           domain == Domain::GlobalEntities;
  }

  std::string to_string() const;

  // -- constructors --
  static constexpr DyconitId chunk_blocks(world::ChunkPos c) {
    return {Domain::ChunkBlocks, c.x, c.z};
  }
  static constexpr DyconitId chunk_entities(world::ChunkPos c) {
    return {Domain::ChunkEntities, c.x, c.z};
  }
  static constexpr DyconitId region_blocks(world::ChunkPos c) {
    return {Domain::RegionBlocks, world::floor_div(c.x, kRegionSize),
            world::floor_div(c.z, kRegionSize)};
  }
  static constexpr DyconitId region_entities(world::ChunkPos c) {
    return {Domain::RegionEntities, world::floor_div(c.x, kRegionSize),
            world::floor_div(c.z, kRegionSize)};
  }
  static constexpr DyconitId global_blocks() { return {Domain::GlobalBlocks, 0, 0}; }
  static constexpr DyconitId global_entities() { return {Domain::GlobalEntities, 0, 0}; }
  static constexpr DyconitId custom(std::uint64_t tag) {
    return {Domain::Custom, static_cast<std::int32_t>(tag >> 32),
            static_cast<std::int32_t>(tag & 0xFFFFFFFFull)};
  }
};

}  // namespace dyconits::dyconit

template <>
struct std::hash<dyconits::dyconit::DyconitId> {
  std::size_t operator()(const dyconits::dyconit::DyconitId& id) const noexcept {
    std::uint64_t h = static_cast<std::uint8_t>(id.domain);
    h = h * 0x100000001B3ull ^ static_cast<std::uint32_t>(id.x);
    h = h * 0x100000001B3ull ^ static_cast<std::uint32_t>(id.z);
    return static_cast<std::size_t>(h * 0x9E3779B97F4A7C15ull);
  }
};
