#include "dyconit/policies/adaptive.h"

#include "util/log.h"

namespace dyconits::dyconit {

void AdaptiveGranularityPolicy::on_tick(PolicyContext& ctx) {
  DirectorPolicy::on_tick(ctx);  // MIMD scale adjustment + slice retunes

  if (!coarse_ && scale() >= params_.coarsen_at) {
    coarse_ = true;
    Log::info("adaptive policy: coarsening to region units (scale %.1f)", scale());
    ctx.request_resubscribe();
  } else if (coarse_ && scale() <= params_.refine_at) {
    coarse_ = false;
    Log::info("adaptive policy: refining to chunk units (scale %.1f)", scale());
    ctx.request_resubscribe();
  }
}

}  // namespace dyconits::dyconit
