// Runtime granularity adaptation: a Director that re-partitions the world
// when its multiplier says the per-chunk partition is too expensive.
//
// At high sustained load the per-(chunk, subscriber) queue count itself
// costs CPU and caps batching at chunk scope; this policy then switches the
// unit mapping from per-chunk to per-region (kRegionSize^2 chunks) and asks
// the host to flush + resubscribe everything. When load falls back it
// refines to per-chunk again for tighter distance shaping. The thresholds
// are hysteretic so the partition does not flap.
#pragma once

#include "dyconit/policies/director.h"

namespace dyconits::dyconit {

struct AdaptiveGranularityParams {
  DirectorParams director;
  /// Switch chunk->region when scale reaches this...
  double coarsen_at = 6.0;
  /// ...and back region->chunk when it falls to this.
  double refine_at = 2.0;
};

class AdaptiveGranularityPolicy final : public DirectorPolicy {
 public:
  explicit AdaptiveGranularityPolicy(AdaptiveGranularityParams params = {})
      : DirectorPolicy(params.director), params_(params) {}

  std::string name() const override { return "adaptive"; }

  DyconitId block_unit_for(world::ChunkPos c) const override {
    return coarse_ ? DyconitId::region_blocks(c) : DyconitId::chunk_blocks(c);
  }
  DyconitId entity_unit_for(world::ChunkPos c) const override {
    return coarse_ ? DyconitId::region_entities(c) : DyconitId::chunk_entities(c);
  }

  void on_tick(PolicyContext& ctx) override;

  bool coarse() const { return coarse_; }

 private:
  AdaptiveGranularityParams params_;
  bool coarse_ = false;
};

}  // namespace dyconits::dyconit
