#include "dyconit/policies/aoi.h"

#include <algorithm>
#include <cmath>

namespace dyconits::dyconit {

Bounds AoiPolicy::scaled_bounds(const DyconitId& unit, const world::Vec3& subscriber_pos,
                                double scale) const {
  const auto center = unit.center();
  if (!center.has_value()) {
    // Global/custom units have no location; treat as maximally distant.
    const bool ent = unit.is_entity_domain();
    return {params_.max_staleness,
            ent ? params_.max_entity_numerical : params_.max_block_numerical};
  }

  // Chebyshev distance in chunks between the subscriber and the unit.
  const double dx = std::abs(center->x - subscriber_pos.x);
  const double dz = std::abs(center->z - subscriber_pos.z);
  const double dist_chunks = std::max(dx, dz) / world::kChunkSize;
  const double beyond = dist_chunks - params_.near_chunks;
  if (beyond <= 0.0) return Bounds::zero();

  const double theta_ms =
      std::min(static_cast<double>(params_.staleness_per_chunk.count_millis()) * beyond *
                   scale,
               static_cast<double>(params_.max_staleness.count_millis()) * scale);
  const bool ent = unit.is_entity_domain();
  const double per_chunk =
      ent ? params_.entity_numerical_per_chunk : params_.block_numerical_per_chunk;
  const double cap = ent ? params_.max_entity_numerical : params_.max_block_numerical;
  const double numerical = std::min(per_chunk * beyond * scale, cap * scale);

  return {SimDuration::millis(static_cast<std::int64_t>(theta_ms)), numerical};
}

}  // namespace dyconits::dyconit
