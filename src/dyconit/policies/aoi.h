// Distance-scaled bounds (area-of-interest shaped, but graded rather than
// a hard cutoff): units within `near_chunks` of the subscriber get zero
// bounds — updates a player actually looks at arrive with vanilla latency,
// which is how the paper scales "without increasing game latency" — and
// bounds grow with distance beyond that, letting far updates be delayed
// and coalesced.
#pragma once

#include "dyconit/policy.h"

namespace dyconits::dyconit {

struct AoiParams {
  /// Chebyshev chunk distance within which bounds are zero.
  int near_chunks = 2;
  /// Staleness added per chunk of distance beyond near.
  SimDuration staleness_per_chunk = SimDuration::millis(150);
  SimDuration max_staleness = SimDuration::millis(2500);
  /// Numerical bound added per chunk beyond near: blocks of positional
  /// drift for entity units; unseen block edits for block units.
  double entity_numerical_per_chunk = 0.6;
  double block_numerical_per_chunk = 2.0;
  double max_entity_numerical = 6.0;
  double max_block_numerical = 24.0;
};

class AoiPolicy : public Policy {
 public:
  explicit AoiPolicy(AoiParams params = {}) : params_(params) {}

  std::string name() const override { return "aoi"; }

  Bounds bounds_for(const DyconitId& unit, const world::Vec3& subscriber_pos) const override {
    return scaled_bounds(unit, subscriber_pos, 1.0);
  }

  const AoiParams& params() const { return params_; }

 protected:
  /// Distance-shaped bounds with all non-zero components multiplied by
  /// `scale` (the Director's adaptation knob).
  Bounds scaled_bounds(const DyconitId& unit, const world::Vec3& subscriber_pos,
                       double scale) const;

 private:
  AoiParams params_;
};

}  // namespace dyconits::dyconit
