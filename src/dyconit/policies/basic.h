// The non-adaptive policies: Zero (vanilla-equivalent), Infinite (lower
// bound on traffic), and StaticConit (classic TACT: one fixed bound for
// every subscription, the paper's "existing techniques" strawman).
#pragma once

#include "dyconit/policy.h"

namespace dyconits::dyconit {

/// Every bound zero: every update flushes on the tick it was made —
/// byte-for-byte the consistency of the vanilla broadcast path, via the
/// middleware. Used to measure middleware overhead and as the E1 baseline.
class ZeroPolicy final : public Policy {
 public:
  std::string name() const override { return "zero"; }
  Bounds bounds_for(const DyconitId&, const world::Vec3&) const override {
    return Bounds::zero();
  }
};

/// Bounds so large they never trip: updates only move on forced flushes.
/// Not a playable configuration — it is the bandwidth floor (only chunk
/// loads, spawns and keep-alives remain).
class InfinitePolicy final : public Policy {
 public:
  std::string name() const override { return "infinite"; }
  Bounds bounds_for(const DyconitId&, const world::Vec3&) const override {
    return Bounds::infinite();
  }
};

/// Fixed (staleness, numerical) bounds for every subscription regardless of
/// distance or load — a conit system without the "dy".
class StaticConitPolicy final : public Policy {
 public:
  StaticConitPolicy(SimDuration staleness, double numerical)
      : bounds_{staleness, numerical} {}

  std::string name() const override { return "static-conit"; }
  Bounds bounds_for(const DyconitId&, const world::Vec3&) const override { return bounds_; }

 private:
  Bounds bounds_;
};

}  // namespace dyconits::dyconit
