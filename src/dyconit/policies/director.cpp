#include "dyconit/policies/director.h"

#include <algorithm>

namespace dyconits::dyconit {

Bounds DirectorPolicy::bounds_for(const DyconitId& unit,
                                  const world::Vec3& subscriber_pos) const {
  Bounds b = scaled_bounds(unit, subscriber_pos, scale_);
  if (!b.is_zero() || scale_ <= params_.near_pressure_scale) return b;
  // Sustained overload: spend a perceptually minor amount of nearby
  // consistency too. `over` grows from 0 at the threshold to 1 at max.
  const double over = (scale_ - params_.near_pressure_scale) /
                      std::max(params_.max_scale - params_.near_pressure_scale, 1e-9);
  b.staleness = SimDuration::micros(static_cast<std::int64_t>(
      static_cast<double>(params_.near_staleness_cap.count_micros()) * over));
  const double cap = unit.is_entity_domain() ? params_.near_entity_numerical_cap
                                             : params_.near_block_numerical_cap;
  b.numerical = cap * over;
  return b;
}

void DirectorPolicy::on_tick(PolicyContext& ctx) {
  const LoadSample& load = ctx.load();

  // Drain one slice of a pending reshape per tick.
  if (retune_cursor_ < kRetuneSlices) {
    retune_bounds_slice(*this, ctx, retune_cursor_, kRetuneSlices);
    ++retune_cursor_;
  }

  if (primed_ && load.now - last_adjust_ < params_.adjust_interval) return;
  last_adjust_ = load.now;
  primed_ = true;

  const double tick_pressure =
      static_cast<double>(load.tick_duration.count_micros()) /
      static_cast<double>(load.tick_budget.count_micros());
  double bw_pressure = 0.0;
  if (load.bandwidth_budget_bps > 0.0) {
    bw_pressure = load.egress_bytes_per_sec * 8.0 / load.bandwidth_budget_bps;
  }

  const double old_scale = scale_;
  if (load.overload_rung >= 1 || tick_pressure > params_.tick_high ||
      bw_pressure > params_.bandwidth_high) {
    // An engaged overload ladder overrides the MIMD thresholds: the
    // watchdog already decided the bounds must widen, so spend scale.
    scale_ = std::min(scale_ * params_.increase, params_.max_scale);
  } else if (tick_pressure < params_.tick_low &&
             (load.bandwidth_budget_bps <= 0.0 || bw_pressure < params_.bandwidth_low)) {
    scale_ = std::max(scale_ * params_.decrease, params_.min_scale);
  }

  // Reshaping is the expensive part (touches every subscription), so only
  // do it when the multiplier actually moved — and spread it over the next
  // kRetuneSlices ticks rather than stalling this one.
  if (scale_ != old_scale) retune_cursor_ = 0;
}

}  // namespace dyconits::dyconit
