// The Director: the paper's dynamic policy. Starts from the AOI distance
// shape and scales its non-zero bounds by an adaptive multiplier driven by
// observed load — multiplicative increase when the tick budget or the
// bandwidth budget is under pressure, gentle decrease when there is slack.
// Near-distance bounds stay pinned at zero at every multiplier, so game
// latency for what a player is looking at never degrades; only the
// consistency of the periphery is spent to buy capacity.
#pragma once

#include "dyconit/policies/aoi.h"

namespace dyconits::dyconit {

struct DirectorParams {
  AoiParams aoi;
  /// Multiplier range. 1.0 = plain AOI shape.
  double min_scale = 1.0;
  double max_scale = 16.0;
  /// Load targets: act when tick time exceeds `tick_high` of the budget,
  /// relax when below `tick_low` (and likewise for bandwidth).
  double tick_high = 0.70;
  double tick_low = 0.45;
  double bandwidth_high = 0.85;
  double bandwidth_low = 0.55;
  /// Adjustment factors (MIMD).
  double increase = 1.30;
  double decrease = 0.93;
  /// Minimum time between adjustments.
  SimDuration adjust_interval = SimDuration::millis(1000);

  /// Second stage: once scale exceeds this (sustained overload — e.g. a
  /// packed village where everyone is "near" and the distance shape has no
  /// slack left), near units too get a small *staleness* bound, capped at
  /// the perceptually minor value below. At or below this scale, near
  /// stays exactly zero.
  ///
  /// The near stage is staleness-driven on purpose: numerical bounds are
  /// per-queue aggregates (TACT semantics — the summed weight of all unseen
  /// writes in the unit), so in a dense unit even a generous per-entity
  /// budget trips every tick and suppresses nothing. A staleness bound
  /// already limits positional drift to walk_speed x θ (≈0.65 blocks at
  /// 150 ms); set the numerical caps finite to additionally bound edit
  /// bursts.
  double near_pressure_scale = 4.0;
  SimDuration near_staleness_cap = SimDuration::millis(150);
  double near_entity_numerical_cap = 1e9;
  double near_block_numerical_cap = 1e9;
};

class DirectorPolicy : public AoiPolicy {
 public:
  explicit DirectorPolicy(DirectorParams params = {})
      : AoiPolicy(params.aoi), params_(params), scale_(params.min_scale) {}

  std::string name() const override { return "director"; }

  Bounds bounds_for(const DyconitId& unit,
                    const world::Vec3& subscriber_pos) const override;

  void on_tick(PolicyContext& ctx) override;

  /// Current adaptation multiplier (1 = tightest, max_scale = loosest).
  double scale() const { return scale_; }

  /// Ticks a scale change's retune is spread over (amortizes the
  /// O(subscriptions) reshape so it never stalls a single tick).
  static constexpr std::size_t kRetuneSlices = 8;

 private:
  DirectorParams params_;
  double scale_;
  SimTime last_adjust_;
  bool primed_ = false;
  std::size_t retune_cursor_ = kRetuneSlices;  // == done
};

}  // namespace dyconits::dyconit
