#include "dyconit/policies/factory.h"

#include <cstdlib>
#include <vector>

#include "dyconit/policies/adaptive.h"
#include "dyconit/policies/basic.h"
#include "dyconit/policies/director.h"

namespace dyconits::dyconit {
namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

GranularityPolicy::GranularityPolicy(std::unique_ptr<Policy> inner, Granularity g)
    : inner_(std::move(inner)), granularity_(g) {}

std::string GranularityPolicy::name() const {
  const char* suffix = granularity_ == Granularity::Region ? "@region" : "@global";
  return inner_->name() + suffix;
}

DyconitId GranularityPolicy::block_unit_for(world::ChunkPos c) const {
  switch (granularity_) {
    case Granularity::Chunk: return DyconitId::chunk_blocks(c);
    case Granularity::Region: return DyconitId::region_blocks(c);
    case Granularity::Global: return DyconitId::global_blocks();
  }
  return DyconitId::chunk_blocks(c);
}

DyconitId GranularityPolicy::entity_unit_for(world::ChunkPos c) const {
  switch (granularity_) {
    case Granularity::Chunk: return DyconitId::chunk_entities(c);
    case Granularity::Region: return DyconitId::region_entities(c);
    case Granularity::Global: return DyconitId::global_entities();
  }
  return DyconitId::chunk_entities(c);
}

std::unique_ptr<Policy> make_policy(const std::string& spec) {
  std::string base = spec;
  Granularity gran = Granularity::Chunk;
  if (const auto at = spec.find('@'); at != std::string::npos) {
    base = spec.substr(0, at);
    const std::string g = spec.substr(at + 1);
    if (g == "chunk") {
      gran = Granularity::Chunk;
    } else if (g == "region") {
      gran = Granularity::Region;
    } else if (g == "global") {
      gran = Granularity::Global;
    } else {
      return nullptr;
    }
  }

  const auto parts = split(base, ':');
  std::unique_ptr<Policy> policy;
  if (parts[0] == "zero") {
    policy = std::make_unique<ZeroPolicy>();
  } else if (parts[0] == "infinite") {
    policy = std::make_unique<InfinitePolicy>();
  } else if (parts[0] == "static") {
    SimDuration staleness = SimDuration::millis(250);
    double numerical = 4.0;
    if (parts.size() > 1) staleness = SimDuration::millis(std::atoll(parts[1].c_str()));
    if (parts.size() > 2) numerical = std::atof(parts[2].c_str());
    policy = std::make_unique<StaticConitPolicy>(staleness, numerical);
  } else if (parts[0] == "aoi") {
    policy = std::make_unique<AoiPolicy>();
  } else if (parts[0] == "director") {
    policy = std::make_unique<DirectorPolicy>();
  } else if (parts[0] == "adaptive") {
    policy = std::make_unique<AdaptiveGranularityPolicy>();
  } else {
    return nullptr;
  }

  if (gran != Granularity::Chunk) {
    policy = std::make_unique<GranularityPolicy>(std::move(policy), gran);
  }
  return policy;
}

}  // namespace dyconits::dyconit
