// Policy construction from a spec string, used by benches, examples, and
// tests to sweep configurations:
//
//   "zero" | "infinite" | "aoi" | "director"
//   "static:<staleness_ms>:<numerical>"      e.g. "static:250:4"
//   any of the above + "@chunk" | "@region" | "@global"  (unit granularity)
//
// Unknown specs return nullptr.
#pragma once

#include <memory>
#include <string>

#include "dyconit/policy.h"

namespace dyconits::dyconit {

enum class Granularity { Chunk, Region, Global };

/// Decorator that re-maps updates onto coarser consistency units while
/// delegating all bound decisions to the wrapped policy.
class GranularityPolicy final : public Policy {
 public:
  GranularityPolicy(std::unique_ptr<Policy> inner, Granularity g);

  std::string name() const override;
  DyconitId block_unit_for(world::ChunkPos c) const override;
  DyconitId entity_unit_for(world::ChunkPos c) const override;
  Bounds bounds_for(const DyconitId& unit, const world::Vec3& pos) const override {
    return inner_->bounds_for(unit, pos);
  }
  void on_tick(PolicyContext& ctx) override { inner_->on_tick(ctx); }

 private:
  std::unique_ptr<Policy> inner_;
  Granularity granularity_;
};

std::unique_ptr<Policy> make_policy(const std::string& spec);

}  // namespace dyconits::dyconit
