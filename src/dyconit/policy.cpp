#include "dyconit/policy.h"

#include <unordered_map>

namespace dyconits::dyconit {

void retune_bounds_slice(const Policy& policy, PolicyContext& ctx, std::size_t slice,
                         std::size_t slice_count) {
  std::unordered_map<SubscriberId, world::Vec3> pos;
  pos.reserve(ctx.players().size());
  for (const auto& p : ctx.players()) pos.emplace(p.sub, p.pos);

  ctx.system().for_each([&](Dyconit& d) {
    if (slice_count > 1 &&
        std::hash<DyconitId>{}(d.id()) % slice_count != slice) {
      return;
    }
    d.for_each_subscriber([&](SubscriberId sub, Bounds& b, const SubscriberQueue&) {
      const auto it = pos.find(sub);
      if (it != pos.end()) b = policy.bounds_for(d.id(), it->second);
    });
  });
}

void retune_all_bounds(const Policy& policy, PolicyContext& ctx) {
  retune_bounds_slice(policy, ctx, 0, 1);
}

}  // namespace dyconits::dyconit
