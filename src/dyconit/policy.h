// Policy interface — where "dynamically managed" happens.
//
// A policy makes three decisions the paper assigns to the dyconit system:
//   1. *Granularity*: which consistency unit an update belongs to
//      (per-chunk, per-region, or global — the E8 ablation axis).
//   2. *Bounds*: the (staleness, numerical) bounds of each subscription,
//      typically as a function of subscriber-to-unit distance.
//   3. *Adaptation*: per-tick retuning from observed load (tick duration,
//      egress bandwidth) — loosening bounds under pressure and tightening
//      them when capacity returns (the Director policy).
//
// The game server calls bounds_for() whenever a subscription is created or
// its subscriber moves across a chunk boundary, and on_tick() once per
// policy interval with a LoadSample.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dyconit/system.h"
#include "entity/entity.h"
#include "util/sim_time.h"
#include "world/geometry.h"

namespace dyconits::dyconit {

/// A player as the policy sees it.
struct PlayerView {
  SubscriberId sub = kNoSubscriber;
  entity::EntityId entity = entity::kInvalidEntity;
  world::Vec3 pos;
  /// Smoothed network round-trip time (zero until measured). Lets a policy
  /// grant high-latency clients no less total delay budget than their link
  /// already imposes.
  SimDuration rtt;
};

/// Load measurements the server feeds the policy.
struct LoadSample {
  SimTime now;
  SimDuration tick_duration;  // measured CPU time of the last game tick
  SimDuration tick_budget;    // nominal tick length (50 ms)
  double egress_bytes_per_sec = 0.0;   // server uplink, recent window
  double bandwidth_budget_bps = 0.0;   // 0 = unconstrained
  std::size_t players = 0;
  /// Current overload-ladder rung (0 = Normal; see server::OverloadConfig).
  /// Adaptive policies treat any rung >= 1 as a hard pressure signal —
  /// the watchdog has already decided bounds must widen.
  int overload_rung = 0;
};

class PolicyContext {
 public:
  PolicyContext(DyconitSystem& system, const std::vector<PlayerView>& players,
                const LoadSample& load)
      : system_(system), players_(players), load_(load) {}

  DyconitSystem& system() { return system_; }
  const std::vector<PlayerView>& players() const { return players_; }
  const LoadSample& load() const { return load_; }

  /// Position of a subscriber, if it is a known player.
  const PlayerView* find_player(SubscriberId sub) const {
    for (const auto& p : players_) {
      if (p.sub == sub) return &p;
    }
    return nullptr;
  }

  /// Asks the host to flush everything owed and rebuild every subscription
  /// from the policy's (possibly changed) unit mapping. Used by policies
  /// that re-partition the world at runtime (granularity adaptation).
  void request_resubscribe() { resubscribe_ = true; }
  bool resubscribe_requested() const { return resubscribe_; }

 private:
  DyconitSystem& system_;
  const std::vector<PlayerView>& players_;
  const LoadSample& load_;
  bool resubscribe_ = false;
};

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// Consistency unit carrying block updates originating in chunk `c`.
  virtual DyconitId block_unit_for(world::ChunkPos c) const {
    return DyconitId::chunk_blocks(c);
  }
  /// Consistency unit carrying movement of entities currently in chunk `c`.
  virtual DyconitId entity_unit_for(world::ChunkPos c) const {
    return DyconitId::chunk_entities(c);
  }

  /// Bounds for a subscriber standing at `subscriber_pos` on unit `unit`.
  virtual Bounds bounds_for(const DyconitId& unit,
                            const world::Vec3& subscriber_pos) const = 0;

  /// Periodic adaptation hook. Default: static policy, no-op.
  virtual void on_tick(PolicyContext& ctx) { (void)ctx; }
};

/// Re-derives every subscription's bounds from policy->bounds_for using
/// current player positions. Shared by adaptive policies and by the server
/// after a player crosses chunks. Subscribers without a player view keep
/// their bounds.
void retune_all_bounds(const Policy& policy, PolicyContext& ctx);

/// Slice variant for amortizing a full retune across ticks: only dyconits
/// whose id hashes into `slice` of `slice_count` buckets are touched.
/// slice_count == 1 degenerates to retune_all_bounds.
void retune_bounds_slice(const Policy& policy, PolicyContext& ctx, std::size_t slice,
                         std::size_t slice_count);

}  // namespace dyconits::dyconit
