#include "dyconit/system.h"

#include "trace/trace.h"

namespace dyconits::dyconit {

Dyconit& DyconitSystem::get_or_create(DyconitId id, Bounds default_bounds) {
  auto it = dyconits_.find(id);
  if (it != dyconits_.end()) return *it->second;
  auto [ins, _] = dyconits_.emplace(id, std::make_unique<Dyconit>(id, default_bounds));
  return *ins->second;
}

Dyconit* DyconitSystem::find(DyconitId id) {
  const auto it = dyconits_.find(id);
  return it == dyconits_.end() ? nullptr : it->second.get();
}

const Dyconit* DyconitSystem::find(DyconitId id) const {
  const auto it = dyconits_.find(id);
  return it == dyconits_.end() ? nullptr : it->second.get();
}

void DyconitSystem::subscribe(DyconitId id, SubscriberId sub, Bounds b) {
  get_or_create(id).subscribe(sub, b);
}

void DyconitSystem::unsubscribe(DyconitId id, SubscriberId sub) {
  if (Dyconit* d = find(id)) d->unsubscribe(sub, stats_);
}

void DyconitSystem::unsubscribe_all(SubscriberId sub) {
  for (auto& [id, d] : dyconits_) d->unsubscribe(sub, stats_);
}

bool DyconitSystem::is_subscribed(DyconitId id, SubscriberId sub) const {
  const Dyconit* d = find(id);
  return d != nullptr && d->subscribed(sub);
}

void DyconitSystem::set_bounds(DyconitId id, SubscriberId sub, Bounds b) {
  if (Dyconit* d = find(id)) d->set_bounds(sub, b);
}

void DyconitSystem::update(DyconitId id, Update u, SubscriberId exclude) {
  TRACE_SCOPE("dyconit.enqueue");
  if (u.created == SimTime::zero()) u.created = clock_.now();
  get_or_create(id).enqueue(u, exclude, stats_);
}

void DyconitSystem::tick(FlushSink& sink) {
  const SimTime now = clock_.now();
  {
    TRACE_SCOPE("dyconit.flush_due");
    for (auto& [id, d] : dyconits_) d->flush_due(now, sink, stats_, snapshot_threshold_);
  }
  // GC: a dyconit with no subscribers holds no queues (enqueue drops when
  // subscriber-less), so it can be removed without losing updates.
  TRACE_SCOPE("dyconit.gc");
  for (auto it = dyconits_.begin(); it != dyconits_.end();) {
    if (it->second->idle()) {
      it = dyconits_.erase(it);
    } else {
      ++it;
    }
  }
}

void DyconitSystem::flush_all(FlushSink& sink) {
  const SimTime now = clock_.now();
  for (auto& [id, d] : dyconits_) d->flush_all(now, sink, stats_);
}

void DyconitSystem::flush_subscriber(SubscriberId sub, FlushSink& sink) {
  const SimTime now = clock_.now();
  for (auto& [id, d] : dyconits_) d->flush_subscriber(sub, now, sink, stats_);
}

void DyconitSystem::resync_subscriber(SubscriberId sub, FlushSink& sink) {
  TRACE_SCOPE("dyconit.resync");
  const SimTime now = clock_.now();
  for (auto& [id, d] : dyconits_) {
    if (!d->subscribed(sub)) continue;
    d->flush_subscriber(sub, now, sink, stats_);
    sink.request_snapshot(sub, id);
    ++stats_.snapshots_requested;
  }
  ++stats_.resyncs;
}

void DyconitSystem::for_each(const std::function<void(Dyconit&)>& fn) {
  for (auto& [id, d] : dyconits_) fn(*d);
}

std::size_t DyconitSystem::total_queued() const {
  std::size_t n = 0;
  for (const auto& [id, d] : dyconits_) n += d->total_queued();
  return n;
}

}  // namespace dyconits::dyconit
