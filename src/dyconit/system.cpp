#include "dyconit/system.h"

#include <algorithm>

#include "trace/trace.h"
#include "util/thread_pool.h"

namespace dyconits::dyconit {

std::size_t flush_shard_of(SubscriberId sub, std::size_t shards) {
  if (shards <= 1) return 0;
  std::uint64_t z = static_cast<std::uint64_t>(sub) + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<std::size_t>(z % shards);
}

Dyconit& DyconitSystem::get_or_create(DyconitId id, Bounds default_bounds) {
  auto it = dyconits_.find(id);
  if (it != dyconits_.end()) return *it->second;
  auto [ins, _] = dyconits_.emplace(id, std::make_unique<Dyconit>(id, default_bounds));
  dyconits_dirty_ = true;
  return *ins->second;
}

const std::vector<Dyconit*>& DyconitSystem::sorted_dyconits() {
  if (dyconits_dirty_) {
    sorted_cache_.clear();
    sorted_cache_.reserve(dyconits_.size());
    for (auto& [id, d] : dyconits_) sorted_cache_.push_back(d.get());
    std::sort(sorted_cache_.begin(), sorted_cache_.end(),
              [](const Dyconit* a, const Dyconit* b) { return a->id() < b->id(); });
    dyconits_dirty_ = false;
  }
  return sorted_cache_;
}

void DyconitSystem::gc() {
  // GC: a dyconit with no subscribers holds no queues (enqueue drops when
  // subscriber-less), so it can be removed without losing updates.
  TRACE_SCOPE("dyconit.gc");
  for (auto it = dyconits_.begin(); it != dyconits_.end();) {
    if (it->second->idle()) {
      it = dyconits_.erase(it);
      dyconits_dirty_ = true;
    } else {
      ++it;
    }
  }
}

Dyconit* DyconitSystem::find(DyconitId id) {
  const auto it = dyconits_.find(id);
  return it == dyconits_.end() ? nullptr : it->second.get();
}

const Dyconit* DyconitSystem::find(DyconitId id) const {
  const auto it = dyconits_.find(id);
  return it == dyconits_.end() ? nullptr : it->second.get();
}

void DyconitSystem::subscribe(DyconitId id, SubscriberId sub, Bounds b) {
  get_or_create(id).subscribe(sub, b);
}

void DyconitSystem::unsubscribe(DyconitId id, SubscriberId sub) {
  if (Dyconit* d = find(id)) d->unsubscribe(sub, stats_);
}

void DyconitSystem::unsubscribe_all(SubscriberId sub) {
  for (auto& [id, d] : dyconits_) d->unsubscribe(sub, stats_);
}

bool DyconitSystem::is_subscribed(DyconitId id, SubscriberId sub) const {
  const Dyconit* d = find(id);
  return d != nullptr && d->subscribed(sub);
}

void DyconitSystem::set_bounds(DyconitId id, SubscriberId sub, Bounds b) {
  if (Dyconit* d = find(id)) d->set_bounds(sub, b);
}

void DyconitSystem::update(DyconitId id, Update u, SubscriberId exclude) {
  TRACE_SCOPE("dyconit.enqueue");
  if (u.created == SimTime::zero()) u.created = clock_.now();
  get_or_create(id).enqueue(u, exclude, stats_);
}

void DyconitSystem::set_shed_directive(SubscriberId sub, ShedDirective d) {
  if (d.any()) {
    shed_[sub] = d;
  } else {
    shed_.erase(sub);
  }
}

const ShedDirective* DyconitSystem::shed_directive(SubscriberId sub) const {
  const auto it = shed_.find(sub);
  return it == shed_.end() ? nullptr : &it->second;
}

void DyconitSystem::tick(FlushSink& sink) { tick(sink, nullptr, nullptr); }

void DyconitSystem::tick(FlushSink& sink, util::ThreadPool* pool,
                         ParallelFlushHost* host) {
  const SimTime now = clock_.now();
  const std::size_t shards =
      (pool != nullptr && host != nullptr) ? pool->concurrency() : 1;

  const ShedDirectiveMap* shed = shed_.empty() ? nullptr : &shed_;

  if (shards <= 1) {
    TRACE_SCOPE("dyconit.flush_due");
    for (Dyconit* d : sorted_dyconits()) {
      d->flush_due(now, sink, stats_, snapshot_threshold_, shed);
    }
    gc();
    return;
  }

  // Phase 1 (workers): every (dyconit, subscriber) pair is checked and, if
  // due, taken and packed into shard-local staging. A pair's shard is a
  // pure function of the subscriber id, so no two shards ever touch the
  // same subscriber's queue or session, and sessions/stats stay read-only.
  plan_.clear();
  for (Dyconit* d : sorted_dyconits()) {
    for (const SubscriberId sub : d->sorted_subscribers()) {
      plan_.push_back({d, sub});
    }
  }
  results_.resize(plan_.size());
  host->begin_flush_round(shards);
  {
    TRACE_SCOPE("dyconit.flush_workers");
    pool->run_shards([&](std::size_t shard) {
      TRACE_SCOPE("dyconit.flush_shard");
      static const ShedDirective kNoShed;
      std::vector<FlushSink::FlushedUpdate> views;
      for (std::size_t i = 0; i < plan_.size(); ++i) {
        if (flush_shard_of(plan_[i].sub, shards) != shard) continue;
        FlushResult& r = results_[i];
        const ShedDirective* dir = &kNoShed;
        if (shed != nullptr) {
          const auto it = shed->find(plan_[i].sub);
          if (it != shed->end()) dir = &it->second;
        }
        plan_[i].d->take_due_into(plan_[i].sub, now, snapshot_threshold_, *dir,
                                  r.pending);
        r.shard = static_cast<std::uint32_t>(shard);
        r.handle = 0;
        if (r.pending.kind == PendingFlush::Kind::Flush) {
          views.clear();
          views.reserve(r.pending.updates.size());
          for (const Update& u : r.pending.updates) {
            views.push_back({&u.msg, u.created, u.weight});
          }
          r.handle = host->pack_flush(shard, plan_[i].sub, views);
        }
      }
    });
  }

  // Phase 2 (tick thread): settle in canonical order — the exact order the
  // serial oracle uses — so stats (including the non-associative
  // weight_delivered sum) and the wire byte stream are identical.
  {
    TRACE_SCOPE("dyconit.flush_merge");
    for (std::size_t i = 0; i < plan_.size(); ++i) {
      FlushResult& r = results_[i];
      // Shed counters fold in before the kind switch, mirroring settle():
      // canonical order keeps the shed_weight FP sum oracle-identical.
      if (r.pending.shed > 0) {
        stats_.shed_updates += r.pending.shed;
        stats_.shed_weight += r.pending.shed_weight;
      }
      switch (r.pending.kind) {
        case PendingFlush::Kind::None:
          break;
        case PendingFlush::Kind::Snapshot:
          stats_.dropped_snapshot += r.pending.dropped;
          ++stats_.snapshots_requested;
          sink.request_snapshot(plan_[i].sub, plan_[i].d->id());
          break;
        case PendingFlush::Kind::Flush:
          account_flush(r.pending, now, stats_);
          host->emit_packed(r.shard, r.handle, plan_[i].sub);
          break;
      }
      // Destroy the updates (their messages own heap) but keep the vector's
      // capacity — the worker writing results_[i] next round recycles it.
      r.pending.reset();
    }
  }
  gc();
}

void DyconitSystem::flush_all(FlushSink& sink) {
  const SimTime now = clock_.now();
  for (Dyconit* d : sorted_dyconits()) d->flush_all(now, sink, stats_);
}

void DyconitSystem::flush_subscriber(SubscriberId sub, FlushSink& sink) {
  const SimTime now = clock_.now();
  for (Dyconit* d : sorted_dyconits()) d->flush_subscriber(sub, now, sink, stats_);
}

void DyconitSystem::resync_subscriber(SubscriberId sub, FlushSink& sink) {
  TRACE_SCOPE("dyconit.resync");
  const SimTime now = clock_.now();
  for (Dyconit* d : sorted_dyconits()) {
    if (!d->subscribed(sub)) continue;
    d->flush_subscriber(sub, now, sink, stats_);
    sink.request_snapshot(sub, d->id());
    ++stats_.snapshots_requested;
  }
  ++stats_.resyncs;
}

void DyconitSystem::for_each(const std::function<void(Dyconit&)>& fn) {
  for (auto& [id, d] : dyconits_) fn(*d);
}

std::size_t DyconitSystem::total_queued() const {
  std::size_t n = 0;
  for (const auto& [id, d] : dyconits_) n += d->total_queued();
  return n;
}

}  // namespace dyconits::dyconit
