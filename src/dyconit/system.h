// DyconitSystem — the middleware facade the game server talks to.
//
// The integration surface is deliberately small (the paper's "thin
// middleware" claim): the server (1) subscribes/unsubscribes players as
// their interest sets change, (2) routes every state update through
// update(), and (3) calls tick() once per game tick with a sink that packs
// flushed updates into protocol frames. Everything else — queues, bounds
// enforcement, coalescing — is internal.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dyconit/dyconit.h"
#include "util/sim_time.h"

namespace dyconits::util {
class ThreadPool;
}

namespace dyconits::dyconit {

/// Server-side half of the parallel flush pipeline (DESIGN.md §9). Workers
/// call pack_flush concurrently — one call per due (dyconit, subscriber)
/// pair, staging serialized frames shard-locally and reading shared server
/// state only — and the tick thread then calls emit_packed in canonical
/// order to stamp sequence numbers and put the staged frames on the wire.
/// The split keeps net/session types out of the dyconit layer and keeps
/// every shared-state mutation on the tick thread.
class ParallelFlushHost {
 public:
  virtual ~ParallelFlushHost() = default;

  /// Tick thread, before workers start: size per-shard staging for a round.
  virtual void begin_flush_round(std::size_t shards) = 0;

  /// Worker context: packs one flushed batch into shard `shard`'s staging
  /// and returns a handle for emit_packed. Must not write anything outside
  /// that shard's staging.
  virtual std::uint32_t pack_flush(
      std::size_t shard, SubscriberId to,
      const std::vector<FlushSink::FlushedUpdate>& updates) = 0;

  /// Tick thread, canonical order: sends the frames staged under `handle`.
  virtual void emit_packed(std::size_t shard, std::uint32_t handle,
                           SubscriberId to) = 0;
};

/// Deterministic shard assignment for a subscriber's flush work: a
/// splitmix64 finalizer over the id, mod `shards`. Never std::hash — its
/// value is implementation-defined and the shard function is part of the
/// determinism contract (DESIGN.md §9).
std::size_t flush_shard_of(SubscriberId sub, std::size_t shards);

class DyconitSystem {
 public:
  explicit DyconitSystem(const SimClock& clock) : clock_(clock) {}

  /// Creates the dyconit on first use. `default_bounds` only applies at
  /// creation; existing dyconits keep their configuration.
  Dyconit& get_or_create(DyconitId id, Bounds default_bounds = Bounds::zero());
  Dyconit* find(DyconitId id);
  const Dyconit* find(DyconitId id) const;

  void subscribe(DyconitId id, SubscriberId sub, Bounds b);
  void unsubscribe(DyconitId id, SubscriberId sub);
  /// Drops every subscription of `sub` (player disconnect).
  void unsubscribe_all(SubscriberId sub);
  bool is_subscribed(DyconitId id, SubscriberId sub) const;
  void set_bounds(DyconitId id, SubscriberId sub, Bounds b);

  /// Queues an update for all subscribers of `id` except `exclude`. If the
  /// dyconit does not exist it is created with zero default bounds (and the
  /// update, having no subscribers, is dropped and counted).
  void update(DyconitId id, Update u, SubscriberId exclude = kNoSubscriber);

  /// One middleware tick: flushes every (dyconit, subscriber) queue that
  /// violates its bounds at clock.now() in canonical (dyconit, subscriber)
  /// order, then garbage-collects dyconits with no subscribers.
  void tick(FlushSink& sink);

  /// The same tick, sharded (DESIGN.md §9): flush work is partitioned by
  /// flush_shard_of(subscriber) across `pool`; workers take due queues and
  /// pack frames into `host`'s per-shard staging, then the calling thread
  /// merges — stats accounting and frame emission — in the same canonical
  /// order the serial path uses, so wire bytes and counters are identical
  /// byte for byte. Falls back to the serial path when pool/host is null or
  /// the pool has one executor.
  void tick(FlushSink& sink, util::ThreadPool* pool, ParallelFlushHost* host);

  /// Forced full flush (server shutdown, snapshot, tests).
  void flush_all(FlushSink& sink);
  /// Forced flush of everything owed to one subscriber.
  void flush_subscriber(SubscriberId sub, FlushSink& sink);

  /// Recovery handshake (DESIGN.md §18): for every dyconit `sub` is
  /// subscribed to, flush the owed queue, then ask the game for an
  /// authoritative snapshot (FlushSink::request_snapshot) so state lost on
  /// the wire is replayed. The subscriber's queues are empty afterwards —
  /// it is provably caught up as far as the middleware is concerned.
  void resync_subscriber(SubscriberId sub, FlushSink& sink);

  void for_each(const std::function<void(Dyconit&)>& fn);

  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }
  void set_record_staleness(bool on) { stats_.record_staleness = on; }

  /// Queues longer than this are dropped at tick() in favor of a snapshot
  /// (FlushSink::request_snapshot). 0 disables.
  void set_snapshot_threshold(std::size_t n) { snapshot_threshold_ = n; }
  std::size_t snapshot_threshold() const { return snapshot_threshold_; }

  /// Overload control (DESIGN.md §10): installs the shed directive applied
  /// to every queue owed to `sub` at subsequent tick()s (both serial and
  /// sharded paths), until cleared. A directive with any()==false clears.
  void set_shed_directive(SubscriberId sub, ShedDirective d);
  void clear_shed_directives() { shed_.clear(); }
  /// The directive for `sub`, or nullptr if none installed.
  const ShedDirective* shed_directive(SubscriberId sub) const;

  const SimClock& clock() const { return clock_; }
  std::size_t dyconit_count() const { return dyconits_.size(); }
  std::size_t total_queued() const;

 private:
  /// Dyconits in canonical (DyconitId::operator<) order; lazily rebuilt
  /// after create/GC. Pointers stay valid across rebuilds (unique_ptr).
  const std::vector<Dyconit*>& sorted_dyconits();
  void gc();

  const SimClock& clock_;
  std::unordered_map<DyconitId, std::unique_ptr<Dyconit>> dyconits_;
  Stats stats_;
  std::size_t snapshot_threshold_ = 0;
  /// Read-only during a flush round; workers look directives up
  /// concurrently, the tick thread mutates between rounds.
  ShedDirectiveMap shed_;

  mutable std::vector<Dyconit*> sorted_cache_;
  mutable bool dyconits_dirty_ = true;

  // Parallel-tick scratch, reused across rounds to avoid steady-state
  // allocation. plan_ lists due-check work in canonical order; results_[i]
  // is written by exactly one worker (the shard owning plan_[i].sub).
  struct FlushTask {
    Dyconit* d = nullptr;
    SubscriberId sub = kNoSubscriber;
  };
  struct FlushResult {
    PendingFlush pending;
    std::uint32_t handle = 0;
    std::uint32_t shard = 0;
  };
  std::vector<FlushTask> plan_;
  std::vector<FlushResult> results_;
};

}  // namespace dyconits::dyconit
