// DyconitSystem — the middleware facade the game server talks to.
//
// The integration surface is deliberately small (the paper's "thin
// middleware" claim): the server (1) subscribes/unsubscribes players as
// their interest sets change, (2) routes every state update through
// update(), and (3) calls tick() once per game tick with a sink that packs
// flushed updates into protocol frames. Everything else — queues, bounds
// enforcement, coalescing — is internal.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "dyconit/dyconit.h"
#include "util/sim_time.h"

namespace dyconits::dyconit {

class DyconitSystem {
 public:
  explicit DyconitSystem(const SimClock& clock) : clock_(clock) {}

  /// Creates the dyconit on first use. `default_bounds` only applies at
  /// creation; existing dyconits keep their configuration.
  Dyconit& get_or_create(DyconitId id, Bounds default_bounds = Bounds::zero());
  Dyconit* find(DyconitId id);
  const Dyconit* find(DyconitId id) const;

  void subscribe(DyconitId id, SubscriberId sub, Bounds b);
  void unsubscribe(DyconitId id, SubscriberId sub);
  /// Drops every subscription of `sub` (player disconnect).
  void unsubscribe_all(SubscriberId sub);
  bool is_subscribed(DyconitId id, SubscriberId sub) const;
  void set_bounds(DyconitId id, SubscriberId sub, Bounds b);

  /// Queues an update for all subscribers of `id` except `exclude`. If the
  /// dyconit does not exist it is created with zero default bounds (and the
  /// update, having no subscribers, is dropped and counted).
  void update(DyconitId id, Update u, SubscriberId exclude = kNoSubscriber);

  /// One middleware tick: flushes every (dyconit, subscriber) queue that
  /// violates its bounds at clock.now(), then garbage-collects dyconits
  /// with no subscribers.
  void tick(FlushSink& sink);

  /// Forced full flush (server shutdown, snapshot, tests).
  void flush_all(FlushSink& sink);
  /// Forced flush of everything owed to one subscriber.
  void flush_subscriber(SubscriberId sub, FlushSink& sink);

  /// Recovery handshake (DESIGN.md §18): for every dyconit `sub` is
  /// subscribed to, flush the owed queue, then ask the game for an
  /// authoritative snapshot (FlushSink::request_snapshot) so state lost on
  /// the wire is replayed. The subscriber's queues are empty afterwards —
  /// it is provably caught up as far as the middleware is concerned.
  void resync_subscriber(SubscriberId sub, FlushSink& sink);

  void for_each(const std::function<void(Dyconit&)>& fn);

  Stats& stats() { return stats_; }
  const Stats& stats() const { return stats_; }
  void set_record_staleness(bool on) { stats_.record_staleness = on; }

  /// Queues longer than this are dropped at tick() in favor of a snapshot
  /// (FlushSink::request_snapshot). 0 disables.
  void set_snapshot_threshold(std::size_t n) { snapshot_threshold_ = n; }
  std::size_t snapshot_threshold() const { return snapshot_threshold_; }

  const SimClock& clock() const { return clock_; }
  std::size_t dyconit_count() const { return dyconits_.size(); }
  std::size_t total_queued() const;

 private:
  const SimClock& clock_;
  std::unordered_map<DyconitId, std::unique_ptr<Dyconit>> dyconits_;
  Stats stats_;
  std::size_t snapshot_threshold_ = 0;
};

}  // namespace dyconits::dyconit
