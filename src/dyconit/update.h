// The unit of optimistic replication: an update queued toward a subscriber.
//
// The middleware treats the game message as opaque (it only moves, counts,
// and coalesces them); the game supplies a weight — the update's numerical-
// error contribution (blocks of positional drift for moves, 1.0 per block
// edit) — and an optional coalesce key. Two queued updates with the same
// nonzero key collapse: the newer message replaces the older one (absolute
// state: last write wins), their weights add (the replica keeps drifting),
// and the older creation time is kept (staleness is the age of the oldest
// unseen write). Coalescing is what converts bound slack into bandwidth.
#pragma once

#include <cstdint>

#include "dyconit/id.h"
#include "protocol/messages.h"
#include "util/sim_time.h"

namespace dyconits::dyconit {

/// Subscribers are the game's client connections; the server maps these to
/// network endpoints. 0 is reserved (no subscriber).
using SubscriberId = std::uint32_t;
inline constexpr SubscriberId kNoSubscriber = 0;

struct Update {
  protocol::AnyMessage msg;
  double weight = 1.0;
  SimTime created;
  /// 0 = never coalesce. Callers build keys via the helpers below.
  std::uint64_t coalesce_key = 0;
};

/// Coalesce keys. Namespaced so entity ids cannot collide with block
/// positions within one dyconit's queue.
inline std::uint64_t coalesce_key_entity(std::uint32_t entity_id) {
  return (1ull << 56) | entity_id;
}
inline std::uint64_t coalesce_key_block(const world::BlockPos& p) {
  const std::uint64_t x = static_cast<std::uint32_t>(p.x);
  const std::uint64_t z = static_cast<std::uint32_t>(p.z);
  const std::uint64_t y = static_cast<std::uint8_t>(p.y);
  return (2ull << 56) | ((x & 0xFFFFFF) << 32) | ((z & 0xFFFFFF) << 8) | y;
}

/// Where flushed updates go. The server's implementation packs the message
/// batch into protocol frames (EntityMoveBatch / MultiBlockChange) and
/// hands them to the existing network stack — the middleware itself never
/// touches sockets, which is what keeps it "thin".
class FlushSink {
 public:
  virtual ~FlushSink() = default;

  struct FlushedUpdate {
    const protocol::AnyMessage* msg;  // borrowed; valid during the call
    SimTime created;                  // when the oldest coalesced-in write happened
    double weight;
  };

  /// One flush: every update a subscriber is owed for one dyconit, in
  /// enqueue order.
  virtual void deliver(SubscriberId to, const std::vector<FlushedUpdate>& updates) = 0;

  /// Snapshot catch-up: the subscriber's queue for `unit` grew past the
  /// configured threshold and was dropped; the game should resend fresh
  /// state for the unit (cheaper than the delta flood). Default: ignore —
  /// only hosts that configure a threshold need to implement this.
  virtual void request_snapshot(SubscriberId to, const DyconitId& unit) {
    (void)to;
    (void)unit;
  }
};

}  // namespace dyconits::dyconit
