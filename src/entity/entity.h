// Entities: players, mobs, and dropped items. Entity state is what the
// server replicates to clients at high rate, and therefore the main source
// of dyconit-managed updates.
#pragma once

#include <cstdint>

#include "world/geometry.h"

namespace dyconits::entity {

using EntityId = std::uint32_t;
inline constexpr EntityId kInvalidEntity = 0;

enum class EntityKind : std::uint8_t { Player = 0, Mob = 1, Item = 2 };

struct Entity {
  EntityId id = kInvalidEntity;
  EntityKind kind = EntityKind::Player;
  world::Vec3 pos;
  world::Vec3 velocity;
  float yaw = 0.0f;    // degrees, [0, 360)
  float pitch = 0.0f;  // degrees, [-90, 90]
  bool on_ground = true;

  /// Kind-specific payload: for Item entities, the world::Block id of the
  /// dropped block; unused otherwise.
  std::uint16_t data = 0;

  /// Monotonic per-entity state revision; bumped on every mutation the
  /// server applies, used to detect "entity changed since last send".
  std::uint64_t revision = 0;

  world::ChunkPos chunk() const { return world::ChunkPos::of(pos); }
};

}  // namespace dyconits::entity
