#include "entity/movement.h"

#include <algorithm>
#include <cmath>

namespace dyconits::entity {
namespace {

/// Ground y to stand on at column (x,z): top solid block + 1.
double ground_y(world::World& world, double x, double z) {
  const int h = world.surface_height(static_cast<std::int32_t>(std::floor(x)),
                                     static_cast<std::int32_t>(std::floor(z)));
  return static_cast<double>(h + 1);
}

}  // namespace

bool can_stand_at(world::World& world, const world::Vec3& pos) {
  const world::BlockPos feet = world::BlockPos::from(pos);
  if (feet.y < 1 || feet.y + 1 >= world::kWorldHeight) return false;
  if (world::is_solid(world.block_at(feet))) return false;
  if (world::is_solid(world.block_at({feet.x, feet.y + 1, feet.z}))) return false;
  return world::is_solid(world.block_at({feet.x, feet.y - 1, feet.z}));
}

MoveResult step_toward(world::World& world, const world::Vec3& from,
                       const world::Vec3& target, double speed, double dt_seconds,
                       world::Vec3& out_pos) {
  MoveResult result;
  out_pos = from;

  world::Vec3 delta = target - from;
  delta.y = 0;
  const double dist = delta.horizontal_length();
  const double max_step = speed * dt_seconds;
  if (dist < 1e-9 || max_step <= 0.0) return result;

  const double frac = std::min(1.0, max_step / dist);
  world::Vec3 next = from + delta * frac;

  const double cur_ground = ground_y(world, from.x, from.z);
  const double next_ground = ground_y(world, next.x, next.z);

  // Walls taller than one block stop horizontal motion.
  if (next_ground - cur_ground > 1.5) {
    result.blocked = true;
    // Still settle vertically in place (e.g. block dug out underfoot).
    next = from;
    next.y = cur_ground;
  } else {
    next.y = next_ground;
  }

  if (next == from) {
    result.blocked = true;
    return result;
  }
  out_pos = next;
  result.moved = true;
  return result;
}

}  // namespace dyconits::entity
