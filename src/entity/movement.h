// Walking kinematics on voxel terrain: horizontal motion at a target speed,
// with step-up over one-block ledges, blocking on taller walls, and gravity
// snapping to the ground. Deliberately simple — the replication workload
// (per-tick position deltas) is what matters, not physics fidelity.
#pragma once

#include "entity/entity.h"
#include "world/world.h"

namespace dyconits::entity {

struct MoveResult {
  bool moved = false;    // position changed at all
  bool blocked = false;  // horizontal motion was stopped by terrain
};

/// Computes one step from `from` toward `target` (horizontal plane) of at
/// most `speed * dt_seconds`, adjusting y to the terrain surface. The world
/// is mutated only by chunk generation. The caller applies `out_pos` itself
/// (bots send it as PlayerMove; tests feed it to the registry).
MoveResult step_toward(world::World& world, const world::Vec3& from,
                       const world::Vec3& target, double speed, double dt_seconds,
                       world::Vec3& out_pos);

/// True if a standing entity fits at (pos.x, pos.y, pos.z): feet and head
/// blocks non-solid, ground below solid or y==0.
bool can_stand_at(world::World& world, const world::Vec3& pos);

}  // namespace dyconits::entity
