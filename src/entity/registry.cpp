#include "entity/registry.h"

#include <memory>

namespace dyconits::entity {

Entity& EntityRegistry::create(EntityKind kind, const world::Vec3& pos) {
  auto e = std::make_unique<Entity>();
  e->id = next_id_++;
  e->kind = kind;
  e->pos = pos;
  Entity& ref = *e;
  index_add(ref.id, ref.chunk());
  entities_.emplace(ref.id, std::move(e));
  return ref;
}

bool EntityRegistry::remove(EntityId id) {
  const auto it = entities_.find(id);
  if (it == entities_.end()) return false;
  index_remove(id, it->second->chunk());
  entities_.erase(it);
  return true;
}

Entity* EntityRegistry::find(EntityId id) {
  const auto it = entities_.find(id);
  return it == entities_.end() ? nullptr : it->second.get();
}

const Entity* EntityRegistry::find(EntityId id) const {
  const auto it = entities_.find(id);
  return it == entities_.end() ? nullptr : it->second.get();
}

void EntityRegistry::move(Entity& e, const world::Vec3& new_pos) {
  const world::ChunkPos before = e.chunk();
  e.pos = new_pos;
  ++e.revision;
  const world::ChunkPos after = e.chunk();
  if (before != after) {
    index_remove(e.id, before);
    index_add(e.id, after);
  }
}

void EntityRegistry::for_each(const std::function<void(Entity&)>& fn) {
  for (auto& [id, e] : entities_) fn(*e);
}

void EntityRegistry::for_each(const std::function<void(const Entity&)>& fn) const {
  for (const auto& [id, e] : entities_) fn(*e);
}

std::vector<EntityId> EntityRegistry::query_chunk_radius(world::ChunkPos center,
                                                         int radius_chunks) const {
  std::vector<EntityId> out;
  for (int dx = -radius_chunks; dx <= radius_chunks; ++dx) {
    for (int dz = -radius_chunks; dz <= radius_chunks; ++dz) {
      const auto it = by_chunk_.find({center.x + dx, center.z + dz});
      if (it == by_chunk_.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  return out;
}

const std::unordered_set<EntityId>* EntityRegistry::entities_in_chunk(
    world::ChunkPos pos) const {
  const auto it = by_chunk_.find(pos);
  return it == by_chunk_.end() ? nullptr : &it->second;
}

void EntityRegistry::index_add(EntityId id, world::ChunkPos cp) { by_chunk_[cp].insert(id); }

void EntityRegistry::index_remove(EntityId id, world::ChunkPos cp) {
  const auto it = by_chunk_.find(cp);
  if (it == by_chunk_.end()) return;
  it->second.erase(id);
  if (it->second.empty()) by_chunk_.erase(it);
}

}  // namespace dyconits::entity
