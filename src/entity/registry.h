// Entity storage plus a chunk-bucketed spatial index for interest queries
// ("which entities are within R chunks of this player?").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "entity/entity.h"
#include "world/geometry.h"

namespace dyconits::entity {

class EntityRegistry {
 public:
  /// Creates an entity at `pos` and returns a stable reference to it.
  /// References remain valid until the entity is removed.
  Entity& create(EntityKind kind, const world::Vec3& pos);

  /// Removes the entity; false if the id is unknown.
  bool remove(EntityId id);

  Entity* find(EntityId id);
  const Entity* find(EntityId id) const;

  /// Moves an entity, keeping the spatial index consistent and bumping the
  /// entity revision. Use this (not direct pos writes) for all movement.
  void move(Entity& e, const world::Vec3& new_pos);

  std::size_t size() const { return entities_.size(); }

  /// Visits every entity (unspecified order).
  void for_each(const std::function<void(Entity&)>& fn);
  void for_each(const std::function<void(const Entity&)>& fn) const;

  /// Entity ids whose chunk is within `radius_chunks` (Chebyshev) of
  /// `center`. Cost is O(radius^2 + results).
  std::vector<EntityId> query_chunk_radius(world::ChunkPos center, int radius_chunks) const;

  /// Ids of entities in exactly this chunk.
  const std::unordered_set<EntityId>* entities_in_chunk(world::ChunkPos pos) const;

 private:
  void index_add(EntityId id, world::ChunkPos cp);
  void index_remove(EntityId id, world::ChunkPos cp);

  EntityId next_id_ = 1;
  std::unordered_map<EntityId, std::unique_ptr<Entity>> entities_;
  std::unordered_map<world::ChunkPos, std::unordered_set<EntityId>> by_chunk_;
};

}  // namespace dyconits::entity
