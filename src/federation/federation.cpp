#include "federation/federation.h"

#include <cmath>

#include "util/log.h"

namespace dyconits::federation {

using dyconit::DyconitId;
using dyconit::Update;
using protocol::AnyMessage;
using world::ChunkPos;

Federation::Direction::Direction(SimClock& clock_in, net::SimNetwork& net_in,
                                 server::GameServer& src_in, server::GameServer& dst_in,
                                 const FederationConfig& cfg_in, bool src_is_left_in)
    : clock(clock_in),
      net(net_in),
      src(src_in),
      dst(dst_in),
      cfg(cfg_in),
      src_is_left(src_is_left_in),
      system(clock_in) {
  src_ep = net.create_endpoint(src_is_left ? "fed:left->right" : "fed:right->left");
  dst_ep = net.create_endpoint(src_is_left ? "fed:right<-left" : "fed:left<-right");
  net.connect(src_ep, dst_ep, cfg.peer_link);
}

bool Federation::Direction::in_band(ChunkPos c) const {
  // Distance of the chunk to the x=0 stripe boundary, on the src side.
  if (src_is_left) return c.x < 0 && c.x >= -cfg.band_chunks;
  return c.x >= 0 && c.x < cfg.band_chunks;
}

void Federation::Direction::on_src_update(const AnyMessage& msg, double weight,
                                          std::uint64_t key, ChunkPos chunk,
                                          entity::EntityKind kind) {
  if (!in_band(chunk)) return;
  // The peer is one subscriber of a per-chunk unit in this direction's own
  // dyconit system; block and entity domains stay separate so their bounds
  // could diverge if configured to.
  const DyconitId unit = std::holds_alternative<protocol::EntityMove>(msg)
                             ? DyconitId::chunk_entities(chunk)
                             : DyconitId::chunk_blocks(chunk);
  if (system.find(unit) == nullptr) {
    system.subscribe(unit, kPeer, cfg.peer_bounds);
  }
  Update u;
  u.msg = msg;
  u.weight = weight;
  u.created = clock.now();
  u.coalesce_key = key;
  system.update(unit, std::move(u));
  static_cast<void>(kind);  // mirrors default to the kind sent in spawn census
}

void Federation::Direction::deliver(dyconit::SubscriberId,
                                    const std::vector<FlushedUpdate>& updates) {
  // Pack like the game server does: moves into one batch frame.
  std::vector<protocol::EntityMove> moves;
  SimTime origin = SimTime::zero();
  for (const auto& u : updates) {
    if (const auto* mv = std::get_if<protocol::EntityMove>(u.msg)) {
      if (moves.empty() || u.created < origin) origin = u.created;
      moves.push_back(*mv);
    } else {
      net::Frame f = protocol::encode(*u.msg);
      f.trace_origin = u.created;
      net.send(src_ep, dst_ep, std::move(f));
    }
  }
  if (!moves.empty()) {
    net::Frame f = moves.size() == 1
                       ? protocol::encode(AnyMessage{moves.front()})
                       : protocol::encode(AnyMessage{
                             protocol::EntityMoveBatch{std::move(moves)}});
    f.trace_origin = origin;
    net.send(src_ep, dst_ep, std::move(f));
  }
}

void Federation::Direction::receive_and_apply(SimTime now) {
  const auto apply_move = [&](const protocol::EntityMove& mv) {
    auto [it, inserted] = mirrors.try_emplace(mv.id);
    if (inserted) {
      // First sighting: materialize a mirror. Kind/data come from an
      // in-process peek at the peer (a real deployment would carry them in
      // a spawn census message; the wire cost would be one-off and tiny).
      const entity::Entity* remote = src.entities().find(mv.id);
      const entity::EntityKind kind =
          remote != nullptr ? remote->kind : entity::EntityKind::Player;
      it->second.local =
          dst.spawn_external_entity(kind, mv.pos, remote != nullptr ? remote->data : 0,
                                    "remote:" + std::to_string(mv.id));
    } else {
      const entity::Entity* local = dst.entities().find(it->second.local);
      const double weight =
          local != nullptr ? world::distance(local->pos, mv.pos) : 0.0;
      dst.move_external_entity(it->second.local, mv.pos, mv.yaw, mv.pitch, weight);
    }
    it->second.last_seen = now;
  };

  for (const net::Delivery& d : net.poll(dst_ep)) {
    const auto msg = protocol::decode(d.frame);
    if (!msg.has_value()) {
      Log::warn("federation: malformed peer frame");
      continue;
    }
    if (const auto* bc = std::get_if<protocol::BlockChange>(&*msg)) {
      dst.apply_external_block(bc->pos, bc->block);
    } else if (const auto* mv = std::get_if<protocol::EntityMove>(&*msg)) {
      apply_move(*mv);
    } else if (const auto* batch = std::get_if<protocol::EntityMoveBatch>(&*msg)) {
      for (const auto& mv : batch->moves) apply_move(mv);
    }
  }
}

void Federation::Direction::expire_mirrors(SimTime now) {
  for (auto it = mirrors.begin(); it != mirrors.end();) {
    if (now - it->second.last_seen >= cfg.mirror_ttl) {
      dst.remove_external_entity(it->second.local);
      it = mirrors.erase(it);
    } else {
      ++it;
    }
  }
}

Federation::Federation(SimClock& clock, net::SimNetwork& net, server::GameServer& left,
                       server::GameServer& right, FederationConfig cfg)
    : cfg_(cfg), left_(left), right_(right) {
  left_to_right_ = std::make_unique<Direction>(clock, net, left, right, cfg_, true);
  right_to_left_ = std::make_unique<Direction>(clock, net, right, left, cfg_, false);

  left.set_update_tap([this](const protocol::AnyMessage& msg, double weight,
                             std::uint64_t key, ChunkPos chunk,
                             entity::EntityKind kind) {
    left_to_right_->on_src_update(msg, weight, key, chunk, kind);
  });
  right.set_update_tap([this](const protocol::AnyMessage& msg, double weight,
                              std::uint64_t key, ChunkPos chunk,
                              entity::EntityKind kind) {
    right_to_left_->on_src_update(msg, weight, key, chunk, kind);
  });
}

Federation::~Federation() {
  left_.set_update_tap(nullptr);
  right_.set_update_tap(nullptr);
}

void Federation::tick() {
  for (Direction* d : {left_to_right_.get(), right_to_left_.get()}) {
    d->system.tick(*d);
    d->receive_and_apply(d->clock.now());
    d->expire_mirrors(d->clock.now());
  }
}

void Federation::flush_all() {
  for (Direction* d : {left_to_right_.get(), right_to_left_.get()}) {
    d->system.flush_all(*d);
  }
}

std::uint64_t Federation::peer_updates_enqueued() const {
  return left_to_right_->system.stats().enqueued +
         right_to_left_->system.stats().enqueued;
}

std::uint64_t Federation::peer_updates_coalesced() const {
  return left_to_right_->system.stats().coalesced +
         right_to_left_->system.stats().coalesced;
}

std::uint64_t Federation::peer_frames_sent() const {
  return left_to_right_->net.egress_frames(left_to_right_->src_ep) +
         right_to_left_->net.egress_frames(right_to_left_->src_ep);
}

std::uint64_t Federation::peer_bytes_sent() const {
  return left_to_right_->net.egress_bytes(left_to_right_->src_ep) +
         right_to_left_->net.egress_bytes(right_to_left_->src_ep);
}

std::size_t Federation::mirrors_on(const server::GameServer& server) const {
  if (&server == &right_) return left_to_right_->mirrors.size();
  if (&server == &left_) return right_to_left_->mirrors.size();
  return 0;
}

}  // namespace dyconits::federation
