// Cross-instance federation: multiple GameServer instances host one shared
// world, split into X-axis stripes, and keep each other's boundary bands
// consistent through a second, server-to-server dyconit layer.
//
// This implements the paper's motivating gap ("Minecraft-like games only
// scale using isolated instances") as the natural extension of its own
// mechanism: the peer server is just another subscriber with inconsistency
// bounds — conits' original wide-area setting. Per direction A->B the
// federation runs its own DyconitSystem whose single subscriber is B;
// every update A's game makes inside the boundary band is enqueued there,
// coalesced, and flushed under the federation bounds onto a peer link of
// the simulated network. The receiving side applies block changes to its
// replica stripe and maintains *mirror entities* for remote players/mobs,
// which then fan out to its local players through the ordinary dispatch
// path.
//
// Scope (documented in DESIGN.md): state mirroring only — each player's
// authority stays with its home server; edits outside a server's stripe
// are rejected (ServerConfig::owns_chunk). Mirrors expire if unseen for
// mirror_ttl (covers remote despawns without a tombstone protocol).
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "server/game_server.h"

namespace dyconits::federation {

struct FederationConfig {
  /// Chunks on each side of a stripe boundary that are mirrored.
  int band_chunks = 8;
  /// Inconsistency bounds for the server-to-server subscriptions. WAN-ish
  /// defaults: tighter than far-player bounds, looser than near-player.
  dyconit::Bounds peer_bounds{SimDuration::millis(100), 4.0};
  /// Peer link characteristics (often a different network than clients').
  net::LinkParams peer_link{SimDuration::millis(10), 0.0};
  /// Unseen mirrors are removed after this long.
  SimDuration mirror_ttl = SimDuration::seconds(5);
};

/// Two federated servers: `left` owns chunks with x < 0, `right` owns
/// x >= 0. (N-way striping reuses Link per adjacent pair; two servers keep
/// the demonstration and tests sharp.)
class Federation {
 public:
  Federation(SimClock& clock, net::SimNetwork& net, server::GameServer& left,
             server::GameServer& right, FederationConfig cfg = {});
  ~Federation();

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// One federation tick: flush due peer queues in both directions and
  /// apply everything that arrived. Call once per game tick, after both
  /// servers ticked.
  void tick();

  /// Forces everything queued toward either peer onto the wire (shutdown,
  /// snapshots, convergence checks). Delivery still takes the peer link's
  /// latency: keep ticking to drain.
  void flush_all();

  // -- introspection --
  std::uint64_t peer_updates_enqueued() const;
  std::uint64_t peer_updates_coalesced() const;
  std::uint64_t peer_frames_sent() const;
  std::uint64_t peer_bytes_sent() const;
  std::size_t mirrors_on(const server::GameServer& server) const;

  static bool left_owns(world::ChunkPos c) { return c.x < 0; }

 private:
  /// One direction of the peer relationship (src server -> dst server).
  struct Direction : dyconit::FlushSink {
    Direction(SimClock& clock, net::SimNetwork& net, server::GameServer& src,
              server::GameServer& dst, const FederationConfig& cfg, bool src_is_left);

    // FlushSink: pack flushed updates into frames on the peer link.
    void deliver(dyconit::SubscriberId to,
                 const std::vector<FlushedUpdate>& updates) override;

    /// Tap installed into src: enqueue band updates toward the peer.
    void on_src_update(const protocol::AnyMessage& msg, double weight,
                       std::uint64_t key, world::ChunkPos chunk,
                       entity::EntityKind kind);

    /// Drain the peer endpoint and apply to dst.
    void receive_and_apply(SimTime now);

    void expire_mirrors(SimTime now);

    bool in_band(world::ChunkPos c) const;

    SimClock& clock;
    net::SimNetwork& net;
    server::GameServer& src;
    server::GameServer& dst;
    const FederationConfig& cfg;
    bool src_is_left;

    net::EndpointId src_ep = net::kInvalidEndpoint;  // src's uplink to dst
    net::EndpointId dst_ep = net::kInvalidEndpoint;  // dst's inbox
    dyconit::DyconitSystem system;
    static constexpr dyconit::SubscriberId kPeer = 1;

    /// Remote entity id (src id space) -> mirror entity id on dst, plus
    /// last-seen time for TTL expiry.
    struct Mirror {
      entity::EntityId local = entity::kInvalidEntity;
      SimTime last_seen;
    };
    std::unordered_map<entity::EntityId, Mirror> mirrors;
  };

  FederationConfig cfg_;
  std::unique_ptr<Direction> left_to_right_;
  std::unique_ptr<Direction> right_to_left_;
  server::GameServer& left_;
  server::GameServer& right_;
};

}  // namespace dyconits::federation
