#include "metrics/metrics.h"

#include <algorithm>

namespace dyconits::metrics {

double TimeSeries::mean() const {
  if (points_.empty()) return 0.0;
  double s = 0.0;
  for (const auto& [t, v] : points_) s += v;
  return s / static_cast<double>(points_.size());
}

double TimeSeries::max() const {
  double m = 0.0;
  bool first = true;
  for (const auto& [t, v] : points_) {
    if (first || v > m) m = v;
    first = false;
  }
  return m;
}

double TimeSeries::mean_after(SimTime from) const {
  double s = 0.0;
  std::size_t n = 0;
  for (const auto& [t, v] : points_) {
    if (t >= from) {
      s += v;
      ++n;
    }
  }
  return n > 0 ? s / static_cast<double>(n) : 0.0;
}

namespace {

// RFC 4180 field quoting: names are caller-chosen strings (policy specs
// like "static:250:4" today, arbitrary labels tomorrow), so a comma or
// quote in a name must not shear the row apart.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void MetricRegistry::write_csv(std::ostream& os) const {
  os << "kind,name,t_seconds,value\n";
  for (const auto& [name, v] : counters_) {
    os << "counter," << csv_field(name) << ",-1," << v << "\n";
  }
  for (const auto& [name, ts] : series_) {
    for (const auto& [t, v] : ts.points()) {
      os << "series," << csv_field(name) << "," << t.as_seconds() << "," << v << "\n";
    }
  }
}

double RateSampler::sample(std::uint64_t current, double dt_seconds) {
  if (!primed_) {
    primed_ = true;
    last_ = current;
    return 0.0;
  }
  const double delta = static_cast<double>(current - last_);
  last_ = current;
  return dt_seconds > 0 ? delta / dt_seconds : 0.0;
}

}  // namespace dyconits::metrics
