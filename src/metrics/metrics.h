// Experiment metrics: named counters, time series, and CSV export. Bench
// binaries sample monotonic counters (e.g. network bytes) into rates each
// simulated second and dump series for the figure tables.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/sim_time.h"

namespace dyconits::metrics {

class TimeSeries {
 public:
  void add(SimTime t, double value) { points_.emplace_back(t, value); }
  const std::vector<std::pair<SimTime, double>>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  double mean() const;
  double max() const;
  /// Mean over points with t >= from (for skipping warmup).
  double mean_after(SimTime from) const;

 private:
  std::vector<std::pair<SimTime, double>> points_;
};

class MetricRegistry {
 public:
  std::uint64_t& counter(const std::string& name) { return counters_[name]; }
  TimeSeries& series(const std::string& name) { return series_[name]; }

  const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  const std::map<std::string, TimeSeries>& all_series() const { return series_; }

  /// CSV rows: kind,name,t_seconds,value (counters get t=-1). Names
  /// containing commas, quotes, or newlines are quoted per RFC 4180.
  void write_csv(std::ostream& os) const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, TimeSeries> series_;
};

/// Turns a monotonic counter into a rate between successive samples.
class RateSampler {
 public:
  /// Returns (current - last) / dt_seconds and remembers `current`.
  double sample(std::uint64_t current, double dt_seconds);

 private:
  std::uint64_t last_ = 0;
  bool primed_ = false;
};

}  // namespace dyconits::metrics
