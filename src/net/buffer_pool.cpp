#include "net/buffer_pool.h"

namespace dyconits::net {

BufferPool& BufferPool::instance() {
  static BufferPool pool;
  return pool;
}

std::vector<std::uint8_t> BufferPool::acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_.empty()) {
    ++stats_.misses;
    stats_.pooled = 0;
    return {};
  }
  ++stats_.hits;
  std::vector<std::uint8_t> buf = std::move(free_.back());
  free_.pop_back();
  stats_.pooled = free_.size();
  buf.clear();  // keeps capacity
  return buf;
}

void BufferPool::release(std::vector<std::uint8_t>&& buf) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.releases;
  if (buf.capacity() < kMinCapacity || free_.size() >= kMaxPooled) {
    ++stats_.dropped;
    return;  // buf frees on scope exit
  }
  free_.push_back(std::move(buf));
  stats_.pooled = free_.size();
  if (free_.size() > stats_.high_water) stats_.high_water = free_.size();
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BufferPool::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t pooled = free_.size();
  const std::size_t high = stats_.high_water;
  stats_ = Stats{};
  stats_.pooled = pooled;
  stats_.high_water = high;
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mu_);
  free_.clear();
  stats_.pooled = 0;
}

}  // namespace dyconits::net
