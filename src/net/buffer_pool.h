// Frame-buffer pool (DESIGN.md §11): a process-wide freelist of payload
// vectors so the hot egress path — encode, stage, send, poll, decode —
// recycles buffers instead of allocating one per frame. Acquire hands back
// a cleared vector that keeps its previous capacity; release returns a
// spent payload. Releasing is opportunistic: a site that forgets only
// costs a future pool miss, never a leak or a double free.
//
// The pool is the allocation "counting hook" for the zero-allocation
// contract: steady-state misses are exactly the frame-buffer heap
// allocations the egress pipeline still performs (bench/e14_egress and the
// allocation regression test assert they reach zero once capacity warms).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace dyconits::net {

class BufferPool {
 public:
  struct Stats {
    std::uint64_t hits = 0;      ///< acquires served from the freelist
    std::uint64_t misses = 0;    ///< acquires that had to heap-allocate
    std::uint64_t releases = 0;  ///< buffers returned (kept or dropped)
    std::uint64_t dropped = 0;   ///< released buffers discarded (pool full / tiny)
    std::size_t pooled = 0;      ///< buffers in the freelist right now
    std::size_t high_water = 0;  ///< max buffers the freelist ever held
  };

  /// The process-wide pool every frame payload cycles through. A single
  /// instance keeps the recycle loop closed across layers (protocol encode,
  /// server staging, SimNetwork drops, bot decode) without threading a pool
  /// reference through each of them.
  static BufferPool& instance();

  /// A cleared buffer, with whatever capacity its previous life grew.
  std::vector<std::uint8_t> acquire();

  /// Returns a spent buffer to the freelist. Buffers below kMinCapacity
  /// (never grown — nothing to recycle) and buffers beyond kMaxPooled are
  /// dropped so an idle pool cannot pin unbounded memory.
  void release(std::vector<std::uint8_t>&& buf);

  Stats stats() const;
  void reset_stats();
  /// Drops every pooled buffer (tests that want a cold pool).
  void trim();

  /// Freelist size cap; beyond it released buffers are freed normally.
  static constexpr std::size_t kMaxPooled = 4096;
  /// Released buffers smaller than this carry no useful capacity.
  static constexpr std::size_t kMinCapacity = 16;

 private:
  mutable std::mutex mu_;  // encode runs on flush workers concurrently
  std::vector<std::vector<std::uint8_t>> free_;
  Stats stats_;
};

}  // namespace dyconits::net
