#include "net/bytes.h"

namespace dyconits::net {

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v & 0xFF));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::svarint(std::int64_t v) {
  varint((static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::blob(const std::uint8_t* data, std::size_t size) {
  buf_.reserve(buf_.size() + varint_size(size) + size);
  varint(size);
  buf_.insert(buf_.end(), data, data + size);
}

void ByteWriter::str(std::string_view s) {
  buf_.reserve(buf_.size() + varint_size(s.size()) + s.size());
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool ByteReader::take(void* out, std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return true;
}

bool ByteReader::u8(std::uint8_t& out) { return take(&out, 1); }

bool ByteReader::u16(std::uint16_t& out) {
  std::uint8_t b[2];
  if (!take(b, 2)) return false;
  out = static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  return true;
}

bool ByteReader::u32(std::uint32_t& out) {
  std::uint8_t b[4];
  if (!take(b, 4)) return false;
  out = 0;
  for (int i = 3; i >= 0; --i) out = (out << 8) | b[i];
  return true;
}

bool ByteReader::u64(std::uint64_t& out) {
  std::uint8_t b[8];
  if (!take(b, 8)) return false;
  out = 0;
  for (int i = 7; i >= 0; --i) out = (out << 8) | b[i];
  return true;
}

bool ByteReader::f32(float& out) {
  std::uint32_t bits;
  if (!u32(bits)) return false;
  std::memcpy(&out, &bits, sizeof(out));
  return true;
}

bool ByteReader::f64(double& out) {
  std::uint64_t bits;
  if (!u64(bits)) return false;
  std::memcpy(&out, &bits, sizeof(out));
  return true;
}

bool ByteReader::varint(std::uint64_t& out) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    std::uint8_t b;
    if (!u8(b)) return false;
    if (shift >= 64 || (shift == 63 && (b & 0x7E) != 0)) {
      ok_ = false;  // would overflow 64 bits
      return false;
    }
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  out = v;
  return true;
}

bool ByteReader::svarint(std::int64_t& out) {
  std::uint64_t z;
  if (!varint(z)) return false;
  out = static_cast<std::int64_t>(z >> 1) ^ -static_cast<std::int64_t>(z & 1);
  return true;
}

bool ByteReader::blob(std::vector<std::uint8_t>& out) {
  std::uint64_t n;
  if (!varint(n)) return false;
  if (size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  out.assign(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return true;
}

bool ByteReader::str(std::string& out) {
  std::uint64_t n;
  if (!varint(n)) return false;
  if (size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  out.assign(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return true;
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace dyconits::net
