// Wire codec: little-endian fixed-width integers, LEB128 varints (with
// zigzag for signed values), floats, strings and blobs. All protocol
// messages are built from these, so measured byte counts reflect a real
// compact binary encoding, as in Minecraft's own protocol.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace dyconits::net {

class ByteWriter {
 public:
  ByteWriter() = default;
  /// Adopts `buf` as the output buffer (cleared, capacity kept). This is the
  /// pooled path: pass a recycled net::BufferPool buffer and take() it back
  /// out once the frame is built, so steady-state encodes never allocate.
  explicit ByteWriter(std::vector<std::uint8_t> buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);
  void f64(double v);

  /// Unsigned LEB128.
  void varint(std::uint64_t v);
  /// Zigzag-encoded signed LEB128.
  void svarint(std::int64_t v);

  /// Length-prefixed (varint) byte blob.
  void blob(const std::uint8_t* data, std::size_t size);
  void blob(const std::vector<std::uint8_t>& data) { blob(data.data(), data.size()); }
  /// Length-prefixed (varint) UTF-8 string.
  void str(std::string_view s);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  /// Drops the written bytes but keeps the buffer's capacity, so one writer
  /// (or one pooled buffer) can serialize many frames without reallocating.
  void clear() { buf_.clear(); }
  /// Ensures room for `n` more bytes beyond what is already written.
  void reserve(std::size_t n) { buf_.reserve(buf_.size() + n); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reader over a borrowed buffer. Every accessor returns false on underflow
/// or malformed input and leaves the output untouched; once any read fails
/// the reader is poisoned (ok() == false) so call sites can check once at
/// the end of a fixed-layout decode.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& v) : ByteReader(v.data(), v.size()) {}

  bool u8(std::uint8_t& out);
  bool u16(std::uint16_t& out);
  bool u32(std::uint32_t& out);
  bool u64(std::uint64_t& out);
  bool f32(float& out);
  bool f64(double& out);
  bool varint(std::uint64_t& out);
  bool svarint(std::int64_t& out);
  bool blob(std::vector<std::uint8_t>& out);
  bool str(std::string& out);

  bool ok() const { return ok_; }
  bool at_end() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  bool take(void* out, std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Encoded size of an unsigned varint, for framing-overhead accounting.
std::size_t varint_size(std::uint64_t v);

}  // namespace dyconits::net
