#include "net/fault_transport.h"

#include <algorithm>
#include <cassert>

#include "net/buffer_pool.h"
#include "trace/trace.h"

namespace dyconits::net {

namespace {
// Decision bits mixed into the determinism digest, one per fault kind.
constexpr std::uint8_t kBitLost = 1u << 0;
constexpr std::uint8_t kBitDuplicated = 1u << 1;
constexpr std::uint8_t kBitCorrupted = 1u << 2;
constexpr std::uint8_t kBitReordered = 1u << 3;
constexpr std::uint8_t kBitSendFailed = 1u << 4;
constexpr std::uint8_t kBitRefused = 1u << 5;
}  // namespace

FaultInjectingTransport::FaultInjectingTransport(Transport& inner, SimClock& clock)
    : inner_(inner), clock_(clock), fault_rng_(plan_.seed) {}

FaultInjectingTransport::~FaultInjectingTransport() {
  for (auto& h : holdback_) BufferPool::instance().release(std::move(h.frame.payload));
}

void FaultInjectingTransport::set_fault_plan(FaultPlan plan) {
  plan_ = std::move(plan);
  std::stable_sort(plan_.events.begin(), plan_.events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
  next_event_ = 0;
  fault_rng_ = Rng(plan_.seed);
}

EndpointId FaultInjectingTransport::create_endpoint(std::string name) {
  return inner_.create_endpoint(std::move(name));
}

const std::string& FaultInjectingTransport::endpoint_name(EndpointId id) const {
  return inner_.endpoint_name(id);
}

void FaultInjectingTransport::advance_events() {
  while (next_event_ < plan_.events.size() && plan_.events[next_event_].at <= clock_.now()) {
    apply_event(plan_.events[next_event_++]);
  }
}

void FaultInjectingTransport::apply_event(const FaultEvent& e) {
  switch (e.kind) {
    case FaultEvent::Kind::LinkDown:
      if (e.b == kInvalidEndpoint) {
        // Single-named link event: the whole endpoint is unreachable.
        downed_endpoints_.insert(e.a);
        drop_held(e.a, /*crash=*/false);
      } else {
        downed_pairs_.insert(pair_key(e.a, e.b));
        downed_pairs_.insert(pair_key(e.b, e.a));
        for (auto& h : holdback_) {
          if (h.to == kInvalidEndpoint) continue;
          if (pair_key(h.from, h.to) != pair_key(e.a, e.b) &&
              pair_key(h.from, h.to) != pair_key(e.b, e.a))
            continue;
          account_drop(stats_[h.to], h.frame, DropCause::Disconnect);
          BufferPool::instance().release(std::move(h.frame.payload));
          h.to = kInvalidEndpoint;  // tombstone; swept below
        }
        holdback_.erase(std::remove_if(holdback_.begin(), holdback_.end(),
                                       [](const HeldFrame& h) {
                                         return h.to == kInvalidEndpoint;
                                       }),
                        holdback_.end());
      }
      TRACE_INSTANT("net.fault_transport.link_down");
      break;
    case FaultEvent::Kind::LinkUp:
      if (e.b == kInvalidEndpoint) {
        downed_endpoints_.erase(e.a);
      } else {
        downed_pairs_.erase(pair_key(e.a, e.b));
        downed_pairs_.erase(pair_key(e.b, e.a));
      }
      TRACE_INSTANT("net.fault_transport.link_up");
      break;
    case FaultEvent::Kind::Crash:
      // Models the REMOTE peer dying: sends into the window are refused and
      // anything held for it is wiped, mirroring the sim's crashed-endpoint
      // semantics from this side of the wire.
      downed_endpoints_.insert(e.a);
      drop_held(e.a, /*crash=*/true);
      TRACE_INSTANT("net.fault_transport.crash");
      break;
    case FaultEvent::Kind::Restart:
      downed_endpoints_.erase(e.a);
      TRACE_INSTANT("net.fault_transport.restart");
      break;
  }
}

bool FaultInjectingTransport::endpoint_down(EndpointId id) const {
  return downed_endpoints_.count(id) != 0;
}

bool FaultInjectingTransport::link_down(EndpointId a, EndpointId b) const {
  return downed_pairs_.count(pair_key(a, b)) != 0;
}

void FaultInjectingTransport::drop_held(EndpointId id, bool crash) {
  const DropCause cause = crash ? DropCause::Crash : DropCause::Disconnect;
  holdback_.erase(std::remove_if(holdback_.begin(), holdback_.end(),
                                 [&](HeldFrame& h) {
                                   if (h.to != id && h.from != id) return false;
                                   account_drop(stats_[h.to], h.frame, cause);
                                   BufferPool::instance().release(std::move(h.frame.payload));
                                   return true;
                                 }),
                  holdback_.end());
}

void FaultInjectingTransport::account_drop(FaultStats& st, const Frame& f, DropCause cause) {
  const std::size_t size = f.wire_size();
  st.dropped.frames += 1;
  st.dropped.bytes += size;
  switch (cause) {
    case DropCause::Loss:
      st.dropped.loss += 1;
      st.dropped.loss_bytes += size;
      break;
    case DropCause::Disconnect:
      st.dropped.disconnect += 1;
      st.dropped.disconnect_bytes += size;
      break;
    case DropCause::Crash:
      st.dropped.crash += 1;
      st.dropped.crash_bytes += size;
      break;
  }
}

void FaultInjectingTransport::corrupt_frame(Frame& frame) {
  // Bit-for-bit the sim's algorithm (SimNetwork::corrupt_frame), so the
  // fault RNG stream stays interchangeable between backends.
  if (frame.payload.empty()) {
    frame.tag = static_cast<std::uint8_t>(kMaxTags - 1);
    return;
  }
  const std::uint64_t flips = 1 + fault_rng_.next_below(8);
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::uint64_t pos = fault_rng_.next_below(frame.payload.size());
    const auto bit = static_cast<std::uint8_t>(1u << fault_rng_.next_below(8));
    frame.payload[pos] ^= bit;
  }
}

void FaultInjectingTransport::mix_decision(EndpointId to, const Frame& f, std::uint8_t bits) {
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  std::uint64_t h = decision_hash_;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ (v & 0xffu)) * kFnvPrime;
      v >>= 8;
    }
  };
  mix(to);
  mix(f.tag);
  mix(f.seq);
  mix(f.wire_size());
  mix(bits);
  decision_hash_ = h;
  ++frames_offered_;
}

bool FaultInjectingTransport::send(EndpointId from, EndpointId to, Frame frame) {
  TRACE_SCOPE("net.fault_transport.send");
  advance_events();

  // Scheduled windows refuse the send outright (the sim's crashed/no-link
  // behavior). The caller sees false, exactly as it would from the sim.
  if (endpoint_down(from) || endpoint_down(to) || link_down(from, to)) {
    FaultStats& st = stats_[to];
    st.refused += 1;
    mix_decision(to, frame, kBitRefused);
    BufferPool::instance().release(std::move(frame.payload));
    return false;
  }

  // Fault draws in the sim's fixed per-frame order (loss, duplicate,
  // corrupt, reorder), then the wrapper-only send_fail draw. Probabilities
  // at zero still consume draws within their group, so the stream is a pure
  // function of the plan and the offer sequence.
  bool lost = false, duplicated = false, corrupted = false, reordered = false;
  bool send_failed = false;
  if (plan_.all_links.any()) {
    lost = fault_rng_.chance(plan_.all_links.loss);
    duplicated = fault_rng_.chance(plan_.all_links.duplicate);
    corrupted = fault_rng_.chance(plan_.all_links.corrupt);
    reordered = fault_rng_.chance(plan_.all_links.reorder);
  }
  if (plan_.all_links.send_fail > 0.0) {
    send_failed = fault_rng_.chance(plan_.all_links.send_fail);
  }

  std::uint8_t bits = 0;
  if (lost) bits |= kBitLost;
  if (duplicated) bits |= kBitDuplicated;
  if (corrupted) bits |= kBitCorrupted;
  if (reordered) bits |= kBitReordered;
  if (send_failed) bits |= kBitSendFailed;
  mix_decision(to, frame, bits);

  FaultStats& st = stats_[to];

  if (send_failed) {
    // A modeled sender-edge EAGAIN: the datagram never leaves, the send
    // call still "succeeds" (real socket failures surface at flush time),
    // and only the pressure counters know — which is the point.
    ++injected_send_failures_;
    congested_bytes_[to] += frame.wire_size();
    ++congested_frames_[to];
    BufferPool::instance().release(std::move(frame.payload));
    TRACE_INSTANT("net.fault_transport.send_fail");
    return true;
  }

  if (lost) {
    account_drop(st, frame, DropCause::Loss);
    BufferPool::instance().release(std::move(frame.payload));
    TRACE_INSTANT("net.fault_transport.loss");
    return true;
  }

  if (corrupted) {
    corrupt_frame(frame);
    st.corrupted += 1;
    TRACE_INSTANT("net.fault_transport.corrupt");
  }

  if (duplicated) {
    // A second copy right behind the original — a real wire can't schedule
    // a later delivery, and back-to-back duplicate datagrams are the common
    // case anyway.
    Frame dup;
    dup.tag = frame.tag;
    dup.seq = frame.seq;
    dup.trace_origin = frame.trace_origin;
    dup.payload = BufferPool::instance().acquire();
    dup.payload.assign(frame.payload.begin(), frame.payload.end());
    st.duplicated += 1;
    TRACE_INSTANT("net.fault_transport.duplicate");
    if (reordered) {
      // The original takes the detour; the copy goes straight through.
      const auto extra_us =
          static_cast<std::uint64_t>(plan_.all_links.reorder_extra.count_micros());
      SimTime due = clock_.now();
      if (extra_us > 0) {
        due = due + SimDuration::micros(
                        static_cast<std::int64_t>(fault_rng_.next_below(extra_us + 1)));
      }
      st.reordered += 1;
      inner_.send(from, to, std::move(dup));
      holdback_.push_back(HeldFrame{due, next_hold_seq_++, from, to, std::move(frame)});
      TRACE_INSTANT("net.fault_transport.reorder");
      return true;
    }
    const bool ok = inner_.send(from, to, std::move(frame));
    inner_.send(from, to, std::move(dup));
    return ok;
  }

  if (reordered) {
    const auto extra_us =
        static_cast<std::uint64_t>(plan_.all_links.reorder_extra.count_micros());
    SimTime due = clock_.now();
    if (extra_us > 0) {
      due = due + SimDuration::micros(
                      static_cast<std::int64_t>(fault_rng_.next_below(extra_us + 1)));
    }
    st.reordered += 1;
    holdback_.push_back(HeldFrame{due, next_hold_seq_++, from, to, std::move(frame)});
    TRACE_INSTANT("net.fault_transport.reorder");
    return true;
  }

  return inner_.send(from, to, std::move(frame));
}

std::vector<Delivery> FaultInjectingTransport::poll(EndpointId to) {
  advance_events();
  return inner_.poll(to);
}

void FaultInjectingTransport::disconnect(EndpointId a, EndpointId b) {
  inner_.disconnect(a, b);
}

bool FaultInjectingTransport::connected(EndpointId a, EndpointId b) const {
  return inner_.connected(a, b);
}

std::uint64_t FaultInjectingTransport::egress_bytes(EndpointId id) const {
  return inner_.egress_bytes(id);
}
std::uint64_t FaultInjectingTransport::ingress_bytes(EndpointId id) const {
  return inner_.ingress_bytes(id);
}
std::uint64_t FaultInjectingTransport::egress_frames(EndpointId id) const {
  return inner_.egress_frames(id);
}
std::uint64_t FaultInjectingTransport::ingress_frames(EndpointId id) const {
  return inner_.ingress_frames(id);
}

bool FaultInjectingTransport::has_backlog_signal() const {
  return inner_.has_backlog_signal() || plan_.all_links.send_fail > 0.0;
}

std::uint64_t FaultInjectingTransport::pending_bytes(EndpointId to) const {
  std::uint64_t injected = 0;
  if (const auto it = congested_bytes_.find(to); it != congested_bytes_.end())
    injected = it->second;
  return inner_.pending_bytes(to) + injected;
}

const FaultStats* FaultInjectingTransport::fault_stats_if_any(EndpointId id) const {
  return &stats_[id];  // mutable map: creates a zero entry on first query
}

void FaultInjectingTransport::flush_egress() {
  advance_events();

  if (!holdback_.empty()) {
    // Release every held frame whose detour has elapsed, oldest decision
    // first so same-destination reordered frames keep their relative order.
    const SimTime now = clock_.now();
    std::stable_sort(holdback_.begin(), holdback_.end(),
                     [](const HeldFrame& x, const HeldFrame& y) {
                       return x.due != y.due ? x.due < y.due : x.seq < y.seq;
                     });
    std::size_t released = 0;
    for (auto& h : holdback_) {
      if (h.due > now) break;
      if (endpoint_down(h.from) || endpoint_down(h.to) || link_down(h.from, h.to)) {
        account_drop(stats_[h.to], h.frame, DropCause::Disconnect);
        BufferPool::instance().release(std::move(h.frame.payload));
      } else {
        inner_.send(h.from, h.to, std::move(h.frame));
      }
      ++released;
    }
    holdback_.erase(holdback_.begin(),
                    holdback_.begin() + static_cast<std::ptrdiff_t>(released));
  }

  // The injected-congestion estimate drains as flushes go by, mirroring
  // UdpTransport's own decay: a burst of send faults fades, a sustained
  // window holds the signal (and the overload ladder's attention).
  for (auto& [to, bytes] : congested_bytes_) bytes -= bytes / 4;
  for (auto& [to, frames] : congested_frames_) frames -= frames / 4;

  inner_.flush_egress();
}

SendPressure FaultInjectingTransport::send_pressure(EndpointId to) const {
  SendPressure p = inner_.send_pressure(to);
  if (to == kInvalidEndpoint) {
    p.send_failures += injected_send_failures_;
    p.dropped_datagrams += injected_send_failures_;
    for (const auto& [id, bytes] : congested_bytes_) p.congested_bytes += bytes;
    for (const auto& [id, frames] : congested_frames_) p.congested_frames += frames;
  } else {
    if (const auto it = congested_bytes_.find(to); it != congested_bytes_.end())
      p.congested_bytes += it->second;
    if (const auto it = congested_frames_.find(to); it != congested_frames_.end())
      p.congested_frames += it->second;
  }
  return p;
}

FaultStats FaultInjectingTransport::injected_totals() const {
  FaultStats total;
  for (const auto& [id, st] : stats_) {
    total.dropped.frames += st.dropped.frames;
    total.dropped.bytes += st.dropped.bytes;
    total.dropped.loss += st.dropped.loss;
    total.dropped.disconnect += st.dropped.disconnect;
    total.dropped.crash += st.dropped.crash;
    total.dropped.loss_bytes += st.dropped.loss_bytes;
    total.dropped.disconnect_bytes += st.dropped.disconnect_bytes;
    total.dropped.crash_bytes += st.dropped.crash_bytes;
    total.corrupted += st.corrupted;
    total.duplicated += st.duplicated;
    total.reordered += st.reordered;
    total.refused += st.refused;
  }
  return total;
}

}  // namespace dyconits::net
