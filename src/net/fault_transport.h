// Deterministic fault injection for REAL transports (DESIGN.md §13).
//
// `FaultInjectingTransport` is a decorator: it wraps any `Transport`
// (in practice `UdpTransport`) and applies the same seeded `FaultPlan`
// grammar the sim wire understands — per-frame loss / duplication /
// corruption / reorder draws plus scheduled link-flap / partition /
// crash windows — to frames *before* they reach the inner transport.
// That extends the chaos guarantees from the simulated network to real
// sockets and separate processes: the faults a run experiences are a pure
// function of (plan seed, frame offer order), so the same process offered
// the same frames makes byte-identical fault decisions every run.
//
// Differences from the sim's fault layer, all forced by only owning one
// end of the wire:
//
//  * Faults are injected on the SENDING side. A frame "lost in flight" is
//    dropped before the inner transport ever sees it, so the inner egress
//    counters exclude it; the wrapper's own FaultStats (per destination)
//    close the conservation ledger instead.
//  * Scheduled Crash/Restart events model the REMOTE end being gone: sends
//    into the window are refused, exactly like the sim's crashed-endpoint
//    refusal. (A real local crash is process-level — see --crash-at-tick.)
//  * `send_fail` draws model a sender-edge EAGAIN: the datagram vanishes,
//    send() still returns true (real socket failures surface at flush, not
//    send), and the failure is visible only through send_pressure() — the
//    hook the overload ladder listens to.
//
// The per-frame decision stream is digested into `decision_hash()`
// (FNV-1a over destination, tag, seq, wire size, and the decision bits),
// which is what the e2e-chaos-udp stage compares across same-seed reruns.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/faults.h"
#include "net/transport.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace dyconits::net {

class FaultInjectingTransport final : public Transport {
 public:
  /// Wraps `inner`. `clock` times scheduled windows and reorder holdbacks;
  /// the caller advances it (sim ticks or the free-run pacer).
  FaultInjectingTransport(Transport& inner, SimClock& clock);
  ~FaultInjectingTransport() override;

  /// Installs the plan and reseeds the dedicated fault RNG from it, exactly
  /// like SimNetwork::set_fault_plan — same seed, same offered frames, same
  /// decisions. Events are applied as the clock passes them.
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& fault_plan() const { return plan_; }

  Transport& inner() { return inner_; }

  // -- Transport (frame path) --
  EndpointId create_endpoint(std::string name) override;
  const std::string& endpoint_name(EndpointId id) const override;
  bool send(EndpointId from, EndpointId to, Frame frame) override;
  std::vector<Delivery> poll(EndpointId to) override;
  void disconnect(EndpointId a, EndpointId b) override;
  bool connected(EndpointId a, EndpointId b) const override;

  // -- Accounting: delegated. The inner transport counts what actually hit
  // the wire; wrapper-dropped frames appear only in the FaultStats ledger.
  std::uint64_t egress_bytes(EndpointId id) const override;
  std::uint64_t ingress_bytes(EndpointId id) const override;
  std::uint64_t egress_frames(EndpointId id) const override;
  std::uint64_t ingress_frames(EndpointId id) const override;

  // -- Capabilities --
  bool has_backlog_signal() const override;
  std::uint64_t pending_bytes(EndpointId to) const override;
  /// The wrapper's own injection ledger for frames addressed to `id`
  /// (sender-side, unlike the sim's receiver-side stats — see header).
  const FaultStats* fault_stats_if_any(EndpointId id) const override;
  /// Releases due reordered frames, decays the injected-congestion
  /// estimate, then flushes the inner transport.
  void flush_egress() override;
  bool has_send_pressure() const override { return true; }
  SendPressure send_pressure(EndpointId to) const override;

  // -- Introspection (tests, e16, the e2e-chaos-udp determinism check) --
  /// Order-sensitive digest of every fault decision made so far.
  std::uint64_t decision_hash() const { return decision_hash_; }
  /// Frames offered to send() (including refused/dropped ones).
  std::uint64_t frames_offered() const { return frames_offered_; }
  /// Frames currently held back by a reorder decision.
  std::size_t frames_held() const { return holdback_.size(); }
  /// Injection totals summed over all destinations.
  FaultStats injected_totals() const;

 private:
  struct HeldFrame {
    SimTime due;
    std::uint64_t seq = 0;  // insertion order tiebreak
    EndpointId from = kInvalidEndpoint;
    EndpointId to = kInvalidEndpoint;
    Frame frame;
  };

  void advance_events();
  void apply_event(const FaultEvent& e);
  bool endpoint_down(EndpointId id) const;
  bool link_down(EndpointId a, EndpointId b) const;
  void drop_held(EndpointId id, bool crash);
  void corrupt_frame(Frame& frame);
  enum class DropCause : std::uint8_t { Loss, Disconnect, Crash };
  void mix_decision(EndpointId to, const Frame& f, std::uint8_t bits);
  void account_drop(FaultStats& st, const Frame& f, DropCause cause);
  static std::uint64_t pair_key(EndpointId a, EndpointId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  Transport& inner_;
  SimClock& clock_;
  FaultPlan plan_;
  Rng fault_rng_;
  std::size_t next_event_ = 0;

  std::unordered_set<EndpointId> downed_endpoints_;
  std::unordered_set<std::uint64_t> downed_pairs_;

  std::vector<HeldFrame> holdback_;
  std::uint64_t next_hold_seq_ = 0;

  mutable std::unordered_map<EndpointId, FaultStats> stats_;
  std::unordered_map<EndpointId, std::uint64_t> congested_bytes_;
  std::unordered_map<EndpointId, std::uint64_t> congested_frames_;
  std::uint64_t injected_send_failures_ = 0;

  std::uint64_t decision_hash_ = 14695981039346656037ull;  // FNV-1a basis
  std::uint64_t frames_offered_ = 0;
};

}  // namespace dyconits::net
