// Fault model for the simulated network (DESIGN.md §18).
//
// Two layers, both deterministic:
//
//  * per-link probabilistic faults (LinkFaults): every frame independently
//    drawn against loss / duplication / corruption / reorder probabilities
//    from a dedicated fault RNG stream, so a fault schedule replays
//    byte-identically from its seed and the no-fault jitter stream is
//    untouched;
//  * scheduled events (FaultEvent): link flaps, bidirectional partitions,
//    and endpoint crash/restart pinned to simulated-time instants.
//
// The receiving endpoint accounts every undelivered frame (DropStats) so
// chaos tests can close the conservation ledger: every frame put on the
// wire is either delivered, a counted duplicate, a counted drop, or still
// in flight.
#pragma once

#include <cstdint>
#include <vector>

#include "util/sim_time.h"

namespace dyconits::net {

using EndpointId = std::uint32_t;
inline constexpr EndpointId kInvalidEndpoint = 0;

/// Per-frame fault probabilities on a link, applied in a fixed draw order
/// (loss, duplicate, corrupt, reorder) so the RNG stream is reproducible.
struct LinkFaults {
  double loss = 0.0;       ///< frame silently dropped in flight
  double duplicate = 0.0;  ///< frame delivered twice
  double corrupt = 0.0;    ///< payload bit flips (decode must reject)
  double reorder = 0.0;    ///< frame exempted from FIFO and delayed extra
  /// Extra delay ceiling for a reordered frame: uniform in [0, reorder_extra].
  SimDuration reorder_extra = SimDuration::millis(120);
  /// Probability the *send itself* fails (a modeled EAGAIN: the datagram
  /// never reaches the wire and the sender knows). Drawn only by
  /// FaultInjectingTransport — the sim wire cannot refuse a send, so this
  /// is deliberately excluded from any() and the sim's per-frame draw
  /// stream is unchanged by it.
  double send_fail = 0.0;

  bool any() const {
    return loss > 0.0 || duplicate > 0.0 || corrupt > 0.0 || reorder > 0.0;
  }
};

/// A scheduled fault pinned to a simulated-time instant. Link events name
/// both endpoints; endpoint events use `a` only.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    LinkDown,  ///< cut the a<->b link; in-flight frames drop (accounted)
    LinkUp,    ///< restore the link with its pre-fault parameters
    Crash,     ///< endpoint a dies: inbox wiped, traffic to/from it refused
    Restart,   ///< endpoint a comes back (state loss is the app's problem)
  };

  SimTime at;
  Kind kind = Kind::LinkDown;
  EndpointId a = kInvalidEndpoint;
  EndpointId b = kInvalidEndpoint;
};

/// A complete, replayable fault schedule: a seed for the fault RNG stream,
/// default per-link fault rates, and scheduled events (applied in time
/// order as the sim clock advances past them).
struct FaultPlan {
  std::uint64_t seed = 1;
  LinkFaults all_links;
  std::vector<FaultEvent> events;

  bool empty() const { return !all_links.any() && events.empty(); }
};

/// Undelivered-frame accounting at the receiving endpoint. `frames`/`bytes`
/// total every frame that got onto the wire but was never delivered;
/// the cause counters partition `frames` and the `*_bytes` counters
/// partition `bytes` the same way, so conservation closes in bytes too.
struct DropStats {
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::uint64_t loss = 0;        ///< random in-flight loss
  std::uint64_t disconnect = 0;  ///< in flight when the link was cut
  std::uint64_t crash = 0;       ///< wiped by an endpoint crash
  std::uint64_t loss_bytes = 0;
  std::uint64_t disconnect_bytes = 0;
  std::uint64_t crash_bytes = 0;
};

/// Per-endpoint fault observability (receiver side). `refused` counts send
/// attempts that never reached the wire (no link, or an endpoint crashed) —
/// they are not in DropStats because no bytes were transmitted.
struct FaultStats {
  DropStats dropped;
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;  ///< extra copies delivered
  std::uint64_t reordered = 0;
  std::uint64_t refused = 0;
};

}  // namespace dyconits::net
