// Encode-once broadcast frames (DESIGN.md §11). A message fanned out to N
// subscribers has one wire payload; only the per-session transport sequence
// number differs. SharedFrame holds that payload once, refcounted, and
// instance() stamps a per-recipient Frame by copying the bytes into a
// pooled buffer — one serialization per broadcast instead of N.
//
// Ownership rules: the master payload is immutable for the SharedFrame's
// lifetime and returns to the BufferPool when the last reference dies.
// Every instance() result is an independent pooled copy, so downstream
// mutation (fault-layer corruption, in-place decode) never aliases the
// master or a sibling recipient's frame.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/buffer_pool.h"
#include "net/transport.h"

namespace dyconits::net {

class SharedFrame {
 public:
  SharedFrame() = default;
  SharedFrame(std::uint8_t tag, std::vector<std::uint8_t> payload)
      : master_(std::make_shared<Master>(tag, std::move(payload))) {}

  bool valid() const { return master_ != nullptr; }
  std::uint8_t tag() const { return master_->tag; }
  const std::vector<std::uint8_t>& payload() const { return master_->payload; }

  /// One recipient's copy: identical tag and payload bytes, caller's seq.
  Frame instance(std::uint32_t seq, SimTime trace_origin) const {
    Frame f;
    f.tag = master_->tag;
    f.seq = seq;
    f.trace_origin = trace_origin;
    std::vector<std::uint8_t> buf = BufferPool::instance().acquire();
    buf.assign(master_->payload.begin(), master_->payload.end());
    f.payload = std::move(buf);
    return f;
  }

 private:
  struct Master {
    Master(std::uint8_t t, std::vector<std::uint8_t> p)
        : tag(t), payload(std::move(p)) {}
    ~Master() { BufferPool::instance().release(std::move(payload)); }
    Master(const Master&) = delete;
    Master& operator=(const Master&) = delete;

    std::uint8_t tag = 0;
    std::vector<std::uint8_t> payload;
  };

  std::shared_ptr<const Master> master_;
};

}  // namespace dyconits::net
