#include "net/sim_network.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "net/buffer_pool.h"
#include "trace/trace.h"

namespace dyconits::net {

SimNetwork::SimNetwork(const SimClock& clock, std::uint64_t seed)
    : clock_(clock), rng_(seed), fault_rng_(seed ^ 0xFA177ull) {
  endpoints_.emplace_back();  // id 0 = invalid
}

EndpointId SimNetwork::create_endpoint(std::string name) {
  EndpointState st;
  st.name = std::move(name);
  endpoints_.push_back(std::move(st));
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

const std::string& SimNetwork::endpoint_name(EndpointId id) const {
  return endpoints_.at(id).name;
}

void SimNetwork::connect(EndpointId a, EndpointId b, LinkParams params) {
  links_[pair_key(a, b)] = params;
  links_[pair_key(b, a)] = params;
  downed_links_.erase(pair_key(a, b));
  downed_links_.erase(pair_key(b, a));
}

void SimNetwork::disconnect(EndpointId a, EndpointId b) {
  links_.erase(pair_key(a, b));
  links_.erase(pair_key(b, a));
  drop_in_flight(a, b, DropCause::Disconnect);
  drop_in_flight(b, a, DropCause::Disconnect);
}

bool SimNetwork::connected(EndpointId a, EndpointId b) const {
  return links_.count(pair_key(a, b)) > 0;
}

void SimNetwork::set_egress_rate(EndpointId id, std::uint64_t bytes_per_second) {
  endpoints_.at(id).egress_rate = bytes_per_second;
}

void SimNetwork::set_fault_plan(FaultPlan plan) {
  plan_ = std::move(plan);
  std::stable_sort(plan_.events.begin(), plan_.events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
  next_event_ = 0;
  fault_rng_ = Rng(plan_.seed);
}

void SimNetwork::set_link_faults(EndpointId a, EndpointId b, LinkFaults faults) {
  link_fault_overrides_[pair_key(a, b)] = faults;
  link_fault_overrides_[pair_key(b, a)] = faults;
}

void SimNetwork::clear_link_faults() {
  link_fault_overrides_.clear();
  plan_.all_links = LinkFaults{};
}

void SimNetwork::advance_faults() {
  while (next_event_ < plan_.events.size() &&
         plan_.events[next_event_].at <= clock_.now()) {
    const FaultEvent e = plan_.events[next_event_++];
    switch (e.kind) {
      case FaultEvent::Kind::LinkDown: set_link_down(e.a, e.b); break;
      case FaultEvent::Kind::LinkUp: set_link_up(e.a, e.b); break;
      case FaultEvent::Kind::Crash: crash(e.a); break;
      case FaultEvent::Kind::Restart: restart(e.a); break;
    }
  }
}

void SimNetwork::crash(EndpointId id) {
  EndpointState& st = endpoints_.at(id);
  if (st.crashed) return;
  st.crashed = true;
  wipe_inbox(id, DropCause::Crash);
  TRACE_INSTANT("net.fault.crash");
}

void SimNetwork::restart(EndpointId id) {
  EndpointState& st = endpoints_.at(id);
  if (!st.crashed) return;
  st.crashed = false;
  TRACE_INSTANT("net.fault.restart");
}

bool SimNetwork::crashed(EndpointId id) const { return endpoints_.at(id).crashed; }

void SimNetwork::set_link_down(EndpointId a, EndpointId b) {
  bool any = false;
  for (const auto& [src, dst] : {std::pair{a, b}, std::pair{b, a}}) {
    const auto it = links_.find(pair_key(src, dst));
    if (it == links_.end()) continue;
    downed_links_[pair_key(src, dst)] = it->second;
    links_.erase(it);
    drop_in_flight(src, dst, DropCause::Disconnect);
    any = true;
  }
  if (any) TRACE_INSTANT("net.fault.link_down");
}

void SimNetwork::set_link_up(EndpointId a, EndpointId b) {
  bool any = false;
  for (const auto& [src, dst] : {std::pair{a, b}, std::pair{b, a}}) {
    const auto it = downed_links_.find(pair_key(src, dst));
    if (it == downed_links_.end()) continue;
    links_[pair_key(src, dst)] = it->second;
    downed_links_.erase(it);
    any = true;
  }
  if (any) TRACE_INSTANT("net.fault.link_up");
}

const LinkFaults* SimNetwork::active_faults(EndpointId from, EndpointId to) const {
  const auto it = link_fault_overrides_.find(pair_key(from, to));
  if (it != link_fault_overrides_.end()) return it->second.any() ? &it->second : nullptr;
  return plan_.all_links.any() ? &plan_.all_links : nullptr;
}

void SimNetwork::account_drop(EndpointState& dst, const Frame& frame, DropCause cause) {
  const std::size_t size = frame.wire_size();
  dst.faults.dropped.frames += 1;
  dst.faults.dropped.bytes += size;
  switch (cause) {
    case DropCause::Loss:
      dst.faults.dropped.loss += 1;
      dst.faults.dropped.loss_bytes += size;
      break;
    case DropCause::Disconnect:
      dst.faults.dropped.disconnect += 1;
      dst.faults.dropped.disconnect_bytes += size;
      break;
    case DropCause::Crash:
      dst.faults.dropped.crash += 1;
      dst.faults.dropped.crash_bytes += size;
      break;
  }
  if (frame.tag < kMaxTags) dst.dropped_by_tag[frame.tag] += size;
  total_dropped_frames_ += 1;
  total_dropped_bytes_ += size;
}

void SimNetwork::drop_in_flight(EndpointId from, EndpointId to, DropCause cause) {
  EndpointState& dst = endpoints_.at(to);
  if (dst.inbox.empty()) return;
  Inbox kept;
  while (!dst.inbox.empty()) {
    // priority_queue::top is const; the pop-after-move is safe because we
    // never read the moved-from element.
    auto& pf = const_cast<PendingFrame&>(dst.inbox.top());
    if (pf.delivery.from == from) {
      dst.pending_bytes -= pf.delivery.frame.wire_size();
      account_drop(dst, pf.delivery.frame, cause);
      BufferPool::instance().release(std::move(pf.delivery.frame.payload));
    } else {
      kept.push(std::move(pf));
    }
    dst.inbox.pop();
  }
  dst.inbox = std::move(kept);
}

void SimNetwork::wipe_inbox(EndpointId id, DropCause cause) {
  EndpointState& dst = endpoints_.at(id);
  while (!dst.inbox.empty()) {
    auto& pf = const_cast<PendingFrame&>(dst.inbox.top());
    dst.pending_bytes -= pf.delivery.frame.wire_size();
    account_drop(dst, pf.delivery.frame, cause);
    BufferPool::instance().release(std::move(pf.delivery.frame.payload));
    dst.inbox.pop();
  }
}

void SimNetwork::corrupt_frame(Frame& frame) {
  if (frame.payload.empty()) {
    // Nothing to flip; mangle the tag into one decode will reject.
    frame.tag = static_cast<std::uint8_t>(kMaxTags - 1);
    return;
  }
  const std::uint64_t flips = 1 + fault_rng_.next_below(8);
  for (std::uint64_t i = 0; i < flips; ++i) {
    const std::uint64_t pos = fault_rng_.next_below(frame.payload.size());
    const auto bit = static_cast<std::uint8_t>(1u << fault_rng_.next_below(8));
    frame.payload[pos] ^= bit;
  }
}

bool SimNetwork::send(EndpointId from, EndpointId to, Frame frame) {
  TRACE_SCOPE("net.send");
  advance_faults();
  EndpointState& src = endpoints_.at(from);
  EndpointState& dst = endpoints_.at(to);
  if (src.crashed || dst.crashed) {
    dst.faults.refused += 1;
    return false;
  }
  const auto link_it = links_.find(pair_key(from, to));
  if (link_it == links_.end()) {
    dst.faults.refused += 1;
    return false;
  }
  assert(frame.tag < kMaxTags);

  // Fault draws happen in a fixed order per frame so the stream replays.
  const LinkFaults* faults = active_faults(from, to);
  bool lost = false, duplicated = false, corrupted = false, reordered = false;
  if (faults != nullptr) {
    lost = fault_rng_.chance(faults->loss);
    duplicated = fault_rng_.chance(faults->duplicate);
    corrupted = fault_rng_.chance(faults->corrupt);
    reordered = fault_rng_.chance(faults->reorder);
  }

  const std::size_t size = frame.wire_size();
  const SimTime now = clock_.now();

  // Uplink serialization: the frame departs once the uplink is free and its
  // bytes have been clocked out.
  SimTime depart = now;
  if (src.egress_rate > 0) {
    const SimTime start = std::max(now, src.egress_free);
    const auto tx_micros = static_cast<std::int64_t>(
        static_cast<double>(size) * 1e6 / static_cast<double>(src.egress_rate));
    depart = start + SimDuration::micros(tx_micros);
    src.egress_free = depart;
  }

  const LinkParams& link = link_it->second;
  SimDuration latency = link.latency;
  if (link.jitter > 0.0) {
    const double f = 1.0 + rng_.next_double_in(-link.jitter, link.jitter);
    latency = SimDuration::micros(
        static_cast<std::int64_t>(static_cast<double>(latency.count_micros()) * f));
  }

  SimTime arrival = depart + latency;
  if (reordered) {
    // The frame took a detour: extra delay, exempt from the FIFO floor (and
    // it doesn't raise the floor — later frames may overtake it).
    const auto extra_us =
        static_cast<std::uint64_t>(faults->reorder_extra.count_micros());
    if (extra_us > 0) {
      arrival = arrival + SimDuration::micros(
                              static_cast<std::int64_t>(fault_rng_.next_below(extra_us + 1)));
    }
    dst.faults.reordered += 1;
    TRACE_INSTANT("net.fault.reorder");
  } else if (link.fifo) {
    // TCP-like per-pair FIFO: never deliver before an earlier frame.
    SimTime& floor = last_arrival_[pair_key(from, to)];
    if (arrival < floor) arrival = floor;
    floor = arrival;
  }

  // The frame is on the wire: sender-side accounting is unconditional.
  src.egress_bytes += size;
  src.egress_frames += 1;
  src.egress_by_tag[frame.tag] += size;
  dst.offered_frames += 1;
  total_bytes_ += size;
  total_frames_ += 1;

  // Wire digest: hash what the sender put on the wire (pre-corruption), in
  // send order. Proves byte-identical traffic across flush-thread counts.
  {
    constexpr std::uint64_t kFnvPrime = 1099511628211ull;
    std::uint64_t h = wire_hash_;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h = (h ^ (v & 0xffu)) * kFnvPrime;
        v >>= 8;
      }
    };
    mix(from);
    mix(to);
    mix(frame.tag);
    mix(frame.seq);
    for (const std::uint8_t b : frame.payload) h = (h ^ b) * kFnvPrime;
    wire_hash_ = h;
  }

  if (lost) {
    // The sender cannot tell; only the receiver's ledger records the loss.
    account_drop(dst, frame, DropCause::Loss);
    BufferPool::instance().release(std::move(frame.payload));
    TRACE_INSTANT("net.fault.loss");
    return true;
  }

  if (corrupted) {
    corrupt_frame(frame);
    dst.faults.corrupted += 1;
    TRACE_INSTANT("net.fault.corrupt");
  }

  dst.ingress_bytes += size;
  dst.ingress_frames += 1;
  if (duplicated) {
    // Deliver a second, slightly later copy (also exempt from the floor).
    const SimTime dup_arrival =
        arrival + SimDuration::micros(static_cast<std::int64_t>(fault_rng_.next_below(2001)));
    dst.ingress_bytes += size;
    dst.ingress_frames += 1;
    dst.faults.duplicated += 1;
    dst.pending_bytes += size;
    dst.inbox.push(PendingFrame{dup_arrival, next_seq_++,
                                Delivery{from, frame, now, dup_arrival}});
    TRACE_INSTANT("net.fault.duplicate");
  }
  dst.pending_bytes += size;
  dst.inbox.push(PendingFrame{arrival, next_seq_++,
                              Delivery{from, std::move(frame), now, arrival}});
  return true;
}

std::vector<Delivery> SimNetwork::poll(EndpointId to) {
  TRACE_SCOPE("net.poll");
  advance_faults();
  EndpointState& dst = endpoints_.at(to);
  std::vector<Delivery> out;
  if (dst.crashed) return out;  // inbox was wiped at crash time
  const SimTime now = clock_.now();
  while (!dst.inbox.empty() && dst.inbox.top().arrival <= now) {
    out.push_back(std::move(const_cast<PendingFrame&>(dst.inbox.top()).delivery));
    dst.inbox.pop();
    const std::size_t size = out.back().frame.wire_size();
    dst.pending_bytes -= size;
    dst.polled_bytes += size;
  }
  return out;
}

std::uint64_t SimNetwork::egress_bytes(EndpointId id) const {
  return endpoints_.at(id).egress_bytes;
}

std::uint64_t SimNetwork::ingress_bytes(EndpointId id) const {
  return endpoints_.at(id).ingress_bytes;
}

std::uint64_t SimNetwork::egress_frames(EndpointId id) const {
  return endpoints_.at(id).egress_frames;
}

std::uint64_t SimNetwork::ingress_frames(EndpointId id) const {
  return endpoints_.at(id).ingress_frames;
}

std::uint64_t SimNetwork::egress_bytes_by_tag(EndpointId id, std::uint8_t tag) const {
  return endpoints_.at(id).egress_by_tag.at(tag);
}

std::uint64_t SimNetwork::offered_frames(EndpointId id) const {
  return endpoints_.at(id).offered_frames;
}

const FaultStats& SimNetwork::fault_stats(EndpointId id) const {
  return endpoints_.at(id).faults;
}

std::uint64_t SimNetwork::dropped_bytes_by_tag(EndpointId id, std::uint8_t tag) const {
  return endpoints_.at(id).dropped_by_tag.at(tag);
}

std::size_t SimNetwork::pending_count(EndpointId to) const {
  return endpoints_.at(to).inbox.size();
}

std::uint64_t SimNetwork::pending_bytes(EndpointId to) const {
  return endpoints_.at(to).pending_bytes;
}

std::uint64_t SimNetwork::polled_bytes(EndpointId to) const {
  return endpoints_.at(to).polled_bytes;
}

}  // namespace dyconits::net
