#include "net/sim_network.h"

#include <cassert>

#include "trace/trace.h"

namespace dyconits::net {

SimNetwork::SimNetwork(const SimClock& clock, std::uint64_t seed)
    : clock_(clock), rng_(seed) {
  endpoints_.emplace_back();  // id 0 = invalid
}

EndpointId SimNetwork::create_endpoint(std::string name) {
  EndpointState st;
  st.name = std::move(name);
  endpoints_.push_back(std::move(st));
  return static_cast<EndpointId>(endpoints_.size() - 1);
}

const std::string& SimNetwork::endpoint_name(EndpointId id) const {
  return endpoints_.at(id).name;
}

void SimNetwork::connect(EndpointId a, EndpointId b, LinkParams params) {
  links_[pair_key(a, b)] = params;
  links_[pair_key(b, a)] = params;
}

void SimNetwork::disconnect(EndpointId a, EndpointId b) {
  links_.erase(pair_key(a, b));
  links_.erase(pair_key(b, a));
}

bool SimNetwork::connected(EndpointId a, EndpointId b) const {
  return links_.count(pair_key(a, b)) > 0;
}

void SimNetwork::set_egress_rate(EndpointId id, std::uint64_t bytes_per_second) {
  endpoints_.at(id).egress_rate = bytes_per_second;
}

bool SimNetwork::send(EndpointId from, EndpointId to, Frame frame) {
  TRACE_SCOPE("net.send");
  const auto link_it = links_.find(pair_key(from, to));
  if (link_it == links_.end()) return false;
  assert(frame.tag < kMaxTags);

  EndpointState& src = endpoints_.at(from);
  EndpointState& dst = endpoints_.at(to);
  const std::size_t size = frame.wire_size();
  const SimTime now = clock_.now();

  // Uplink serialization: the frame departs once the uplink is free and its
  // bytes have been clocked out.
  SimTime depart = now;
  if (src.egress_rate > 0) {
    const SimTime start = std::max(now, src.egress_free);
    const auto tx_micros = static_cast<std::int64_t>(
        static_cast<double>(size) * 1e6 / static_cast<double>(src.egress_rate));
    depart = start + SimDuration::micros(tx_micros);
    src.egress_free = depart;
  }

  const LinkParams& link = link_it->second;
  SimDuration latency = link.latency;
  if (link.jitter > 0.0) {
    const double f = 1.0 + rng_.next_double_in(-link.jitter, link.jitter);
    latency = SimDuration::micros(
        static_cast<std::int64_t>(static_cast<double>(latency.count_micros()) * f));
  }

  SimTime arrival = depart + latency;
  if (link.fifo) {
    // TCP-like per-pair FIFO: never deliver before an earlier frame.
    SimTime& floor = last_arrival_[pair_key(from, to)];
    if (arrival < floor) arrival = floor;
    floor = arrival;
  }

  src.egress_bytes += size;
  src.egress_frames += 1;
  src.egress_by_tag[frame.tag] += size;
  dst.ingress_bytes += size;
  total_bytes_ += size;
  total_frames_ += 1;

  dst.inbox.push(PendingFrame{arrival, next_seq_++,
                              Delivery{from, std::move(frame), now, arrival}});
  return true;
}

std::vector<Delivery> SimNetwork::poll(EndpointId to) {
  TRACE_SCOPE("net.poll");
  EndpointState& dst = endpoints_.at(to);
  std::vector<Delivery> out;
  const SimTime now = clock_.now();
  while (!dst.inbox.empty() && dst.inbox.top().arrival <= now) {
    // priority_queue::top is const; the pop-after-move is safe because we
    // never read the moved-from element.
    out.push_back(std::move(const_cast<PendingFrame&>(dst.inbox.top()).delivery));
    dst.inbox.pop();
  }
  return out;
}

std::uint64_t SimNetwork::egress_bytes(EndpointId id) const {
  return endpoints_.at(id).egress_bytes;
}

std::uint64_t SimNetwork::ingress_bytes(EndpointId id) const {
  return endpoints_.at(id).ingress_bytes;
}

std::uint64_t SimNetwork::egress_frames(EndpointId id) const {
  return endpoints_.at(id).egress_frames;
}

std::uint64_t SimNetwork::egress_bytes_by_tag(EndpointId id, std::uint8_t tag) const {
  return endpoints_.at(id).egress_by_tag.at(tag);
}

std::size_t SimNetwork::pending_count(EndpointId to) const {
  return endpoints_.at(to).inbox.size();
}

}  // namespace dyconits::net
