// In-process simulated network.
//
// Models point-to-point links with latency (+ optional jitter), per-pair
// FIFO ordering (TCP-like), an optional per-endpoint egress rate limit
// (which produces realistic queueing delay when a sender saturates its
// uplink — the mechanism by which bandwidth savings translate into latency
// savings), and exact byte accounting per endpoint and per message tag.
//
// Substitutes for the physical cluster used in the paper: the quantities
// the paper measures (bytes on the wire, delivery latency) are measured
// here on real serialized frames. See DESIGN.md §2.
#pragma once

#include <array>
#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/bytes.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace dyconits::net {

using EndpointId = std::uint32_t;
inline constexpr EndpointId kInvalidEndpoint = 0;

/// Highest message tag value + 1; tags index fixed-size accounting arrays.
inline constexpr std::size_t kMaxTags = 32;

/// A framed message: one tag byte plus an opaque payload. On the "wire" a
/// frame costs tag + varint(length) + payload bytes.
struct Frame {
  std::uint8_t tag = 0;
  std::vector<std::uint8_t> payload;

  /// Instrumentation only (a Yardstick-style measurement tap): the sim time
  /// of the oldest game event this frame carries. Receivers use it to
  /// compute end-to-end update latency. NOT part of wire_size() — a real
  /// deployment would not ship it.
  SimTime trace_origin;

  std::size_t wire_size() const { return 1 + varint_size(payload.size()) + payload.size(); }
};

struct Delivery {
  EndpointId from = kInvalidEndpoint;
  Frame frame;
  SimTime sent;     // when send() was called
  SimTime arrival;  // when the frame became visible to the receiver
};

struct LinkParams {
  SimDuration latency = SimDuration::millis(25);
  /// Uniform jitter as a fraction of latency, in [0, 1): each frame's
  /// latency is latency * (1 + U(-jitter, +jitter)).
  double jitter = 0.0;
  /// TCP-like in-order delivery per (src,dst) pair. Set false to model a
  /// UDP-like transport where jitter can reorder frames — receivers then
  /// see non-zero order error and must guard against stale updates.
  bool fifo = true;
};

class SimNetwork {
 public:
  /// The network reads the shared simulation clock; poll() releases frames
  /// whose arrival time has passed.
  SimNetwork(const SimClock& clock, std::uint64_t seed = 1);

  EndpointId create_endpoint(std::string name);
  const std::string& endpoint_name(EndpointId id) const;

  /// Establishes a bidirectional link. Reconnecting overwrites params.
  void connect(EndpointId a, EndpointId b, LinkParams params);
  void disconnect(EndpointId a, EndpointId b);
  bool connected(EndpointId a, EndpointId b) const;

  /// Egress serialization rate in bytes/second; 0 means unlimited.
  void set_egress_rate(EndpointId id, std::uint64_t bytes_per_second);

  /// Sends a frame; returns false (and drops it, uncounted) if the
  /// endpoints are not connected.
  bool send(EndpointId from, EndpointId to, Frame frame);

  /// All frames for `to` whose arrival time <= clock.now(), in arrival
  /// order (stable across equal arrivals).
  std::vector<Delivery> poll(EndpointId to);

  // -- Accounting (monotonic counters over the whole run) --
  std::uint64_t egress_bytes(EndpointId id) const;
  std::uint64_t ingress_bytes(EndpointId id) const;
  std::uint64_t egress_frames(EndpointId id) const;
  std::uint64_t egress_bytes_by_tag(EndpointId id, std::uint8_t tag) const;
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_frames() const { return total_frames_; }

  /// Frames enqueued but not yet polled by `to`.
  std::size_t pending_count(EndpointId to) const;

 private:
  struct PendingFrame {
    SimTime arrival;
    std::uint64_t seq;  // global sequence for stable ordering
    Delivery delivery;

    bool operator>(const PendingFrame& o) const {
      if (arrival != o.arrival) return arrival > o.arrival;
      return seq > o.seq;
    }
  };

  struct EndpointState {
    std::string name;
    std::uint64_t egress_bytes = 0;
    std::uint64_t ingress_bytes = 0;
    std::uint64_t egress_frames = 0;
    std::array<std::uint64_t, kMaxTags> egress_by_tag{};
    std::uint64_t egress_rate = 0;  // bytes/sec, 0 = unlimited
    SimTime egress_free;            // uplink busy until this time
    std::priority_queue<PendingFrame, std::vector<PendingFrame>, std::greater<>> inbox;
  };

  static std::uint64_t pair_key(EndpointId a, EndpointId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  const SimClock& clock_;
  Rng rng_;
  std::vector<EndpointState> endpoints_;  // index = id (0 unused)
  std::unordered_map<std::uint64_t, LinkParams> links_;        // directed key
  std::unordered_map<std::uint64_t, SimTime> last_arrival_;    // FIFO floor per pair
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_frames_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dyconits::net
