// In-process simulated network.
//
// Models point-to-point links with latency (+ optional jitter), per-pair
// FIFO ordering (TCP-like), an optional per-endpoint egress rate limit
// (which produces realistic queueing delay when a sender saturates its
// uplink — the mechanism by which bandwidth savings translate into latency
// savings), and exact byte accounting per endpoint and per message tag.
//
// A deterministic fault layer (see faults.h) injects per-link loss,
// duplication, corruption and reorder, plus scheduled link flaps,
// partitions, and endpoint crash/restart — all drawn from a dedicated
// seeded RNG stream so any fault schedule replays byte-identically.
//
// Substitutes for the physical cluster used in the paper: the quantities
// the paper measures (bytes on the wire, delivery latency) are measured
// here on real serialized frames. See DESIGN.md §2 and §18.
#pragma once

#include <array>
#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/bytes.h"
#include "net/faults.h"
#include "net/transport.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace dyconits::net {

struct LinkParams {
  SimDuration latency = SimDuration::millis(25);
  /// Uniform jitter as a fraction of latency, in [0, 1): each frame's
  /// latency is latency * (1 + U(-jitter, +jitter)).
  double jitter = 0.0;
  /// TCP-like in-order delivery per (src,dst) pair. Set false to model a
  /// UDP-like transport where jitter can reorder frames — receivers then
  /// see non-zero order error and must guard against stale updates.
  bool fifo = true;
};

class SimNetwork final : public Transport {
 public:
  /// The network reads the shared simulation clock; poll() releases frames
  /// whose arrival time has passed.
  SimNetwork(const SimClock& clock, std::uint64_t seed = 1);

  EndpointId create_endpoint(std::string name) override;
  const std::string& endpoint_name(EndpointId id) const override;

  /// Establishes a bidirectional link. Reconnecting overwrites params.
  void connect(EndpointId a, EndpointId b, LinkParams params);
  /// Cuts the link. Frames in flight on it are dropped and accounted in
  /// the receiving endpoint's DropStats (cause: disconnect).
  void disconnect(EndpointId a, EndpointId b) override;
  bool connected(EndpointId a, EndpointId b) const override;

  /// Egress serialization rate in bytes/second; 0 means unlimited.
  void set_egress_rate(EndpointId id, std::uint64_t bytes_per_second);

  /// Sends a frame. Returns false if the endpoints are not connected or
  /// either has crashed (counted in the receiver's FaultStats::refused).
  /// Returns true for frames that got on the wire, even ones the fault
  /// layer later loses — the sender cannot know.
  bool send(EndpointId from, EndpointId to, Frame frame) override;

  /// All frames for `to` whose arrival time <= clock.now(), in arrival
  /// order (stable across equal arrivals).
  std::vector<Delivery> poll(EndpointId to) override;

  // -- Fault injection (see faults.h; all deterministic from the seed) --

  /// Installs a fault schedule: reseeds the fault RNG stream, applies
  /// `all_links` rates to every link without an override, and arms the
  /// scheduled events (sorted by time; applied as the clock passes them).
  void set_fault_plan(FaultPlan plan);
  const FaultPlan& fault_plan() const { return plan_; }

  /// Per-link fault-rate override (both directions). An explicit override
  /// takes precedence over FaultPlan::all_links, even when all-zero.
  void set_link_faults(EndpointId a, EndpointId b, LinkFaults faults);
  /// Heals the network: zeroes all probabilistic fault rates (scheduled
  /// events and drop accounting are unaffected).
  void clear_link_faults();

  /// Applies every scheduled FaultEvent whose time has passed. send() and
  /// poll() call this lazily; call it explicitly (e.g. once per tick) so
  /// events on idle links still fire on time.
  void advance_faults();

  /// Endpoint crash: wipes its inbox (accounted as dropped, cause: crash)
  /// and refuses traffic to/from it until restart(). Links survive.
  void crash(EndpointId id);
  void restart(EndpointId id);
  bool crashed(EndpointId id) const;

  /// Cuts / restores a link keeping its parameters (a scheduled flap or
  /// partition edge). In-flight frames drop on cut, accounted like
  /// disconnect(). set_link_up is a no-op unless the link is down.
  void set_link_down(EndpointId a, EndpointId b);
  void set_link_up(EndpointId a, EndpointId b);

  // -- Accounting (monotonic counters over the whole run) --
  std::uint64_t egress_bytes(EndpointId id) const override;
  std::uint64_t ingress_bytes(EndpointId id) const override;
  std::uint64_t egress_frames(EndpointId id) const override;
  std::uint64_t ingress_frames(EndpointId id) const override;
  std::uint64_t egress_bytes_by_tag(EndpointId id, std::uint8_t tag) const;
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_frames() const { return total_frames_; }

  /// Order-sensitive FNV-1a digest over every frame that got on the wire
  /// (from, to, tag, seq, payload — pre-corruption, including frames the
  /// fault layer later loses; refused sends excluded). Two runs emitted
  /// byte-identical traffic in the same order iff their hashes match —
  /// the oracle check behind the parallel flush pipeline (DESIGN.md §9).
  std::uint64_t wire_hash() const { return wire_hash_; }

  /// Frames that got on the wire addressed to `id` (delivered, lost, or in
  /// flight; duplicate copies not counted). Conservation, per endpoint
  /// (ingress counts every enqueued copy, including ones later wiped):
  ///   offered == ingress_frames - duplicated + dropped.loss
  ///   ingress_frames == polled + pending + dropped.disconnect + dropped.crash
  /// and identically in bytes (loss bytes excluded: lost frames are
  /// accounted before they ever ingress):
  ///   ingress_bytes == polled_bytes + pending_bytes
  ///                    + dropped.disconnect_bytes + dropped.crash_bytes
  std::uint64_t offered_frames(EndpointId id) const;

  /// Receiver-side fault counters, including undelivered-frame accounting.
  const FaultStats& fault_stats(EndpointId id) const;
  /// Bytes dropped en route to `id`, by the frame's tag.
  std::uint64_t dropped_bytes_by_tag(EndpointId id, std::uint8_t tag) const;
  std::uint64_t total_dropped_frames() const { return total_dropped_frames_; }
  std::uint64_t total_dropped_bytes() const { return total_dropped_bytes_; }

  /// Frames enqueued but not yet polled by `to`.
  std::size_t pending_count(EndpointId to) const;
  /// Wire bytes enqueued but not yet polled by `to` — the backpressure
  /// signal the server's overload controller reads: a subscriber whose
  /// inbox bytes keep growing is not draining its downlink. The sim owns
  /// both ends of the wire, so this is a real signal here.
  bool has_backlog_signal() const override { return true; }
  std::uint64_t pending_bytes(EndpointId to) const override;
  const FaultStats* fault_stats_if_any(EndpointId id) const override {
    return &fault_stats(id);
  }
  /// Wire bytes `to` has polled out of its inbox so far.
  std::uint64_t polled_bytes(EndpointId to) const;

 private:
  struct PendingFrame {
    SimTime arrival;
    std::uint64_t seq;  // global sequence for stable ordering
    Delivery delivery;

    bool operator>(const PendingFrame& o) const {
      if (arrival != o.arrival) return arrival > o.arrival;
      return seq > o.seq;
    }
  };

  using Inbox =
      std::priority_queue<PendingFrame, std::vector<PendingFrame>, std::greater<>>;

  struct EndpointState {
    std::string name;
    std::uint64_t egress_bytes = 0;
    std::uint64_t ingress_bytes = 0;
    std::uint64_t egress_frames = 0;
    std::uint64_t ingress_frames = 0;
    std::uint64_t offered_frames = 0;
    std::array<std::uint64_t, kMaxTags> egress_by_tag{};
    std::array<std::uint64_t, kMaxTags> dropped_by_tag{};
    FaultStats faults;
    bool crashed = false;
    std::uint64_t egress_rate = 0;  // bytes/sec, 0 = unlimited
    SimTime egress_free;            // uplink busy until this time
    Inbox inbox;
    std::uint64_t pending_bytes = 0;  // wire bytes currently in the inbox
    std::uint64_t polled_bytes = 0;
  };

  enum class DropCause { Loss, Disconnect, Crash };

  static std::uint64_t pair_key(EndpointId a, EndpointId b) {
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }

  /// The fault rates applying to frames from->to, or nullptr for none.
  const LinkFaults* active_faults(EndpointId from, EndpointId to) const;
  void account_drop(EndpointState& dst, const Frame& frame, DropCause cause);
  /// Drops (and accounts) every in-flight frame from `from` in `to`'s inbox.
  void drop_in_flight(EndpointId from, EndpointId to, DropCause cause);
  void wipe_inbox(EndpointId id, DropCause cause);
  void corrupt_frame(Frame& frame);

  const SimClock& clock_;
  Rng rng_;
  /// Dedicated stream for fault draws: installing or exercising a fault
  /// plan never perturbs the jitter stream of a fault-free run.
  Rng fault_rng_;
  std::vector<EndpointState> endpoints_;  // index = id (0 unused)
  std::unordered_map<std::uint64_t, LinkParams> links_;        // directed key
  std::unordered_map<std::uint64_t, SimTime> last_arrival_;    // FIFO floor per pair
  FaultPlan plan_;
  std::size_t next_event_ = 0;  // cursor into plan_.events
  std::unordered_map<std::uint64_t, LinkFaults> link_fault_overrides_;  // directed
  std::unordered_map<std::uint64_t, LinkParams> downed_links_;          // directed
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_frames_ = 0;
  std::uint64_t total_dropped_frames_ = 0;
  std::uint64_t total_dropped_bytes_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t wire_hash_ = 14695981039346656037ull;  // FNV-1a offset basis
};

}  // namespace dyconits::net
