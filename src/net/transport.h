// The transport abstraction the server and bots speak through.
//
// `Transport` is the seam between game logic and packet delivery: both the
// in-process `SimNetwork` (the deterministic oracle every differential
// suite runs on) and `UdpTransport` (real non-blocking sockets, separate
// processes) implement it. The contract is deliberately the *application*
// view of a network: framed messages in, framed deliveries out, per-
// endpoint byte accounting — no link model, no fault injection, no
// sockets. Capabilities that only some backends have (a backpressure
// signal, fault-layer statistics) are optional queries so callers degrade
// gracefully instead of assuming the sim (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/bytes.h"
#include "net/faults.h"
#include "util/sim_time.h"

namespace dyconits::net {

/// Highest message tag value + 1; tags index fixed-size accounting arrays.
inline constexpr std::size_t kMaxTags = 32;

/// A framed message: one tag byte, a transport sequence number, and an
/// opaque payload. On the wire a frame costs
/// tag + varint(seq) + varint(length) + payload bytes — identical whether
/// the bytes are modeled (SimNetwork) or really sent (UdpTransport).
struct Frame {
  std::uint8_t tag = 0;
  /// Per-sender transport sequence number (1-based); 0 means unsequenced.
  /// Receivers use gaps in this to detect loss and trigger a resync
  /// (DESIGN.md §18). Modeled as header-protected: corruption flips
  /// payload bits, never the sequence number.
  std::uint32_t seq = 0;
  std::vector<std::uint8_t> payload;

  /// Instrumentation only (a Yardstick-style measurement tap): the sim time
  /// of the oldest game event this frame carries. Receivers use it to
  /// compute end-to-end update latency. NOT part of wire_size() — a real
  /// deployment would not ship it, and UdpTransport does not.
  SimTime trace_origin;

  std::size_t wire_size() const {
    return 1 + varint_size(seq) + varint_size(payload.size()) + payload.size();
  }
};

struct Delivery {
  EndpointId from = kInvalidEndpoint;
  Frame frame;
  SimTime sent;     // when send() was called (UDP: receive time — unknowable)
  SimTime arrival;  // when the frame became visible to the receiver
};

/// Send-side congestion counters (see Transport::send_pressure). A backend
/// that can fail to put bytes on the wire — a real socket hitting EAGAIN,
/// or an injected send fault — reports how often and how many bytes are
/// currently believed stuck. `congested_bytes` is a decaying estimate, not
/// a queue length: failed-datagram bytes accumulate and drain as later
/// flushes succeed, so a transient stall fades and a saturated socket holds
/// the signal high.
/// `congested_frames` decays the same way and counts refused send units, so
/// a frame-dominated cost model (net_cost_per_frame >> per-byte cost) still
/// sees backpressure that small frames would hide in the byte estimate.
struct SendPressure {
  std::uint64_t send_failures = 0;     ///< datagrams that failed outright
  std::uint64_t send_retries = 0;      ///< in-call retries after EAGAIN/ENOBUFS
  std::uint64_t dropped_datagrams = 0; ///< gave up after bounded retries
  std::uint64_t congested_bytes = 0;   ///< decaying estimate of stuck bytes
  std::uint64_t congested_frames = 0;  ///< decaying estimate of stuck sends
};

/// Abstract frame transport. Implementations: SimNetwork (in-process,
/// simulated latency/faults, deterministic), UdpTransport (real sockets).
///
/// Determinism boundary: everything ABOVE this interface — which frames are
/// sent, their order per destination, their tag/payload bytes — is a pure
/// function of simulation state. Everything below (arrival timing,
/// interleaving across senders, loss) is backend-specific. The per-session
/// WireHasher digests live above the boundary, which is what makes a UDP
/// run comparable bit-for-bit against the sim oracle (DESIGN.md §12).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Registers a named endpoint and returns its id (ids are backend-local;
  /// only names are comparable across backends).
  virtual EndpointId create_endpoint(std::string name) = 0;
  virtual const std::string& endpoint_name(EndpointId id) const = 0;

  /// Sends a frame. Returns false if the destination is unreachable as far
  /// as the sender can know (no link / no peer); true for frames that got
  /// on the wire, even ones later lost — the sender cannot know.
  virtual bool send(EndpointId from, EndpointId to, Frame frame) = 0;

  /// All frames currently deliverable to `to`, in arrival order.
  virtual std::vector<Delivery> poll(EndpointId to) = 0;

  virtual void disconnect(EndpointId a, EndpointId b) = 0;
  virtual bool connected(EndpointId a, EndpointId b) const = 0;

  // -- Accounting (monotonic wire-byte counters over the whole run) --
  virtual std::uint64_t egress_bytes(EndpointId id) const = 0;
  virtual std::uint64_t ingress_bytes(EndpointId id) const = 0;
  virtual std::uint64_t egress_frames(EndpointId id) const = 0;
  virtual std::uint64_t ingress_frames(EndpointId id) const = 0;

  // -- Optional capabilities (DESIGN.md §12) --
  //
  // The server's overload controller reads remote-inbox backpressure and
  // the chaos suite reads fault statistics. Both are observable only when
  // the backend owns both ends of the wire (the sim). Real backends return
  // the documented neutral value and the caller degrades: overload control
  // falls back to its local egress-queue signal, fault introspection
  // reports nothing.

  /// True iff pending_bytes() is a real backpressure signal. The sim owns
  /// both ends of the wire and reports the remote inbox; UdpTransport cannot
  /// see the remote socket buffer but reports a *local* congestion signal
  /// (staged bytes plus a decaying estimate of bytes that failed to send),
  /// which feeds the same overload machinery. Backends with neither report
  /// false and the server's backlog detection uses only its own staged
  /// egress bytes.
  virtual bool has_backlog_signal() const { return false; }
  /// Wire bytes enqueued for `to` but not yet polled; 0 when the backend
  /// has no visibility (see has_backlog_signal()).
  virtual std::uint64_t pending_bytes(EndpointId to) const {
    (void)to;
    return 0;
  }
  /// Receiver-side fault counters, or nullptr on backends without a fault
  /// layer. Callers must handle nullptr (the sim-only accessor that used to
  /// be called unconditionally from GameServer).
  virtual const FaultStats* fault_stats_if_any(EndpointId id) const {
    (void)id;
    return nullptr;
  }
  /// Pushes any coalesced/staged datagrams onto the wire. The sim sends
  /// synchronously, so the default is a no-op; UdpTransport batches frames
  /// into MTU-sized datagrams and flushes here (call once per tick).
  virtual void flush_egress() {}

  /// True iff send_pressure() reports real numbers: the backend can fail to
  /// put bytes on the wire (EAGAIN, full socket buffer, injected send
  /// faults) and counts those failures. The sim wire never refuses a send,
  /// so it reports false; UdpTransport and FaultInjectingTransport report
  /// true. GameServer folds the congested-byte estimate into its modeled
  /// tick cost so real socket saturation climbs the degradation ladder.
  virtual bool has_send_pressure() const { return false; }
  /// Per-destination send-failure counters (see SendPressure); all-zero on
  /// backends without send visibility. Pass kInvalidEndpoint for the
  /// transport-wide totals.
  virtual SendPressure send_pressure(EndpointId to) const {
    (void)to;
    return {};
  }
};

/// Order-sensitive FNV-1a digest over (tag, payload-length, payload) of
/// every frame mixed in — computed ABOVE the transport, before seq stamping
/// and fragmentation, so the same application byte stream hashes equally
/// over SimNetwork and UdpTransport. The e2e equivalence check (scripts/
/// verify.sh e2e-udp) compares these per session between a UDP run and the
/// sim prediction.
class WireHasher {
 public:
  void mix(std::uint8_t tag, const std::uint8_t* payload, std::size_t n) {
    mix_byte(tag);
    std::uint64_t len = n;
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<std::uint8_t>(len >> (8 * i)));
    for (std::size_t i = 0; i < n; ++i) mix_byte(payload[i]);
    ++frames_;
  }
  void mix(std::uint8_t tag, const std::vector<std::uint8_t>& payload) {
    mix(tag, payload.data(), payload.size());
  }
  void mix(const Frame& f) { mix(f.tag, f.payload); }

  std::uint64_t value() const { return hash_; }
  std::uint64_t frames() const { return frames_; }

 private:
  void mix_byte(std::uint8_t b) {
    hash_ ^= b;
    hash_ *= 1099511628211ull;
  }
  std::uint64_t hash_ = 14695981039346656037ull;  // FNV-1a offset basis
  std::uint64_t frames_ = 0;
};

}  // namespace dyconits::net
