#include "net/udp_framing.h"

#include "net/buffer_pool.h"

namespace dyconits::net::udpwire {

void append_frame(std::vector<std::uint8_t>& out, const Frame& f) {
  // ByteWriter adopt-clears its buffer, but datagram coalescing needs append
  // semantics, so the header (tag + two LEB128 varints) is written by hand.
  out.push_back(f.tag);
  std::uint64_t v = f.seq;
  do {
    std::uint8_t byte = static_cast<std::uint8_t>(v & 0x7F);
    v >>= 7;
    if (v) byte |= 0x80;
    out.push_back(byte);
  } while (v);
  v = f.payload.size();
  do {
    std::uint8_t byte = static_cast<std::uint8_t>(v & 0x7F);
    v >>= 7;
    if (v) byte |= 0x80;
    out.push_back(byte);
  } while (v);
  out.insert(out.end(), f.payload.begin(), f.payload.end());
}

bool parse_frames(const std::uint8_t* body, std::size_t n, std::vector<Frame>& out) {
  ByteReader r(body, n);
  while (!r.at_end()) {
    Frame f;
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> payload = BufferPool::instance().acquire();
    payload.clear();
    if (!r.u8(f.tag) || !r.varint(seq) || seq > 0xFFFFFFFFull || !r.blob(payload)) {
      BufferPool::instance().release(std::move(payload));
      return false;
    }
    f.seq = static_cast<std::uint32_t>(seq);
    f.payload = std::move(payload);
    out.push_back(std::move(f));
  }
  return true;
}

std::vector<std::vector<std::uint8_t>> fragment_frame(const Frame& f, std::size_t mtu,
                                                      std::uint32_t msg_id) {
  // Serialize the frame exactly as it would appear in a Data body, then
  // slice that encoding into chunks sized so every Fragment datagram
  // (kind byte + header varints + chunk blob) fits the MTU.
  std::vector<std::uint8_t> encoded;
  encoded.reserve(f.wire_size());
  append_frame(encoded, f);

  const std::size_t budget = mtu > kFragmentOverhead ? mtu - kFragmentOverhead : 1;
  const std::size_t count = (encoded.size() + budget - 1) / budget;
  if (count > kMaxFragments) return {};

  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t off = i * budget;
    const std::size_t len = std::min(budget, encoded.size() - off);
    ByteWriter w;
    w.reserve(len + kFragmentOverhead);
    w.u8(static_cast<std::uint8_t>(DatagramKind::Fragment));
    w.varint(msg_id);
    w.varint(i);
    w.varint(count);
    w.blob(encoded.data() + off, len);
    out.push_back(w.take());
  }
  return out;
}

std::optional<Frame> Reassembler::feed(const std::uint8_t* body, std::size_t n, SimTime now) {
  ByteReader r(body, n);
  std::uint64_t msg_id = 0, index = 0, count = 0;
  std::vector<std::uint8_t> chunk;
  if (!r.varint(msg_id) || !r.varint(index) || !r.varint(count) || !r.blob(chunk) ||
      !r.at_end() || count == 0 || count > kMaxFragments || index >= count ||
      msg_id > 0xFFFFFFFFull) {
    ++stats_.malformed;
    return std::nullopt;
  }

  Partial& p = partials_[static_cast<std::uint32_t>(msg_id)];
  if (p.parts.empty()) {
    p.parts.resize(count);
    p.first_seen = now;
  } else if (p.parts.size() != count) {
    // Same msg_id, contradictory fragment count: drop the whole message.
    ++stats_.malformed;
    partials_.erase(static_cast<std::uint32_t>(msg_id));
    return std::nullopt;
  }
  if (!p.parts[index].empty()) {
    ++stats_.duplicate_fragments;
    return std::nullopt;
  }
  p.parts[index] = std::move(chunk);
  ++p.received;
  if (p.received < p.parts.size()) return std::nullopt;

  // Complete: restore the contiguous encoding and parse it as a one-frame
  // Data body.
  std::vector<std::uint8_t> encoded;
  std::size_t total = 0;
  for (const auto& part : p.parts) total += part.size();
  encoded.reserve(total);
  for (const auto& part : p.parts) encoded.insert(encoded.end(), part.begin(), part.end());
  partials_.erase(static_cast<std::uint32_t>(msg_id));

  std::vector<Frame> frames;
  if (!parse_frames(encoded.data(), encoded.size(), frames) || frames.size() != 1) {
    for (auto& f : frames) BufferPool::instance().release(std::move(f.payload));
    ++stats_.malformed;
    return std::nullopt;
  }
  ++stats_.completed;
  return std::move(frames.front());
}

void Reassembler::gc(SimTime now) {
  for (auto it = partials_.begin(); it != partials_.end();) {
    if (now - it->second.first_seen > timeout_) {
      ++stats_.stale_dropped;
      it = partials_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dyconits::net::udpwire
