// UDP datagram framing: the pure (socket-free) half of UdpTransport.
//
// A datagram is one kind byte followed by a kind-specific body:
//   Data      [tag u8][seq varint][len varint][payload]...   (>= 1 frame)
//   Fragment  [msg_id varint][index varint][count varint][chunk blob]
//   Keepalive (empty)   -- refreshes the peer's idle timer
//   Bye       (empty)   -- explicit disconnect
//
// The per-frame encoding inside a Data body is byte-for-byte the wire cost
// SimNetwork models (Frame::wire_size()), so byte accounting agrees across
// backends. Frames whose encoding exceeds the MTU budget are split into
// Fragment datagrams carrying slices of that same encoding; the receiver
// reassembles by (msg_id, index) and then parses the restored encoding as
// if it had arrived whole. Everything here is deterministic and
// allocation-disciplined (payloads from BufferPool), and is unit-tested
// without sockets in tests/transport_test.cpp (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "util/sim_time.h"

namespace dyconits::net::udpwire {

enum class DatagramKind : std::uint8_t {
  Data = 1,
  Fragment = 2,
  Keepalive = 3,
  Bye = 4,
};

/// Default datagram payload budget: conservative for 1500-byte Ethernet
/// minus IP/UDP headers and tunnel slop.
inline constexpr std::size_t kDefaultMtu = 1400;

/// A fragmented frame can span at most this many datagrams; reassembly
/// rejects hostile counts beyond it (64 KiB payloads at the default MTU
/// fit in ~48 fragments).
inline constexpr std::size_t kMaxFragments = 1024;

/// Worst-case Fragment body overhead: kind byte + three varints + the
/// chunk-blob length prefix. Used to size chunks so any fragment fits MTU.
inline constexpr std::size_t kFragmentOverhead = 1 + 5 + 3 + 3 + 3;

/// Appends one frame's wire encoding (tag, seq varint, length varint,
/// payload) to `out`. Exactly Frame::wire_size() bytes.
void append_frame(std::vector<std::uint8_t>& out, const Frame& f);

/// Parses a Data datagram body (everything after the kind byte) into
/// frames. Payload buffers are acquired from BufferPool. Returns false if
/// trailing bytes were malformed — frames parsed before the damage are
/// kept.
bool parse_frames(const std::uint8_t* body, std::size_t n, std::vector<Frame>& out);

/// Splits one frame into ready-to-send Fragment datagrams (kind byte
/// included). `mtu` is the max datagram size; the frame's encoding must
/// need more than one chunk, i.e. call only when
/// f.wire_size() + 1 > mtu. Returns empty if the split would exceed
/// kMaxFragments.
std::vector<std::vector<std::uint8_t>> fragment_frame(const Frame& f, std::size_t mtu,
                                                      std::uint32_t msg_id);

struct ReassemblyStats {
  std::uint64_t completed = 0;          // frames restored from fragments
  std::uint64_t duplicate_fragments = 0;
  std::uint64_t malformed = 0;          // inconsistent header / bad restored frame
  std::uint64_t stale_dropped = 0;      // partials that timed out (lost fragment)
};

/// Per-peer fragment reassembly. Feed every Fragment datagram body; a
/// completed message parses back into the original Frame. Partials that
/// stay incomplete past `timeout` are garbage-collected — frame loss is
/// then surfaced to the application as a sequence gap, and the existing
/// resync machinery (DESIGN.md §18) repairs the replica.
class Reassembler {
 public:
  explicit Reassembler(SimDuration timeout = SimDuration::seconds(5))
      : timeout_(timeout) {}

  /// `body`/`n` is the Fragment datagram body (after the kind byte);
  /// `now` is the receiver's clock (wall-driven in UdpTransport). Returns
  /// the restored frame when this fragment completes its message.
  std::optional<Frame> feed(const std::uint8_t* body, std::size_t n, SimTime now);

  /// Drops partial messages whose first fragment is older than timeout.
  void gc(SimTime now);

  std::size_t partial_count() const { return partials_.size(); }
  const ReassemblyStats& stats() const { return stats_; }

 private:
  struct Partial {
    std::vector<std::vector<std::uint8_t>> parts;
    std::size_t received = 0;
    SimTime first_seen;
  };

  SimDuration timeout_;
  std::unordered_map<std::uint32_t, Partial> partials_;
  ReassemblyStats stats_;
};

}  // namespace dyconits::net::udpwire
