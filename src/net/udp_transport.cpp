#include "net/udp_transport.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "net/buffer_pool.h"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <time.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace dyconits::net {

namespace {

constexpr std::uint8_t kData = static_cast<std::uint8_t>(udpwire::DatagramKind::Data);
constexpr std::uint8_t kFragment = static_cast<std::uint8_t>(udpwire::DatagramKind::Fragment);
constexpr std::uint8_t kKeepalive = static_cast<std::uint8_t>(udpwire::DatagramKind::Keepalive);
constexpr std::uint8_t kBye = static_cast<std::uint8_t>(udpwire::DatagramKind::Bye);

std::uint64_t addr_key(std::uint32_t ip, std::uint16_t port) {
  return (static_cast<std::uint64_t>(ip) << 16) | port;
}

void reset_staging(std::vector<std::uint8_t>& staging) {
  staging.clear();
  staging.push_back(kData);
}

}  // namespace

UdpTransport::UdpTransport(const SimClock& app_clock, UdpConfig cfg)
    : app_clock_(app_clock), cfg_(std::move(cfg)) {
  wall_start_micros_ = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
#if defined(__linux__)
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return;
  }
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &cfg_.rcvbuf_bytes, sizeof(cfg_.rcvbuf_bytes));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &cfg_.sndbuf_bytes, sizeof(cfg_.sndbuf_bytes));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg_.bind_port);
  if (::inet_pton(AF_INET, cfg_.bind_host.c_str(), &addr.sin_addr) != 1) {
    error_ = "bad bind host (numeric IPv4 only): " + cfg_.bind_host;
    ::close(fd_);
    fd_ = -1;
    return;
  }
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    error_ = std::string("bind: ") + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  local_port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    error_ = std::string("epoll_create1: ") + std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd_, &ev);
#else
  error_ = "UdpTransport requires Linux (epoll)";
#endif
}

UdpTransport::~UdpTransport() {
#if defined(__linux__)
  if (fd_ >= 0) {
    for (auto& [id, p] : peers_) {
      if (!p.alive || p.addr_port == 0) continue;
      flush_peer(id, p);
      raw_send(p, &kBye, 1);
    }
    ::close(fd_);
  }
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
  for (auto& d : inbox_) BufferPool::instance().release(std::move(d.frame.payload));
}

SimTime UdpTransport::wall_now() const {
  const std::int64_t now = std::chrono::duration_cast<std::chrono::microseconds>(
                               std::chrono::steady_clock::now().time_since_epoch())
                               .count();
  return SimTime(now - wall_start_micros_);
}

UdpTransport::Peer* UdpTransport::peer_of(EndpointId id) {
  auto it = peers_.find(id);
  return it == peers_.end() ? nullptr : &it->second;
}

const UdpTransport::Peer* UdpTransport::peer_of(EndpointId id) const {
  auto it = peers_.find(id);
  return it == peers_.end() ? nullptr : &it->second;
}

EndpointId UdpTransport::create_endpoint(std::string name) {
  if (local_ == kInvalidEndpoint) {
    local_ = next_id_++;
    local_name_ = std::move(name);
    return local_;
  }
  // Extra local endpoints make no sense on a one-socket backend; register a
  // dead placeholder so misuse is visible (sends to/from it fail) rather
  // than silently aliasing the socket.
  EndpointId id = next_id_++;
  Peer p;
  p.name = std::move(name);
  p.alive = false;
  reset_staging(p.staging);
  peers_.emplace(id, std::move(p));
  return id;
}

const std::string& UdpTransport::endpoint_name(EndpointId id) const {
  static const std::string kUnknown = "?";
  if (id == local_) return local_name_;
  const Peer* p = peer_of(id);
  return p ? p->name : kUnknown;
}

EndpointId UdpTransport::add_peer(const std::string& host, std::uint16_t port,
                                  std::string name) {
#if defined(__linux__)
  in_addr ip{};
  if (::inet_pton(AF_INET, host.c_str(), &ip) != 1) return kInvalidEndpoint;
  EndpointId id = next_id_++;
  Peer p;
  p.name = std::move(name);
  p.addr_ip = ip.s_addr;
  p.addr_port = htons(port);
  p.last_heard = wall_now();
  p.last_sent = p.last_heard;
  reset_staging(p.staging);
  by_addr_[addr_key(p.addr_ip, p.addr_port)] = id;
  peers_.emplace(id, std::move(p));
  return id;
#else
  (void)host;
  (void)port;
  (void)name;
  return kInvalidEndpoint;
#endif
}

EndpointId UdpTransport::peer_by_addr(std::uint32_t ip, std::uint16_t port) {
  auto it = by_addr_.find(addr_key(ip, port));
  if (it != by_addr_.end()) return it->second;
  EndpointId id = next_id_++;
  Peer p;
#if defined(__linux__)
  char buf[INET_ADDRSTRLEN] = "?";
  in_addr a{};
  a.s_addr = ip;
  ::inet_ntop(AF_INET, &a, buf, sizeof(buf));
  p.name = std::string("udp:") + buf + ":" + std::to_string(ntohs(port));
#endif
  p.addr_ip = ip;
  p.addr_port = port;
  p.last_heard = wall_now();
  p.last_sent = p.last_heard;
  reset_staging(p.staging);
  by_addr_[addr_key(ip, port)] = id;
  peers_.emplace(id, std::move(p));
  return id;
}

bool UdpTransport::send(EndpointId from, EndpointId to, Frame frame) {
  if (from != local_ || fd_ < 0) return false;
  Peer* p = peer_of(to);
  if (!p || !p->alive || p->addr_port == 0) return false;

  // Frame-level accounting mirrors SimNetwork: the modeled wire cost of the
  // stamped frame, independent of datagram packing.
  const std::size_t wire = frame.wire_size();
  p->egress_bytes += wire;
  ++p->egress_frames;

  if (wire + 1 > cfg_.mtu) {
    flush_peer(to, *p);
    auto datagrams = udpwire::fragment_frame(frame, cfg_.mtu, p->next_msg_id++);
    for (const auto& d : datagrams) raw_send(*p, d.data(), d.size());
    stats_.fragments_sent += datagrams.size();
  } else {
    if (p->staging.size() + wire > cfg_.mtu) flush_peer(to, *p);
    udpwire::append_frame(p->staging, frame);
  }
  BufferPool::instance().release(std::move(frame.payload));
  return true;
}

void UdpTransport::flush_peer(EndpointId id, Peer& p) {
  (void)id;
  if (p.staging.size() <= 1) return;
  raw_send(p, p.staging.data(), p.staging.size());
  reset_staging(p.staging);
}

void UdpTransport::raw_send(Peer& p, const std::uint8_t* data, std::size_t n) {
#if defined(__linux__)
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = p.addr_ip;
  addr.sin_port = p.addr_port;

  // Transient failures (a momentarily full socket buffer) get a bounded
  // retry with an escalating microsleep; anything else — and anything still
  // failing past the limit — drops the datagram and charges the peer's
  // pressure ledger. The application never blocks on a dead wire.
  for (int attempt = 0;; ++attempt) {
    const ssize_t sent =
        ::sendto(fd_, data, n, 0, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (sent >= 0) {
      ++stats_.datagrams_sent;
      stats_.datagram_bytes_sent += n;
      p.last_sent = wall_now();
      return;
    }
    const bool transient = errno == EAGAIN || errno == EWOULDBLOCK ||
                           errno == ENOBUFS || errno == EINTR;
    if (!transient || attempt >= cfg_.send_retry_limit) break;
    ++stats_.send_retries;
    ++p.send_retries;
    if (cfg_.send_retry_backoff_us > 0) {
      timespec ts{};
      const std::int64_t us = cfg_.send_retry_backoff_us * (attempt + 1);
      ts.tv_sec = us / 1000000;
      ts.tv_nsec = (us % 1000000) * 1000;
      ::nanosleep(&ts, nullptr);
    }
  }
  ++stats_.send_failures;
  ++p.send_failures;
  ++p.dropped_datagrams;
  p.congested_bytes += n;
  ++p.congested_frames;
#else
  (void)p;
  (void)data;
  (void)n;
#endif
}

void UdpTransport::flush_egress() {
  for (auto& [id, p] : peers_) {
    if (p.alive && p.addr_port != 0) flush_peer(id, p);
    // Congestion decays as flushes go by: a transient stall fades in a few
    // ticks, a saturated socket keeps re-charging the estimate faster than
    // it drains — which is exactly when the overload ladder should see it.
    p.congested_bytes -= p.congested_bytes / 4;
    p.congested_frames -= p.congested_frames / 4;
  }
}

void UdpTransport::close_abruptly() {
#if defined(__linux__)
  // No flush, no Byes: the wire just goes silent, like a SIGKILL would
  // leave it. Peers discover the death through missed keepalives.
  if (fd_ >= 0) ::close(fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  fd_ = -1;
  epoll_fd_ = -1;
#endif
}

void UdpTransport::pump(int timeout_ms) {
#if defined(__linux__)
  if (fd_ < 0) return;
  epoll_event events[4];
  ::epoll_wait(epoll_fd_, events, 4, timeout_ms);

  std::uint8_t buf[65536];
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n =
        ::recvfrom(fd_, buf, sizeof(buf), 0, reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) break;  // EAGAIN: drained
    ++stats_.datagrams_received;
    stats_.datagram_bytes_received += static_cast<std::uint64_t>(n);
    const EndpointId from = peer_by_addr(src.sin_addr.s_addr, src.sin_port);
    Peer& p = peers_.at(from);
    p.last_heard = wall_now();
    if (n == 0) {
      ++stats_.malformed_datagrams;
      continue;
    }
    if (!p.alive && buf[0] != kBye && p.addr_port != 0) {
      // A peer we wrote off (Bye, idle timeout) is talking again — most
      // likely a restarted process on the same address. Revive it so the
      // resync handshake can run; the application decides what the session
      // means now.
      p.alive = true;
      ++stats_.peer_revivals;
    }
    handle_datagram(from, p, buf, static_cast<std::size_t>(n));
  }
  housekeeping();
#else
  (void)timeout_ms;
#endif
}

void UdpTransport::handle_datagram(EndpointId from, Peer& p, const std::uint8_t* data,
                                   std::size_t n) {
  const SimTime app_now = app_clock_.now();
  auto deliver = [&](Frame&& f) {
    p.ingress_bytes += f.wire_size();
    ++p.ingress_frames;
    Delivery d;
    d.from = from;
    d.frame = std::move(f);
    d.sent = app_now;  // true send time lives in another process; see header
    d.arrival = app_now;
    inbox_.push_back(std::move(d));
  };

  switch (data[0]) {
    case kData: {
      std::vector<Frame> frames;
      if (!udpwire::parse_frames(data + 1, n - 1, frames)) ++stats_.malformed_datagrams;
      for (auto& f : frames) deliver(std::move(f));
      break;
    }
    case kFragment: {
      if (auto f = p.reasm.feed(data + 1, n - 1, wall_now())) {
        ++stats_.frames_reassembled;
        deliver(std::move(*f));
      }
      break;
    }
    case kKeepalive:
      ++stats_.keepalives_received;
      break;
    case kBye:
      p.alive = false;
      break;
    default:
      ++stats_.malformed_datagrams;
      break;
  }
}

void UdpTransport::housekeeping() {
  const SimTime now = wall_now();
  for (auto& [id, p] : peers_) {
    (void)id;
    if (!p.alive || p.addr_port == 0) continue;
    if (cfg_.keepalive_interval > SimDuration(0) &&
        now - p.last_sent >= cfg_.keepalive_interval) {
      raw_send(p, &kKeepalive, 1);
      ++stats_.keepalives_sent;
    }
    if (cfg_.idle_timeout > SimDuration(0) && now - p.last_heard > cfg_.idle_timeout) {
      p.alive = false;
      ++stats_.idle_disconnects;
    }
    p.reasm.gc(now);
  }
  last_housekeeping_ = now;
}

std::vector<Delivery> UdpTransport::poll(EndpointId to) {
  if (to != local_) return {};
  std::vector<Delivery> out;
  out.swap(inbox_);
  return out;
}

void UdpTransport::disconnect(EndpointId a, EndpointId b) {
  const EndpointId other = a == local_ ? b : a;
  Peer* p = peer_of(other);
  if (!p || !p->alive) return;
  if (p->addr_port != 0) {
    flush_peer(other, *p);
    raw_send(*p, &kBye, 1);
  }
  p->alive = false;
}

bool UdpTransport::connected(EndpointId a, EndpointId b) const {
  const EndpointId other = a == local_ ? b : a;
  if ((a != local_ && b != local_) || other == local_) return false;
  const Peer* p = peer_of(other);
  return p && p->alive && p->addr_port != 0;
}

// Accounting views: the local endpoint sums both directions over all peers;
// a peer id reports the traffic on its leg of the wire, with "its egress"
// meaning bytes observed arriving from it (the remote's true counters live
// in the remote process).
std::uint64_t UdpTransport::egress_bytes(EndpointId id) const {
  if (id == local_) {
    std::uint64_t sum = 0;
    for (const auto& [pid, p] : peers_) sum += p.egress_bytes;
    return sum;
  }
  const Peer* p = peer_of(id);
  return p ? p->ingress_bytes : 0;
}

std::uint64_t UdpTransport::ingress_bytes(EndpointId id) const {
  if (id == local_) {
    std::uint64_t sum = 0;
    for (const auto& [pid, p] : peers_) sum += p.ingress_bytes;
    return sum;
  }
  const Peer* p = peer_of(id);
  return p ? p->egress_bytes : 0;
}

std::uint64_t UdpTransport::egress_frames(EndpointId id) const {
  if (id == local_) {
    std::uint64_t sum = 0;
    for (const auto& [pid, p] : peers_) sum += p.egress_frames;
    return sum;
  }
  const Peer* p = peer_of(id);
  return p ? p->ingress_frames : 0;
}

std::uint64_t UdpTransport::ingress_frames(EndpointId id) const {
  if (id == local_) {
    std::uint64_t sum = 0;
    for (const auto& [pid, p] : peers_) sum += p.ingress_frames;
    return sum;
  }
  const Peer* p = peer_of(id);
  return p ? p->egress_frames : 0;
}

std::uint64_t UdpTransport::pending_bytes(EndpointId to) const {
  // The local view of "backed up toward this peer": bytes staged but not
  // yet flushed, plus the decaying estimate of bytes whose datagrams the
  // socket refused. Not the remote inbox (unknowable over UDP), but it
  // rises exactly when the send path stops keeping up, which is the
  // property the overload controller needs.
  const Peer* p = peer_of(to);
  if (!p) return 0;
  const std::uint64_t staged = p->staging.size() > 1 ? p->staging.size() - 1 : 0;
  return staged + p->congested_bytes;
}

SendPressure UdpTransport::send_pressure(EndpointId to) const {
  SendPressure out;
  if (to == kInvalidEndpoint || to == local_) {
    out.send_failures = stats_.send_failures;
    out.send_retries = stats_.send_retries;
    for (const auto& [pid, p] : peers_) {
      out.dropped_datagrams += p.dropped_datagrams;
      out.congested_bytes += p.congested_bytes;
      out.congested_frames += p.congested_frames;
    }
    return out;
  }
  const Peer* p = peer_of(to);
  if (!p) return out;
  out.send_failures = p->send_failures;
  out.send_retries = p->send_retries;
  out.dropped_datagrams = p->dropped_datagrams;
  out.congested_bytes = p->congested_bytes;
  out.congested_frames = p->congested_frames;
  return out;
}

}  // namespace dyconits::net
