// Real-socket Transport backend: non-blocking UDP + epoll (DESIGN.md §12).
//
// One socket per process. The first create_endpoint() names the local
// endpoint; remote endpoints are either registered explicitly with
// add_peer(host, port) (clients naming their server) or auto-registered
// when a datagram arrives from an unknown source address (the server
// learning its clients). Frames keep the exact wire encoding SimNetwork
// models — send() coalesces them into MTU-sized Data datagrams flushed by
// flush_egress(), oversized frames are split by udpwire::fragment_frame and
// reassembled on the far side, and loss/reorder surfaces to the application
// as the same sequence gaps the sim's fault layer produces, repaired by the
// existing resync machinery. Liveness is wall-clock: periodic Keepalive
// datagrams refresh per-peer idle timers, and a peer silent past
// idle_timeout is disconnected.
//
// Delivery timestamps (sent/arrival) are stamped from the *application*
// SimClock at pump() time — each process owns its clock, and cross-process
// wall time is not meaningfully comparable to simulated time. trace_origin
// is not shipped (see net::Frame); latency taps read 0 over UDP.
//
// Linux-only (epoll). On other platforms, or if socket setup fails,
// valid() is false and error() says why — callers fall back to SimNetwork.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "net/udp_framing.h"
#include "util/sim_time.h"

namespace dyconits::net {

struct UdpConfig {
  std::string bind_host = "127.0.0.1";
  /// 0 = ephemeral; read the chosen port back with local_port().
  std::uint16_t bind_port = 0;
  std::size_t mtu = udpwire::kDefaultMtu;
  /// Wall-clock cadence of Keepalive datagrams to peers we are otherwise
  /// silent toward. Zero disables keepalives.
  SimDuration keepalive_interval = SimDuration::millis(500);
  /// Wall-clock silence after which a peer is considered gone. Zero
  /// disables idle disconnects (lockstep runs that may pause arbitrarily).
  SimDuration idle_timeout = SimDuration::seconds(10);
  int rcvbuf_bytes = 1 << 20;
  int sndbuf_bytes = 1 << 20;
  /// Transient sendto failures (EAGAIN/ENOBUFS/EINTR) are retried in-call
  /// up to this many times with a short escalating pause — a full socket
  /// buffer usually drains in microseconds. Past the limit the datagram is
  /// dropped and the per-peer pressure counters record it.
  int send_retry_limit = 3;
  /// Pause before retry k is k * this (kept tiny: it runs inside the tick).
  std::int64_t send_retry_backoff_us = 50;
};

/// Datagram-level counters (frame-level accounting lives in Transport).
struct UdpStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t datagram_bytes_sent = 0;
  std::uint64_t datagram_bytes_received = 0;
  std::uint64_t fragments_sent = 0;
  std::uint64_t frames_reassembled = 0;
  std::uint64_t keepalives_sent = 0;
  std::uint64_t keepalives_received = 0;
  std::uint64_t malformed_datagrams = 0;
  std::uint64_t send_failures = 0;  ///< datagrams dropped after retries
  std::uint64_t send_retries = 0;   ///< in-call retries after EAGAIN/ENOBUFS
  std::uint64_t idle_disconnects = 0;
  /// Dead peers brought back by a datagram from their address — the
  /// receiving half of crash-restart recovery (a restarted remote keeps
  /// its address; its traffic must not be blackholed by a stale Bye).
  std::uint64_t peer_revivals = 0;
};

class UdpTransport final : public Transport {
 public:
  /// Binds the socket immediately; check valid() before use. `app_clock` is
  /// the process's simulation clock, used only to stamp deliveries.
  UdpTransport(const SimClock& app_clock, UdpConfig cfg);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  bool valid() const { return fd_ >= 0; }
  const std::string& error() const { return error_; }
  /// The actually bound port (resolves bind_port == 0).
  std::uint16_t local_port() const { return local_port_; }

  /// Registers a remote peer by address, before any traffic from it.
  /// `name` is a placeholder until the application learns better (names
  /// are app-level over UDP; only the sim knows true remote names).
  EndpointId add_peer(const std::string& host, std::uint16_t port, std::string name);

  /// Services the socket: drains readable datagrams into the inbox and runs
  /// keepalive/idle/reassembly housekeeping. Blocks up to `timeout_ms` in
  /// epoll_wait for the first datagram (0 = non-blocking poll). Call
  /// between ticks; poll() then hands the frames to the application.
  void pump(int timeout_ms);

  /// Closes the socket WITHOUT flushing staged data or sending Bye
  /// datagrams — the crash half of crash-restart testing. Peers find out
  /// the hard way (missed keepalives), exactly like a real process death.
  void close_abruptly();

  const UdpStats& stats() const { return stats_; }

  // -- Transport --
  EndpointId create_endpoint(std::string name) override;
  const std::string& endpoint_name(EndpointId id) const override;
  bool send(EndpointId from, EndpointId to, Frame frame) override;
  std::vector<Delivery> poll(EndpointId to) override;
  void disconnect(EndpointId a, EndpointId b) override;
  bool connected(EndpointId a, EndpointId b) const override;
  std::uint64_t egress_bytes(EndpointId id) const override;
  std::uint64_t ingress_bytes(EndpointId id) const override;
  std::uint64_t egress_frames(EndpointId id) const override;
  std::uint64_t ingress_frames(EndpointId id) const override;
  void flush_egress() override;
  /// UDP cannot see the remote socket buffer, but it CAN see its own send
  /// path congesting: pending_bytes(to) is the peer's staged bytes plus a
  /// decaying estimate of bytes whose datagrams failed to send. That local
  /// signal feeds GameServer's backlog detection the same way the sim's
  /// remote-inbox signal does (DESIGN.md §13).
  bool has_backlog_signal() const override { return true; }
  std::uint64_t pending_bytes(EndpointId to) const override;
  bool has_send_pressure() const override { return true; }
  SendPressure send_pressure(EndpointId to) const override;

 private:
  struct Peer {
    std::string name;
    std::uint32_t addr_ip = 0;    // network byte order
    std::uint16_t addr_port = 0;  // network byte order
    bool alive = true;
    /// Pending Data datagram: kind byte + coalesced frame encodings.
    std::vector<std::uint8_t> staging;
    std::uint32_t next_msg_id = 1;  // fragment message ids, per peer
    udpwire::Reassembler reasm;
    SimTime last_heard;  // wall timebase
    SimTime last_sent;   // wall timebase
    std::uint64_t egress_bytes = 0;
    std::uint64_t ingress_bytes = 0;
    std::uint64_t egress_frames = 0;
    std::uint64_t ingress_frames = 0;
    // Send-pressure ledger (see Transport::send_pressure).
    std::uint64_t send_failures = 0;
    std::uint64_t send_retries = 0;
    std::uint64_t dropped_datagrams = 0;
    std::uint64_t congested_bytes = 0;  ///< decays 25% per flush_egress()
    /// Refused send units, same decay. One per dropped datagram — a lower
    /// bound when frames were coalesced, but the refused work the frame-cost
    /// model needs to see (Transport::SendPressure::congested_frames).
    std::uint64_t congested_frames = 0;
  };

  SimTime wall_now() const;
  Peer* peer_of(EndpointId id);
  const Peer* peer_of(EndpointId id) const;
  EndpointId peer_by_addr(std::uint32_t ip, std::uint16_t port);
  void flush_peer(EndpointId id, Peer& p);
  void raw_send(Peer& p, const std::uint8_t* data, std::size_t n);
  void handle_datagram(EndpointId from, Peer& p, const std::uint8_t* data, std::size_t n);
  void housekeeping();

  const SimClock& app_clock_;
  UdpConfig cfg_;
  int fd_ = -1;
  int epoll_fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::string error_;
  std::int64_t wall_start_micros_ = 0;
  SimTime last_housekeeping_;

  EndpointId local_ = kInvalidEndpoint;
  std::string local_name_;
  EndpointId next_id_ = 1;
  std::unordered_map<EndpointId, Peer> peers_;
  std::unordered_map<std::uint64_t, EndpointId> by_addr_;  // (ip<<16)|port

  std::vector<Delivery> inbox_;  // arrival order, drained by poll(local)
  UdpStats stats_;
};

}  // namespace dyconits::net
