#include "protocol/codec.h"

#include <cmath>

#include "net/buffer_pool.h"
#include "world/chunk.h"

namespace dyconits::protocol {
namespace {

using net::ByteReader;
using net::ByteWriter;

std::uint8_t quantize_angle(float deg) {
  const float turns = deg / 360.0f;
  const int steps = static_cast<int>(std::lround(turns * 256.0f));
  return static_cast<std::uint8_t>(steps & 0xFF);
}

float dequantize_angle(std::uint8_t q) { return static_cast<float>(q) * 360.0f / 256.0f; }

void put_vec3(ByteWriter& w, const world::Vec3& v) {
  w.f32(static_cast<float>(v.x));
  w.f32(static_cast<float>(v.y));
  w.f32(static_cast<float>(v.z));
}

bool get_vec3(ByteReader& r, world::Vec3& v) {
  float x, y, z;
  if (!r.f32(x) || !r.f32(y) || !r.f32(z)) return false;
  v = {x, y, z};
  return true;
}

void put_block_pos(ByteWriter& w, const world::BlockPos& p) {
  w.svarint(p.x);
  w.u8(static_cast<std::uint8_t>(p.y));
  w.svarint(p.z);
}

bool get_block_pos(ByteReader& r, world::BlockPos& p) {
  std::int64_t x, z;
  std::uint8_t y;
  if (!r.svarint(x) || !r.u8(y) || !r.svarint(z)) return false;
  p = {static_cast<std::int32_t>(x), y, static_cast<std::int32_t>(z)};
  return true;
}

void put_chunk_pos(ByteWriter& w, const world::ChunkPos& p) {
  w.svarint(p.x);
  w.svarint(p.z);
}

bool get_chunk_pos(ByteReader& r, world::ChunkPos& p) {
  std::int64_t x, z;
  if (!r.svarint(x) || !r.svarint(z)) return false;
  p = {static_cast<std::int32_t>(x), static_cast<std::int32_t>(z)};
  return true;
}

bool get_block(ByteReader& r, world::Block& b) {
  std::uint64_t id;
  if (!r.varint(id)) return false;
  if (id >= world::kBlockPaletteSize) return false;
  b = static_cast<world::Block>(id);
  return true;
}

void put_entity_move(ByteWriter& w, const EntityMove& m) {
  w.varint(m.id);
  put_vec3(w, m.pos);
  w.u8(quantize_angle(m.yaw));
  w.u8(quantize_angle(m.pitch));
}

bool get_entity_move(ByteReader& r, EntityMove& m) {
  std::uint64_t id;
  std::uint8_t yaw, pitch;
  if (!r.varint(id) || !get_vec3(r, m.pos) || !r.u8(yaw) || !r.u8(pitch)) return false;
  m.id = static_cast<entity::EntityId>(id);
  m.yaw = dequantize_angle(yaw);
  m.pitch = dequantize_angle(pitch);
  return true;
}

struct Encoder {
  ByteWriter w;

  void operator()(const JoinRequest& m) { w.str(m.name); }
  void operator()(const PlayerMove& m) {
    put_vec3(w, m.pos);
    w.u8(quantize_angle(m.yaw));
    w.u8(quantize_angle(m.pitch));
  }
  void operator()(const PlayerDig& m) { put_block_pos(w, m.pos); }
  void operator()(const PlayerPlace& m) {
    put_block_pos(w, m.pos);
    w.varint(static_cast<std::uint64_t>(m.block));
  }
  void operator()(const KeepAliveReply& m) { w.u32(m.nonce); }
  void operator()(const ChatSend& m) { w.str(m.text); }
  void operator()(const ResyncRequest& m) { w.varint(m.last_seq); }
  void operator()(const JoinAck& m) {
    w.varint(m.self_id);
    put_vec3(w, m.spawn);
    w.u8(m.view_distance);
  }
  void operator()(const ChunkData& m) {
    put_chunk_pos(w, m.pos);
    w.blob(m.rle);
  }
  void operator()(const UnloadChunk& m) { put_chunk_pos(w, m.pos); }
  void operator()(const BlockChange& m) {
    put_block_pos(w, m.pos);
    w.varint(static_cast<std::uint64_t>(m.block));
  }
  void operator()(const MultiBlockChange& m) {
    put_chunk_pos(w, m.chunk);
    w.varint(m.entries.size());
    for (const auto& e : m.entries) {
      w.u8(static_cast<std::uint8_t>((e.x << 4) | (e.z & 0x0F)));
      w.u8(e.y);
      w.varint(static_cast<std::uint64_t>(e.block));
    }
  }
  void operator()(const EntitySpawn& m) {
    w.varint(m.id);
    w.u8(static_cast<std::uint8_t>(m.kind));
    put_vec3(w, m.pos);
    w.u8(quantize_angle(m.yaw));
    w.u8(quantize_angle(m.pitch));
    w.str(m.name);
    w.varint(m.data);
  }
  void operator()(const EntityDespawn& m) { w.varint(m.id); }
  void operator()(const EntityMove& m) { put_entity_move(w, m); }
  void operator()(const EntityMoveBatch& m) {
    w.varint(m.moves.size());
    for (const auto& mv : m.moves) put_entity_move(w, mv);
  }
  void operator()(const KeepAlive& m) { w.u32(m.nonce); }
  void operator()(const ChatBroadcast& m) {
    w.varint(m.from);
    w.str(m.text);
  }
  void operator()(const InventoryUpdate& m) {
    w.varint(static_cast<std::uint64_t>(m.item));
    w.varint(m.count);
  }
  void operator()(const ResyncAck& m) { w.varint(m.epoch); }
  void operator()(const JoinRefused& m) {
    w.u8(m.rung);
    w.varint(m.retry_after_ms);
  }
  void operator()(const TickBarrier& m) { w.varint(m.tick); }
  void operator()(const TickBarrierAck& m) { w.varint(m.tick); }
};

// ---- Sizing visitor -------------------------------------------------------
// Mirrors Encoder field for field. Any layout change there must land here
// too; the codec property test (wire_size_of == encode().wire_size() over
// randomized instances of every type) catches a missed update.

std::size_t svarint_size(std::int64_t v) {
  return net::varint_size((static_cast<std::uint64_t>(v) << 1) ^
                          static_cast<std::uint64_t>(v >> 63));
}

std::size_t block_pos_size(const world::BlockPos& p) {
  return svarint_size(p.x) + 1 + svarint_size(p.z);
}

std::size_t chunk_pos_size(const world::ChunkPos& p) {
  return svarint_size(p.x) + svarint_size(p.z);
}

std::size_t str_size(std::string_view s) {
  return net::varint_size(s.size()) + s.size();
}

std::size_t entity_move_size(const EntityMove& m) {
  return net::varint_size(m.id) + 12 + 2;  // id + vec3 + quantized yaw/pitch
}

struct Sizer {
  std::size_t operator()(const JoinRequest& m) const { return str_size(m.name); }
  std::size_t operator()(const PlayerMove&) const { return 12 + 2; }
  std::size_t operator()(const PlayerDig& m) const { return block_pos_size(m.pos); }
  std::size_t operator()(const PlayerPlace& m) const {
    return block_pos_size(m.pos) +
           net::varint_size(static_cast<std::uint64_t>(m.block));
  }
  std::size_t operator()(const KeepAliveReply&) const { return 4; }
  std::size_t operator()(const ChatSend& m) const { return str_size(m.text); }
  std::size_t operator()(const ResyncRequest& m) const {
    return net::varint_size(m.last_seq);
  }
  std::size_t operator()(const JoinAck& m) const {
    return net::varint_size(m.self_id) + 12 + 1;
  }
  std::size_t operator()(const ChunkData& m) const {
    return chunk_pos_size(m.pos) + net::varint_size(m.rle.size()) + m.rle.size();
  }
  std::size_t operator()(const UnloadChunk& m) const { return chunk_pos_size(m.pos); }
  std::size_t operator()(const BlockChange& m) const {
    return block_pos_size(m.pos) +
           net::varint_size(static_cast<std::uint64_t>(m.block));
  }
  std::size_t operator()(const MultiBlockChange& m) const {
    std::size_t n = chunk_pos_size(m.chunk) + net::varint_size(m.entries.size());
    for (const auto& e : m.entries) {
      n += 2 + net::varint_size(static_cast<std::uint64_t>(e.block));
    }
    return n;
  }
  std::size_t operator()(const EntitySpawn& m) const {
    return net::varint_size(m.id) + 1 + 12 + 2 + str_size(m.name) +
           net::varint_size(m.data);
  }
  std::size_t operator()(const EntityDespawn& m) const {
    return net::varint_size(m.id);
  }
  std::size_t operator()(const EntityMove& m) const { return entity_move_size(m); }
  std::size_t operator()(const EntityMoveBatch& m) const {
    std::size_t n = net::varint_size(m.moves.size());
    for (const auto& mv : m.moves) n += entity_move_size(mv);
    return n;
  }
  std::size_t operator()(const KeepAlive&) const { return 4; }
  std::size_t operator()(const ChatBroadcast& m) const {
    return net::varint_size(m.from) + str_size(m.text);
  }
  std::size_t operator()(const InventoryUpdate& m) const {
    return net::varint_size(static_cast<std::uint64_t>(m.item)) +
           net::varint_size(m.count);
  }
  std::size_t operator()(const ResyncAck& m) const {
    return net::varint_size(m.epoch);
  }
  std::size_t operator()(const JoinRefused& m) const {
    return 1 + net::varint_size(m.retry_after_ms);
  }
  std::size_t operator()(const TickBarrier& m) const {
    return net::varint_size(m.tick);
  }
  std::size_t operator()(const TickBarrierAck& m) const {
    return net::varint_size(m.tick);
  }
};

template <typename T>
std::optional<AnyMessage> finish(ByteReader& r, T msg) {
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return AnyMessage{std::move(msg)};
}

std::optional<AnyMessage> decode_payload(MessageType type, ByteReader& r) {
  switch (type) {
    case MessageType::JoinRequest: {
      JoinRequest m;
      if (!r.str(m.name)) return std::nullopt;
      return finish(r, std::move(m));
    }
    case MessageType::PlayerMove: {
      PlayerMove m;
      std::uint8_t yaw, pitch;
      if (!get_vec3(r, m.pos) || !r.u8(yaw) || !r.u8(pitch)) return std::nullopt;
      m.yaw = dequantize_angle(yaw);
      m.pitch = dequantize_angle(pitch);
      return finish(r, m);
    }
    case MessageType::PlayerDig: {
      PlayerDig m;
      if (!get_block_pos(r, m.pos)) return std::nullopt;
      return finish(r, m);
    }
    case MessageType::PlayerPlace: {
      PlayerPlace m;
      if (!get_block_pos(r, m.pos) || !get_block(r, m.block)) return std::nullopt;
      return finish(r, m);
    }
    case MessageType::KeepAliveReply: {
      KeepAliveReply m;
      if (!r.u32(m.nonce)) return std::nullopt;
      return finish(r, m);
    }
    case MessageType::ChatSend: {
      ChatSend m;
      if (!r.str(m.text)) return std::nullopt;
      return finish(r, std::move(m));
    }
    case MessageType::ResyncRequest: {
      ResyncRequest m;
      std::uint64_t seq;
      if (!r.varint(seq) || seq > 0xFFFFFFFFull) return std::nullopt;
      m.last_seq = static_cast<std::uint32_t>(seq);
      return finish(r, m);
    }
    case MessageType::JoinAck: {
      JoinAck m;
      std::uint64_t id;
      if (!r.varint(id) || !get_vec3(r, m.spawn) || !r.u8(m.view_distance)) {
        return std::nullopt;
      }
      m.self_id = static_cast<entity::EntityId>(id);
      return finish(r, m);
    }
    case MessageType::ChunkData: {
      ChunkData m;
      if (!get_chunk_pos(r, m.pos) || !r.blob(m.rle)) return std::nullopt;
      return finish(r, std::move(m));
    }
    case MessageType::UnloadChunk: {
      UnloadChunk m;
      if (!get_chunk_pos(r, m.pos)) return std::nullopt;
      return finish(r, m);
    }
    case MessageType::BlockChange: {
      BlockChange m;
      if (!get_block_pos(r, m.pos) || !get_block(r, m.block)) return std::nullopt;
      return finish(r, m);
    }
    case MessageType::MultiBlockChange: {
      MultiBlockChange m;
      std::uint64_t n;
      if (!get_chunk_pos(r, m.chunk) || !r.varint(n)) return std::nullopt;
      if (n > world::Chunk::kVolume) return std::nullopt;
      // Each entry costs >= 3 bytes; a hostile length can't claim more
      // entries than the remaining payload could hold (no huge reserve).
      if (n > r.remaining() / 3) return std::nullopt;
      m.entries.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        MultiBlockChange::Entry e;
        std::uint8_t xz;
        if (!r.u8(xz) || !r.u8(e.y) || !get_block(r, e.block)) return std::nullopt;
        e.x = xz >> 4;
        e.z = xz & 0x0F;
        m.entries.push_back(e);
      }
      return finish(r, std::move(m));
    }
    case MessageType::EntitySpawn: {
      EntitySpawn m;
      std::uint64_t id, data;
      std::uint8_t kind, yaw, pitch;
      if (!r.varint(id) || !r.u8(kind) || !get_vec3(r, m.pos) || !r.u8(yaw) ||
          !r.u8(pitch) || !r.str(m.name) || !r.varint(data)) {
        return std::nullopt;
      }
      if (kind > static_cast<std::uint8_t>(entity::EntityKind::Item)) return std::nullopt;
      if (data > 0xFFFF) return std::nullopt;
      m.id = static_cast<entity::EntityId>(id);
      m.kind = static_cast<entity::EntityKind>(kind);
      m.yaw = dequantize_angle(yaw);
      m.pitch = dequantize_angle(pitch);
      m.data = static_cast<std::uint16_t>(data);
      return finish(r, std::move(m));
    }
    case MessageType::EntityDespawn: {
      EntityDespawn m;
      std::uint64_t id;
      if (!r.varint(id)) return std::nullopt;
      m.id = static_cast<entity::EntityId>(id);
      return finish(r, m);
    }
    case MessageType::EntityMove: {
      EntityMove m;
      if (!get_entity_move(r, m)) return std::nullopt;
      return finish(r, m);
    }
    case MessageType::EntityMoveBatch: {
      EntityMoveBatch m;
      std::uint64_t n;
      if (!r.varint(n)) return std::nullopt;
      // Each move costs >= 15 bytes (id varint + 3 f32 + 2 angle bytes); a
      // corrupted length can't make us reserve more than the payload holds.
      if (n > r.remaining() / 15) return std::nullopt;
      m.moves.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        EntityMove mv;
        if (!get_entity_move(r, mv)) return std::nullopt;
        m.moves.push_back(mv);
      }
      return finish(r, std::move(m));
    }
    case MessageType::KeepAlive: {
      KeepAlive m;
      if (!r.u32(m.nonce)) return std::nullopt;
      return finish(r, m);
    }
    case MessageType::ChatBroadcast: {
      ChatBroadcast m;
      std::uint64_t from;
      if (!r.varint(from) || !r.str(m.text)) return std::nullopt;
      m.from = static_cast<entity::EntityId>(from);
      return finish(r, std::move(m));
    }
    case MessageType::InventoryUpdate: {
      InventoryUpdate m;
      std::uint64_t count;
      if (!get_block(r, m.item) || !r.varint(count)) return std::nullopt;
      if (count > 0xFFFFFFFFull) return std::nullopt;
      m.count = static_cast<std::uint32_t>(count);
      return finish(r, m);
    }
    case MessageType::ResyncAck: {
      ResyncAck m;
      std::uint64_t epoch;
      if (!r.varint(epoch) || epoch > 0xFFFFFFFFull) return std::nullopt;
      m.epoch = static_cast<std::uint32_t>(epoch);
      return finish(r, m);
    }
    case MessageType::JoinRefused: {
      JoinRefused m;
      std::uint64_t retry;
      if (!r.u8(m.rung) || !r.varint(retry) || retry > 0xFFFFFFFFull) {
        return std::nullopt;
      }
      m.retry_after_ms = static_cast<std::uint32_t>(retry);
      return finish(r, m);
    }
    case MessageType::TickBarrier: {
      TickBarrier m;
      std::uint64_t tick;
      if (!r.varint(tick) || tick > 0xFFFFFFFFull) return std::nullopt;
      m.tick = static_cast<std::uint32_t>(tick);
      return finish(r, m);
    }
    case MessageType::TickBarrierAck: {
      TickBarrierAck m;
      std::uint64_t tick;
      if (!r.varint(tick) || tick > 0xFFFFFFFFull) return std::nullopt;
      m.tick = static_cast<std::uint32_t>(tick);
      return finish(r, m);
    }
  }
  return std::nullopt;
}

struct TypeOf {
  MessageType operator()(const JoinRequest&) const { return MessageType::JoinRequest; }
  MessageType operator()(const PlayerMove&) const { return MessageType::PlayerMove; }
  MessageType operator()(const PlayerDig&) const { return MessageType::PlayerDig; }
  MessageType operator()(const PlayerPlace&) const { return MessageType::PlayerPlace; }
  MessageType operator()(const KeepAliveReply&) const { return MessageType::KeepAliveReply; }
  MessageType operator()(const ChatSend&) const { return MessageType::ChatSend; }
  MessageType operator()(const ResyncRequest&) const { return MessageType::ResyncRequest; }
  MessageType operator()(const JoinAck&) const { return MessageType::JoinAck; }
  MessageType operator()(const ChunkData&) const { return MessageType::ChunkData; }
  MessageType operator()(const UnloadChunk&) const { return MessageType::UnloadChunk; }
  MessageType operator()(const BlockChange&) const { return MessageType::BlockChange; }
  MessageType operator()(const MultiBlockChange&) const {
    return MessageType::MultiBlockChange;
  }
  MessageType operator()(const EntitySpawn&) const { return MessageType::EntitySpawn; }
  MessageType operator()(const EntityDespawn&) const { return MessageType::EntityDespawn; }
  MessageType operator()(const EntityMove&) const { return MessageType::EntityMove; }
  MessageType operator()(const EntityMoveBatch&) const { return MessageType::EntityMoveBatch; }
  MessageType operator()(const KeepAlive&) const { return MessageType::KeepAlive; }
  MessageType operator()(const ChatBroadcast&) const { return MessageType::ChatBroadcast; }
  MessageType operator()(const InventoryUpdate&) const {
    return MessageType::InventoryUpdate;
  }
  MessageType operator()(const ResyncAck&) const { return MessageType::ResyncAck; }
  MessageType operator()(const JoinRefused&) const { return MessageType::JoinRefused; }
  MessageType operator()(const TickBarrier&) const { return MessageType::TickBarrier; }
  MessageType operator()(const TickBarrierAck&) const {
    return MessageType::TickBarrierAck;
  }
};

}  // namespace

const char* message_type_name(MessageType t) {
  switch (t) {
    case MessageType::JoinRequest: return "JoinRequest";
    case MessageType::PlayerMove: return "PlayerMove";
    case MessageType::PlayerDig: return "PlayerDig";
    case MessageType::PlayerPlace: return "PlayerPlace";
    case MessageType::KeepAliveReply: return "KeepAliveReply";
    case MessageType::ChatSend: return "ChatSend";
    case MessageType::ResyncRequest: return "ResyncRequest";
    case MessageType::JoinAck: return "JoinAck";
    case MessageType::ChunkData: return "ChunkData";
    case MessageType::UnloadChunk: return "UnloadChunk";
    case MessageType::BlockChange: return "BlockChange";
    case MessageType::MultiBlockChange: return "MultiBlockChange";
    case MessageType::EntitySpawn: return "EntitySpawn";
    case MessageType::EntityDespawn: return "EntityDespawn";
    case MessageType::EntityMove: return "EntityMove";
    case MessageType::EntityMoveBatch: return "EntityMoveBatch";
    case MessageType::KeepAlive: return "KeepAlive";
    case MessageType::ChatBroadcast: return "ChatBroadcast";
    case MessageType::InventoryUpdate: return "InventoryUpdate";
    case MessageType::ResyncAck: return "ResyncAck";
    case MessageType::JoinRefused: return "JoinRefused";
    case MessageType::TickBarrier: return "TickBarrier";
    case MessageType::TickBarrierAck: return "TickBarrierAck";
  }
  return "Unknown";
}

net::Frame encode(const AnyMessage& msg) {
  Encoder enc{net::ByteWriter(net::BufferPool::instance().acquire())};
  std::visit(enc, msg);
  net::Frame frame;
  frame.tag = static_cast<std::uint8_t>(type_of(msg));
  frame.payload = enc.w.take();
  return frame;
}

net::SharedFrame encode_shared(const AnyMessage& msg) {
  Encoder enc{net::ByteWriter(net::BufferPool::instance().acquire())};
  std::visit(enc, msg);
  return net::SharedFrame(static_cast<std::uint8_t>(type_of(msg)), enc.w.take());
}

std::size_t wire_size_of(const AnyMessage& msg) {
  const std::size_t payload = std::visit(Sizer{}, msg);
  // Frame::wire_size() for an encode() result: tag byte + one-byte seq
  // varint (encode leaves seq = 0) + payload-length varint + payload.
  return 1 + 1 + net::varint_size(payload) + payload;
}

std::optional<AnyMessage> decode(const net::Frame& frame) {
  ByteReader r(frame.payload);
  return decode_payload(static_cast<MessageType>(frame.tag), r);
}

MessageType type_of(const AnyMessage& msg) { return std::visit(TypeOf{}, msg); }

}  // namespace dyconits::protocol
