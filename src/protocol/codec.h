// Encode/decode between message structs and net::Frame. decode() returns
// nullopt for unknown tags or malformed payloads (trailing bytes included),
// so a fuzzing test can assert memory-safe rejection of arbitrary input.
#pragma once

#include <cstddef>
#include <optional>

#include "net/shared_frame.h"
#include "net/sim_network.h"
#include "protocol/messages.h"

namespace dyconits::protocol {

/// Encodes any protocol message into a tagged frame. The payload buffer is
/// drawn from net::BufferPool, so steady-state encodes reuse capacity
/// instead of allocating (DESIGN.md §11).
net::Frame encode(const AnyMessage& msg);

/// Encodes once into a refcounted broadcast payload (DESIGN.md §11): a
/// batch destined for N subscribers serializes a single master; callers
/// stamp per-recipient frames with SharedFrame::instance().
net::SharedFrame encode_shared(const AnyMessage& msg);

/// Exact wire size encode(msg) would produce — tag byte, seq varint (encode
/// leaves seq = 0: one byte), payload-length varint, payload — computed by
/// a pure sizing visitor with no buffer writes. Replaces measure-by-encode
/// for queue-cap admission; the codec property test pins
/// wire_size_of(m) == encode(m).wire_size() for every message type.
std::size_t wire_size_of(const AnyMessage& msg);

/// Decodes a frame; nullopt on unknown tag or malformed payload.
std::optional<AnyMessage> decode(const net::Frame& frame);

/// Tag carried by the frame for `msg` (for per-type byte accounting).
MessageType type_of(const AnyMessage& msg);

}  // namespace dyconits::protocol
