// Encode/decode between message structs and net::Frame. decode() returns
// nullopt for unknown tags or malformed payloads (trailing bytes included),
// so a fuzzing test can assert memory-safe rejection of arbitrary input.
#pragma once

#include <optional>

#include "net/sim_network.h"
#include "protocol/messages.h"

namespace dyconits::protocol {

/// Encodes any protocol message into a tagged frame.
net::Frame encode(const AnyMessage& msg);

/// Decodes a frame; nullopt on unknown tag or malformed payload.
std::optional<AnyMessage> decode(const net::Frame& frame);

/// Tag carried by the frame for `msg` (for per-type byte accounting).
MessageType type_of(const AnyMessage& msg);

}  // namespace dyconits::protocol
