// The Minecraft-like wire protocol: message structs and tags.
//
// Angles travel as 1/256-turn bytes and positions as f32, mirroring the
// fixed-point compactness of the real protocol. The *batch* variants
// (EntityMoveBatch, MultiBlockChange) are the frames the dyconit flush
// engine emits: many coalesced updates under one frame header.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "entity/entity.h"
#include "world/block.h"
#include "world/geometry.h"

namespace dyconits::protocol {

enum class MessageType : std::uint8_t {
  // client -> server
  JoinRequest = 1,
  PlayerMove = 2,
  PlayerDig = 3,
  PlayerPlace = 4,
  KeepAliveReply = 5,
  ChatSend = 6,
  ResyncRequest = 7,
  TickBarrier = 8,
  // server -> client
  JoinAck = 10,
  ChunkData = 11,
  UnloadChunk = 12,
  BlockChange = 13,
  MultiBlockChange = 14,
  EntitySpawn = 15,
  EntityDespawn = 16,
  EntityMove = 17,
  EntityMoveBatch = 18,
  KeepAlive = 19,
  ChatBroadcast = 20,
  InventoryUpdate = 21,
  ResyncAck = 22,
  JoinRefused = 23,
  TickBarrierAck = 24,
};

const char* message_type_name(MessageType t);

// ---- client -> server ----

struct JoinRequest {
  std::string name;
};

struct PlayerMove {
  world::Vec3 pos;
  float yaw = 0, pitch = 0;
};

struct PlayerDig {
  world::BlockPos pos;
};

struct PlayerPlace {
  world::BlockPos pos;
  world::Block block = world::Block::Stone;
};

struct KeepAliveReply {
  std::uint32_t nonce = 0;
};

struct ChatSend {
  std::string text;
};

/// Client -> server: "I detected a transport gap (or just reconnected) —
/// replay authoritative state for everything I subscribe to." Part of the
/// recovery handshake, DESIGN.md §18.
struct ResyncRequest {
  /// Highest server frame sequence number the client has seen.
  std::uint32_t last_seq = 0;
};

/// Client -> server: "my inputs for scripted tick N are all in." Used only
/// by the lockstep scripted driver behind the UDP/sim equivalence check
/// (DESIGN.md §12): the server acknowledges with TickBarrierAck as the
/// *last* frame of the tick, so a client that has seen ack N has the
/// complete tick-N output stream on an in-order transport.
struct TickBarrier {
  std::uint32_t tick = 0;
};

// ---- server -> client ----

struct JoinAck {
  entity::EntityId self_id = 0;
  world::Vec3 spawn;
  std::uint8_t view_distance = 8;
};

struct ChunkData {
  world::ChunkPos pos;
  std::vector<std::uint8_t> rle;  // Chunk::encode_rle payload
};

struct UnloadChunk {
  world::ChunkPos pos;
};

struct BlockChange {
  world::BlockPos pos;
  world::Block block = world::Block::Air;
};

struct MultiBlockChange {
  world::ChunkPos chunk;
  struct Entry {
    // Local coordinates packed client-side exactly like the wire format:
    // x:4 bits, z:4 bits, y: 8 bits.
    std::uint8_t x = 0, y = 0, z = 0;
    world::Block block = world::Block::Air;
  };
  std::vector<Entry> entries;
};

struct EntitySpawn {
  entity::EntityId id = 0;
  entity::EntityKind kind = entity::EntityKind::Player;
  world::Vec3 pos;
  float yaw = 0, pitch = 0;
  std::string name;        // display name; empty for non-players
  std::uint16_t data = 0;  // item entities: the dropped Block id
};

struct EntityDespawn {
  entity::EntityId id = 0;
};

struct EntityMove {
  entity::EntityId id = 0;
  world::Vec3 pos;
  float yaw = 0, pitch = 0;
};

struct EntityMoveBatch {
  std::vector<EntityMove> moves;
};

struct KeepAlive {
  std::uint32_t nonce = 0;
};

struct ChatBroadcast {
  entity::EntityId from = 0;
  std::string text;
};

/// Server -> client: authoritative count of one inventory item (absolute,
/// not a delta — robust to loss/reorder).
struct InventoryUpdate {
  world::Block item = world::Block::Air;
  std::uint32_t count = 0;
};

/// Server -> client: closes a ResyncRequest. Sent after the server has
/// flushed owed updates, queued snapshots, and refreshed entity state for
/// the subscriber; the client uses its Delivery timestamp to prune replica
/// entities the refresh did not confirm.
struct ResyncAck {
  /// Server-global resync epoch (monotonic; diagnostics only).
  std::uint32_t epoch = 0;
};

/// Server -> client: admission control turned a JoinRequest away because
/// the overload ladder is at or above the configured admission rung
/// (DESIGN.md §10). Sent unsequenced (seq 0 — no session exists yet);
/// well-behaved clients back off for at least retry_after_ms before
/// retrying the join.
struct JoinRefused {
  /// The ladder rung the server was at when it refused (diagnostics).
  std::uint8_t rung = 0;
  /// Suggested client backoff before the next JoinRequest, milliseconds.
  std::uint32_t retry_after_ms = 0;
};

/// Server -> client: closes a TickBarrier, echoing its tick number. Sent at
/// the very end of the server tick that consumed the barrier.
struct TickBarrierAck {
  std::uint32_t tick = 0;
};

using AnyMessage =
    std::variant<JoinRequest, PlayerMove, PlayerDig, PlayerPlace, KeepAliveReply, ChatSend,
                 ResyncRequest, JoinAck, ChunkData, UnloadChunk, BlockChange,
                 MultiBlockChange, EntitySpawn, EntityDespawn, EntityMove, EntityMoveBatch,
                 KeepAlive, ChatBroadcast, InventoryUpdate, ResyncAck, JoinRefused,
                 TickBarrier, TickBarrierAck>;

}  // namespace dyconits::protocol
