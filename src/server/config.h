// Server configuration.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "server/overload.h"
#include "util/sim_time.h"
#include "world/geometry.h"

namespace dyconits::server {

struct ServerConfig {
  /// Chunk view distance (Chebyshev radius); interest set is the
  /// (2v+1)^2 square around the player.
  int view_distance = 8;

  /// Hysteresis: chunks are unloaded only beyond view_distance + this
  /// margin, so a player oscillating at the view border doesn't thrash
  /// ChunkData resends (Minecraft servers do the same).
  int unload_margin = 2;

  /// Nominal game tick (Minecraft: 50 ms).
  SimDuration tick_interval = SimDuration::millis(50);

  /// Ticks between KeepAlive probes (100 ticks = 5 s).
  std::uint32_t keepalive_interval_ticks = 100;
  /// Missed keep-alives before the session is dropped.
  std::uint32_t keepalive_missed_limit = 4;

  /// false = vanilla baseline: updates are serialized and sent directly at
  /// the update site, exactly like the unmodified game. true = updates are
  /// routed through the dyconit middleware.
  bool use_dyconits = true;

  /// Chunk streaming throttle: ChunkData frames per player per tick.
  int max_chunk_sends_per_tick = 24;

  /// Parallel flush pipeline (DESIGN.md §9): executors for the dyconit
  /// flush/serialize phase, including the tick thread. 1 (default) is the
  /// serial oracle; N > 1 shards flush work by subscriber hash across a
  /// persistent thread pool, with wire output byte-identical to 1 for the
  /// same seed. Ignored when use_dyconits is false.
  std::size_t flush_threads = 1;

  /// Reject client moves longer than this per message (anti-teleport).
  double max_move_per_message = 12.0;

  /// Bandwidth budget handed to the policy (bits/s); 0 = none.
  double bandwidth_budget_bps = 0.0;

  /// Survival economy: digging drops an item entity, walking over an item
  /// picks it up into the player's inventory, and placement consumes
  /// inventory (rejected when empty). false = creative: digs destroy the
  /// block outright and placement is free.
  bool survival_mode = false;
  /// Dropped items despawn after this long on the ground.
  SimDuration item_ttl = SimDuration::seconds(60);
  /// Pickup distance (blocks, horizontal+vertical).
  double pickup_radius = 1.5;

  /// Environmental block ticks: per game tick, this many random columns of
  /// watched chunks get a chance to evolve (dirt with sky above turns to
  /// grass). Server-originated block updates, dispatched like any player
  /// edit. 0 disables.
  std::size_t env_ticks_per_tick = 0;

  /// Snapshot catch-up: a (dyconit, subscriber) queue longer than this is
  /// dropped and the unit's fresh state resent instead (ChunkData for block
  /// units, current positions for entity units). 0 disables.
  std::size_t snapshot_queue_threshold = 512;

  /// Modeled CPU cost of the real network send path (syscall, packet
  /// pipeline, compression), which an in-process simulated send does not
  /// incur. Added to the measured tick CPU per frame/byte the server sent
  /// that tick. Defaults approximate a Netty+zlib Minecraft-like stack;
  /// set both to zero to measure raw simulation CPU only. See DESIGN.md
  /// (substitution table).
  SimDuration net_cost_per_frame = SimDuration::micros(8);
  double net_cost_per_byte_ns = 25.0;

  /// Feed adaptive policies the modeled tick cost only (frames/bytes sent,
  /// via the net_cost_* model) instead of measured wall-clock CPU plus
  /// modeled. Measured CPU is the one host-dependent input in the
  /// simulation: with it in the loop, a slow host (or a sanitizer build)
  /// can push the director over its tick-pressure threshold and change
  /// what goes on the wire. Setting this makes policy decisions — and
  /// therefore wire bytes — a pure function of simulation state, which the
  /// differential determinism suite requires (DESIGN.md §9). Reported tick
  /// CPU metrics (tick_cpu_ms) always remain the real measurement.
  bool deterministic_load = false;

  /// Digest every session's application-level byte stream (tag + payload,
  /// above the transport) into per-session WireHashers, readable via
  /// GameServer::session_stream_hashes(). The UDP/sim equivalence check
  /// (DESIGN.md §12) compares these across backends; off by default — it
  /// touches every payload byte a second time.
  bool hash_streams = false;

  /// Aggregate tick spans into the per-phase profiler (GameServer::
  /// profiler()). Off by default: an installed profiler makes every
  /// TRACE_SCOPE on the send path take timestamps (~1-2% of a busy tick),
  /// so only runs that print the breakdown (e5/e6) pay for it. Independent
  /// of --trace ring-buffer recording, which captures spans either way.
  bool profile_ticks = false;

  /// Where new players spawn. The workload harness overrides this to shape
  /// player density (spread walkers vs a packed village).
  std::function<world::Vec3(const std::string& name)> spawn_provider;

  /// Federation: authority predicate over chunks. When set, block edits
  /// targeting chunks this server does not own are rejected (the owning
  /// instance is authoritative; its changes arrive via the federation
  /// layer). Unset = owns everything (single-instance).
  std::function<bool(world::ChunkPos)> owns_chunk;

  /// Overload control (DESIGN.md §10): bounded per-subscriber egress
  /// queues, the tick watchdog + degradation ladder, and join-time
  /// admission control. Disabled by default — with overload.enabled false
  /// the wire output is byte-identical to builds without the subsystem.
  OverloadConfig overload;

  /// Server-driven NPC entities (mobs): random-waypoint wanderers whose
  /// movement goes through the same update-dispatch path as players. They
  /// model the server-originated share of MVE update load.
  std::size_t mob_count = 0;
  double mob_spawn_radius = 96.0;
  double mob_speed = 1.6;  // blocks/second
  std::uint64_t mob_seed = 1;
};

}  // namespace dyconits::server
