#include "server/game_server.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "entity/movement.h"
#include "net/buffer_pool.h"
#include "trace/trace.h"
#include "util/log.h"

namespace dyconits::server {

using dyconit::Bounds;
using dyconit::DyconitId;
using dyconit::Update;
using entity::Entity;
using entity::EntityId;
using world::ChunkPos;

namespace {

world::Vec3 default_spawn(const std::string&) { return {8.5, 40.0, 8.5}; }

// Packs one flushed batch into protocol messages: entity moves into one
// EntityMoveBatch (a single move stays EntityMove), block changes into
// per-chunk MultiBlockChange (a single change stays BlockChange), anything
// else passed through in order. Each frame's origin is the oldest
// constituent update, so measured latency is the worst case in the batch.
// Shared by the serial deliver() path and the parallel pack_flush() stage
// (DESIGN.md §9): both invoke emit(msg, origin) in the exact same sequence,
// which is what makes the staged frames byte-identical to the serial ones.
template <typename Emit>
void pack_update_batch(const std::vector<dyconit::FlushSink::FlushedUpdate>& updates,
                       Emit&& emit) {
  std::vector<protocol::EntityMove> moves;
  SimTime moves_origin = SimTime::zero();
  std::unordered_map<ChunkPos, protocol::MultiBlockChange> blocks;
  std::unordered_map<ChunkPos, SimTime> blocks_origin;

  for (const dyconit::FlushSink::FlushedUpdate& u : updates) {
    if (const auto* mv = std::get_if<protocol::EntityMove>(u.msg)) {
      if (moves.empty() || u.created < moves_origin) moves_origin = u.created;
      moves.push_back(*mv);
    } else if (const auto* bc = std::get_if<protocol::BlockChange>(u.msg)) {
      const ChunkPos c = ChunkPos::of_block(bc->pos);
      auto& mbc = blocks[c];
      mbc.chunk = c;
      mbc.entries.push_back({static_cast<std::uint8_t>(world::floor_mod(bc->pos.x, 16)),
                             static_cast<std::uint8_t>(bc->pos.y),
                             static_cast<std::uint8_t>(world::floor_mod(bc->pos.z, 16)),
                             bc->block});
      auto [oit, inserted] = blocks_origin.emplace(c, u.created);
      if (!inserted && u.created < oit->second) oit->second = u.created;
    } else {
      emit(*u.msg, u.created);
    }
  }

  if (moves.size() == 1) {
    emit(protocol::AnyMessage(moves.front()), moves_origin);
  } else if (!moves.empty()) {
    emit(protocol::AnyMessage(protocol::EntityMoveBatch{std::move(moves)}), moves_origin);
  }
  for (auto& [c, mbc] : blocks) {
    if (mbc.entries.size() == 1) {
      const auto& e = mbc.entries.front();
      const world::BlockPos pos{c.x * 16 + e.x, e.y, c.z * 16 + e.z};
      emit(protocol::AnyMessage(protocol::BlockChange{pos, e.block}), blocks_origin[c]);
    } else {
      emit(protocol::AnyMessage(std::move(mbc)), blocks_origin[c]);
    }
  }
}

}  // namespace

GameServer::GameServer(SimClock& clock, net::Transport& net, world::World& world,
                       std::unique_ptr<dyconit::Policy> policy, ServerConfig cfg)
    : clock_(clock),
      net_(net),
      world_(world),
      policy_(std::move(policy)),
      cfg_(std::move(cfg)),
      endpoint_(net.create_endpoint("server")),
      dyconits_(clock) {
  assert(!cfg_.use_dyconits || policy_ != nullptr);
  if (!cfg_.spawn_provider) cfg_.spawn_provider = default_spawn;
  observer_token_ =
      world_.add_block_observer([this](const world::BlockChange& c) { on_block_change(c); });

  dyconits_.set_snapshot_threshold(cfg_.snapshot_queue_threshold);

  // Tick phases, in tick() order. Top-level phases tile the tick;
  // net.modeled carries the modeled network-stack CPU so the breakdown sums
  // to the same total tick_cpu_ms() reports. Nested spans run inside a
  // top-level phase and are reported separately (no double counting).
  for (const char* phase :
       {"server.inbound", "server.mobs", "server.environment", "server.items",
        "server.dispatch", "server.chunks", "server.keepalive", "server.overload",
        "server.dyconit_flush", "server.policy", "net.modeled"}) {
    profiler_.add_phase(phase);
  }
  for (const char* nested :
       {"server.serialize_send", "dyconit.enqueue", "dyconit.flush_due",
        "dyconit.flush_workers", "dyconit.flush_merge", "dyconit.gc", "net.send",
        "net.poll"}) {
    profiler_.add_phase(nested, trace::TickProfiler::PhaseKind::Nested);
  }

  if (cfg_.use_dyconits && cfg_.flush_threads > 1) {
    flush_pool_ = std::make_unique<util::ThreadPool>(cfg_.flush_threads);
  }

  // Overload self-calibration: with uplink_bytes_per_second configured, the
  // ladder thresholds come from the modeled cost of saturating that uplink
  // instead of per-experiment hand tuning.
  derive_budget_from_uplink(cfg_.overload, cfg_.tick_interval,
                            cfg_.net_cost_per_byte_ns);

  mob_rng_ = Rng(cfg_.mob_seed);
  mobs_.reserve(cfg_.mob_count);
  for (std::size_t i = 0; i < cfg_.mob_count; ++i) {
    const double r = cfg_.mob_spawn_radius * std::sqrt(mob_rng_.next_double());
    const double a = mob_rng_.next_double() * 2.0 * 3.14159265358979323846;
    const auto x = static_cast<std::int32_t>(r * std::cos(a));
    const auto z = static_cast<std::int32_t>(r * std::sin(a));
    Entity& e = registry_.create(entity::EntityKind::Mob, world_.spawn_position(x, z));
    mobs_.push_back(Mob{e.id, e.pos, SimTime::zero()});
  }
}

GameServer::~GameServer() { world_.remove_block_observer(observer_token_); }

void GameServer::tick() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t frames0 = net_.egress_frames(endpoint_);
  const std::uint64_t bytes0 = net_.egress_bytes(endpoint_);
  ++tick_number_;
  trace::Tracer::instance().set_tick(tick_number_);
  if (cfg_.profile_ticks) profiler_.begin_tick(tick_number_);
  {
    // Install the profiler only when asked: with it installed every span
    // on the send path takes timestamps, which is measurable at scale.
    trace::ProfilerScope profile(cfg_.profile_ticks ? &profiler_ : nullptr);
    TRACE_SCOPE("server.tick");
    { TRACE_SCOPE("server.inbound"); process_inbound(); }
    { TRACE_SCOPE("server.mobs"); tick_mobs(); }
    { TRACE_SCOPE("server.environment"); tick_environment(); }
    { TRACE_SCOPE("server.items"); tick_items(); }
    { TRACE_SCOPE("server.dispatch"); dispatch_moved_entities(); }
    { TRACE_SCOPE("server.chunks"); stream_chunks(); }
    { TRACE_SCOPE("server.keepalive"); send_keepalives(); }
    { TRACE_SCOPE("server.overload"); tick_overload(); }
    if (cfg_.use_dyconits) flush_dyconits();
    { TRACE_SCOPE("server.policy"); run_policy(); }
    if (cfg_.use_dyconits) {
      // Overload widening first, then the resync re-pin: a subscriber that
      // is both backlogged and resyncing stays pinned at zero.
      apply_overload_bounds();
      // A policy retune must not widen bounds for a subscriber that is
      // still resyncing: re-pin them at zero until its snapshot drains.
      for (auto& [id, s] : sessions_) {
        if (!s.resync_tighten) continue;
        for (const auto& [unit, refs] : s.unit_refs) {
          dyconits_.set_bounds(unit, id, dyconit::Bounds::zero());
        }
      }
      // A retune that tightened bounds (including the re-pin above) takes
      // effect this tick, not next: flush whatever the new bounds make
      // overdue. A no-op when the policy widened or left bounds alone.
      flush_dyconits();
    }
    send_barrier_acks();

    const auto elapsed = std::chrono::steady_clock::now() - t0;
    auto micros = std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count();
    // Add the modeled network-stack CPU the in-process send skipped.
    const std::uint64_t frames = net_.egress_frames(endpoint_) - frames0;
    const std::uint64_t bytes = net_.egress_bytes(endpoint_) - bytes0;
    std::int64_t modeled =
        static_cast<std::int64_t>(frames) * cfg_.net_cost_per_frame.count_micros();
    modeled += static_cast<std::int64_t>(static_cast<double>(bytes) *
                                         cfg_.net_cost_per_byte_ns / 1000.0);
    micros += modeled;
    // The policy's load signal: host wall clock is nondeterministic, so
    // deterministic_load confines it to the modeled share (see config.h).
    last_tick_cpu_ = SimDuration::micros(cfg_.deterministic_load ? modeled : micros);
    // The watchdog consumes the cost sample now that it is known; its
    // decisions (rung moves, shed directives, the next disconnect) apply
    // from the next tick, and it sends nothing itself.
    overload_watchdog();
    tick_cpu_ms_.add(static_cast<double>(micros) / 1000.0);
    if (cfg_.profile_ticks) {
      profiler_.add_modeled_ms("net.modeled", static_cast<double>(modeled) / 1000.0);
      profiler_.end_tick(static_cast<double>(micros) / 1000.0);
    }
  }
}

// ---------------------------------------------------------------- inbound

void GameServer::process_inbound() {
  for (net::Delivery& d : net_.poll(endpoint_)) {
    if (cfg_.hash_streams) ingress_hash_by_endpoint_[d.from].mix(d.frame);
    const auto msg = protocol::decode(d.frame);
    // The payload is fully consumed by decode; recycle it before dispatch
    // so the buffer is available to this tick's own sends.
    net::BufferPool::instance().release(std::move(d.frame.payload));
    if (!msg.has_value()) {
      ++malformed_frames_;
      Log::warn("server: dropping malformed frame from %u", d.from);
      continue;
    }
    Session* s = session_of(d.from);
    if (s != nullptr && std::get_if<protocol::JoinRequest>(&*msg) != nullptr) {
      // The client restarted (crash or liveness reset): tear the stale
      // session down and let the join below build a fresh one. The new
      // session restarts the transport sequence; JoinAck rebases the
      // client's gap detector.
      ++reconnects_;
      Log::info("server: %s reconnecting", s->name.c_str());
      disconnect(s->id);
      s = nullptr;
    }
    if (s == nullptr) {
      if (const auto* join = std::get_if<protocol::JoinRequest>(&*msg)) {
        handle_join(d.from, *join);
        if (Session* fresh = session_of(d.from)) fresh->in_seq = d.frame.seq;
      }
      continue;  // any other message from a stranger is ignored
    }
    // Client->server gaps are counted but need no replay: player inputs
    // are absolute and the next one supersedes whatever was lost.
    if (d.frame.seq != 0) {
      if (s->in_seq != 0 && d.frame.seq > s->in_seq + 1) {
        client_gap_frames_ += d.frame.seq - s->in_seq - 1;
      }
      if (d.frame.seq > s->in_seq) s->in_seq = d.frame.seq;
    }
    current_actor_ = s->id;
    handle_message(*s, *msg);
    current_actor_ = dyconit::kNoSubscriber;
  }
}

void GameServer::handle_join(net::EndpointId from, const protocol::JoinRequest& m) {
  // Admission control (DESIGN.md §10): at or above the refusal rung the
  // server will not take on a new replica to keep consistent. No session
  // exists, so the refusal goes out unsequenced (seq 0); clients back off
  // for the suggested interval and retry.
  if (cfg_.overload.enabled && cfg_.overload.admission_refuse_rung > 0 &&
      ladder_.rung() >= cfg_.overload.admission_refuse_rung) {
    ++overload_stats_.joins_refused;
    TRACE_INSTANT("server.overload.join_refused");
    net_.send(endpoint_, from,
              protocol::encode(protocol::JoinRefused{
                  static_cast<std::uint8_t>(ladder_.rung()),
                  cfg_.overload.admission_retry_ms}));
    return;
  }

  Session s;
  s.id = from;  // subscriber id == client endpoint id (both unique, nonzero)
  s.endpoint = from;
  s.name = m.name;

  const world::Vec3 spawn = cfg_.spawn_provider(m.name);
  Entity& e = registry_.create(entity::EntityKind::Player, spawn);
  s.entity = e.id;
  entity_to_session_.emplace(e.id, s.id);

  auto [it, inserted] = sessions_.emplace(s.id, std::move(s));
  assert(inserted);
  Session& session = it->second;

  send_to(session, protocol::JoinAck{e.id, spawn,
                                     static_cast<std::uint8_t>(cfg_.view_distance)});
  update_interest(session, /*initial=*/true);

  // Announce the new player to everyone already watching the spawn chunk.
  announce_spawn(e);
  Log::info("server: %s joined as entity %u", session.name.c_str(), e.id);
}

void GameServer::handle_message(Session& s, const protocol::AnyMessage& m) {
  if (const auto* move = std::get_if<protocol::PlayerMove>(&m)) {
    apply_player_move(s, *move);
  } else if (const auto* dig = std::get_if<protocol::PlayerDig>(&m)) {
    if (cfg_.owns_chunk && !cfg_.owns_chunk(ChunkPos::of_block(dig->pos))) return;
    const world::Block b = world_.block_at(dig->pos);
    if (world::is_breakable(b)) {
      world_.set_block(dig->pos, world::Block::Air);
      if (cfg_.survival_mode) drop_item(dig->pos, b);
    }
  } else if (const auto* place = std::get_if<protocol::PlayerPlace>(&m)) {
    if (cfg_.owns_chunk && !cfg_.owns_chunk(ChunkPos::of_block(place->pos))) return;
    if (world::is_solid(place->block) &&
        world_.block_at(place->pos) == world::Block::Air) {
      if (cfg_.survival_mode) {
        const auto it = s.inventory.find(place->block);
        if (it == s.inventory.end() || it->second == 0) return;  // nothing to place
        --it->second;
        send_or_queue(s, protocol::InventoryUpdate{place->block, it->second});
      }
      world_.set_block(place->pos, place->block);
    }
  } else if (std::get_if<protocol::KeepAliveReply>(&m) != nullptr) {
    s.keepalive_pending = 0;
    if (s.keepalive_sent_at != SimTime()) {
      const SimDuration sample = clock_.now() - s.keepalive_sent_at;
      // EWMA, alpha 1/4 — same shape as TCP's SRTT.
      s.rtt = s.rtt.count_micros() == 0
                  ? sample
                  : SimDuration::micros((s.rtt.count_micros() * 3 +
                                         sample.count_micros()) /
                                        4);
    }
  } else if (const auto* chat = std::get_if<protocol::ChatSend>(&m)) {
    // Chat is low-rate and latency-critical: vanilla broadcast in both modes.
    const protocol::AnyMessage out{protocol::ChatBroadcast{s.entity, chat->text}};
    net::SharedFrame shared;
    const SimTime now = clock_.now();
    for (auto& [id, other] : sessions_) send_or_queue_shared(other, out, shared, now);
  } else if (std::get_if<protocol::ResyncRequest>(&m) != nullptr) {
    begin_resync(s);
  } else if (const auto* barrier = std::get_if<protocol::TickBarrier>(&m)) {
    // Acknowledged at the very end of this tick (send_barrier_acks), so the
    // ack is the last frame of the tick toward this session.
    s.barrier_armed = true;
    s.barrier_tick = barrier->tick;
  }
  // Server-bound-only types: ignore (JoinRequest reconnects are handled in
  // process_inbound before dispatch).
}

void GameServer::begin_resync(Session& s) {
  ++resyncs_served_;
  if (cfg_.use_dyconits) {
    // Flush what the middleware owes, then replay authoritative state for
    // every subscribed unit (request_snapshot queues chunk resends and
    // re-sends known entity positions).
    dyconits_.resync_subscriber(s.id, *this);
    // Treat the subscriber as maximally stale until re-synced: zero bounds
    // deliver every new update immediately while the snapshot drains;
    // stream_chunks hands control back to the policy once the queue empties.
    for (const auto& [unit, refs] : s.unit_refs) {
      dyconits_.set_bounds(unit, s.id, dyconit::Bounds::zero());
    }
    s.resync_tighten = true;
  } else {
    // Vanilla: resend every interest chunk through the stream throttle.
    for (const ChunkPos c : s.interest) {
      if (s.chunk_queued.insert(c).second) s.chunk_queue.push_back(c);
    }
  }
  // Refresh every entity the client should know (spawn is an upsert on the
  // client); heals lost spawns and stale positions. The client prunes
  // replica entities this refresh does not confirm when the ack arrives.
  for (const EntityId id : s.known_entities) {
    const Entity* e = registry_.find(id);
    if (e != nullptr) send_entity_spawn(s, *e);
  }
  send_or_queue(s, protocol::ResyncAck{++resync_epoch_}, clock_.now());
}

void GameServer::apply_player_move(Session& s, const protocol::PlayerMove& m) {
  Entity* e = registry_.find(s.entity);
  if (e == nullptr) return;

  world::Vec3 target = m.pos;
  const double dist = world::distance(e->pos, target);
  if (dist > cfg_.max_move_per_message) return;  // anti-teleport: reject
  if (dist < 1e-9 && e->yaw == m.yaw && e->pitch == m.pitch) return;

  const ChunkPos before = e->chunk();
  registry_.move(*e, target);
  e->yaw = m.yaw;
  e->pitch = m.pitch;
  moved_[e->id] += dist;
  const ChunkPos after = e->chunk();

  if (before != after) {
    entity_crossed_chunk(*e, before, after);
    update_interest(s, /*initial=*/false);
  }
}

void GameServer::tick_mobs() {
  const double dt = cfg_.tick_interval.as_seconds();
  for (Mob& mob : mobs_) {
    Entity* e = registry_.find(mob.id);
    if (e == nullptr) continue;
    if (clock_.now() >= mob.next_waypoint ||
        world::horizontal_distance(e->pos, mob.waypoint) < 1.0) {
      const double r = 24.0 * std::sqrt(mob_rng_.next_double());
      const double a = mob_rng_.next_double() * 2.0 * 3.14159265358979323846;
      mob.waypoint = {e->pos.x + r * std::cos(a), 0.0, e->pos.z + r * std::sin(a)};
      mob.next_waypoint = clock_.now() + SimDuration::seconds(8);
    }
    world::Vec3 next;
    const auto res = entity::step_toward(world_, e->pos, mob.waypoint, cfg_.mob_speed,
                                         dt, next);
    if (res.blocked) mob.next_waypoint = SimTime::zero();  // repick next tick
    if (!res.moved) continue;
    const world::ChunkPos before = e->chunk();
    const double dist = world::distance(e->pos, next);
    registry_.move(*e, next);
    moved_[e->id] += dist;
    const world::ChunkPos after = e->chunk();
    if (before != after) entity_crossed_chunk(*e, before, after);
  }
}

void GameServer::tick_environment() {
  if (cfg_.env_ticks_per_tick == 0) return;
  // Refresh the active-chunk list every ~2 s; exact freshness is not
  // needed, only that ticks land where players are watching.
  if (active_chunks_.empty() || tick_number_ - active_chunks_built_at_tick_ >= 40) {
    active_chunks_.clear();
    active_chunks_.reserve(viewers_.size());
    for (const auto& [c, subs] : viewers_) active_chunks_.push_back(c);
    active_chunks_built_at_tick_ = tick_number_;
  }
  if (active_chunks_.empty()) return;

  for (std::size_t i = 0; i < cfg_.env_ticks_per_tick; ++i) {
    const ChunkPos c = active_chunks_[mob_rng_.next_below(active_chunks_.size())];
    const auto lx = static_cast<int>(mob_rng_.next_below(world::kChunkSize));
    const auto lz = static_cast<int>(mob_rng_.next_below(world::kChunkSize));
    const std::int32_t wx = c.x * world::kChunkSize + lx;
    const std::int32_t wz = c.z * world::kChunkSize + lz;
    const int h = world_.surface_height(wx, wz);
    if (h < 1) continue;
    // Exposed dirt regrows into grass — the classic ambient world change.
    if (world_.block_at({wx, h, wz}) == world::Block::Dirt) {
      world_.set_block({wx, h, wz}, world::Block::Grass);
      ++env_changes_;
    }
  }
}

// ------------------------------------------------------------ dispatching

void GameServer::on_block_change(const world::BlockChange& change) {
  const ChunkPos chunk = ChunkPos::of_block(change.pos);
  const protocol::BlockChange msg{change.pos, change.new_block};

  if (update_tap_ && !applying_external_) {
    update_tap_(msg, 1.0, dyconit::coalesce_key_block(change.pos), chunk,
                entity::EntityKind::Player);
  }

  if (cfg_.use_dyconits) {
    Update u;
    u.msg = msg;
    u.weight = 1.0;
    u.created = clock_.now();
    u.coalesce_key = dyconit::coalesce_key_block(change.pos);
    dyconits_.update(policy_->block_unit_for(chunk), std::move(u), current_actor_);
    return;
  }

  const auto it = viewers_.find(chunk);
  if (it == viewers_.end()) return;
  const protocol::AnyMessage out(msg);
  net::SharedFrame shared;
  const SimTime now = clock_.now();
  for (const SubscriberId sub : it->second) {
    if (sub == current_actor_) continue;
    if (Session* s = session_of(sub)) send_or_queue_shared(*s, out, shared, now);
  }
}

void GameServer::dispatch_moved_entities() {
  for (const auto& [id, weight] : moved_) {
    const Entity* e = registry_.find(id);
    if (e != nullptr) dispatch_entity_move(*e, weight);
  }
  moved_.clear();
}

void GameServer::dispatch_entity_move(const Entity& e, double weight) {
  const protocol::EntityMove msg{e.id, e.pos, e.yaw, e.pitch};
  if (update_tap_ && external_entities_.count(e.id) == 0) {
    update_tap_(msg, weight, dyconit::coalesce_key_entity(e.id), e.chunk(), e.kind);
  }
  const auto own_it = entity_to_session_.find(e.id);
  const SubscriberId own =
      own_it == entity_to_session_.end() ? dyconit::kNoSubscriber : own_it->second;

  if (cfg_.use_dyconits) {
    Update u;
    u.msg = msg;
    u.weight = weight;
    u.created = clock_.now();
    u.coalesce_key = dyconit::coalesce_key_entity(e.id);
    dyconits_.update(policy_->entity_unit_for(e.chunk()), std::move(u), own);
    return;
  }

  const auto it = viewers_.find(e.chunk());
  if (it == viewers_.end()) return;
  const protocol::AnyMessage out(msg);
  net::SharedFrame shared;
  const SimTime now = clock_.now();
  for (const SubscriberId sub : it->second) {
    if (sub == own) continue;
    Session* s = session_of(sub);
    if (s != nullptr && s->known_entities.count(e.id) > 0) {
      send_or_queue_shared(*s, out, shared, now);
    }
  }
}

// ------------------------------------------------------- interest tracking

void GameServer::update_interest(Session& s, bool initial) {
  const Entity* e = registry_.find(s.entity);
  if (e == nullptr) return;
  const ChunkPos center = e->chunk();
  if (!initial && center == s.interest_center) return;
  s.interest_center = center;

  const int v = cfg_.view_distance;
  std::vector<ChunkPos> to_remove;
  for (const ChunkPos c : s.interest) {
    if (c.chebyshev(center) > v + cfg_.unload_margin) to_remove.push_back(c);
  }
  for (const ChunkPos c : to_remove) remove_interest_chunk(s, c);

  for (int dx = -v; dx <= v; ++dx) {
    for (int dz = -v; dz <= v; ++dz) {
      const ChunkPos c{center.x + dx, center.z + dz};
      if (s.interest.count(c) == 0) add_interest_chunk(s, c);
    }
  }

  if (cfg_.use_dyconits) retune_session_bounds(s);
}

void GameServer::add_interest_chunk(Session& s, ChunkPos c) {
  s.interest.insert(c);
  viewers_[c].insert(s.id);

  if (s.chunk_queued.insert(c).second) s.chunk_queue.push_back(c);

  // Spawn entities already standing in the chunk.
  if (const auto* ids = registry_.entities_in_chunk(c)) {
    for (const EntityId id : *ids) {
      if (id == s.entity) continue;
      const Entity* e = registry_.find(id);
      if (e != nullptr && s.known_entities.insert(id).second) {
        send_entity_spawn(s, *e);
      }
    }
  }

  if (cfg_.use_dyconits) {
    const Entity* self = registry_.find(s.entity);
    const world::Vec3 pos = self != nullptr ? self->pos : world::Vec3{};
    for (const DyconitId unit :
         {policy_->block_unit_for(c), policy_->entity_unit_for(c)}) {
      if (++s.unit_refs[unit] == 1) {
        dyconits_.subscribe(unit, s.id, policy_->bounds_for(unit, pos));
      }
    }
  }
}

void GameServer::remove_interest_chunk(Session& s, ChunkPos c) {
  s.interest.erase(c);
  const auto vit = viewers_.find(c);
  if (vit != viewers_.end()) {
    vit->second.erase(s.id);
    if (vit->second.empty()) viewers_.erase(vit);
  }

  if (s.chunk_queued.erase(c) > 0) {
    // Leave the stale entry in chunk_queue; stream_chunks skips it.
  } else {
    send_or_queue(s, protocol::UnloadChunk{c});
  }

  if (const auto* ids = registry_.entities_in_chunk(c)) {
    for (const EntityId id : *ids) {
      if (s.known_entities.erase(id) > 0) send_or_queue(s, protocol::EntityDespawn{id});
    }
  }

  if (cfg_.use_dyconits) {
    for (const DyconitId unit :
         {policy_->block_unit_for(c), policy_->entity_unit_for(c)}) {
      const auto it = s.unit_refs.find(unit);
      if (it != s.unit_refs.end() && --it->second == 0) {
        s.unit_refs.erase(it);
        dyconits_.unsubscribe(unit, s.id);
      }
    }
  }
}

void GameServer::retune_session_bounds(Session& s) {
  const Entity* e = registry_.find(s.entity);
  if (e == nullptr) return;
  for (const auto& [unit, refs] : s.unit_refs) {
    dyconits_.set_bounds(unit, s.id, policy_->bounds_for(unit, e->pos));
  }
}

void GameServer::entity_crossed_chunk(Entity& e, ChunkPos from, ChunkPos to) {
  const auto* old_viewers = [&]() -> const std::unordered_set<SubscriberId>* {
    const auto it = viewers_.find(from);
    return it == viewers_.end() ? nullptr : &it->second;
  }();
  const auto* new_viewers = [&]() -> const std::unordered_set<SubscriberId>* {
    const auto it = viewers_.find(to);
    return it == viewers_.end() ? nullptr : &it->second;
  }();

  if (old_viewers != nullptr) {
    const protocol::AnyMessage despawn{protocol::EntityDespawn{e.id}};
    net::SharedFrame shared;
    for (const SubscriberId sub : *old_viewers) {
      if (new_viewers != nullptr && new_viewers->count(sub) > 0) continue;
      Session* s = session_of(sub);
      if (s != nullptr && s->entity != e.id && s->known_entities.erase(e.id) > 0) {
        send_or_queue_shared(*s, despawn, shared);
      }
    }
  }
  if (new_viewers != nullptr) {
    const protocol::AnyMessage spawn{protocol::EntitySpawn{
        e.id, e.kind, e.pos, e.yaw, e.pitch, display_name_of(e.id), e.data}};
    net::SharedFrame shared;
    for (const SubscriberId sub : *new_viewers) {
      if (old_viewers != nullptr && old_viewers->count(sub) > 0) continue;
      Session* s = session_of(sub);
      if (s != nullptr && s->entity != e.id && s->known_entities.insert(e.id).second) {
        send_or_queue_shared(*s, spawn, shared);
      }
    }
  }
}

// ------------------------------------------------------------- tick phases

void GameServer::stream_chunks() {
  // Rung DeferChunks clamps the per-player throttle: chunk payloads are
  // the heaviest frames, so they are the first whole class deferred.
  int max_sends = cfg_.max_chunk_sends_per_tick;
  if (cfg_.overload.enabled && ladder_.rung() >= kRungDeferChunks) {
    max_sends = std::min(max_sends, cfg_.overload.defer_chunk_sends_per_tick);
  }
  for (auto& [id, s] : sessions_) {
    if (cfg_.overload.enabled && s.backlogged) {
      // Slow-subscriber isolation: no chunk payloads onto a link that is
      // already saturated. The queue keeps its place until the inbox
      // recovers (or the egress queue bounces them back here).
      if (!s.chunk_queue.empty()) ++overload_stats_.chunks_deferred;
      continue;
    }
    int sent = 0;
    while (sent < max_sends && !s.chunk_queue.empty()) {
      const ChunkPos c = s.chunk_queue.front();
      s.chunk_queue.pop_front();
      if (s.chunk_queued.erase(c) == 0) continue;  // interest moved on
      world::Chunk& chunk = world_.chunk_at(c);
      send_or_queue(s, protocol::ChunkData{c, chunk.encode_rle()});
      ++sent;
    }
    if (s.resync_tighten && s.chunk_queue.empty()) {
      // Snapshot drained: the subscriber is caught up; hand bound control
      // back to the policy.
      s.resync_tighten = false;
      if (cfg_.use_dyconits) retune_session_bounds(s);
    }
  }
}

void GameServer::send_keepalives() {
  if (cfg_.keepalive_interval_ticks == 0 ||
      tick_number_ % cfg_.keepalive_interval_ticks != 0) {
    return;
  }
  std::vector<SubscriberId> timed_out;
  // Every session gets the same nonce (the tick number): one shared frame.
  const protocol::AnyMessage keepalive{
      protocol::KeepAlive{static_cast<std::uint32_t>(tick_number_)}};
  net::SharedFrame shared;
  for (auto& [id, s] : sessions_) {
    if (s.keepalive_pending >= cfg_.keepalive_missed_limit) {
      timed_out.push_back(id);
      continue;
    }
    ++s.keepalive_pending;
    s.keepalive_sent_at = clock_.now();
    send_or_queue_shared(s, keepalive, shared);
    ++keepalives_sent_;
  }
  for (const SubscriberId id : timed_out) {
    ++sessions_timed_out_;
    Log::warn("server: session %u timed out", id);
    disconnect(id);
  }
}

void GameServer::run_policy() {
  if (!cfg_.use_dyconits) return;

  const SimTime now = clock_.now();
  if (now - last_rate_sample_ >= SimDuration::seconds(1)) {
    const double dt = (now - last_rate_sample_).as_seconds();
    egress_bytes_per_sec_ = egress_rate_.sample(net_.egress_bytes(endpoint_), dt);
    last_rate_sample_ = now;
  }

  dyconit::LoadSample load;
  load.now = now;
  load.tick_duration = last_tick_cpu_;
  load.tick_budget = cfg_.tick_interval;
  load.egress_bytes_per_sec = egress_bytes_per_sec_;
  load.bandwidth_budget_bps = cfg_.bandwidth_budget_bps;
  load.players = sessions_.size();
  load.overload_rung = cfg_.overload.enabled ? ladder_.rung() : 0;

  const std::vector<dyconit::PlayerView> views = player_views();
  dyconit::PolicyContext ctx(dyconits_, views, load);
  policy_->on_tick(ctx);
  if (ctx.resubscribe_requested()) rebuild_subscriptions();
}

void GameServer::rebuild_subscriptions() {
  // The policy re-partitioned the world. Flush everything owed under the
  // old partition (so no queued update is lost), drop the old
  // subscriptions, and rebuild from the new unit mapping.
  for (auto& [id, s] : sessions_) {
    dyconits_.flush_subscriber(s.id, *this);
    for (const auto& [unit, refs] : s.unit_refs) dyconits_.unsubscribe(unit, s.id);
    s.unit_refs.clear();
    const Entity* e = registry_.find(s.entity);
    const world::Vec3 pos = e != nullptr ? e->pos : world::Vec3{};
    for (const ChunkPos c : s.interest) {
      for (const DyconitId unit :
           {policy_->block_unit_for(c), policy_->entity_unit_for(c)}) {
        if (++s.unit_refs[unit] == 1) {
          dyconits_.subscribe(unit, s.id, policy_->bounds_for(unit, pos));
        }
      }
    }
  }
}

// ---------------------------------------------------------------- flushing

void GameServer::flush_dyconits() {
  TRACE_SCOPE("server.dyconit_flush");
  dyconits_.tick(*this, flush_pool_.get(), flush_pool_ != nullptr ? this : nullptr);
}

void GameServer::deliver(SubscriberId to, const std::vector<FlushedUpdate>& updates) {
  Session* s = session_of(to);
  if (s == nullptr) return;
  pack_update_batch(updates, [&](const protocol::AnyMessage& m, SimTime origin) {
    send_or_queue(*s, m, origin);
  });
}

void GameServer::begin_flush_round(std::size_t shards) {
  if (stages_.size() != shards) stages_.resize(shards);
  for (ShardStage& stage : stages_) {
    stage.frames.clear();
    stage.msgs.clear();
    stage.batches.clear();
  }
}

std::uint32_t GameServer::pack_flush(std::size_t shard, SubscriberId to,
                                     const std::vector<FlushedUpdate>& updates) {
  // Worker context: read-only on sessions_ (concurrent lookups are safe —
  // nothing mutates the session table during the flush phase); all writes
  // go to this shard's staging only.
  ShardStage& stage = stages_[shard];
  const auto handle = static_cast<std::uint32_t>(stage.batches.size());
  StagedBatch batch;
  Session* s = session_of(to);
  // Backlogged subscribers (or ones still draining staged frames) must go
  // through the egress-queue gate, which coalesces at the message level —
  // so their batches are staged unencoded. The backlog flag and queue
  // emptiness are stable for the whole flush round, so every batch of a
  // subscriber makes the same choice, and it matches what the serial
  // oracle's send_or_queue would decide at settle time.
  batch.deferred = s != nullptr && cfg_.overload.enabled &&
                   (s->backlogged || !s->egress.empty());
  if (batch.deferred) {
    batch.begin = static_cast<std::uint32_t>(stage.msgs.size());
    pack_update_batch(updates, [&](const protocol::AnyMessage& m, SimTime origin) {
      stage.msgs.push_back({m, origin});
    });
    batch.end = static_cast<std::uint32_t>(stage.msgs.size());
  } else {
    batch.begin = static_cast<std::uint32_t>(stage.frames.size());
    if (s != nullptr) {
      pack_update_batch(updates, [&](const protocol::AnyMessage& m, SimTime origin) {
        TRACE_SCOPE("server.serialize_send");
        stage.frames.push_back({protocol::encode(m), origin});
      });
    }
    batch.end = static_cast<std::uint32_t>(stage.frames.size());
  }
  stage.batches.push_back(batch);
  return handle;
}

void GameServer::emit_packed(std::size_t shard, std::uint32_t handle, SubscriberId to) {
  Session* s = session_of(to);
  const StagedBatch batch = stages_[shard].batches[handle];
  if (batch.deferred) {
    // Canonical-order merge on the tick thread: route through the same
    // gate the serial deliver() uses, so queue contents (and therefore
    // every later wire byte) match the serial oracle exactly.
    for (std::uint32_t i = batch.begin; i < batch.end && s != nullptr; ++i) {
      StagedMsg& m = stages_[shard].msgs[i];
      send_or_queue(*s, m.msg, m.origin);
    }
    return;
  }
  for (std::uint32_t i = batch.begin; i < batch.end; ++i) {
    StagedFrame& f = stages_[shard].frames[i];
    if (s == nullptr) {
      // Mirrors deliver()'s null-session no-op; recycle the staged payload
      // instead of letting the next begin_flush_round free it.
      net::BufferPool::instance().release(std::move(f.frame.payload));
      continue;
    }
    // Seq is stamped here, not at pack time, so it counts frames in
    // canonical wire order exactly as the serial send_to path does.
    if (cfg_.hash_streams) s->egress_hash.mix(f.frame);
    f.frame.seq = ++s->out_seq;
    f.frame.trace_origin = f.origin;
    net_.send(endpoint_, s->endpoint, std::move(f.frame));
  }
}

// ------------------------------------------------------------------- items

void GameServer::drop_item(const world::BlockPos& pos, world::Block block) {
  Entity& item = registry_.create(entity::EntityKind::Item, pos.center());
  item.data = static_cast<std::uint16_t>(block);
  items_.push_back({item.id, clock_.now() + cfg_.item_ttl});
  ++items_dropped_;
  announce_spawn(item);
}

void GameServer::tick_items() {
  if (items_.empty()) return;
  const SimTime now = clock_.now();
  for (auto it = items_.begin(); it != items_.end();) {
    Entity* item = registry_.find(it->id);
    if (item == nullptr) {
      it = items_.erase(it);
      continue;
    }
    // Pickup: the nearest player standing on the item takes it.
    Session* taker = nullptr;
    for (const EntityId near_id : registry_.query_chunk_radius(item->chunk(), 1)) {
      const Entity* e = registry_.find(near_id);
      if (e == nullptr || e->kind != entity::EntityKind::Player) continue;
      if (world::distance(e->pos, item->pos) > cfg_.pickup_radius) continue;
      if (Session* s = session_by_entity(near_id)) {
        taker = s;
        break;
      }
    }
    if (taker != nullptr) {
      pickup_item(*taker, *item);
      it = items_.erase(it);
      continue;
    }
    if (now >= it->expires) {
      ++items_expired_;
      despawn_entity_everywhere(item->id, item->chunk());
      registry_.remove(item->id);
      it = items_.erase(it);
      continue;
    }
    ++it;
  }
}

void GameServer::pickup_item(Session& s, const Entity& item) {
  const auto block = static_cast<world::Block>(item.data);
  const std::uint32_t count = ++s.inventory[block];
  send_or_queue(s, protocol::InventoryUpdate{block, count});
  ++items_picked_up_;
  despawn_entity_everywhere(item.id, item.chunk());
  registry_.remove(item.id);
}

void GameServer::despawn_entity_everywhere(EntityId id, ChunkPos chunk) {
  const auto vit = viewers_.find(chunk);
  if (vit == viewers_.end()) return;
  const protocol::AnyMessage msg{protocol::EntityDespawn{id}};
  net::SharedFrame shared;
  for (const SubscriberId sub : vit->second) {
    Session* s = session_of(sub);
    if (s != nullptr && s->known_entities.erase(id) > 0) {
      send_or_queue_shared(*s, msg, shared);
    }
  }
}

void GameServer::announce_spawn(const Entity& e) {
  const auto vit = viewers_.find(e.chunk());
  if (vit == viewers_.end()) return;
  const protocol::AnyMessage msg{protocol::EntitySpawn{
      e.id, e.kind, e.pos, e.yaw, e.pitch, display_name_of(e.id), e.data}};
  net::SharedFrame shared;
  for (const SubscriberId sub : vit->second) {
    Session* s = session_of(sub);
    if (s != nullptr && s->entity != e.id && s->known_entities.insert(e.id).second) {
      send_or_queue_shared(*s, msg, shared);
    }
  }
}

// -------------------------------------------------------------- federation

void GameServer::apply_external_block(const world::BlockPos& pos, world::Block b) {
  applying_external_ = true;
  world_.set_block(pos, b);
  applying_external_ = false;
}

entity::EntityId GameServer::spawn_external_entity(entity::EntityKind kind,
                                                   const world::Vec3& pos,
                                                   std::uint16_t data,
                                                   const std::string& name) {
  Entity& e = registry_.create(kind, pos);
  e.data = data;
  external_entities_.insert(e.id);
  external_names_[e.id] = name;
  announce_spawn(e);
  return e.id;
}

void GameServer::move_external_entity(entity::EntityId id, const world::Vec3& pos,
                                      float yaw, float pitch, double weight) {
  Entity* e = registry_.find(id);
  if (e == nullptr || external_entities_.count(id) == 0) return;
  const ChunkPos before = e->chunk();
  registry_.move(*e, pos);
  e->yaw = yaw;
  e->pitch = pitch;
  moved_[id] += weight;
  const ChunkPos after = e->chunk();
  if (before != after) entity_crossed_chunk(*e, before, after);
}

void GameServer::remove_external_entity(entity::EntityId id) {
  Entity* e = registry_.find(id);
  if (e == nullptr || external_entities_.erase(id) == 0) return;
  external_names_.erase(id);
  despawn_entity_everywhere(id, e->chunk());
  registry_.remove(id);
  moved_.erase(id);
}

std::uint32_t GameServer::inventory_of(SubscriberId sub, world::Block item) const {
  const auto sit = sessions_.find(sub);
  if (sit == sessions_.end()) return 0;
  const auto it = sit->second.inventory.find(item);
  return it == sit->second.inventory.end() ? 0 : it->second;
}

void GameServer::request_snapshot(SubscriberId to, const dyconit::DyconitId& unit) {
  Session* s = session_of(to);
  if (s == nullptr) return;
  // Fresh state for every interest chunk the unit covers.
  for (const ChunkPos c : s->interest) {
    const bool covered = unit.is_entity_domain() ? policy_->entity_unit_for(c) == unit
                                                 : policy_->block_unit_for(c) == unit;
    if (!covered) continue;
    if (unit.is_entity_domain()) {
      // Current positions of everything the client knows in this chunk.
      if (const auto* ids = registry_.entities_in_chunk(c)) {
        for (const EntityId id : *ids) {
          const Entity* e = registry_.find(id);
          if (e != nullptr && s->known_entities.count(id) > 0) {
            send_or_queue(*s, protocol::EntityMove{e->id, e->pos, e->yaw, e->pitch},
                          clock_.now());
          }
        }
      }
    } else if (s->chunk_queued.insert(c).second) {
      s->chunk_queue.push_back(c);  // full chunk resend via the throttle
    }
  }
}

// -------------------------------------------------- overload (DESIGN.md §10)

void GameServer::tick_overload() {
  if (!cfg_.overload.enabled) return;

  // Execute disconnects decided since the last overload phase: the
  // watchdog's worst offender plus any session whose egress queue had to
  // drop an order-critical frame. Sorted so the wire-visible despawn
  // fan-out happens in a deterministic order.
  std::vector<SubscriberId> to_drop;
  if (pending_overload_disconnect_ != dyconit::kNoSubscriber) {
    to_drop.push_back(pending_overload_disconnect_);
    pending_overload_disconnect_ = dyconit::kNoSubscriber;
  }
  for (auto& [id, s] : sessions_) {
    if (s.overload_poisoned) to_drop.push_back(id);
  }
  std::sort(to_drop.begin(), to_drop.end());
  to_drop.erase(std::unique(to_drop.begin(), to_drop.end()), to_drop.end());
  for (const SubscriberId id : to_drop) {
    if (sessions_.count(id) == 0) continue;
    ++overload_stats_.overload_disconnects;
    last_overload_disconnect_tick_ = tick_number_;
    TRACE_INSTANT("server.overload.disconnect");
    Log::warn("server: overload disconnect of session %u (rung %s)", id,
              ladder_rung_name(ladder_.rung()));
    disconnect(id);
  }

  // Recompute backlog flags once per tick, then drain recovered
  // subscribers in ascending id order. The flag stays fixed for the rest
  // of the tick, so the serial and sharded flush paths (whose workers read
  // it concurrently) make identical divert decisions.
  std::vector<SubscriberId> ids;
  ids.reserve(sessions_.size());
  for (auto& [id, s] : sessions_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  // Backpressure visibility is a capability (DESIGN.md §12): the sim
  // reports the remote inbox, UDP reports its own staged + congested bytes
  // toward the peer (DESIGN.md §13). Backends with neither degrade to the
  // staged egress bytes the server owns.
  const bool inbox_visible = net_.has_backlog_signal();
  for (const SubscriberId id : ids) {
    Session& s = sessions_.at(id);
    const std::size_t inbox = inbox_visible ? net_.pending_bytes(s.endpoint) : 0;
    const std::size_t backlog = inbox + s.egress.bytes();
    s.backlogged = backlog > cfg_.overload.backlog_threshold_bytes;
    // Drain only while the transport inbox has recovered: pushing staged
    // frames into a still-full inbox would just move the backlog back.
    if (!s.backlogged && !s.egress.empty()) drain_egress(s);
  }
}

void GameServer::overload_watchdog() {
  if (!cfg_.overload.enabled) return;
  // A saturated real socket is overload the CPU clock never sees: bytes the
  // transport failed to put on the wire. Charge them at the modeled
  // per-byte rate so send pressure climbs the ladder exactly like an
  // expensive tick would (DESIGN.md §13). Zero on the sim (sends never
  // fail) and in steady state (the estimate decays), so existing ladder
  // behavior is untouched.
  SimDuration ladder_cost = last_tick_cpu_;
  if (net_.has_send_pressure()) {
    const net::SendPressure p = net_.send_pressure(net::kInvalidEndpoint);
    if (p.congested_bytes > 0) {
      ladder_cost += SimDuration::micros(static_cast<std::int64_t>(
          static_cast<double>(p.congested_bytes) * cfg_.net_cost_per_byte_ns / 1000.0));
    }
    // Refused sends are charged at the per-frame rate too: with small
    // frames the per-frame cost dominates the model, and pricing stuck
    // bytes alone would hide a saturated socket behind ordinary load noise.
    if (p.congested_frames > 0) {
      ladder_cost += SimDuration::micros(
          static_cast<std::int64_t>(p.congested_frames) *
          cfg_.net_cost_per_frame.count_micros());
    }
  }
  const int before = ladder_.rung();
  if (ladder_.on_tick(ladder_cost, cfg_.tick_interval, cfg_.overload)) {
    ++overload_stats_.ladder_transitions;
    TRACE_INSTANT("server.overload.rung");
    Log::info("server: overload ladder %s -> %s (tick cost %lld us)",
              ladder_rung_name(before), ladder_rung_name(ladder_.rung()),
              static_cast<long long>(ladder_cost.count_micros()));
  }
  const int rung = ladder_.rung();

  if (cfg_.use_dyconits) {
    // Rung ShedLowPriority and above: shed queued entity moves for
    // backlogged subscribers (the next move supersedes them) and tighten
    // their snapshot threshold so block backlog converts into snapshot
    // requests. Cleared the moment the subscriber recovers or the ladder
    // descends; per-subscriber map writes, so iteration order is free.
    for (auto& [id, s] : sessions_) {
      dyconit::ShedDirective d;
      if (rung >= kRungShedLowPriority && s.backlogged && !s.resync_tighten) {
        d.shed_entity_moves = true;
        d.snapshot_threshold_override = cfg_.overload.shed_snapshot_threshold;
      }
      dyconits_.set_shed_directive(id, d);
    }
  }

  // Rung Disconnect: pick the worst offender — largest transport + staged
  // backlog, ties to the lowest id — for the next overload phase. One at a
  // time, spaced disconnect_interval_ticks apart, so the ladder re-observes
  // between evictions.
  if (rung >= kRungDisconnect &&
      pending_overload_disconnect_ == dyconit::kNoSubscriber &&
      tick_number_ - last_overload_disconnect_tick_ >=
          cfg_.overload.disconnect_interval_ticks) {
    SubscriberId worst = dyconit::kNoSubscriber;
    std::size_t worst_score = 0;
    const bool inbox_visible = net_.has_backlog_signal();
    for (auto& [id, s] : sessions_) {
      const std::size_t score =
          (inbox_visible ? net_.pending_bytes(s.endpoint) : 0) + s.egress.bytes();
      if (score == 0) continue;
      if (worst == dyconit::kNoSubscriber || score > worst_score ||
          (score == worst_score && id < worst)) {
        worst = id;
        worst_score = score;
      }
    }
    if (worst != dyconit::kNoSubscriber) pending_overload_disconnect_ = worst;
  }
}

void GameServer::apply_overload_bounds() {
  if (!cfg_.overload.enabled || !cfg_.use_dyconits) return;
  if (ladder_.rung() < kRungWidenBounds) return;
  const double f = cfg_.overload.widen_factor;
  for (auto& [id, s] : sessions_) {
    if (!s.backlogged || s.resync_tighten) continue;
    const Entity* e = registry_.find(s.entity);
    if (e == nullptr) continue;
    for (const auto& [unit, refs] : s.unit_refs) {
      Bounds b = policy_->bounds_for(unit, e->pos);
      // Re-derived from the policy every tick (not compounded in place);
      // clamp keeps an already-huge staleness bound from overflowing.
      b.staleness = SimDuration::micros(static_cast<std::int64_t>(std::min(
          static_cast<double>(b.staleness.count_micros()) * f, 9.0e15)));
      b.numerical *= f;
      dyconits_.set_bounds(unit, id, b);
    }
  }
}

void GameServer::send_or_queue(Session& s, const protocol::AnyMessage& m,
                               SimTime trace_origin) {
  // Pass-through until the session is backlogged or has staged frames;
  // after that everything appends so relative order is preserved.
  if (!cfg_.overload.enabled || (!s.backlogged && s.egress.empty())) {
    send_to(s, m, trace_origin);
    return;
  }
  enqueue_egress(s, m, trace_origin);
}

void GameServer::send_or_queue_shared(Session& s, const protocol::AnyMessage& m,
                                      net::SharedFrame& shared,
                                      SimTime trace_origin) {
  // Fast path mirrors send_or_queue/send_to, but the payload is serialized
  // once per broadcast: the first pass-through recipient encodes, later ones
  // stamp their own seq onto a copy of the shared bytes. A diverted
  // recipient stages the message form (its frame is encoded at drain time),
  // so wire bytes are identical either way.
  if (!cfg_.overload.enabled || (!s.backlogged && s.egress.empty())) {
    TRACE_SCOPE("server.serialize_send");
    if (!shared.valid()) shared = protocol::encode_shared(m);
    if (cfg_.hash_streams) s.egress_hash.mix(shared.tag(), shared.payload());
    net_.send(endpoint_, s.endpoint, shared.instance(++s.out_seq, trace_origin));
    return;
  }
  enqueue_egress(s, m, trace_origin);
}

void GameServer::enqueue_egress(Session& s, const protocol::AnyMessage& m,
                                SimTime origin) {
  // Batch frames decompose into atomic updates so coalescing is a per-key
  // replace; drain_egress regroups consecutive runs back into batches.
  if (const auto* batch = std::get_if<protocol::EntityMoveBatch>(&m)) {
    for (const protocol::EntityMove& mv : batch->moves) {
      enqueue_egress_atomic(s, mv, origin, dyconit::coalesce_key_entity(mv.id));
    }
    return;
  }
  if (const auto* mbc = std::get_if<protocol::MultiBlockChange>(&m)) {
    for (const auto& e : mbc->entries) {
      const world::BlockPos pos{mbc->chunk.x * 16 + e.x, e.y, mbc->chunk.z * 16 + e.z};
      enqueue_egress_atomic(s, protocol::BlockChange{pos, e.block}, origin,
                            dyconit::coalesce_key_block(pos));
    }
    return;
  }
  std::uint64_t key = 0;
  if (const auto* mv = std::get_if<protocol::EntityMove>(&m)) {
    key = dyconit::coalesce_key_entity(mv->id);
  } else if (const auto* bc = std::get_if<protocol::BlockChange>(&m)) {
    key = dyconit::coalesce_key_block(bc->pos);
  }
  enqueue_egress_atomic(s, m, origin, key);
}

void GameServer::enqueue_egress_atomic(Session& s, const protocol::AnyMessage& m,
                                       SimTime origin, std::uint64_t key) {
  // Byte accounting uses the exact sizing visitor (no trial encode) plus a
  // worst-case sequence varint (4 bytes wider than wire_size_of's seq 0),
  // so the cap is conservative with respect to actual wire bytes.
  const std::size_t bytes = protocol::wire_size_of(m) + 4;
  switch (s.egress.push(m, origin, key, bytes, cfg_.overload, overload_stats_)) {
    case EgressQueue::PushResult::Queued:
    case EgressQueue::PushResult::Coalesced:
    case EgressQueue::PushResult::DroppedMove:
      break;
    case EgressQueue::PushResult::DeferChunk:
      // Chunk payloads never occupy queue space: hand the position back to
      // the chunk streamer, which re-sends it once the link recovers.
      ++overload_stats_.chunks_deferred;
      if (const auto* cd = std::get_if<protocol::ChunkData>(&m)) {
        if (s.chunk_queued.insert(cd->pos).second) s.chunk_queue.push_back(cd->pos);
      }
      break;
    case EgressQueue::PushResult::DroppedPoison:
      // An order-critical frame was lost; incremental repair is impossible.
      // The next overload phase disconnects the session and rejoin-resync
      // rebuilds the replica from scratch.
      s.overload_poisoned = true;
      break;
  }
}

void GameServer::drain_egress(Session& s) {
  std::size_t budget = cfg_.overload.drain_bytes_per_tick;
  if (budget == 0) budget = static_cast<std::size_t>(-1);
  while (!s.egress.empty() && budget > 0) {
    EgressQueue::Item first = s.egress.pop_front();
    ++overload_stats_.egress_drained;
    std::size_t spent = first.bytes;
    if (std::get_if<protocol::EntityMove>(&first.msg) != nullptr) {
      // Regroup a consecutive run of moves into one batch frame.
      std::vector<protocol::EntityMove> moves;
      moves.push_back(std::get<protocol::EntityMove>(first.msg));
      SimTime origin = first.origin;
      while (!s.egress.empty() && spent < budget &&
             std::get_if<protocol::EntityMove>(&s.egress.front().msg) != nullptr) {
        EgressQueue::Item next = s.egress.pop_front();
        ++overload_stats_.egress_drained;
        spent += next.bytes;
        if (next.origin < origin) origin = next.origin;
        moves.push_back(std::get<protocol::EntityMove>(next.msg));
      }
      if (moves.size() == 1) {
        send_to(s, moves.front(), origin);
      } else {
        send_to(s, protocol::EntityMoveBatch{std::move(moves)}, origin);
      }
    } else if (const auto* bc = std::get_if<protocol::BlockChange>(&first.msg)) {
      // Regroup consecutive same-chunk block ops into a MultiBlockChange.
      const ChunkPos c = ChunkPos::of_block(bc->pos);
      protocol::MultiBlockChange mbc;
      mbc.chunk = c;
      SimTime origin = first.origin;
      auto push_entry = [&mbc](const protocol::BlockChange& b) {
        mbc.entries.push_back(
            {static_cast<std::uint8_t>(world::floor_mod(b.pos.x, 16)),
             static_cast<std::uint8_t>(b.pos.y),
             static_cast<std::uint8_t>(world::floor_mod(b.pos.z, 16)), b.block});
      };
      push_entry(*bc);
      while (!s.egress.empty() && spent < budget) {
        const auto* nb = std::get_if<protocol::BlockChange>(&s.egress.front().msg);
        if (nb == nullptr || ChunkPos::of_block(nb->pos) != c) break;
        EgressQueue::Item next = s.egress.pop_front();
        ++overload_stats_.egress_drained;
        spent += next.bytes;
        if (next.origin < origin) origin = next.origin;
        push_entry(std::get<protocol::BlockChange>(next.msg));
      }
      if (mbc.entries.size() == 1) {
        send_to(s, *bc, origin);
      } else {
        send_to(s, std::move(mbc), origin);
      }
    } else {
      send_to(s, first.msg, first.origin);
    }
    budget -= std::min(budget, spent);
  }
}

std::size_t GameServer::egress_queue_bytes(SubscriberId sub) const {
  const auto it = sessions_.find(sub);
  return it == sessions_.end() ? 0 : it->second.egress.bytes();
}

std::size_t GameServer::egress_queue_frames(SubscriberId sub) const {
  const auto it = sessions_.find(sub);
  return it == sessions_.end() ? 0 : it->second.egress.frames();
}

// ----------------------------------------------------------------- helpers

void GameServer::send_to(Session& s, const protocol::AnyMessage& m, SimTime trace_origin) {
  TRACE_SCOPE("server.serialize_send");
  net::Frame frame = protocol::encode(m);
  if (cfg_.hash_streams) s.egress_hash.mix(frame);  // pre-seq: backend-neutral
  frame.seq = ++s.out_seq;  // transport sequence; clients detect gaps
  frame.trace_origin = trace_origin;
  net_.send(endpoint_, s.endpoint, std::move(frame));
}

void GameServer::send_barrier_acks() {
  std::vector<SubscriberId> ids;
  for (auto& [id, s] : sessions_) {
    if (s.barrier_armed) ids.push_back(id);
  }
  if (ids.empty()) return;
  std::sort(ids.begin(), ids.end());
  for (const SubscriberId id : ids) {
    Session& s = sessions_.at(id);
    s.barrier_armed = false;
    send_or_queue(s, protocol::TickBarrierAck{s.barrier_tick}, clock_.now());
  }
}

std::vector<GameServer::SessionStreamHash> GameServer::session_stream_hashes() const {
  std::vector<SessionStreamHash> out;
  out.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) {
    SessionStreamHash h;
    h.name = s.name;
    h.egress_hash = s.egress_hash.value();
    h.egress_frames = s.egress_hash.frames();
    const auto it = ingress_hash_by_endpoint_.find(s.endpoint);
    if (it != ingress_hash_by_endpoint_.end()) {
      h.ingress_hash = it->second.value();
      h.ingress_frames = it->second.frames();
    }
    out.push_back(std::move(h));
  }
  std::sort(out.begin(), out.end(),
            [](const SessionStreamHash& a, const SessionStreamHash& b) {
              return a.name < b.name;
            });
  return out;
}

void GameServer::send_entity_spawn(Session& s, const Entity& e) {
  send_or_queue(s, protocol::EntitySpawn{e.id, e.kind, e.pos, e.yaw, e.pitch,
                                         display_name_of(e.id), e.data});
}

const std::string& GameServer::display_name_of(EntityId id) const {
  static const std::string kEmpty;
  const auto eit = external_names_.find(id);
  if (eit != external_names_.end()) return eit->second;
  const auto it = entity_to_session_.find(id);
  if (it == entity_to_session_.end()) return kEmpty;
  const auto sit = sessions_.find(it->second);
  return sit == sessions_.end() ? kEmpty : sit->second.name;
}

void GameServer::disconnect(SubscriberId sub) {
  const auto it = sessions_.find(sub);
  if (it == sessions_.end()) return;
  Session& s = it->second;

  // Remove the player's view.
  for (const ChunkPos c : s.interest) {
    const auto vit = viewers_.find(c);
    if (vit != viewers_.end()) {
      vit->second.erase(sub);
      if (vit->second.empty()) viewers_.erase(vit);
    }
  }
  if (cfg_.use_dyconits) dyconits_.unsubscribe_all(sub);
  if (cfg_.overload.enabled) {
    overload_stats_.egress_dropped_disconnect += s.egress.clear();
    if (cfg_.use_dyconits) dyconits_.set_shed_directive(sub, {});
  }

  // Remove the player's presence.
  Entity* e = registry_.find(s.entity);
  if (e != nullptr) {
    const auto vit = viewers_.find(e->chunk());
    if (vit != viewers_.end()) {
      const protocol::AnyMessage despawn{protocol::EntityDespawn{e->id}};
      net::SharedFrame shared;
      for (const SubscriberId other_id : vit->second) {
        Session* other = session_of(other_id);
        if (other != nullptr && other->known_entities.erase(e->id) > 0) {
          send_or_queue_shared(*other, despawn, shared);
        }
      }
    }
    entity_to_session_.erase(e->id);
    registry_.remove(e->id);
    moved_.erase(s.entity);
  }
  sessions_.erase(it);
}

GameServer::Session* GameServer::session_of(SubscriberId sub) {
  const auto it = sessions_.find(sub);
  return it == sessions_.end() ? nullptr : &it->second;
}

GameServer::Session* GameServer::session_by_entity(EntityId id) {
  const auto it = entity_to_session_.find(id);
  return it == entity_to_session_.end() ? nullptr : session_of(it->second);
}

entity::EntityId GameServer::entity_of(SubscriberId sub) const {
  const auto it = sessions_.find(sub);
  return it == sessions_.end() ? entity::kInvalidEntity : it->second.entity;
}

std::vector<dyconit::PlayerView> GameServer::player_views() const {
  std::vector<dyconit::PlayerView> views;
  views.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) {
    const Entity* e = registry_.find(s.entity);
    if (e != nullptr) views.push_back({s.id, s.entity, e->pos, s.rtt});
  }
  return views;
}

SimDuration GameServer::rtt_of(SubscriberId sub) const {
  const auto it = sessions_.find(sub);
  return it == sessions_.end() ? SimDuration() : it->second.rtt;
}

}  // namespace dyconits::server
