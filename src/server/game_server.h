// The MVE game server: a 20 Hz tick loop over player sessions, chunk
// streaming, interest management, and state-update dispatch. The dispatch
// path is the integration point of the paper: with use_dyconits=false every
// update is serialized and sent at the update site (the unmodified game);
// with use_dyconits=true the same call sites hand updates to the
// DyconitSystem and the server's FlushSink packs flushed batches into
// protocol frames on the existing network stack.
#pragma once

#include <chrono>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dyconit/policy.h"
#include "dyconit/system.h"
#include "entity/registry.h"
#include "metrics/metrics.h"
#include "net/shared_frame.h"
#include "net/transport.h"
#include "protocol/codec.h"
#include "server/config.h"
#include "trace/tick_profiler.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/thread_pool.h"
#include "world/world.h"

namespace dyconits::server {

using dyconit::SubscriberId;

class GameServer final : public dyconit::FlushSink, public dyconit::ParallelFlushHost {
 public:
  /// `policy` may be null only when cfg.use_dyconits is false. `net` is any
  /// Transport backend: the SimNetwork oracle in-process, UdpTransport for
  /// real deployments (DESIGN.md §12). Sim-only capabilities (remote-inbox
  /// backpressure, fault stats) are queried, never assumed.
  GameServer(SimClock& clock, net::Transport& net, world::World& world,
             std::unique_ptr<dyconit::Policy> policy, ServerConfig cfg);
  ~GameServer() override;

  GameServer(const GameServer&) = delete;
  GameServer& operator=(const GameServer&) = delete;

  net::EndpointId endpoint() const { return endpoint_; }

  /// Runs one full game tick at the current simulated time: drains inbound
  /// messages, applies actions, dispatches updates, streams chunks, flushes
  /// due dyconit queues, and runs the policy. Measures its own CPU time.
  void tick();

  /// Force-disconnects a player (drops session, despawns entity, notifies
  /// viewers). Used by tests/examples; timeouts call it internally.
  void disconnect(SubscriberId sub);

  // -- FlushSink --
  void deliver(SubscriberId to, const std::vector<FlushedUpdate>& updates) override;
  void request_snapshot(SubscriberId to, const dyconit::DyconitId& unit) override;

  // -- ParallelFlushHost (DESIGN.md §9) --
  void begin_flush_round(std::size_t shards) override;
  std::uint32_t pack_flush(std::size_t shard, SubscriberId to,
                           const std::vector<FlushedUpdate>& updates) override;
  void emit_packed(std::size_t shard, std::uint32_t handle, SubscriberId to) override;

  // -- introspection --
  std::size_t player_count() const { return sessions_.size(); }
  const entity::EntityRegistry& entities() const { return registry_; }
  world::World& world() { return world_; }
  dyconit::DyconitSystem& dyconits() { return dyconits_; }
  const dyconit::Stats& dyconit_stats() const { return dyconits_.stats(); }
  dyconit::Policy* policy() { return policy_.get(); }
  const ServerConfig& config() const { return cfg_; }

  /// Wall-clock CPU time of each tick() call, in milliseconds.
  const Samples& tick_cpu_ms() const { return tick_cpu_ms_; }
  Samples& tick_cpu_ms() { return tick_cpu_ms_; }
  SimDuration last_tick_cpu() const { return last_tick_cpu_; }
  std::uint64_t tick_count() const { return tick_number_; }

  /// Per-phase tick cost breakdown, fed by the TRACE_SCOPE spans inside
  /// tick(). Reset it to scope the report to a measurement window.
  trace::TickProfiler& profiler() { return profiler_; }
  const trace::TickProfiler& profiler() const { return profiler_; }

  // -- federation hooks --
  /// Observes every locally-originated update the server dispatches (block
  /// changes and entity moves), with its dyconit coalesce key and source
  /// chunk. Externally-applied updates and mirror entities are not tapped
  /// (loop prevention). `kind` is meaningful for entity moves only.
  using UpdateTap =
      std::function<void(const protocol::AnyMessage& msg, double weight,
                         std::uint64_t key, world::ChunkPos chunk,
                         entity::EntityKind kind)>;
  void set_update_tap(UpdateTap tap) { update_tap_ = std::move(tap); }

  /// Applies a block change received from a peer instance: local players
  /// are notified through the normal dispatch path, but the update tap is
  /// suppressed.
  void apply_external_block(const world::BlockPos& pos, world::Block b);

  /// Mirror entities: local stand-ins for entities owned by a peer.
  entity::EntityId spawn_external_entity(entity::EntityKind kind,
                                         const world::Vec3& pos, std::uint16_t data,
                                         const std::string& name);
  void move_external_entity(entity::EntityId id, const world::Vec3& pos, float yaw,
                            float pitch, double weight);
  void remove_external_entity(entity::EntityId id);
  bool is_external_entity(entity::EntityId id) const {
    return external_entities_.count(id) > 0;
  }
  std::size_t external_entity_count() const { return external_entities_.size(); }

  /// Entity id of a connected player, kInvalidEntity if unknown.
  entity::EntityId entity_of(SubscriberId sub) const;
  /// Smoothed keep-alive RTT of a player; zero until measured.
  SimDuration rtt_of(SubscriberId sub) const;
  /// Positions of all connected players (policy views).
  std::vector<dyconit::PlayerView> player_views() const;

  /// Total updates suppressed relative to a vanilla send (coalesced).
  std::uint64_t keepalives_sent() const { return keepalives_sent_; }
  std::uint64_t sessions_timed_out() const { return sessions_timed_out_; }

  // -- fault/recovery introspection (DESIGN.md §18) --
  std::uint64_t resyncs_served() const { return resyncs_served_; }
  std::uint64_t reconnects() const { return reconnects_; }
  std::uint64_t malformed_frames() const { return malformed_frames_; }
  std::uint64_t client_gap_frames() const { return client_gap_frames_; }

  // -- wire-equivalence introspection (DESIGN.md §12) --
  /// Per-session application-stream digests, keyed by player name (endpoint
  /// ids are backend-local; names survive the sim/UDP comparison). Empty
  /// unless cfg.hash_streams. Sorted by name.
  struct SessionStreamHash {
    std::string name;
    std::uint64_t egress_hash = 0;
    std::uint64_t egress_frames = 0;
    std::uint64_t ingress_hash = 0;
    std::uint64_t ingress_frames = 0;
  };
  std::vector<SessionStreamHash> session_stream_hashes() const;

  // -- overload introspection (DESIGN.md §10) --
  const OverloadStats& overload_stats() const { return overload_stats_; }
  /// Transport-wide send-pressure counters (all-zero on backends without
  /// send visibility, i.e. the sim). Surfaces the EAGAIN/retry/congestion
  /// ledger the UDP path keeps per peer (DESIGN.md §13).
  net::SendPressure transport_pressure() const {
    return net_.has_send_pressure() ? net_.send_pressure(net::kInvalidEndpoint)
                                    : net::SendPressure{};
  }
  /// Current degradation-ladder rung (0 = Normal).
  int overload_rung() const { return ladder_.rung(); }
  /// Bytes / frames currently staged in one subscriber's egress queue
  /// (0 for unknown subscribers). Bounded by OverloadConfig::queue_cap_*.
  std::size_t egress_queue_bytes(SubscriberId sub) const;
  std::size_t egress_queue_frames(SubscriberId sub) const;

 private:
  struct Session {
    SubscriberId id = 0;
    net::EndpointId endpoint = net::kInvalidEndpoint;
    entity::EntityId entity = entity::kInvalidEntity;
    std::string name;
    world::ChunkPos interest_center;
    std::unordered_set<world::ChunkPos> interest;        // chunks in view
    std::unordered_map<dyconit::DyconitId, int> unit_refs;  // unit -> #interest chunks
    std::deque<world::ChunkPos> chunk_queue;             // pending ChunkData sends
    std::unordered_set<world::ChunkPos> chunk_queued;    // membership for chunk_queue
    std::unordered_set<entity::EntityId> known_entities;
    std::unordered_map<world::Block, std::uint32_t> inventory;
    std::uint32_t keepalive_pending = 0;
    SimTime keepalive_sent_at;
    /// Smoothed round-trip time measured from keep-alive replies (zero
    /// until the first reply). Available to policies via PlayerView.
    SimDuration rtt;
    /// Transport sequence numbers (DESIGN.md §18): every frame to this
    /// client is stamped ++out_seq; in_seq is the highest client frame
    /// seen (client->server gaps are counted, not recovered — inputs are
    /// absolute and the next one supersedes the lost).
    std::uint32_t out_seq = 0;
    std::uint32_t in_seq = 0;
    /// Mid-resync: bounds pinned at zero (maximally stale subscriber gets
    /// immediate delivery) until the snapshot chunk queue drains.
    bool resync_tighten = false;
    bool joined = false;
    /// Overload control (DESIGN.md §10): capped server-side staging between
    /// the game and the transport. Once non-empty, every send to this
    /// session appends (order preservation); the drain phase re-sends.
    EgressQueue egress;
    /// Transport inbox + staged bytes above the backlog threshold this
    /// tick. Recomputed once per tick (tick_overload) so the divert
    /// decision is stable across the whole tick — including the parallel
    /// flush round, where workers read it concurrently.
    bool backlogged = false;
    /// The egress queue had to drop an order-critical frame; the replica
    /// cannot be repaired incrementally, so the session is disconnected at
    /// the next overload phase and resynced on rejoin.
    bool overload_poisoned = false;
    /// Lockstep scripted runs (DESIGN.md §12): the client sent a
    /// TickBarrier this tick; acknowledged as the last frame of the tick.
    bool barrier_armed = false;
    std::uint32_t barrier_tick = 0;
    /// Application-stream digest (ServerConfig::hash_streams): every frame
    /// sent to this session, mixed above the transport — before seq
    /// stamping — so sim and UDP runs are comparable. The ingress
    /// counterpart lives in ingress_hash_by_endpoint_ (frames arrive
    /// before the session exists: the JoinRequest itself is hashed).
    net::WireHasher egress_hash;
  };

  // -- tick phases --
  void process_inbound();
  void tick_mobs();
  void tick_environment();
  void tick_items();
  void dispatch_moved_entities();
  void stream_chunks();
  void send_keepalives();
  void run_policy();
  /// Overload phase (DESIGN.md §10): executes disconnects decided by the
  /// previous watchdog, recomputes per-session backlog flags, and drains
  /// egress queues of recovered subscribers within the per-tick budget.
  void tick_overload();
  /// End of tick, after the modeled cost is known: advances the
  /// degradation ladder and installs/clears per-subscriber shed directives
  /// and the next worst-offender disconnect. Decisions apply next tick.
  void overload_watchdog();
  /// After run_policy: re-derives backlogged subscribers' bounds widened
  /// by OverloadConfig::widen_factor (rung >= WidenBounds). Runs before
  /// the resync re-pin so resync still wins.
  void apply_overload_bounds();
  /// Very last sends of a tick: TickBarrierAck to every session whose
  /// barrier this tick consumed, in ascending session id. On an in-order
  /// transport, a client that has seen ack N owns the complete tick-N
  /// stream — the property the lockstep equivalence driver relies on.
  void send_barrier_acks();

  // -- message handling --
  void handle_join(net::EndpointId from, const protocol::JoinRequest& m);
  void handle_message(Session& s, const protocol::AnyMessage& m);
  void apply_player_move(Session& s, const protocol::PlayerMove& m);
  /// Recovery handshake (DESIGN.md §18): flush owed updates, replay
  /// authoritative state for everything `s` subscribes to, pin bounds at
  /// zero until the snapshot drains, and acknowledge with ResyncAck.
  void begin_resync(Session& s);

  // -- interest management --
  void update_interest(Session& s, bool initial);
  void add_interest_chunk(Session& s, world::ChunkPos c);
  void remove_interest_chunk(Session& s, world::ChunkPos c);
  void retune_session_bounds(Session& s);
  void rebuild_subscriptions();
  void entity_crossed_chunk(entity::Entity& e, world::ChunkPos from, world::ChunkPos to);

  // -- update dispatch (the paper's integration point) --
  void on_block_change(const world::BlockChange& change);
  void dispatch_entity_move(const entity::Entity& e, double weight);

  // -- items --
  void drop_item(const world::BlockPos& pos, world::Block block);
  void pickup_item(Session& s, const entity::Entity& item);
  void despawn_entity_everywhere(entity::EntityId id, world::ChunkPos chunk);
  void announce_spawn(const entity::Entity& e);

  // -- sending --
  /// Flushes due dyconit queues through the serial path (flush_threads <=
  /// 1) or the sharded pipeline; both produce byte-identical wire output.
  void flush_dyconits();
  void send_to(Session& s, const protocol::AnyMessage& m, SimTime trace_origin = {});
  /// The overload-aware send gate every session-directed message goes
  /// through: a pass-through to send_to until the session is backlogged or
  /// already has staged frames, after which messages divert into the capped
  /// egress queue (with coalescing). With overload disabled it compiles
  /// down to send_to and the wire output is unchanged.
  void send_or_queue(Session& s, const protocol::AnyMessage& m,
                     SimTime trace_origin = {});
  /// send_or_queue for broadcast fan-outs (DESIGN.md §11): the first
  /// recipient on the fast path encodes `m` once into `shared`; later
  /// recipients only stamp their session seq onto a copy of the shared
  /// payload. Callers keep one SharedFrame per fan-out loop. Recipients
  /// that divert to the egress queue still stage the message form (the
  /// queue coalesces messages, not frames), exactly like send_or_queue —
  /// the wire bytes are identical either way.
  void send_or_queue_shared(Session& s, const protocol::AnyMessage& m,
                            net::SharedFrame& shared, SimTime trace_origin = {});
  /// Decomposes batch messages into atomic ones and stages them.
  void enqueue_egress(Session& s, const protocol::AnyMessage& m, SimTime origin);
  void enqueue_egress_atomic(Session& s, const protocol::AnyMessage& m,
                             SimTime origin, std::uint64_t key);
  /// Re-sends staged frames (oldest first) within the drain budget,
  /// regrouping consecutive moves / same-chunk block ops into batch frames.
  void drain_egress(Session& s);
  void send_entity_spawn(Session& s, const entity::Entity& e);
  const std::string& display_name_of(entity::EntityId id) const;

  Session* session_of(SubscriberId sub);
  Session* session_by_entity(entity::EntityId id);

  SimClock& clock_;
  net::Transport& net_;
  world::World& world_;
  std::unique_ptr<dyconit::Policy> policy_;
  ServerConfig cfg_;

  net::EndpointId endpoint_;
  dyconit::DyconitSystem dyconits_;
  entity::EntityRegistry registry_;

  std::unordered_map<SubscriberId, Session> sessions_;
  /// hash_streams: digest of everything each remote endpoint delivered to
  /// us, from its very first frame (sessions come and go; the client's
  /// egress stream spans the whole process).
  std::unordered_map<net::EndpointId, net::WireHasher> ingress_hash_by_endpoint_;
  std::unordered_map<entity::EntityId, SubscriberId> entity_to_session_;
  std::unordered_map<world::ChunkPos, std::unordered_set<SubscriberId>> viewers_;

  /// Entities that moved during the current tick and the weight (distance)
  /// they accumulated.
  std::unordered_map<entity::EntityId, double> moved_;
  /// Originator of the action currently being applied (excluded from its
  /// own update fan-out).
  SubscriberId current_actor_ = dyconit::kNoSubscriber;

  std::uint64_t tick_number_ = 0;
  SimDuration last_tick_cpu_;
  trace::TickProfiler profiler_;
  Samples tick_cpu_ms_;
  metrics::RateSampler egress_rate_;
  double egress_bytes_per_sec_ = 0.0;
  SimTime last_rate_sample_;
  std::uint64_t keepalives_sent_ = 0;
  std::uint64_t sessions_timed_out_ = 0;
  std::uint64_t resyncs_served_ = 0;
  std::uint64_t reconnects_ = 0;
  std::uint64_t malformed_frames_ = 0;
  std::uint64_t client_gap_frames_ = 0;
  std::uint32_t resync_epoch_ = 0;
  int observer_token_ = 0;

  /// Overload control state (DESIGN.md §10). The ladder advances in
  /// overload_watchdog() at end of tick; its decisions apply next tick.
  DegradationLadder ladder_;
  OverloadStats overload_stats_;
  /// Worst offender picked by the last watchdog at rung Disconnect;
  /// executed (and cleared) by the next tick_overload().
  SubscriberId pending_overload_disconnect_ = dyconit::kNoSubscriber;
  std::uint64_t last_overload_disconnect_tick_ = 0;

  struct Mob {
    entity::EntityId id = entity::kInvalidEntity;
    world::Vec3 waypoint;
    SimTime next_waypoint;
  };
  std::vector<Mob> mobs_;
  Rng mob_rng_{1};

  /// Parallel flush staging (DESIGN.md §9): workers serialize flushed
  /// batches into their shard's stage; the tick thread emits them in
  /// canonical order. Frames staged without sequence numbers — the seq is
  /// stamped at emit time so it reflects canonical wire order. Capacity is
  /// kept across rounds; alignment avoids false sharing between shards.
  struct StagedFrame {
    net::Frame frame;
    SimTime origin;
  };
  /// A flushed update staged *unencoded* because its subscriber is
  /// backlogged: at emit time it goes through the egress-queue gate (which
  /// coalesces at the message level) instead of straight onto the wire.
  /// The backlog flag is stable for the whole tick, so workers and the
  /// serial oracle make identical divert decisions.
  struct StagedMsg {
    protocol::AnyMessage msg;
    SimTime origin;
  };
  struct StagedBatch {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
    bool deferred = false;  // indexes msgs (true) or frames (false)
  };
  struct alignas(64) ShardStage {
    std::vector<StagedFrame> frames;
    std::vector<StagedMsg> msgs;
    std::vector<StagedBatch> batches;
  };
  std::vector<ShardStage> stages_;
  std::unique_ptr<util::ThreadPool> flush_pool_;  // null when flush_threads <= 1

  struct DroppedItem {
    entity::EntityId id = entity::kInvalidEntity;
    SimTime expires;
  };
  std::vector<DroppedItem> items_;
  UpdateTap update_tap_;
  bool applying_external_ = false;
  std::unordered_set<entity::EntityId> external_entities_;
  std::unordered_map<entity::EntityId, std::string> external_names_;
  std::uint64_t items_dropped_ = 0;
  std::uint64_t items_picked_up_ = 0;
  std::uint64_t items_expired_ = 0;

 public:
  std::uint64_t items_dropped() const { return items_dropped_; }
  std::uint64_t items_picked_up() const { return items_picked_up_; }
  std::uint64_t items_expired() const { return items_expired_; }
  /// Inventory count of one item for a connected player (0 if unknown).
  std::uint32_t inventory_of(SubscriberId sub, world::Block item) const;

 private:

  /// Chunks eligible for environmental ticks (watched by someone); lazily
  /// rebuilt from viewers_ every couple of seconds.
  std::vector<world::ChunkPos> active_chunks_;
  std::uint64_t active_chunks_built_at_tick_ = 0;
  std::uint64_t env_changes_ = 0;

 public:
  std::uint64_t env_changes() const { return env_changes_; }

 private:
};

}  // namespace dyconits::server
