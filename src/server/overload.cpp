#include "server/overload.h"

#include <algorithm>
#include <variant>

namespace dyconits::server {

const char* ladder_rung_name(int rung) {
  switch (rung) {
    case kRungNormal: return "Normal";
    case kRungWidenBounds: return "WidenBounds";
    case kRungShedLowPriority: return "ShedLowPriority";
    case kRungDeferChunks: return "DeferChunks";
    case kRungDisconnect: return "Disconnect";
    default: return "?";
  }
}

void derive_budget_from_uplink(OverloadConfig& cfg, SimDuration tick_interval,
                               double net_cost_per_byte_ns) {
  if (!cfg.enabled || cfg.uplink_bytes_per_second == 0) return;
  // One tick's worth of uplink bytes, priced at the modeled per-byte cost,
  // expressed as a fraction of the tick budget. A server saturating its
  // uplink spends exactly this fraction of each tick in net.modeled time,
  // so "above it with margin" is the natural engage point.
  const double tick_s =
      static_cast<double>(tick_interval.count_micros()) / 1'000'000.0;
  const double bytes_per_tick =
      static_cast<double>(cfg.uplink_bytes_per_second) * tick_s;
  const double cost_us = bytes_per_tick * net_cost_per_byte_ns / 1000.0;
  const double budget_us =
      std::max(static_cast<double>(tick_interval.count_micros()), 1.0);
  const double fraction = cost_us / budget_us;
  cfg.budget_engage = fraction * cfg.engage_margin;
  cfg.budget_release = cfg.budget_engage * cfg.release_fraction;
}

bool DegradationLadder::on_tick(SimDuration modeled_cost, SimDuration tick_budget,
                                const OverloadConfig& cfg) {
  const double budget_us =
      std::max(static_cast<double>(tick_budget.count_micros()), 1.0);
  const double ratio = static_cast<double>(modeled_cost.count_micros()) / budget_us;
  if (ratio > cfg.budget_engage) {
    ++over_;
    under_ = 0;
  } else if (ratio < cfg.budget_release) {
    ++under_;
    over_ = 0;
  } else {
    // Between the thresholds: hold the rung (hysteresis dead band).
    over_ = 0;
    under_ = 0;
  }
  const int old = rung_;
  if (over_ >= cfg.engage_ticks && rung_ < kRungDisconnect) {
    ++rung_;
    over_ = 0;
  } else if (under_ >= cfg.release_ticks && rung_ > kRungNormal) {
    --rung_;
    under_ = 0;
  }
  if (rung_ != old) ++transitions_;
  return rung_ != old;
}

bool EgressQueue::fits(std::size_t incoming_bytes, std::size_t incoming_frames,
                       const OverloadConfig& cfg) const {
  if (cfg.queue_cap_bytes > 0 && bytes_ + incoming_bytes > cfg.queue_cap_bytes) {
    return false;
  }
  if (cfg.queue_cap_frames > 0 && frames() + incoming_frames > cfg.queue_cap_frames) {
    return false;
  }
  return true;
}

void EgressQueue::evict_moves(std::size_t incoming_bytes, const OverloadConfig& cfg,
                              OverloadStats& stats) {
  std::vector<Item> kept;
  kept.reserve(frames());
  std::size_t new_bytes = bytes_;
  std::size_t remaining = frames();
  std::uint64_t evicted = 0;
  for (std::size_t i = head_; i < items_.size(); ++i) {
    Item& it = items_[i];
    const bool over_bytes =
        cfg.queue_cap_bytes > 0 && new_bytes + incoming_bytes > cfg.queue_cap_bytes;
    const bool over_frames =
        cfg.queue_cap_frames > 0 && remaining + 1 > cfg.queue_cap_frames;
    const bool is_move = (it.key >> 56) == 1;
    if ((over_bytes || over_frames) && is_move) {
      new_bytes -= it.bytes;
      --remaining;
      ++evicted;
      continue;
    }
    kept.push_back(std::move(it));
  }
  items_ = std::move(kept);
  head_ = 0;
  bytes_ = new_bytes;
  by_key_.clear();
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (items_[i].key != 0) by_key_[items_[i].key] = i;
  }
  stats.egress_evicted_moves += evicted;
}

EgressQueue::PushResult EgressQueue::push(const protocol::AnyMessage& m,
                                          SimTime origin, std::uint64_t key,
                                          std::size_t bytes,
                                          const OverloadConfig& cfg,
                                          OverloadStats& stats) {
  if (key != 0) {
    const auto it = by_key_.find(key);
    if (it != by_key_.end()) {
      Item& slot = items_[it->second];
      bytes_ -= slot.bytes;
      bytes_ += bytes;
      slot.msg = m;  // newest state wins; origin stays the oldest constituent
      slot.bytes = bytes;
      ++stats.egress_coalesced;
      // A replace can grow the slot by a few bytes (varint widths); keep
      // the hard cap honest by evicting moves if it pushed us over.
      if (!fits(0, 0, cfg)) evict_moves(0, cfg, stats);
      stats.peak_queue_bytes = std::max(stats.peak_queue_bytes, bytes_);
      return PushResult::Coalesced;
    }
  }
  if (!fits(bytes, 1, cfg)) evict_moves(bytes, cfg, stats);
  if (!fits(bytes, 1, cfg)) {
    if (std::get_if<protocol::ChunkData>(&m) != nullptr) {
      return PushResult::DeferChunk;
    }
    if (std::get_if<protocol::EntityMove>(&m) != nullptr) {
      ++stats.egress_dropped_moves;
      return PushResult::DroppedMove;
    }
    // Order-critical message (spawn/despawn/unload/...) with nowhere to
    // go: dropping it silently would corrupt the replica, so the caller
    // must disconnect this session and let rejoin-resync repair it.
    ++stats.egress_dropped_ordered;
    return PushResult::DroppedPoison;
  }
  if (key != 0) by_key_[key] = items_.size();
  items_.push_back(Item{m, origin, key, bytes});
  bytes_ += bytes;
  ++stats.egress_queued;
  stats.peak_queue_bytes = std::max(stats.peak_queue_bytes, bytes_);
  return PushResult::Queued;
}

EgressQueue::Item EgressQueue::pop_front() {
  Item out = std::move(items_[head_]);
  if (out.key != 0) by_key_.erase(out.key);
  bytes_ -= out.bytes;
  ++head_;
  compact();
  return out;
}

std::size_t EgressQueue::clear() {
  const std::size_t n = frames();
  items_.clear();
  by_key_.clear();
  head_ = 0;
  bytes_ = 0;
  return n;
}

void EgressQueue::compact() {
  if (head_ < 128 || head_ * 2 < items_.size()) return;
  items_.erase(items_.begin(), items_.begin() + static_cast<std::ptrdiff_t>(head_));
  for (auto& [key, idx] : by_key_) idx -= head_;
  head_ = 0;
}

}  // namespace dyconits::server
