// Overload control (DESIGN.md §10): the pieces that keep the server's
// memory and tick cost bounded when offered load exceeds its budgets.
//
//  * EgressQueue — a per-subscriber capped staging queue between the game
//    and the transport. A slow subscriber stops receiving wire frames and
//    accumulates (coalesced) state here instead, so neither the SimNetwork
//    inbox nor server memory grows without bound. Superseded updates
//    coalesce in place (newest entity position wins, block ops merge);
//    overflow evicts entity moves oldest-first (absolute state — the next
//    move supersedes them), defers chunk payloads back to the chunk
//    streamer, and as a last resort poisons the session for a
//    disconnect-and-resync rather than silently corrupting replica order.
//
//  * DegradationLadder — a deterministic rung state machine driven by the
//    modeled tick cost (a pure function of sim state under
//    ServerConfig::deterministic_load, so runs replay byte-identically for
//    any --threads): Normal → WidenBounds → ShedLowPriority → DeferChunks
//    → Disconnect, with engage/release hysteresis.
//
// The GameServer owns both and wires them into its tick; nothing here
// touches the network or sessions directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "protocol/messages.h"
#include "util/sim_time.h"

namespace dyconits::server {

struct OverloadConfig {
  /// Master switch. Off by default: with it off the server's wire output is
  /// byte-identical to a build without the subsystem (the golden baseline
  /// and every pre-existing experiment are unaffected).
  bool enabled = false;

  /// Hard caps on one subscriber's egress staging queue. 0 = unlimited.
  std::size_t queue_cap_bytes = 64 * 1024;
  std::size_t queue_cap_frames = 2048;

  /// Backpressure: a subscriber whose transport inbox (SimNetwork
  /// pending_bytes) plus staged egress bytes exceed this is "backlogged" —
  /// its sends divert into the capped egress queue instead of growing the
  /// inbox. The threshold should sit comfortably below queue_cap_bytes.
  std::size_t backlog_threshold_bytes = 24 * 1024;

  /// Per-tick drain budget once a subscriber's inbox falls back under the
  /// backlog threshold (bytes of staged frames re-sent per tick).
  std::size_t drain_bytes_per_tick = 8 * 1024;

  /// Watchdog thresholds as fractions of the tick budget: modeled tick
  /// cost above budget_engage for engage_ticks consecutive ticks climbs
  /// one rung; below budget_release for release_ticks descends one.
  double budget_engage = 1.0;
  double budget_release = 0.6;
  std::uint32_t engage_ticks = 5;
  std::uint32_t release_ticks = 40;

  /// Self-calibration: when nonzero, derive_budget_from_uplink overwrites
  /// budget_engage / budget_release from this configured uplink capacity and
  /// the modeled per-byte network cost, so experiments stop hand-keying the
  /// watchdog to each server_egress_rate. 0 (default) keeps the manual
  /// budgets above untouched.
  std::size_t uplink_bytes_per_second = 0;
  /// Engage threshold = (modeled cost of one tick's worth of uplink bytes,
  /// as a fraction of the tick budget) × this safety margin.
  double engage_margin = 1.5;
  /// Release threshold = derived engage threshold × this fraction
  /// (hysteresis gap).
  double release_fraction = 0.4;

  /// Rung 1 (WidenBounds): factor applied to backlogged subscribers'
  /// policy bounds (staleness and numerical both).
  double widen_factor = 4.0;

  /// Rung 2 (ShedLowPriority): snapshot-threshold override installed for
  /// backlogged subscribers (tighter than the global threshold, converting
  /// block backlog into snapshot requests) alongside entity-move shedding.
  std::size_t shed_snapshot_threshold = 64;

  /// Rung 3 (DeferChunks): clamp on ChunkData sends per subscriber per
  /// tick while the ladder is at or above this rung.
  int defer_chunk_sends_per_tick = 4;

  /// Admission control: JoinRequests are refused (JoinRefused) while the
  /// ladder is at or above this rung. <= 0 never refuses.
  int admission_refuse_rung = 3;
  /// Suggested client backoff carried in the refusal, milliseconds.
  std::uint32_t admission_retry_ms = 2000;

  /// Rung 4 (Disconnect): minimum ticks between worst-offender
  /// disconnects, so the ladder sheds one player at a time and re-observes.
  std::uint32_t disconnect_interval_ticks = 100;
};

/// Ladder rungs, in escalation order. Each rung includes every milder
/// measure below it.
enum LadderRung : int {
  kRungNormal = 0,
  kRungWidenBounds = 1,
  kRungShedLowPriority = 2,
  kRungDeferChunks = 3,
  kRungDisconnect = 4,
};

const char* ladder_rung_name(int rung);

/// Derives cfg.budget_engage / cfg.budget_release from
/// cfg.uplink_bytes_per_second and the modeled network byte cost
/// (ServerConfig::net_cost_per_byte_ns). No-op unless overload control is
/// enabled and an uplink capacity is configured, so default configs — and
/// the golden wire baseline — are unaffected.
void derive_budget_from_uplink(OverloadConfig& cfg, SimDuration tick_interval,
                               double net_cost_per_byte_ns);

/// Monotonic overload counters (whole run).
struct OverloadStats {
  std::uint64_t egress_queued = 0;     ///< updates staged into egress queues
  std::uint64_t egress_coalesced = 0;  ///< updates absorbed into a queued one
  std::uint64_t egress_drained = 0;    ///< staged updates later put on the wire
  std::uint64_t egress_evicted_moves = 0;   ///< queued moves evicted on overflow
  std::uint64_t egress_dropped_moves = 0;   ///< incoming moves dropped on overflow
  std::uint64_t egress_dropped_ordered = 0; ///< order-critical drops (poisons)
  std::uint64_t egress_dropped_disconnect = 0;  ///< staged updates lost with a session
  std::uint64_t chunks_deferred = 0;   ///< ChunkData bounced back to the streamer
  std::uint64_t joins_refused = 0;
  std::uint64_t overload_disconnects = 0;
  std::uint64_t ladder_transitions = 0;
  std::size_t peak_queue_bytes = 0;    ///< max bytes any one queue ever held
};

/// The deterministic rung state machine. Pure function of the modeled
/// cost samples fed to it — no wall clock, no randomness.
class DegradationLadder {
 public:
  /// Feeds one end-of-tick modeled cost sample. Returns true if the rung
  /// changed (at most one rung per call, either direction).
  bool on_tick(SimDuration modeled_cost, SimDuration tick_budget,
               const OverloadConfig& cfg);

  int rung() const { return rung_; }
  std::uint64_t transitions() const { return transitions_; }

 private:
  int rung_ = kRungNormal;
  std::uint32_t over_ = 0;   // consecutive ticks above budget_engage
  std::uint32_t under_ = 0;  // consecutive ticks below budget_release
  std::uint64_t transitions_ = 0;
};

/// Capped, coalescing staging queue for one subscriber. Holds *atomic*
/// messages (EntityMoveBatch / MultiBlockChange are decomposed by the
/// caller) so coalescing is a per-key replace, exactly like the dyconit
/// SubscriberQueue; the drain path re-groups consecutive runs back into
/// batch frames.
class EgressQueue {
 public:
  struct Item {
    protocol::AnyMessage msg;
    SimTime origin;            // oldest constituent (kept across coalescing)
    std::uint64_t key = 0;     // dyconit coalesce key; 0 = never coalesce
    std::size_t bytes = 0;     // wire-size estimate of the encoded frame
  };

  enum class PushResult {
    Queued,
    Coalesced,     ///< absorbed into a queued item with the same key
    DeferChunk,    ///< no room: caller should re-queue the chunk pos instead
    DroppedMove,   ///< no room: move dropped (next move supersedes it)
    DroppedPoison, ///< no room for an order-critical message: session must
                   ///< be disconnected and resynced on rejoin
  };

  PushResult push(const protocol::AnyMessage& m, SimTime origin, std::uint64_t key,
                  std::size_t bytes, const OverloadConfig& cfg, OverloadStats& stats);

  bool empty() const { return head_ == items_.size(); }
  std::size_t frames() const { return items_.size() - head_; }
  std::size_t bytes() const { return bytes_; }
  const Item& front() const { return items_[head_]; }
  Item pop_front();
  /// Drops everything (session teardown); returns how many items died.
  std::size_t clear();

 private:
  bool fits(std::size_t incoming_bytes, std::size_t incoming_frames,
            const OverloadConfig& cfg) const;
  /// Evicts queued entity moves oldest-first until `incoming_bytes` fits
  /// (or no moves remain). Rebuilds the index.
  void evict_moves(std::size_t incoming_bytes, const OverloadConfig& cfg,
                   OverloadStats& stats);
  void compact();

  std::vector<Item> items_;  // [head_, items_.size()) are live
  std::size_t head_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> by_key_;  // key -> items_ index
  std::size_t bytes_ = 0;
};

}  // namespace dyconits::server
