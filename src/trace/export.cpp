#include "trace/export.h"

#include <cstdio>
#include <string>

namespace dyconits::trace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& os, const std::vector<TraceRecord>& records) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
        "\"args\":{\"name\":\"dyconits\"}}";
  char buf[64];
  for (const TraceRecord& r : records) {
    if (r.name == nullptr) continue;
    os << ",\n{\"name\":\"" << json_escape(r.name) << "\",\"cat\":\"dyconits\"";
    // trace_event timestamps are microseconds; keep ns precision with a
    // fractional part.
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(r.wall_start_ns) / 1e3);
    if (r.instant) {
      os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << buf;
    } else {
      os << ",\"ph\":\"X\",\"ts\":" << buf;
      std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(r.wall_dur_ns) / 1e3);
      os << ",\"dur\":" << buf;
    }
    os << ",\"pid\":1,\"tid\":" << r.tid << ",\"args\":{\"sim_us\":" << r.sim_us
       << ",\"tick\":" << r.tick << "}}";
  }
  os << "\n]}\n";
}

namespace {

void print_phase_row(std::ostream& os, const TickProfiler::PhaseStat& p,
                     double tick_mean) {
  char line[160];
  const double share = tick_mean > 0.0 ? 100.0 * p.ms.mean() / tick_mean : 0.0;
  std::snprintf(line, sizeof(line), "%-24s %10.4f %10.4f %10.4f %10.4f %7.1f%%\n",
                p.name.c_str(), p.ms.mean(), p.samples.median(),
                p.samples.percentile(0.95), p.ms.max(), share);
  os << line;
}

}  // namespace

void print_phase_table(std::ostream& os, const TickProfiler::Report& report) {
  if (report.empty()) {
    os << "(no profiled ticks)\n";
    return;
  }
  char line[160];
  std::snprintf(line, sizeof(line), "%-24s %10s %10s %10s %10s %8s\n", "phase",
                "mean ms", "p50 ms", "p95 ms", "max ms", "share");
  os << line;
  os << std::string(78, '-') << "\n";
  const double tick_mean = report.tick_ms.mean();
  for (const TickProfiler::PhaseStat& p : report.phases) {
    if (p.kind == TickProfiler::PhaseKind::TopLevel) print_phase_row(os, p, tick_mean);
  }
  os << std::string(78, '-') << "\n";
  std::snprintf(line, sizeof(line), "%-24s %10.4f %10.4f %10.4f %10.4f %7.1f%%\n",
                "phase sum / tick total", report.phase_mean_sum(),
                report.tick_samples.median(), report.tick_samples.percentile(0.95),
                report.tick_ms.max(), 100.0 * report.coverage());
  os << line;
  std::snprintf(line, sizeof(line),
                "ticks: %llu   tick mean %.4f ms   coverage %.1f%% of measured tick time\n",
                static_cast<unsigned long long>(report.ticks), tick_mean,
                100.0 * report.coverage());
  os << line;

  bool any_nested = false;
  for (const TickProfiler::PhaseStat& p : report.phases) {
    if (p.kind != TickProfiler::PhaseKind::Nested) continue;
    if (!any_nested) {
      os << "nested spans (inside the phases above; not part of the sum):\n";
      any_nested = true;
    }
    print_phase_row(os, p, tick_mean);
  }
}

}  // namespace dyconits::trace
