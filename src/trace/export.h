// Exporters for the tracing subsystem: Chrome/Perfetto `trace_event` JSON
// (open chrome://tracing or ui.perfetto.dev and load the file) and the
// paper-style per-phase breakdown table.
#pragma once

#include <ostream>
#include <vector>

#include "trace/tick_profiler.h"
#include "trace/trace.h"

namespace dyconits::trace {

/// Writes `records` (a Tracer::snapshot()) in the Chrome trace_event JSON
/// object format: {"traceEvents":[...]}. Spans become complete ("ph":"X")
/// events with microsecond timestamps; instants become "ph":"i". Each
/// event carries the simulated-time instant and tick number in args, so
/// the deterministic timeline is recoverable from the wall-clock one.
void write_chrome_trace(std::ostream& os, const std::vector<TraceRecord>& records);

/// Prints the per-phase tick breakdown: one row per registered phase
/// (mean/p50/p95/max ms per tick plus share of tick), a nested-span
/// section, and a footer comparing the top-level phase sum against total
/// measured tick time (coverage).
void print_phase_table(std::ostream& os, const TickProfiler::Report& report);

/// JSON string escaping shared by the exporter (exposed for tests).
std::string json_escape(const std::string& s);

}  // namespace dyconits::trace
