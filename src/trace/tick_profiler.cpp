#include "trace/tick_profiler.h"

#include <cstring>

namespace dyconits::trace {

void TickProfiler::add_phase(const char* name, PhaseKind kind) {
  for (const Phase& p : phases_) {
    if (p.name == name) return;
  }
  phases_.push_back(Phase{name, kind, 0.0, {}, {}});
  memo_.clear();  // indices are stable, but a prior miss may now resolve
}

int TickProfiler::index_of(const char* name) {
  const auto [it, inserted] = memo_.try_emplace(name, -1);
  if (inserted) {
    for (std::size_t i = 0; i < phases_.size(); ++i) {
      if (std::strcmp(phases_[i].name.c_str(), name) == 0) {
        it->second = static_cast<int>(i);
        break;
      }
    }
  }
  return it->second;
}

void TickProfiler::begin_tick(std::uint64_t tick_number) {
  static_cast<void>(tick_number);
  for (Phase& p : phases_) p.current_ns = 0.0;
  in_tick_ = true;
}

void TickProfiler::end_tick(double total_ms) {
  if (!in_tick_) return;
  in_tick_ = false;
  for (Phase& p : phases_) {
    const double ms = p.current_ns / 1e6;
    p.ms.add(ms);
    p.samples.add(ms);
    p.current_ns = 0.0;
  }
  tick_ms_.add(total_ms);
  tick_samples_.add(total_ms);
  ++ticks_;
}

void TickProfiler::observe(const char* name, std::int64_t dur_ns) {
  if (!in_tick_) return;  // stray span outside a tick (e.g. after end_tick)
  const int i = index_of(name);
  if (i >= 0) phases_[static_cast<std::size_t>(i)].current_ns += static_cast<double>(dur_ns);
}

void TickProfiler::add_modeled_ms(const char* name, double ms) {
  if (!in_tick_) return;
  const int i = index_of(name);
  if (i >= 0) phases_[static_cast<std::size_t>(i)].current_ns += ms * 1e6;
}

void TickProfiler::reset() {
  for (Phase& p : phases_) {
    p.current_ns = 0.0;
    p.ms = RunningStats{};
    p.samples.clear();
  }
  tick_ms_ = RunningStats{};
  tick_samples_.clear();
  ticks_ = 0;
  in_tick_ = false;
}

TickProfiler::Report TickProfiler::report() const {
  Report r;
  r.phases.reserve(phases_.size());
  for (const Phase& p : phases_) {
    r.phases.push_back(PhaseStat{p.name, p.kind, p.ms, p.samples});
  }
  r.tick_ms = tick_ms_;
  r.tick_samples = tick_samples_;
  r.ticks = ticks_;
  return r;
}

double TickProfiler::Report::phase_mean_sum() const {
  double s = 0.0;
  for (const PhaseStat& p : phases) {
    if (p.kind == PhaseKind::TopLevel) s += p.ms.mean();
  }
  return s;
}

double TickProfiler::Report::coverage() const {
  const double total = tick_ms.mean();
  return total > 0.0 ? phase_mean_sum() / total : 0.0;
}

}  // namespace dyconits::trace
