// Aggregates trace spans into a per-tick, per-phase cost breakdown.
//
// A GameServer registers its tick phases once (registration order is the
// report order), installs itself as the tracer's profiler for the duration
// of each tick (ProfilerScope), and brackets the tick with
// begin_tick()/end_tick(). Spans whose name matches a registered top-level
// phase accumulate into that phase for the current tick; at end_tick() the
// per-tick sums fold into RunningStats (mean/min/max) and Samples
// (percentiles), both in milliseconds.
//
// Top-level phases are disjoint slices of the tick, so their means sum to
// (approximately) the mean tick duration — the invariant the phase table
// reports as "coverage". Nested phases (kind Nested) aggregate sub-spans
// that run *inside* a top-level phase (serialize+send, dyconit enqueue);
// they are reported separately and excluded from the coverage sum to avoid
// double counting. Modeled costs that no span measures (the simulated
// network stack CPU) enter through add_modeled_ms().
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/stats.h"

namespace dyconits::trace {

class TickProfiler {
 public:
  enum class PhaseKind : std::uint8_t {
    TopLevel,  ///< disjoint slice of the tick; counted toward coverage
    Nested,    ///< sub-span inside a top-level phase; reported separately
  };

  /// Registers a phase by exact span name. Must be called before the spans
  /// run; re-registering an existing name is a no-op.
  void add_phase(const char* name, PhaseKind kind = PhaseKind::TopLevel);

  void begin_tick(std::uint64_t tick_number);
  /// Folds the tick's accumulated phase times into the running stats.
  /// `total_ms` is the externally measured tick duration (it may include
  /// modeled cost added via add_modeled_ms).
  void end_tick(double total_ms);
  bool in_tick() const { return in_tick_; }

  /// Called by the Tracer for every completed span while installed.
  void observe(const char* name, std::int64_t dur_ns);

  /// Adds modeled (not span-measured) cost to a phase for the current tick.
  void add_modeled_ms(const char* name, double ms);

  /// Clears all statistics (not the phase registrations). Simulation calls
  /// this at warmup end so the report covers the measurement window only.
  void reset();

  struct PhaseStat {
    std::string name;
    PhaseKind kind = PhaseKind::TopLevel;
    RunningStats ms;  ///< per-tick milliseconds spent in this phase
    Samples samples;  ///< same values, retained for percentiles
  };

  struct Report {
    std::vector<PhaseStat> phases;  ///< registration order
    RunningStats tick_ms;           ///< total measured tick duration
    Samples tick_samples;
    std::uint64_t ticks = 0;

    /// Sum of top-level phase means (ms).
    double phase_mean_sum() const;
    /// phase_mean_sum / mean tick duration; ~1.0 when the registered
    /// phases tile the tick.
    double coverage() const;
    bool empty() const { return ticks == 0; }
  };

  Report report() const;
  std::uint64_t ticks() const { return ticks_; }

 private:
  struct Phase {
    std::string name;
    PhaseKind kind;
    double current_ns = 0.0;  // accumulated within the open tick
    RunningStats ms;
    Samples samples;
  };

  int index_of(const char* name);

  std::vector<Phase> phases_;
  /// Memoized literal-pointer -> phase index (-1 = not a phase). Spans use
  /// string literals, so after the first strcmp scan each name resolves
  /// with one hash lookup.
  std::unordered_map<const void*, int> memo_;
  RunningStats tick_ms_;
  Samples tick_samples_;
  std::uint64_t ticks_ = 0;
  bool in_tick_ = false;
};

}  // namespace dyconits::trace
