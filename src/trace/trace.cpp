#include "trace/trace.h"

#include <algorithm>

#include "trace/tick_profiler.h"

namespace dyconits::trace {

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start_recording(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  rings_.clear();
  // New session: stale thread-local ring pointers become invalid and every
  // thread re-registers on its next push.
  session_.fetch_add(1, std::memory_order_release);
  recording_.store(true, std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  rings_.clear();
  session_.fetch_add(1, std::memory_order_release);
  recording_.store(false, std::memory_order_relaxed);
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::vector<TraceRecord> out;
  for (const auto& r : rings_) {
    if (r->count == 0) continue;
    // Oldest record sits at head once the ring has wrapped.
    const std::size_t start = r->count == r->ring.size() ? r->head : 0;
    for (std::size_t i = 0; i < r->count; ++i) {
      out.push_back(r->ring[(start + i) % r->ring.size()]);
    }
  }
  // Merge in emission order (a span is emitted when it ends). Within one
  // thread this is exactly the old single-ring push order; stable_sort
  // keeps it so for ties.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.wall_start_ns + a.wall_dur_ns <
                            b.wall_start_ns + b.wall_dur_ns;
                   });
  return out;
}

std::size_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::size_t n = 0;
  for (const auto& r : rings_) n += r->count;
  return n;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::uint64_t n = 0;
  for (const auto& r : rings_) n += r->dropped;
  return n;
}

Tracer::ThreadRing& Tracer::local_ring() {
  struct Cache {
    ThreadRing* ring = nullptr;
    std::uint64_t session = 0;
  };
  thread_local Cache cache;
  const std::uint64_t session = session_.load(std::memory_order_acquire);
  if (cache.ring == nullptr || cache.session != session) {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto ring = std::make_unique<ThreadRing>();
    ring->ring.assign(capacity_, TraceRecord{});
    ring->tid = static_cast<std::uint32_t>(rings_.size());
    cache.ring = ring.get();
    cache.session = session;
    rings_.push_back(std::move(ring));
  }
  return *cache.ring;
}

void Tracer::push(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
                  bool instant) {
  ThreadRing& tr = local_ring();
  TraceRecord& r = tr.ring[tr.head];
  r.name = name;
  r.wall_start_ns = start_ns;
  r.wall_dur_ns = dur_ns;
  const SimClock* clock = sim_clock_.load(std::memory_order_relaxed);
  r.sim_us = clock != nullptr ? clock->now().count_micros() : -1;
  r.tick = tick_.load(std::memory_order_relaxed);
  r.tid = tr.tid;
  r.instant = instant;
  tr.head = (tr.head + 1) % tr.ring.size();
  if (tr.count < tr.ring.size()) {
    ++tr.count;
  } else {
    ++tr.dropped;
  }
}

void Tracer::set_profiler(TickProfiler* p) {
  // The installer owns the profiler: spans from other threads are not
  // observed (TickProfiler is single-threaded, and only the tick thread's
  // phases tile the tick).
  profiler_owner_.store(std::this_thread::get_id(), std::memory_order_relaxed);
  profiler_.store(p, std::memory_order_relaxed);
}

void Tracer::end_span(const char* name, std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  const auto dur_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(end - start);
  TickProfiler* p = profiler_.load(std::memory_order_relaxed);
  if (p != nullptr &&
      profiler_owner_.load(std::memory_order_relaxed) == std::this_thread::get_id()) {
    p->observe(name, dur_ns.count());
  }
  if (recording()) push(name, since_epoch_ns(start), dur_ns.count(), /*instant=*/false);
}

void Tracer::instant(const char* name) {
  if (!recording()) return;
  push(name, since_epoch_ns(std::chrono::steady_clock::now()), 0, /*instant=*/true);
}

}  // namespace dyconits::trace
