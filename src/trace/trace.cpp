#include "trace/trace.h"

#include "trace/tick_profiler.h"

namespace dyconits::trace {

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::start_recording(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  ring_.assign(capacity, TraceRecord{});
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  recording_ = true;
}

void Tracer::clear() {
  ring_.clear();
  head_ = 0;
  count_ = 0;
  dropped_ = 0;
  recording_ = false;
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(count_);
  if (count_ == 0) return out;
  // Oldest record sits at head_ once the ring has wrapped.
  const std::size_t start = count_ == ring_.size() ? head_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void Tracer::push(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
                  bool instant) {
  TraceRecord& r = ring_[head_];
  r.name = name;
  r.wall_start_ns = start_ns;
  r.wall_dur_ns = dur_ns;
  r.sim_us = sim_clock_ != nullptr ? sim_clock_->now().count_micros() : -1;
  r.tick = tick_;
  r.instant = instant;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    ++dropped_;
  }
}

void Tracer::end_span(const char* name, std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  const auto dur_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(end - start);
  if (profiler_ != nullptr) profiler_->observe(name, dur_ns.count());
  if (recording_) push(name, since_epoch_ns(start), dur_ns.count(), /*instant=*/false);
}

void Tracer::instant(const char* name) {
  if (!recording_) return;
  push(name, since_epoch_ns(std::chrono::steady_clock::now()), 0, /*instant=*/true);
}

}  // namespace dyconits::trace
