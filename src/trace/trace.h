// Low-overhead span/event tracing (S17).
//
// RAII scopes write fixed-size records into a preallocated ring buffer and
// feed an optional TickProfiler (per-phase tick breakdowns, see
// tick_profiler.h). Every record carries dual timestamps: wall-clock
// nanoseconds (what the CPU actually spent — the quantity the paper's
// tick-duration claims are about) and the simulated-time instant plus tick
// number (so a span can be located in the deterministic experiment
// timeline). Export to Chrome/Perfetto `trace_event` JSON lives in
// export.h.
//
// Cost model:
//   - compiled out (DYCONITS_TRACING=0): the macros expand to nothing.
//   - compiled in, inactive (no recording, no profiler): one predictable
//     branch per scope.
//   - active: two steady_clock reads plus a ring-buffer store and/or a
//     memoized profiler lookup; no allocation on the hot path.
//
// The tracer is a process-wide singleton, single-threaded by design (the
// whole simulation is); names must be string literals (records store the
// pointer, never copy).
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/sim_time.h"

// Compile-time switch: -DDYCONITS_TRACING=0 turns every TRACE_* macro into
// a no-op and lets the optimizer drop the instrumentation entirely.
#ifndef DYCONITS_TRACING
#define DYCONITS_TRACING 1
#endif

namespace dyconits::trace {

class TickProfiler;

/// One completed span or instant event. Fixed-size; `name` points at the
/// string literal given to the scope (never owned).
struct TraceRecord {
  const char* name = nullptr;
  std::int64_t wall_start_ns = 0;  ///< wall time since Tracer epoch
  std::int64_t wall_dur_ns = 0;    ///< 0 for instant events
  std::int64_t sim_us = -1;        ///< simulated time at completion; -1 if no clock
  std::uint64_t tick = 0;          ///< server tick number (0 before the first tick)
  bool instant = false;
};

class Tracer {
 public:
  static Tracer& instance();

  // -- ring-buffer recording (drives the Chrome/Perfetto export) --

  /// Starts capturing records into a freshly preallocated ring of
  /// `capacity` entries. When full, the oldest records are overwritten
  /// (dropped() counts them).
  void start_recording(std::size_t capacity);
  void stop_recording() { recording_ = false; }
  bool recording() const { return recording_; }

  /// Records in oldest-to-newest order. Safe to call while recording.
  std::vector<TraceRecord> snapshot() const;
  std::size_t recorded() const { return count_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  // -- context --

  /// Simulated clock used to stamp records; may be null (sim_us = -1).
  void set_sim_clock(const SimClock* clock) { sim_clock_ = clock; }
  const SimClock* sim_clock() const { return sim_clock_; }
  /// Current server tick, stamped into every record.
  void set_tick(std::uint64_t tick) { tick_ = tick; }

  /// Profiler observing completed spans (may be null). Scopes opened while
  /// a profiler is installed report their duration to it; see
  /// ProfilerScope for the RAII install/restore helper.
  void set_profiler(TickProfiler* p) { profiler_ = p; }
  TickProfiler* profiler() const { return profiler_; }

  /// True when scopes must take timestamps at all.
  bool active() const { return recording_ || profiler_ != nullptr; }

  // -- record emission (called by the scope/macro machinery) --

  void end_span(const char* name, std::chrono::steady_clock::time_point start);
  void instant(const char* name);

 private:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  void push(const char* name, std::int64_t start_ns, std::int64_t dur_ns, bool instant);
  std::int64_t since_epoch_ns(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_).count();
  }

  std::chrono::steady_clock::time_point epoch_;
  const SimClock* sim_clock_ = nullptr;
  TickProfiler* profiler_ = nullptr;
  std::uint64_t tick_ = 0;

  bool recording_ = false;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;   // next write position
  std::size_t count_ = 0;  // valid records (<= ring_.size())
  std::uint64_t dropped_ = 0;
};

/// RAII span: measures wall time from construction to destruction and
/// reports it to the tracer. Costs one branch when the tracer is inactive.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (Tracer::instance().active()) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) Tracer::instance().end_span(name_, start_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Installs `p` as the tracer's active profiler for the current scope and
/// restores the previous one on exit (so nested servers — federation —
/// each aggregate their own tick). Null is allowed and installs nothing,
/// keeping an unprofiled server from shadowing a profiled outer one.
class ProfilerScope {
 public:
  explicit ProfilerScope(TickProfiler* p) : prev_(Tracer::instance().profiler()) {
    if (p != nullptr) Tracer::instance().set_profiler(p);
  }
  explicit ProfilerScope(TickProfiler& p) : ProfilerScope(&p) {}
  ~ProfilerScope() { Tracer::instance().set_profiler(prev_); }

  ProfilerScope(const ProfilerScope&) = delete;
  ProfilerScope& operator=(const ProfilerScope&) = delete;

 private:
  TickProfiler* prev_;
};

}  // namespace dyconits::trace

#if DYCONITS_TRACING
#define DYCO_TRACE_CONCAT2(a, b) a##b
#define DYCO_TRACE_CONCAT(a, b) DYCO_TRACE_CONCAT2(a, b)
/// Times the enclosing scope under `name` (a string literal).
#define TRACE_SCOPE(name) \
  ::dyconits::trace::TraceScope DYCO_TRACE_CONCAT(dyco_trace_scope_, __LINE__)(name)
/// Emits a zero-duration marker event.
#define TRACE_INSTANT(name)                                 \
  do {                                                      \
    if (::dyconits::trace::Tracer::instance().recording())  \
      ::dyconits::trace::Tracer::instance().instant(name);  \
  } while (0)
#else
#define TRACE_SCOPE(name) \
  do {                    \
  } while (0)
#define TRACE_INSTANT(name) \
  do {                      \
  } while (0)
#endif
