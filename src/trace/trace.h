// Low-overhead span/event tracing (S17).
//
// RAII scopes write fixed-size records into preallocated ring buffers and
// feed an optional TickProfiler (per-phase tick breakdowns, see
// tick_profiler.h). Every record carries dual timestamps: wall-clock
// nanoseconds (what the CPU actually spent — the quantity the paper's
// tick-duration claims are about) and the simulated-time instant plus tick
// number (so a span can be located in the deterministic experiment
// timeline). Export to Chrome/Perfetto `trace_event` JSON lives in
// export.h.
//
// Cost model:
//   - compiled out (DYCONITS_TRACING=0): the macros expand to nothing.
//   - compiled in, inactive (no recording, no profiler): one predictable
//     branch per scope.
//   - active: two steady_clock reads plus a lock-free ring-buffer store
//     and/or a memoized profiler lookup; no allocation on the hot path.
//
// Thread-safety (DESIGN.md §9): spans may be emitted from any thread.
// Each thread records into its own ring buffer, registered on first use,
// so the emission hot path takes no locks; snapshot() merges the
// per-thread rings into one wall-clock-ordered stream, and every record
// carries the tid of the thread that emitted it. Control operations
// (start/stop recording, clear, set_profiler, set_tick, set_sim_clock,
// snapshot) belong to the tick thread and must not run concurrently with
// span emission — the simulation upholds this because worker threads only
// run inside ThreadPool::run_shards, which the tick thread awaits. The
// installed TickProfiler observes spans only from the thread that
// installed it; worker spans go to the rings alone, so per-phase tick
// accounting stays single-threaded.
//
// Names must be string literals (records store the pointer, never copy).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/sim_time.h"

// Compile-time switch: -DDYCONITS_TRACING=0 turns every TRACE_* macro into
// a no-op and lets the optimizer drop the instrumentation entirely.
#ifndef DYCONITS_TRACING
#define DYCONITS_TRACING 1
#endif

namespace dyconits::trace {

class TickProfiler;

/// One completed span or instant event. Fixed-size; `name` points at the
/// string literal given to the scope (never owned).
struct TraceRecord {
  const char* name = nullptr;
  std::int64_t wall_start_ns = 0;  ///< wall time since Tracer epoch
  std::int64_t wall_dur_ns = 0;    ///< 0 for instant events
  std::int64_t sim_us = -1;        ///< simulated time at completion; -1 if no clock
  std::uint64_t tick = 0;          ///< server tick number (0 before the first tick)
  std::uint32_t tid = 0;           ///< emitting thread (registration order)
  bool instant = false;
};

class Tracer {
 public:
  static Tracer& instance();

  // -- ring-buffer recording (drives the Chrome/Perfetto export) --

  /// Starts capturing records into freshly preallocated per-thread rings
  /// of `capacity` entries each. When a thread's ring is full, its oldest
  /// records are overwritten (dropped() counts them).
  void start_recording(std::size_t capacity);
  void stop_recording() { recording_.store(false, std::memory_order_relaxed); }
  bool recording() const { return recording_.load(std::memory_order_relaxed); }

  /// All threads' records merged in emission (wall-clock completion)
  /// order — per thread, exactly the order the records were pushed.
  std::vector<TraceRecord> snapshot() const;
  std::size_t recorded() const;
  std::uint64_t dropped() const;
  void clear();

  // -- context --

  /// Simulated clock used to stamp records; may be null (sim_us = -1).
  void set_sim_clock(const SimClock* clock) {
    sim_clock_.store(clock, std::memory_order_relaxed);
  }
  const SimClock* sim_clock() const {
    return sim_clock_.load(std::memory_order_relaxed);
  }
  /// Current server tick, stamped into every record.
  void set_tick(std::uint64_t tick) { tick_.store(tick, std::memory_order_relaxed); }

  /// Profiler observing completed spans (may be null). Only spans emitted
  /// by the installing thread are observed — worker-thread spans never feed
  /// the tick profiler. See ProfilerScope for the RAII install/restore
  /// helper.
  void set_profiler(TickProfiler* p);
  TickProfiler* profiler() const { return profiler_.load(std::memory_order_relaxed); }

  /// True when scopes must take timestamps at all.
  bool active() const { return recording() || profiler() != nullptr; }

  // -- record emission (called by the scope/macro machinery) --

  void end_span(const char* name, std::chrono::steady_clock::time_point start);
  void instant(const char* name);

 private:
  struct ThreadRing {
    std::vector<TraceRecord> ring;
    std::size_t head = 0;   // next write position
    std::size_t count = 0;  // valid records (<= ring.size())
    std::uint64_t dropped = 0;
    std::uint32_t tid = 0;  // registration order within the session
  };

  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  /// The calling thread's ring for the current recording session,
  /// registering (under the registry lock) on first use or after the
  /// session changed. The returned reference stays valid until the next
  /// start_recording/clear, which must not race emission (see banner).
  ThreadRing& local_ring();
  void push(const char* name, std::int64_t start_ns, std::int64_t dur_ns, bool instant);
  std::int64_t since_epoch_ns(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch_).count();
  }

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<const SimClock*> sim_clock_{nullptr};
  std::atomic<TickProfiler*> profiler_{nullptr};
  std::atomic<std::thread::id> profiler_owner_{};
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<bool> recording_{false};

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  std::size_t capacity_ = 1;
  /// Bumped by start_recording/clear so threads re-register instead of
  /// writing into a ring from a previous session.
  std::atomic<std::uint64_t> session_{0};
};

/// RAII span: measures wall time from construction to destruction and
/// reports it to the tracer. Costs one branch when the tracer is inactive.
class TraceScope {
 public:
  explicit TraceScope(const char* name) {
    if (Tracer::instance().active()) {
      name_ = name;
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~TraceScope() {
    if (name_ != nullptr) Tracer::instance().end_span(name_, start_);
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

/// Installs `p` as the tracer's active profiler for the current scope and
/// restores the previous one on exit (so nested servers — federation —
/// each aggregate their own tick). Null is allowed and installs nothing,
/// keeping an unprofiled server from shadowing a profiled outer one.
class ProfilerScope {
 public:
  explicit ProfilerScope(TickProfiler* p) : prev_(Tracer::instance().profiler()) {
    if (p != nullptr) Tracer::instance().set_profiler(p);
  }
  explicit ProfilerScope(TickProfiler& p) : ProfilerScope(&p) {}
  ~ProfilerScope() { Tracer::instance().set_profiler(prev_); }

  ProfilerScope(const ProfilerScope&) = delete;
  ProfilerScope& operator=(const ProfilerScope&) = delete;

 private:
  TickProfiler* prev_;
};

}  // namespace dyconits::trace

#if DYCONITS_TRACING
#define DYCO_TRACE_CONCAT2(a, b) a##b
#define DYCO_TRACE_CONCAT(a, b) DYCO_TRACE_CONCAT2(a, b)
/// Times the enclosing scope under `name` (a string literal).
#define TRACE_SCOPE(name) \
  ::dyconits::trace::TraceScope DYCO_TRACE_CONCAT(dyco_trace_scope_, __LINE__)(name)
/// Emits a zero-duration marker event.
#define TRACE_INSTANT(name)                                 \
  do {                                                      \
    if (::dyconits::trace::Tracer::instance().recording())  \
      ::dyconits::trace::Tracer::instance().instant(name);  \
  } while (0)
#else
#define TRACE_SCOPE(name) \
  do {                    \
  } while (0)
#define TRACE_INSTANT(name) \
  do {                      \
  } while (0)
#endif
