// Shared --trace=FILE / --trace-buffer=N command-line wiring, used by every
// bench binary and example:
//
//   my_binary --trace=out.json            # record, dump Chrome JSON at exit
//   my_binary --trace=out.json --trace-buffer=262144
//
// Load the resulting file in chrome://tracing or ui.perfetto.dev.
#pragma once

#include <fstream>
#include <string>

#include "trace/export.h"
#include "trace/trace.h"
#include "util/flags.h"

namespace dyconits::trace {

/// Flag names consumed here; include them in Flags::assert_known lists.
inline constexpr const char* kTraceFlag = "trace";
inline constexpr const char* kTraceBufferFlag = "trace-buffer";

/// Resolved --trace output path; empty when tracing was not requested.
/// A bare `--trace` (no value) records to "trace.json".
inline std::string trace_path(const Flags& flags) {
  if (!flags.has(kTraceFlag)) return "";
  const std::string path = flags.get_string(kTraceFlag, "");
  return path.empty() || path == "true" ? "trace.json" : path;
}

/// Enables ring-buffer recording if --trace was given. Call before the run.
inline void configure_from_flags(const Flags& flags) {
  if (trace_path(flags).empty()) return;
  const auto capacity =
      static_cast<std::size_t>(flags.get_int(kTraceBufferFlag, 1 << 16));
  Tracer::instance().start_recording(capacity);
}

/// Writes the recorded buffer as Chrome trace_event JSON to the --trace
/// path. Returns false (and does nothing) when --trace was not given.
inline bool write_trace_from_flags(const Flags& flags, std::ostream& diag) {
  const std::string path = trace_path(flags);
  if (path.empty()) return false;
  Tracer& tracer = Tracer::instance();
  std::ofstream os(path);
  if (!os) {
    diag << "trace: cannot open " << path << " for writing\n";
    return false;
  }
  write_chrome_trace(os, tracer.snapshot());
  diag << "trace: wrote " << tracer.recorded() << " records to " << path;
  if (tracer.dropped() > 0) {
    diag << " (" << tracer.dropped() << " older records dropped; raise --"
         << kTraceBufferFlag << ")";
  }
  diag << "\n";
  return true;
}

}  // namespace dyconits::trace
