#include "util/flags.h"

#include <cstdlib>
#include <sstream>

namespace dyconits {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::string Flags::get_string(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::int64_t> Flags::get_int_list(const std::string& key,
                                              const std::vector<std::int64_t>& def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace dyconits
