#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dyconits {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::string Flags::get_string(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::unknown_keys(const std::vector<std::string>& allowed) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    bool known = false;
    for (const std::string& a : allowed) {
      if (!a.empty() && a.back() == '*') {
        if (key.rfind(a.substr(0, a.size() - 1), 0) == 0) {
          known = true;
          break;
        }
      } else if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) unknown.push_back(key);
  }
  return unknown;
}

void Flags::assert_known(const std::vector<std::string>& allowed) const {
  const std::vector<std::string> unknown = unknown_keys(allowed);
  if (unknown.empty()) return;
  for (const std::string& key : unknown) {
    std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
  }
  std::fprintf(stderr, "known flags:");
  for (const std::string& a : allowed) std::fprintf(stderr, " --%s", a.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

std::vector<std::int64_t> Flags::get_int_list(const std::string& key,
                                              const std::vector<std::int64_t>& def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace dyconits
