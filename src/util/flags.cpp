#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dyconits {

std::optional<Endpoint> parse_endpoint(const std::string& s) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) return std::nullopt;
  Endpoint ep;
  ep.host = s.substr(0, colon);
  const std::string port_str = s.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || port < 1 || port > 65535) return std::nullopt;
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

std::optional<SimDuration> parse_duration(const std::string& s) {
  char* end = nullptr;
  const long long value = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || value < 0) return std::nullopt;
  const std::string unit(end);
  if (unit == "us") return SimDuration::micros(value);
  if (unit == "ms") return SimDuration::millis(value);
  if (unit == "s") return SimDuration::seconds(value);
  if (unit == "m") return SimDuration::seconds(value * 60);
  return std::nullopt;  // unit suffix is required: bare "500" is ambiguous
}

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "true";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::string Flags::get_string(const std::string& key, const std::string& def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = values_.find(key);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Flags::unknown_keys(const std::vector<std::string>& allowed) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    bool known = false;
    for (const std::string& a : allowed) {
      if (!a.empty() && a.back() == '*') {
        if (key.rfind(a.substr(0, a.size() - 1), 0) == 0) {
          known = true;
          break;
        }
      } else if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) unknown.push_back(key);
  }
  return unknown;
}

void Flags::assert_known(const std::vector<std::string>& allowed) const {
  const std::vector<std::string> unknown = unknown_keys(allowed);
  if (unknown.empty()) return;
  for (const std::string& key : unknown) {
    std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
  }
  std::fprintf(stderr, "known flags:");
  for (const std::string& a : allowed) std::fprintf(stderr, " --%s", a.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

Endpoint Flags::get_endpoint(const std::string& key, const Endpoint& def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const auto ep = parse_endpoint(it->second);
  if (!ep) {
    std::fprintf(stderr, "error: --%s=%s: expected host:port (port 1..65535)\n", key.c_str(),
                 it->second.c_str());
    std::exit(2);
  }
  return *ep;
}

SimDuration Flags::get_duration(const std::string& key, SimDuration def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  const auto d = parse_duration(it->second);
  if (!d) {
    std::fprintf(stderr,
                 "error: --%s=%s: expected a duration with unit suffix (us|ms|s|m), e.g. 500ms\n",
                 key.c_str(), it->second.c_str());
    std::exit(2);
  }
  return *d;
}

std::vector<std::int64_t> Flags::get_int_list(const std::string& key,
                                              const std::vector<std::int64_t>& def) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::vector<std::int64_t> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::strtoll(tok.c_str(), nullptr, 10));
  }
  return out;
}

}  // namespace dyconits
