// Tiny --key=value flag parser shared by bench binaries and examples.
//
// Usage:
//   Flags flags(argc, argv);
//   int players = flags.get_int("players", 100);
//   if (flags.has("help")) { ... }
// Unknown positional arguments are an error; unknown flags are retrievable
// so each binary defines its own vocabulary.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace dyconits {

/// A parsed host:port pair (--listen / --connect).
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

/// Parses "host:port" (e.g. "127.0.0.1:4600"). The host must be non-empty
/// and the port in [1, 65535]; returns nullopt otherwise.
std::optional<Endpoint> parse_endpoint(const std::string& s);

/// Parses a duration with a required unit suffix: "500ms", "5s", "250us",
/// "2m". Returns nullopt for a missing/unknown unit, junk, or a negative
/// value.
std::optional<SimDuration> parse_duration(const std::string& s);

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::string get_string(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Comma-separated list of integers, e.g. --players=25,50,100.
  std::vector<std::int64_t> get_int_list(const std::string& key,
                                         const std::vector<std::int64_t>& def) const;

  /// "host:port" flag (e.g. --listen=127.0.0.1:4600). Malformed input
  /// prints an error naming the flag and exits with status 2 — network
  /// binaries must not silently fall back to a default address.
  Endpoint get_endpoint(const std::string& key, const Endpoint& def) const;

  /// Duration flag with unit suffix (e.g. --net-timeout=500ms, =5s).
  /// Malformed input exits with status 2, like get_endpoint().
  SimDuration get_duration(const std::string& key, SimDuration def) const;

  /// Keys that were given but are not in `allowed`. An allowed entry
  /// ending in '*' matches by prefix (e.g. "benchmark_*" for flags a
  /// wrapped library consumes).
  std::vector<std::string> unknown_keys(const std::vector<std::string>& allowed) const;

  /// Exits with an error (listing each unknown flag and the allowed
  /// vocabulary) if any given flag is not in `allowed`. Call it after
  /// constructing the binary's Flags so a misspelled --player=100 fails
  /// loudly instead of silently running the default.
  void assert_known(const std::vector<std::string>& allowed) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dyconits
