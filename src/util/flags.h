// Tiny --key=value flag parser shared by bench binaries and examples.
//
// Usage:
//   Flags flags(argc, argv);
//   int players = flags.get_int("players", 100);
//   if (flags.has("help")) { ... }
// Unknown positional arguments are an error; unknown flags are retrievable
// so each binary defines its own vocabulary.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dyconits {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::string get_string(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Comma-separated list of integers, e.g. --players=25,50,100.
  std::vector<std::int64_t> get_int_list(const std::string& key,
                                         const std::vector<std::int64_t>& def) const;

  /// Keys that were given but are not in `allowed`. An allowed entry
  /// ending in '*' matches by prefix (e.g. "benchmark_*" for flags a
  /// wrapped library consumes).
  std::vector<std::string> unknown_keys(const std::vector<std::string>& allowed) const;

  /// Exits with an error (listing each unknown flag and the allowed
  /// vocabulary) if any given flag is not in `allowed`. Call it after
  /// constructing the binary's Flags so a misspelled --player=100 fails
  /// loudly instead of silently running the default.
  void assert_known(const std::vector<std::string>& allowed) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dyconits
