// Minimal leveled logger. Defaults to Warn so tests and benches stay quiet;
// examples raise it to Info for narration.
#pragma once

#include <cstdio>
#include <string>

namespace dyconits {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

class Log {
 public:
  static void set_level(LogLevel level) { level_ = level; }
  static LogLevel level() { return level_; }

  template <typename... Args>
  static void debug(const char* fmt, Args... args) { emit(LogLevel::Debug, "D", fmt, args...); }
  template <typename... Args>
  static void info(const char* fmt, Args... args) { emit(LogLevel::Info, "I", fmt, args...); }
  template <typename... Args>
  static void warn(const char* fmt, Args... args) { emit(LogLevel::Warn, "W", fmt, args...); }
  template <typename... Args>
  static void error(const char* fmt, Args... args) { emit(LogLevel::Error, "E", fmt, args...); }

 private:
  template <typename... Args>
  static void emit(LogLevel lvl, const char* tag, const char* fmt, Args... args) {
    if (lvl < level_) return;
    std::fprintf(stderr, "[%s] ", tag);
    if constexpr (sizeof...(args) == 0) {
      std::fputs(fmt, stderr);
    } else {
      std::fprintf(stderr, fmt, args...);
    }
    std::fputc('\n', stderr);
  }

  static inline LogLevel level_ = LogLevel::Warn;
};

}  // namespace dyconits
