#include "util/rng.h"

#include <cmath>

namespace dyconits {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Debiased via rejection on the top of the range.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double_in(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_gaussian() {
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * 3.14159265358979323846 * u2);
}

std::uint64_t Rng::next_zipf(std::uint64_t n, double s) {
  if (n <= 1) return 0;
  // Inverse-CDF over the (small) support; n is a hotspot count, not a
  // population, so the linear scan is cheap and exact.
  double norm = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(static_cast<double>(k), s);
  double u = next_double() * norm;
  for (std::uint64_t k = 1; k <= n; ++k) {
    u -= 1.0 / std::pow(static_cast<double>(k), s);
    if (u <= 0.0) return k - 1;
  }
  return n - 1;
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace dyconits
