// Deterministic, seedable random number generation (xoshiro256++).
//
// Every stochastic component (terrain, bot behavior, network jitter) takes an
// explicit Rng or a seed derived from the experiment seed, so runs with the
// same seed are bit-identical across policies — a requirement for the
// paired-comparison experiments in bench/.
#pragma once

#include <cstdint>

namespace dyconits {

class Rng {
 public:
  /// Seeds the four 64-bit words of state via SplitMix64, so any seed
  /// (including 0) yields a well-mixed state.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Standard normal via Box-Muller (no cached spare; fine for sim use).
  double next_gaussian();

  /// Zipf-distributed rank in [0, n) with exponent s. Used by the village
  /// workload to cluster players on hotspots. O(n) setup-free inversion by
  /// rejection; suitable for small n (hotspot counts).
  std::uint64_t next_zipf(std::uint64_t n, double s);

  /// Derives an independent child generator (stream splitting).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace dyconits
