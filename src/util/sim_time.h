// Simulated-time primitives.
//
// All game logic runs on a deterministic simulated clock so experiments are
// reproducible; wall-clock time is only used to *measure* CPU cost (see
// server::TickTimer). Times are strong types wrapping integral microseconds
// to prevent unit mix-ups between ms-denominated bounds and tick durations.
#pragma once

#include <compare>
#include <cstdint>

namespace dyconits {

/// A duration of simulated time, in microseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t micros) : micros_(micros) {}

  static constexpr SimDuration micros(std::int64_t n) { return SimDuration(n); }
  static constexpr SimDuration millis(std::int64_t n) { return SimDuration(n * 1000); }
  static constexpr SimDuration seconds(std::int64_t n) { return SimDuration(n * 1000000); }

  /// A duration no real bound will ever exceed; used for "infinite" bounds.
  static constexpr SimDuration infinite() { return SimDuration(INT64_MAX / 4); }

  constexpr std::int64_t count_micros() const { return micros_; }
  constexpr std::int64_t count_millis() const { return micros_ / 1000; }
  constexpr double as_seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration operator+(SimDuration o) const { return SimDuration(micros_ + o.micros_); }
  constexpr SimDuration operator-(SimDuration o) const { return SimDuration(micros_ - o.micros_); }
  constexpr SimDuration operator*(std::int64_t k) const { return SimDuration(micros_ * k); }
  constexpr SimDuration operator/(std::int64_t k) const { return SimDuration(micros_ / k); }
  constexpr SimDuration& operator+=(SimDuration o) { micros_ += o.micros_; return *this; }
  constexpr SimDuration& operator-=(SimDuration o) { micros_ -= o.micros_; return *this; }

 private:
  std::int64_t micros_ = 0;
};

/// A point in simulated time (microseconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  static constexpr SimTime zero() { return SimTime(0); }

  constexpr std::int64_t count_micros() const { return micros_; }
  constexpr double as_seconds() const { return static_cast<double>(micros_) / 1e6; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime operator+(SimDuration d) const { return SimTime(micros_ + d.count_micros()); }
  constexpr SimTime operator-(SimDuration d) const { return SimTime(micros_ - d.count_micros()); }
  constexpr SimDuration operator-(SimTime o) const { return SimDuration(micros_ - o.micros_); }
  constexpr SimTime& operator+=(SimDuration d) { micros_ += d.count_micros(); return *this; }

 private:
  std::int64_t micros_ = 0;
};

/// Monotonic simulated clock, advanced explicitly by the simulation driver.
class SimClock {
 public:
  SimTime now() const { return now_; }
  void advance(SimDuration d) { now_ += d; }
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }

 private:
  SimTime now_ = SimTime::zero();
};

}  // namespace dyconits
