#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace dyconits {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Samples::percentile(double q) const {
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(xs_.size() - 1) + 0.5);
  return xs_[std::min(idx, xs_.size() - 1)];
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

void LogHistogram::add(double x) {
  std::size_t b = 0;
  if (x >= 1.0) b = static_cast<std::size_t>(std::ilogb(x)) + 1;
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  ++total_;
}

double LogHistogram::percentile(double q) const {
  if (total_ == 0) return 1.0;  // bucket 0's upper edge, like every other path
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= target) return b == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(b));
  }
  return std::ldexp(1.0, static_cast<int>(buckets_.size()));
}

}  // namespace dyconits
