// Online statistics and percentile estimation for experiment metrics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dyconits {

/// Welford's online mean/variance plus min/max. O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // sample variance (n-1); 0 if n < 2
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return n_ > 0 ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile estimation over a retained sample vector. Intended for
/// per-run latency/staleness distributions (at most a few million samples).
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { xs_.reserve(n); }
  std::size_t count() const { return xs_.size(); }

  /// q in [0,1]; nearest-rank on the sorted samples. Returns 0 when empty.
  /// Sorts lazily; add() after a percentile() call re-sorts on next query.
  double percentile(double q) const;
  double min() const { return percentile(0.0); }
  double median() const { return percentile(0.5); }
  double max() const { return percentile(1.0); }
  double mean() const;

  const std::vector<double>& values() const { return xs_; }
  void clear() { xs_.clear(); sorted_ = false; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

/// Log-bucketed histogram for unbounded positive values (e.g. queue sizes).
/// Bucket b covers [2^b, 2^(b+1)). Values < 1 land in bucket 0.
class LogHistogram {
 public:
  void add(double x);
  std::size_t count() const { return total_; }
  /// Upper-bound estimate of percentile q: the upper edge of the bucket
  /// holding the q-th sample. Always a bucket upper edge — including on an
  /// empty histogram, which reports bucket 0's edge (1.0), the smallest
  /// value the estimator can produce. Check count() to tell "no samples"
  /// apart from "all samples < 1".
  double percentile(double q) const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::size_t total_ = 0;
};

}  // namespace dyconits
