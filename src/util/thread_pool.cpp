#include "util/thread_pool.h"

namespace dyconits::util {

ThreadPool::ThreadPool(std::size_t threads) : threads_(threads == 0 ? 1 : threads) {
  workers_.reserve(threads_ - 1);
  for (std::size_t shard = 1; shard < threads_; ++shard) {
    workers_.emplace_back([this, shard] { worker_loop(shard); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t shard) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(shard);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_shards(const std::function<void(std::size_t)>& fn) {
  if (threads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    outstanding_ = threads_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  fn(0);  // the caller is executor 0
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return outstanding_ == 0; });
    job_ = nullptr;
  }
}

}  // namespace dyconits::util
