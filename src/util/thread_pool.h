// Persistent worker pool for statically sharded tick work (DESIGN.md §9).
//
// Deliberately minimal — no task queue, no work stealing: run_shards(fn)
// invokes fn(shard) exactly once per executor and blocks until every shard
// returns. Static sharding is what keeps the parallel flush pipeline
// deterministic: the shard a piece of work lands on is a pure function of
// its key, never of scheduling. The caller thread is executor 0 (a pool of
// size 1 spawns no threads and degenerates to a plain call), so the tick
// thread is never idle while workers run.
//
// Memory ordering: run_shards() returning establishes happens-before from
// every worker's writes to the caller (mutex + condition variable), which
// is what lets workers fill per-shard staging buffers that the merge phase
// then reads without further synchronization.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dyconits::util {

class ThreadPool {
 public:
  /// Total executor count including the calling thread; spawns threads-1
  /// persistent workers. 0 is treated as 1.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t concurrency() const { return threads_; }

  /// Runs fn(shard) for shard in [0, concurrency()): shard 0 on the
  /// calling thread, the rest on the workers. Returns once all shards have
  /// completed. Not reentrant; one round at a time.
  void run_shards(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t shard);

  std::size_t threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;  // bumps per round; workers wait on it
  std::size_t outstanding_ = 0;   // workers still inside the current round
  bool stop_ = false;
};

}  // namespace dyconits::util
