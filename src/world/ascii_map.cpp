#include "world/ascii_map.h"

#include <cmath>

namespace dyconits::world {
namespace {

char block_glyph(Block b, int height) {
  switch (b) {
    case Block::Water: return '~';
    case Block::Sand: return ':';
    case Block::Wood: return 'T';
    case Block::Leaves: return 't';
    case Block::Planks: return '#';
    case Block::Cobblestone: return '%';
    case Block::Grass:
    case Block::Dirt:
    case Block::Stone:
      // Shade terrain by altitude.
      return height > 34 ? '^' : (height > 26 ? ',' : '.');
    case Block::Bedrock: return '_';
    case Block::Air: return ' ';
  }
  return '?';
}

}  // namespace

std::string render_ascii_map(World& world, const Vec3& center, int radius,
                             const std::vector<MapOverlay>& overlays) {
  const auto cx = static_cast<std::int32_t>(std::floor(center.x));
  const auto cz = static_cast<std::int32_t>(std::floor(center.z));
  const int side = 2 * radius + 1;
  std::string out;
  out.reserve(static_cast<std::size_t>(side) * (side + 1));

  // Render rows north-to-south (decreasing z up the screen).
  std::vector<std::string> rows;
  for (int dz = -radius; dz <= radius; ++dz) {
    std::string row;
    for (int dx = -radius; dx <= radius; ++dx) {
      const std::int32_t x = cx + dx;
      const std::int32_t z = cz + dz;
      const Chunk* chunk = world.find_chunk(ChunkPos::of_block({x, 0, z}));
      if (chunk == nullptr) {
        row.push_back(' ');
        continue;
      }
      const int h = chunk->height_at(floor_mod(x, kChunkSize), floor_mod(z, kChunkSize));
      if (h < 0) {
        row.push_back(' ');
        continue;
      }
      row.push_back(block_glyph(
          chunk->get_local(floor_mod(x, kChunkSize), h, floor_mod(z, kChunkSize)), h));
    }
    rows.push_back(std::move(row));
  }

  for (const MapOverlay& o : overlays) {
    const auto ox = static_cast<std::int32_t>(std::floor(o.pos.x)) - cx + radius;
    const auto oz = static_cast<std::int32_t>(std::floor(o.pos.z)) - cz + radius;
    if (ox >= 0 && ox < side && oz >= 0 && oz < side) {
      rows[static_cast<std::size_t>(oz)][static_cast<std::size_t>(ox)] = o.glyph;
    }
  }

  for (const std::string& row : rows) {
    out += row;
    out.push_back('\n');
  }
  return out;
}

}  // namespace dyconits::world
