// Top-down ASCII rendering of a world region — a quick visual check for
// examples and debugging (what did the builders actually build?).
//
// Each character is one column: the top block's glyph, with height shading
// for terrain. Entities are overlaid as '@' (players) / 'm' (mobs).
#pragma once

#include <string>
#include <vector>

#include "entity/registry.h"
#include "world/world.h"

namespace dyconits::world {

struct MapOverlay {
  Vec3 pos;
  char glyph = '@';
};

/// Renders the square of side 2*radius+1 centered on (center.x, center.z).
/// Only loaded chunks are read (unloaded area renders as ' ').
std::string render_ascii_map(World& world, const Vec3& center, int radius,
                             const std::vector<MapOverlay>& overlays = {});

/// Overlays for every entity in the registry (players '@', mobs 'm',
/// items '*'). Inline so dyco_world does not link against dyco_entity
/// (which depends on dyco_world); callers always link both.
inline std::vector<MapOverlay> entity_overlays(const entity::EntityRegistry& registry) {
  std::vector<MapOverlay> out;
  registry.for_each([&](const entity::Entity& e) {
    char glyph = '@';
    if (e.kind == entity::EntityKind::Mob) glyph = 'm';
    if (e.kind == entity::EntityKind::Item) glyph = '*';
    out.push_back({e.pos, glyph});
  });
  return out;
}

}  // namespace dyconits::world
