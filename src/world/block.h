// Block types. A block is a 16-bit id; the small palette below covers the
// terrain generator and bot behaviors (dig/place). Ids are stable and part
// of the wire protocol.
#pragma once

#include <cstdint>

namespace dyconits::world {

enum class Block : std::uint16_t {
  Air = 0,
  Stone = 1,
  Dirt = 2,
  Grass = 3,
  Sand = 4,
  Water = 5,
  Wood = 6,
  Leaves = 7,
  Planks = 8,
  Cobblestone = 9,
  Bedrock = 10,
};

inline constexpr std::uint16_t kBlockPaletteSize = 11;

constexpr bool is_solid(Block b) {
  return b != Block::Air && b != Block::Water;
}

constexpr bool is_breakable(Block b) {
  return b != Block::Air && b != Block::Bedrock && b != Block::Water;
}

constexpr const char* block_name(Block b) {
  switch (b) {
    case Block::Air: return "air";
    case Block::Stone: return "stone";
    case Block::Dirt: return "dirt";
    case Block::Grass: return "grass";
    case Block::Sand: return "sand";
    case Block::Water: return "water";
    case Block::Wood: return "wood";
    case Block::Leaves: return "leaves";
    case Block::Planks: return "planks";
    case Block::Cobblestone: return "cobblestone";
    case Block::Bedrock: return "bedrock";
  }
  return "unknown";
}

}  // namespace dyconits::world
