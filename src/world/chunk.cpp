#include "world/chunk.h"

namespace dyconits::world {

Chunk::Chunk(ChunkPos pos) : pos_(pos) {
  blocks_.fill(Block::Air);
  heightmap_.fill(-1);
}

void Chunk::set_local(int x, int y, int z, Block b) {
  Block& slot = blocks_[index(x, y, z)];
  if (slot == b) return;
  const bool was_air = slot == Block::Air;
  const bool is_air = b == Block::Air;
  slot = b;
  if (was_air && !is_air) ++non_air_;
  if (!was_air && is_air) --non_air_;
  ++revision_;
  rle_dirty_ = true;

  const int h = heightmap_[x * kChunkSize + z];
  if (!is_air && y > h) {
    heightmap_[x * kChunkSize + z] = static_cast<std::int16_t>(y);
  } else if (is_air && y == h) {
    recompute_height(x, z);
  }
}

void Chunk::recompute_height(int x, int z) {
  for (int y = kWorldHeight - 1; y >= 0; --y) {
    if (blocks_[index(x, y, z)] != Block::Air) {
      heightmap_[x * kChunkSize + z] = static_cast<std::int16_t>(y);
      return;
    }
  }
  heightmap_[x * kChunkSize + z] = -1;
}

const std::vector<std::uint8_t>& Chunk::encode_rle() const {
  if (!rle_dirty_) return rle_cache_;
  std::vector<std::uint8_t>& out = rle_cache_;
  out.clear();
  out.reserve(1024);
  std::size_t i = 0;
  while (i < kVolume) {
    const Block b = blocks_[i];
    std::size_t run = 1;
    while (i + run < kVolume && blocks_[i + run] == b && run < 0xFFFF) ++run;
    const auto id = static_cast<std::uint16_t>(b);
    out.push_back(static_cast<std::uint8_t>(id & 0xFF));
    out.push_back(static_cast<std::uint8_t>(id >> 8));
    out.push_back(static_cast<std::uint8_t>(run & 0xFF));
    out.push_back(static_cast<std::uint8_t>(run >> 8));
    i += run;
  }
  rle_dirty_ = false;
  return out;
}

bool Chunk::decode_rle(const std::uint8_t* data, std::size_t size) {
  if (size % 4 != 0) return false;
  rle_dirty_ = true;  // blocks may mutate below even when decoding fails
  std::size_t i = 0;
  for (std::size_t off = 0; off < size; off += 4) {
    const auto id = static_cast<std::uint16_t>(data[off] | (data[off + 1] << 8));
    const auto run = static_cast<std::size_t>(data[off + 2] | (data[off + 3] << 8));
    if (run == 0 || i + run > kVolume || id >= kBlockPaletteSize) return false;
    for (std::size_t k = 0; k < run; ++k) blocks_[i + k] = static_cast<Block>(id);
    i += run;
  }
  if (i != kVolume) return false;
  // Rebuild derived state.
  non_air_ = 0;
  for (const Block b : blocks_) {
    if (b != Block::Air) ++non_air_;
  }
  for (int x = 0; x < kChunkSize; ++x) {
    for (int z = 0; z < kChunkSize; ++z) recompute_height(x, z);
  }
  ++revision_;
  return true;
}

}  // namespace dyconits::world
