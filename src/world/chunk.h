// A chunk: a 16x16 column of blocks, kWorldHeight tall. Chunks are the unit
// of world streaming (ChunkData messages) and the default granularity of
// dyconits for block updates.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "world/block.h"
#include "world/geometry.h"

namespace dyconits::world {

class Chunk {
 public:
  explicit Chunk(ChunkPos pos);

  ChunkPos pos() const { return pos_; }

  /// Local coordinates: x,z in [0,16), y in [0,kWorldHeight).
  Block get_local(int x, int y, int z) const { return blocks_[index(x, y, z)]; }
  void set_local(int x, int y, int z, Block b);

  /// Highest non-air y in the column (x,z), or -1 if the column is empty.
  int height_at(int x, int z) const { return heightmap_[x * kChunkSize + z]; }

  /// Count of non-air blocks; used by tests and chunk-data RLE sizing.
  std::uint32_t non_air_count() const { return non_air_; }

  /// Monotonic per-chunk edit counter; bumped by every set_local that
  /// changes a block. Lets sessions detect chunks that changed since sent.
  std::uint64_t revision() const { return revision_; }

  /// Run-length encodes the block array (id, count) pairs, column-major.
  /// This is the payload of ChunkData wire messages. The blob is cached and
  /// invalidated by block writes (set_local / decode_rle), so streaming the
  /// same chunk to N subscribers — or replaying it on resync — runs RLE
  /// once, not N times. The reference stays valid until the next write.
  const std::vector<std::uint8_t>& encode_rle() const;

  /// Replaces contents from an RLE payload. Returns false on malformed or
  /// wrong-size input (contents are then unspecified but memory-safe).
  bool decode_rle(const std::uint8_t* data, std::size_t size);

  static constexpr std::size_t kVolume =
      static_cast<std::size_t>(kChunkSize) * kChunkSize * kWorldHeight;

 private:
  static constexpr std::size_t index(int x, int y, int z) {
    return (static_cast<std::size_t>(x) * kChunkSize + static_cast<std::size_t>(z)) *
               kWorldHeight +
           static_cast<std::size_t>(y);
  }
  void recompute_height(int x, int z);

  ChunkPos pos_;
  std::array<Block, kVolume> blocks_;
  std::array<std::int16_t, kChunkSize * kChunkSize> heightmap_;
  std::uint32_t non_air_ = 0;
  std::uint64_t revision_ = 0;
  mutable std::vector<std::uint8_t> rle_cache_;
  mutable bool rle_dirty_ = true;
};

}  // namespace dyconits::world
