// Spatial primitives for the voxel world: continuous positions (Vec3),
// integer block coordinates (BlockPos), and chunk-grid coordinates
// (ChunkPos). Conversions follow Minecraft conventions: a chunk is a
// 16x16-column of blocks; floor-division maps block to chunk coordinates.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <functional>

namespace dyconits::world {

inline constexpr int kChunkSize = 16;   // blocks per chunk edge (x and z)
inline constexpr int kWorldHeight = 64; // blocks per column (y)

struct Vec3 {
  double x = 0, y = 0, z = 0;

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double k) const { return {x * k, y * k, z * k}; }
  constexpr bool operator==(const Vec3&) const = default;

  double length() const { return std::sqrt(x * x + y * y + z * z); }
  double horizontal_length() const { return std::sqrt(x * x + z * z); }
  Vec3 normalized() const {
    const double len = length();
    return len > 1e-12 ? Vec3{x / len, y / len, z / len} : Vec3{};
  }
};

inline double distance(const Vec3& a, const Vec3& b) { return (a - b).length(); }
inline double horizontal_distance(const Vec3& a, const Vec3& b) {
  return (a - b).horizontal_length();
}

/// Floor division, correct for negative coordinates.
constexpr std::int32_t floor_div(std::int32_t a, std::int32_t b) {
  const std::int32_t q = a / b;
  return (a % b != 0 && (a < 0) != (b < 0)) ? q - 1 : q;
}

/// Non-negative remainder in [0, b).
constexpr std::int32_t floor_mod(std::int32_t a, std::int32_t b) {
  return a - floor_div(a, b) * b;
}

struct BlockPos {
  std::int32_t x = 0, y = 0, z = 0;
  constexpr auto operator<=>(const BlockPos&) const = default;

  static BlockPos from(const Vec3& v) {
    return {static_cast<std::int32_t>(std::floor(v.x)),
            static_cast<std::int32_t>(std::floor(v.y)),
            static_cast<std::int32_t>(std::floor(v.z))};
  }
  constexpr Vec3 center() const { return {x + 0.5, y + 0.5, z + 0.5}; }
};

struct ChunkPos {
  std::int32_t x = 0, z = 0;
  constexpr auto operator<=>(const ChunkPos&) const = default;

  static constexpr ChunkPos of_block(const BlockPos& b) {
    return {floor_div(b.x, kChunkSize), floor_div(b.z, kChunkSize)};
  }
  static ChunkPos of(const Vec3& v) { return of_block(BlockPos::from(v)); }

  /// Chebyshev distance in chunks — the metric view-distance uses.
  constexpr std::int32_t chebyshev(const ChunkPos& o) const {
    const std::int32_t dx = x > o.x ? x - o.x : o.x - x;
    const std::int32_t dz = z > o.z ? z - o.z : o.z - z;
    return dx > dz ? dx : dz;
  }

  /// Center of the chunk at ground level, for distance heuristics.
  constexpr Vec3 center() const {
    return {x * static_cast<double>(kChunkSize) + kChunkSize / 2.0, 0.0,
            z * static_cast<double>(kChunkSize) + kChunkSize / 2.0};
  }

  /// Packs both coordinates into one 64-bit key for hash maps.
  constexpr std::uint64_t key() const {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(z));
  }
  static constexpr ChunkPos from_key(std::uint64_t k) {
    return {static_cast<std::int32_t>(k >> 32), static_cast<std::int32_t>(k & 0xFFFFFFFFull)};
  }
};

}  // namespace dyconits::world

template <>
struct std::hash<dyconits::world::ChunkPos> {
  std::size_t operator()(const dyconits::world::ChunkPos& p) const noexcept {
    // Mix the packed key; chunk coordinates are small and regular, so a
    // multiplicative mix avoids clustering in power-of-two tables.
    return static_cast<std::size_t>(p.key() * 0x9E3779B97F4A7C15ull);
  }
};

template <>
struct std::hash<dyconits::world::BlockPos> {
  std::size_t operator()(const dyconits::world::BlockPos& p) const noexcept {
    std::uint64_t h = static_cast<std::uint32_t>(p.x);
    h = h * 0x100000001B3ull ^ static_cast<std::uint32_t>(p.y);
    h = h * 0x100000001B3ull ^ static_cast<std::uint32_t>(p.z);
    return static_cast<std::size_t>(h * 0x9E3779B97F4A7C15ull);
  }
};
