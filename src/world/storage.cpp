#include "world/storage.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <vector>

#include "util/log.h"

namespace dyconits::world {
namespace {

constexpr std::uint32_t kMagic = 0x31525944;  // "DYR1"
constexpr int kChunksPerRegion = kStorageRegion * kStorageRegion;
constexpr std::size_t kHeaderSize = 4 + 4 + 4 + kChunksPerRegion * 8u;

struct IndexEntry {
  std::uint32_t offset = 0;
  std::uint32_t size = 0;
};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

int slot_of(ChunkPos chunk) {
  const int lx = floor_mod(chunk.x, kStorageRegion);
  const int lz = floor_mod(chunk.z, kStorageRegion);
  return lx * kStorageRegion + lz;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return false;
  }
  std::fseek(f, 0, SEEK_SET);
  out.resize(static_cast<std::size_t>(size));
  const bool ok = size == 0 || std::fread(out.data(), 1, out.size(), f) == out.size();
  std::fclose(f);
  return ok;
}

bool write_file(const std::string& path, const std::vector<std::uint8_t>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  return std::fclose(f) == 0 && ok;
}

/// Parses a region file header; returns false on malformed input.
bool parse_header(const std::vector<std::uint8_t>& bytes, ChunkPos expected_region,
                  IndexEntry (&index)[kChunksPerRegion]) {
  if (bytes.size() < kHeaderSize) return false;
  if (get_u32(bytes.data()) != kMagic) return false;
  const auto rx = static_cast<std::int32_t>(get_u32(bytes.data() + 4));
  const auto rz = static_cast<std::int32_t>(get_u32(bytes.data() + 8));
  if (rx != expected_region.x || rz != expected_region.z) return false;
  for (int i = 0; i < kChunksPerRegion; ++i) {
    index[i].offset = get_u32(bytes.data() + 12 + i * 8);
    index[i].size = get_u32(bytes.data() + 12 + i * 8 + 4);
    if (index[i].offset == 0) continue;
    if (index[i].offset < kHeaderSize ||
        static_cast<std::size_t>(index[i].offset) + index[i].size > bytes.size()) {
      return false;
    }
  }
  return true;
}

}  // namespace

WorldStorage::WorldStorage(std::string directory) : dir_(std::move(directory)) {}

std::string WorldStorage::region_path(ChunkPos region) const {
  return dir_ + "/r." + std::to_string(region.x) + "." + std::to_string(region.z) +
         ".dyr";
}

bool WorldStorage::save(const World& world, std::size_t* chunks_written) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    Log::error("storage: cannot create %s: %s", dir_.c_str(), ec.message().c_str());
    return false;
  }

  // Group chunk payloads by region.
  std::map<std::uint64_t, std::map<int, std::vector<std::uint8_t>>> regions;
  world.for_each_chunk([&](const Chunk& c) {
    regions[region_of(c.pos()).key()][slot_of(c.pos())] = c.encode_rle();
  });

  std::size_t written = 0;
  for (const auto& [region_key, slots] : regions) {
    const ChunkPos region = ChunkPos::from_key(region_key);
    std::vector<std::uint8_t> file;
    put_u32(file, kMagic);
    put_u32(file, static_cast<std::uint32_t>(region.x));
    put_u32(file, static_cast<std::uint32_t>(region.z));
    // Reserve the index, fill after layout.
    const std::size_t index_pos = file.size();
    file.resize(file.size() + kChunksPerRegion * 8u, 0);
    std::vector<std::pair<int, IndexEntry>> entries;
    for (const auto& [slot, payload] : slots) {
      IndexEntry e{static_cast<std::uint32_t>(file.size()),
                   static_cast<std::uint32_t>(payload.size())};
      file.insert(file.end(), payload.begin(), payload.end());
      entries.emplace_back(slot, e);
      ++written;
    }
    for (const auto& [slot, e] : entries) {
      std::uint8_t* p = file.data() + index_pos + static_cast<std::size_t>(slot) * 8;
      for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(e.offset >> (8 * i));
      for (int i = 0; i < 4; ++i) {
        p[4 + i] = static_cast<std::uint8_t>(e.size >> (8 * i));
      }
    }
    if (!write_file(region_path(region), file)) {
      Log::error("storage: write failed for %s", region_path(region).c_str());
      return false;
    }
  }
  if (chunks_written != nullptr) *chunks_written = written;
  return true;
}

bool WorldStorage::load(World& world, std::size_t* chunks_loaded) {
  std::size_t loaded = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return false;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    int rx = 0, rz = 0;
    if (std::sscanf(name.c_str(), "r.%d.%d.dyr", &rx, &rz) != 2) continue;
    const ChunkPos region{rx, rz};
    std::vector<std::uint8_t> bytes;
    if (!read_file(entry.path().string(), bytes)) return false;
    IndexEntry index[kChunksPerRegion];
    if (!parse_header(bytes, region, index)) return false;
    for (int slot = 0; slot < kChunksPerRegion; ++slot) {
      if (index[slot].offset == 0) continue;
      const ChunkPos pos{region.x * kStorageRegion + slot / kStorageRegion,
                         region.z * kStorageRegion + slot % kStorageRegion};
      if (!world.chunk_at(pos).decode_rle(bytes.data() + index[slot].offset,
                                          index[slot].size)) {
        return false;
      }
      ++loaded;
    }
  }
  if (chunks_loaded != nullptr) *chunks_loaded = loaded;
  return true;
}

bool WorldStorage::load_chunk(World& world, ChunkPos pos) {
  std::vector<std::uint8_t> bytes;
  if (!read_file(region_path(region_of(pos)), bytes)) return false;
  IndexEntry index[kChunksPerRegion];
  if (!parse_header(bytes, region_of(pos), index)) return false;
  const IndexEntry& e = index[slot_of(pos)];
  if (e.offset == 0) return false;
  return world.chunk_at(pos).decode_rle(bytes.data() + e.offset, e.size);
}

bool WorldStorage::has_chunk(ChunkPos pos) const {
  std::vector<std::uint8_t> bytes;
  if (!read_file(region_path(region_of(pos)), bytes)) return false;
  IndexEntry index[kChunksPerRegion];
  if (!parse_header(bytes, region_of(pos), index)) return false;
  return index[slot_of(pos)].offset != 0;
}

}  // namespace dyconits::world
