// World persistence: region files, one per kStorageRegion x kStorageRegion
// chunk area (the shape of Minecraft's own Anvil storage, simplified).
//
// File format (little-endian), name "r.<rx>.<rz>.dyr":
//   u32  magic "DYR1"
//   i32  region x, i32 region z
//   64 x { u32 payload offset (from file start), u32 payload size }
//   payloads: Chunk::encode_rle bytes
// A zero offset/size index entry means "chunk absent".
#pragma once

#include <cstdint>
#include <string>

#include "world/world.h"

namespace dyconits::world {

/// Chunks per region-file edge.
inline constexpr int kStorageRegion = 8;

class WorldStorage {
 public:
  /// `directory` is created on first save if missing.
  explicit WorldStorage(std::string directory);

  /// Writes every loaded chunk of `world`, rewriting affected region files
  /// completely. Returns false on any I/O failure.
  bool save(const World& world, std::size_t* chunks_written = nullptr);

  /// Loads every stored chunk into `world` (overwriting loaded chunks with
  /// the stored state). Malformed files or payloads fail the load.
  bool load(World& world, std::size_t* chunks_loaded = nullptr);

  /// Loads a single chunk; false if absent or unreadable.
  bool load_chunk(World& world, ChunkPos pos);

  /// True if the chunk exists in storage (index probe; cheap).
  bool has_chunk(ChunkPos pos) const;

  const std::string& directory() const { return dir_; }

  static ChunkPos region_of(ChunkPos chunk) {
    return {floor_div(chunk.x, kStorageRegion), floor_div(chunk.z, kStorageRegion)};
  }

 private:
  std::string region_path(ChunkPos region) const;

  std::string dir_;
};

}  // namespace dyconits::world
