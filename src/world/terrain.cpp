#include "world/terrain.h"

#include <algorithm>
#include <cmath>

namespace dyconits::world {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

TerrainGenerator::TerrainGenerator(std::uint64_t seed) : seed_(seed) {}

double TerrainGenerator::lattice(std::int32_t x, std::int32_t z, std::uint64_t salt) const {
  std::uint64_t h = seed_ ^ salt;
  h = mix(h ^ static_cast<std::uint32_t>(x));
  h = mix(h ^ static_cast<std::uint32_t>(z));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double TerrainGenerator::value_noise(double x, double z, int period, std::uint64_t salt) const {
  const double fx = x / period;
  const double fz = z / period;
  const auto x0 = static_cast<std::int32_t>(std::floor(fx));
  const auto z0 = static_cast<std::int32_t>(std::floor(fz));
  const double tx = smoothstep(fx - x0);
  const double tz = smoothstep(fz - z0);
  const double v00 = lattice(x0, z0, salt);
  const double v10 = lattice(x0 + 1, z0, salt);
  const double v01 = lattice(x0, z0 + 1, salt);
  const double v11 = lattice(x0 + 1, z0 + 1, salt);
  const double a = v00 + (v10 - v00) * tx;
  const double b = v01 + (v11 - v01) * tx;
  return a + (b - a) * tz;
}

double TerrainGenerator::column_hash(std::int32_t x, std::int32_t z, std::uint64_t salt) const {
  return lattice(x, z, salt ^ 0xFEEDFACEull);
}

int TerrainGenerator::height_at(std::int32_t x, std::int32_t z) const {
  // Three octaves: continental swell, hills, roughness.
  const double n = 0.55 * value_noise(x, z, 96, 1) +
                   0.30 * value_noise(x, z, 24, 2) +
                   0.15 * value_noise(x, z, 6, 3);
  const int h = 12 + static_cast<int>(n * 28.0);
  return std::clamp(h, 1, kWorldHeight - 10);
}

void TerrainGenerator::generate(Chunk& chunk) const {
  const ChunkPos cp = chunk.pos();
  for (int lx = 0; lx < kChunkSize; ++lx) {
    for (int lz = 0; lz < kChunkSize; ++lz) {
      const std::int32_t wx = cp.x * kChunkSize + lx;
      const std::int32_t wz = cp.z * kChunkSize + lz;
      const int ground = height_at(wx, wz);

      chunk.set_local(lx, 0, lz, Block::Bedrock);
      for (int y = 1; y <= ground; ++y) {
        Block b = Block::Stone;
        if (y == ground) {
          b = ground < kSeaLevel + 2 ? Block::Sand : Block::Grass;
        } else if (y >= ground - 3) {
          b = Block::Dirt;
        }
        chunk.set_local(lx, y, lz, b);
      }
      for (int y = ground + 1; y <= kSeaLevel; ++y) {
        chunk.set_local(lx, y, lz, Block::Water);
      }

      // Sparse trees on grass, away from chunk edges so the canopy fits.
      if (ground >= kSeaLevel + 2 && lx >= 2 && lx < kChunkSize - 2 && lz >= 2 &&
          lz < kChunkSize - 2 && column_hash(wx, wz, 7) < 0.008 &&
          ground + 6 < kWorldHeight) {
        const int trunk_h = 4;
        for (int y = ground + 1; y <= ground + trunk_h; ++y) {
          chunk.set_local(lx, y, lz, Block::Wood);
        }
        for (int dx = -2; dx <= 2; ++dx) {
          for (int dz = -2; dz <= 2; ++dz) {
            for (int dy = trunk_h - 1; dy <= trunk_h + 1; ++dy) {
              if (dx == 0 && dz == 0 && dy <= trunk_h) continue;
              if (std::abs(dx) + std::abs(dz) + std::abs(dy - trunk_h) > 3) continue;
              chunk.set_local(lx + dx, ground + dy, lz + dz, Block::Leaves);
            }
          }
        }
      }
    }
  }
}

}  // namespace dyconits::world
