// Procedural terrain: layered value noise produces a heightmap, which is
// materialized as bedrock/stone/dirt/grass columns with water filling up to
// sea level, sand shores, and occasional trees. Deterministic per seed.
#pragma once

#include <cstdint>

#include "world/chunk.h"
#include "world/geometry.h"

namespace dyconits::world {

class TerrainGenerator {
 public:
  explicit TerrainGenerator(std::uint64_t seed);

  /// Ground height (top solid block y) at world column (x, z).
  int height_at(std::int32_t x, std::int32_t z) const;

  /// Fills `chunk` with generated terrain (overwrites all blocks).
  void generate(Chunk& chunk) const;

  static constexpr int kSeaLevel = 20;

 private:
  /// Deterministic lattice noise value in [0,1) at integer (x,z).
  double lattice(std::int32_t x, std::int32_t z, std::uint64_t salt) const;
  /// Bilinear value noise at scale `period`.
  double value_noise(double x, double z, int period, std::uint64_t salt) const;
  /// Deterministic per-column hash in [0,1) for feature placement.
  double column_hash(std::int32_t x, std::int32_t z, std::uint64_t salt) const;

  std::uint64_t seed_;
};

}  // namespace dyconits::world
