#include "world/world.h"

namespace dyconits::world {

World::World(std::unique_ptr<TerrainGenerator> generator)
    : generator_(std::move(generator)) {}

Chunk& World::chunk_at(ChunkPos pos) {
  auto it = chunks_.find(pos);
  if (it != chunks_.end()) return *it->second;
  auto chunk = std::make_unique<Chunk>(pos);
  if (generator_) {
    generator_->generate(*chunk);
  } else {
    for (int x = 0; x < kChunkSize; ++x) {
      for (int z = 0; z < kChunkSize; ++z) chunk->set_local(x, 0, z, Block::Bedrock);
    }
  }
  auto [ins, _] = chunks_.emplace(pos, std::move(chunk));
  return *ins->second;
}

const Chunk* World::find_chunk(ChunkPos pos) const {
  const auto it = chunks_.find(pos);
  return it == chunks_.end() ? nullptr : it->second.get();
}

Chunk* World::find_chunk(ChunkPos pos) {
  const auto it = chunks_.find(pos);
  return it == chunks_.end() ? nullptr : it->second.get();
}

Block World::block_at(BlockPos pos) {
  if (pos.y < 0 || pos.y >= kWorldHeight) return Block::Air;
  Chunk& c = chunk_at(ChunkPos::of_block(pos));
  return c.get_local(floor_mod(pos.x, kChunkSize), pos.y, floor_mod(pos.z, kChunkSize));
}

std::optional<Block> World::block_if_loaded(BlockPos pos) const {
  if (pos.y < 0 || pos.y >= kWorldHeight) return Block::Air;
  const Chunk* c = find_chunk(ChunkPos::of_block(pos));
  if (c == nullptr) return std::nullopt;
  return c->get_local(floor_mod(pos.x, kChunkSize), pos.y, floor_mod(pos.z, kChunkSize));
}

bool World::set_block(BlockPos pos, Block b) {
  if (pos.y < 0 || pos.y >= kWorldHeight) return false;
  Chunk& c = chunk_at(ChunkPos::of_block(pos));
  const int lx = floor_mod(pos.x, kChunkSize);
  const int lz = floor_mod(pos.z, kChunkSize);
  const Block old = c.get_local(lx, pos.y, lz);
  if (old == b) return true;
  c.set_local(lx, pos.y, lz, b);
  const BlockChange change{pos, old, b};
  for (const auto& [token, obs] : observers_) obs(change);
  return true;
}

void World::for_each_chunk(const std::function<void(const Chunk&)>& fn) const {
  for (const auto& [pos, chunk] : chunks_) fn(*chunk);
}

int World::add_block_observer(BlockObserver obs) {
  const int token = next_observer_token_++;
  observers_.emplace_back(token, std::move(obs));
  return token;
}

void World::remove_block_observer(int token) {
  for (auto it = observers_.begin(); it != observers_.end(); ++it) {
    if (it->first == token) {
      observers_.erase(it);
      return;
    }
  }
}

int World::surface_height(std::int32_t x, std::int32_t z) {
  Chunk& c = chunk_at(ChunkPos::of_block({x, 0, z}));
  return c.height_at(floor_mod(x, kChunkSize), floor_mod(z, kChunkSize));
}

Vec3 World::spawn_position(std::int32_t x, std::int32_t z) {
  const int h = surface_height(x, z);
  return {x + 0.5, static_cast<double>(h + 1), z + 0.5};
}

}  // namespace dyconits::world
