// The server-side world: an on-demand-generated map of chunks with block
// get/set and a block-change observer hook (the server wires this into its
// update dispatch path — vanilla broadcast or dyconit middleware).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "world/block.h"
#include "world/chunk.h"
#include "world/geometry.h"
#include "world/terrain.h"

namespace dyconits::world {

struct BlockChange {
  BlockPos pos;
  Block old_block;
  Block new_block;
};

class World {
 public:
  /// `generator == nullptr` creates a flat empty world (all air, bedrock
  /// floor at y=0) — convenient for tests.
  explicit World(std::unique_ptr<TerrainGenerator> generator = nullptr);

  /// Returns the chunk, generating it if absent.
  Chunk& chunk_at(ChunkPos pos);

  /// Returns the chunk only if already loaded.
  const Chunk* find_chunk(ChunkPos pos) const;
  Chunk* find_chunk(ChunkPos pos);

  /// Drops a loaded chunk (client replicas evict on UnloadChunk). False if
  /// the chunk was not loaded.
  bool unload_chunk(ChunkPos pos) { return chunks_.erase(pos) > 0; }

  bool is_loaded(ChunkPos pos) const { return chunks_.count(pos) > 0; }
  std::size_t loaded_chunk_count() const { return chunks_.size(); }

  /// Out-of-range y returns Air.
  Block block_at(BlockPos pos);
  /// Reads without generating; nullopt if the chunk is not loaded.
  std::optional<Block> block_if_loaded(BlockPos pos) const;

  /// Sets a block (generating the chunk if needed) and notifies the
  /// observer iff the block actually changed. Returns false for invalid y.
  bool set_block(BlockPos pos, Block b);

  /// Top solid y at (x,z), generating the chunk if needed.
  int surface_height(std::int32_t x, std::int32_t z);

  /// A spawn-safe position: one block above ground at (x,z).
  Vec3 spawn_position(std::int32_t x, std::int32_t z);

  /// Block-change observers. Multiple observers may coexist (the game
  /// server's dispatch hook plus instrumentation); each add returns a token
  /// for removal. Observers run synchronously inside set_block, in
  /// registration order.
  using BlockObserver = std::function<void(const BlockChange&)>;
  int add_block_observer(BlockObserver obs);
  void remove_block_observer(int token);

  /// Visits every loaded chunk (unspecified order).
  void for_each_chunk(const std::function<void(const Chunk&)>& fn) const;

  const TerrainGenerator* generator() const { return generator_.get(); }

 private:
  std::unique_ptr<TerrainGenerator> generator_;
  std::unordered_map<ChunkPos, std::unique_ptr<Chunk>> chunks_;
  std::vector<std::pair<int, BlockObserver>> observers_;
  int next_observer_token_ = 1;
};

}  // namespace dyconits::world
