// Schema tests for the bench report JSON (bench/bench_stats.h): emitters
// must produce parseable documents with the required keys and only finite
// numbers; the strict parser must reject anything the gate cannot trust
// (NaN/Inf tokens, duplicate keys, trailing garbage); and schema-2 reports
// must survive a full write -> parse -> rehydrate round trip.
#include "bench/bench_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

namespace dyconits::bench {
namespace {

/// Renders via the same FILE* path the benches use, into memory.
template <typename WriteFn>
std::string render(WriteFn&& write) {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  EXPECT_NE(f, nullptr);
  write(f);
  std::fclose(f);
  std::string out(buf, len);
  std::free(buf);
  return out;
}

JsonReport sample_report() {
  JsonReport r;
  r.bench = "e_test";
  r.config = {{"players", json_num(100)}, {"policy", json_str("director")}};
  r.metrics = {{"tick_mean_ms", 1.25}, {"egress_bytes_per_sec", 1.5e6}};
  r.phases = {{"server.flush", 0.5, 0.4, 0.9, 1.1, true}};
  return r;
}

// ----------------------------------------------------------- json_num/str

TEST(JsonNum, ClampsNonFiniteToValidJson) {
  // NaN/Inf have no JSON representation; emitting them would poison every
  // committed snapshot. They clamp instead.
  EXPECT_EQ(json_num(std::nan("")), "0");
  EXPECT_EQ(json_num(INFINITY), "1e+308");
  EXPECT_EQ(json_num(-INFINITY), "-1e+308");
  EXPECT_EQ(json_num(2.5), "2.5");
}

TEST(JsonStr, EscapesQuotesAndControlChars) {
  EXPECT_EQ(json_str("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_str("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_str("a\nb"), "\"a\\nb\"");
}

// ------------------------------------------------------------- the parser

TEST(Parser, AcceptsBasicDocument) {
  std::string err;
  const auto v = json_parse(R"({"a": 1, "b": [true, null, "x"], "c": -2.5e3})", &err);
  ASSERT_TRUE(v.has_value()) << err;
  ASSERT_EQ(v->kind, JsonValue::Kind::Obj);
  EXPECT_DOUBLE_EQ(v->find("a")->num, 1.0);
  EXPECT_DOUBLE_EQ(v->find("c")->num, -2500.0);
  EXPECT_EQ(v->find("b")->arr.size(), 3u);
}

TEST(Parser, RejectsNanAndInfTokens) {
  std::string err;
  EXPECT_FALSE(json_parse(R"({"a": nan})", &err).has_value());
  EXPECT_FALSE(json_parse(R"({"a": NaN})", &err).has_value());
  EXPECT_FALSE(json_parse(R"({"a": inf})", &err).has_value());
  EXPECT_FALSE(json_parse(R"({"a": Infinity})", &err).has_value());
  EXPECT_FALSE(json_parse(R"({"a": -inf})", &err).has_value());
}

TEST(Parser, RejectsOverflowToInfinity) {
  std::string err;
  EXPECT_FALSE(json_parse(R"({"a": 1e999})", &err).has_value());
  EXPECT_NE(err.find("non-finite"), std::string::npos);
}

TEST(Parser, RejectsTrailingGarbage) {
  std::string err;
  EXPECT_FALSE(json_parse(R"({"a": 1} extra)", &err).has_value());
  EXPECT_FALSE(json_parse(R"({"a": 1}{"b": 2})", &err).has_value());
}

TEST(Parser, RejectsDuplicateKeys) {
  std::string err;
  EXPECT_FALSE(json_parse(R"({"a": 1, "a": 2})", &err).has_value());
  EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(Parser, RejectsMalformedNumbers) {
  std::string err;
  EXPECT_FALSE(json_parse(R"({"a": 1.})", &err).has_value());
  EXPECT_FALSE(json_parse(R"({"a": .5})", &err).has_value());
  EXPECT_FALSE(json_parse(R"({"a": 1e})", &err).has_value());
  EXPECT_FALSE(json_parse(R"({"a": 0x10})", &err).has_value());
}

TEST(Parser, HandlesStringEscapes) {
  std::string err;
  const auto v = json_parse(R"(["a\"b", "tab\there", "A"])", &err);
  ASSERT_TRUE(v.has_value()) << err;
  EXPECT_EQ(v->arr[0].str, "a\"b");
  EXPECT_EQ(v->arr[1].str, "tab\there");
  EXPECT_EQ(v->arr[2].str, "A");
}

// ---------------------------------------------------- schema 1 (one run)

TEST(Schema1, EmittedReportHasRequiredKeysAndNumericMetrics) {
  const auto text = render([&](std::FILE* f) { write_json_report(f, sample_report()); });
  std::string err;
  const auto v = json_parse(text, &err);
  ASSERT_TRUE(v.has_value()) << err << "\n" << text;
  EXPECT_DOUBLE_EQ(v->find("schema")->num, 1.0);
  EXPECT_EQ(v->find("bench")->str, "e_test");
  ASSERT_NE(v->find("config"), nullptr);
  const auto* metrics = v->find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->kind, JsonValue::Kind::Obj);
  for (const auto& [name, m] : metrics->obj) {
    EXPECT_EQ(m.kind, JsonValue::Kind::Num) << name;
  }
  const auto* phases = v->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_EQ(phases->arr.size(), 1u);
  EXPECT_EQ(phases->arr[0].find("name")->str, "server.flush");
}

TEST(Schema1, NonFiniteMetricValuesStillEmitValidJson) {
  auto r = sample_report();
  r.metrics.push_back({"poisoned", std::nan("")});
  r.metrics.push_back({"hot", INFINITY});
  const auto text = render([&](std::FILE* f) { write_json_report(f, r); });
  std::string err;
  const auto v = json_parse(text, &err);
  ASSERT_TRUE(v.has_value()) << err << "\n" << text;
  EXPECT_DOUBLE_EQ(v->find("metrics")->find("poisoned")->num, 0.0);
  EXPECT_DOUBLE_EQ(v->find("metrics")->find("hot")->num, 1e308);
}

// ------------------------------------------- schema 2 (cross-seed) round trip

std::vector<JsonReport> five_runs() {
  std::vector<JsonReport> runs;
  for (int i = 0; i < 5; ++i) {
    auto r = sample_report();
    r.config.push_back({"seed", json_num(42 + i)});
    r.metrics[0].second = 1.25 + 0.01 * i;  // tick_mean_ms drifts per seed
    runs.push_back(r);
  }
  return runs;
}

TEST(Schema2, RoundTripPreservesSummaries) {
  const auto agg = aggregate_runs(five_runs(), {42, 43, 44, 45, 46});
  const auto text = render([&](std::FILE* f) { write_multi_run_json(f, agg); });
  std::string err;
  const auto doc = json_parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err << "\n" << text;
  EXPECT_DOUBLE_EQ(doc->find("schema")->num, 2.0);
  const auto back = multi_run_from_json(*doc, &err);
  ASSERT_TRUE(back.has_value()) << err;
  EXPECT_EQ(back->bench, agg.bench);
  ASSERT_EQ(back->seeds.size(), 5u);
  const auto* orig = agg.find_metric("tick_mean_ms");
  const auto* trip = back->find_metric("tick_mean_ms");
  ASSERT_NE(orig, nullptr);
  ASSERT_NE(trip, nullptr);
  EXPECT_NEAR(trip->mean, orig->mean, 1e-6);
  EXPECT_NEAR(trip->band_pct, orig->band_pct, 1e-6);
  ASSERT_EQ(trip->values.size(), 5u);
}

TEST(Schema2, RehydrationRequiresSummaryKeys) {
  std::string err;
  // No band_pct on the metric: rejected, the gate cannot size a threshold.
  const auto v = json_parse(
      R"({"schema": 2, "bench": "x", "seeds": [1], "config": {},
          "metrics": {"m": {"mean": 1.0, "cov_pct": 0.1}}})",
      &err);
  ASSERT_TRUE(v.has_value()) << err;
  EXPECT_FALSE(multi_run_from_json(*v, &err).has_value());
  EXPECT_NE(err.find("band_pct"), std::string::npos);
}

TEST(Schema2, RehydrationRejectsWrongSchema) {
  std::string err;
  const auto v = json_parse(R"({"schema": 3, "bench": "x"})", &err);
  ASSERT_TRUE(v.has_value());
  EXPECT_FALSE(multi_run_from_json(*v, &err).has_value());
}

TEST(Schema2, SeedsExcludedFromCrossRunConfig) {
  const auto agg = aggregate_runs(five_runs(), {42, 43, 44, 45, 46});
  const auto text = render([&](std::FILE* f) { write_multi_run_json(f, agg); });
  std::string err;
  const auto doc = json_parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err;
  EXPECT_EQ(doc->find("config")->find("seed"), nullptr);
  ASSERT_NE(doc->find("seeds"), nullptr);
  EXPECT_EQ(doc->find("seeds")->arr.size(), 5u);
}

// A snapshot array (BENCH_<pr>.json) of schema-2 objects parses whole.
TEST(Schema2, SnapshotArrayRoundTrip) {
  const auto agg = aggregate_runs(five_runs(), {42, 43, 44, 45, 46});
  const auto text = render([&](std::FILE* f) {
    std::fputs("[\n", f);
    write_multi_run_json(f, agg);
    std::fputs(",\n", f);
    write_multi_run_json(f, agg);
    std::fputs("]\n", f);
  });
  std::string err;
  const auto doc = json_parse(text, &err);
  ASSERT_TRUE(doc.has_value()) << err << "\n" << text;
  ASSERT_EQ(doc->kind, JsonValue::Kind::Arr);
  ASSERT_EQ(doc->arr.size(), 2u);
  for (const auto& entry : doc->arr) {
    EXPECT_TRUE(multi_run_from_json(entry, &err).has_value()) << err;
  }
}

}  // namespace
}  // namespace dyconits::bench
