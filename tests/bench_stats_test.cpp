// Unit tests for the multi-seed bench statistics and the regression gate
// (bench/bench_stats.h) — the arithmetic every BENCH_<pr>.json snapshot and
// every `verify.sh bench-gate` verdict rests on.
#include "bench/bench_stats.h"

#include <gtest/gtest.h>

namespace dyconits::bench {
namespace {

// ------------------------------------------------------------- vec stats

TEST(VecStats, MeanOfKnownVector) {
  EXPECT_DOUBLE_EQ(vec_mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(vec_mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(vec_mean({}), 0.0);
}

TEST(VecStats, SampleStddevUsesNMinusOne) {
  // {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sum of squared deviations 32,
  // sample variance 32/7.
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(vec_stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(VecStats, StddevOfSingleSampleIsZero) {
  EXPECT_DOUBLE_EQ(vec_stddev({3.0}), 0.0);
  EXPECT_DOUBLE_EQ(vec_stddev({}), 0.0);
}

TEST(VecStats, CovPctOfKnownVector) {
  // mean 10, stddev 1 -> CoV 10%.
  const std::vector<double> xs = {9.0, 10.0, 11.0};
  EXPECT_NEAR(vec_cov_pct(xs), 100.0 * 1.0 / 10.0, 1e-9);
}

TEST(VecStats, CovOfZeroVarianceVectorIsZero) {
  EXPECT_DOUBLE_EQ(vec_cov_pct({7.0, 7.0, 7.0, 7.0, 7.0}), 0.0);
}

TEST(VecStats, CovOfZeroMeanIsZeroNotNan) {
  EXPECT_DOUBLE_EQ(vec_cov_pct({-1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(vec_cov_pct({0.0, 0.0, 0.0}), 0.0);
}

TEST(VecStats, PercentileNearestRank) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(vec_percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(vec_percentile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(vec_percentile(xs, 0.5), 6.0);  // idx = 0.5*9+0.5 = 5
  // Input order must not matter.
  EXPECT_DOUBLE_EQ(vec_percentile({10, 1, 5, 3, 8, 2, 9, 4, 7, 6}, 0.5), 6.0);
}

TEST(VecStats, NoiseBandIsWorstDeviationTimesSafety) {
  // mean 10, worst deviation 2 (the 12) -> 20% * safety.
  const std::vector<double> xs = {9.0, 10.0, 12.0, 9.0, 10.0};
  EXPECT_NEAR(noise_band_pct(xs), 20.0 * kNoiseBandSafety, 1e-9);
}

TEST(VecStats, NoiseBandOfSingleSampleIsZero) {
  EXPECT_DOUBLE_EQ(noise_band_pct({4.2}), 0.0);
}

TEST(VecStats, SummarizeFillsAllFields) {
  const auto s = summarize({4.0, 6.0, 5.0});
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 4.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_NEAR(s.band_pct, 20.0 * kNoiseBandSafety, 1e-9);
  ASSERT_EQ(s.values.size(), 3u);
}

// ------------------------------------------------------- aggregate_runs

TEST(Aggregate, CollectsPerSeedMetricValuesInOrder) {
  JsonReport a, b;
  a.bench = b.bench = "e_test";
  a.config = {{"players", json_num(10)}, {"seed", json_num(1)}};
  b.config = {{"players", json_num(10)}, {"seed", json_num(2)}};
  a.metrics = {{"tick_mean_ms", 10.0}, {"egress_kbps", 100.0}};
  b.metrics = {{"tick_mean_ms", 12.0}, {"egress_kbps", 110.0}};
  const auto agg = aggregate_runs({a, b}, {1, 2});
  EXPECT_EQ(agg.bench, "e_test");
  ASSERT_EQ(agg.seeds.size(), 2u);
  // seed is per-run, not cross-run config.
  for (const auto& [k, v] : agg.config) EXPECT_NE(k, "seed");
  const auto* tick = agg.find_metric("tick_mean_ms");
  ASSERT_NE(tick, nullptr);
  EXPECT_DOUBLE_EQ(tick->mean, 11.0);
  ASSERT_EQ(tick->values.size(), 2u);
  EXPECT_DOUBLE_EQ(tick->values[0], 10.0);
  EXPECT_DOUBLE_EQ(tick->values[1], 12.0);
}

// -------------------------------------------------------- classification

TEST(Classify, TimingsAreLowerBetter) {
  EXPECT_EQ(classify_metric("e14_egress", "tick_mean_ms"), MetricClass::LowerBetter);
  EXPECT_EQ(classify_metric("e13_overload", "cap_violations.x4"),
            MetricClass::LowerBetter);
  EXPECT_EQ(classify_metric("e14_egress", "pool_misses_per_tick"),
            MetricClass::LowerBetter);
}

TEST(Classify, ThroughputAndPassFlagsAreHigherBetter) {
  EXPECT_EQ(classify_metric("e12_parallel", "wire_match"), MetricClass::HigherBetter);
  EXPECT_EQ(classify_metric("e11_chaos", "replay_ok"), MetricClass::HigherBetter);
  EXPECT_EQ(classify_metric("e12_parallel", "speedup.t4"), MetricClass::HigherBetter);
  EXPECT_EQ(classify_metric("e2_scalability", "capacity_players.director"),
            MetricClass::HigherBetter);
}

TEST(Classify, DeterministicSimOutputsAreTwoSided) {
  EXPECT_EQ(classify_metric("e14_egress", "egress_bytes_per_sec"),
            MetricClass::TwoSided);
  EXPECT_EQ(classify_metric("e1_bandwidth", "update_kbps.director"),
            MetricClass::TwoSided);
  EXPECT_EQ(classify_metric("e3_consistency", "staleness_p99_ms.aoi"),
            MetricClass::LowerBetter);  // _ms wins: staleness growth is bad
}

TEST(Classify, RealSocketMetricsAreInformational) {
  EXPECT_EQ(classify_metric("e15_transport", "udp_mb_per_s"),
            MetricClass::Informational);
  EXPECT_EQ(classify_metric("e15_transport", "udp_roundtrip_ms"),
            MetricClass::Informational);
  // ...but the same prefix elsewhere is not special.
  EXPECT_EQ(classify_metric("e15_transport", "sim_mb_per_s"),
            MetricClass::HigherBetter);
}

// ------------------------------------------------------------ gate_metric

MetricSummary sum_of(std::vector<double> values) { return summarize(values); }

TEST(Gate, PassesInsideNoiseBand) {
  // Baseline 100 with a ±10% worst deviation -> 20% band (safety 2x).
  const auto base = sum_of({90, 100, 110});
  const auto cand = sum_of({95, 105, 115});  // +5% drift, inside band
  const auto f = gate_metric("e14_egress", "tick_mean_ms", base, cand, {});
  EXPECT_TRUE(f.gated);
  EXPECT_FALSE(f.failed);
}

TEST(Gate, FailsOutsideNoiseBand) {
  const auto base = sum_of({99, 100, 101});  // tight band (2% with safety)
  const auto cand = sum_of({119, 120, 121});  // +20%
  const auto f = gate_metric("e14_egress", "tick_mean_ms", base, cand, {});
  EXPECT_TRUE(f.failed);
  EXPECT_NEAR(f.change_pct, 20.0, 0.1);
}

TEST(Gate, FloorProtectsTightBands) {
  const auto base = sum_of({100, 100, 100});  // zero band
  const auto cand = sum_of({104, 104, 104});  // +4% < default 5% floor
  const auto f = gate_metric("e14_egress", "tick_mean_ms", base, cand, {});
  EXPECT_FALSE(f.failed);
  EXPECT_DOUBLE_EQ(f.threshold_pct, 5.0);
}

TEST(Gate, LowerBetterImprovementNeverFails) {
  const auto base = sum_of({100, 100, 100});
  const auto cand = sum_of({50, 50, 50});  // tick time halved
  const auto f = gate_metric("e14_egress", "tick_mean_ms", base, cand, {});
  EXPECT_FALSE(f.failed);
}

TEST(Gate, HigherBetterShrinkageFails) {
  const auto base = sum_of({100, 100, 100});
  const auto cand = sum_of({80, 80, 80});  // throughput -20%
  const auto f = gate_metric("e15_transport", "sim_mb_per_s", base, cand, {});
  EXPECT_TRUE(f.failed);
}

TEST(Gate, TwoSidedDriftFailsBothWays) {
  const auto base = sum_of({100, 100, 100});
  const auto up = sum_of({120, 120, 120});
  const auto down = sum_of({80, 80, 80});
  EXPECT_TRUE(gate_metric("e14_egress", "egress_bytes_per_sec", base, up, {}).failed);
  EXPECT_TRUE(
      gate_metric("e14_egress", "egress_bytes_per_sec", base, down, {}).failed);
}

TEST(Gate, WiderCandidateBandRaisesThreshold) {
  const auto base = sum_of({100, 100, 100});
  // Candidate mean 110 (+10%) but its own spread is ±15% -> 30% band.
  const auto cand = sum_of({93.5, 110.0, 126.5});
  const auto f = gate_metric("e14_egress", "tick_mean_ms", base, cand, {});
  EXPECT_FALSE(f.failed);
  EXPECT_GT(f.threshold_pct, 29.0);
}

TEST(Gate, ZeroBaselineUsesAbsoluteTolerance) {
  const auto base = sum_of({0, 0, 0});
  const auto within = sum_of({0.005, 0.005, 0.005});
  const auto beyond = sum_of({1.0, 1.0, 1.0});
  EXPECT_FALSE(
      gate_metric("e14_egress", "pool_misses_per_tick", base, within, {}).failed);
  EXPECT_TRUE(
      gate_metric("e14_egress", "pool_misses_per_tick", base, beyond, {}).failed);
}

TEST(Gate, InformationalNeverFails) {
  const auto base = sum_of({100, 100, 100});
  const auto cand = sum_of({500, 500, 500});
  const auto f = gate_metric("e15_transport", "udp_mb_per_s", base, cand, {});
  EXPECT_FALSE(f.gated);
  EXPECT_FALSE(f.failed);
}

// ----------------------------------------------------------- gate_reports

std::vector<MultiRunReport> one_bench_baseline() {
  MultiRunReport r;
  r.bench = "e14_egress";
  r.seeds = {1, 2, 3, 4, 5};
  r.metrics = {
      {"tick_mean_ms", sum_of({10, 10.2, 9.8, 10.1, 9.9})},
      {"egress_bytes_per_sec", sum_of({1e6, 1.01e6, 0.99e6, 1.0e6, 1.0e6})},
  };
  return {r};
}

TEST(GateReports, IdenticalSnapshotPasses) {
  const auto base = one_bench_baseline();
  std::vector<GateFinding> findings;
  EXPECT_TRUE(gate_reports(base, base, {}, findings));
  for (const auto& f : findings) EXPECT_FALSE(f.failed);
}

TEST(GateReports, MissingMetricFailsUnlessAllowed) {
  const auto base = one_bench_baseline();
  auto cand = base;
  cand[0].metrics.pop_back();  // lost egress_bytes_per_sec coverage
  std::vector<GateFinding> findings;
  EXPECT_FALSE(gate_reports(base, cand, {}, findings));
  GateOptions allow;
  allow.allow_missing = true;
  findings.clear();
  EXPECT_TRUE(gate_reports(base, cand, allow, findings));
}

TEST(GateReports, NewMetricIsNotedNotFailed) {
  const auto base = one_bench_baseline();
  auto cand = base;
  cand[0].metrics.push_back({"brand_new_ms", sum_of({1, 1, 1})});
  std::vector<GateFinding> findings;
  EXPECT_TRUE(gate_reports(base, cand, {}, findings));
  bool noted = false;
  for (const auto& f : findings) {
    if (f.metric == "brand_new_ms") noted = f.note.find("new metric") != std::string::npos;
  }
  EXPECT_TRUE(noted);
}

TEST(GateReports, BenchWithoutBaselineIsNotedNotFailed) {
  const auto base = one_bench_baseline();
  auto cand = base;
  MultiRunReport extra;
  extra.bench = "e99_new";
  extra.metrics = {{"tick_mean_ms", sum_of({1, 1, 1})}};
  cand.push_back(extra);
  std::vector<GateFinding> findings;
  EXPECT_TRUE(gate_reports(base, cand, {}, findings));
}

// ------------------------------------------------- injection + self-test

TEST(SelfTest, InjectionMovesEveryGatedMetricTheBadWay) {
  const auto base = one_bench_baseline();
  const auto injected = inject_regression(base, 20.0);
  // tick_mean_ms is lower-better: must grow.
  EXPECT_GT(injected[0].find_metric("tick_mean_ms")->mean,
            base[0].find_metric("tick_mean_ms")->mean);
}

TEST(SelfTest, InjectionShrinksHigherBetterMetrics) {
  MultiRunReport r;
  r.bench = "e12_parallel";
  r.metrics = {{"speedup.t4", sum_of({3.0, 3.1, 2.9})}};
  const auto injected = inject_regression({r}, 20.0);
  EXPECT_LT(injected[0].find_metric("speedup.t4")->mean, 3.0);
}

TEST(SelfTest, PassesOnRealisticBaselineAndCatchesInjection) {
  std::string log;
  EXPECT_TRUE(gate_self_test(one_bench_baseline(), {}, &log));
  EXPECT_NE(log.find("tripped"), std::string::npos) << log;
}

TEST(SelfTest, SyntheticFixturePasses) {
  std::string log;
  EXPECT_TRUE(gate_self_test(synthetic_baseline(), {}, &log)) << log;
}

TEST(SelfTest, FailsWhenBaselineHasNoGatedMetrics) {
  MultiRunReport r;
  r.bench = "e15_transport";
  r.metrics = {{"udp_mb_per_s", sum_of({100, 101, 99})}};  // informational only
  std::string log;
  EXPECT_FALSE(gate_self_test({r}, {}, &log));
}

}  // namespace
}  // namespace dyconits::bench
