// Unit tests for the bot client: joining, replica maintenance, behaviors,
// and measurement taps.
#include <gtest/gtest.h>

#include "bots/bot.h"
#include "bots/workload.h"
#include "dyconit/policies/factory.h"
#include "server/game_server.h"

namespace dyconits::bots {
namespace {

using world::Vec3;

class BotTest : public ::testing::Test {
 protected:
  void build(const std::string& policy, BotConfig cfg = {}, Vec3 spawn = {8.5, 1, 8.5}) {
    server::ServerConfig scfg;
    scfg.view_distance = 2;
    scfg.max_chunk_sends_per_tick = 100;
    scfg.use_dyconits = policy != "vanilla";
    scfg.net_cost_per_frame = SimDuration::micros(0);
    scfg.net_cost_per_byte_ns = 0.0;
    scfg.spawn_provider = [spawn](const std::string&) { return spawn; };
    std::unique_ptr<dyconit::Policy> p;
    if (scfg.use_dyconits) p = dyconit::make_policy(policy);
    server_ = std::make_unique<server::GameServer>(clock_, net_, world_, std::move(p),
                                                   std::move(scfg));
    cfg.keep_chunk_replica = true;
    bot_ = std::make_unique<BotClient>(clock_, net_, world_, server_->endpoint(), "bot-0",
                                       7, cfg);
    net_.connect(bot_->endpoint(), server_->endpoint(), {SimDuration::millis(0), 0.0});
  }

  void step(int ticks = 1) {
    for (int i = 0; i < ticks; ++i) {
      clock_.advance(SimDuration::millis(50));
      bot_->tick();
      if (other_) other_->tick();
      server_->tick();
    }
  }

  SimClock clock_;
  net::SimNetwork net_{clock_};
  world::World world_;
  std::unique_ptr<server::GameServer> server_;
  std::unique_ptr<BotClient> bot_;
  std::unique_ptr<BotClient> other_;
};

TEST_F(BotTest, JoinsAndLoadsChunks) {
  build("vanilla");
  bot_->connect();
  step(3);
  EXPECT_TRUE(bot_->joined());
  EXPECT_NE(bot_->self(), entity::kInvalidEntity);
  EXPECT_EQ(bot_->loaded_chunk_count(), 25u);
  EXPECT_EQ(bot_->decode_failures(), 0u);
}

TEST_F(BotTest, ChunkReplicaMatchesTruthAtSnapshot) {
  world_.set_block({5, 1, 5}, world::Block::Planks);
  build("vanilla");
  bot_->connect();
  step(3);
  ASSERT_NE(bot_->replica_world(), nullptr);
  EXPECT_EQ(bot_->replica_block({5, 1, 5}), world::Block::Planks);
  EXPECT_EQ(bot_->replica_block({5, 0, 5}), world::Block::Bedrock);
}

TEST_F(BotTest, WalkingBotSendsMovesAndArrives) {
  BotConfig cfg;
  cfg.kind = BehaviorKind::Walk;
  cfg.wander_radius = 20.0;
  build("vanilla", cfg);
  bot_->connect();
  const Vec3 start{8.5, 1, 8.5};
  step(200);
  // The bot walked somewhere and the server's entity followed it.
  const entity::Entity* e = server_->entities().find(bot_->self());
  ASSERT_NE(e, nullptr);
  EXPECT_GT(world::distance(e->pos, start), 1.0);
  // Matches the bot's own belief up to f32 wire quantization.
  EXPECT_LT(world::distance(e->pos, bot_->pos()), 0.001);
}

TEST_F(BotTest, IdleBotDoesNotMove) {
  BotConfig cfg;
  cfg.kind = BehaviorKind::Idle;
  build("vanilla", cfg);
  bot_->connect();
  step(100);
  EXPECT_EQ(bot_->pos(), (Vec3{8.5, 1, 8.5}));
}

TEST_F(BotTest, BuilderChangesTheWorld) {
  BotConfig cfg;
  cfg.kind = BehaviorKind::Build;
  cfg.wander_radius = 5.0;
  cfg.action_interval = SimDuration::millis(100);
  build("vanilla", cfg);
  bot_->connect();
  std::size_t changes = 0;
  world_.add_block_observer([&](const world::BlockChange&) { ++changes; });
  step(400);
  EXPECT_GT(changes, 0u);
}

TEST_F(BotTest, MinerDigsStaircase) {
  world::World hill;  // build a small stone plateau to dig into
  for (int x = 0; x < 32; ++x) {
    for (int z = 0; z < 32; ++z) {
      hill.set_block({x, 1, z}, world::Block::Stone);
    }
  }
  // Swap our flat world for the hill (rebuild the fixture pieces manually).
  BotConfig cfg;
  cfg.kind = BehaviorKind::Mine;
  cfg.action_interval = SimDuration::millis(100);
  server::ServerConfig scfg;
  scfg.view_distance = 2;
  scfg.max_chunk_sends_per_tick = 100;
  scfg.use_dyconits = false;
  scfg.net_cost_per_frame = SimDuration::micros(0);
  scfg.net_cost_per_byte_ns = 0.0;
  scfg.spawn_provider = [](const std::string&) { return Vec3{8.5, 2, 8.5}; };
  server::GameServer srv(clock_, net_, hill, nullptr, std::move(scfg));
  BotClient bot(clock_, net_, hill, srv.endpoint(), "miner", 3, cfg);
  net_.connect(bot.endpoint(), srv.endpoint(), {SimDuration::millis(0), 0.0});
  bot.connect();
  std::uint64_t digs = 0;
  hill.add_block_observer([&](const world::BlockChange& bc) {
    if (bc.new_block == world::Block::Air) ++digs;
  });
  for (int i = 0; i < 400; ++i) {
    clock_.advance(SimDuration::millis(50));
    bot.tick();
    srv.tick();
  }
  EXPECT_GT(digs, 0u);
}

TEST_F(BotTest, ReplicaTracksOtherEntity) {
  build("vanilla");
  BotConfig walker;
  walker.kind = BehaviorKind::Walk;
  walker.wander_radius = 10.0;
  other_ = std::make_unique<BotClient>(clock_, net_, world_, server_->endpoint(), "bot-1",
                                       11, walker);
  net_.connect(other_->endpoint(), server_->endpoint(), {SimDuration::millis(0), 0.0});
  bot_->connect();
  other_->connect();
  step(100);

  ASSERT_EQ(bot_->replica_entities().size(), 1u);
  const auto& [id, rep] = *bot_->replica_entities().begin();
  EXPECT_EQ(id, other_->self());
  const entity::Entity* truth = server_->entities().find(id);
  ASSERT_NE(truth, nullptr);
  // Vanilla path: replica lags at most one in-flight tick; with zero link
  // latency it is exact after each round.
  EXPECT_LT(world::distance(rep.pos, truth->pos), 0.5);
  EXPECT_EQ(rep.name, "bot-1");
}

TEST_F(BotTest, BlockDeltaReplicaWithoutFullChunks) {
  BotConfig cfg;
  cfg.kind = BehaviorKind::Idle;
  build("vanilla", cfg);
  bot_ = std::make_unique<BotClient>(clock_, net_, world_, server_->endpoint(), "lite", 5,
                                     cfg);  // keep_chunk_replica defaults to false
  net_.connect(bot_->endpoint(), server_->endpoint(), {SimDuration::millis(0), 0.0});
  bot_->connect();
  step(3);
  EXPECT_EQ(bot_->replica_world(), nullptr);
  EXPECT_FALSE(bot_->replica_block({9, 1, 9}).has_value());  // never told
  world_.set_block({9, 1, 9}, world::Block::Sand);            // server observer fans out
  step(2);
  EXPECT_EQ(bot_->replica_block({9, 1, 9}), world::Block::Sand);
}

TEST_F(BotTest, KeepAliveAnswered) {
  build("vanilla");
  bot_->connect();
  step(450);  // several keep-alive intervals
  EXPECT_EQ(server_->sessions_timed_out(), 0u);
  EXPECT_EQ(server_->player_count(), 1u);
}

TEST_F(BotTest, LatencySamplesRecorded) {
  build("vanilla");
  BotConfig walker;
  walker.kind = BehaviorKind::Walk;
  other_ = std::make_unique<BotClient>(clock_, net_, world_, server_->endpoint(), "bot-1",
                                       11, walker);
  net_.connect(other_->endpoint(), server_->endpoint(), {SimDuration::millis(0), 0.0});
  bot_->connect();
  other_->connect();
  step(100);
  EXPECT_GT(bot_->update_latency_ms().count(), 0u);
  EXPECT_GT(bot_->near_update_latency_ms().count(), 0u);
  // Zero link latency + vanilla: every update arrives within one tick.
  EXPECT_LE(bot_->update_latency_ms().max(), 50.0 + 1e-9);
}

TEST_F(BotTest, SetHomeRedirectsBot) {
  BotConfig cfg;
  cfg.kind = BehaviorKind::Walk;
  cfg.wander_radius = 5.0;
  build("vanilla", cfg);
  bot_->connect();
  step(10);
  bot_->set_home({200.5, 1, 200.5}, 5.0);
  step(1200);
  EXPECT_LT(world::horizontal_distance(bot_->pos(), {200.5, 1, 200.5}), 30.0);
}

// ---------------------------------------------------------------- workload

TEST(WorkloadTest, PlansAreDeterministic) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadKind::Village;
  const auto a = plan_bots(cfg, 50, 9);
  const auto b = plan_bots(cfg, 50, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].home, b[i].home);
    EXPECT_EQ(a[i].config.kind, b[i].config.kind);
  }
}

TEST(WorkloadTest, VillageIsDenserThanWalk) {
  WorkloadConfig village;
  village.kind = WorkloadKind::Village;
  WorkloadConfig walk;
  walk.kind = WorkloadKind::Walk;
  const auto v = plan_bots(village, 100, 5);
  const auto w = plan_bots(walk, 100, 5);

  // Density at the interest-management scale: fraction of player pairs that
  // land within two chunks of each other.
  const auto close_pair_fraction = [](const std::vector<BotPlan>& plans) {
    std::size_t close = 0, n = 0;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      for (std::size_t j = i + 1; j < plans.size(); ++j) {
        close += world::horizontal_distance(plans[i].home, plans[j].home) < 32.0 ? 1 : 0;
        ++n;
      }
    }
    return static_cast<double>(close) / static_cast<double>(n);
  };
  EXPECT_GT(close_pair_fraction(v), 4.0 * close_pair_fraction(w));
}

TEST(WorkloadTest, MixedAlternates) {
  WorkloadConfig cfg;
  cfg.kind = WorkloadKind::Mixed;
  const auto plans = plan_bots(cfg, 10, 1);
  EXPECT_NE(plans[0].name.substr(0, 4), plans[1].name.substr(0, 4));
}

TEST(WorkloadTest, ParseNames) {
  EXPECT_EQ(parse_workload("village"), WorkloadKind::Village);
  EXPECT_EQ(parse_workload("walk"), WorkloadKind::Walk);
  EXPECT_EQ(parse_workload("nonsense"), WorkloadKind::Walk);
  EXPECT_STREQ(workload_name(WorkloadKind::Build), "build");
}

}  // namespace
}  // namespace dyconits::bots
