// Deterministic chaos suite (DESIGN.md §18): the full stack under injected
// network faults. Re-asserts the §7 invariants *after recovery* — bounded
// inconsistency, eventual delivery (replicas converge exactly once the
// network heals and resyncs complete), closed accounting ledgers — plus
// byte-identical replay of any fault schedule from its seed.
//
// The fault seed matrix is driven by scripts/verify.sh via the
// DYCONITS_CHAOS_SEED environment variable (default 42).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "bots/faults.h"
#include "bots/simulation.h"

namespace dyconits::bots {
namespace {

std::uint64_t chaos_seed() {
  const char* env = std::getenv("DYCONITS_CHAOS_SEED");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 42ull;
}

/// Flush-pipeline threads (DYCONITS_CHAOS_THREADS, default 1): the TSan
/// stage of scripts/verify.sh re-runs this whole suite with the sharded
/// flush path on — every invariant here must hold under faults regardless
/// of thread count (DESIGN.md §9).
std::size_t chaos_threads() {
  const char* env = std::getenv("DYCONITS_CHAOS_THREADS");
  return env != nullptr ? static_cast<std::size_t>(std::strtoull(env, nullptr, 10)) : 1;
}

SimulationConfig chaos_config(std::size_t players = 5) {
  SimulationConfig cfg;
  cfg.players = players;
  cfg.policy = "director";
  cfg.seed = chaos_seed();
  cfg.view_distance = 3;
  cfg.link_latency = SimDuration::millis(5);
  cfg.link_jitter = 0.0;
  cfg.workload.kind = WorkloadKind::Village;
  cfg.workload.hotspots = 1;
  cfg.workload.village_radius = 10.0;
  cfg.joins_per_tick = 10;
  cfg.keep_chunk_replica = true;
  cfg.warmup = SimDuration::seconds(5);
  cfg.flush_threads = chaos_threads();
  return cfg;
}

/// Heals the network, asks every bot for a final catch-up resync, lets the
/// snapshot streams drain, then quiesces (bots paused, queues flushed,
/// network drained) so replicas can be compared against ground truth.
void heal_and_quiesce(Simulation& sim, int drain_ticks = 200) {
  sim.network().clear_link_faults();
  // A session that accumulated keepalive_missed_limit lost replies during
  // the fault window is torn down at the *next* keepalive interval — up to
  // 2 s after the heal. Settle past that window first so any doomed
  // teardown fires now instead of mid-drain (which would leave that bot
  // without a subscriber for the final flush).
  for (int i = 0; i < 200; ++i) sim.step_tick();
  // Then wait for the whole fleet to hold live, joined sessions again: a
  // torn-down bot needs up to 30 s of silence for its liveness detector to
  // notice, plus the join handshake.
  auto all_live = [&] {
    if (sim.server().player_count() < sim.bots().size()) return false;
    for (const auto& bot : sim.bots()) {
      if (!bot->joined()) return false;
    }
    return true;
  };
  for (int i = 0; i < 2400 && !all_live(); ++i) sim.step_tick();
  for (auto& bot : sim.bots()) bot->request_resync();
  for (int i = 0; i < drain_ticks; ++i) sim.step_tick();
  for (auto& bot : sim.bots()) bot->set_paused(true);
  for (int i = 0; i < 5; ++i) sim.step_tick();
  sim.server().dyconits().flush_all(sim.server());
  for (int i = 0; i < 5; ++i) sim.step_tick();
}

/// §7 invariant: replicas match ground truth exactly (f32 quantization
/// aside) once the system has recovered — no update was silently lost.
void expect_entities_converged(Simulation& sim, double tolerance = 0.01) {
  std::size_t checked = 0;
  for (const auto& bot : sim.bots()) {
    ASSERT_TRUE(bot->joined()) << bot->name() << " failed to (re)join";
    for (const auto& [id, rep] : bot->replica_entities()) {
      const entity::Entity* truth = sim.server().entities().find(id);
      ASSERT_NE(truth, nullptr)
          << bot->name() << " kept ghost entity " << id << " after resync";
      EXPECT_LT(world::distance(rep.pos, truth->pos), tolerance)
          << bot->name() << " entity " << id;
      if (world::distance(rep.pos, truth->pos) >= tolerance) {
        const auto bc = world::ChunkPos::of(bot->pos());
        const auto ec = world::ChunkPos::of(truth->pos);
        std::fprintf(stderr,
                     "DIAG %s self=%llu acks=%llu resyncs=%llu pruned=%llu "
                     "ent=%llu kind=%d chunkdist=(%d,%d) rep=(%.2f,%.2f) truth=(%.2f,%.2f)\n",
                     bot->name().c_str(), (unsigned long long)bot->self(),
                     (unsigned long long)bot->resync_acks_seen(),
                     (unsigned long long)bot->resyncs_requested(),
                     (unsigned long long)bot->replica_pruned(),
                     (unsigned long long)id, (int)truth->kind,
                     ec.x - bc.x, ec.z - bc.z, rep.pos.x, rep.pos.z,
                     truth->pos.x, truth->pos.z);
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

/// Middleware ledger (§7): every enqueued update is delivered, coalesced
/// into a delivered one, or dropped for an accounted reason.
void expect_dyconit_ledger_closed(Simulation& sim) {
  const dyconit::Stats& s = sim.server().dyconit_stats();
  EXPECT_EQ(sim.server().dyconits().total_queued(), 0u);  // post-quiesce
  EXPECT_EQ(s.enqueued, s.delivered + s.coalesced + s.dropped_no_subscriber +
                            s.dropped_unsubscribe + s.dropped_snapshot);
}

/// Network conservation ledger per endpoint (see SimNetwork::offered_frames).
void expect_wire_ledger_closed(Simulation& sim) {
  auto check = [&](net::EndpointId ep) {
    const net::FaultStats& fs = sim.network().fault_stats(ep);
    EXPECT_EQ(sim.network().offered_frames(ep),
              sim.network().ingress_frames(ep) - fs.duplicated + fs.dropped.loss)
        << sim.network().endpoint_name(ep);
  };
  check(sim.server().endpoint());
  for (const auto& bot : sim.bots()) check(bot->endpoint());
}

/// Order-independent hash of the final state: entities sorted by id, loaded
/// ground-truth chunks XOR-combined by position, plus exact wire totals.
std::uint64_t world_hash(Simulation& sim) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  auto mix = [&](std::uint64_t h, std::uint64_t v) { return (h ^ v) * kPrime; };
  std::uint64_t h = 1469598103934665603ull;

  std::vector<const entity::Entity*> ents;
  sim.server().entities().for_each(
      [&](const entity::Entity& e) { ents.push_back(&e); });
  std::sort(ents.begin(), ents.end(),
            [](const entity::Entity* a, const entity::Entity* b) { return a->id < b->id; });
  for (const entity::Entity* e : ents) {
    h = mix(h, e->id);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &e->pos.x, sizeof(double));
    h = mix(h, bits);
    std::memcpy(&bits, &e->pos.y, sizeof(double));
    h = mix(h, bits);
    std::memcpy(&bits, &e->pos.z, sizeof(double));
    h = mix(h, bits);
  }

  // Chunk iteration order is a hash map's; XOR-combining per-chunk digests
  // keeps the result order-independent.
  std::uint64_t chunks = 0;
  sim.world().for_each_chunk([&](const world::Chunk& c) {
    std::uint64_t ch = 1469598103934665603ull;
    ch = mix(ch, static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.pos().x)));
    ch = mix(ch, static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.pos().z)));
    for (int x = 0; x < world::kChunkSize; ++x) {
      for (int z = 0; z < world::kChunkSize; ++z) {
        for (int y = 0; y < 10; ++y) {  // edits happen near the ground
          ch = mix(ch, static_cast<std::uint64_t>(c.get_local(x, y, z)));
        }
      }
    }
    chunks ^= ch;
  });
  h = mix(h, chunks);

  h = mix(h, sim.network().total_bytes());
  h = mix(h, sim.network().total_frames());
  h = mix(h, sim.network().total_dropped_frames());
  h = mix(h, sim.server().resyncs_served());
  h = mix(h, sim.server().reconnects());
  return h;
}

// ------------------------------------------------------- probabilistic loss

class LossSweep : public ::testing::TestWithParam<int> {};  // loss in percent

TEST_P(LossSweep, RecoversAndConvergesAfterHeal) {
  auto cfg = chaos_config();
  cfg.faults.link.loss = static_cast<double>(GetParam()) / 100.0;
  Simulation sim(cfg);
  for (int i = 0; i < 400; ++i) sim.step_tick();
  if (GetParam() > 0) {
    EXPECT_GT(sim.network().total_dropped_frames(), 0u);
  }
  heal_and_quiesce(sim);
  expect_entities_converged(sim);
  expect_dyconit_ledger_closed(sim);
  expect_wire_ledger_closed(sim);
  sim.finalize();
  if (GetParam() >= 10) {
    // Heavy loss must actually exercise the recovery machinery.
    EXPECT_GT(sim.result().gaps_detected, 0u);
    EXPECT_GT(sim.result().resyncs_requested, 0u);
    EXPECT_GT(sim.result().resyncs_served, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep, ::testing::Values(0, 5, 10, 20),
                         [](const auto& info) {
                           return "loss" + std::to_string(info.param) + "pct";
                         });

// --------------------------------------------------- reorder + duplication

TEST(ChaosTest, ReorderAndDuplicationConverge) {
  auto cfg = chaos_config();
  cfg.fifo_links = false;  // UDP-like: reorder is possible at all
  cfg.faults.link.reorder = 0.2;
  cfg.faults.link.reorder_extra = SimDuration::millis(80);
  cfg.faults.link.duplicate = 0.1;
  Simulation sim(cfg);
  for (int i = 0; i < 400; ++i) sim.step_tick();
  heal_and_quiesce(sim);
  expect_entities_converged(sim);
  expect_dyconit_ledger_closed(sim);
  expect_wire_ledger_closed(sim);
  sim.finalize();
  // Duplicates were delivered and recognized, not applied as new updates.
  EXPECT_GT(sim.result().frames_duplicated, 0u);
  EXPECT_GT(sim.result().dup_or_old_frames, 0u);
  EXPECT_EQ(sim.result().decode_failures, 0u);  // nothing was corrupted
}

TEST(ChaosTest, CorruptionIsRejectedNotApplied) {
  auto cfg = chaos_config();
  cfg.faults.link.corrupt = 0.05;
  Simulation sim(cfg);
  for (int i = 0; i < 400; ++i) sim.step_tick();
  heal_and_quiesce(sim);
  expect_entities_converged(sim);
  sim.finalize();
  // Corrupted frames must surface as decode failures (never crashes or
  // silently-applied garbage) and trigger resyncs that repair the replica.
  EXPECT_GT(sim.result().frames_corrupted, 0u);
  EXPECT_GT(sim.result().decode_failures, 0u);
  EXPECT_GT(sim.result().resyncs_requested, 0u);
}

// ------------------------------------------------------- scheduled faults

TEST(ChaosTest, PartitionAndHeal) {
  auto cfg = chaos_config();
  // Half the fleet loses the server from t=8s to t=11s.
  cfg.faults.events.push_back({ScheduledFault::Kind::Partition, 8.0, 11.0, 0, 0.5});
  Simulation sim(cfg);
  for (int i = 0; i < 400; ++i) sim.step_tick();  // 20 s: well past the heal
  heal_and_quiesce(sim);
  expect_entities_converged(sim);
  expect_dyconit_ledger_closed(sim);
  sim.finalize();
  // The cut produced real damage (refused sends or in-flight drops) and the
  // partitioned bots resynced after the heal.
  EXPECT_GT(sim.result().frames_dropped, 0u);
  EXPECT_GT(sim.result().gaps_detected, 0u);
  EXPECT_GT(sim.result().resyncs_served, 0u);
}

TEST(ChaosTest, CrashAndRestart) {
  auto cfg = chaos_config();
  cfg.faults.events.push_back({ScheduledFault::Kind::Crash, 8.0, 10.0, 0, 0.0});
  Simulation sim(cfg);
  for (int i = 0; i < 400; ++i) sim.step_tick();
  heal_and_quiesce(sim);
  expect_entities_converged(sim);
  sim.finalize();
  // The crashed subscriber came back as a fresh session on the same
  // endpoint: the server must have torn down the old session and re-joined.
  EXPECT_GE(sim.result().reconnects, 1u);
  ASSERT_TRUE(sim.bots()[0]->joined());
}

// ------------------------------------------------------------ determinism

TEST(ChaosTest, SameSeedAndPlanReplayByteIdentical) {
  auto make = [] {
    auto cfg = chaos_config();
    cfg.faults.link.loss = 0.10;
    cfg.faults.link.duplicate = 0.02;
    cfg.faults.events.push_back({ScheduledFault::Kind::Partition, 8.0, 10.0, 0, 0.5});
    cfg.faults.events.push_back({ScheduledFault::Kind::Crash, 12.0, 14.0, 0, 0.0});
    return cfg;
  };
  std::uint64_t hashes[2];
  std::uint64_t dropped[2];
  for (int run = 0; run < 2; ++run) {
    Simulation sim(make());
    for (int i = 0; i < 400; ++i) sim.step_tick();
    hashes[run] = world_hash(sim);
    dropped[run] = sim.network().total_dropped_frames();
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(dropped[0], dropped[1]);
  EXPECT_GT(dropped[0], 0u);  // the plan actually did something
}

// ----------------------------------------- server crash-restart (§13)

// The serving endpoint itself dies mid-run and restarts (DESIGN.md §13) —
// the sim-side mirror of `dyconits_server --crash-at-tick --restart`. Every
// client must notice the dead server through its liveness timer, re-enter
// the join handshake under jittered exponential backoff, and resume its
// session once the server is back; the entire outage, including every
// backoff jitter draw, must replay byte-identically from the seed.
TEST(ChaosTest, ServerCrashRestartSessionsResumeByteIdentical) {
  struct Outcome {
    std::uint64_t hash = 0;
    std::uint64_t liveness_resets = 0;
    std::uint64_t reconnects = 0;
    bool all_joined = false;
  };
  auto run = [] {
    auto cfg = chaos_config(3);
    // Arm outage detection: tight liveness, fast first retry, escalating
    // jittered backoff (the defaults sit out 30 s — too slow for this run).
    cfg.tweak_bot = [](BotConfig& bc) {
      bc.liveness_timeout = SimDuration::seconds(2);
      bc.join_retry = SimDuration::millis(500);
      bc.join_retry_backoff = 2.0;
      bc.join_retry_max = SimDuration::seconds(3);
    };
    Simulation sim(cfg);
    Outcome out;
    for (int i = 0; i < 200; ++i) sim.step_tick();  // 10 s: fleet settled
    sim.network().crash(sim.server().endpoint());
    for (int i = 0; i < 60; ++i) sim.step_tick();   // 3 s blackout
    sim.network().restart(sim.server().endpoint());
    for (int i = 0; i < 300; ++i) sim.step_tick();  // 15 s to resume
    out.hash = world_hash(sim);
    out.reconnects = sim.server().reconnects();
    out.all_joined = true;
    for (const auto& bot : sim.bots()) {
      out.all_joined = out.all_joined && bot->joined();
      out.liveness_resets += bot->liveness_resets();
    }
    return out;
  };

  const Outcome a = run();
  EXPECT_TRUE(a.all_joined) << "a client never resumed after the restart";
  // Every client went through outage detection and a fresh join handshake.
  EXPECT_GE(a.liveness_resets, 3u);
  EXPECT_GE(a.reconnects, 3u);

  const Outcome b = run();
  EXPECT_EQ(a.hash, b.hash) << "server outage did not replay byte-identically";
  EXPECT_EQ(a.liveness_resets, b.liveness_resets);
  EXPECT_EQ(a.reconnects, b.reconnects);
}

// ---------------------------------------------------- long acceptance run

// The ISSUE acceptance scenario: a fixed-seed 10k-tick run at 10% loss with
// one partition-and-heal and one subscriber crash/restart. Post-recovery:
// zero bound violations, exact convergence (no lost non-coalesced update),
// and a byte-identical replay.
TEST(ChaosAcceptance, TenThousandTicksAtTenPercentLoss) {
  auto make = [] {
    auto cfg = chaos_config(4);
    cfg.view_distance = 2;
    cfg.faults.link.loss = 0.10;
    // Faults in the middle of the run; the last ~400 s are recovery.
    cfg.faults.events.push_back({ScheduledFault::Kind::Partition, 30.0, 35.0, 0, 0.5});
    cfg.faults.events.push_back({ScheduledFault::Kind::Crash, 50.0, 55.0, 0, 0.0});
    return cfg;
  };

  std::uint64_t hashes[2];
  for (int run = 0; run < 2; ++run) {
    Simulation sim(make());
    const SimTime heal = SimTime::zero() + SimDuration::seconds(55);
    std::uint64_t bound_violations = 0;
    sim.set_tick_hook([&](Simulation& s, SimTime now) {
      // Post-recovery invariant: once the scheduled faults are over (loss
      // stays on!), no subscriber queue may end a tick over its bounds.
      if (now <= heal + SimDuration::seconds(1)) return;
      s.server().dyconits().for_each([&](dyconit::Dyconit& d) {
        d.for_each_subscriber([&](dyconit::SubscriberId, dyconit::Bounds& b,
                                  const dyconit::SubscriberQueue& q) {
          if (q.violates(b, now)) ++bound_violations;
        });
      });
    });
    for (int i = 0; i < 10000; ++i) sim.step_tick();
    EXPECT_EQ(bound_violations, 0u) << "run " << run;
    hashes[run] = world_hash(sim);

    if (run == 0) {
      // Heal, resync, quiesce: every surviving update must have landed.
      sim.set_tick_hook({});
      heal_and_quiesce(sim);
      expect_entities_converged(sim);
      expect_dyconit_ledger_closed(sim);
      expect_wire_ledger_closed(sim);
      sim.finalize();
      EXPECT_GT(sim.result().gaps_detected, 0u);
      EXPECT_GT(sim.result().resyncs_served, 0u);
      EXPECT_GE(sim.result().reconnects, 1u);
    }
  }
  EXPECT_EQ(hashes[0], hashes[1]) << "chaos run did not replay byte-identically";
}

// A subscriber that stops consuming entirely (frozen client, dead last-mile
// link) must not grow server-side state without bound. With keep-alive
// teardown disabled — the knob that would otherwise end the experiment — the
// *only* thing bounding memory is the overload subsystem: once the inbox
// backlogs, sends divert into the capped egress queue and coalesce there.
TEST(ChaosAcceptance, StalledClientCannotGrowServerMemory) {
  auto cfg = chaos_config(5);
  cfg.view_distance = 2;
  cfg.deterministic_load = true;
  cfg.overload.enabled = true;
  // Never escalate to a disconnect: this test is about the queue cap
  // holding indefinitely, not about the ladder shedding the offender.
  cfg.overload.budget_engage = 1e9;
  cfg.tweak_server = [](server::ServerConfig& scfg) {
    scfg.keepalive_interval_ticks = 0;  // no liveness teardown
  };
  const double stall_at = cfg.warmup.as_seconds() + 5.0;
  cfg.overload_schedule.events.push_back(
      {ScheduledOverload::Kind::Stall, stall_at, 1e9, 0, 0, 1.0});

  Simulation sim(cfg);
  BotClient& stalled = *sim.bots()[0];
  const std::uint64_t cap = cfg.overload.queue_cap_bytes;
  // One tick's un-throttled burst can land in the inbox before the backlog
  // check sees it; beyond that, pending bytes must plateau.
  const std::uint64_t inbox_slack = cfg.overload.backlog_threshold_bytes + 64 * 1024;
  std::uint64_t queue_cap_violations = 0;
  std::uint64_t inbox_violations = 0;
  std::uint64_t peak_queue = 0, peak_inbox = 0;
  // The join burst legitimately puts the whole view's chunks in flight at
  // once (in-flight frames count as pending bytes), so the inbox invariant
  // only starts once the stall is in effect and that burst has landed.
  const SimTime inbox_check_from =
      SimTime::zero() + SimDuration::seconds(static_cast<std::int64_t>(stall_at) + 2);
  sim.set_tick_hook([&](Simulation& s, SimTime now) {
    // Subscriber id == client endpoint id (GameServer::handle_join).
    const std::uint64_t q = s.server().egress_queue_bytes(stalled.endpoint());
    peak_queue = std::max(peak_queue, q);
    if (q > cap) ++queue_cap_violations;
    if (now < inbox_check_from) return;
    const std::uint64_t inbox = s.network().pending_bytes(stalled.endpoint());
    peak_inbox = std::max(peak_inbox, inbox);
    if (inbox > inbox_slack) ++inbox_violations;
  });
  for (int i = 0; i < 10000; ++i) sim.step_tick();

  EXPECT_EQ(queue_cap_violations, 0u)
      << "stalled client's egress queue exceeded the cap (peak " << peak_queue << ")";
  EXPECT_EQ(inbox_violations, 0u)
      << "stalled client's inbox kept growing (peak " << peak_inbox << ")";
  // The scenario must have actually diverted traffic into the queue —
  // otherwise the cap was never exercised.
  const auto& os = sim.server().overload_stats();
  EXPECT_GT(os.egress_queued, 0u);
  EXPECT_GT(os.egress_coalesced + os.egress_evicted_moves + os.egress_dropped_moves,
            0u)
      << "queue never hit coalescing or the cap";
  // The rest of the fleet was not collateral damage.
  for (std::size_t i = 1; i < sim.bots().size(); ++i) {
    EXPECT_TRUE(sim.bots()[i]->joined()) << "bot " << i;
  }
}

// ------------------------------------------------- fault schedule parsing

TEST(FaultScheduleTest, ParsesFullGrammar) {
  FaultScheduleConfig cfg;
  std::string error;
  const std::string text =
      "# comment line\n"
      "loss 0.1\n"
      "duplicate 0.02   # trailing comment\n"
      "corrupt 0.01\n"
      "reorder 0.05 80\n"
      "\n"
      "flap 10 12 3\n"
      "partition 20 25 0.5\n"
      "crash 30 33 0\n";
  ASSERT_TRUE(parse_fault_schedule(text, &cfg, &error)) << error;
  EXPECT_DOUBLE_EQ(cfg.link.loss, 0.1);
  EXPECT_DOUBLE_EQ(cfg.link.duplicate, 0.02);
  EXPECT_DOUBLE_EQ(cfg.link.corrupt, 0.01);
  EXPECT_DOUBLE_EQ(cfg.link.reorder, 0.05);
  EXPECT_EQ(cfg.link.reorder_extra.count_millis(), 80);
  ASSERT_EQ(cfg.events.size(), 3u);
  EXPECT_EQ(cfg.events[0].kind, ScheduledFault::Kind::Flap);
  EXPECT_EQ(cfg.events[0].bot, 3u);
  EXPECT_EQ(cfg.events[1].kind, ScheduledFault::Kind::Partition);
  EXPECT_DOUBLE_EQ(cfg.events[1].fraction, 0.5);
  EXPECT_EQ(cfg.events[2].kind, ScheduledFault::Kind::Crash);
  EXPECT_TRUE(cfg.any());
}

TEST(FaultScheduleTest, RejectsMalformedInputWithLineNumbers) {
  FaultScheduleConfig cfg;
  std::string error;
  EXPECT_FALSE(parse_fault_schedule("loss 1.5\n", &cfg, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(parse_fault_schedule("loss 0.1\nflap 10 5 0\n", &cfg, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_FALSE(parse_fault_schedule("wobble 0.1\n", &cfg, &error));
  EXPECT_NE(error.find("wobble"), std::string::npos);
  EXPECT_FALSE(parse_fault_schedule("partition 1 2 0\n", &cfg, &error));
  // A failed parse leaves *out untouched.
  EXPECT_FALSE(cfg.any());
}

}  // namespace
}  // namespace dyconits::bots
