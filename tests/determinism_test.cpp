// Differential determinism suite (DESIGN.md §9): the parallel flush /
// serialize pipeline must be *byte-identical* to the single-threaded
// oracle. Every run here drives the full stack (server + bots + simulated
// network) from a fixed seed and compares, across --threads values:
//
//   - the network's order-sensitive wire hash (every frame that got on the
//     wire: from, to, tag, seq, payload — see SimNetwork::wire_hash),
//   - a final-state digest (entities, edited ground-truth chunks, wire
//     totals),
//   - the middleware's full Stats ledger, including the FP-sensitive
//     weight_delivered accumulator (equal iff accounting ran in the same
//     order), and per-dyconit end-state counters.
//
// Knobs (all optional, for scripts/verify.sh and local soak):
//   DYCONITS_DET_SEED=N    run only seed N instead of the built-in matrix
//   DYCONITS_DET_SEEDS=K   run only the first K seeds of the matrix
//   DYCONITS_DET_TICKS=N   measured ticks per run (default 1000)
//   DYCONITS_REBASELINE=1  rewrite the golden serial baseline and skip
//
// The GoldenRun baseline pins the *serial* wire stream over time, so a
// behavior change anywhere in the update path shows up as a readable diff
// (first divergent tick + which byte family moved) rather than a silent
// re-agreement between serial and parallel. Regenerate deliberately with
// scripts/rebaseline.sh.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bots/simulation.h"
#include "dyconit/system.h"

namespace dyconits::bots {
namespace {

constexpr std::uint64_t kSeedMatrix[] = {42, 7, 1337, 2024, 99};

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::strtoull(env, nullptr, 10) : fallback;
}

std::size_t det_ticks() {
  return static_cast<std::size_t>(env_u64("DYCONITS_DET_TICKS", 1000));
}

std::vector<std::uint64_t> det_seeds() {
  const char* one = std::getenv("DYCONITS_DET_SEED");
  if (one != nullptr) return {std::strtoull(one, nullptr, 10)};
  std::size_t n = static_cast<std::size_t>(
      env_u64("DYCONITS_DET_SEEDS", std::size(kSeedMatrix)));
  n = std::min(n, std::size(kSeedMatrix));
  return {std::begin(kSeedMatrix), std::begin(kSeedMatrix) + n};
}

/// E2-style workload: a village hotspot, NPC mobs, environmental block
/// ticks, staggered joins — enough cross-dyconit traffic that any ordering
/// bug in the sharded flush shows up in the wire stream.
SimulationConfig det_config(std::uint64_t seed, std::size_t threads,
                            std::size_t ticks) {
  SimulationConfig cfg;
  cfg.players = 16;
  cfg.policy = "director";
  cfg.seed = seed;
  cfg.view_distance = 4;
  cfg.link_latency = SimDuration::millis(25);
  cfg.link_jitter = 0.1;
  cfg.workload.kind = WorkloadKind::Village;
  cfg.joins_per_tick = 4;
  cfg.mobs = 8;
  cfg.env_ticks = 2;
  cfg.warmup = SimDuration::seconds(5);
  // run() executes duration / tick_interval ticks total (warmup included).
  cfg.duration = cfg.warmup + SimDuration::millis(static_cast<std::int64_t>(ticks) * 50);
  cfg.flush_threads = threads;
  // The director's load input must be the modeled tick cost: with measured
  // wall clock in the loop, a slow host (e.g. a TSan build on one core)
  // crosses the tick-pressure threshold differently per thread count and
  // legitimately changes the wire bytes. Byte-identity is only defined over
  // deterministic inputs (DESIGN.md §9).
  cfg.deterministic_load = true;
  return cfg;
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * 1099511628211ull;
}

/// Order-independent digest of final game state (same scheme as the chaos
/// suite): entities sorted by id, per-chunk digests XOR-combined.
std::uint64_t world_digest(Simulation& sim) {
  std::uint64_t h = 1469598103934665603ull;
  std::vector<const entity::Entity*> ents;
  sim.server().entities().for_each(
      [&](const entity::Entity& e) { ents.push_back(&e); });
  std::sort(ents.begin(), ents.end(),
            [](const entity::Entity* a, const entity::Entity* b) { return a->id < b->id; });
  for (const entity::Entity* e : ents) {
    h = fnv_mix(h, e->id);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &e->pos.x, sizeof(double));
    h = fnv_mix(h, bits);
    std::memcpy(&bits, &e->pos.y, sizeof(double));
    h = fnv_mix(h, bits);
    std::memcpy(&bits, &e->pos.z, sizeof(double));
    h = fnv_mix(h, bits);
  }
  std::uint64_t chunks = 0;
  sim.world().for_each_chunk([&](const world::Chunk& c) {
    std::uint64_t ch = 1469598103934665603ull;
    ch = fnv_mix(ch, static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.pos().x)));
    ch = fnv_mix(ch, static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.pos().z)));
    for (int x = 0; x < world::kChunkSize; ++x) {
      for (int z = 0; z < world::kChunkSize; ++z) {
        for (int y = 0; y < 10; ++y) {  // edits happen near the ground
          ch = fnv_mix(ch, static_cast<std::uint64_t>(c.get_local(x, y, z)));
        }
      }
    }
    chunks ^= ch;
  });
  return fnv_mix(h, chunks);
}

/// Everything a run must reproduce exactly, regardless of thread count.
struct RunDigest {
  std::uint64_t wire_hash = 0;
  std::uint64_t world = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t total_frames = 0;
  std::uint64_t server_egress_bytes = 0;
  std::uint64_t resyncs_served = 0;

  // Middleware ledger; weight_delivered is FP and therefore only equal when
  // flush accounting ran in the exact same order as the oracle.
  dyconit::Stats stats;

  // Per-dyconit end state, in canonical id order.
  struct DyconitRow {
    std::string id;
    std::size_t subscribers = 0;
    std::size_t queued = 0;
  };
  std::vector<DyconitRow> dyconits;
};

RunDigest run_digest(std::uint64_t seed, std::size_t threads, std::size_t ticks) {
  Simulation sim(det_config(seed, threads, ticks));
  sim.run();
  RunDigest d;
  d.wire_hash = sim.network().wire_hash();
  d.world = world_digest(sim);
  d.total_bytes = sim.network().total_bytes();
  d.total_frames = sim.network().total_frames();
  d.server_egress_bytes = sim.network().egress_bytes(sim.server().endpoint());
  d.resyncs_served = sim.server().resyncs_served();
  d.stats = sim.server().dyconit_stats();
  sim.server().dyconits().for_each([&](dyconit::Dyconit& dy) {
    d.dyconits.push_back({dy.id().to_string(), dy.subscriber_count(), dy.total_queued()});
  });
  std::sort(d.dyconits.begin(), d.dyconits.end(),
            [](const RunDigest::DyconitRow& a, const RunDigest::DyconitRow& b) {
              return a.id < b.id;
            });
  return d;
}

void expect_same_run(const RunDigest& oracle, const RunDigest& got,
                     const std::string& label) {
  EXPECT_EQ(oracle.wire_hash, got.wire_hash) << label << ": wire bytes diverged";
  EXPECT_EQ(oracle.world, got.world) << label << ": final world state diverged";
  EXPECT_EQ(oracle.total_bytes, got.total_bytes) << label;
  EXPECT_EQ(oracle.total_frames, got.total_frames) << label;
  EXPECT_EQ(oracle.server_egress_bytes, got.server_egress_bytes) << label;
  EXPECT_EQ(oracle.resyncs_served, got.resyncs_served) << label;

  const dyconit::Stats& a = oracle.stats;
  const dyconit::Stats& b = got.stats;
  EXPECT_EQ(a.enqueued, b.enqueued) << label;
  EXPECT_EQ(a.coalesced, b.coalesced) << label;
  EXPECT_EQ(a.delivered, b.delivered) << label;
  EXPECT_EQ(a.dropped_no_subscriber, b.dropped_no_subscriber) << label;
  EXPECT_EQ(a.dropped_unsubscribe, b.dropped_unsubscribe) << label;
  EXPECT_EQ(a.flushes_staleness, b.flushes_staleness) << label;
  EXPECT_EQ(a.flushes_numerical, b.flushes_numerical) << label;
  EXPECT_EQ(a.flushes_forced, b.flushes_forced) << label;
  EXPECT_EQ(a.snapshots_requested, b.snapshots_requested) << label;
  EXPECT_EQ(a.dropped_snapshot, b.dropped_snapshot) << label;
  EXPECT_EQ(a.resyncs, b.resyncs) << label;
  // Bitwise, not approximate: same additions in the same order.
  EXPECT_EQ(a.weight_delivered, b.weight_delivered)
      << label << ": flush accounting order diverged";

  ASSERT_EQ(oracle.dyconits.size(), got.dyconits.size()) << label;
  for (std::size_t i = 0; i < oracle.dyconits.size(); ++i) {
    EXPECT_EQ(oracle.dyconits[i].id, got.dyconits[i].id) << label;
    EXPECT_EQ(oracle.dyconits[i].subscribers, got.dyconits[i].subscribers)
        << label << " " << oracle.dyconits[i].id;
    EXPECT_EQ(oracle.dyconits[i].queued, got.dyconits[i].queued)
        << label << " " << oracle.dyconits[i].id;
  }
}

// ------------------------------------------------- threads-vs-oracle matrix

TEST(ParallelFlush, MatchesSerialOracleAcrossThreadCounts) {
  const std::size_t ticks = det_ticks();
  for (const std::uint64_t seed : det_seeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const RunDigest oracle = run_digest(seed, 1, ticks);
    // Non-trivial run or the comparison proves nothing.
    ASSERT_GT(oracle.stats.delivered, 0u);
    ASSERT_GT(oracle.total_frames, 0u);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      const RunDigest got = run_digest(seed, threads, ticks);
      expect_same_run(oracle, got,
                      "seed " + std::to_string(seed) + " threads " +
                          std::to_string(threads));
    }
  }
}

// ----------------------------------------------------- resync mid-tick

/// Resyncs requested while flush work is sharded across workers must still
/// be served in canonical order: snapshot streams ride the same wire as
/// regular flushes, so any ordering slip breaks byte-identity.
TEST(ParallelFlush, ResyncMidRunDrainsCanonically) {
  const std::size_t ticks = std::min<std::size_t>(det_ticks(), 600);
  auto run_with_resyncs = [&](std::size_t threads) {
    SimulationConfig cfg = det_config(7, threads, ticks);
    cfg.faults.link.loss = 0.03;  // lost frames → gap detection → resyncs too
    Simulation sim(cfg);
    std::uint64_t tick_no = 0;
    sim.set_tick_hook([&](Simulation& s, SimTime) {
      ++tick_no;
      if (tick_no == 150 || tick_no == 151 || tick_no == 320) {
        auto& bots = s.bots();
        if (!bots.empty()) bots[tick_no % bots.size()]->request_resync();
      }
    });
    sim.run();
    RunDigest d;
    d.wire_hash = sim.network().wire_hash();
    d.world = world_digest(sim);
    d.total_frames = sim.network().total_frames();
    d.resyncs_served = sim.server().resyncs_served();
    d.stats = sim.server().dyconit_stats();
    return d;
  };

  const RunDigest oracle = run_with_resyncs(1);
  ASSERT_GT(oracle.resyncs_served, 0u) << "scenario never exercised resync";
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const RunDigest got = run_with_resyncs(threads);
    const std::string label = "threads " + std::to_string(threads);
    EXPECT_EQ(oracle.wire_hash, got.wire_hash) << label;
    EXPECT_EQ(oracle.world, got.world) << label;
    EXPECT_EQ(oracle.total_frames, got.total_frames) << label;
    EXPECT_EQ(oracle.resyncs_served, got.resyncs_served) << label;
    EXPECT_EQ(oracle.stats.weight_delivered, got.stats.weight_delivered) << label;
  }
}

// ----------------------------------------------------- overload ladder

/// The degradation ladder (DESIGN.md §10) is part of the determinism
/// contract: every rung decision is a pure function of the modeled tick
/// cost, so an overloaded run — queues coalescing, bounds widening, chunks
/// deferring, a worst offender kicked — must replay byte-identically across
/// thread counts, transition for transition.
TEST(ParallelFlush, OverloadLadderMatchesSerialOracleAcrossThreads) {
  const std::size_t ticks = std::min<std::size_t>(det_ticks(), 800);

  struct RungCheckpoint {
    std::uint64_t tick = 0;
    int rung = 0;
    std::uint64_t wire_hash = 0;
  };
  struct LadderDigest {
    RunDigest run;
    std::vector<RungCheckpoint> rungs;
    std::uint64_t transitions = 0;
    int final_rung = 0;
  };

  auto run_ladder = [&](std::size_t threads) {
    SimulationConfig cfg = det_config(1337, threads, ticks);
    cfg.server_egress_rate = 192 * 1024;  // constrained uplink
    cfg.overload.enabled = true;
    // Engage on uplink saturation, not CPU exhaustion (the modeled cost at
    // this scale never nears the 50 ms budget); see tests/overload_test.cpp.
    cfg.overload.budget_engage = 0.010;
    cfg.overload.budget_release = 0.004;
    cfg.overload.engage_ticks = 2;
    const double w = cfg.warmup.as_seconds();
    const double end = cfg.duration.as_seconds();
    cfg.overload_schedule.events.push_back(
        {ScheduledOverload::Kind::Stall, w + 1.0, end, 0, 0, 1.0});
    cfg.overload_schedule.events.push_back(
        {ScheduledOverload::Kind::Spam, w + 2.0, end, 0, 0, 4.0});
    cfg.overload_schedule.events.push_back(
        {ScheduledOverload::Kind::Flash, w + 5.0, 0, 0, 4, 1.0});

    Simulation sim(cfg);
    LadderDigest d;
    int last_rung = 0;
    sim.set_tick_hook([&](Simulation& s, SimTime) {
      const int rung = s.server().overload_rung();
      if (rung != last_rung) {
        d.rungs.push_back(
            {s.server().tick_count(), rung, s.network().wire_hash()});
        last_rung = rung;
      }
    });
    sim.run();
    d.run.wire_hash = sim.network().wire_hash();
    d.run.world = world_digest(sim);
    d.run.total_frames = sim.network().total_frames();
    d.run.total_bytes = sim.network().total_bytes();
    d.run.stats = sim.server().dyconit_stats();
    d.transitions = sim.server().overload_stats().ladder_transitions;
    d.final_rung = sim.server().overload_rung();
    return d;
  };

  const LadderDigest oracle = run_ladder(1);
  ASSERT_GT(oracle.transitions, 0u) << "scenario never engaged the ladder";
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const std::string label = "threads " + std::to_string(threads);
    const LadderDigest got = run_ladder(threads);
    EXPECT_EQ(oracle.run.wire_hash, got.run.wire_hash) << label;
    EXPECT_EQ(oracle.run.world, got.run.world) << label;
    EXPECT_EQ(oracle.run.total_frames, got.run.total_frames) << label;
    EXPECT_EQ(oracle.run.total_bytes, got.run.total_bytes) << label;
    EXPECT_EQ(oracle.run.stats.weight_delivered, got.run.stats.weight_delivered)
        << label;
    EXPECT_EQ(oracle.transitions, got.transitions) << label;
    EXPECT_EQ(oracle.final_rung, got.final_rung) << label;
    // Transition-for-transition: same rung at the same tick with the same
    // bytes on the wire at that instant.
    ASSERT_EQ(oracle.rungs.size(), got.rungs.size()) << label;
    for (std::size_t i = 0; i < oracle.rungs.size(); ++i) {
      EXPECT_EQ(oracle.rungs[i].tick, got.rungs[i].tick) << label << " #" << i;
      EXPECT_EQ(oracle.rungs[i].rung, got.rungs[i].rung) << label << " #" << i;
      EXPECT_EQ(oracle.rungs[i].wire_hash, got.rungs[i].wire_hash)
          << label << " #" << i << " (wire diverged before this transition)";
    }
  }
}

// ----------------------------------------------------- shard function

TEST(ParallelFlush, ShardFunctionIsStableAndCoversAllShards) {
  // Pinned values: the shard assignment is part of no determinism contract
  // (any assignment merges back into canonical order), but changing it
  // silently would reshuffle which thread does what — make that a
  // deliberate, visible change.
  EXPECT_EQ(dyconit::flush_shard_of(1, 4), dyconit::flush_shard_of(1, 4));
  EXPECT_EQ(dyconit::flush_shard_of(0, 1), 0u);
  EXPECT_EQ(dyconit::flush_shard_of(12345, 1), 0u);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    std::vector<std::size_t> hits(shards, 0);
    for (std::uint64_t sub = 0; sub < 1000; ++sub) {
      const std::size_t s = dyconit::flush_shard_of(sub, shards);
      ASSERT_LT(s, shards);
      hits[s] += 1;
    }
    // splitmix64 scrambles dense ids well: every shard gets meaningful work.
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_GT(hits[s], 1000 / shards / 2) << "shard " << s << " of " << shards;
    }
  }
}

// ----------------------------------------------------- golden serial run

struct Checkpoint {
  std::uint64_t tick = 0;
  std::uint64_t wire_hash = 0;
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  std::uint64_t move_bytes = 0;   // EntityMove + EntityMoveBatch
  std::uint64_t block_bytes = 0;  // BlockChange + MultiBlockChange
  std::uint64_t chunk_bytes = 0;  // ChunkData
};

constexpr std::uint64_t kGoldenSeed = 42;
constexpr std::uint64_t kGoldenTicks = 600;
constexpr std::uint64_t kGoldenEvery = 25;

std::vector<Checkpoint> golden_run() {
  Simulation sim(det_config(kGoldenSeed, 1, kGoldenTicks));
  const auto server = sim.server().endpoint();
  auto family = [&](protocol::MessageType a, protocol::MessageType b) {
    std::uint64_t n = sim.network().egress_bytes_by_tag(
        server, static_cast<std::uint8_t>(a));
    if (b != a) {
      n += sim.network().egress_bytes_by_tag(server, static_cast<std::uint8_t>(b));
    }
    return n;
  };
  std::vector<Checkpoint> out;
  for (std::uint64_t t = 1; t <= kGoldenTicks; ++t) {
    sim.step_tick();
    if (t % kGoldenEvery != 0) continue;
    Checkpoint c;
    c.tick = t;
    c.wire_hash = sim.network().wire_hash();
    c.frames = sim.network().total_frames();
    c.bytes = sim.network().total_bytes();
    c.move_bytes = family(protocol::MessageType::EntityMove,
                          protocol::MessageType::EntityMoveBatch);
    c.block_bytes = family(protocol::MessageType::BlockChange,
                           protocol::MessageType::MultiBlockChange);
    c.chunk_bytes = family(protocol::MessageType::ChunkData,
                           protocol::MessageType::ChunkData);
    out.push_back(c);
  }
  return out;
}

void write_baseline(const std::string& path, const std::vector<Checkpoint>& cps) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << "# Serial-oracle wire baseline: seed " << kGoldenSeed << ", "
      << kGoldenTicks << " ticks, checkpoint every " << kGoldenEvery << ".\n"
      << "# Regenerate deliberately with scripts/rebaseline.sh after any\n"
      << "# intended change to the update/wire path.\n"
      << "# tick wire_hash frames bytes move_bytes block_bytes chunk_bytes\n";
  char line[160];
  for (const Checkpoint& c : cps) {
    std::snprintf(line, sizeof(line), "%llu %016llx %llu %llu %llu %llu %llu\n",
                  (unsigned long long)c.tick, (unsigned long long)c.wire_hash,
                  (unsigned long long)c.frames, (unsigned long long)c.bytes,
                  (unsigned long long)c.move_bytes, (unsigned long long)c.block_bytes,
                  (unsigned long long)c.chunk_bytes);
    out << line;
  }
}

bool read_baseline(const std::string& path, std::vector<Checkpoint>* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    Checkpoint c;
    std::istringstream ss(line);
    ss >> c.tick >> std::hex >> c.wire_hash >> std::dec >> c.frames >> c.bytes >>
        c.move_bytes >> c.block_bytes >> c.chunk_bytes;
    if (ss.fail()) return false;
    out->push_back(c);
  }
  return true;
}

TEST(GoldenRun, SerialWireBaselineUnchanged) {
  const std::string path = DYCONITS_GOLDEN_FILE;
  const std::vector<Checkpoint> got = golden_run();

  if (env_u64("DYCONITS_REBASELINE", 0) != 0) {
    write_baseline(path, got);
    GTEST_SKIP() << "rebaselined " << path << " (" << got.size() << " checkpoints)";
  }

  std::vector<Checkpoint> want;
  ASSERT_TRUE(read_baseline(path, &want))
      << "missing or unreadable golden baseline " << path
      << " — run scripts/rebaseline.sh";
  ASSERT_EQ(want.size(), got.size()) << "checkpoint count changed";

  for (std::size_t i = 0; i < want.size(); ++i) {
    const Checkpoint& w = want[i];
    const Checkpoint& g = got[i];
    if (w.wire_hash == g.wire_hash && w.frames == g.frames && w.bytes == g.bytes) {
      continue;
    }
    // First divergence: say when and *what kind* of traffic moved, so the
    // diff points at a subsystem instead of just "hash changed".
    std::string hint;
    if (g.move_bytes != w.move_bytes) {
      hint += " move_bytes " + std::to_string(w.move_bytes) + " -> " +
              std::to_string(g.move_bytes) + " (entity movement path)";
    }
    if (g.block_bytes != w.block_bytes) {
      hint += " block_bytes " + std::to_string(w.block_bytes) + " -> " +
              std::to_string(g.block_bytes) + " (block-edit path)";
    }
    if (g.chunk_bytes != w.chunk_bytes) {
      hint += " chunk_bytes " + std::to_string(w.chunk_bytes) + " -> " +
              std::to_string(g.chunk_bytes) + " (chunk streaming/snapshot path)";
    }
    if (hint.empty()) hint = " same per-family byte totals (ordering or non-update frames)";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%016llx vs %016llx",
                  (unsigned long long)w.wire_hash, (unsigned long long)g.wire_hash);
    FAIL() << "serial wire stream diverged from golden baseline at tick " << w.tick
           << " (first divergent checkpoint): wire_hash " << buf << ", frames "
           << w.frames << " -> " << g.frames << ", bytes " << w.bytes << " -> "
           << g.bytes << ";" << hint
           << ". If this change is intended, run scripts/rebaseline.sh.";
  }
}

}  // namespace
}  // namespace dyconits::bots
