// Unit tests for the dyconit core: queues, coalescing, bound enforcement,
// flush reasons, system lifecycle.
#include <gtest/gtest.h>

#include "dyconit/system.h"

namespace dyconits::dyconit {
namespace {

using protocol::EntityMove;

Update move_update(std::uint32_t entity, double x, double weight, SimTime t) {
  Update u;
  u.msg = EntityMove{entity, {x, 0, 0}, 0, 0};
  u.weight = weight;
  u.created = t;
  u.coalesce_key = coalesce_key_entity(entity);
  return u;
}

/// Sink that records every flushed update.
class RecordingSink : public FlushSink {
 public:
  struct Record {
    SubscriberId to;
    protocol::AnyMessage msg;
    SimTime created;
    double weight;
  };

  void deliver(SubscriberId to, const std::vector<FlushedUpdate>& updates) override {
    ++flush_calls;
    for (const auto& u : updates) records.push_back({to, *u.msg, u.created, u.weight});
  }

  std::vector<Record> records;
  int flush_calls = 0;
};

// ---------------------------------------------------------- SubscriberQueue

TEST(SubscriberQueueTest, EnqueueAccumulates) {
  SubscriberQueue q;
  EXPECT_TRUE(q.empty());
  q.enqueue(move_update(1, 1, 0.5, SimTime(100)));
  q.enqueue(move_update(2, 2, 0.25, SimTime(200)));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.total_weight(), 0.75);
  EXPECT_EQ(q.oldest_created(), SimTime(100));
}

TEST(SubscriberQueueTest, CoalesceKeepsLatestPayloadOldestTime) {
  SubscriberQueue q;
  EXPECT_FALSE(q.enqueue(move_update(1, 1.0, 0.5, SimTime(100))));
  EXPECT_TRUE(q.enqueue(move_update(1, 9.0, 0.5, SimTime(200))));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.total_weight(), 1.0);           // weights add
  EXPECT_EQ(q.oldest_created(), SimTime(100));       // staleness from first write
  const auto& mv = std::get<EntityMove>(q.peek().front().msg);
  EXPECT_DOUBLE_EQ(mv.pos.x, 9.0);                   // last write wins
}

TEST(SubscriberQueueTest, DistinctKeysDoNotCoalesce) {
  SubscriberQueue q;
  q.enqueue(move_update(1, 1, 1, SimTime(0)));
  q.enqueue(move_update(2, 2, 1, SimTime(0)));
  EXPECT_EQ(q.size(), 2u);
}

TEST(SubscriberQueueTest, ZeroKeyNeverCoalesces) {
  SubscriberQueue q;
  Update u = move_update(1, 1, 1, SimTime(0));
  u.coalesce_key = 0;
  q.enqueue(u);
  q.enqueue(u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(SubscriberQueueTest, ViolatesStaleness) {
  SubscriberQueue q;
  q.enqueue(move_update(1, 1, 0.1, SimTime(0)));
  const Bounds b{SimDuration::millis(100), 1000.0};
  EXPECT_FALSE(q.violates(b, SimTime(99'000)));
  EXPECT_TRUE(q.violates(b, SimTime(100'000)));  // inclusive at the bound
  EXPECT_EQ(q.violation_reason(b, SimTime(100'000)), FlushReason::Staleness);
}

TEST(SubscriberQueueTest, ViolatesNumerical) {
  SubscriberQueue q;
  q.enqueue(move_update(1, 1, 3.0, SimTime(0)));
  const Bounds b{SimDuration::seconds(100), 5.0};
  EXPECT_FALSE(q.violates(b, SimTime(1)));
  q.enqueue(move_update(1, 2, 2.5, SimTime(1)));  // coalesces; weight 5.5 > 5
  EXPECT_TRUE(q.violates(b, SimTime(2)));
  EXPECT_EQ(q.violation_reason(b, SimTime(2)), FlushReason::Numerical);
}

TEST(SubscriberQueueTest, ZeroBoundsViolateImmediately) {
  SubscriberQueue q;
  q.enqueue(move_update(1, 1, 0.001, SimTime(500)));
  EXPECT_TRUE(q.violates(Bounds::zero(), SimTime(500)));
}

TEST(SubscriberQueueTest, InfiniteBoundsNeverViolate) {
  SubscriberQueue q;
  q.enqueue(move_update(1, 1, 1e12, SimTime(0)));
  EXPECT_FALSE(q.violates(Bounds::infinite(), SimTime(0) + SimDuration::seconds(1000000)));
}

TEST(SubscriberQueueTest, EmptyNeverViolates) {
  SubscriberQueue q;
  EXPECT_FALSE(q.violates(Bounds::zero(), SimTime(1'000'000'000)));
}

TEST(SubscriberQueueTest, TakeAllResets) {
  SubscriberQueue q;
  q.enqueue(move_update(1, 1, 1, SimTime(0)));
  q.enqueue(move_update(2, 2, 2, SimTime(0)));
  const auto taken = q.take_all();
  EXPECT_EQ(taken.size(), 2u);
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.total_weight(), 0.0);
  // Coalesce index is reset too: re-enqueueing the same key starts fresh.
  EXPECT_FALSE(q.enqueue(move_update(1, 5, 1, SimTime(1))));
  EXPECT_EQ(q.size(), 1u);
}

TEST(SubscriberQueueTest, PreservesEnqueueOrder) {
  SubscriberQueue q;
  for (std::uint32_t i = 1; i <= 5; ++i) q.enqueue(move_update(i, i, 1, SimTime(i)));
  q.enqueue(move_update(2, 99, 1, SimTime(10)));  // coalesces into slot 2
  const auto taken = q.take_all();
  ASSERT_EQ(taken.size(), 5u);
  EXPECT_DOUBLE_EQ(std::get<EntityMove>(taken[1].msg).pos.x, 99.0);  // in place
  EXPECT_EQ(std::get<EntityMove>(taken[4].msg).id, 5u);
}

// ----------------------------------------------------------------- Dyconit

class DyconitTest : public ::testing::Test {
 protected:
  Stats stats_;
  Dyconit d_{DyconitId::chunk_entities({0, 0}), Bounds::zero()};
  RecordingSink sink_;
};

TEST_F(DyconitTest, SubscribeUnsubscribe) {
  EXPECT_FALSE(d_.subscribed(1));
  d_.subscribe(1, Bounds::zero());
  EXPECT_TRUE(d_.subscribed(1));
  EXPECT_EQ(d_.subscriber_count(), 1u);
  d_.unsubscribe(1, stats_);
  EXPECT_FALSE(d_.subscribed(1));
  EXPECT_TRUE(d_.idle());
}

TEST_F(DyconitTest, EnqueueFansOutToAllButExcluded) {
  d_.subscribe(1);
  d_.subscribe(2);
  d_.subscribe(3);
  d_.enqueue(move_update(7, 1, 1, SimTime(0)), /*exclude=*/2, stats_);
  EXPECT_EQ(stats_.enqueued, 2u);
  EXPECT_EQ(d_.total_queued(), 2u);
}

TEST_F(DyconitTest, EnqueueWithNoSubscribersDrops) {
  d_.enqueue(move_update(7, 1, 1, SimTime(0)), kNoSubscriber, stats_);
  EXPECT_EQ(stats_.dropped_no_subscriber, 1u);
  EXPECT_EQ(stats_.enqueued, 0u);
}

TEST_F(DyconitTest, EnqueueWithOnlyOriginatorDrops) {
  d_.subscribe(1);
  d_.enqueue(move_update(7, 1, 1, SimTime(0)), /*exclude=*/1, stats_);
  EXPECT_EQ(stats_.dropped_no_subscriber, 1u);
}

TEST_F(DyconitTest, UnsubscribeDropsQueued) {
  d_.subscribe(1);
  d_.enqueue(move_update(7, 1, 1, SimTime(0)), kNoSubscriber, stats_);
  d_.enqueue(move_update(8, 1, 1, SimTime(0)), kNoSubscriber, stats_);
  d_.unsubscribe(1, stats_);
  EXPECT_EQ(stats_.dropped_unsubscribe, 2u);
}

TEST_F(DyconitTest, FlushDueZeroBoundsDeliversEverything) {
  d_.subscribe(1, Bounds::zero());
  d_.enqueue(move_update(7, 1, 1, SimTime(0)), kNoSubscriber, stats_);
  d_.flush_due(SimTime(0), sink_, stats_);
  ASSERT_EQ(sink_.records.size(), 1u);
  EXPECT_EQ(sink_.records[0].to, 1u);
  EXPECT_EQ(stats_.delivered, 1u);
  EXPECT_EQ(stats_.flushes_staleness, 1u);
  EXPECT_EQ(d_.total_queued(), 0u);
}

TEST_F(DyconitTest, FlushDueRespectsBounds) {
  d_.subscribe(1, Bounds{SimDuration::millis(200), 100.0});
  d_.enqueue(move_update(7, 1, 1, SimTime(0)), kNoSubscriber, stats_);
  d_.flush_due(SimTime(0) + SimDuration::millis(100), sink_, stats_);
  EXPECT_TRUE(sink_.records.empty());  // within bounds: hold
  d_.flush_due(SimTime(0) + SimDuration::millis(200), sink_, stats_);
  EXPECT_EQ(sink_.records.size(), 1u);
}

TEST_F(DyconitTest, NumericalBoundTriggersFlush) {
  d_.subscribe(1, Bounds{SimDuration::seconds(1000), 2.0});
  d_.enqueue(move_update(7, 1, 1.5, SimTime(0)), kNoSubscriber, stats_);
  d_.flush_due(SimTime(1), sink_, stats_);
  EXPECT_TRUE(sink_.records.empty());
  d_.enqueue(move_update(7, 2, 1.5, SimTime(1)), kNoSubscriber, stats_);  // 3.0 > 2
  d_.flush_due(SimTime(2), sink_, stats_);
  ASSERT_EQ(sink_.records.size(), 1u);  // coalesced into one update
  EXPECT_EQ(stats_.flushes_numerical, 1u);
  EXPECT_DOUBLE_EQ(sink_.records[0].weight, 3.0);
}

TEST_F(DyconitTest, PerSubscriberBoundsIndependent) {
  d_.subscribe(1, Bounds::zero());
  d_.subscribe(2, Bounds::infinite());
  d_.enqueue(move_update(7, 1, 1, SimTime(0)), kNoSubscriber, stats_);
  d_.flush_due(SimTime(0), sink_, stats_);
  ASSERT_EQ(sink_.records.size(), 1u);
  EXPECT_EQ(sink_.records[0].to, 1u);
  EXPECT_EQ(d_.total_queued(), 1u);  // subscriber 2 still holds it
}

TEST_F(DyconitTest, ForcedFlushDeliversRegardless) {
  d_.subscribe(1, Bounds::infinite());
  d_.enqueue(move_update(7, 1, 1, SimTime(0)), kNoSubscriber, stats_);
  d_.flush_all(SimTime(1), sink_, stats_);
  EXPECT_EQ(sink_.records.size(), 1u);
  EXPECT_EQ(stats_.flushes_forced, 1u);
}

TEST_F(DyconitTest, FlushSubscriberOnlyTouchesOne) {
  d_.subscribe(1, Bounds::infinite());
  d_.subscribe(2, Bounds::infinite());
  d_.enqueue(move_update(7, 1, 1, SimTime(0)), kNoSubscriber, stats_);
  d_.flush_subscriber(1, SimTime(1), sink_, stats_);
  EXPECT_EQ(sink_.records.size(), 1u);
  EXPECT_EQ(d_.total_queued(), 1u);
}

TEST_F(DyconitTest, EmptyQueueFlushIsNoop) {
  d_.subscribe(1, Bounds::zero());
  d_.flush_all(SimTime(0), sink_, stats_);
  EXPECT_EQ(sink_.flush_calls, 0);
  EXPECT_EQ(stats_.flushes_forced, 0u);
}

TEST_F(DyconitTest, ResubscribeUpdatesBoundsKeepsQueue) {
  d_.subscribe(1, Bounds::infinite());
  d_.enqueue(move_update(7, 1, 1, SimTime(0)), kNoSubscriber, stats_);
  d_.subscribe(1, Bounds::zero());  // re-subscribe with tighter bounds
  EXPECT_EQ(d_.total_queued(), 1u);
  d_.flush_due(SimTime(1), sink_, stats_);
  EXPECT_EQ(sink_.records.size(), 1u);
}

TEST_F(DyconitTest, BoundsOfFallsBackToDefault) {
  Dyconit d(DyconitId::global_blocks(), Bounds{SimDuration::millis(42), 7.0});
  EXPECT_EQ(d.bounds_of(99).staleness.count_millis(), 42);
  d.subscribe(5, Bounds::zero());
  EXPECT_TRUE(d.bounds_of(5).is_zero());
}

TEST_F(DyconitTest, SnapshotThresholdDropsQueueAndAsksForSnapshot) {
  struct SnapshotSink : RecordingSink {
    void request_snapshot(SubscriberId to, const DyconitId& unit) override {
      requests.emplace_back(to, unit);
    }
    std::vector<std::pair<SubscriberId, DyconitId>> requests;
  } sink;

  d_.subscribe(1, Bounds::infinite());
  for (std::uint32_t i = 1; i <= 10; ++i) {
    d_.enqueue(move_update(i, i, 1, SimTime(0)), kNoSubscriber, stats_);
  }
  d_.flush_due(SimTime(1), sink, stats_, /*snapshot_threshold=*/4);
  EXPECT_TRUE(sink.records.empty());          // deltas were dropped, not sent
  ASSERT_EQ(sink.requests.size(), 1u);
  EXPECT_EQ(sink.requests[0].first, 1u);
  EXPECT_EQ(sink.requests[0].second, d_.id());
  EXPECT_EQ(stats_.snapshots_requested, 1u);
  EXPECT_EQ(stats_.dropped_snapshot, 10u);
  EXPECT_EQ(d_.total_queued(), 0u);
}

TEST_F(DyconitTest, SnapshotThresholdZeroDisables) {
  d_.subscribe(1, Bounds::infinite());
  for (std::uint32_t i = 1; i <= 10; ++i) {
    d_.enqueue(move_update(i, i, 1, SimTime(0)), kNoSubscriber, stats_);
  }
  d_.flush_due(SimTime(1), sink_, stats_, 0);
  EXPECT_EQ(stats_.snapshots_requested, 0u);
  EXPECT_EQ(d_.total_queued(), 10u);
}

TEST_F(DyconitTest, QueueAtThresholdIsNotSnapshotted) {
  d_.subscribe(1, Bounds::zero());
  for (std::uint32_t i = 1; i <= 4; ++i) {
    d_.enqueue(move_update(i, i, 1, SimTime(0)), kNoSubscriber, stats_);
  }
  d_.flush_due(SimTime(0), sink_, stats_, 4);  // size == threshold: normal flush
  EXPECT_EQ(stats_.snapshots_requested, 0u);
  EXPECT_EQ(sink_.records.size(), 4u);
}

TEST_F(DyconitTest, StalenessRecordingAtFlush) {
  stats_.record_staleness = true;
  d_.subscribe(1, Bounds{SimDuration::millis(100), 1e9});
  d_.enqueue(move_update(7, 1, 1, SimTime(0)), kNoSubscriber, stats_);
  d_.flush_due(SimTime(0) + SimDuration::millis(150), sink_, stats_);
  ASSERT_EQ(stats_.staleness_ms.size(), 1u);
  EXPECT_DOUBLE_EQ(stats_.staleness_ms[0], 150.0);
}

// ----------------------------------------------------------- DyconitSystem

class SystemTest : public ::testing::Test {
 protected:
  SimClock clock_;
  DyconitSystem sys_{clock_};
  RecordingSink sink_;
};

TEST_F(SystemTest, GetOrCreateIsIdempotent) {
  Dyconit& a = sys_.get_or_create(DyconitId::chunk_blocks({1, 1}));
  Dyconit& b = sys_.get_or_create(DyconitId::chunk_blocks({1, 1}));
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(sys_.dyconit_count(), 1u);
  EXPECT_EQ(sys_.find(DyconitId::chunk_blocks({2, 2})), nullptr);
}

TEST_F(SystemTest, UpdateStampsCreationTime) {
  clock_.advance(SimDuration::millis(123));
  sys_.subscribe(DyconitId::global_entities(), 1, Bounds::infinite());
  Update u = move_update(7, 1, 1, SimTime::zero());
  u.created = SimTime::zero();  // unset: system stamps it
  sys_.update(DyconitId::global_entities(), u);
  sys_.flush_all(sink_);
  ASSERT_EQ(sink_.records.size(), 1u);
  EXPECT_EQ(sink_.records[0].created.count_micros(), 123000);
}

TEST_F(SystemTest, TickFlushesDueQueues) {
  const auto id = DyconitId::chunk_entities({0, 0});
  sys_.subscribe(id, 1, Bounds{SimDuration::millis(100), 1e9});
  sys_.update(id, move_update(7, 1, 1, clock_.now()));
  sys_.tick(sink_);
  EXPECT_TRUE(sink_.records.empty());
  clock_.advance(SimDuration::millis(100));
  sys_.tick(sink_);
  EXPECT_EQ(sink_.records.size(), 1u);
}

TEST_F(SystemTest, TickGarbageCollectsSubscriberlessDyconits) {
  const auto id = DyconitId::chunk_blocks({5, 5});
  sys_.subscribe(id, 1, Bounds::zero());
  EXPECT_EQ(sys_.dyconit_count(), 1u);
  sys_.unsubscribe(id, 1);
  sys_.tick(sink_);
  EXPECT_EQ(sys_.dyconit_count(), 0u);
}

TEST_F(SystemTest, GcSparesDyconitsWithSubscribers) {
  const auto id = DyconitId::chunk_blocks({1, 2});
  sys_.subscribe(id, 1, Bounds::infinite());
  for (int i = 0; i < 10; ++i) sys_.tick(sink_);
  EXPECT_NE(sys_.find(id), nullptr);
  EXPECT_TRUE(sys_.is_subscribed(id, 1));
}

TEST_F(SystemTest, UnsubscribeAllClearsEverySubscription) {
  sys_.subscribe(DyconitId::chunk_blocks({0, 0}), 1, Bounds::infinite());
  sys_.subscribe(DyconitId::chunk_entities({0, 0}), 1, Bounds::infinite());
  sys_.subscribe(DyconitId::chunk_blocks({0, 0}), 2, Bounds::infinite());
  sys_.update(DyconitId::chunk_blocks({0, 0}), move_update(9, 1, 1, clock_.now()));
  sys_.unsubscribe_all(1);
  EXPECT_FALSE(sys_.is_subscribed(DyconitId::chunk_blocks({0, 0}), 1));
  EXPECT_TRUE(sys_.is_subscribed(DyconitId::chunk_blocks({0, 0}), 2));
  EXPECT_EQ(sys_.stats().dropped_unsubscribe, 1u);
}

TEST_F(SystemTest, FlushSubscriberAcrossDyconits) {
  sys_.subscribe(DyconitId::chunk_entities({0, 0}), 1, Bounds::infinite());
  sys_.subscribe(DyconitId::chunk_entities({1, 0}), 1, Bounds::infinite());
  sys_.update(DyconitId::chunk_entities({0, 0}), move_update(7, 1, 1, clock_.now()));
  sys_.update(DyconitId::chunk_entities({1, 0}), move_update(8, 1, 1, clock_.now()));
  sys_.flush_subscriber(1, sink_);
  EXPECT_EQ(sink_.records.size(), 2u);
}

TEST_F(SystemTest, SetBoundsAffectsFlushDecision) {
  const auto id = DyconitId::chunk_entities({0, 0});
  sys_.subscribe(id, 1, Bounds::infinite());
  sys_.update(id, move_update(7, 1, 1, clock_.now()));
  clock_.advance(SimDuration::seconds(10));
  sys_.tick(sink_);
  EXPECT_TRUE(sink_.records.empty());
  sys_.set_bounds(id, 1, Bounds::zero());
  sys_.tick(sink_);
  EXPECT_EQ(sink_.records.size(), 1u);
}

TEST_F(SystemTest, TotalQueuedCounts) {
  sys_.subscribe(DyconitId::chunk_entities({0, 0}), 1, Bounds::infinite());
  sys_.subscribe(DyconitId::chunk_entities({0, 0}), 2, Bounds::infinite());
  sys_.update(DyconitId::chunk_entities({0, 0}), move_update(7, 1, 1, clock_.now()));
  EXPECT_EQ(sys_.total_queued(), 2u);
}

// --------------------------------------------------------------- DyconitId

TEST(DyconitIdTest, RegionMapping) {
  EXPECT_EQ(DyconitId::region_blocks({0, 0}), DyconitId::region_blocks({3, 3}));
  EXPECT_NE(DyconitId::region_blocks({3, 3}), DyconitId::region_blocks({4, 3}));
  EXPECT_EQ(DyconitId::region_blocks({-1, -1}), DyconitId::region_blocks({-4, -4}));
  EXPECT_NE(DyconitId::region_blocks({-1, -1}), DyconitId::region_blocks({0, 0}));
}

TEST(DyconitIdTest, DomainsDistinct) {
  EXPECT_NE(DyconitId::chunk_blocks({1, 1}), DyconitId::chunk_entities({1, 1}));
  EXPECT_NE(DyconitId::global_blocks(), DyconitId::global_entities());
}

TEST(DyconitIdTest, CenterLocations) {
  const auto c = DyconitId::chunk_blocks({2, -1}).center();
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->x, 2 * 16 + 8.0);
  EXPECT_DOUBLE_EQ(c->z, -16 + 8.0);
  EXPECT_FALSE(DyconitId::global_blocks().center().has_value());
  EXPECT_FALSE(DyconitId::custom(7).center().has_value());
  const auto r = DyconitId::region_entities({0, 0}).center();
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->x, 32.0);  // region 0 spans chunks 0..3 = blocks 0..63
}

TEST(DyconitIdTest, EntityDomainPredicate) {
  EXPECT_TRUE(DyconitId::chunk_entities({0, 0}).is_entity_domain());
  EXPECT_TRUE(DyconitId::global_entities().is_entity_domain());
  EXPECT_FALSE(DyconitId::chunk_blocks({0, 0}).is_entity_domain());
}

TEST(DyconitIdTest, ToStringIsReadable) {
  EXPECT_EQ(DyconitId::chunk_blocks({3, -4}).to_string(), "chunk-blocks(3,-4)");
}

}  // namespace
}  // namespace dyconits::dyconit
