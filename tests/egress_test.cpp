// Egress memory model tests (DESIGN.md §11): the exact sizing visitor, the
// frame-buffer pool, encode-once shared broadcast frames, ByteWriter buffer
// reuse, and the steady-state zero-allocation contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bots/simulation.h"
#include "net/buffer_pool.h"
#include "net/bytes.h"
#include "net/shared_frame.h"
#include "protocol/codec.h"
#include "protocol/messages.h"
#include "util/rng.h"

namespace dyconits::protocol {
namespace {

using world::Block;
using world::BlockPos;
using world::ChunkPos;
using world::Vec3;

// ------------------------------------------------- randomized instances

// Values that exercise every varint width: shift a uniform value by a random
// amount so short and long encodings both appear.
std::uint32_t any_width_u32(Rng& rng) {
  return static_cast<std::uint32_t>(rng.next_u64() >> (32 + rng.next_below(32)));
}

std::int32_t any_coord(Rng& rng) {
  return static_cast<std::int32_t>(rng.next_in(-2'000'000, 2'000'000));
}

std::string any_string(Rng& rng) {
  std::string s;
  const std::size_t n = rng.next_below(48);
  for (std::size_t i = 0; i < n; ++i) {
    s.push_back(static_cast<char>(32 + rng.next_below(95)));
  }
  return s;
}

Vec3 any_vec(Rng& rng) {
  return {rng.next_double_in(-1e4, 1e4), rng.next_double_in(0.0, 256.0),
          rng.next_double_in(-1e4, 1e4)};
}

BlockPos any_block_pos(Rng& rng) {
  return {any_coord(rng), static_cast<std::int32_t>(rng.next_below(64)), any_coord(rng)};
}

ChunkPos any_chunk_pos(Rng& rng) { return {any_coord(rng), any_coord(rng)}; }

Block any_block(Rng& rng) {
  return static_cast<Block>(rng.next_below(world::kBlockPaletteSize));
}

float any_angle(Rng& rng) { return static_cast<float>(rng.next_double_in(-360, 720)); }

EntityMove any_move(Rng& rng) {
  return {any_width_u32(rng), any_vec(rng), any_angle(rng), any_angle(rng)};
}

std::vector<std::uint8_t> any_blob(Rng& rng) {
  std::vector<std::uint8_t> b(rng.next_below(3000));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_below(256));
  return b;
}

/// One randomized instance of every message type in the AnyMessage variant,
/// including the unsequenced JoinRefused (tag 23) and both resync messages.
std::vector<AnyMessage> all_types_randomized(Rng& rng) {
  std::vector<AnyMessage> out;
  out.emplace_back(JoinRequest{any_string(rng)});
  out.emplace_back(PlayerMove{any_vec(rng), any_angle(rng), any_angle(rng)});
  out.emplace_back(PlayerDig{any_block_pos(rng)});
  out.emplace_back(PlayerPlace{any_block_pos(rng), any_block(rng)});
  out.emplace_back(KeepAliveReply{any_width_u32(rng)});
  out.emplace_back(ChatSend{any_string(rng)});
  out.emplace_back(ResyncRequest{any_width_u32(rng)});
  out.emplace_back(JoinAck{any_width_u32(rng), any_vec(rng),
                           static_cast<std::uint8_t>(rng.next_below(256))});
  out.emplace_back(ChunkData{any_chunk_pos(rng), any_blob(rng)});
  out.emplace_back(UnloadChunk{any_chunk_pos(rng)});
  out.emplace_back(BlockChange{any_block_pos(rng), any_block(rng)});
  {
    MultiBlockChange mbc{any_chunk_pos(rng), {}};
    const std::size_t n = rng.next_below(50);
    for (std::size_t i = 0; i < n; ++i) {
      mbc.entries.push_back({static_cast<std::uint8_t>(rng.next_below(16)),
                             static_cast<std::uint8_t>(rng.next_below(64)),
                             static_cast<std::uint8_t>(rng.next_below(16)),
                             any_block(rng)});
    }
    out.emplace_back(std::move(mbc));
  }
  out.emplace_back(EntitySpawn{any_width_u32(rng),
                               static_cast<entity::EntityKind>(rng.next_below(3)),
                               any_vec(rng), any_angle(rng), any_angle(rng),
                               any_string(rng),
                               static_cast<std::uint16_t>(rng.next_below(65536))});
  out.emplace_back(EntityDespawn{any_width_u32(rng)});
  out.emplace_back(any_move(rng));
  {
    EntityMoveBatch batch;
    const std::size_t n = rng.next_below(50);
    for (std::size_t i = 0; i < n; ++i) batch.moves.push_back(any_move(rng));
    out.emplace_back(std::move(batch));
  }
  out.emplace_back(KeepAlive{any_width_u32(rng)});
  out.emplace_back(ChatBroadcast{any_width_u32(rng), any_string(rng)});
  out.emplace_back(InventoryUpdate{any_block(rng), any_width_u32(rng)});
  out.emplace_back(ResyncAck{any_width_u32(rng)});
  out.emplace_back(JoinRefused{static_cast<std::uint8_t>(rng.next_below(256)),
                               any_width_u32(rng)});
  out.emplace_back(TickBarrier{any_width_u32(rng)});
  out.emplace_back(TickBarrierAck{any_width_u32(rng)});
  return out;
}

// -------------------------------------------------------- sizing visitor

TEST(WireSizeOfTest, ExactForEveryTypeRandomized) {
  Rng rng(0xE14E14ull);
  // Every variant alternative appears in the first batch; assert that so a
  // future message type cannot silently skip the property.
  ASSERT_EQ(all_types_randomized(rng).size(), std::variant_size_v<AnyMessage>);
  for (int iter = 0; iter < 300; ++iter) {
    for (const AnyMessage& m : all_types_randomized(rng)) {
      const net::Frame f = encode(m);
      EXPECT_EQ(wire_size_of(m), f.wire_size())
          << "type=" << message_type_name(type_of(m)) << " iter=" << iter;
    }
  }
}

TEST(WireSizeOfTest, ExactAtVarintBoundaries) {
  // Payload sizes straddling the 1->2 byte varint length boundary.
  for (const std::size_t n : {0u, 1u, 127u, 128u, 129u, 16383u, 16384u}) {
    const AnyMessage m{ChunkData{{0, 0}, std::vector<std::uint8_t>(n, 7)}};
    EXPECT_EQ(wire_size_of(m), encode(m).wire_size()) << "rle bytes=" << n;
  }
}

// ----------------------------------------------------------- buffer pool

TEST(BufferPoolTest, RecyclesCapacityAndCountsHits) {
  net::BufferPool& pool = net::BufferPool::instance();
  pool.trim();
  pool.reset_stats();

  std::vector<std::uint8_t> buf = pool.acquire();  // cold pool: a miss
  buf.resize(1000);
  const std::size_t cap = buf.capacity();
  pool.release(std::move(buf));

  std::vector<std::uint8_t> again = pool.acquire();  // served from freelist
  EXPECT_TRUE(again.empty());
  EXPECT_GE(again.capacity(), cap);

  const net::BufferPool::Stats st = pool.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.releases, 1u);
  EXPECT_EQ(st.dropped, 0u);
  pool.release(std::move(again));
}

TEST(BufferPoolTest, DropsTinyBuffers) {
  net::BufferPool& pool = net::BufferPool::instance();
  pool.trim();
  pool.reset_stats();
  pool.release(std::vector<std::uint8_t>{});  // never grown: nothing to keep
  const net::BufferPool::Stats st = pool.stats();
  EXPECT_EQ(st.releases, 1u);
  EXPECT_EQ(st.dropped, 1u);
  EXPECT_EQ(st.pooled, 0u);
}

TEST(BufferPoolTest, HighWaterSurvivesStatsReset) {
  net::BufferPool& pool = net::BufferPool::instance();
  pool.trim();
  pool.reset_stats();
  for (int i = 0; i < 3; ++i) {
    pool.release(std::vector<std::uint8_t>(64));
  }
  EXPECT_EQ(pool.stats().pooled, 3u);
  EXPECT_GE(pool.stats().high_water, 3u);
  pool.reset_stats();
  EXPECT_EQ(pool.stats().releases, 0u);
  EXPECT_EQ(pool.stats().pooled, 3u);       // freelist untouched
  EXPECT_GE(pool.stats().high_water, 3u);   // peak is not a window counter
  pool.trim();
  EXPECT_EQ(pool.stats().pooled, 0u);
}

// ---------------------------------------------------------- shared frames

TEST(SharedFrameTest, InstanceMatchesPlainEncode) {
  Rng rng(77);
  for (const AnyMessage& m : all_types_randomized(rng)) {
    const net::Frame plain = encode(m);
    net::SharedFrame shared = encode_shared(m);
    ASSERT_TRUE(shared.valid());
    const net::Frame inst = shared.instance(42, SimTime::zero() + SimDuration::millis(5));
    EXPECT_EQ(inst.tag, plain.tag);
    EXPECT_EQ(inst.payload, plain.payload);
    EXPECT_EQ(inst.seq, 42u);
    EXPECT_EQ(inst.wire_size(), wire_size_of(m));
  }
}

TEST(SharedFrameTest, InstancesAreIndependentCopies) {
  const AnyMessage m{ChatBroadcast{9, "hello"}};
  net::SharedFrame shared = encode_shared(m);
  net::Frame a = shared.instance(1, {});
  net::Frame b = shared.instance(2, {});
  ASSERT_FALSE(a.payload.empty());
  a.payload[0] ^= 0xFF;  // fault-layer style mutation
  EXPECT_NE(a.payload, b.payload);
  EXPECT_EQ(b.payload, shared.payload());  // master unaffected
}

TEST(SharedFrameTest, MasterPayloadReturnsToPool) {
  net::BufferPool& pool = net::BufferPool::instance();
  pool.trim();
  pool.reset_stats();
  {
    // Payload comfortably above kMinCapacity so the release is kept.
    net::SharedFrame shared =
        encode_shared(AnyMessage{ChatBroadcast{7, "a broadcast worth pooling"}});
    ASSERT_TRUE(shared.valid());
  }
  // The master died: its payload buffer was released back (and kept, since
  // encode reserves more than kMinCapacity).
  EXPECT_EQ(pool.stats().releases, 1u);
  EXPECT_EQ(pool.stats().pooled, 1u);
}

// -------------------------------------------------------------- bytewriter

TEST(ByteWriterTest, AdoptedBufferIsClearedButKeepsCapacity) {
  std::vector<std::uint8_t> recycled(500, 0xAB);
  const std::size_t cap = recycled.capacity();
  net::ByteWriter w(std::move(recycled));
  w.u8(1);
  w.varint(300);
  const std::vector<std::uint8_t> bytes = w.take();

  net::ByteWriter fresh;
  fresh.u8(1);
  fresh.varint(300);
  EXPECT_EQ(bytes, fresh.take());  // stale contents never leak into output
  EXPECT_GE(bytes.capacity(), cap);
}

TEST(ByteWriterTest, ClearResetsForReuse) {
  net::ByteWriter w;
  const std::vector<std::uint8_t> big(100, 3);
  w.blob(big.data(), big.size());
  w.clear();
  w.u8(9);
  ASSERT_EQ(w.bytes().size(), 1u);
  std::uint8_t v = 0;
  net::ByteReader r(w.bytes());
  ASSERT_TRUE(r.u8(v));
  EXPECT_EQ(v, 9);
}

// -------------------------------------------- steady-state zero allocation

TEST(EgressAllocationTest, SteadyStateFrameBufferAllocationsAreZero) {
  // After warmup the buffer population covers the working set: every
  // acquire on the encode/stage/send/poll/decode loop is a pool hit. Pool
  // misses over the measurement window are exactly the frame-buffer heap
  // allocations the egress pipeline still performs.
  bots::SimulationConfig cfg;
  cfg.players = 20;
  cfg.duration = SimDuration::seconds(30);
  cfg.warmup = SimDuration::seconds(15);
  cfg.seed = 42;
  cfg.workload.kind = bots::WorkloadKind::Village;
  bots::Simulation sim(cfg);
  const bots::SimulationResult r = sim.run();
  EXPECT_EQ(r.pool_misses, 0u)
      << "steady-state ticks must not heap-allocate frame buffers "
      << "(misses/tick=" << r.pool_misses_per_tick << ")";
  EXPECT_GT(r.pool_hits, 0u);
}

}  // namespace
}  // namespace dyconits::protocol
