// Unit tests for src/entity: registry, spatial index, walking kinematics.
#include <gtest/gtest.h>

#include "entity/movement.h"
#include "entity/registry.h"
#include "world/terrain.h"
#include "world/world.h"

namespace dyconits::entity {
namespace {

using world::BlockPos;
using world::ChunkPos;
using world::Vec3;

// ---------------------------------------------------------------- registry

TEST(RegistryTest, CreateAssignsUniqueNonZeroIds) {
  EntityRegistry r;
  const Entity& a = r.create(EntityKind::Player, {0, 1, 0});
  const Entity& b = r.create(EntityKind::Mob, {5, 1, 5});
  EXPECT_NE(a.id, kInvalidEntity);
  EXPECT_NE(a.id, b.id);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(b.kind, EntityKind::Mob);
}

TEST(RegistryTest, FindAndRemove) {
  EntityRegistry r;
  const EntityId id = r.create(EntityKind::Player, {0, 1, 0}).id;
  EXPECT_NE(r.find(id), nullptr);
  EXPECT_TRUE(r.remove(id));
  EXPECT_EQ(r.find(id), nullptr);
  EXPECT_FALSE(r.remove(id));
  EXPECT_EQ(r.size(), 0u);
}

TEST(RegistryTest, ReferencesStableAcrossInserts) {
  EntityRegistry r;
  Entity& first = r.create(EntityKind::Player, {1, 1, 1});
  const EntityId id = first.id;
  for (int i = 0; i < 100; ++i) r.create(EntityKind::Mob, {0, 1, 0});
  EXPECT_EQ(&first, r.find(id));  // unique_ptr storage: no reallocation moves
}

TEST(RegistryTest, MoveUpdatesSpatialIndex) {
  EntityRegistry r;
  Entity& e = r.create(EntityKind::Player, {1, 1, 1});
  EXPECT_NE(r.entities_in_chunk({0, 0}), nullptr);
  r.move(e, {100, 1, 100});
  EXPECT_EQ(r.entities_in_chunk({0, 0}), nullptr);  // bucket cleaned up
  const auto* bucket = r.entities_in_chunk(ChunkPos::of_block({100, 1, 100}));
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->count(e.id), 1u);
}

TEST(RegistryTest, MoveBumpsRevision) {
  EntityRegistry r;
  Entity& e = r.create(EntityKind::Player, {1, 1, 1});
  const auto rev = e.revision;
  r.move(e, {2, 1, 2});
  EXPECT_GT(e.revision, rev);
}

TEST(RegistryTest, MoveWithinChunkKeepsBucket) {
  EntityRegistry r;
  Entity& e = r.create(EntityKind::Player, {1, 1, 1});
  r.move(e, {2.5, 1, 3.5});
  const auto* bucket = r.entities_in_chunk({0, 0});
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(bucket->count(e.id), 1u);
}

TEST(RegistryTest, QueryChunkRadius) {
  EntityRegistry r;
  const EntityId near_id = r.create(EntityKind::Player, {8, 1, 8}).id;        // chunk 0,0
  const EntityId edge_id = r.create(EntityKind::Player, {8 + 32, 1, 8}).id;   // chunk 2,0
  const EntityId far_id = r.create(EntityKind::Player, {8 + 160, 1, 8}).id;   // chunk 10,0

  const auto within2 = r.query_chunk_radius({0, 0}, 2);
  EXPECT_EQ(within2.size(), 2u);
  EXPECT_TRUE(std::count(within2.begin(), within2.end(), near_id) == 1);
  EXPECT_TRUE(std::count(within2.begin(), within2.end(), edge_id) == 1);
  EXPECT_TRUE(std::count(within2.begin(), within2.end(), far_id) == 0);

  const auto within0 = r.query_chunk_radius({0, 0}, 0);
  EXPECT_EQ(within0.size(), 1u);
}

TEST(RegistryTest, ForEachVisitsAll) {
  EntityRegistry r;
  for (int i = 0; i < 10; ++i) r.create(EntityKind::Player, {static_cast<double>(i), 1, 0});
  int count = 0;
  r.for_each([&](Entity&) { ++count; });
  EXPECT_EQ(count, 10);
}

TEST(RegistryTest, RemoveCleansIndex) {
  EntityRegistry r;
  const EntityId id = r.create(EntityKind::Player, {1, 1, 1}).id;
  EXPECT_TRUE(r.remove(id));
  EXPECT_EQ(r.entities_in_chunk({0, 0}), nullptr);
  EXPECT_TRUE(r.query_chunk_radius({0, 0}, 1).empty());
}

// ---------------------------------------------------------------- movement

class MovementTest : public ::testing::Test {
 protected:
  /// Flat world: bedrock at y=0, stand at y=1.
  world::World flat_;
};

TEST_F(MovementTest, StepMovesTowardTarget) {
  Vec3 out;
  const auto res = step_toward(flat_, {0.5, 1, 0.5}, {10.5, 0, 0.5}, 4.0, 0.05, out);
  EXPECT_TRUE(res.moved);
  EXPECT_FALSE(res.blocked);
  EXPECT_NEAR(out.x, 0.5 + 0.2, 1e-9);
  EXPECT_DOUBLE_EQ(out.z, 0.5);
  EXPECT_DOUBLE_EQ(out.y, 1.0);  // stands on bedrock
}

TEST_F(MovementTest, DoesNotOvershoot) {
  Vec3 out;
  step_toward(flat_, {0.5, 1, 0.5}, {0.6, 0, 0.5}, 4.0, 1.0, out);
  EXPECT_NEAR(out.x, 0.6, 1e-9);
}

TEST_F(MovementTest, ZeroDistanceNoMove) {
  Vec3 out;
  const auto res = step_toward(flat_, {1, 1, 1}, {1, 0, 1}, 4.0, 0.05, out);
  EXPECT_FALSE(res.moved);
  EXPECT_EQ(out, (Vec3{1, 1, 1}));
}

TEST_F(MovementTest, StepsUpSingleBlock) {
  flat_.set_block({2, 1, 0}, world::Block::Stone);  // one-block ledge ahead
  Vec3 out;
  const auto res = step_toward(flat_, {1.5, 1, 0.5}, {2.5, 0, 0.5}, 20.0, 0.05, out);
  EXPECT_TRUE(res.moved);
  EXPECT_DOUBLE_EQ(out.y, 2.0);
}

TEST_F(MovementTest, BlockedByTwoBlockWall) {
  flat_.set_block({2, 1, 0}, world::Block::Stone);
  flat_.set_block({2, 2, 0}, world::Block::Stone);
  Vec3 out;
  const auto res = step_toward(flat_, {1.5, 1, 0.5}, {2.5, 0, 0.5}, 20.0, 0.05, out);
  EXPECT_TRUE(res.blocked);
  EXPECT_LT(out.x, 2.0);  // did not pass the wall
}

TEST_F(MovementTest, FallsWhenGroundRemoved) {
  flat_.set_block({0, 1, 0}, world::Block::Stone);
  Vec3 out;
  // Standing on the stone at y=2; stone is gone in the *target* column too
  // (same column): step settles to the new ground.
  flat_.set_block({0, 1, 0}, world::Block::Air);
  step_toward(flat_, {0.5, 2, 0.5}, {0.5, 0, 10.5}, 4.0, 0.05, out);
  EXPECT_DOUBLE_EQ(out.y, 1.0);
}

TEST_F(MovementTest, SpeedScalesStep) {
  Vec3 slow, fast;
  step_toward(flat_, {0.5, 1, 0.5}, {50.5, 0, 0.5}, 2.0, 0.05, slow);
  step_toward(flat_, {0.5, 1, 0.5}, {50.5, 0, 0.5}, 8.0, 0.05, fast);
  EXPECT_NEAR((fast.x - 0.5) / (slow.x - 0.5), 4.0, 1e-6);
}

TEST_F(MovementTest, DiagonalStepLengthRespectsSpeed) {
  Vec3 out;
  step_toward(flat_, {0.5, 1, 0.5}, {10.5, 0, 10.5}, 4.0, 0.05, out);
  EXPECT_NEAR(world::horizontal_distance(out, {0.5, 1, 0.5}), 0.2, 1e-9);
}

TEST_F(MovementTest, CanStandAt) {
  EXPECT_TRUE(can_stand_at(flat_, {0.5, 1, 0.5}));       // on bedrock
  EXPECT_FALSE(can_stand_at(flat_, {0.5, 5, 0.5}));      // floating
  flat_.set_block({3, 1, 3}, world::Block::Stone);
  EXPECT_FALSE(can_stand_at(flat_, {3.5, 1, 3.5}));      // inside a block
  EXPECT_TRUE(can_stand_at(flat_, {3.5, 2, 3.5}));       // on the block
}

TEST_F(MovementTest, WalksOnGeneratedTerrain) {
  world::World w(std::make_unique<world::TerrainGenerator>(7));
  Vec3 pos = w.spawn_position(0, 0);
  for (int i = 0; i < 200; ++i) {
    Vec3 next;
    const auto res = step_toward(w, pos, {100.5, 0, 0.5}, 4.3, 0.05, next);
    if (res.blocked) break;
    pos = next;
    // Invariant: we always stand on the surface.
    const int ground = w.surface_height(static_cast<std::int32_t>(std::floor(pos.x)),
                                        static_cast<std::int32_t>(std::floor(pos.z)));
    ASSERT_DOUBLE_EQ(pos.y, ground + 1);
  }
  EXPECT_GT(pos.x, 5.0);  // made progress
}

}  // namespace
}  // namespace dyconits::entity
