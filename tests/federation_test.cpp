// Tests for cross-instance federation: two servers, one world split at
// x=0, boundary state mirrored through the server-to-server dyconit layer.
#include <gtest/gtest.h>

#include "bots/bot.h"
#include "dyconit/policies/factory.h"
#include "federation/federation.h"

namespace dyconits::federation {
namespace {

using world::ChunkPos;
using world::Vec3;

class FederationTest : public ::testing::Test {
 protected:
  void build(FederationConfig fcfg = {}, const std::string& policy = "zero") {
    policy_ = policy;
    const auto make_cfg = [this](bool left) {
      server::ServerConfig cfg;
      cfg.view_distance = 3;
      cfg.max_chunk_sends_per_tick = 100;
      cfg.use_dyconits = true;
      cfg.net_cost_per_frame = SimDuration::micros(0);
      cfg.net_cost_per_byte_ns = 0.0;
      cfg.owns_chunk = [left](ChunkPos c) {
        return left ? Federation::left_owns(c) : !Federation::left_owns(c);
      };
      cfg.spawn_provider = [this](const std::string& name) { return spawns_[name]; };
      return cfg;
    };
    // Two authoritative worlds with the same seed: terrain agrees, and each
    // server's replica of the other stripe is corrected via federation.
    left_world_ = std::make_unique<world::World>();
    right_world_ = std::make_unique<world::World>();
    left_ = std::make_unique<server::GameServer>(
        clock_, net_, *left_world_, dyconit::make_policy(policy_), make_cfg(true));
    right_ = std::make_unique<server::GameServer>(
        clock_, net_, *right_world_, dyconit::make_policy(policy_), make_cfg(false));
    fed_ = std::make_unique<Federation>(clock_, net_, *left_, *right_, fcfg);
  }

  std::string policy_ = "zero";

  bots::BotClient& add_bot(bool on_left, const std::string& name, Vec3 spawn,
                           bots::BehaviorKind kind = bots::BehaviorKind::Idle) {
    spawns_[name] = spawn;
    bots::BotConfig bc;
    bc.kind = kind;
    bc.home = spawn;
    bc.wander_radius = 6.0;
    server::GameServer& srv = on_left ? *left_ : *right_;
    auto bot = std::make_unique<bots::BotClient>(
        clock_, net_, on_left ? *left_world_ : *right_world_, srv.endpoint(), name,
        7 + bots_.size(), bc);
    net_.connect(bot->endpoint(), srv.endpoint(), {SimDuration::millis(0), 0.0});
    bot->connect();
    bots_.push_back(std::move(bot));
    return *bots_.back();
  }

  void step(int ticks = 1) {
    for (int i = 0; i < ticks; ++i) {
      clock_.advance(SimDuration::millis(50));
      for (auto& b : bots_) b->tick();
      left_->tick();
      right_->tick();
      fed_->tick();
    }
  }

  SimClock clock_;
  net::SimNetwork net_{clock_};
  std::unique_ptr<world::World> left_world_;
  std::unique_ptr<world::World> right_world_;
  std::unique_ptr<server::GameServer> left_;
  std::unique_ptr<server::GameServer> right_;
  std::unique_ptr<Federation> fed_;
  std::vector<std::unique_ptr<bots::BotClient>> bots_;
  std::unordered_map<std::string, Vec3> spawns_;
};

TEST_F(FederationTest, BlockChangeCrossesTheBoundary) {
  build();
  // A left player near the boundary edits the left stripe; a right player
  // watching from across the boundary must see it.
  bots::BotClient& lefty = add_bot(true, "lefty", {-8.5, 1, 0.5});
  bots::BotClient& righty = add_bot(false, "righty", {8.5, 1, 0.5});
  step(5);
  ASSERT_TRUE(lefty.joined());
  ASSERT_TRUE(righty.joined());

  left_->world().set_block({-4, 1, 0}, world::Block::Planks);  // server-side edit
  step(8);  // peer bounds 100ms + link: a few ticks

  EXPECT_EQ(right_->world().block_at({-4, 1, 0}), world::Block::Planks);
  EXPECT_EQ(righty.replica_block({-4, 1, 0}), world::Block::Planks);
}

TEST_F(FederationTest, RemotePlayersAppearAsMirrors) {
  build();
  add_bot(true, "walker", {-8.5, 1, 0.5}, bots::BehaviorKind::Walk);
  bots::BotClient& righty = add_bot(false, "righty", {8.5, 1, 0.5});
  step(60);

  EXPECT_EQ(fed_->mirrors_on(*right_), 1u);
  EXPECT_EQ(right_->external_entity_count(), 1u);
  // The right-hand player's replica contains the remote walker.
  bool saw_remote = false;
  for (const auto& [id, rep] : righty.replica_entities()) {
    if (rep.name.rfind("remote:", 0) == 0) saw_remote = true;
  }
  EXPECT_TRUE(saw_remote);
}

TEST_F(FederationTest, MirrorTracksRemotePositionWithinBounds) {
  build();
  bots::BotClient& walker = add_bot(true, "walker", {-8.5, 1, 0.5},
                                    bots::BehaviorKind::Walk);
  add_bot(false, "righty", {8.5, 1, 0.5});
  step(100);
  ASSERT_EQ(right_->external_entity_count(), 1u);

  // Find the mirror and compare against the walker's true position.
  double err = 1e9;
  right_->entities().for_each([&](const entity::Entity& e) {
    if (right_->is_external_entity(e.id)) {
      err = world::distance(e.pos, walker.pos());
    }
  });
  // Peer staleness 100 ms at 4.3 blocks/s walk, plus link and ticks.
  EXPECT_LT(err, 2.5);
}

TEST_F(FederationTest, NoEchoLoop) {
  build();
  add_bot(true, "walker", {-8.5, 1, 0.5}, bots::BehaviorKind::Walk);
  add_bot(false, "righty", {8.5, 1, 0.5});
  step(100);
  const auto frames_at_100 = fed_->peer_frames_sent();
  step(100);
  const auto frames_at_200 = fed_->peer_frames_sent();
  // One walker at ~10 flushes/s: traffic stays linear, not exponential.
  const auto first_half = frames_at_100;
  const auto second_half = frames_at_200 - frames_at_100;
  EXPECT_LT(second_half, first_half * 3 + 50);
  // And the right-side walker's mirror never bounces back to the left.
  EXPECT_EQ(fed_->mirrors_on(*left_), 0u);  // righty is idle: no moves at all
}

TEST_F(FederationTest, EditsOutsideAuthorityRejected) {
  build();
  bots::BotClient& lefty = add_bot(true, "lefty", {-2.5, 1, 0.5});
  step(5);
  // Left player tries to edit the right stripe directly.
  net::Frame f = protocol::encode(
      protocol::AnyMessage{protocol::PlayerPlace{{3, 1, 0}, world::Block::Planks}});
  net_.send(lefty.endpoint(), left_->endpoint(), std::move(f));
  step(5);
  EXPECT_EQ(left_->world().block_at({3, 1, 0}), world::Block::Air);
  EXPECT_EQ(right_->world().block_at({3, 1, 0}), world::Block::Air);
}

TEST_F(FederationTest, MirrorsExpireWhenSourceGoesQuiet) {
  FederationConfig fcfg;
  fcfg.mirror_ttl = SimDuration::seconds(2);
  build(fcfg);
  bots::BotClient& walker = add_bot(true, "walker", {-8.5, 1, 0.5},
                                    bots::BehaviorKind::Walk);
  add_bot(false, "righty", {8.5, 1, 0.5});
  step(60);
  ASSERT_EQ(right_->external_entity_count(), 1u);
  walker.set_paused(true);  // stops moving: no more updates cross
  step(60);                 // 3 s > ttl
  EXPECT_EQ(right_->external_entity_count(), 0u);
}

TEST_F(FederationTest, UpdatesOutsideBandAreNotForwarded) {
  FederationConfig fcfg;
  fcfg.band_chunks = 2;
  build(fcfg);
  add_bot(true, "far", {-80.5, 1, 0.5}, bots::BehaviorKind::Walk);  // chunk -6
  add_bot(false, "righty", {8.5, 1, 0.5});
  step(80);
  EXPECT_EQ(fed_->peer_updates_enqueued(), 0u);
  EXPECT_EQ(right_->external_entity_count(), 0u);
}

TEST_F(FederationTest, BandBlockStateConvergesAfterQuiesce) {
  // Builders on both sides of the border edit their own stripes; after a
  // quiesce + forced flush, each instance's replica of the *other* stripe
  // matches the owner's authoritative state, block for block.
  build();
  add_bot(true, "lb", {-10.5, 1, 0.5}, bots::BehaviorKind::Build);
  add_bot(false, "rb", {10.5, 1, 0.5}, bots::BehaviorKind::Build);
  step(300);
  for (auto& b : bots_) b->set_paused(true);
  step(5);
  left_->dyconits().flush_all(*left_);
  right_->dyconits().flush_all(*right_);
  fed_->flush_all();
  step(8);  // drain peer + client links

  std::size_t compared = 0, mismatches = 0;
  for (std::int32_t x = -32; x < 32; ++x) {
    for (std::int32_t z = -16; z <= 16; ++z) {
      for (std::int32_t y = 1; y < 8; ++y) {
        const auto lb = left_world_->block_if_loaded({x, y, z});
        const auto rb = right_world_->block_if_loaded({x, y, z});
        if (!lb.has_value() || !rb.has_value()) continue;
        ++compared;
        if (lb != rb) ++mismatches;
      }
    }
  }
  EXPECT_GT(compared, 1000u);
  EXPECT_EQ(mismatches, 0u);
}

TEST_F(FederationTest, WorksUnderAdaptivePolicies) {
  // Both instances run the adaptive (director + repartitioning) policy for
  // their own players; federation is orthogonal to the local policy.
  build({}, "adaptive");
  add_bot(true, "walker", {-8.5, 1, 0.5}, bots::BehaviorKind::Walk);
  bots::BotClient& righty = add_bot(false, "righty", {8.5, 1, 0.5});
  step(100);
  EXPECT_EQ(right_->external_entity_count(), 1u);
  bool saw_remote = false;
  for (const auto& [id, rep] : righty.replica_entities()) {
    if (rep.name.rfind("remote:", 0) == 0) saw_remote = true;
  }
  EXPECT_TRUE(saw_remote);
  EXPECT_EQ(righty.decode_failures(), 0u);
}

TEST_F(FederationTest, MobsMirrorAcrossTheBoundary) {
  // Server-driven entities federate exactly like players.
  build();
  // Rebuild left with mobs clustered near the border.
  server::ServerConfig cfg;
  cfg.view_distance = 3;
  cfg.owns_chunk = [](ChunkPos c) { return Federation::left_owns(c); };
  cfg.mob_count = 4;
  cfg.mob_spawn_radius = 8.0;  // disc around origin: some land at x<0
  cfg.net_cost_per_frame = SimDuration::micros(0);
  cfg.net_cost_per_byte_ns = 0.0;
  cfg.spawn_provider = [this](const std::string& name) { return spawns_[name]; };
  fed_ = nullptr;  // detach taps before replacing the server
  left_ = std::make_unique<server::GameServer>(clock_, net_, *left_world_,
                                               dyconit::make_policy("zero"), cfg);
  fed_ = std::make_unique<Federation>(clock_, net_, *left_, *right_, FederationConfig{});
  add_bot(false, "righty", {8.5, 1, 0.5});
  step(120);
  // At least one wandering mob in the left band should have mirrored over.
  std::size_t mob_mirrors = 0;
  right_->entities().for_each([&](const entity::Entity& e) {
    if (right_->is_external_entity(e.id) && e.kind == entity::EntityKind::Mob) {
      ++mob_mirrors;
    }
  });
  EXPECT_GT(mob_mirrors, 0u);
}

TEST_F(FederationTest, PeerTrafficIsCoalescedUnderBounds) {
  FederationConfig fcfg;
  fcfg.peer_bounds = dyconit::Bounds{SimDuration::millis(500), 1e9};
  build(fcfg);
  add_bot(true, "walker", {-8.5, 1, 0.5}, bots::BehaviorKind::Walk);
  step(200);
  // 20 moves/s for 10 s = ~200 updates enqueued, but at 500 ms staleness
  // only ~2 flushes/s — the rest coalesce away.
  EXPECT_GT(fed_->peer_updates_enqueued(), 100u);
  EXPECT_GT(fed_->peer_updates_coalesced(), fed_->peer_updates_enqueued() / 2);
}

}  // namespace
}  // namespace dyconits::federation
