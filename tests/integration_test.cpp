// End-to-end simulation tests: the full server + bots + middleware stack,
// checking the system-level invariants the paper relies on — replica
// convergence, zero-policy equivalence with vanilla, bounded staleness, and
// the bandwidth ordering across policies.
#include <gtest/gtest.h>

#include "bots/simulation.h"
#include "dyconit/policies/adaptive.h"
#include "dyconit/policies/director.h"

namespace dyconits::bots {
namespace {

SimulationConfig small_config(const std::string& policy, std::size_t players = 6) {
  SimulationConfig cfg;
  cfg.players = players;
  cfg.policy = policy;
  cfg.seed = 77;
  cfg.view_distance = 3;
  cfg.link_latency = SimDuration::millis(0);
  cfg.link_jitter = 0.0;
  cfg.workload.kind = WorkloadKind::Village;
  cfg.workload.hotspots = 1;
  cfg.workload.village_radius = 10.0;
  cfg.joins_per_tick = 10;
  cfg.keep_chunk_replica = true;
  cfg.duration = SimDuration::seconds(15);
  cfg.warmup = SimDuration::seconds(5);
  return cfg;
}

/// Runs `ticks`, then quiesces (bots paused, all queues force-flushed,
/// network drained) so replicas can be compared against ground truth.
void run_and_quiesce(Simulation& sim, int ticks) {
  for (int i = 0; i < ticks; ++i) sim.step_tick();
  for (auto& bot : sim.bots()) bot->set_paused(true);
  for (int i = 0; i < 5; ++i) sim.step_tick();     // deliver in-flight moves
  sim.server().dyconits().flush_all(sim.server());  // force remaining queues out
  for (int i = 0; i < 5; ++i) sim.step_tick();     // drain the network
}

void expect_replicas_converged(Simulation& sim, double tolerance) {
  std::size_t entities_checked = 0, blocks_checked = 0;
  for (const auto& bot : sim.bots()) {
    ASSERT_TRUE(bot->joined());
    for (const auto& [id, rep] : bot->replica_entities()) {
      const entity::Entity* truth = sim.server().entities().find(id);
      ASSERT_NE(truth, nullptr) << "replica entity " << id << " not in ground truth";
      EXPECT_LT(world::distance(rep.pos, truth->pos), tolerance)
          << bot->name() << " entity " << id;
      ++entities_checked;
    }
    // Every loaded chunk must match ground truth block-for-block.
    const world::World* replica = bot->replica_world();
    ASSERT_NE(replica, nullptr);
    for (std::size_t i = 0; i < 3; ++i) {
      // Spot-check: the bot's own chunk and neighbors (full scan is O(25*16k)).
      const world::ChunkPos center = world::ChunkPos::of(bot->pos());
      const world::ChunkPos cp{center.x + static_cast<int>(i) - 1, center.z};
      const world::Chunk* rc = replica->find_chunk(cp);
      if (rc == nullptr) continue;
      world::Chunk& tc = sim.world().chunk_at(cp);
      for (int x = 0; x < world::kChunkSize; ++x) {
        for (int z = 0; z < world::kChunkSize; ++z) {
          for (int y = 0; y < 8; ++y) {  // village edits happen near the ground
            ASSERT_EQ(rc->get_local(x, y, z), tc.get_local(x, y, z))
                << bot->name() << " chunk " << cp.x << "," << cp.z << " at " << x << ","
                << y << "," << z;
            ++blocks_checked;
          }
        }
      }
    }
  }
  EXPECT_GT(entities_checked, 0u);
  EXPECT_GT(blocks_checked, 0u);
}

class ConvergenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ConvergenceTest, ReplicasConvergeAfterQuiesce) {
  Simulation sim(small_config(GetParam()));
  run_and_quiesce(sim, 300);
  // f32 wire quantization only.
  expect_replicas_converged(sim, 0.01);
  sim.finalize();
  EXPECT_EQ(sim.result().decode_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, ConvergenceTest,
                         ::testing::Values("vanilla", "zero", "aoi", "director",
                                           "adaptive", "static:250:4", "aoi@region",
                                           "zero@global"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == ':' || c == '@' || c == '-') c = '_';
                           }
                           return n;
                         });

// Every workload shape must satisfy the same invariants under the dynamic
// policy: clean decode, replica convergence after quiesce.
class WorkloadSweep : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(WorkloadSweep, DirectorConvergesOnEveryWorkload) {
  auto cfg = small_config("director", 8);
  cfg.workload.kind = GetParam();
  cfg.workload.spread_radius = 60.0;  // keep walkers within reach of each other
  Simulation sim(cfg);
  run_and_quiesce(sim, 300);
  expect_replicas_converged(sim, 0.01);
  sim.finalize();
  EXPECT_EQ(sim.result().decode_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadSweep,
                         ::testing::Values(WorkloadKind::Walk, WorkloadKind::Village,
                                           WorkloadKind::Build, WorkloadKind::Mixed),
                         [](const auto& info) {
                           return std::string(workload_name(info.param));
                         });

TEST(IntegrationTest, SurvivalEconomyLoopRuns) {
  auto cfg = small_config("director", 8);
  cfg.duration = SimDuration::seconds(40);
  cfg.survival = true;
  cfg.keep_chunk_replica = false;
  cfg.workload.kind = WorkloadKind::Build;
  cfg.workload.spread_radius = 30.0;
  Simulation sim(cfg);
  for (int i = 0; i < 800; ++i) sim.step_tick();

  // The gather -> pickup -> place loop actually cycled.
  EXPECT_GT(sim.server().items_dropped(), 20u);
  EXPECT_GT(sim.server().items_picked_up(), 5u);
  // Some placements consumed inventory (placed blocks exist in the world).
  std::uint64_t placed_blocks = 0;
  sim.world().for_each_chunk([&](const world::Chunk& c) {
    for (int x = 0; x < world::kChunkSize; ++x) {
      for (int z = 0; z < world::kChunkSize; ++z) {
        const int h = c.height_at(x, z);
        if (h > 0 && (c.get_local(x, h, z) == world::Block::Planks ||
                      c.get_local(x, h, z) == world::Block::Cobblestone ||
                      c.get_local(x, h, z) == world::Block::Stone)) {
          // surface stone can be natural; count builder materials only
          if (c.get_local(x, h, z) != world::Block::Stone) ++placed_blocks;
        }
      }
    }
  });
  static_cast<void>(placed_blocks);  // terrain-dependent; presence not guaranteed

  // Client inventories agree with the server's bookkeeping.
  for (const auto& bot : sim.bots()) {
    for (const auto& [item, count] : bot->inventory()) {
      EXPECT_EQ(count, sim.server().inventory_of(
                           bot->endpoint(), item))
          << bot->name() << " item " << world::block_name(item);
    }
  }
}

TEST(IntegrationTest, EverythingOnStress) {
  // Mobs + environmental ticks + player churn + adaptive granularity +
  // jittery links, all at once: the system keeps its invariants.
  auto cfg = small_config("adaptive", 10);
  cfg.duration = SimDuration::seconds(30);
  cfg.mobs = 8;
  cfg.env_ticks = 16;
  cfg.churn_per_second = 0.5;
  cfg.link_jitter = 0.3;
  cfg.keep_chunk_replica = false;
  Simulation sim(cfg);
  const auto r = sim.run();
  EXPECT_EQ(r.decode_failures, 0u);
  EXPECT_EQ(r.out_of_order_frames, 0u);  // FIFO links
  EXPECT_GT(r.updates_applied, 1000u);
  EXPECT_GT(sim.server().env_changes(), 0u);
  EXPECT_GT(r.churn_leaves, 0u);
  // Replica error stays bounded (no runaway drift).
  EXPECT_LT(r.pos_error_mean.percentile(0.95), 5.0);
}

TEST(IntegrationTest, ZeroPolicyDeliversSameUpdatesAsVanilla) {
  // Paired runs: identical seed and workload, only the dispatch path
  // differs. The zero policy must deliver the same updates (batched
  // differently) with no added delay beyond the tick.
  Simulation vanilla(small_config("vanilla"));
  Simulation zero(small_config("zero"));
  for (int i = 0; i < 300; ++i) {
    vanilla.step_tick();
    zero.step_tick();
  }
  vanilla.finalize();
  zero.finalize();

  const auto& rv = vanilla.result();
  const auto& rz = zero.result();
  ASSERT_GT(rv.updates_applied, 0u);
  // Same game evolution => same applied updates (joins are staged
  // identically; coalescing cannot trigger at zero bounds within a tick).
  const double ratio = static_cast<double>(rz.updates_applied) /
                       static_cast<double>(rv.updates_applied);
  EXPECT_NEAR(ratio, 1.0, 0.02);
  // Batch framing may only shrink bytes, never grow them materially.
  EXPECT_LT(rz.egress_bytes_per_sec, rv.egress_bytes_per_sec * 1.05);
  // Zero-policy latency stays within one tick of vanilla.
  EXPECT_LT(rz.update_latency_ms.percentile(0.99),
            rv.update_latency_ms.percentile(0.99) + 51.0);
}

TEST(IntegrationTest, WorldEvolutionIdenticalAcrossPolicies) {
  // The middleware must never change ground truth, only its replication.
  Simulation a(small_config("vanilla"));
  Simulation b(small_config("director"));
  for (int i = 0; i < 300; ++i) {
    a.step_tick();
    b.step_tick();
  }
  // Identical bot decisions => identical server world.
  std::vector<entity::EntityId> ids;
  a.server().entities().for_each(
      [&](const entity::Entity& e) { ids.push_back(e.id); });
  for (const auto id : ids) {
    const entity::Entity* ea = a.server().entities().find(id);
    const entity::Entity* eb = b.server().entities().find(id);
    ASSERT_NE(eb, nullptr);
    EXPECT_LT(world::distance(ea->pos, eb->pos), 1e-9);
  }
}

TEST(IntegrationTest, BandwidthOrderingAcrossPolicies) {
  const auto update_bytes = [](const SimulationResult& r) {
    std::uint64_t b = 0;
    for (const auto type :
         {protocol::MessageType::EntityMove, protocol::MessageType::EntityMoveBatch,
          protocol::MessageType::BlockChange, protocol::MessageType::MultiBlockChange}) {
      const auto it = r.egress_bytes_by_type.find(type);
      if (it != r.egress_bytes_by_type.end()) b += it->second;
    }
    return b;
  };

  auto cfg = small_config("vanilla", 12);
  cfg.keep_chunk_replica = false;
  cfg.duration = SimDuration::seconds(30);
  cfg.warmup = SimDuration::seconds(8);
  // Spread the village wider than the AOI near-zone so distance-scaled
  // bounds actually engage (radius 48 blocks = 3 chunks; view distance 5).
  cfg.workload.village_radius = 48.0;
  cfg.view_distance = 5;

  cfg.policy = "vanilla";
  const auto rv = Simulation(cfg).run();
  cfg.policy = "zero";
  const auto rz = Simulation(cfg).run();
  cfg.policy = "aoi";
  const auto ra = Simulation(cfg).run();
  cfg.policy = "infinite";
  const auto ri = Simulation(cfg).run();

  const auto bv = update_bytes(rv), bz = update_bytes(rz), ba = update_bytes(ra),
             bi = update_bytes(ri);
  ASSERT_GT(bv, 0u);
  EXPECT_LE(bz, bv);             // batching alone saves framing bytes
  EXPECT_LT(ba, bz * 95 / 100);  // bounded inconsistency saves real bytes
  EXPECT_LT(bi, bz / 10);        // never flushing is the floor
}

TEST(IntegrationTest, StalenessBoundHolds) {
  auto cfg = small_config("static:400:1000000", 6);
  cfg.record_staleness = true;
  cfg.keep_chunk_replica = false;
  Simulation sim(cfg);
  for (int i = 0; i < 400; ++i) sim.step_tick();
  sim.finalize();
  const auto& st = sim.result().staleness_ms;
  ASSERT_GT(st.count(), 0u);
  // Bound θ=400ms is checked at tick granularity: worst case θ + one tick.
  EXPECT_LE(st.max(), 400.0 + 50.0 + 1.0);
  // And the bound is actually exercised (some updates age close to it).
  EXPECT_GT(st.max(), 350.0);
}

TEST(IntegrationTest, NearUpdatesStayFastUnderAoi) {
  auto cfg = small_config("aoi", 8);
  cfg.link_latency = SimDuration::millis(25);
  cfg.keep_chunk_replica = false;
  Simulation sim(cfg);
  for (int i = 0; i < 400; ++i) sim.step_tick();
  sim.finalize();
  const auto& near = sim.result().near_update_latency_ms;
  ASSERT_GT(near.count(), 0u);
  // Near units have zero bounds: link latency + at most one tick.
  EXPECT_LE(near.percentile(0.99), 25.0 + 50.0 + 5.0);
}

TEST(IntegrationTest, DirectorScalesUpUnderBandwidthBudget) {
  auto cfg = small_config("director", 12);
  cfg.keep_chunk_replica = false;
  cfg.bandwidth_budget_bps = 100'000.0;  // 100 kbit/s: far below demand
  Simulation sim(cfg);
  for (int i = 0; i < 400; ++i) sim.step_tick();
  const auto* director =
      dynamic_cast<const dyconit::DirectorPolicy*>(sim.server().policy());
  ASSERT_NE(director, nullptr);
  EXPECT_GT(director->scale(), 1.5);
}

TEST(IntegrationTest, AdaptiveGranularitySwitchesUnitsUnderPressure) {
  auto cfg = small_config("adaptive", 12);
  cfg.keep_chunk_replica = false;
  cfg.bandwidth_budget_bps = 50'000.0;  // unreachable budget: sustained pressure
  Simulation sim(cfg);
  for (int i = 0; i < 500; ++i) sim.step_tick();

  const auto* policy = dynamic_cast<const dyconit::AdaptiveGranularityPolicy*>(
      sim.server().policy());
  ASSERT_NE(policy, nullptr);
  EXPECT_TRUE(policy->coarse());
  bool has_region_unit = false, has_chunk_unit = false;
  sim.server().dyconits().for_each([&](dyconit::Dyconit& d) {
    if (d.id().domain == dyconit::Domain::RegionEntities ||
        d.id().domain == dyconit::Domain::RegionBlocks) {
      has_region_unit = true;
    }
    if ((d.id().domain == dyconit::Domain::ChunkEntities ||
         d.id().domain == dyconit::Domain::ChunkBlocks) &&
        !d.idle()) {
      has_chunk_unit = true;
    }
  });
  EXPECT_TRUE(has_region_unit);
  EXPECT_FALSE(has_chunk_unit);  // old partition fully retired

  // The repartitioned world still replicates: a fresh block edit reaches
  // other players after a forced flush.
  sim.finalize();
  EXPECT_EQ(sim.result().decode_failures, 0u);
}

TEST(IntegrationTest, DirectorStaysTightWhenUnderloaded) {
  auto cfg = small_config("director", 4);
  cfg.keep_chunk_replica = false;
  Simulation sim(cfg);
  for (int i = 0; i < 400; ++i) sim.step_tick();
  const auto* director =
      dynamic_cast<const dyconit::DirectorPolicy*>(sim.server().policy());
  ASSERT_NE(director, nullptr);
  EXPECT_DOUBLE_EQ(director->scale(), 1.0);
}

TEST(IntegrationTest, StagedJoinsAllComplete) {
  auto cfg = small_config("director", 20);
  cfg.joins_per_tick = 1;
  cfg.keep_chunk_replica = false;
  Simulation sim(cfg);
  for (int i = 0; i < 300; ++i) sim.step_tick();
  EXPECT_EQ(sim.server().player_count(), 20u);
  for (const auto& bot : sim.bots()) EXPECT_TRUE(bot->joined());
}

TEST(IntegrationTest, NoDecodeFailuresOrRunawayUnknowns) {
  auto cfg = small_config("director", 10);
  cfg.keep_chunk_replica = false;
  Simulation sim(cfg);
  for (int i = 0; i < 400; ++i) sim.step_tick();
  sim.finalize();
  EXPECT_EQ(sim.result().decode_failures, 0u);
  // Post-despawn moves are legal but must be a trickle, not a flood.
  EXPECT_LT(sim.result().unknown_entity_updates, sim.result().updates_applied / 20 + 50);
}

TEST(IntegrationTest, FifoLinksHaveZeroOrderError) {
  auto cfg = small_config("zero", 6);
  cfg.link_latency = SimDuration::millis(25);
  cfg.link_jitter = 0.5;  // heavy jitter, but FIFO clamps it
  cfg.keep_chunk_replica = false;
  Simulation sim(cfg);
  const auto r = sim.run();
  EXPECT_EQ(r.out_of_order_frames, 0u);
  EXPECT_EQ(r.stale_moves_rejected, 0u);
}

TEST(IntegrationTest, ReorderingTransportIsDetectedAndGuarded) {
  auto cfg = small_config("zero", 6);
  cfg.link_latency = SimDuration::millis(40);
  cfg.link_jitter = 0.9;
  cfg.fifo_links = false;  // UDP-like
  Simulation sim(cfg);
  run_and_quiesce(sim, 300);
  // Despite reordering, replicas converge: stale positions were rejected
  // rather than applied, and the final flush carries the newest state.
  expect_replicas_converged(sim, 0.01);
  sim.finalize();
  EXPECT_GT(sim.result().out_of_order_frames, 0u);
  EXPECT_GT(sim.result().stale_moves_rejected, 0u);
}

TEST(IntegrationTest, TimelinesRecordedWhenRequested) {
  auto cfg = small_config("director", 4);
  cfg.record_timelines = true;
  cfg.keep_chunk_replica = false;
  Simulation sim(cfg);
  for (int i = 0; i < 120; ++i) sim.step_tick();
  sim.finalize();
  const auto& reg = sim.result().registry;
  EXPECT_FALSE(reg.all_series().at("egress_kbps").empty());
  EXPECT_FALSE(reg.all_series().at("players").empty());
  EXPECT_FALSE(reg.all_series().at("director_scale").empty());
}

}  // namespace
}  // namespace dyconits::bots
