// Unit tests for src/metrics.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/metrics.h"

namespace dyconits::metrics {
namespace {

TEST(TimeSeriesTest, AddAndAggregate) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  ts.add(SimTime(1'000'000), 10.0);
  ts.add(SimTime(2'000'000), 20.0);
  ts.add(SimTime(3'000'000), 60.0);
  EXPECT_DOUBLE_EQ(ts.mean(), 30.0);
  EXPECT_DOUBLE_EQ(ts.max(), 60.0);
  EXPECT_EQ(ts.points().size(), 3u);
}

TEST(TimeSeriesTest, MeanAfterSkipsWarmup) {
  TimeSeries ts;
  ts.add(SimTime(1'000'000), 1000.0);  // warmup spike
  ts.add(SimTime(5'000'000), 10.0);
  ts.add(SimTime(6'000'000), 20.0);
  EXPECT_DOUBLE_EQ(ts.mean_after(SimTime(5'000'000)), 15.0);
  EXPECT_DOUBLE_EQ(ts.mean_after(SimTime(100'000'000)), 0.0);
}

TEST(TimeSeriesTest, EmptyAggregatesAreZero) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.mean(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max(), 0.0);
}

TEST(RegistryTest, CountersAccumulate) {
  MetricRegistry reg;
  reg.counter("frames") += 5;
  reg.counter("frames") += 3;
  EXPECT_EQ(reg.counters().at("frames"), 8u);
}

TEST(RegistryTest, CsvFormat) {
  MetricRegistry reg;
  reg.counter("n") = 2;
  reg.series("rate").add(SimTime(1'500'000), 7.5);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("kind,name,t_seconds,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,n,-1,2"), std::string::npos);
  EXPECT_NE(csv.find("series,rate,1.5,7.5"), std::string::npos);
}

TEST(RegistryTest, CsvQuotesHostileNames) {
  MetricRegistry reg;
  reg.counter("bytes,total") = 9;
  reg.series("say \"hi\"").add(SimTime(1'000'000), 1.0);
  std::ostringstream os;
  reg.write_csv(os);
  const std::string csv = os.str();
  // A comma inside a name must not shear the row into five fields.
  EXPECT_NE(csv.find("counter,\"bytes,total\",-1,9"), std::string::npos) << csv;
  // Embedded quotes are doubled and the field wrapped, per RFC 4180.
  EXPECT_NE(csv.find("series,\"say \"\"hi\"\"\",1,1"), std::string::npos) << csv;
}

TEST(TimeSeriesTest, MeanAfterBoundaryIsInclusive) {
  TimeSeries ts;
  ts.add(SimTime(4'999'999), 100.0);
  ts.add(SimTime(5'000'000), 10.0);  // exactly t == from: included
  ts.add(SimTime(6'000'000), 30.0);
  EXPECT_DOUBLE_EQ(ts.mean_after(SimTime(5'000'000)), 20.0);
}

TEST(RateSamplerTest, FirstSampleIsZero) {
  RateSampler rs;
  EXPECT_DOUBLE_EQ(rs.sample(1000, 1.0), 0.0);  // priming
  EXPECT_DOUBLE_EQ(rs.sample(1500, 1.0), 500.0);
  EXPECT_DOUBLE_EQ(rs.sample(1500, 1.0), 0.0);
}

TEST(RateSamplerTest, ScalesByInterval) {
  RateSampler rs;
  rs.sample(0, 1.0);
  EXPECT_DOUBLE_EQ(rs.sample(100, 2.0), 50.0);
}

TEST(RateSamplerTest, ZeroDtIsSafe) {
  RateSampler rs;
  rs.sample(0, 1.0);
  EXPECT_DOUBLE_EQ(rs.sample(100, 0.0), 0.0);
}

TEST(RateSamplerTest, PrimingIgnoresCounterHistory) {
  // The first sample only latches the counter: a server that has already
  // sent gigabytes before sampling starts must not report a huge rate.
  RateSampler rs;
  EXPECT_DOUBLE_EQ(rs.sample(1'000'000'000, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(rs.sample(1'000'000'500, 1.0), 500.0);
}

}  // namespace
}  // namespace dyconits::metrics
