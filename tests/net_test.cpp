// Unit tests for src/net: wire codec and the simulated network.
#include <gtest/gtest.h>

#include <limits>

#include "net/bytes.h"
#include "net/sim_network.h"

namespace dyconits::net {
namespace {

// ------------------------------------------------------------------- bytes

TEST(BytesTest, FixedWidthRoundtrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f32(3.5f);
  w.f64(-2.25);

  ByteReader r(w.bytes());
  std::uint8_t a;
  std::uint16_t b;
  std::uint32_t c;
  std::uint64_t d;
  float e;
  double f;
  ASSERT_TRUE(r.u8(a) && r.u16(b) && r.u32(c) && r.u64(d) && r.f32(e) && r.f64(f));
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xBEEF);
  EXPECT_EQ(c, 0xDEADBEEFu);
  EXPECT_EQ(d, 0x0123456789ABCDEFull);
  EXPECT_EQ(e, 3.5f);
  EXPECT_EQ(f, -2.25);
  EXPECT_TRUE(r.at_end());
}

TEST(BytesTest, VarintEdgeValues) {
  const std::uint64_t values[] = {0,      1,      127,        128,
                                  16383,  16384,  0xFFFFFFFF, 1ull << 62,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const auto v : values) {
    ByteWriter w;
    w.varint(v);
    EXPECT_EQ(w.size(), varint_size(v));
    ByteReader r(w.bytes());
    std::uint64_t out;
    ASSERT_TRUE(r.varint(out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(BytesTest, VarintSizes) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size(16383), 2u);
  EXPECT_EQ(varint_size(16384), 3u);
  EXPECT_EQ(varint_size(std::numeric_limits<std::uint64_t>::max()), 10u);
}

TEST(BytesTest, SvarintRoundtrip) {
  const std::int64_t values[] = {0,  -1, 1,  -64, 64, -65,
                                 -1000000, 1000000,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const auto v : values) {
    ByteWriter w;
    w.svarint(v);
    ByteReader r(w.bytes());
    std::int64_t out;
    ASSERT_TRUE(r.svarint(out));
    EXPECT_EQ(out, v);
  }
}

TEST(BytesTest, SmallSignedValuesAreOneByte) {
  ByteWriter w;
  w.svarint(-5);
  EXPECT_EQ(w.size(), 1u);  // zigzag keeps small magnitudes small
}

TEST(BytesTest, StringAndBlobRoundtrip) {
  ByteWriter w;
  w.str("hello world");
  w.str("");
  const std::vector<std::uint8_t> blob = {1, 2, 3, 255};
  w.blob(blob);

  ByteReader r(w.bytes());
  std::string s1, s2;
  std::vector<std::uint8_t> b;
  ASSERT_TRUE(r.str(s1) && r.str(s2) && r.blob(b));
  EXPECT_EQ(s1, "hello world");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(b, blob);
}

TEST(BytesTest, UnderflowFailsAndPoisons) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.bytes());
  std::uint32_t v;
  EXPECT_FALSE(r.u32(v));
  EXPECT_FALSE(r.ok());
  std::uint8_t b;
  EXPECT_FALSE(r.u8(b));  // poisoned: even a fitting read fails
}

TEST(BytesTest, TruncatedVarintFails) {
  const std::uint8_t data[] = {0x80, 0x80};  // continuation bits, no end
  ByteReader r(data, sizeof(data));
  std::uint64_t v;
  EXPECT_FALSE(r.varint(v));
}

TEST(BytesTest, OverlongVarintFails) {
  // 11 bytes of continuation would exceed 64 bits.
  const std::uint8_t data[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                               0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  ByteReader r(data, sizeof(data));
  std::uint64_t v;
  EXPECT_FALSE(r.varint(v));
}

TEST(BytesTest, BlobLengthBeyondBufferFails) {
  ByteWriter w;
  w.varint(100);  // claims 100 bytes, provides none
  ByteReader r(w.bytes());
  std::vector<std::uint8_t> b;
  EXPECT_FALSE(r.blob(b));
}

// ------------------------------------------------------------- sim network

class SimNetworkTest : public ::testing::Test {
 protected:
  SimNetworkTest() : net_(clock_) {
    a_ = net_.create_endpoint("a");
    b_ = net_.create_endpoint("b");
    net_.connect(a_, b_, {SimDuration::millis(25), 0.0});
  }

  static Frame frame(std::uint8_t tag, std::size_t payload_size) {
    Frame f;
    f.tag = tag;
    f.payload.assign(payload_size, 0x42);
    return f;
  }

  SimClock clock_;
  SimNetwork net_;
  EndpointId a_ = 0, b_ = 0;
};

TEST_F(SimNetworkTest, DeliversAfterLatency) {
  ASSERT_TRUE(net_.send(a_, b_, frame(1, 10)));
  EXPECT_TRUE(net_.poll(b_).empty());  // not yet
  clock_.advance(SimDuration::millis(24));
  EXPECT_TRUE(net_.poll(b_).empty());
  clock_.advance(SimDuration::millis(1));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, a_);
  EXPECT_EQ(got[0].frame.tag, 1);
  EXPECT_EQ((got[0].arrival - got[0].sent).count_millis(), 25);
}

TEST_F(SimNetworkTest, PollIsDestructive) {
  net_.send(a_, b_, frame(1, 1));
  clock_.advance(SimDuration::millis(30));
  EXPECT_EQ(net_.poll(b_).size(), 1u);
  EXPECT_TRUE(net_.poll(b_).empty());
}

TEST_F(SimNetworkTest, SendWithoutLinkFailsUncounted) {
  const EndpointId c = net_.create_endpoint("c");
  EXPECT_FALSE(net_.send(a_, c, frame(1, 10)));
  EXPECT_EQ(net_.egress_bytes(a_), 0u);
  EXPECT_EQ(net_.total_frames(), 0u);
}

TEST_F(SimNetworkTest, DisconnectStopsTraffic) {
  net_.disconnect(a_, b_);
  EXPECT_FALSE(net_.connected(a_, b_));
  EXPECT_FALSE(net_.send(a_, b_, frame(1, 1)));
}

TEST_F(SimNetworkTest, FifoPerPair) {
  for (int i = 0; i < 10; ++i) {
    Frame f = frame(1, 1);
    f.payload[0] = static_cast<std::uint8_t>(i);
    net_.send(a_, b_, std::move(f));
    clock_.advance(SimDuration::millis(1));
  }
  clock_.advance(SimDuration::seconds(1));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i].frame.payload[0], i);
}

TEST_F(SimNetworkTest, FifoHoldsUnderJitter) {
  net_.connect(a_, b_, {SimDuration::millis(25), 0.9});
  SimTime prev = SimTime::zero();
  for (int i = 0; i < 200; ++i) {
    net_.send(a_, b_, frame(1, 1));
    clock_.advance(SimDuration::millis(1));
  }
  clock_.advance(SimDuration::seconds(2));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 200u);
  for (const auto& d : got) {
    EXPECT_GE(d.arrival, prev);  // non-decreasing despite jitter
    prev = d.arrival;
  }
}

TEST_F(SimNetworkTest, JitterStaysWithinBounds) {
  net_.connect(a_, b_, {SimDuration::millis(100), 0.2});
  for (int i = 0; i < 100; ++i) {
    net_.send(a_, b_, frame(1, 1));
    clock_.advance(SimDuration::seconds(1));  // spaced out: no FIFO clamping
  }
  clock_.advance(SimDuration::seconds(2));
  for (const auto& d : net_.poll(b_)) {
    const auto lat = (d.arrival - d.sent).count_millis();
    EXPECT_GE(lat, 80);
    EXPECT_LE(lat, 120);
  }
}

TEST_F(SimNetworkTest, NonFifoLinksCanReorder) {
  net_.connect(a_, b_, {SimDuration::millis(50), 0.8, /*fifo=*/false});
  for (int i = 0; i < 300; ++i) {
    Frame f = frame(1, 2);
    f.payload[0] = static_cast<std::uint8_t>(i & 0xFF);
    f.payload[1] = static_cast<std::uint8_t>(i >> 8);
    net_.send(a_, b_, std::move(f));
    clock_.advance(SimDuration::millis(5));
  }
  clock_.advance(SimDuration::seconds(2));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 300u);
  int inversions = 0;
  int prev = -1;
  for (const auto& d : got) {
    const int seq = d.frame.payload[0] | (d.frame.payload[1] << 8);
    if (seq < prev) ++inversions;
    prev = std::max(prev, seq);
  }
  EXPECT_GT(inversions, 0);  // jitter actually reordered something
}

TEST_F(SimNetworkTest, WireSizeAndAccounting) {
  Frame f = frame(3, 100);
  // tag + varint(seq=0) + varint(length) + payload
  const std::size_t expected = 1 + 1 + 1 + 100;
  EXPECT_EQ(f.wire_size(), expected);
  net_.send(a_, b_, std::move(f));
  EXPECT_EQ(net_.egress_bytes(a_), expected);
  EXPECT_EQ(net_.ingress_bytes(b_), expected);
  EXPECT_EQ(net_.egress_frames(a_), 1u);
  EXPECT_EQ(net_.egress_bytes_by_tag(a_, 3), expected);
  EXPECT_EQ(net_.egress_bytes_by_tag(a_, 4), 0u);
  EXPECT_EQ(net_.total_bytes(), expected);
}

TEST_F(SimNetworkTest, LargePayloadVarintHeader) {
  Frame f = frame(1, 300);
  EXPECT_EQ(f.wire_size(), 1 + 1 + 2 + 300u);  // 300 needs a 2-byte varint
}

TEST_F(SimNetworkTest, SequencedFrameWireSize) {
  Frame f = frame(1, 10);
  f.seq = 200;  // needs a 2-byte varint
  EXPECT_EQ(f.wire_size(), 1 + 2 + 1 + 10u);
}

TEST_F(SimNetworkTest, RateLimitAddsQueueingDelay) {
  net_.set_egress_rate(a_, 1000);  // 1000 B/s
  // Two 103-byte frames: the second waits for the first's serialization.
  net_.send(a_, b_, frame(1, 100));
  net_.send(a_, b_, frame(1, 100));
  clock_.advance(SimDuration::seconds(5));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 2u);
  const auto lat0 = (got[0].arrival - got[0].sent).count_millis();
  const auto lat1 = (got[1].arrival - got[1].sent).count_millis();
  EXPECT_NEAR(static_cast<double>(lat0), 25 + 103, 2);       // tx time + latency
  EXPECT_NEAR(static_cast<double>(lat1), 25 + 2 * 103, 2);   // queued behind first
}

TEST_F(SimNetworkTest, UnlimitedRateNoQueueing) {
  net_.send(a_, b_, frame(1, 100000));
  clock_.advance(SimDuration::millis(25));
  EXPECT_EQ(net_.poll(b_).size(), 1u);
}

TEST_F(SimNetworkTest, PendingCount) {
  net_.send(a_, b_, frame(1, 1));
  net_.send(a_, b_, frame(1, 1));
  EXPECT_EQ(net_.pending_count(b_), 2u);
  clock_.advance(SimDuration::seconds(1));
  net_.poll(b_);
  EXPECT_EQ(net_.pending_count(b_), 0u);
}

TEST_F(SimNetworkTest, BidirectionalLink) {
  net_.send(b_, a_, frame(2, 5));
  clock_.advance(SimDuration::millis(25));
  const auto got = net_.poll(a_);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, b_);
}

TEST_F(SimNetworkTest, EndpointNames) {
  EXPECT_EQ(net_.endpoint_name(a_), "a");
  EXPECT_EQ(net_.endpoint_name(b_), "b");
}

TEST_F(SimNetworkTest, InterleavedSourcesOrderedByArrival) {
  const EndpointId c = net_.create_endpoint("c");
  net_.connect(c, b_, {SimDuration::millis(5), 0.0});
  net_.send(a_, b_, frame(1, 1));  // arrives t+25
  net_.send(c, b_, frame(2, 1));   // arrives t+5
  clock_.advance(SimDuration::millis(30));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].frame.tag, 2);  // c's frame first
  EXPECT_EQ(got[1].frame.tag, 1);
}

// ------------------------------------------------------------- fault layer

class FaultLayerTest : public SimNetworkTest {
 protected:
  /// Sends `n` frames (one per ms), advances past all arrivals, returns
  /// what was delivered.
  std::vector<Delivery> blast(int n, std::size_t payload = 10) {
    for (int i = 0; i < n; ++i) {
      net_.send(a_, b_, frame(1, payload));
      clock_.advance(SimDuration::millis(1));
    }
    clock_.advance(SimDuration::seconds(2));
    return net_.poll(b_);
  }
};

TEST_F(FaultLayerTest, LossDropsAndAccounts) {
  FaultPlan plan;
  plan.seed = 7;
  plan.all_links.loss = 0.25;
  net_.set_fault_plan(plan);
  const auto got = blast(400);
  const FaultStats& fs = net_.fault_stats(b_);
  EXPECT_GT(fs.dropped.loss, 50u);
  EXPECT_LT(fs.dropped.loss, 150u);
  EXPECT_EQ(fs.dropped.frames, fs.dropped.loss);
  EXPECT_EQ(got.size() + fs.dropped.frames, 400u);
  // Sender-side accounting is unconditional: the sender can't see loss.
  EXPECT_EQ(net_.egress_frames(a_), 400u);
  EXPECT_EQ(net_.offered_frames(b_), 400u);
  EXPECT_EQ(net_.ingress_frames(b_), 400u - fs.dropped.frames);
  // Dropped bytes are attributed to the frame's tag.
  EXPECT_EQ(net_.dropped_bytes_by_tag(b_, 1), fs.dropped.bytes);
  EXPECT_EQ(net_.total_dropped_frames(), fs.dropped.frames);
}

TEST_F(FaultLayerTest, DuplicationDeliversExtraCopies) {
  FaultPlan plan;
  plan.seed = 7;
  plan.all_links.duplicate = 0.2;
  net_.set_fault_plan(plan);
  const auto got = blast(300);
  const FaultStats& fs = net_.fault_stats(b_);
  EXPECT_GT(fs.duplicated, 30u);
  EXPECT_EQ(got.size(), 300u + fs.duplicated);
  EXPECT_EQ(net_.ingress_frames(b_), 300u + fs.duplicated);
  // Conservation: offered counts unique frames only.
  EXPECT_EQ(net_.offered_frames(b_), 300u);
}

TEST_F(FaultLayerTest, CorruptionFlipsPayloadBitsOnly) {
  FaultPlan plan;
  plan.seed = 7;
  plan.all_links.corrupt = 1.0;  // every frame
  net_.set_fault_plan(plan);
  Frame f = frame(5, 64);
  f.seq = 1234;
  net_.send(a_, b_, std::move(f));
  clock_.advance(SimDuration::seconds(1));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(net_.fault_stats(b_).corrupted, 1u);
  // Header-protected: tag and seq survive, payload changed.
  EXPECT_EQ(got[0].frame.tag, 5);
  EXPECT_EQ(got[0].frame.seq, 1234u);
  EXPECT_NE(got[0].frame.payload, std::vector<std::uint8_t>(64, 0x42));
}

TEST_F(FaultLayerTest, ReorderBreaksFifo) {
  FaultPlan plan;
  plan.seed = 9;
  plan.all_links.reorder = 0.3;
  plan.all_links.reorder_extra = SimDuration::millis(50);
  net_.set_fault_plan(plan);
  std::uint32_t seq = 0;
  for (int i = 0; i < 200; ++i) {
    Frame f = frame(1, 4);
    f.seq = ++seq;
    net_.send(a_, b_, std::move(f));
    clock_.advance(SimDuration::millis(1));
  }
  clock_.advance(SimDuration::seconds(2));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 200u);
  EXPECT_GT(net_.fault_stats(b_).reordered, 20u);
  int inversions = 0;
  std::uint32_t prev = 0;
  for (const auto& d : got) {
    if (d.frame.seq < prev) ++inversions;
    prev = std::max(prev, d.frame.seq);
  }
  EXPECT_GT(inversions, 0);  // despite the link being FIFO
}

TEST_F(FaultLayerTest, DisconnectDropsInFlightAccounted) {
  net_.send(a_, b_, frame(2, 50));
  net_.send(a_, b_, frame(2, 50));
  EXPECT_EQ(net_.pending_count(b_), 2u);
  net_.disconnect(a_, b_);
  EXPECT_EQ(net_.pending_count(b_), 0u);
  const FaultStats& fs = net_.fault_stats(b_);
  EXPECT_EQ(fs.dropped.frames, 2u);
  EXPECT_EQ(fs.dropped.disconnect, 2u);
  EXPECT_EQ(fs.dropped.bytes, 2 * (1 + 1 + 1 + 50u));
  EXPECT_EQ(net_.dropped_bytes_by_tag(b_, 2), fs.dropped.bytes);
  clock_.advance(SimDuration::seconds(1));
  EXPECT_TRUE(net_.poll(b_).empty());
}

TEST_F(FaultLayerTest, LinkDownRefusesAndHealsWithParams) {
  net_.send(a_, b_, frame(1, 10));  // in flight when the link goes down
  net_.set_link_down(a_, b_);
  EXPECT_FALSE(net_.connected(a_, b_));
  EXPECT_FALSE(net_.send(a_, b_, frame(1, 10)));
  EXPECT_EQ(net_.fault_stats(b_).refused, 1u);
  EXPECT_EQ(net_.fault_stats(b_).dropped.disconnect, 1u);
  net_.set_link_up(a_, b_);
  EXPECT_TRUE(net_.connected(a_, b_));
  ASSERT_TRUE(net_.send(a_, b_, frame(1, 10)));
  clock_.advance(SimDuration::millis(25));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 1u);
  // Restored link kept its original 25 ms latency.
  EXPECT_EQ((got[0].arrival - got[0].sent).count_millis(), 25);
}

TEST_F(FaultLayerTest, CrashWipesInboxAndRefusesBothWays) {
  net_.send(a_, b_, frame(1, 10));
  net_.crash(b_);
  EXPECT_TRUE(net_.crashed(b_));
  EXPECT_EQ(net_.fault_stats(b_).dropped.crash, 1u);
  EXPECT_FALSE(net_.send(a_, b_, frame(1, 10)));  // to a crashed endpoint
  EXPECT_FALSE(net_.send(b_, a_, frame(1, 10)));  // from a crashed endpoint
  clock_.advance(SimDuration::seconds(1));
  EXPECT_TRUE(net_.poll(b_).empty());
  net_.restart(b_);
  EXPECT_FALSE(net_.crashed(b_));
  ASSERT_TRUE(net_.send(a_, b_, frame(1, 10)));  // link survived the crash
  clock_.advance(SimDuration::seconds(1));
  EXPECT_EQ(net_.poll(b_).size(), 1u);
}

TEST_F(FaultLayerTest, ScheduledEventsFireBySimTime) {
  FaultPlan plan;
  plan.events.push_back({SimTime::zero() + SimDuration::millis(100),
                         FaultEvent::Kind::LinkDown, a_, b_});
  plan.events.push_back({SimTime::zero() + SimDuration::millis(200),
                         FaultEvent::Kind::LinkUp, a_, b_});
  net_.set_fault_plan(plan);
  EXPECT_TRUE(net_.connected(a_, b_));
  clock_.advance(SimDuration::millis(150));
  net_.advance_faults();
  EXPECT_FALSE(net_.connected(a_, b_));
  clock_.advance(SimDuration::millis(100));
  net_.advance_faults();
  EXPECT_TRUE(net_.connected(a_, b_));
}

TEST_F(FaultLayerTest, SameSeedSameFaults) {
  std::vector<std::uint64_t> fingerprints;
  for (int run = 0; run < 2; ++run) {
    SimClock clock;
    SimNetwork net(clock, 99);
    const EndpointId a = net.create_endpoint("a");
    const EndpointId b = net.create_endpoint("b");
    net.connect(a, b, {SimDuration::millis(25), 0.2});
    FaultPlan plan;
    plan.seed = 4242;
    plan.all_links = {0.1, 0.1, 0.1, 0.1};
    net.set_fault_plan(plan);
    std::uint64_t fp = 1469598103934665603ull;  // FNV offset basis
    std::uint32_t seq = 0;
    for (int i = 0; i < 500; ++i) {
      Frame f;
      f.tag = 1;
      f.seq = ++seq;
      f.payload.assign(16, static_cast<std::uint8_t>(i));
      net.send(a, b, std::move(f));
      clock.advance(SimDuration::millis(1));
      for (const auto& d : net.poll(b)) {
        for (const std::uint8_t byte : d.frame.payload) {
          fp = (fp ^ byte) * 1099511628211ull;
        }
        fp = (fp ^ d.frame.seq) * 1099511628211ull;
        fp = (fp ^ static_cast<std::uint64_t>(d.arrival.count_micros())) *
             1099511628211ull;
      }
    }
    const FaultStats& fs = net.fault_stats(b);
    EXPECT_GT(fs.dropped.loss, 0u);
    EXPECT_GT(fs.duplicated, 0u);
    fp = (fp ^ fs.dropped.frames) * 1099511628211ull;
    fp = (fp ^ fs.duplicated) * 1099511628211ull;
    fp = (fp ^ fs.corrupted) * 1099511628211ull;
    fingerprints.push_back(fp);
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

TEST_F(FaultLayerTest, FaultPlanDoesNotPerturbJitterStream) {
  // Two identical runs, one with a (never-triggering) fault plan installed:
  // the jitter stream must be byte-identical — faults draw from their own RNG.
  std::vector<std::int64_t> arrivals[2];
  for (int run = 0; run < 2; ++run) {
    SimClock clock;
    SimNetwork net(clock, 55);
    const EndpointId a = net.create_endpoint("a");
    const EndpointId b = net.create_endpoint("b");
    net.connect(a, b, {SimDuration::millis(25), 0.5});
    if (run == 1) {
      FaultPlan plan;
      plan.all_links.loss = 0.0;  // installed but inert
      net.set_fault_plan(plan);
    }
    for (int i = 0; i < 100; ++i) {
      net.send(a, b, Frame{1, 0, {0x42}, SimTime::zero()});
      clock.advance(SimDuration::seconds(1));
    }
    clock.advance(SimDuration::seconds(1));
    for (const auto& d : net.poll(b)) arrivals[run].push_back(d.arrival.count_micros());
  }
  EXPECT_EQ(arrivals[0], arrivals[1]);
}

TEST_F(FaultLayerTest, ConservationLedgerCloses) {
  FaultPlan plan;
  plan.seed = 31337;
  plan.all_links = {0.15, 0.1, 0.05, 0.1};
  net_.set_fault_plan(plan);
  for (int i = 0; i < 1000; ++i) {
    net_.send(a_, b_, frame(1, 8));
    clock_.advance(SimDuration::millis(1));
  }
  // Deliberately do NOT drain fully: pending frames must balance the books.
  const std::size_t polled = net_.poll(b_).size();
  const FaultStats& fs = net_.fault_stats(b_);
  EXPECT_GT(net_.pending_count(b_), 0u);
  // Wire side: every unique frame offered was either enqueued or lost.
  EXPECT_EQ(net_.offered_frames(b_),
            net_.ingress_frames(b_) - fs.duplicated + fs.dropped.loss);
  // Receiver side: every enqueued copy was polled, is pending, or was wiped.
  EXPECT_EQ(net_.ingress_frames(b_), polled + net_.pending_count(b_) +
                                         fs.dropped.disconnect + fs.dropped.crash);
  // And identically in bytes: lost frames never ingress, so their bytes are
  // out of these books entirely; wiped-inbox bytes must balance them.
  EXPECT_EQ(net_.ingress_bytes(b_),
            net_.polled_bytes(b_) + net_.pending_bytes(b_) +
                fs.dropped.disconnect_bytes + fs.dropped.crash_bytes);
}

TEST_F(FaultLayerTest, CrashWipesInboxBytesIntoTheLedger) {
  // Fill b's inbox, then crash it with frames still pending: the wiped
  // bytes must move to dropped.crash_bytes, not vanish — pending_bytes is
  // the overload controller's backpressure signal and has to stay honest.
  for (int i = 0; i < 50; ++i) {
    net_.send(a_, b_, frame(1, 32));
    clock_.advance(SimDuration::millis(1));
  }
  clock_.advance(SimDuration::seconds(2));
  ASSERT_GT(net_.pending_bytes(b_), 0u);
  const std::uint64_t pending_before = net_.pending_bytes(b_);

  net_.crash(b_);
  const FaultStats& fs = net_.fault_stats(b_);
  EXPECT_EQ(net_.pending_bytes(b_), 0u);
  EXPECT_EQ(fs.dropped.crash_bytes, pending_before);
  EXPECT_EQ(net_.ingress_bytes(b_),
            net_.polled_bytes(b_) + net_.pending_bytes(b_) +
                fs.dropped.disconnect_bytes + fs.dropped.crash_bytes);
}

}  // namespace
}  // namespace dyconits::net
