// Unit tests for src/net: wire codec and the simulated network.
#include <gtest/gtest.h>

#include <limits>

#include "net/bytes.h"
#include "net/sim_network.h"

namespace dyconits::net {
namespace {

// ------------------------------------------------------------------- bytes

TEST(BytesTest, FixedWidthRoundtrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f32(3.5f);
  w.f64(-2.25);

  ByteReader r(w.bytes());
  std::uint8_t a;
  std::uint16_t b;
  std::uint32_t c;
  std::uint64_t d;
  float e;
  double f;
  ASSERT_TRUE(r.u8(a) && r.u16(b) && r.u32(c) && r.u64(d) && r.f32(e) && r.f64(f));
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xBEEF);
  EXPECT_EQ(c, 0xDEADBEEFu);
  EXPECT_EQ(d, 0x0123456789ABCDEFull);
  EXPECT_EQ(e, 3.5f);
  EXPECT_EQ(f, -2.25);
  EXPECT_TRUE(r.at_end());
}

TEST(BytesTest, VarintEdgeValues) {
  const std::uint64_t values[] = {0,      1,      127,        128,
                                  16383,  16384,  0xFFFFFFFF, 1ull << 62,
                                  std::numeric_limits<std::uint64_t>::max()};
  for (const auto v : values) {
    ByteWriter w;
    w.varint(v);
    EXPECT_EQ(w.size(), varint_size(v));
    ByteReader r(w.bytes());
    std::uint64_t out;
    ASSERT_TRUE(r.varint(out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(BytesTest, VarintSizes) {
  EXPECT_EQ(varint_size(0), 1u);
  EXPECT_EQ(varint_size(127), 1u);
  EXPECT_EQ(varint_size(128), 2u);
  EXPECT_EQ(varint_size(16383), 2u);
  EXPECT_EQ(varint_size(16384), 3u);
  EXPECT_EQ(varint_size(std::numeric_limits<std::uint64_t>::max()), 10u);
}

TEST(BytesTest, SvarintRoundtrip) {
  const std::int64_t values[] = {0,  -1, 1,  -64, 64, -65,
                                 -1000000, 1000000,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const auto v : values) {
    ByteWriter w;
    w.svarint(v);
    ByteReader r(w.bytes());
    std::int64_t out;
    ASSERT_TRUE(r.svarint(out));
    EXPECT_EQ(out, v);
  }
}

TEST(BytesTest, SmallSignedValuesAreOneByte) {
  ByteWriter w;
  w.svarint(-5);
  EXPECT_EQ(w.size(), 1u);  // zigzag keeps small magnitudes small
}

TEST(BytesTest, StringAndBlobRoundtrip) {
  ByteWriter w;
  w.str("hello world");
  w.str("");
  const std::vector<std::uint8_t> blob = {1, 2, 3, 255};
  w.blob(blob);

  ByteReader r(w.bytes());
  std::string s1, s2;
  std::vector<std::uint8_t> b;
  ASSERT_TRUE(r.str(s1) && r.str(s2) && r.blob(b));
  EXPECT_EQ(s1, "hello world");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(b, blob);
}

TEST(BytesTest, UnderflowFailsAndPoisons) {
  ByteWriter w;
  w.u8(1);
  ByteReader r(w.bytes());
  std::uint32_t v;
  EXPECT_FALSE(r.u32(v));
  EXPECT_FALSE(r.ok());
  std::uint8_t b;
  EXPECT_FALSE(r.u8(b));  // poisoned: even a fitting read fails
}

TEST(BytesTest, TruncatedVarintFails) {
  const std::uint8_t data[] = {0x80, 0x80};  // continuation bits, no end
  ByteReader r(data, sizeof(data));
  std::uint64_t v;
  EXPECT_FALSE(r.varint(v));
}

TEST(BytesTest, OverlongVarintFails) {
  // 11 bytes of continuation would exceed 64 bits.
  const std::uint8_t data[] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                               0xFF, 0xFF, 0xFF, 0xFF, 0x01};
  ByteReader r(data, sizeof(data));
  std::uint64_t v;
  EXPECT_FALSE(r.varint(v));
}

TEST(BytesTest, BlobLengthBeyondBufferFails) {
  ByteWriter w;
  w.varint(100);  // claims 100 bytes, provides none
  ByteReader r(w.bytes());
  std::vector<std::uint8_t> b;
  EXPECT_FALSE(r.blob(b));
}

// ------------------------------------------------------------- sim network

class SimNetworkTest : public ::testing::Test {
 protected:
  SimNetworkTest() : net_(clock_) {
    a_ = net_.create_endpoint("a");
    b_ = net_.create_endpoint("b");
    net_.connect(a_, b_, {SimDuration::millis(25), 0.0});
  }

  static Frame frame(std::uint8_t tag, std::size_t payload_size) {
    Frame f;
    f.tag = tag;
    f.payload.assign(payload_size, 0x42);
    return f;
  }

  SimClock clock_;
  SimNetwork net_;
  EndpointId a_ = 0, b_ = 0;
};

TEST_F(SimNetworkTest, DeliversAfterLatency) {
  ASSERT_TRUE(net_.send(a_, b_, frame(1, 10)));
  EXPECT_TRUE(net_.poll(b_).empty());  // not yet
  clock_.advance(SimDuration::millis(24));
  EXPECT_TRUE(net_.poll(b_).empty());
  clock_.advance(SimDuration::millis(1));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, a_);
  EXPECT_EQ(got[0].frame.tag, 1);
  EXPECT_EQ((got[0].arrival - got[0].sent).count_millis(), 25);
}

TEST_F(SimNetworkTest, PollIsDestructive) {
  net_.send(a_, b_, frame(1, 1));
  clock_.advance(SimDuration::millis(30));
  EXPECT_EQ(net_.poll(b_).size(), 1u);
  EXPECT_TRUE(net_.poll(b_).empty());
}

TEST_F(SimNetworkTest, SendWithoutLinkFailsUncounted) {
  const EndpointId c = net_.create_endpoint("c");
  EXPECT_FALSE(net_.send(a_, c, frame(1, 10)));
  EXPECT_EQ(net_.egress_bytes(a_), 0u);
  EXPECT_EQ(net_.total_frames(), 0u);
}

TEST_F(SimNetworkTest, DisconnectStopsTraffic) {
  net_.disconnect(a_, b_);
  EXPECT_FALSE(net_.connected(a_, b_));
  EXPECT_FALSE(net_.send(a_, b_, frame(1, 1)));
}

TEST_F(SimNetworkTest, FifoPerPair) {
  for (int i = 0; i < 10; ++i) {
    Frame f = frame(1, 1);
    f.payload[0] = static_cast<std::uint8_t>(i);
    net_.send(a_, b_, std::move(f));
    clock_.advance(SimDuration::millis(1));
  }
  clock_.advance(SimDuration::seconds(1));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i].frame.payload[0], i);
}

TEST_F(SimNetworkTest, FifoHoldsUnderJitter) {
  net_.connect(a_, b_, {SimDuration::millis(25), 0.9});
  SimTime prev = SimTime::zero();
  for (int i = 0; i < 200; ++i) {
    net_.send(a_, b_, frame(1, 1));
    clock_.advance(SimDuration::millis(1));
  }
  clock_.advance(SimDuration::seconds(2));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 200u);
  for (const auto& d : got) {
    EXPECT_GE(d.arrival, prev);  // non-decreasing despite jitter
    prev = d.arrival;
  }
}

TEST_F(SimNetworkTest, JitterStaysWithinBounds) {
  net_.connect(a_, b_, {SimDuration::millis(100), 0.2});
  for (int i = 0; i < 100; ++i) {
    net_.send(a_, b_, frame(1, 1));
    clock_.advance(SimDuration::seconds(1));  // spaced out: no FIFO clamping
  }
  clock_.advance(SimDuration::seconds(2));
  for (const auto& d : net_.poll(b_)) {
    const auto lat = (d.arrival - d.sent).count_millis();
    EXPECT_GE(lat, 80);
    EXPECT_LE(lat, 120);
  }
}

TEST_F(SimNetworkTest, NonFifoLinksCanReorder) {
  net_.connect(a_, b_, {SimDuration::millis(50), 0.8, /*fifo=*/false});
  for (int i = 0; i < 300; ++i) {
    Frame f = frame(1, 2);
    f.payload[0] = static_cast<std::uint8_t>(i & 0xFF);
    f.payload[1] = static_cast<std::uint8_t>(i >> 8);
    net_.send(a_, b_, std::move(f));
    clock_.advance(SimDuration::millis(5));
  }
  clock_.advance(SimDuration::seconds(2));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 300u);
  int inversions = 0;
  int prev = -1;
  for (const auto& d : got) {
    const int seq = d.frame.payload[0] | (d.frame.payload[1] << 8);
    if (seq < prev) ++inversions;
    prev = std::max(prev, seq);
  }
  EXPECT_GT(inversions, 0);  // jitter actually reordered something
}

TEST_F(SimNetworkTest, WireSizeAndAccounting) {
  Frame f = frame(3, 100);
  const std::size_t expected = 1 + 1 + 100;  // tag + 1-byte varint + payload
  EXPECT_EQ(f.wire_size(), expected);
  net_.send(a_, b_, std::move(f));
  EXPECT_EQ(net_.egress_bytes(a_), expected);
  EXPECT_EQ(net_.ingress_bytes(b_), expected);
  EXPECT_EQ(net_.egress_frames(a_), 1u);
  EXPECT_EQ(net_.egress_bytes_by_tag(a_, 3), expected);
  EXPECT_EQ(net_.egress_bytes_by_tag(a_, 4), 0u);
  EXPECT_EQ(net_.total_bytes(), expected);
}

TEST_F(SimNetworkTest, LargePayloadVarintHeader) {
  Frame f = frame(1, 300);
  EXPECT_EQ(f.wire_size(), 1 + 2 + 300u);  // 300 needs a 2-byte varint
}

TEST_F(SimNetworkTest, RateLimitAddsQueueingDelay) {
  net_.set_egress_rate(a_, 1000);  // 1000 B/s
  // Two 102-byte frames: the second waits for the first's serialization.
  net_.send(a_, b_, frame(1, 100));
  net_.send(a_, b_, frame(1, 100));
  clock_.advance(SimDuration::seconds(5));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 2u);
  const auto lat0 = (got[0].arrival - got[0].sent).count_millis();
  const auto lat1 = (got[1].arrival - got[1].sent).count_millis();
  EXPECT_NEAR(static_cast<double>(lat0), 25 + 102, 2);       // tx time + latency
  EXPECT_NEAR(static_cast<double>(lat1), 25 + 2 * 102, 2);   // queued behind first
}

TEST_F(SimNetworkTest, UnlimitedRateNoQueueing) {
  net_.send(a_, b_, frame(1, 100000));
  clock_.advance(SimDuration::millis(25));
  EXPECT_EQ(net_.poll(b_).size(), 1u);
}

TEST_F(SimNetworkTest, PendingCount) {
  net_.send(a_, b_, frame(1, 1));
  net_.send(a_, b_, frame(1, 1));
  EXPECT_EQ(net_.pending_count(b_), 2u);
  clock_.advance(SimDuration::seconds(1));
  net_.poll(b_);
  EXPECT_EQ(net_.pending_count(b_), 0u);
}

TEST_F(SimNetworkTest, BidirectionalLink) {
  net_.send(b_, a_, frame(2, 5));
  clock_.advance(SimDuration::millis(25));
  const auto got = net_.poll(a_);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, b_);
}

TEST_F(SimNetworkTest, EndpointNames) {
  EXPECT_EQ(net_.endpoint_name(a_), "a");
  EXPECT_EQ(net_.endpoint_name(b_), "b");
}

TEST_F(SimNetworkTest, InterleavedSourcesOrderedByArrival) {
  const EndpointId c = net_.create_endpoint("c");
  net_.connect(c, b_, {SimDuration::millis(5), 0.0});
  net_.send(a_, b_, frame(1, 1));  // arrives t+25
  net_.send(c, b_, frame(2, 1));   // arrives t+5
  clock_.advance(SimDuration::millis(30));
  const auto got = net_.poll(b_);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].frame.tag, 2);  // c's frame first
  EXPECT_EQ(got[1].frame.tag, 1);
}

}  // namespace
}  // namespace dyconits::net
