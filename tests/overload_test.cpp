// Overload control (DESIGN.md §10): bounded egress queues, the degradation
// ladder, admission control, and the coalescing semantics that make a
// capped queue safe.
//
//  * Unit tests pin the EgressQueue overflow ladder (coalesce → evict moves
//    → defer chunks → drop move → poison) and the DegradationLadder's
//    engage/release hysteresis.
//  * A randomized property test proves coalescing is state-preserving: the
//    drained queue leaves a replica in exactly the state the raw stream
//    would have.
//  * End-to-end: admission refusals reach bots and are retried with
//    backoff; the acceptance run drives 4x saturating load for 10k ticks
//    and checks the cap, bound, and byte-identical-replay invariants.
//
// Knobs: DYCONITS_OVERLOAD_TICKS (acceptance run length, default 10000).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bots/overload_schedule.h"
#include "bots/simulation.h"
#include "protocol/codec.h"
#include "server/overload.h"
#include "util/rng.h"

namespace dyconits::server {
namespace {

using protocol::AnyMessage;

constexpr std::uint64_t kMoveKeyBase = 1ull << 56;
constexpr std::uint64_t kBlockKeyBase = 2ull << 56;

AnyMessage move_msg(entity::EntityId id, double x) {
  return protocol::EntityMove{id, {x, 64.0, 0.0}, 0.0f, 0.0f};
}

AnyMessage block_msg(std::int32_t x, world::Block b) {
  return protocol::BlockChange{{x, 10, 0}, b};
}

std::size_t wire_bytes(const AnyMessage& m) {
  return protocol::wire_size_of(m) + 4;
}

EgressQueue::PushResult push(EgressQueue& q, const AnyMessage& m, std::uint64_t key,
                             const OverloadConfig& cfg, OverloadStats& stats) {
  return q.push(m, SimTime::zero(), key, wire_bytes(m), cfg, stats);
}

TEST(EgressQueueTest, CoalescesSameKeyNewestWins) {
  EgressQueue q;
  OverloadConfig cfg;
  OverloadStats stats;
  EXPECT_EQ(push(q, move_msg(7, 1.0), kMoveKeyBase | 7, cfg, stats),
            EgressQueue::PushResult::Queued);
  EXPECT_EQ(push(q, move_msg(7, 2.0), kMoveKeyBase | 7, cfg, stats),
            EgressQueue::PushResult::Coalesced);
  EXPECT_EQ(q.frames(), 1u);
  EXPECT_EQ(stats.egress_coalesced, 1u);
  const auto* mv = std::get_if<protocol::EntityMove>(&q.front().msg);
  ASSERT_NE(mv, nullptr);
  EXPECT_DOUBLE_EQ(mv->pos.x, 2.0);  // the superseding position won

  // Distinct keys queue separately.
  EXPECT_EQ(push(q, move_msg(8, 3.0), kMoveKeyBase | 8, cfg, stats),
            EgressQueue::PushResult::Queued);
  EXPECT_EQ(q.frames(), 2u);
}

TEST(EgressQueueTest, KeyZeroNeverCoalesces) {
  EgressQueue q;
  OverloadConfig cfg;
  OverloadStats stats;
  const AnyMessage chat = protocol::ChatBroadcast{1, "hello"};
  push(q, chat, 0, cfg, stats);
  push(q, chat, 0, cfg, stats);
  EXPECT_EQ(q.frames(), 2u);
  EXPECT_EQ(stats.egress_coalesced, 0u);
}

TEST(EgressQueueTest, ByteCapEvictsOldestMovesFirst) {
  EgressQueue q;
  OverloadConfig cfg;
  cfg.queue_cap_bytes = 256;
  cfg.queue_cap_frames = 0;  // bytes only
  OverloadStats stats;
  // Distinct entities so nothing coalesces; the cap must evict instead.
  for (entity::EntityId id = 1; id <= 64; ++id) {
    const auto res = push(q, move_msg(id, 1.0), kMoveKeyBase | id, cfg, stats);
    EXPECT_NE(res, EgressQueue::PushResult::DroppedPoison);
    EXPECT_LE(q.bytes(), cfg.queue_cap_bytes) << "after push " << id;
  }
  EXPECT_GT(stats.egress_evicted_moves, 0u);
  // The newest move must have survived (older ones are the superseded ones).
  bool found_last = false;
  while (!q.empty()) {
    const auto item = q.pop_front();
    if (const auto* mv = std::get_if<protocol::EntityMove>(&item.msg)) {
      if (mv->id == 64) found_last = true;
    }
  }
  EXPECT_TRUE(found_last);
  EXPECT_EQ(q.bytes(), 0u);
}

TEST(EgressQueueTest, FrameCapRespected) {
  EgressQueue q;
  OverloadConfig cfg;
  cfg.queue_cap_bytes = 0;
  cfg.queue_cap_frames = 8;
  OverloadStats stats;
  for (entity::EntityId id = 1; id <= 40; ++id) {
    push(q, move_msg(id, 1.0), kMoveKeyBase | id, cfg, stats);
    EXPECT_LE(q.frames(), 8u);
  }
}

TEST(EgressQueueTest, OverflowLadderDefersChunksDropsMovesPoisonsOrdered) {
  EgressQueue q;
  OverloadConfig cfg;
  cfg.queue_cap_bytes = 200;
  OverloadStats stats;
  // Fill the queue with non-evictable (key 0, not entity-move) payload.
  while (push(q, AnyMessage{protocol::ChatBroadcast{1, "xxxxxxxxxxxxxxxx"}}, 0, cfg,
              stats) == EgressQueue::PushResult::Queued) {
  }
  const std::size_t full = q.bytes();
  // The terminating push above was itself an order-critical overflow.
  const std::uint64_t poisons_at_fill = stats.egress_dropped_ordered;

  // ChunkData bounces back to the streamer rather than occupying the queue.
  protocol::ChunkData cd;
  cd.pos = {1, 2};
  cd.rle.assign(64, 0x11);
  EXPECT_EQ(push(q, AnyMessage{cd}, 0, cfg, stats), EgressQueue::PushResult::DeferChunk);

  // A move is droppable: the next move supersedes it.
  EXPECT_EQ(push(q, move_msg(5, 1.0), kMoveKeyBase | 5, cfg, stats),
            EgressQueue::PushResult::DroppedMove);
  EXPECT_EQ(stats.egress_dropped_moves, 1u);

  // Order-critical messages must never be silently dropped.
  EXPECT_EQ(push(q, AnyMessage{protocol::EntityDespawn{9}}, 0, cfg, stats),
            EgressQueue::PushResult::DroppedPoison);
  EXPECT_EQ(stats.egress_dropped_ordered, poisons_at_fill + 1);
  EXPECT_EQ(q.bytes(), full);  // none of the overflow paths grew the queue
}

TEST(EgressQueueTest, CoalesceGrowthReEnforcesTheCap) {
  EgressQueue q;
  OverloadConfig cfg;
  cfg.queue_cap_bytes = 160;
  OverloadStats stats;
  // A coalescable chat (the queue keys on the caller's say-so, not the
  // message type) plus moves filling the cap.
  const std::uint64_t chat_key = (3ull << 56) | 1;
  push(q, AnyMessage{protocol::ChatBroadcast{1, "a"}}, chat_key, cfg, stats);
  for (entity::EntityId id = 1; id <= 12; ++id) {
    push(q, move_msg(id, 1.0), kMoveKeyBase | id, cfg, stats);
  }
  ASSERT_LE(q.bytes(), cfg.queue_cap_bytes);
  // Replacing the chat with a much larger one grows the slot; the queue
  // must evict moves to stay under the cap.
  const auto res = push(q, AnyMessage{protocol::ChatBroadcast{1, std::string(60, 'y')}},
                        chat_key, cfg, stats);
  EXPECT_EQ(res, EgressQueue::PushResult::Coalesced);
  EXPECT_LE(q.bytes(), cfg.queue_cap_bytes);
  EXPECT_GT(stats.egress_evicted_moves, 0u);
}

TEST(EgressQueueTest, PopAndClearKeepAccountingExact) {
  EgressQueue q;
  OverloadConfig cfg;
  OverloadStats stats;
  // Enough traffic to trigger internal compaction (head_ >= 128).
  for (int round = 0; round < 3; ++round) {
    for (entity::EntityId id = 1; id <= 200; ++id) {
      push(q, move_msg(id, static_cast<double>(round)), kMoveKeyBase | id, cfg, stats);
    }
    std::size_t popped = 0;
    while (!q.empty()) {
      q.pop_front();
      ++popped;
    }
    EXPECT_EQ(popped, 200u);
    EXPECT_EQ(q.bytes(), 0u);
    EXPECT_EQ(q.frames(), 0u);
  }
  for (entity::EntityId id = 1; id <= 10; ++id) {
    push(q, move_msg(id, 0.0), kMoveKeyBase | id, cfg, stats);
  }
  EXPECT_EQ(q.clear(), 10u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.bytes(), 0u);
}

// ------------------------------------------------------------------ ladder

TEST(DegradationLadderTest, EngagesOneRungPerConsecutiveWindow) {
  DegradationLadder ladder;
  OverloadConfig cfg;
  cfg.engage_ticks = 3;
  const SimDuration budget = SimDuration::millis(50);
  const SimDuration over = SimDuration::millis(80);
  EXPECT_EQ(ladder.rung(), kRungNormal);
  // Two over-ticks then a dead-band tick: no engagement (counter resets).
  ladder.on_tick(over, budget, cfg);
  ladder.on_tick(over, budget, cfg);
  ladder.on_tick(SimDuration::millis(40), budget, cfg);  // between release and engage
  EXPECT_EQ(ladder.rung(), kRungNormal);
  // Three consecutive: one rung, and the counter restarts.
  ladder.on_tick(over, budget, cfg);
  ladder.on_tick(over, budget, cfg);
  EXPECT_TRUE(ladder.on_tick(over, budget, cfg));
  EXPECT_EQ(ladder.rung(), kRungWidenBounds);
  ladder.on_tick(over, budget, cfg);
  ladder.on_tick(over, budget, cfg);
  EXPECT_EQ(ladder.rung(), kRungWidenBounds);  // not yet
  ladder.on_tick(over, budget, cfg);
  EXPECT_EQ(ladder.rung(), kRungShedLowPriority);
}

TEST(DegradationLadderTest, TopsOutAtDisconnectAndReleasesWithHysteresis) {
  DegradationLadder ladder;
  OverloadConfig cfg;
  cfg.engage_ticks = 1;
  cfg.release_ticks = 4;
  const SimDuration budget = SimDuration::millis(50);
  for (int i = 0; i < 20; ++i) ladder.on_tick(SimDuration::millis(120), budget, cfg);
  EXPECT_EQ(ladder.rung(), kRungDisconnect);  // clamped at the top

  // Release needs release_ticks consecutive under-release ticks.
  const SimDuration calm = SimDuration::millis(10);  // 0.2 < budget_release 0.6
  ladder.on_tick(calm, budget, cfg);
  ladder.on_tick(calm, budget, cfg);
  ladder.on_tick(SimDuration::millis(40), budget, cfg);  // dead band: resets
  ladder.on_tick(calm, budget, cfg);
  ladder.on_tick(calm, budget, cfg);
  ladder.on_tick(calm, budget, cfg);
  EXPECT_EQ(ladder.rung(), kRungDisconnect);
  ladder.on_tick(calm, budget, cfg);  // 4th consecutive
  EXPECT_EQ(ladder.rung(), kRungDeferChunks);
  EXPECT_GE(ladder.transitions(), 5u);
}

// --------------------------------------------- coalescing property (oracle)

/// Replica model: the state a client ends up in after applying a stream of
/// atomic updates. Coalescing must be invisible at this level.
struct ModelReplica {
  std::map<entity::EntityId, double> entity_x;
  std::map<std::int32_t, world::Block> block_at;

  void apply(const AnyMessage& m) {
    if (const auto* mv = std::get_if<protocol::EntityMove>(&m)) {
      entity_x[mv->id] = mv->pos.x;
    } else if (const auto* bc = std::get_if<protocol::BlockChange>(&m)) {
      block_at[bc->pos.x] = bc->block;
    }
  }
  bool operator==(const ModelReplica& o) const {
    return entity_x == o.entity_x && block_at == o.block_at;
  }
};

TEST(CoalescingProperty, DrainedQueueMatchesUncoalescedOracle) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    EgressQueue q;
    OverloadConfig cfg;
    cfg.queue_cap_bytes = 0;  // property is about coalescing, not overflow
    cfg.queue_cap_frames = 0;
    OverloadStats stats;
    ModelReplica coalesced, oracle;

    for (int step = 0; step < 4000; ++step) {
      AnyMessage m;
      std::uint64_t key = 0;
      if (rng.chance(0.7)) {
        const auto id = static_cast<entity::EntityId>(rng.next_in(1, 12));
        m = move_msg(id, rng.next_double() * 100.0);
        key = kMoveKeyBase | id;
      } else {
        const auto x = static_cast<std::int32_t>(rng.next_in(0, 30));
        m = block_msg(x, rng.chance(0.5) ? world::Block::Planks : world::Block::Air);
        key = kBlockKeyBase | static_cast<std::uint64_t>(x);
      }
      oracle.apply(m);
      q.push(m, SimTime::zero(), key, wire_bytes(m), cfg, stats);
      // Partial drains mid-stream: coalescing after a drain must still
      // converge to the same final state.
      if (rng.chance(0.05)) {
        const std::size_t n = static_cast<std::size_t>(rng.next_in(1, 8));
        for (std::size_t i = 0; i < n && !q.empty(); ++i) {
          coalesced.apply(q.pop_front().msg);
        }
      }
    }
    while (!q.empty()) coalesced.apply(q.pop_front().msg);
    EXPECT_GT(stats.egress_coalesced, 0u) << "property never exercised coalescing";
    EXPECT_TRUE(coalesced == oracle) << "coalesced drain diverged from raw stream";
  }
}

}  // namespace
}  // namespace dyconits::server

// ===================================================================== e2e

namespace dyconits::bots {
namespace {

std::size_t overload_ticks() {
  const char* env = std::getenv("DYCONITS_OVERLOAD_TICKS");
  return env != nullptr ? static_cast<std::size_t>(std::strtoull(env, nullptr, 10))
                        : 10000;
}

/// Saturating-load scenario shared by the acceptance and admission tests:
/// a constrained uplink, one stalled client, a spam burst, a flash crowd.
SimulationConfig overload_config(std::uint64_t seed, std::size_t threads,
                                 std::size_t ticks) {
  SimulationConfig cfg;
  cfg.players = 12;
  cfg.policy = "director";
  cfg.seed = seed;
  cfg.view_distance = 3;
  cfg.link_latency = SimDuration::millis(5);
  cfg.link_jitter = 0.0;
  cfg.workload.kind = WorkloadKind::Village;
  cfg.workload.hotspots = 1;
  cfg.workload.village_radius = 10.0;
  cfg.joins_per_tick = 10;
  cfg.warmup = SimDuration::seconds(5);
  cfg.duration =
      cfg.warmup + SimDuration::millis(static_cast<std::int64_t>(ticks) * 50);
  cfg.flush_threads = threads;
  cfg.deterministic_load = true;
  cfg.server_egress_rate = 128 * 1024;

  cfg.overload.enabled = true;
  // The uplink saturates long before the CPU budget does: engage the ladder
  // on the modeled send cost the 128 KB/s uplink cannot drain (~6.4 KB/tick
  // ~= 0.2 ms modeled), release at half that.
  cfg.overload.budget_engage = 0.010;
  cfg.overload.budget_release = 0.004;
  // Sends are bursty at this scale (bots act every few ticks), so a long
  // consecutive-tick engage window never fills; 2 consecutive over-budget
  // ticks is plenty of evidence against a 0.5 ms threshold.
  cfg.overload.engage_ticks = 2;

  const double w = cfg.warmup.as_seconds();
  const double end = cfg.duration.as_seconds();
  cfg.overload_schedule.events.push_back(
      {ScheduledOverload::Kind::Stall, w + 2.0, end, 0, 0, 1.0});
  cfg.overload_schedule.events.push_back(
      {ScheduledOverload::Kind::Spam, w + 4.0, end, 0, 0, 4.0});
  cfg.overload_schedule.events.push_back(
      {ScheduledOverload::Kind::Flash, w + 8.0, 0, 0, 3, 1.0});
  return cfg;
}

struct AcceptanceOutcome {
  std::uint64_t wire_hash = 0;
  std::uint64_t cap_violations = 0;
  std::uint64_t cost_violations = 0;   // modeled cost > 2x engage budget post-engage
  std::uint64_t cost_checked = 0;      // post-engage ticks the check ran on
  std::uint64_t bound_violations = 0;  // dyconit bounds violated post-stabilization
  std::int64_t max_cost_us = 0;        // peak modeled tick cost (diagnostics)
  std::uint64_t ticks_over_engage = 0; // diagnostics for threshold tuning
  bool engaged = false;
  server::OverloadStats stats;
  int final_rung = 0;
};

AcceptanceOutcome run_acceptance(std::size_t threads, std::size_t ticks) {
  const SimulationConfig cfg = overload_config(1337, threads, ticks);
  Simulation sim(cfg);
  AcceptanceOutcome out;
  const std::size_t cap = cfg.overload.queue_cap_bytes;
  // "2x budget after the ladder engages": budget here is the engage
  // threshold the watchdog steers to, scaled to the uplink (see
  // overload_config). Grace ticks let one escalation round act.
  const auto budget2x = SimDuration::micros(static_cast<std::int64_t>(
      2.0 * cfg.overload.budget_engage *
      static_cast<double>(SimDuration::millis(50).count_micros())));
  std::uint64_t engaged_at = 0;
  const std::uint64_t total = static_cast<std::uint64_t>(
      cfg.duration.count_micros() / SimDuration::millis(50).count_micros());
  const std::uint64_t settle_end = total > total / 4 ? total - total / 4 : 0;

  sim.set_tick_hook([&](Simulation& s, SimTime) {
    const std::uint64_t tick = s.server().tick_count();
    for (const auto& bot : s.bots()) {
      if (!bot->joined()) continue;
      // Subscriber id == client endpoint id (GameServer::handle_join).
      if (s.server().egress_queue_bytes(bot->endpoint()) > cap) ++out.cap_violations;
    }
    out.max_cost_us = std::max(out.max_cost_us, s.server().last_tick_cpu().count_micros());
    if (s.server().last_tick_cpu() > budget2x / 2) ++out.ticks_over_engage;
    if (!out.engaged && s.server().overload_rung() > 0) {
      out.engaged = true;
      engaged_at = tick;
    }
    // Once the ladder has had 200 ticks to act, the modeled cost must be
    // pinned near the engage budget — that is the point of shedding.
    if (out.engaged && tick > engaged_at + 200) {
      ++out.cost_checked;
      if (s.server().last_tick_cpu() > budget2x) ++out.cost_violations;
    }
    // Last quarter of the run: shedding has stabilized; every subscriber
    // that is still connected must be held within its (possibly widened)
    // bounds at tick end, exactly as in the chaos suite.
    if (tick >= settle_end) {
      const SimTime now = s.clock().now();
      s.server().dyconits().for_each([&](dyconit::Dyconit& d) {
        d.for_each_subscriber([&](dyconit::SubscriberId, dyconit::Bounds& b,
                                  const dyconit::SubscriberQueue& q) {
          if (q.violates(b, now)) ++out.bound_violations;
        });
      });
    }
  });
  sim.run();
  out.wire_hash = sim.network().wire_hash();
  out.stats = sim.server().overload_stats();
  out.final_rung = sim.server().overload_rung();
  return out;
}

TEST(OverloadAcceptance, SaturatingLoadTenThousandTicks) {
  const std::size_t ticks = overload_ticks();
  const AcceptanceOutcome oracle = run_acceptance(1, ticks);

  // The scenario must actually overload the server...
  ASSERT_TRUE(oracle.engaged) << "ladder never engaged: scenario proves nothing"
                              << " (peak modeled cost " << oracle.max_cost_us
                              << "us, ticks over engage " << oracle.ticks_over_engage << ")";
  EXPECT_GT(oracle.stats.egress_queued, 0u);
  EXPECT_GT(oracle.stats.egress_coalesced, 0u);
  // ...and the controller must hold its invariants while overloaded.
  EXPECT_EQ(oracle.cap_violations, 0u) << "a per-subscriber queue exceeded the cap";
  // Sustained-cost criterion: once the ladder has acted, the modeled tick
  // cost must be pinned within 2x the engage budget. Isolated spikes (a
  // kicked player rejoining re-streams its chunks) are permitted; sustained
  // excursions are not.
  ASSERT_GT(oracle.cost_checked, 0u);
  EXPECT_LE(oracle.cost_violations, oracle.cost_checked / 100)
      << "modeled tick cost left 2x the engage budget after the ladder acted ("
      << oracle.cost_violations << "/" << oracle.cost_checked << " ticks)";
  EXPECT_EQ(oracle.bound_violations, 0u)
      << "a connected subscriber's bounds were violated after shedding stabilized";
  EXPECT_LE(oracle.stats.peak_queue_bytes,
            overload_config(1337, 1, ticks).overload.queue_cap_bytes);

  // Byte-identical replay across the flush-thread matrix (DESIGN.md §9):
  // every ladder decision is a pure function of simulated state.
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const AcceptanceOutcome got = run_acceptance(threads, ticks);
    EXPECT_EQ(oracle.wire_hash, got.wire_hash) << "threads " << threads;
    EXPECT_EQ(oracle.stats.ladder_transitions, got.stats.ladder_transitions)
        << "threads " << threads;
    EXPECT_EQ(oracle.final_rung, got.final_rung) << "threads " << threads;
  }
}

// ------------------------------------------------------------- admission

TEST(OverloadAdmission, RefusesAtRungAndBotsRetryWithBackoff) {
  // Ladder pinned high: near-zero engage threshold and no release, so the
  // flash crowd arrives strictly after the refusal rung is reached.
  SimulationConfig cfg = overload_config(7, 1, 600);
  cfg.overload.budget_engage = 1e-9;
  cfg.overload.budget_release = 0.0;  // ratio is never negative: no release
  cfg.overload.engage_ticks = 2;
  cfg.overload.admission_refuse_rung = 1;
  cfg.overload.admission_retry_ms = 2000;
  // Keep the scenario about admission: no worst-offender kicks, and no
  // stalled/spamming clients (a stalled bot would eventually be torn down
  // by the keep-alive timeout and muddy the player-count check).
  cfg.overload.disconnect_interval_ticks = 1000000;
  const auto flash = cfg.overload_schedule.events.back();
  cfg.overload_schedule.events.clear();
  cfg.overload_schedule.events.push_back(flash);

  Simulation sim(cfg);
  const auto ticks = static_cast<std::uint64_t>(
      cfg.duration.count_micros() / sim.server().config().tick_interval.count_micros());
  for (std::uint64_t i = 0; i < ticks; ++i) sim.step_tick();
  sim.finalize();
  const SimulationResult& r = sim.result();

  ASSERT_GT(r.joins_refused, 0u) << "flash crowd was never refused";
  EXPECT_GT(r.join_refusals, 0u) << "no bot saw a JoinRefused";
  // Conservation: every refusal the server sent was seen by a bot (modulo
  // frames still in flight at the end of the run).
  EXPECT_LE(r.join_refusals, r.joins_refused);
  EXPECT_LE(r.joins_refused - r.join_refusals, 3u);

  // Backoff: a refused bot retries no faster than retry_after_ms, so over
  // the post-flash window each of the 3 flash bots is bounded.
  const double flash_window_s = cfg.duration.as_seconds() - (cfg.warmup.as_seconds() + 8.0);
  const auto per_bot_max = static_cast<std::uint64_t>(flash_window_s / 2.0) + 2;
  EXPECT_LE(r.join_refusals, 3 * per_bot_max) << "bots retried faster than the backoff";

  // The original fleet was admitted before the ladder climbed and stays.
  std::size_t flash_joined = 0;
  for (std::size_t i = cfg.players - 3; i < cfg.players; ++i) {
    if (sim.bots()[i]->joined()) ++flash_joined;
  }
  EXPECT_EQ(flash_joined, 0u) << "a refused bot joined while the rung was held high";
  EXPECT_EQ(sim.server().player_count(), cfg.players - 3);
}

TEST(OverloadAdmission, RefuseRungZeroNeverRefuses) {
  SimulationConfig cfg = overload_config(7, 1, 400);
  cfg.overload.budget_engage = 1e-9;
  cfg.overload.budget_release = 0.0;
  cfg.overload.engage_ticks = 2;
  cfg.overload.admission_refuse_rung = 0;  // disabled
  cfg.overload.disconnect_interval_ticks = 1000000;
  Simulation sim(cfg);
  const auto ticks = static_cast<std::uint64_t>(
      cfg.duration.count_micros() / sim.server().config().tick_interval.count_micros());
  for (std::uint64_t i = 0; i < ticks; ++i) sim.step_tick();
  sim.finalize();
  EXPECT_EQ(sim.result().joins_refused, 0u);
  EXPECT_EQ(sim.result().join_refusals, 0u);
}

// ------------------------------------------------------ schedule parsing

TEST(OverloadScheduleTest, ParsesFullGrammar) {
  const std::string text =
      "# scenario\n"
      "stall 10 20 3   # bot 3 freezes\n"
      "flash 30 40\n"
      "spam 15 25 4.5\n"
      "\n";
  OverloadScheduleConfig cfg;
  std::string error;
  ASSERT_TRUE(parse_overload_schedule(text, &cfg, &error)) << error;
  ASSERT_EQ(cfg.events.size(), 3u);
  EXPECT_EQ(cfg.events[0].kind, ScheduledOverload::Kind::Stall);
  EXPECT_DOUBLE_EQ(cfg.events[0].start_s, 10.0);
  EXPECT_DOUBLE_EQ(cfg.events[0].end_s, 20.0);
  EXPECT_EQ(cfg.events[0].bot, 3u);
  EXPECT_EQ(cfg.events[1].kind, ScheduledOverload::Kind::Flash);
  EXPECT_DOUBLE_EQ(cfg.events[1].start_s, 30.0);
  EXPECT_EQ(cfg.events[1].count, 40u);
  EXPECT_EQ(cfg.events[2].kind, ScheduledOverload::Kind::Spam);
  EXPECT_DOUBLE_EQ(cfg.events[2].factor, 4.5);
}

TEST(OverloadScheduleTest, RejectsMalformedInputWithLineNumbers) {
  OverloadScheduleConfig cfg;
  cfg.events.push_back({});  // must remain untouched on failure
  std::string error;

  EXPECT_FALSE(parse_overload_schedule("stall 10 5 0\n", &cfg, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;

  EXPECT_FALSE(parse_overload_schedule("flash 10 0\n", &cfg, &error));
  EXPECT_FALSE(parse_overload_schedule("spam 1 2 0\n", &cfg, &error));
  EXPECT_FALSE(parse_overload_schedule("# fine\nwat 1 2 3\n", &cfg, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("wat"), std::string::npos) << error;

  EXPECT_EQ(cfg.events.size(), 1u) << "*out was modified on failure";
}

TEST(OverloadScheduleTest, LoadRejectsMissingFile) {
  OverloadScheduleConfig cfg;
  std::string error;
  EXPECT_FALSE(load_overload_schedule("/nonexistent/overload.txt", &cfg, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace dyconits::bots
