// Unit tests for the policy layer: factory, bounds shapes, granularity
// mapping, and the Director's adaptation loop.
#include <gtest/gtest.h>

#include "dyconit/policies/adaptive.h"
#include "dyconit/policies/basic.h"
#include "dyconit/policies/director.h"
#include "dyconit/policies/factory.h"

namespace dyconits::dyconit {
namespace {

using world::ChunkPos;
using world::Vec3;

// ----------------------------------------------------------------- factory

TEST(FactoryTest, KnownSpecs) {
  for (const char* spec : {"zero", "infinite", "static", "static:100:2", "aoi",
                           "director", "adaptive", "aoi@region", "director@global",
                           "zero@chunk"}) {
    EXPECT_NE(make_policy(spec), nullptr) << spec;
  }
}

TEST(FactoryTest, UnknownSpecsRejected) {
  EXPECT_EQ(make_policy("bogus"), nullptr);
  EXPECT_EQ(make_policy("aoi@planet"), nullptr);
  EXPECT_EQ(make_policy(""), nullptr);
}

TEST(FactoryTest, NamesRoundTrip) {
  EXPECT_EQ(make_policy("zero")->name(), "zero");
  EXPECT_EQ(make_policy("director")->name(), "director");
  EXPECT_EQ(make_policy("aoi@region")->name(), "aoi@region");
  EXPECT_EQ(make_policy("static:50:1")->name(), "static-conit");
}

TEST(FactoryTest, StaticParametersApplied) {
  const auto p = make_policy("static:300:7");
  const Bounds b = p->bounds_for(DyconitId::chunk_blocks({0, 0}), {0, 0, 0});
  EXPECT_EQ(b.staleness.count_millis(), 300);
  EXPECT_DOUBLE_EQ(b.numerical, 7.0);
}

// ----------------------------------------------------------- basic policies

TEST(BasicPoliciesTest, ZeroAlwaysZero) {
  ZeroPolicy p;
  EXPECT_TRUE(p.bounds_for(DyconitId::chunk_blocks({9, 9}), {1000, 0, 1000}).is_zero());
  EXPECT_TRUE(p.bounds_for(DyconitId::global_entities(), {0, 0, 0}).is_zero());
}

TEST(BasicPoliciesTest, InfiniteNeverTrips) {
  InfinitePolicy p;
  const Bounds b = p.bounds_for(DyconitId::chunk_blocks({0, 0}), {0, 0, 0});
  EXPECT_EQ(b.staleness, SimDuration::infinite());
  EXPECT_GT(b.numerical, 1e17);
}

TEST(BasicPoliciesTest, StaticIgnoresDistance) {
  StaticConitPolicy p(SimDuration::millis(100), 3.0);
  const Bounds near = p.bounds_for(DyconitId::chunk_blocks({0, 0}), {0, 0, 0});
  const Bounds far = p.bounds_for(DyconitId::chunk_blocks({100, 100}), {0, 0, 0});
  EXPECT_EQ(near, far);
}

TEST(BasicPoliciesTest, DefaultUnitMappingIsPerChunk) {
  ZeroPolicy p;
  EXPECT_EQ(p.block_unit_for({3, 4}), DyconitId::chunk_blocks({3, 4}));
  EXPECT_EQ(p.entity_unit_for({3, 4}), DyconitId::chunk_entities({3, 4}));
}

// -------------------------------------------------------------------- AOI

class AoiTest : public ::testing::Test {
 protected:
  AoiPolicy p_;
  const Vec3 player_{8, 20, 8};  // center of chunk (0,0)
};

TEST_F(AoiTest, NearUnitsGetZeroBounds) {
  EXPECT_TRUE(p_.bounds_for(DyconitId::chunk_entities({0, 0}), player_).is_zero());
  EXPECT_TRUE(p_.bounds_for(DyconitId::chunk_entities({2, 0}), player_).is_zero());
  EXPECT_TRUE(p_.bounds_for(DyconitId::chunk_blocks({1, -1}), player_).is_zero());
}

TEST_F(AoiTest, BoundsGrowWithDistance) {
  const Bounds d4 = p_.bounds_for(DyconitId::chunk_entities({4, 0}), player_);
  const Bounds d8 = p_.bounds_for(DyconitId::chunk_entities({8, 0}), player_);
  EXPECT_FALSE(d4.is_zero());
  EXPECT_GT(d8.staleness, d4.staleness);
  EXPECT_GT(d8.numerical, d4.numerical);
}

TEST_F(AoiTest, StalenessIsCapped) {
  const Bounds far = p_.bounds_for(DyconitId::chunk_entities({1000, 0}), player_);
  EXPECT_LE(far.staleness, p_.params().max_staleness);
  EXPECT_LE(far.numerical, p_.params().max_entity_numerical);
}

TEST_F(AoiTest, BlockAndEntityDomainsUseOwnScales) {
  const Bounds ent = p_.bounds_for(DyconitId::chunk_entities({6, 0}), player_);
  const Bounds blk = p_.bounds_for(DyconitId::chunk_blocks({6, 0}), player_);
  EXPECT_EQ(ent.staleness, blk.staleness);
  EXPECT_NE(ent.numerical, blk.numerical);
}

TEST_F(AoiTest, GlobalUnitTreatedAsFar) {
  const Bounds b = p_.bounds_for(DyconitId::global_entities(), player_);
  EXPECT_EQ(b.staleness, p_.params().max_staleness);
}

TEST_F(AoiTest, ChebyshevNotEuclidean) {
  // Diagonal chunk (3,3) is Chebyshev distance ~3 from (0,0).
  const Bounds diag = p_.bounds_for(DyconitId::chunk_entities({3, 3}), player_);
  const Bounds straight = p_.bounds_for(DyconitId::chunk_entities({3, 0}), player_);
  EXPECT_EQ(diag.staleness, straight.staleness);
}

// ------------------------------------------------------------- granularity

TEST(GranularityTest, RegionWrapping) {
  const auto p = make_policy("aoi@region");
  EXPECT_EQ(p->block_unit_for({0, 0}), DyconitId::region_blocks({0, 0}));
  EXPECT_EQ(p->block_unit_for({3, 3}), p->block_unit_for({0, 0}));
  EXPECT_NE(p->block_unit_for({4, 0}), p->block_unit_for({0, 0}));
  EXPECT_EQ(p->entity_unit_for({5, 5}).domain, Domain::RegionEntities);
}

TEST(GranularityTest, GlobalWrapping) {
  const auto p = make_policy("zero@global");
  EXPECT_EQ(p->block_unit_for({100, -100}), DyconitId::global_blocks());
  EXPECT_EQ(p->entity_unit_for({100, -100}), DyconitId::global_entities());
}

TEST(GranularityTest, DelegatesBounds) {
  const auto p = make_policy("static:123:9@region");
  const Bounds b = p->bounds_for(DyconitId::region_blocks({0, 0}), {0, 0, 0});
  EXPECT_EQ(b.staleness.count_millis(), 123);
}

// ---------------------------------------------------------------- Director

class DirectorTest : public ::testing::Test {
 protected:
  DirectorTest() : sys_(clock_) {}

  LoadSample load(double tick_fraction) {
    LoadSample l;
    l.now = clock_.now();
    l.tick_budget = SimDuration::millis(50);
    l.tick_duration = SimDuration::micros(
        static_cast<std::int64_t>(tick_fraction * 50000.0));
    l.players = players_.size();
    return l;
  }

  void tick_policy(DirectorPolicy& p, double tick_fraction) {
    clock_.advance(SimDuration::seconds(2));  // beyond adjust_interval
    LoadSample l = load(tick_fraction);
    PolicyContext ctx(sys_, players_, l);
    p.on_tick(ctx);
  }

  SimClock clock_;
  DyconitSystem sys_;
  std::vector<PlayerView> players_;
};

TEST_F(DirectorTest, StartsAtMinScale) {
  DirectorPolicy p;
  EXPECT_DOUBLE_EQ(p.scale(), 1.0);
}

TEST_F(DirectorTest, ScalesUpUnderTickPressure) {
  DirectorPolicy p;
  tick_policy(p, 0.9);
  EXPECT_GT(p.scale(), 1.0);
  const double s1 = p.scale();
  tick_policy(p, 0.9);
  EXPECT_GT(p.scale(), s1);  // keeps climbing while pressured
}

TEST_F(DirectorTest, ScaleIsClamped) {
  DirectorParams params;
  params.max_scale = 4.0;
  DirectorPolicy p(params);
  for (int i = 0; i < 50; ++i) tick_policy(p, 1.5);
  EXPECT_DOUBLE_EQ(p.scale(), 4.0);
}

TEST_F(DirectorTest, RelaxesWhenIdle) {
  DirectorPolicy p;
  for (int i = 0; i < 10; ++i) tick_policy(p, 0.9);
  const double high = p.scale();
  for (int i = 0; i < 100; ++i) tick_policy(p, 0.1);
  EXPECT_LT(p.scale(), high);
  EXPECT_DOUBLE_EQ(p.scale(), 1.0);  // returns to tightest
}

TEST_F(DirectorTest, DeadBandHolds) {
  DirectorPolicy p;
  tick_policy(p, 0.9);
  const double s = p.scale();
  tick_policy(p, 0.6);  // between low and high thresholds
  EXPECT_DOUBLE_EQ(p.scale(), s);
}

TEST_F(DirectorTest, RespectsAdjustInterval) {
  DirectorPolicy p;
  // Two calls within the same interval: only the first adjusts.
  clock_.advance(SimDuration::seconds(2));
  LoadSample l = load(0.9);
  PolicyContext ctx(sys_, players_, l);
  p.on_tick(ctx);
  const double s = p.scale();
  clock_.advance(SimDuration::millis(100));
  LoadSample l2 = load(0.9);
  PolicyContext ctx2(sys_, players_, l2);
  p.on_tick(ctx2);
  EXPECT_DOUBLE_EQ(p.scale(), s);
}

TEST_F(DirectorTest, BandwidthBudgetPressure) {
  DirectorPolicy p;
  clock_.advance(SimDuration::seconds(2));
  LoadSample l = load(0.1);  // CPU idle
  l.bandwidth_budget_bps = 1e6;
  l.egress_bytes_per_sec = 1e6;  // 8 Mbit/s over a 1 Mbit budget
  PolicyContext ctx(sys_, players_, l);
  p.on_tick(ctx);
  EXPECT_GT(p.scale(), 1.0);
}

TEST_F(DirectorTest, NearBoundsStayZeroBelowPressureThreshold) {
  DirectorParams params;
  params.near_pressure_scale = 4.0;
  DirectorPolicy p(params);
  while (p.scale() < 3.0) tick_policy(p, 1.5);
  ASSERT_LE(p.scale(), 4.0);  // 1.3x steps from 1.0 cannot skip past 4.0 from <3.08
  EXPECT_TRUE(p.bounds_for(DyconitId::chunk_entities({0, 0}), {8, 0, 8}).is_zero());
  EXPECT_TRUE(p.bounds_for(DyconitId::chunk_entities({2, 0}), {8, 0, 8}).is_zero());
}

TEST_F(DirectorTest, NearBoundsEngageCappedUnderSustainedOverload) {
  DirectorPolicy p;
  for (int i = 0; i < 30; ++i) tick_policy(p, 1.5);
  EXPECT_DOUBLE_EQ(p.scale(), DirectorParams{}.max_scale);
  const Bounds near = p.bounds_for(DyconitId::chunk_entities({0, 0}), {8, 0, 8});
  EXPECT_FALSE(near.is_zero());
  // Staleness capped at a perceptually minor value even at max overload;
  // (the near stage is staleness-driven — see DirectorParams).
  EXPECT_LE(near.staleness, DirectorParams{}.near_staleness_cap);
  EXPECT_GT(near.staleness, SimDuration::millis(0));
  const Bounds near_blocks = p.bounds_for(DyconitId::chunk_blocks({0, 0}), {8, 0, 8});
  EXPECT_LE(near_blocks.staleness, DirectorParams{}.near_staleness_cap);
}

TEST_F(DirectorTest, FarBoundsScaleWithMultiplier) {
  DirectorPolicy p;
  const Bounds before = p.bounds_for(DyconitId::chunk_entities({6, 0}), {8, 0, 8});
  for (int i = 0; i < 5; ++i) tick_policy(p, 1.5);
  const Bounds after = p.bounds_for(DyconitId::chunk_entities({6, 0}), {8, 0, 8});
  EXPECT_GT(after.staleness, before.staleness);
  EXPECT_GT(after.numerical, before.numerical);
}

TEST_F(DirectorTest, RetunesExistingSubscriptionsWithinSliceWindow) {
  DirectorPolicy p;
  players_.push_back({1, 10, {8, 0, 8}});
  const auto unit = DyconitId::chunk_entities({6, 0});
  sys_.subscribe(unit, 1, p.bounds_for(unit, {8, 0, 8}));
  const Bounds before = sys_.find(unit)->bounds_of(1);
  tick_policy(p, 1.5);  // scale changes; reshape is amortized over slices
  // Drain the slice window with dead-band ticks (no further adjustment).
  for (std::size_t i = 0; i < DirectorPolicy::kRetuneSlices; ++i) {
    clock_.advance(SimDuration::millis(50));
    LoadSample l = load(0.6);
    PolicyContext ctx(sys_, players_, l);
    p.on_tick(ctx);
  }
  const Bounds after = sys_.find(unit)->bounds_of(1);
  EXPECT_GT(after.staleness, before.staleness);
}

// ---------------------------------------------------- adaptive granularity

class AdaptiveTest : public DirectorTest {};

TEST_F(AdaptiveTest, StartsAtChunkGranularity) {
  AdaptiveGranularityPolicy p;
  EXPECT_FALSE(p.coarse());
  EXPECT_EQ(p.block_unit_for({3, 3}).domain, Domain::ChunkBlocks);
}

TEST_F(AdaptiveTest, CoarsensUnderLoadThenRefines) {
  AdaptiveGranularityPolicy p;
  // Scale up past coarsen_at (6.0): 1.3^8 > 8.
  bool requested_coarsen = false;
  for (int i = 0; i < 10 && !p.coarse(); ++i) {
    clock_.advance(SimDuration::seconds(2));
    LoadSample l = load(1.5);
    PolicyContext ctx(sys_, players_, l);
    p.on_tick(ctx);
    requested_coarsen |= ctx.resubscribe_requested();
  }
  EXPECT_TRUE(p.coarse());
  EXPECT_TRUE(requested_coarsen);
  EXPECT_EQ(p.block_unit_for({3, 3}).domain, Domain::RegionBlocks);
  EXPECT_EQ(p.entity_unit_for({9, 1}).domain, Domain::RegionEntities);

  // Relax until scale falls to refine_at (2.0).
  bool requested_refine = false;
  for (int i = 0; i < 60 && p.coarse(); ++i) {
    clock_.advance(SimDuration::seconds(2));
    LoadSample l = load(0.05);
    PolicyContext ctx(sys_, players_, l);
    p.on_tick(ctx);
    requested_refine |= ctx.resubscribe_requested();
  }
  EXPECT_FALSE(p.coarse());
  EXPECT_TRUE(requested_refine);
  EXPECT_EQ(p.block_unit_for({3, 3}).domain, Domain::ChunkBlocks);
}

TEST_F(AdaptiveTest, HysteresisPreventsFlapping) {
  AdaptiveGranularityParams params;
  AdaptiveGranularityPolicy p(params);
  while (!p.coarse()) tick_policy(p, 1.5);
  const double at_coarsen = p.scale();
  // Dropping just below coarsen_at must NOT refine (refine_at is lower).
  while (p.scale() > params.coarsen_at * 0.8) tick_policy(p, 0.1);
  EXPECT_TRUE(p.coarse());
  EXPECT_LT(p.scale(), at_coarsen);
}

TEST_F(DirectorTest, RetuneAllBoundsSkipsUnknownSubscribers) {
  ZeroPolicy zero;
  players_.push_back({1, 10, {0, 0, 0}});
  const auto unit = DyconitId::chunk_entities({0, 0});
  sys_.subscribe(unit, 99, Bounds::infinite());  // subscriber with no player view
  LoadSample l;
  l.now = clock_.now();
  PolicyContext ctx(sys_, players_, l);
  retune_all_bounds(zero, ctx);
  EXPECT_EQ(sys_.find(unit)->bounds_of(99), Bounds::infinite());
}

}  // namespace
}  // namespace dyconits::dyconit
